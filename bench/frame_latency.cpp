// Frame-latency CDF under a standing blocker: MoVR against fixed beam and
// NLOS beam switching, transport data-plane enabled.
//
// The paper's QoE argument in distribution form: a person stops on the
// AP-headset line for 40% of the session. A strategy that bridges the
// blockage keeps the latency tail at the air's round-trip; one that does
// not drives the tail to infinity (frames that never complete). Prints the
// per-strategy CDF plus the transport counters that explain the tail, and
// exits nonzero when the packet ledger does not close or MoVR's p99 fails
// to beat both baselines.
//
// Usage: frame_latency [--duration S] [--target-mbps M] [--json PATH]
// (defaults 20 s, 2000 Mbps; `ctest -L net` runs a short smoke).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include <baseline/strategies.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

/// A person walks in and stands on the midpoint of the AP-headset line for
/// 40% of the session (a "standing" crossing: path_from == path_to).
vr::BlockageScript standing_blocker(sim::Duration duration) {
  vr::BlockageEvent person;
  person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
  person.start = sim::Duration{duration.count() * 3 / 10};
  person.duration = sim::Duration{duration.count() * 4 / 10};
  person.path_from = {1.7, 1.3};
  person.path_to = {1.7, 1.3};
  return vr::BlockageScript{std::vector<vr::BlockageEvent>{person}};
}

/// A compressed VR stream whose keyframes fit the deadline at the top MCS —
/// clean air delivers everything, so the tail is pure blockage. The default
/// 2 Gbps matches the paper's compressed-stream budget; `--target-mbps`
/// sweeps the source rate (see print_usage for the keyframe caveat).
vr::Session::Config session_config(sim::Duration duration,
                                   double target_mbps) {
  vr::Session::Config config;
  config.duration = duration;
  net::TransportConfig transport;
  transport.source.target_mbps = target_mbps;
  config.transport = transport;
  return config;
}

void print_usage() {
  std::printf(
      "frame_latency — frame-latency CDF under a standing blocker\n"
      "\n"
      "  --duration S       session length in seconds (default 20)\n"
      "  --target-mbps M    source rate of the compressed stream\n"
      "                     (default 2000)\n"
      "  --json PATH        write a machine-readable summary (wall time,\n"
      "                     per-strategy percentiles, misses) to PATH\n"
      "  --help             this text\n"
      "\n"
      "Caveat on --target-mbps: keyframes are ~2.5x the mean frame size,\n"
      "so a rate that fits the 10 ms frame deadline on average can still\n"
      "blow it on every keyframe. Past roughly 1/2.5 of the air rate the\n"
      "keyframe tail dominates p99 and deadline misses climb even with no\n"
      "blocker in the room — raise the rate deliberately, and read the\n"
      "misses column next to the percentiles.\n");
}

struct Row {
  const char* name;
  vr::QoeReport report;
};

enum class Strategy { kMovr, kFixedBeam, kNlosSweep };

vr::QoeReport run_strategy(Strategy kind, const vr::Session::Config& config,
                           const vr::BlockageScript& script,
                           sim::RngRegistry& rngs) {
  auto scene = bench::paper_scene({3.0, 2.2}, false);
  bench::steer_direct(scene);
  sim::Simulator simulator;
  switch (kind) {
    case Strategy::kMovr: {
      auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
      auto rng = rngs.stream("cal");
      bench::calibrate_reflector(scene, reflector, rng);
      vr::MovrStrategy strategy{simulator, scene, rngs.stream("mgr")};
      vr::Session session{simulator, scene,  strategy,
                          nullptr,   &script, config};
      return session.run();
    }
    case Strategy::kFixedBeam: {
      baseline::FixedBeamStrategy strategy{scene};
      vr::Session session{simulator, scene,  strategy,
                          nullptr,   &script, config};
      return session.run();
    }
    case Strategy::kNlosSweep: {
      baseline::NlosSweepStrategy strategy{simulator, scene};
      vr::Session session{simulator, scene,  strategy,
                          nullptr,   &script, config};
      return session.run();
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 20.0;
  double target_mbps = 2000.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--target-mbps") == 0 && i + 1 < argc) {
      target_mbps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    }
  }
  const auto duration = sim::from_seconds(duration_s);
  const auto script = standing_blocker(duration);
  const auto config = session_config(duration, target_mbps);
  sim::RngRegistry rngs{8};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<Row> rows;
  rows.push_back({"MoVR (1 reflector)",
                  run_strategy(Strategy::kMovr, config, script, rngs)});
  rows.push_back({"fixed beam (WHDI)",
                  run_strategy(Strategy::kFixedBeam, config, script, rngs)});
  rows.push_back({"NLOS beam switching",
                  run_strategy(Strategy::kNlosSweep, config, script, rngs)});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  bench::print_header(
      "Frame latency — standing blocker over 40% of the session (ms)");
  std::printf("%-22s %8s %8s %8s %10s %8s %8s %8s\n", "strategy", "p50",
              "p95", "p99", "misses", "retx", "drops", "dups");
  for (const Row& row : rows) {
    const net::TransportMetrics& m = *row.report.transport;
    std::printf("%-22s %8.2f %8.2f %8.2f %6lu/%-4lu %8lu %8lu %8lu\n",
                row.name, m.p50_ms, m.p95_ms, m.p99_ms,
                static_cast<unsigned long>(m.deadline_misses),
                static_cast<unsigned long>(m.frames_emitted),
                static_cast<unsigned long>(m.retransmits),
                static_cast<unsigned long>(m.packets_dropped),
                static_cast<unsigned long>(m.duplicates));
  }
  std::printf("\n");
  for (const Row& row : rows) {
    bench::print_cdf(row.name, bench::latency_samples(*row.report.transport));
  }

  // The bench doubles as an acceptance gate.
  int failures = 0;
  for (const Row& row : rows) {
    if (!row.report.transport->conserved()) {
      std::printf("FAIL: packet ledger does not close for %s\n", row.name);
      ++failures;
    }
  }
  const net::TransportMetrics& movr = *rows[0].report.transport;
  const net::TransportMetrics& fixed = *rows[1].report.transport;
  const net::TransportMetrics& nlos = *rows[2].report.transport;
  if (!(movr.p99_ms < fixed.p99_ms) || !(movr.p99_ms < nlos.p99_ms)) {
    std::printf("FAIL: MoVR p99 %.2f ms does not beat fixed %.2f / NLOS %.2f\n",
                movr.p99_ms, fixed.p99_ms, nlos.p99_ms);
    ++failures;
  }
  if (!(movr.p50_ms > 0.0) || !(movr.p99_ms > movr.p50_ms)) {
    std::printf("FAIL: MoVR latency CDF is degenerate (p50 %.3f, p99 %.3f)\n",
                movr.p50_ms, movr.p99_ms);
    ++failures;
  }
  if (fixed.deadline_misses == 0) {
    std::printf("FAIL: the blocker never bit the fixed beam\n");
    ++failures;
  }

  if (!json_path.empty()) {
    bench::Json arms = bench::Json::array();
    for (const Row& row : rows) {
      const net::TransportMetrics& m = *row.report.transport;
      bench::Json arm = bench::Json::object();
      arm.set("name", row.name)
          .set("p50_ms", m.p50_ms)
          .set("p95_ms", m.p95_ms)
          .set("p99_ms", m.p99_ms)
          .set("frames", m.frames_emitted)
          .set("deadline_misses", m.deadline_misses)
          .set("retransmits", m.retransmits)
          .set("packets_dropped", m.packets_dropped);
      arms.push(std::move(arm));
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "frame_latency")
        .set("wall_time_s", wall_s)
        .set("duration_s", duration_s)
        .set("target_mbps", target_mbps)
        .set("pass", failures == 0)
        .set("arms", std::move(arms));
    if (!bench::emit_json(json_path, doc)) {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
