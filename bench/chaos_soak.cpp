// Seed-replayable chaos soak for the hardened control plane.
//
// Each seed composes a full fault cocktail over a live MoVR session —
// obstacle storms, hand blockages, control partitions, brownouts, payload
// corruption, reordering, a reflector reboot, amplifier sag, sensor bias
// drift, and the lossy frame transport — and checks the global safety
// invariants every 20 ms of sim time:
//
//   A  gain <= leakage margin: once a control partition has outlasted the
//      silence watchdog (plus one tick of grace), every reflector's gain
//      code must sit at/below its provably-stable safe floor. This is the
//      invariant a build with the watchdog disabled MUST fail.
//   B  no sustained oscillation: the amplifier loop may go unstable
//      transiently (an undetected-corrupt gain slipping through), but the
//      current guard + digest replay must restore stability within 1 s.
//   C  config divergence is reconciled within a bound (2.5 s) for every
//      reachable reflector (partitioned ones are excluded — nothing can
//      cross a partition).
//   D  the control-channel ledger closes every tick (sent == delivered +
//      dropped + undeliverable) and the transport packet ledger closes at
//      session end.
//   E  every angle search launched into the chaos terminates — completed,
//      or failed with a reason — inside its watchdog budget.
//
// Every random draw derives from the seed via sim::RngRegistry, so a
// failing seed replays bit-identically; on failure the bench prints the
// exact replay command. Each row carries a fingerprint hash of the run's
// counters so a replay can be compared against the sweep byte-for-byte.
//
// Usage:
//   chaos_soak [--seeds N] [--seed S] [--duration SECONDS]
//              [--disable-watchdog] [--expect-violation]
//              [--event-log DIR] [--json PATH]
//
//   --seeds N            run seeds 1..N (default 20)
//   --seed S             run exactly one seed (replay mode)
//   --duration SECONDS   sim time per seed (default 60)
//   --disable-watchdog   build-breakage tripwire: reflector silence
//                        watchdogs off; invariant A must catch it
//   --expect-violation   invert the exit code: succeed only if at least
//                        one invariant violation was observed
//   --event-log DIR      record each seed's signed event log to
//                        DIR/seed<N>.log (tools/log_verify re-checks the
//                        chain and all five invariants offline)
//   --json PATH          write a machine-readable summary to PATH
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <core/angle_search.hpp>
#include <core/config_epoch.hpp>
#include <log/recorder.hpp>
#include <sim/fault_injector.hpp>
#include <sim/rng.hpp>
#include <vr/fault_scenarios.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;
using namespace std::chrono_literals;

struct Violation {
  sim::TimePoint at{};
  std::string what;
};

struct SearchRecord {
  sim::TimePoint started{};
  sim::Duration took{0};
  bool launched{false};
  bool done{false};
  bool completed{false};
  std::string reason;
};

struct SeedResult {
  std::uint64_t seed{0};
  vr::QoeReport report;
  sim::ControlChannel::Stats channel;
  core::ControlPlaneIncidents incidents;
  std::vector<Violation> violations;
  std::size_t searches{0};
  std::uint64_t ticks_checked{0};
  std::uint64_t fingerprint{0};
};

double uniform(std::mt19937_64& g, double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(g);
}

SeedResult run_seed(std::uint64_t seed, double duration_s,
                    bool watchdog_enabled,
                    const std::string& event_log_dir) {
  SeedResult result;
  result.seed = seed;
  const auto duration = sim::from_seconds(duration_s);
  const sim::TimePoint end{duration};
  sim::RngRegistry rngs{seed};
  auto chaos = rngs.stream("chaos");

  // --- scene: the paper office, headset position varied per seed --------
  auto scene = bench::paper_scene(
      {uniform(chaos, 2.2, 3.2), uniform(chaos, 1.6, 2.6)}, false);
  bench::steer_direct(scene);
  auto& r0 = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  auto& r1 = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  auto cal_rng = rngs.stream("cal");
  bench::calibrate_reflector(scene, r0, cal_rng);
  bench::calibrate_reflector(scene, r1, cal_rng);

  // --- control channel: every fault axis on, severity drawn per seed ----
  sim::Simulator simulator;
  sim::ControlChannel::Config channel_config;
  channel_config.loss_probability = uniform(chaos, 0.02, 0.12);
  channel_config.ack_loss_fraction = 0.25;
  channel_config.jitter = sim::Duration{
      static_cast<sim::Duration::rep>(uniform(chaos, 0.5e6, 2.0e6))};
  channel_config.corruption_probability = uniform(chaos, 0.005, 0.03);
  channel_config.undetected_corruption_fraction = 0.1;
  channel_config.reorder_probability = uniform(chaos, 0.02, 0.12);
  sim::ControlChannel control{simulator, channel_config, rngs.stream("bt")};

  // --- signed event log (optional): pure-read hooks, no RNG consumed ----
  std::unique_ptr<log::Recorder> recorder;
  if (!event_log_dir.empty()) {
    log::Recorder::Config log_config;
    log_config.path = event_log_dir + "/seed" + std::to_string(seed) + ".log";
    log_config.bench = "chaos_soak";
    log_config.seed = seed;
    recorder = std::make_unique<log::Recorder>(std::move(log_config));
    recorder->bind_clock(&simulator);
  }

  // The manager's register writes stand for BT exchanges: gate them on the
  // channel, so it cannot command a reflector across a partition.
  core::LinkManager::Config manager_config;
  manager_config.recorder = recorder.get();
  manager_config.reflector_reachable = [&control](std::size_t) {
    return !control.partitioned();
  };
  vr::MovrStrategy strategy{simulator, scene, rngs.stream("mgr"),
                            manager_config};

  // --- hardened control plane: one firmware agent per reflector ---------
  core::ReflectorConfigAgent::Config agent_config;
  agent_config.watchdog_enabled = watchdog_enabled;
  core::ReflectorConfigAgent agent0{simulator, control, r0, agent_config,
                                    rngs.stream("agent", 0)};
  core::ReflectorConfigAgent agent1{simulator, control, r1, agent_config,
                                    rngs.stream("agent", 1)};
  agent0.set_input_probe([&] { return scene.reflector_input(r0); });
  agent1.set_input_probe([&] { return scene.reflector_input(r1); });
  if (recorder) {
    agent0.set_recorder(recorder.get(), 0);
    agent1.set_recorder(recorder.get(), 1);
  }
  agent0.start();
  agent1.start();

  core::ControlPlane plane{simulator, control, {}};
  plane.set_recorder(recorder.get());
  strategy.manager().health().set_recorder(recorder.get());
  plane.bind_health(&strategy.manager().health());
  plane.manage(0, r0, &agent0);
  plane.manage(1, r1, &agent1);
  plane.start();
  const auto epoch_of = [](const core::MovrReflector& r) {
    return core::ConfigEpoch{r.front_end().rx_array().steering(),
                             r.front_end().tx_array().steering(),
                             r.front_end().gain_code()};
  };
  plane.commit(0, epoch_of(r0));
  plane.commit(1, epoch_of(r1));

  // --- fault schedule, drawn from the seed ------------------------------
  sim::FaultInjector injector{simulator};

  // One guaranteed blockage + partition overlap: the acceptance scenario
  // (partition while riding the reflector) happens in EVERY seed.
  const auto add_blockage = [&](sim::TimePoint at, sim::Duration len) {
    injector.inject(
        "hand_blockage", at, len,
        [&scene] {
          scene.room().add_obstacle(channel::make_hand(
              scene.headset().node().position(),
              scene.ap().node().position() -
                  scene.headset().node().position()));
        },
        [&scene] { scene.room().remove_obstacles("hand"); });
  };
  add_blockage(sim::TimePoint{4s},
               sim::Duration{static_cast<sim::Duration::rep>(
                   uniform(chaos, 3.5e9, 5.0e9))});
  injector.inject_control_partition(
      control, sim::TimePoint{5s},
      sim::Duration{
          static_cast<sim::Duration::rep>(uniform(chaos, 1.2e9, 2.5e9))});

  // Extra partition windows, brownouts, storms and blockages spread over
  // the rest of the run.
  const double budget_s = duration_s - 12.0;
  const int extra = budget_s > 0.0 ? static_cast<int>(budget_s / 12.0) : 0;
  for (int i = 0; i < extra; ++i) {
    const double base_s = 10.0 + 12.0 * i;
    injector.inject_control_partition(
        control, sim::TimePoint{sim::from_seconds(base_s + uniform(chaos, 0.0, 4.0))},
        sim::Duration{
            static_cast<sim::Duration::rep>(uniform(chaos, 0.6e9, 1.8e9))});
    injector.inject_control_brownout(
        control, sim::TimePoint{sim::from_seconds(base_s + uniform(chaos, 4.0, 8.0))},
        sim::Duration{
            static_cast<sim::Duration::rep>(uniform(chaos, 0.5e9, 2.0e9))},
        /*extra_loss=*/uniform(chaos, 0.3, 0.8),
        /*extra_latency=*/sim::Duration{static_cast<sim::Duration::rep>(
            uniform(chaos, 2.0e6, 8.0e6))});
    vr::ObstacleStormConfig storm;
    storm.start = sim::TimePoint{sim::from_seconds(base_s + uniform(chaos, 0.0, 6.0))};
    storm.duration = sim::Duration{
        static_cast<sim::Duration::rep>(uniform(chaos, 1.5e9, 3.5e9))};
    storm.people = 2 + static_cast<int>(uniform(chaos, 0.0, 3.0));
    storm.seed = seed * 1000 + static_cast<std::uint64_t>(i);
    vr::add_obstacle_storm(injector, scene.room(), storm);
    add_blockage(sim::TimePoint{sim::from_seconds(base_s + uniform(chaos, 6.0, 9.0))},
                 sim::Duration{static_cast<sim::Duration::rep>(
                     uniform(chaos, 1.0e9, 3.0e9))});
  }
  // One reflector reboot (registers wiped, boot epoch bumped) mid-run, and
  // slow hardware drift on top.
  if (duration_s >= 20.0) {
    vr::add_reflector_reboot(
        injector, r0,
        sim::TimePoint{sim::from_seconds(uniform(chaos, 10.0, duration_s - 6.0))});
    vr::add_gain_sag(injector, r0,
                     sim::TimePoint{sim::from_seconds(uniform(chaos, 10.0, 14.0))},
                     4s, rf::Decibels{uniform(chaos, 2.0, 6.0)});
    vr::add_sensor_bias_drift(
        injector, r0, sim::TimePoint{sim::from_seconds(uniform(chaos, 14.0, 18.0))},
        4s, /*peak_bias_a=*/uniform(chaos, 0.005, 0.02));
  }

  // --- angle searches launched into the chaos (invariant E) -------------
  auto search_config = core::make_search_config(4.0);
  search_config.watchdog = 2s;
  search_config.abort_after_failed_commands = 8;
  std::vector<std::unique_ptr<core::IncidenceSearch>> searches;
  std::vector<SearchRecord> search_records;
  for (double at_s = 8.0; at_s + 3.0 < duration_s; at_s += 17.0) {
    const auto i = searches.size();
    searches.push_back(std::make_unique<core::IncidenceSearch>(
        simulator, control, scene, r1, search_config,
        rngs.stream("search", i)));
    search_records.emplace_back();
    simulator.at(sim::TimePoint{sim::from_seconds(at_s)}, [&, i] {
      search_records[i].launched = true;
      search_records[i].started = simulator.now();
      if (recorder) {
        recorder->record(log::EventKind::kSearchLaunch,
                         {{"id", static_cast<std::int64_t>(i)}});
      }
      searches[i]->start([&, i](const core::IncidenceResult& r) {
        search_records[i].done = true;
        search_records[i].completed = r.completed;
        search_records[i].reason = r.failure_reason;
        search_records[i].took = r.duration;
        if (recorder) {
          recorder->record(
              log::EventKind::kSearchDone,
              {{"id", static_cast<std::int64_t>(i)},
               {"completed", r.completed ? 1 : 0},
               {"reason_h", r.failure_reason.empty()
                                ? 0
                                : log::Recorder::name_hash(r.failure_reason)},
               {"took_us", r.duration.count() / 1000}});
        }
      });
    });
  }
  result.searches = searches.size();

  // --- the invariant checker, every 20 ms of sim time -------------------
  const sim::Duration grace = agent_config.silence_timeout +
                              2 * agent_config.watchdog_tick +
                              sim::Duration{100'000'000};
  const sim::Duration oscillation_bound{1'000'000'000};
  const sim::Duration divergence_bound{2'500'000'000};
  // The params record makes the log self-describing: the offline verifier
  // replays A/B/C/E against exactly these bounds (tick_us is the checker
  // cadence — one tick of quantisation grace for the offline E bound).
  if (recorder) {
    recorder->record(
        log::EventKind::kParams,
        {{"grace_us", grace.count() / 1000},
         {"osc_us", oscillation_bound.count() / 1000},
         {"div_us", divergence_bound.count() / 1000},
         {"watchdog_us", search_config.watchdog.count() / 1000},
         {"slack_us", 500'000},
         {"tick_us", 20'000},
         {"reflectors", 2}});
  }
  // Applied/cleared fault windows already mirrored into the log (the
  // injector itself stays log-free — no sim -> log dependency).
  std::vector<std::pair<bool, bool>> fault_logged(injector.timeline().size(),
                                                  {false, false});
  struct WatchState {
    sim::TimePoint partition_since{};
    bool partitioned{false};
    sim::TimePoint unstable_since[2]{};
    bool unstable[2]{false, false};
  };
  auto watch = std::make_unique<WatchState>();
  const auto violate = [&](const std::string& what) {
    result.violations.push_back({simulator.now(), what});
  };
  const auto check = [&, w = watch.get()] {
    const auto now = simulator.now();
    ++result.ticks_checked;
    // A: partition outlasting the watchdog => gain at/below the safe floor.
    if (control.partitioned()) {
      if (!w->partitioned) {
        w->partitioned = true;
        w->partition_since = now;
      }
      if (now - w->partition_since > grace) {
        const core::ReflectorConfigAgent* agents[2] = {&agent0, &agent1};
        const core::MovrReflector* reflectors[2] = {&r0, &r1};
        for (int i = 0; i < 2; ++i) {
          if (reflectors[i]->front_end().gain_code() >
              agents[i]->safe_gain_code()) {
            violate("invariant A: reflector " + std::to_string(i) +
                    " gain code " +
                    std::to_string(reflectors[i]->front_end().gain_code()) +
                    " above safe floor code " +
                    std::to_string(agents[i]->safe_gain_code()) +
                    " during a partition older than the watchdog grace"
                    " (safe_mode=" +
                    std::to_string(agents[i]->in_safe_mode()) +
                    " applied_seq=" +
                    std::to_string(agents[i]->applied_seq()) +
                    " plane_partitioned=" +
                    std::to_string(
                        plane.partitioned(static_cast<std::size_t>(i))) +
                    " partition_age_ms=" +
                    std::to_string(
                        sim::to_milliseconds(now - w->partition_since)) +
                    ")");
          }
        }
      }
    } else {
      w->partitioned = false;
    }
    // B: instability must not be sustained.
    const core::MovrReflector* reflectors[2] = {&r0, &r1};
    bool stable_flags[2] = {true, true};
    for (int i = 0; i < 2; ++i) {
      const auto state =
          reflectors[i]->front_end().process(scene.reflector_input(*reflectors[i]));
      stable_flags[i] = state.stable;
      if (!state.stable) {
        if (!w->unstable[i]) {
          w->unstable[i] = true;
          w->unstable_since[i] = now;
        }
        if (now - w->unstable_since[i] > oscillation_bound) {
          violate("invariant B: reflector " + std::to_string(i) +
                  " oscillating for more than " +
                  std::to_string(sim::to_milliseconds(oscillation_bound)) +
                  " ms");
          w->unstable_since[i] = now;  // rate-limit repeat reports
        }
      } else {
        w->unstable[i] = false;
      }
    }
    // C: config divergence reconciled within the bound.
    if (plane.max_divergence_age(now) > divergence_bound) {
      std::string detail;
      const core::ReflectorConfigAgent* cagents[2] = {&agent0, &agent1};
      const core::MovrReflector* crefl[2] = {&r0, &r1};
      for (int i = 0; i < 2; ++i) {
        detail += " r" + std::to_string(i) + "(age_ms=" +
                  std::to_string(sim::to_milliseconds(
                      plane.divergence_age(static_cast<std::size_t>(i), now))) +
                  " partitioned=" +
                  std::to_string(plane.partitioned(static_cast<std::size_t>(i))) +
                  " safe_mode=" + std::to_string(cagents[i]->in_safe_mode()) +
                  " gain=" +
                  std::to_string(crefl[i]->front_end().gain_code()) +
                  " osc_trips=" +
                  std::to_string(cagents[i]->stats().oscillation_trips) +
                  " safe_entries=" +
                  std::to_string(cagents[i]->stats().safe_mode_entries) +
                  " applied=" + std::to_string(cagents[i]->applied_seq()) +
                  ")";
      }
      violate("invariant C: config divergence older than " +
              std::to_string(sim::to_milliseconds(divergence_bound)) + " ms:" +
              detail);
    }
    // D: the control-channel ledger closes on every tick.
    const auto& cs = control.stats();
    if (cs.sent !=
        cs.delivered + cs.dropped + cs.undeliverable + cs.in_flight) {
      violate("invariant D: control ledger open (sent " +
              std::to_string(cs.sent) + " != delivered " +
              std::to_string(cs.delivered) + " + dropped " +
              std::to_string(cs.dropped) + " + undeliverable " +
              std::to_string(cs.undeliverable) + " + in-flight " +
              std::to_string(cs.in_flight) + ")");
    }
    // E: launched searches terminate inside watchdog + slack.
    for (std::size_t i = 0; i < search_records.size(); ++i) {
      const auto& rec = search_records[i];
      if (rec.launched && !rec.done &&
          now - rec.started > search_config.watchdog + 500ms) {
        violate("invariant E: search " + std::to_string(i) +
                " still running past its watchdog");
      }
    }
    // Mirror this tick into the event log: fault-window transitions, then
    // the control snapshot (partition flag first — the verifier's A clock),
    // then one snapshot per reflector. All pure reads.
    if (recorder) {
      const auto& timeline = injector.timeline();
      for (std::size_t fi = 0; fi < timeline.size(); ++fi) {
        const sim::FaultInjector::AppliedFault& fault = timeline[fi];
        if (fault.applied && !fault_logged[fi].first) {
          fault_logged[fi].first = true;
          recorder->record(log::EventKind::kFaultOpen,
                           {{"name_h", log::Recorder::name_hash(fault.name)},
                            {"start_us", fault.start.count() / 1000},
                            {"end_us", fault.end.count() / 1000}});
        }
        if (fault.cleared && !fault_logged[fi].second) {
          fault_logged[fi].second = true;
          recorder->record(log::EventKind::kFaultClose,
                           {{"name_h", log::Recorder::name_hash(fault.name)},
                            {"start_us", fault.start.count() / 1000},
                            {"end_us", fault.end.count() / 1000}});
        }
      }
      recorder->record(
          log::EventKind::kSnapshotControl,
          {{"sent", static_cast<std::int64_t>(cs.sent)},
           {"delivered", static_cast<std::int64_t>(cs.delivered)},
           {"dropped", static_cast<std::int64_t>(cs.dropped)},
           {"undeliv", static_cast<std::int64_t>(cs.undeliverable)},
           {"in_flight", static_cast<std::int64_t>(cs.in_flight)},
           {"part", control.partitioned() ? 1 : 0}});
      const core::ReflectorConfigAgent* ragents[2] = {&agent0, &agent1};
      for (int i = 0; i < 2; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        recorder->record(
            log::EventKind::kSnapshotReflector,
            {{"r", i},
             {"gain",
              static_cast<std::int64_t>(reflectors[i]->front_end().gain_code())},
             {"safe_code",
              static_cast<std::int64_t>(ragents[i]->safe_gain_code())},
             {"safe_mode", ragents[i]->in_safe_mode() ? 1 : 0},
             {"stable", stable_flags[i] ? 1 : 0},
             {"div_age_us", plane.divergence_age(idx, now).count() / 1000},
             {"plane_part", plane.partitioned(idx) ? 1 : 0}});
      }
    }
  };
  for (sim::TimePoint t{20ms}; t < end; t += 20ms) {
    simulator.at(t, check);
  }

  // --- the session itself: frame transport on, fault accounting on ------
  vr::Session::Config session_config;
  session_config.duration = duration;
  session_config.faults = &injector;
  session_config.control_plane = &plane;
  session_config.recorder = recorder.get();
  net::TransportConfig transport;
  transport.source.target_mbps = 400.0;
  session_config.transport = transport;
  vr::Session session{simulator, scene, strategy, nullptr, nullptr,
                      session_config};
  result.report = session.run();

  // --- end-of-run invariants -------------------------------------------
  if (result.report.transport && !result.report.transport->conserved()) {
    result.violations.push_back(
        {end, "invariant D: transport packet ledger does not close"});
  }
  for (std::size_t i = 0; i < search_records.size(); ++i) {
    const auto& rec = search_records[i];
    if (!rec.launched) {
      continue;
    }
    if (!rec.done) {
      result.violations.push_back(
          {end, "invariant E: search " + std::to_string(i) +
                    " never terminated"});
    } else if (!rec.completed && rec.reason.empty()) {
      result.violations.push_back(
          {end, "invariant E: search " + std::to_string(i) +
                    " failed without a reason"});
    }
  }

  result.channel = control.stats();
  result.incidents = plane.incidents();

  // Seal the log: log_close carries the record count, then the whole
  // buffer hits disk in one shot (byte-stable across identical runs).
  if (recorder) {
    recorder->close();
  }

  // Fingerprint: a replayed seed must reproduce this hash exactly.
  using bench::fingerprint_mix;
  std::uint64_t h = sim::fnv1a("chaos_soak");
  h = fingerprint_mix(h, seed);
  h = fingerprint_mix(h, result.report.frames);
  h = fingerprint_mix(h, result.report.glitched_frames);
  h = fingerprint_mix(h, result.channel.sent);
  h = fingerprint_mix(h, result.channel.delivered);
  h = fingerprint_mix(h, result.channel.corrupted_dropped);
  h = fingerprint_mix(h, result.channel.corrupted_delivered);
  h = fingerprint_mix(h, result.channel.reordered);
  h = fingerprint_mix(h, result.channel.partition_losses);
  h = fingerprint_mix(h, result.incidents.partitions_entered);
  h = fingerprint_mix(h, result.incidents.divergences_detected);
  h = fingerprint_mix(h, result.incidents.reconciliations);
  h = fingerprint_mix(h, result.incidents.safe_mode_entries);
  h = fingerprint_mix(h, result.report.transport
                             ? result.report.transport->packets_delivered
                             : 0);
  h = fingerprint_mix(h, static_cast<std::uint64_t>(result.violations.size()));
  result.fingerprint = h;
  return result;
}

void print_usage() {
  std::printf(
      "chaos_soak — seeded control-plane chaos soak with per-tick "
      "invariants\n\n"
      "  chaos_soak [--seeds N] [--seed S] [--duration SECONDS]\n"
      "             [--disable-watchdog] [--expect-violation]\n\n"
      "  --seeds N            run seeds 1..N (default 20)\n"
      "  --seed S             run exactly one seed (replay mode)\n"
      "  --duration SECONDS   sim time per seed (default 60)\n"
      "  --disable-watchdog   tripwire: reflector silence watchdogs off;\n"
      "                       the gain-<=-leakage invariant must fire\n"
      "  --expect-violation   exit 0 only if a violation WAS observed\n"
      "  --event-log DIR      record each seed's signed event log to\n"
      "                       DIR/seed<N>.log (verify offline with\n"
      "                       tools/log_verify)\n"
      "  --json PATH          write a machine-readable summary to PATH\n\n"
      "On failure the exact single-seed replay command is printed; the\n"
      "fingerprint column lets you compare the replay bit-for-bit.\n");
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20;
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  double duration_s = 60.0;
  bool disable_watchdog = false;
  bool expect_violation = false;
  std::string event_log_dir;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single_seed = std::strtoull(argv[++i], nullptr, 10);
      have_single_seed = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--disable-watchdog") == 0) {
      disable_watchdog = true;
    } else if (std::strcmp(argv[i], "--expect-violation") == 0) {
      expect_violation = true;
    } else if (std::strcmp(argv[i], "--event-log") == 0 && i + 1 < argc) {
      event_log_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seed_list;
  if (have_single_seed) {
    seed_list.push_back(single_seed);
  } else {
    for (int s = 1; s <= seeds; ++s) {
      seed_list.push_back(static_cast<std::uint64_t>(s));
    }
  }

  if (!event_log_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(event_log_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --event-log dir %s: %s\n",
                   event_log_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  bench::print_header("Chaos soak — control-plane invariants under fire");
  std::printf("%6s %8s %9s %6s %6s %6s %6s %6s %6s %5s %18s %5s\n", "seed",
              "frames", "glitch%", "part", "div", "recon", "safe", "corr",
              "reord", "srch", "fingerprint", "viol");

  std::uint64_t total_violations = 0;
  bench::Json rows = bench::Json::array();
  for (const std::uint64_t seed : seed_list) {
    const SeedResult r =
        run_seed(seed, duration_s, !disable_watchdog, event_log_dir);
    std::printf(
        "%6llu %8llu %8.2f%% %6llu %6llu %6llu %6llu %6llu %6llu %5zu "
        "%18s %5zu\n",
        static_cast<unsigned long long>(r.seed),
        static_cast<unsigned long long>(r.report.frames),
        100.0 * r.report.glitch_fraction(),
        static_cast<unsigned long long>(r.incidents.partitions_entered),
        static_cast<unsigned long long>(r.incidents.divergences_detected),
        static_cast<unsigned long long>(r.incidents.reconciliations),
        static_cast<unsigned long long>(r.incidents.safe_mode_entries),
        static_cast<unsigned long long>(r.channel.corrupted_dropped +
                                        r.channel.corrupted_delivered),
        static_cast<unsigned long long>(r.channel.reordered), r.searches,
        bench::fingerprint_hex(r.fingerprint).c_str(), r.violations.size());
    for (const Violation& v : r.violations) {
      std::printf("  VIOLATION t=%.3fs %s\n", sim::to_seconds(v.at),
                  v.what.c_str());
    }
    if (!r.violations.empty()) {
      bench::print_replay("chaos_soak", r.seed, duration_s,
                          disable_watchdog ? " --disable-watchdog" : "");
    }
    total_violations += r.violations.size();
    bench::Json row = bench::Json::object();
    row.set("seed", r.seed)
        .set("frames", r.report.frames)
        .set("glitch_fraction", r.report.glitch_fraction())
        .set("partitions", r.incidents.partitions_entered)
        .set("divergences", r.incidents.divergences_detected)
        .set("reconciliations", r.incidents.reconciliations)
        .set("safe_mode_entries", r.incidents.safe_mode_entries)
        .set("searches", static_cast<std::uint64_t>(r.searches))
        .set("ticks_checked", r.ticks_checked)
        .set("fingerprint", bench::fingerprint_hex(r.fingerprint))
        .set("violations", static_cast<std::uint64_t>(r.violations.size()));
    rows.push(std::move(row));
  }

  if (!json_path.empty()) {
    bench::Json doc = bench::Json::object();
    doc.set("bench", "chaos_soak")
        .set("duration_s", duration_s)
        .set("seeds", static_cast<std::uint64_t>(seed_list.size()))
        .set("replay", have_single_seed)
        .set("watchdog", !disable_watchdog)
        .set("event_log", !event_log_dir.empty())
        .set("total_violations", total_violations)
        .set("pass", expect_violation ? total_violations > 0
                                      : total_violations == 0)
        .set("rows", std::move(rows));
    if (!bench::emit_json(json_path, doc)) {
      return 1;
    }
  }

  if (expect_violation) {
    if (total_violations == 0) {
      std::printf("\nFAIL: expected at least one invariant violation, saw "
                  "none — the tripwire did not fire\n");
      return 1;
    }
    std::printf("\nOK: tripwire fired (%llu violations) as expected\n",
                static_cast<unsigned long long>(total_violations));
    return 0;
  }
  if (total_violations > 0) {
    std::printf("\nFAIL: %llu invariant violations across %zu seeds\n",
                static_cast<unsigned long long>(total_violations),
                seed_list.size());
    return 1;
  }
  std::printf("\nOK: %zu seeds x %.0f s clean\n", seed_list.size(),
              duration_s);
  return 0;
}
