// Ablation: pose-aided beam tracking (Section 6 future work) vs re-running
// the reflection search, while the player walks.
//
// Strategy A: re-aim the reflector from VR tracking data (one Bluetooth
//             command, BeamTracker).
// Strategy B: re-run the reflection search whenever the beam drifts
//             (a hundred Bluetooth rounds; the link is outage meanwhile).
// Both replay the same 30 s walk; the metric is delivered frames.
#include <cstdio>

#include <core/angle_search.hpp>
#include <core/predictive_tracker.hpp>
#include <phy/mcs.hpp>
#include <sim/rng.hpp>
#include <vr/motion.hpp>
#include <vr/requirements.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

struct Outcome {
  int frames{0};
  int glitched{0};
  int retargets{0};
  double control_ms{0.0};  // time spent re-aiming (link unusable meanwhile)
};

enum class Tracking { kFullSearch, kPoseAided, kPredictive };

Outcome run_walk(Tracking mode, std::uint64_t seed, double speed_mps = 0.6) {
  sim::RngRegistry rngs{seed};
  auto scene = bench::paper_scene({2.5, 2.5}, false);
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  auto cal_rng = rngs.stream("cal");
  bench::calibrate_reflector(scene, reflector, cal_rng);
  // The link lives on the reflector for the whole session (the direct path
  // is considered blocked throughout): isolates the tracking question.
  scene.ap().node().steer_toward(reflector.position());

  vr::PlayerMotion::Config motion_config;
  motion_config.speed_mps = speed_mps;
  vr::PlayerMotion motion{scene.room(), {2.5, 2.5}, 77, motion_config};
  auto track_rng = rngs.stream("track");
  core::PredictiveTracker predictor;

  Outcome outcome;
  const auto frame = vr::kHtcVive.frame_interval();
  const double required = vr::kHtcVive.required_mbps();
  const auto bt_latency = sim::Duration{std::chrono::milliseconds{10}};
  sim::TimePoint now{};
  // While a steering command is in flight the OLD beam keeps serving; only
  // a full re-search takes the link down (the beam is swept all over).
  sim::TimePoint outage_until{};
  std::optional<std::pair<sim::TimePoint, double>> in_flight;
  const sim::TimePoint end = sim::from_seconds(30.0);
  std::uint64_t search_index = 0;

  while (now < end) {
    scene.headset().node().set_position(motion.position_at(now));
    scene.headset().node().face_toward(reflector.position());

    if (in_flight && now >= in_flight->first) {
      reflector.front_end().steer_tx(in_flight->second);
      in_flight.reset();
    }

    if (mode == Tracking::kPredictive && !in_flight) {
      // The predictor decides for itself, every pose sample, against the
      // predicted-at-actuation angle.
      const auto command = predictor.on_pose(
          now, scene.headset().node().position(), reflector, track_rng);
      if (command) {
        ++outcome.retargets;
        in_flight = {now + bt_latency, command->tx_local_angle};
        outcome.control_ms += sim::to_milliseconds(bt_latency);
      }
    }

    const double tracked = scene.true_reflector_angle_to_headset(reflector);
    const double current = reflector.front_end().tx_array().steering();
    if (mode != Tracking::kPredictive && !in_flight &&
        now >= outage_until &&
        geom::angular_distance(tracked, current) > deg_to_rad(2.5)) {
      ++outcome.retargets;
      if (mode == Tracking::kPoseAided) {
        // Aim at the *current* tracked pose; the command lands one BT
        // exchange later, by which time the player has moved on.
        std::normal_distribution<double> jitter{0.0, 0.005};
        const geom::Vec2 aim =
            scene.headset().node().position() +
            geom::Vec2{jitter(track_rng), jitter(track_rng)};
        in_flight = {now + bt_latency,
                     reflector.to_local((aim - reflector.position()).heading())};
        outcome.control_ms += sim::to_milliseconds(bt_latency);
      } else {
        // Re-run the reflection search over Bluetooth; the whole sweep is
        // dead air for the data link.
        sim::Simulator search_sim;
        sim::ControlChannel control{search_sim, {},
                                    rngs.stream("search-bt", search_index)};
        control.attach(reflector.control_name(),
                       [&](const sim::ControlMessage& m) {
                         reflector.handle(m);
                       });
        core::ReflectionResult result;
        core::ReflectionSearch search{search_sim, control, scene, reflector,
                                      core::make_search_config(1.0),
                                      rngs.stream("search", search_index)};
        search.start([&](const core::ReflectionResult& r) { result = r; });
        search_sim.run();
        ++search_index;
        outage_until = now + result.duration;
        outcome.control_ms += sim::to_milliseconds(result.duration);
      }
    }
    ++outcome.frames;
    const bool link_usable = now >= outage_until;
    const double snr = scene.via_snr(reflector).snr.value();
    const bool delivered =
        link_usable && phy::rate_mbps(rf::Decibels{snr}) >= required;
    outcome.glitched += !delivered;
    now += frame;
  }
  return outcome;
}

void print_row(const char* name, const Outcome& o) {
  std::printf("%-26s %8d %10d (%4.1f%%) %9d %11.0f ms\n", name, o.frames,
              o.glitched,
              100.0 * o.glitched / std::max(o.frames, 1), o.retargets,
              o.control_ms);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — beam tracking strategies (30 s walk at 0.6 m/s)");
  std::printf("%-26s %8s %18s %9s %14s\n", "strategy", "frames",
              "glitched", "retargets", "control time");
  print_row("full re-search each time", run_walk(Tracking::kFullSearch, 5));
  print_row("pose-aided (1 BT cmd)", run_walk(Tracking::kPoseAided, 5));
  print_row("predictive (leads motion)", run_walk(Tracking::kPredictive, 5));

  bench::print_header(
      "Same, fast player (1.8 m/s strafes): prediction starts to matter");
  std::printf("%-26s %8s %18s %9s %14s\n", "strategy", "frames",
              "glitched", "retargets", "control time");
  print_row("pose-aided (1 BT cmd)",
            run_walk(Tracking::kPoseAided, 5, 1.8));
  print_row("predictive (leads motion)",
            run_walk(Tracking::kPredictive, 5, 1.8));

  std::printf("\nreading: tracking data turns a ~1 s sweep into a ~10 ms "
              "command — the difference\nbetween seamless play and a frozen "
              "headset every time the player walks a metre.\nPredicting the "
              "pose at command-arrival only shaves the margin slightly: at "
              "room scale\nand BLE latency, reactive pose-aiming is already "
              "within a beamwidth — the residual\nglitches are link-budget "
              "geometry (player far from the reflector), not lag.\n");
  return 0;
}
