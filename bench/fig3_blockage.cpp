// Reproduces Fig. 3: impact of blockage on SNR (top panel) and on the
// 802.11ad data rate (bottom panel).
//
// Protocol (paper Section 3): headset at random LOS locations in the 5x5 m
// office; measure SNR; block the LOS with a hand / the head / another
// person's body and measure again; finally ignore the LOS direction and
// sweep both beams over all directions in 1 degree steps, keeping the best
// non-line-of-sight SNR. Rates come from the 802.11ad MCS table.
#include <cstdio>
#include <vector>

#include <phy/beam_sweep.hpp>
#include <phy/mcs.hpp>
#include <rf/codebook.hpp>
#include <sim/rng.hpp>
#include <vr/requirements.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;

struct ScenarioResult {
  std::vector<double> snr_db;
  std::vector<double> rate_mbps;
};

void record(ScenarioResult& result, double snr) {
  result.snr_db.push_back(snr);
  result.rate_mbps.push_back(phy::rate_mbps(rf::Decibels{snr}));
}

}  // namespace

int main() {
  using bench::paper_scene;
  using bench::steer_direct;

  const int kRuns = 20;
  const sim::RngRegistry rngs{42};
  const double required_mbps = vr::kHtcVive.required_mbps();
  const double required_snr =
      phy::mcs_for_rate(required_mbps)->min_snr.value();

  ScenarioResult los;
  ScenarioResult hand;
  ScenarioResult head;
  ScenarioResult body;
  ScenarioResult nlos;

  for (int run = 0; run < kRuns; ++run) {
    auto rng = rngs.stream("fig3", static_cast<std::uint64_t>(run));
    // Random headset placement with a clear LOS to the AP corner.
    auto scene = paper_scene({0.0, 0.0});
    geom::Vec2 pos;
    do {
      pos = scene.room().random_interior_point(rng, 0.8);
      scene.headset().node().set_position(pos);
      steer_direct(scene);
    } while (scene.direct_snr().value() < required_snr ||
             geom::distance(pos, scene.ap().node().position()) < 1.5);

    record(los, scene.direct_snr().value());

    const geom::Vec2 ap = scene.ap().node().position();
    const auto blocked_snr = [&](channel::Obstacle obstacle) {
      scene.room().add_obstacle(std::move(obstacle));
      steer_direct(scene);
      const double snr = scene.direct_snr().value();
      return snr;
    };

    record(hand, blocked_snr(channel::make_hand(pos, ap - pos)));
    scene.room().remove_obstacles("hand");
    record(head, blocked_snr(channel::make_head(pos, ap - pos)));
    scene.room().remove_obstacles("head");
    record(body, blocked_snr(channel::make_person(pos + (ap - pos).normalized() * 1.0)));

    // Opt. NLOS: person stays up; sweep every combination of beam angle in
    // all directions (coarse 3 deg over all face pairs, 1 deg refinement),
    // ignoring the LOS.
    auto paths = scene.paths_between(ap, pos);
    const auto sweep =
        phy::sweep_all_directions(scene.ap().node(), scene.headset().node(),
                                  paths, scene.config().link,
                                  /*nlos_only=*/true);
    record(nlos, sweep.snr.value());
    scene.room().remove_obstacles("person");
  }

  bench::print_header(
      "Fig. 3 — Blockage impact on SNR and data rate (20 placements)");
  std::printf("required: SNR >= %.1f dB for the Vive's %.0f Mbps stream\n\n",
              required_snr, required_mbps);
  std::printf("%-22s %10s %10s %10s | %12s %8s | %s\n", "scenario",
              "SNR mean", "min", "max", "rate mean", "meets?",
              "paper (approx)");
  const auto row = [&](const char* name, const ScenarioResult& r,
                       const char* paper) {
    const auto s = bench::stats_of(r.snr_db);
    const auto rate = bench::stats_of(r.rate_mbps);
    std::printf("%-22s %8.1f dB %7.1f %9.1f | %8.0f Mbps %8s | %s\n", name,
                s.mean, s.min, s.max, rate.mean,
                rate.mean >= required_mbps ? "yes" : "NO", paper);
  };
  row("LOS", los, "SNR ~25 dB, ~6.8 Gbps, yes");
  row("LOS blocked by hand", hand, ">=14 dB drop, rate fails");
  row("LOS blocked by head", head, "~20 dB drop, rate fails");
  row("LOS blocked by body", body, "~20-25 dB drop, rate fails");
  row("best NLOS (swept)", nlos, "~16 dB below LOS, rate fails");

  const double hand_drop = bench::stats_of(los.snr_db).mean -
                           bench::stats_of(hand.snr_db).mean;
  const double nlos_drop = bench::stats_of(los.snr_db).mean -
                           bench::stats_of(nlos.snr_db).mean;
  std::printf("\nmean drop: hand %.1f dB (paper: >14), best-NLOS %.1f dB "
              "(paper: ~16)\n",
              hand_drop, nlos_drop);
  return 0;
}
