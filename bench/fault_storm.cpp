// QoE under scripted fault storms: glitch rate and time-to-recover as the
// fault intensity ramps from "quiet evening" to "everything at once".
//
// Each intensity level replays the SAME 20 s session (static-ish player,
// calibrated reflector, MoVR link management) while the fault injector
// layers on more trouble: control-channel brownouts, obstacle storms,
// amplifier gain sag, sensor bias drift, and finally a reflector power-
// cycle mid-session. The interesting output is not the glitch count per se
// but how recovery time grows — MoVR's pitch is that faults cost windows of
// frames, not the session.
#include <cstdio>
#include <vector>

#include <sim/fault_injector.hpp>
#include <sim/rng.hpp>
#include <vr/fault_scenarios.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;
using namespace std::chrono_literals;

struct Row {
  const char* name;
  vr::QoeReport report;
  int faults{0};
  int recovered{0};
  double mean_ttr_ms{0.0};
  double worst_ttr_ms{0.0};
};

Row run_level(const char* name, int intensity) {
  const auto duration = sim::from_seconds(20.0);
  auto scene = bench::paper_scene({3.0, 2.2}, false);
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  sim::RngRegistry rngs{3};
  auto cal_rng = rngs.stream("cal");
  bench::calibrate_reflector(scene, reflector, cal_rng);

  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, rngs.stream("bt")};
  sim::FaultInjector injector{simulator};

  // Level 1+: a couple of control brownouts and a short obstacle storm.
  if (intensity >= 1) {
    injector.inject_control_brownout(control, sim::TimePoint{3s}, 2s,
                                     /*extra_loss=*/0.3, /*extra_latency=*/5ms);
    vr::ObstacleStormConfig storm;
    storm.start = sim::TimePoint{6s};
    storm.duration = 2s;
    storm.people = intensity;
    storm.seed = 17;
    vr::add_obstacle_storm(injector, scene.room(), storm);
  }
  // Level 2+: hardware drift — amplifier sag and sensor bias.
  if (intensity >= 2) {
    vr::add_gain_sag(injector, reflector, sim::TimePoint{9s}, 4s,
                     rf::Decibels{6.0});
    vr::add_sensor_bias_drift(injector, reflector, sim::TimePoint{9s}, 4s,
                              /*peak_bias_a=*/0.02);
  }
  // Level 3+: a reflector power-cycle while the link is riding it — a hand
  // blocks LOS over the reboot, so recovery needs the full quarantine ->
  // re-probe -> recalibration path.
  if (intensity >= 3) {
    injector.inject(
        "hand_blockage", sim::TimePoint{13s}, 3s,
        [&scene] {
          scene.room().add_obstacle(channel::make_hand(
              scene.headset().node().position(),
              scene.ap().node().position() -
                  scene.headset().node().position()));
        },
        [&scene] { scene.room().remove_obstacles("hand"); });
    vr::add_reflector_reboot(injector, reflector, sim::TimePoint{14s});
    injector.inject_control_brownout(control, sim::TimePoint{14s}, 1s,
                                     /*extra_loss=*/0.6,
                                     /*extra_latency=*/10ms);
  }

  vr::MovrStrategy strategy{simulator, scene, rngs.stream("mgr")};
  vr::Session::Config config;
  config.duration = duration;
  config.faults = &injector;
  vr::Session session{simulator, scene, strategy, nullptr, nullptr, config};

  Row row{name, session.run()};
  std::vector<double> ttrs;
  for (const auto& fr : row.report.fault_recovery) {
    ++row.faults;
    if (fr.recovered) {
      ++row.recovered;
    }
    ttrs.push_back(sim::to_milliseconds(fr.time_to_recover));
  }
  const auto ttr_stats = bench::stats_of(ttrs);
  row.mean_ttr_ms = ttr_stats.mean;
  row.worst_ttr_ms = ttr_stats.max;
  return row;
}

}  // namespace

int main() {
  std::vector<Row> rows;
  rows.push_back(run_level("baseline (no faults)", 0));
  rows.push_back(run_level("brownouts + storm", 1));
  rows.push_back(run_level("+ hw drift (sag, bias)", 2));
  rows.push_back(run_level("+ reflector reboot", 3));

  bench::print_header(
      "Fault storm — QoE vs fault intensity, 20 s MoVR session");
  std::printf("%-24s %8s %16s %8s %10s %12s %12s\n", "intensity", "frames",
              "glitched", "faults", "recovered", "mean TTR", "worst TTR");
  for (const Row& row : rows) {
    std::printf("%-24s %8lu %8lu (%5.1f%%) %8d %10d %9.0f ms %9.0f ms\n",
                row.name, static_cast<unsigned long>(row.report.frames),
                static_cast<unsigned long>(row.report.glitched_frames),
                100.0 * row.report.glitch_fraction(), row.faults,
                row.recovered, row.mean_ttr_ms, row.worst_ttr_ms);
  }

  // Machine-readable summary for trend tracking (stdout only; this bench
  // has no committed artifact).
  bench::Json levels = bench::Json::array();
  for (const Row& row : rows) {
    bench::Json level = bench::Json::object();
    level.set("glitch_fraction", row.report.glitch_fraction())
        .set("faults", row.faults)
        .set("recovered", row.recovered)
        .set("mean_ttr_ms", row.mean_ttr_ms);
    levels.push(std::move(level));
  }
  bench::Json doc = bench::Json::object();
  doc.set("bench", "fault_storm").set("levels", std::move(levels));
  bench::emit_json("", doc);
  return 0;
}
