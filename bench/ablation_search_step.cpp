// Ablation: angle-search sweep granularity.
//
// The paper sweeps at 1 degree. Coarser steps finish faster (fewer
// Bluetooth rounds x fewer AP measurements) but aim less precisely; with a
// ~10 degree beam the SNR penalty stays small up to a point. This bench
// maps that trade-off.
#include <cstdio>
#include <vector>

#include <core/angle_search.hpp>
#include <sim/rng.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;
  using geom::rad_to_deg;

  sim::RngRegistry rngs{17};
  const int kRuns = 25;

  bench::print_header("Ablation — angle-search step size (25 poses each)");
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "step", "mean err",
              "max err", "<=2 deg", "duration", "measurements");

  for (const double step : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    std::vector<double> errors;
    std::vector<double> durations;
    int within = 0;
    int measurements = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto place =
          rngs.stream("step-place", static_cast<std::uint64_t>(run));
      auto scene = bench::paper_scene({2.6, 1.4}, false);
      std::uniform_real_distribution<double> along{1.2, 4.4};
      std::uniform_real_distribution<double> tilt{-0.3, 0.3};
      auto& reflector = scene.add_reflector(
          {along(place), 4.8}, deg_to_rad(270.0) + tilt(place));

      sim::Simulator simulator;
      sim::ControlChannel control{
          simulator, {}, rngs.stream("step-bt", static_cast<std::uint64_t>(run))};
      control.attach(reflector.control_name(),
                     [&](const sim::ControlMessage& m) { reflector.handle(m); });
      core::IncidenceResult result;
      core::IncidenceSearch search{
          simulator, control, scene, reflector,
          core::make_search_config(step),
          rngs.stream("step-meas", static_cast<std::uint64_t>(run))};
      search.start([&](const core::IncidenceResult& r) { result = r; });
      simulator.run();

      const double truth = scene.true_reflector_angle_to_ap(reflector);
      const double error =
          rad_to_deg(geom::angular_distance(result.reflector_angle, truth));
      errors.push_back(error);
      durations.push_back(sim::to_milliseconds(result.duration));
      within += error <= 2.0;
      measurements = result.measurements;
    }
    const auto err = bench::stats_of(errors);
    const auto dur = bench::stats_of(durations);
    std::printf("%7.1f deg %9.2f deg %9.2f deg %9d/%d %9.0f ms %12d\n", step,
                err.mean, err.max, within, kRuns, dur.mean, measurements);
  }

  std::printf("\nreading: 1 degree (the paper's choice) is already finer "
              "than needed for a ~10 degree\nbeam; 5 degrees halves nothing "
              "important but 10 degrees starts missing the peak.\n");
  return 0;
}
