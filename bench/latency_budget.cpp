// Section 6's timing and power arguments, measured on the simulated system:
//
//  * every runtime control operation (steering, retargeting, handover) must
//    fit the 10 ms display budget;
//  * the full beam search is the one slow step and belongs at install time;
//  * a pocket battery replaces the USB power cable for a full play session.
#include <cstdio>

#include <core/movr.hpp>
#include <sim/rng.hpp>
#include <vr/requirements.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  sim::RngRegistry rngs{7};
  auto scene = bench::paper_scene({3.0, 2.0}, false);
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));

  bench::print_header("Sec. 6 — Latency budget of every control operation");
  const double frame_ms = sim::to_milliseconds(vr::kHtcVive.frame_interval());
  std::printf("display budget: %.1f ms frame interval, 10 ms motion-to-photon\n\n",
              frame_ms);
  std::printf("%-42s %12s %s\n", "operation", "cost", "fits a frame?");

  // 1. Electronic beam steering (phase shifter + DAC settle).
  std::printf("%-42s %9.3f ms %s\n", "AP/headset electronic beam steer",
              0.001, "yes (sub-microsecond)");

  // 2. Full incidence search (install time).
  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, rngs.stream("bt")};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });
  core::IncidenceResult incidence;
  core::IncidenceSearch search{simulator, control, scene, reflector,
                               core::make_search_config(1.0),
                               rngs.stream("inc")};
  search.start([&](const core::IncidenceResult& r) { incidence = r; });
  simulator.run();
  std::printf("%-42s %9.1f ms %s\n",
              "full 101x101 backscatter angle search",
              sim::to_milliseconds(incidence.duration),
              "NO -> install-time only");

  // 3. Reflection search (start-up).
  scene.headset().node().face_toward(reflector.position());
  core::ReflectionResult reflection;
  core::ReflectionSearch rsearch{simulator, control, scene, reflector,
                                 core::make_search_config(1.0),
                                 rngs.stream("ref")};
  rsearch.start([&](const core::ReflectionResult& r) { reflection = r; });
  simulator.run();
  std::printf("%-42s %9.1f ms %s\n", "reflection-angle search (start-up)",
              sim::to_milliseconds(reflection.duration),
              "NO -> start-up only");

  // 4. Gain-control ramp.
  auto gain_rng = rngs.stream("gain");
  scene.ap().node().steer_toward(reflector.position());
  const auto gain = core::GainController::run(
      reflector.front_end(), scene.reflector_input(reflector), gain_rng);
  std::printf("%-42s %9.1f ms %s\n", "adaptive gain ramp (current knee)",
              sim::to_milliseconds(gain.duration),
              "NO -> runs at calibration");

  // 5. Pose-aided retarget (the paper's fast-tracking future work).
  auto tracker_rng = rngs.stream("tracker");
  const auto retarget =
      core::BeamTracker::retarget(scene, reflector, tracker_rng);
  std::printf("%-42s %9.1f ms %s\n", "pose-aided reflector retarget (1 BT cmd)",
              sim::to_milliseconds(retarget.duration),
              sim::to_milliseconds(retarget.duration) <= 2.0 * frame_ms
                  ? "within 1-2 frames"
                  : "NO");

  // 6. Full handover (detection to reflector-backed frame), measured live.
  {
    auto scene2 = bench::paper_scene({3.0, 2.0}, false);
    auto& r2 = scene2.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    auto cal_rng = rngs.stream("cal2");
    bench::calibrate_reflector(scene2, r2, cal_rng);
    sim::Simulator sim2;
    core::LinkManager manager{sim2, scene2, rngs.stream("mgr")};
    for (int i = 0; i < 5; ++i) {
      manager.on_frame();
      sim2.run_until(sim2.now() + vr::kHtcVive.frame_interval());
    }
    scene2.room().add_obstacle(channel::make_hand(
        scene2.headset().node().position(),
        scene2.ap().node().position() - scene2.headset().node().position()));
    const auto blocked_at = sim2.now();
    int frames = 0;
    while (manager.on_frame().value() < 20.0 && frames < 50) {
      sim2.run_until(sim2.now() + vr::kHtcVive.frame_interval());
      ++frames;
    }
    std::printf("%-42s %9.1f ms %s\n",
                "blockage handover (detect + switch)",
                sim::to_milliseconds(sim2.now() - blocked_at),
                frames <= 5 ? "a few frames" : "NO");
  }

  bench::print_header("Sec. 6 — Battery sizing for the untethered headset");
  const core::BatteryModel battery{};
  std::printf("pack: %.0f mAh; draw %.0f mA avg / %.0f mA peak (HTC Vive)\n",
              battery.capacity_mah, battery.average_load_ma,
              battery.peak_load_ma);
  std::printf("runtime: %.1f h typical, %.1f h worst case\n",
              battery.runtime_hours(), battery.worst_case_hours());
  std::printf("paper: a 5200 mAh battery runs the headset for 4-5 hours\n");
  return 0;
}
