// Predictive vs reactive link control under motion-induced blockage.
//
// The tentpole acceptance harness for the predictive tier (DESIGN.md §10).
// Each seed builds one world: the paper office, a person standing on the
// AP side of the room, a calibrated reflector, and a headset pacing a
// fixed line that crosses the person's shadow once per leg — the one
// trajectory a short pose history can genuinely extrapolate. A seeded
// fault storm (loss windows that force the Gilbert–Elliott chain bad)
// plays over every arm. The world is a pure function of the seed; the
// four arms differ only in link control:
//
//   reactive    MovrStrategy — moves only after the SNR has collapsed
//   predictive  PredictiveMovrStrategy, honest forecasts (chaos 0)
//   chaos-50    same, but half of all forecasts inverted
//   chaos-100   every forecast wrong — real windows suppressed, spurious
//               ones fabricated in clear air
//
// Gates (aggregated across seeds):
//   - every arm's extended packet ledger (speculative buckets included)
//     closes at every 20 ms check and at session end
//   - predictive beats reactive on BOTH glitched frames and pooled p99
//   - the chaos arms stay within epsilon of reactive — a 100% wrong
//     forecaster must not regress the link beyond the containment budget
//   - the predictive tier actually engaged (risk windows, proactive
//     handovers, speculative dups all nonzero) and the blocker actually
//     bit the reactive arm (otherwise the comparison is vacuous)
//
// Every draw derives from the seed via sim::RngRegistry; a failing seed
// replays bit-identically and prints the replay command. Fingerprints
// compare replays byte-for-byte.
//
// Usage: predictive [--seeds N] [--seed S] [--duration SECONDS]
//                   [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sim/fault_injector.hpp>
#include <sim/rng.hpp>
#include <vr/predictive.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;
using namespace std::chrono_literals;

enum class Arm { kReactive, kPredictive, kChaosHalf, kChaosFull };

constexpr const char* kArmNames[] = {"reactive", "predictive", "chaos-50",
                                     "chaos-100"};
constexpr int kArms = 4;

struct ArmResult {
  vr::QoeReport report;
  std::uint64_t ledger_checks{0};
  std::uint64_t ledger_violations{0};
  std::uint64_t fingerprint{0};
};

double uniform(std::mt19937_64& g, double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(g);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// The person stands still for the whole session; the *headset* does the
/// moving (the blockage is motion-induced, which is what makes it
/// forecastable from pose history).
constexpr geom::Vec2 kPerson{1.7, 1.3};

vr::BlockageScript standing_person(sim::Duration duration) {
  vr::BlockageEvent person;
  person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
  person.start = sim::TimePoint{};
  person.duration = duration;
  person.path_from = kPerson;
  person.path_to = kPerson;
  return vr::BlockageScript{std::vector<vr::BlockageEvent>{person}};
}

/// The pacing line: perpendicular to the AP->person ray, centered on a
/// seeded point inside the person's shadow, long enough that each leg
/// starts and ends in clear air. Crossing the shadow at walking speed
/// gives the forecaster a few tens of ms of honest warning per leg.
struct PacingLine {
  geom::Vec2 a;
  geom::Vec2 b;
};

PacingLine pacing_line(std::mt19937_64& chaos) {
  const geom::Vec2 ap{0.4, 0.4};  // bench::paper_scene's AP corner
  const geom::Vec2 ray = (kPerson - ap).normalized();
  const geom::Vec2 perp{-ray.y, ray.x};
  const geom::Vec2 cross = ap + ray * uniform(chaos, 2.9, 3.6);
  const double half = uniform(chaos, 0.85, 1.1);
  return PacingLine{cross + perp * half, cross - perp * half};
}

/// One seed, one arm. The world — scene, blocker, pacing line, fault
/// windows, burst chain, every RNG stream — is a pure function of `seed`,
/// so the four arms differ only in the link-control strategy.
ArmResult run_arm(Arm arm, std::uint64_t seed, double duration_s) {
  const auto duration = sim::from_seconds(duration_s);
  const sim::TimePoint end{duration};
  sim::RngRegistry rngs{seed};
  auto chaos = rngs.stream("chaos");

  const PacingLine line = pacing_line(chaos);
  auto scene = bench::paper_scene(line.a, false);
  bench::steer_direct(scene);
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  auto cal_rng = rngs.stream("cal");
  bench::calibrate_reflector(scene, reflector, cal_rng);

  sim::Simulator simulator;
  // Brisk pacing, short end pauses: several shadow crossings per session,
  // each one a blockage onset the reactive tier can only chase.
  vr::PacingMotion::Config pacing;
  pacing.speed_mps = 1.2;
  pacing.pause = 200ms;
  vr::PacingMotion motion{line.a, line.b, pacing};
  const auto script = standing_person(duration);

  // Seeded fault storm: while a loss window is open the session marks the
  // link stressed and forces the burst chain's bad state in every arm.
  sim::FaultInjector faults{simulator};
  const int windows = std::max(2, static_cast<int>(duration_s / 3.0));
  for (int i = 0; i < windows; ++i) {
    const double slot = duration_s / static_cast<double>(windows);
    const double start = slot * i + uniform(chaos, 0.1 * slot, 0.6 * slot);
    const double len = uniform(chaos, 0.2, 0.45);
    faults.inject("loss-window", sim::TimePoint{sim::from_seconds(start)},
                  sim::from_seconds(len), [] {});
  }

  vr::Session::Config config;
  config.duration = duration;
  config.faults = &faults;
  // Closed-loop rate control: the adapter lags a collapsing SNR, so every
  // un-forecast blockage onset pays real packet loss until it backs off —
  // the cost the proactive handover exists to avoid.
  config.realistic_rate_control = true;
  config.rate_control_seed = seed * 13 + 5;
  net::TransportConfig transport;
  transport.source.target_mbps = 800.0;
  transport.ack_delay = std::chrono::microseconds{500};
  transport.arq.window = 16;
  transport.adaptive_fec = true;
  transport.source.seed = seed * 11 + 1;
  transport.seed = seed * 17 + 3;
  config.transport = transport;
  sim::BurstChannel::Config burst;
  burst.seed = rngs.stream("burst")();
  burst.loss_bad = 0.25;
  config.burst_loss = burst;

  auto mgr_rng = rngs.stream("mgr");
  ArmResult result;
  const auto run_session = [&](vr::LinkStrategy& strategy) {
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    for (sim::TimePoint t{20ms}; t < end; t += 20ms) {
      simulator.at(t, [&result, &session] {
        ++result.ledger_checks;
        if (!session.transport()->ledger_closes()) {
          ++result.ledger_violations;
        }
      });
    }
    result.report = session.run();
  };

  if (arm == Arm::kReactive) {
    vr::MovrStrategy strategy{simulator, scene, mgr_rng};
    run_session(strategy);
  } else {
    vr::PredictiveMovrStrategy::Config pcfg;
    pcfg.forecaster.chaos_rate = arm == Arm::kChaosHalf   ? 0.5
                                 : arm == Arm::kChaosFull ? 1.0
                                                          : 0.0;
    pcfg.forecaster.chaos_seed = rngs.stream("chaos.forecast")();
    vr::PredictiveMovrStrategy strategy{simulator, scene, mgr_rng, pcfg};
    run_session(strategy);
  }

  const net::TransportMetrics& m = *result.report.transport;
  std::uint64_t h = sim::fnv1a("predictive");
  h = mix(h, seed);
  h = mix(h, static_cast<std::uint64_t>(arm));
  h = mix(h, m.frames_emitted);
  h = mix(h, m.deadline_misses);
  h = mix(h, m.packets_enqueued);
  h = mix(h, m.packets_delivered);
  h = mix(h, m.packets_dropped);
  h = mix(h, m.packets_recovered_delivered);
  h = mix(h, m.speculative_enqueued);
  h = mix(h, m.speculative_dups);
  h = mix(h, m.speculative_saves);
  h = mix(h, m.retransmits);
  h = mix(h, result.report.glitched_frames);
  if (result.report.predictive.has_value()) {
    const vr::PredictiveLinkStats& p = *result.report.predictive;
    h = mix(h, static_cast<std::uint64_t>(p.risk_windows));
    h = mix(h, static_cast<std::uint64_t>(p.proactive_handovers));
    h = mix(h, static_cast<std::uint64_t>(p.mispredictions));
    h = mix(h, static_cast<std::uint64_t>(p.chaos_garbled));
  }
  result.fingerprint = h;
  return result;
}

void print_usage() {
  std::printf(
      "predictive — predictive vs reactive link control under a pacing\n"
      "headset crossing a standing blocker's shadow, plus a seeded fault\n"
      "storm\n\n"
      "  predictive [--seeds N] [--seed S] [--duration SECONDS]\n"
      "             [--json PATH]\n\n"
      "  --seeds N            run seeds 1..N (default 5)\n"
      "  --seed S             run exactly one seed (replay mode)\n"
      "  --duration SECONDS   sim time per seed (default 16)\n"
      "  --json PATH          write a machine-readable summary to PATH\n\n"
      "Exits nonzero when any arm's extended packet ledger (speculative\n"
      "buckets included) fails a 20 ms check, when the predictive arm does\n"
      "not beat the reactive arm on both glitched frames and pooled p99,\n"
      "or when a chaos arm (forced mispredictions, up to 100%% wrong)\n"
      "regresses beyond the containment epsilon. On failure the\n"
      "single-seed replay command is printed; fingerprints compare\n"
      "replays bit-for-bit.\n");
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 5;
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  double duration_s = 16.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single_seed = std::strtoull(argv[++i], nullptr, 10);
      have_single_seed = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seed_list;
  if (have_single_seed) {
    seed_list.push_back(single_seed);
  } else {
    for (int s = 1; s <= seeds; ++s) {
      seed_list.push_back(static_cast<std::uint64_t>(s));
    }
  }

  bench::print_header(
      "Predictive link control — forecast blockage, hand over before it "
      "lands");
  std::printf("%5s %-11s %10s %8s %8s %8s %8s %8s %8s %18s\n", "seed", "arm",
              "glitched", "p99ms", "proact", "windows", "mispred", "specdup",
              "saves", "fingerprint");

  int failures = 0;
  // Aggregates across seeds, indexed by arm.
  std::uint64_t glitched[kArms] = {0, 0, 0, 0};
  std::uint64_t frames[kArms] = {0, 0, 0, 0};
  std::uint64_t spec_dups[kArms] = {0, 0, 0, 0};
  std::uint64_t spec_saves[kArms] = {0, 0, 0, 0};
  long risk_windows[kArms] = {0, 0, 0, 0};
  long proactive[kArms] = {0, 0, 0, 0};
  long mispredictions[kArms] = {0, 0, 0, 0};
  long chaos_garbled[kArms] = {0, 0, 0, 0};
  std::vector<double> pooled[kArms];

  const auto wall_start = std::chrono::steady_clock::now();
  for (const std::uint64_t seed : seed_list) {
    for (int a = 0; a < kArms; ++a) {
      const ArmResult r = run_arm(static_cast<Arm>(a), seed, duration_s);
      const net::TransportMetrics& m = *r.report.transport;
      const vr::PredictiveLinkStats p =
          r.report.predictive.value_or(vr::PredictiveLinkStats{});
      std::printf("%5llu %-11s %5llu/%-4llu %8.2f %8d %8d %8d %8llu %8llu "
                  "%018llx\n",
                  static_cast<unsigned long long>(seed), kArmNames[a],
                  static_cast<unsigned long long>(r.report.glitched_frames),
                  static_cast<unsigned long long>(r.report.frames),
                  m.p99_ms, p.proactive_handovers, p.risk_windows,
                  p.mispredictions,
                  static_cast<unsigned long long>(m.speculative_dups),
                  static_cast<unsigned long long>(m.speculative_saves),
                  static_cast<unsigned long long>(r.fingerprint));
      glitched[a] += r.report.glitched_frames;
      frames[a] += r.report.frames;
      spec_dups[a] += m.speculative_dups;
      spec_saves[a] += m.speculative_saves;
      risk_windows[a] += p.risk_windows;
      proactive[a] += p.proactive_handovers;
      mispredictions[a] += p.mispredictions;
      chaos_garbled[a] += p.chaos_garbled;
      const auto samples = bench::latency_samples(m);
      pooled[a].insert(pooled[a].end(), samples.begin(), samples.end());

      bool arm_failed = false;
      if (r.ledger_violations > 0) {
        std::printf("FAIL: %llu of %llu ledger checks open (seed %llu, %s)\n",
                    static_cast<unsigned long long>(r.ledger_violations),
                    static_cast<unsigned long long>(r.ledger_checks),
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (!m.conserved()) {
        std::printf("FAIL: final packet ledger does not close (seed %llu, "
                    "%s)\n",
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (!r.report.burst.has_value() || r.report.burst->forced_bad == 0) {
        std::printf("FAIL: the fault storm never forced the burst chain bad "
                    "(seed %llu, %s)\n",
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (arm_failed) {
        std::printf("  replay: predictive --seed %llu --duration %g\n",
                    static_cast<unsigned long long>(seed), duration_s);
        ++failures;
      }
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const int react = static_cast<int>(Arm::kReactive);
  const int pred = static_cast<int>(Arm::kPredictive);
  double p99[kArms];
  for (int a = 0; a < kArms; ++a) {
    p99[a] = bench::percentile(pooled[a], 0.99);
  }

  std::printf("\n%-11s %10s %10s %8s %8s %8s\n", "aggregate", "glitched",
              "p99ms", "proact", "mispred", "garbled");
  for (int a = 0; a < kArms; ++a) {
    std::printf("%-11s %6llu/%-4llu %9.2f %8ld %8ld %8ld\n", kArmNames[a],
                static_cast<unsigned long long>(glitched[a]),
                static_cast<unsigned long long>(frames[a]), p99[a],
                proactive[a], mispredictions[a], chaos_garbled[a]);
  }

  const auto emit_summary = [&](int gate_failures) {
    if (json_path.empty()) {
      return true;
    }
    bench::Json arms = bench::Json::array();
    for (int a = 0; a < kArms; ++a) {
      bench::Json arm = bench::Json::object();
      arm.set("name", kArmNames[a])
          .set("p50_ms", bench::percentile(pooled[a], 0.50))
          .set("p99_ms", p99[a])
          .set("frames", frames[a])
          .set("glitched_frames", glitched[a])
          .set("risk_windows", risk_windows[a])
          .set("proactive_handovers", proactive[a])
          .set("mispredictions", mispredictions[a])
          .set("chaos_garbled", chaos_garbled[a])
          .set("speculative_dups", spec_dups[a])
          .set("speculative_saves", spec_saves[a]);
      arms.push(std::move(arm));
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "predictive")
        .set("wall_time_s", wall_s)
        .set("duration_s", duration_s)
        .set("seeds", static_cast<std::uint64_t>(seed_list.size()))
        .set("replay", have_single_seed)
        .set("pass", gate_failures == 0)
        .set("arms", std::move(arms));
    return bench::emit_json(json_path, doc);
  };

  // The policy gates are statistical aggregates — they bind on the
  // multi-seed sweep; a single-seed replay reproduces a ledger violation
  // or a fingerprint bit-identically.
  if (have_single_seed) {
    if (!emit_summary(failures)) {
      ++failures;
    }
    if (failures == 0) {
      std::printf("\nOK: single-seed replay, ledgers closed (aggregate "
                  "policy gates apply to multi-seed sweeps only)\n");
      return 0;
    }
    std::printf("\nFAIL: %d gate(s) failed\n", failures);
    return 1;
  }

  // Gate 1: the predictive arm must beat reactive on BOTH axes.
  if (!(glitched[pred] < glitched[react])) {
    std::printf("FAIL: predictive glitched %llu does not beat reactive "
                "%llu\n",
                static_cast<unsigned long long>(glitched[pred]),
                static_cast<unsigned long long>(glitched[react]));
    ++failures;
  }
  if (!(p99[pred] < p99[react])) {
    std::printf("FAIL: predictive pooled p99 %.2f ms does not beat reactive "
                "%.2f ms\n",
                p99[pred], p99[react]);
    ++failures;
  }

  // Gate 2: misprediction containment. Even a 100% wrong forecaster must
  // stay within epsilon of the reactive baseline: a bounded number of
  // wasted proactive handovers and the aperture-split penalty are the
  // whole permitted cost.
  const std::uint64_t glitch_epsilon =
      std::max<std::uint64_t>(5, frames[react] / 50);
  const double p99_epsilon_ms = 1.0;
  for (const int a : {static_cast<int>(Arm::kChaosHalf),
                      static_cast<int>(Arm::kChaosFull)}) {
    if (glitched[a] > glitched[react] + glitch_epsilon) {
      std::printf("FAIL: %s glitched %llu exceeds reactive %llu + epsilon "
                  "%llu\n",
                  kArmNames[a], static_cast<unsigned long long>(glitched[a]),
                  static_cast<unsigned long long>(glitched[react]),
                  static_cast<unsigned long long>(glitch_epsilon));
      ++failures;
    }
    if (p99[a] > p99[react] + p99_epsilon_ms) {
      std::printf("FAIL: %s p99 %.2f ms exceeds reactive %.2f ms + %.1f ms\n",
                  kArmNames[a], p99[a], p99[react], p99_epsilon_ms);
      ++failures;
    }
  }

  // Gate 3: engagement — the machinery under test must actually have run.
  if (risk_windows[pred] == 0 || proactive[pred] == 0 ||
      spec_dups[pred] + spec_saves[pred] == 0) {
    std::printf("FAIL: the predictive tier never engaged (windows %ld, "
                "proactive %ld, spec dups %llu, saves %llu)\n",
                risk_windows[pred], proactive[pred],
                static_cast<unsigned long long>(spec_dups[pred]),
                static_cast<unsigned long long>(spec_saves[pred]));
    ++failures;
  }
  const int cfull = static_cast<int>(Arm::kChaosFull);
  if (chaos_garbled[cfull] == 0 || mispredictions[cfull] == 0) {
    std::printf("FAIL: the chaos knob never garbled a forecast (garbled "
                "%ld, mispredictions %ld)\n",
                chaos_garbled[cfull], mispredictions[cfull]);
    ++failures;
  }
  if (glitched[react] == 0) {
    std::printf("FAIL: the blocker never bit the reactive arm — the "
                "comparison is vacuous\n");
    ++failures;
  }

  if (!emit_summary(failures)) {
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nOK: %zu seeds x %.0f s x %d arms, ledgers closed, "
                "predictive beats reactive, mispredictions contained\n",
                seed_list.size(), duration_s, kArms);
    return 0;
  }
  std::printf("\nFAIL: %d gate(s) failed\n", failures);
  return 1;
}
