// Reproduces Fig. 7: TX->RX leakage of the reflector across TX beam angles
// (40..140 degrees) for RX beam angles 50 and 65 degrees.
//
// The paper's takeaway — leakage varies by up to ~20 dB with the beam
// angles, so a fixed amplifier gain is either wasteful or unstable — is
// printed as the per-curve min/max/swing summary.
#include <cstdio>
#include <memory>

#include <geom/angle.hpp>
#include <hw/leakage.hpp>
#include <sim/trace.hpp>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace movr;
  using geom::deg_to_rad;

  const hw::LeakageModel model;

  // Optional CSV dump: fig7_leakage <out.csv>
  std::unique_ptr<sim::TraceWriter> csv;
  if (argc > 1) {
    csv = std::make_unique<sim::TraceWriter>(
        argv[1], std::vector<std::string>{"rx_deg", "tx_deg", "coupling_db"});
  }

  bench::print_header(
      "Fig. 7 — Leakage between TX and RX antennas vs TX beam angle");

  for (const double rx_deg : {50.0, 65.0}) {
    std::printf("\nRX angle %.0f deg (leakage TX->RX, dB):\n", rx_deg);
    std::printf("  %-8s %s\n", "TX deg", "coupling");
    std::vector<double> series;
    for (double tx_deg = 40.0; tx_deg <= 140.0; tx_deg += 1.0) {
      const double c =
          model.coupling(deg_to_rad(tx_deg), deg_to_rad(rx_deg)).value();
      series.push_back(c);
      if (csv != nullptr) {
        csv->row({rx_deg, tx_deg, c});
      }
      if (static_cast<int>(tx_deg) % 5 == 0) {
        std::printf("  %6.0f   %7.1f  |%s\n", tx_deg, c,
                    std::string(static_cast<std::size_t>(
                                    std::max(0.0, (c + 90.0) / 1.2)),
                                '#')
                        .c_str());
      }
    }
    const auto s = bench::stats_of(series);
    std::printf("  summary: min %.1f dB, max %.1f dB, swing %.1f dB\n",
                s.min, s.max, s.max - s.min);
    if (rx_deg == 50.0) {
      std::printf("  paper:   roughly -80..-50 dB at RX 50\n");
    } else {
      std::printf("  paper:   roughly -70..-55 dB at RX 65\n");
    }
  }

  std::printf("\npaper claim: \"the leakage variation can be as high as "
              "20 dB\" -> adaptive gain control is required.\n");
  return 0;
}
