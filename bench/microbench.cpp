// google-benchmark microbenchmarks of the simulator's hot paths: these set
// how long the experiment benches take and bound what a real-time control
// loop built on this library could evaluate per frame.
#include <benchmark/benchmark.h>

#include <channel/path_solver.hpp>
#include <channel/ray_tracer.hpp>
#include <core/coverage.hpp>
#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <phy/beam_sweep.hpp>
#include <phy/link.hpp>
#include <rf/codebook.hpp>
#include <sim/rng.hpp>

namespace {

using namespace movr;
using geom::deg_to_rad;

core::Scene make_scene() {
  return core::Scene{channel::Room::paper_office(),
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void BM_ArrayGain(benchmark::State& state) {
  rf::PhasedArray array;
  array.steer(deg_to_rad(75.0));
  double angle = 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.gain(angle).value());
    angle += 1e-4;
  }
}
BENCHMARK(BM_ArrayGain);

void BM_ArraySteer(benchmark::State& state) {
  rf::PhasedArray array;
  double angle = deg_to_rad(40.0);
  for (auto _ : state) {
    array.steer(angle);
    angle += 1e-4;
  }
}
BENCHMARK(BM_ArraySteer);

void BM_RayTrace(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::RayTracer tracer{room};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_RayTrace);

// The three tiers of the path-query stack, same endpoints throughout.
// Uncached: build the wall-image tree from scratch every call (what the
// seed's per-cell RayTracer construction paid). Solver: images precomputed
// once, solve per call. Cached: the scene's revisioned oracle memoises the
// whole answer.
void BM_PathQueryUncached(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  for (auto _ : state) {
    const channel::PathSolver solver{room};
    benchmark::DoNotOptimize(solver.solve({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_PathQueryUncached);

void BM_PathQuerySolver(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::PathSolver solver{room};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_PathQuerySolver);

void BM_PathQueryCached(benchmark::State& state) {
  const auto scene = make_scene();
  scene.reset_oracle_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.paths_between({0.4, 0.4}, {3.3, 2.7}));
  }
  state.counters["hit_rate"] = scene.oracle_stats().hit_rate();
}
BENCHMARK(BM_PathQueryCached);

void BM_CoverageMap(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().set_gain_code(200);
  scene.ap().node().steer_toward(reflector.position());
  double hit_rate = 0.0;
  for (auto _ : state) {
    const auto map = core::compute_coverage(scene, 0.25, 0.5, threads);
    hit_rate = map.oracle.hit_rate();
    benchmark::DoNotOptimize(map.cells.data());
  }
  state.counters["threads"] = threads;
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_CoverageMap)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LinkSnr(benchmark::State& state) {
  auto scene = make_scene();
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.direct_snr().value());
  }
}
BENCHMARK(BM_LinkSnr);

void BM_ViaReflectorSnr(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(200);
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.via_snr(reflector).snr.value());
  }
}
BENCHMARK(BM_ViaReflectorSnr);

void BM_LeakageEval(benchmark::State& state) {
  const hw::LeakageModel model;
  double tx = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.coupling(tx, 1.1).value());
    tx += 1e-4;
  }
}
BENCHMARK(BM_LeakageEval);

void BM_GainControlRamp(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  const rf::DbmPower input = scene.reflector_input(reflector);
  std::mt19937_64 rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GainController::run(reflector.front_end(), input, rng));
  }
}
BENCHMARK(BM_GainControlRamp);

void BM_BeamSweep21x21(benchmark::State& state) {
  auto scene = make_scene();
  const auto codebook = rf::paper_sector_codebook(5.0);
  auto paths = scene.paths_between(scene.ap().node().position(),
                                   scene.headset().node().position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::sweep_best_beams(
        scene.ap().node(), scene.headset().node(), paths,
        scene.config().link, codebook, codebook));
  }
}
BENCHMARK(BM_BeamSweep21x21);

void BM_WidebandPower(benchmark::State& state) {
  std::vector<phy::PathComponent> components;
  for (int i = 0; i < 12; ++i) {
    components.push_back({std::polar(1e-3, 0.3 * i), 3.0 + 0.7 * i});
  }
  const phy::LinkConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phy::wideband_power(components, config, rf::Decibels{11.0}));
  }
}
BENCHMARK(BM_WidebandPower);

void BM_BackscatterMeasurement(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().set_gain_code(170);
  reflector.front_end().set_modulating(true);
  const double both = scene.true_reflector_angle_to_ap(reflector);
  reflector.front_end().steer_rx(both);
  reflector.front_end().steer_tx(both);
  scene.ap().node().steer_toward(reflector.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.backscatter_at_ap(reflector).value());
  }
}
BENCHMARK(BM_BackscatterMeasurement);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.after(sim::Duration{(i * 37) % 1000},
                      [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace

BENCHMARK_MAIN();
