// google-benchmark microbenchmarks of the simulator's hot paths: these set
// how long the experiment benches take and bound what a real-time control
// loop built on this library could evaluate per frame.
//
// Beyond the standard google-benchmark cases, `--json PATH` runs the
// batch-vs-scalar comparison summary: the coverage-grid path query through
// the scalar APIs (solve() / paths_between() per pair) against the SoA
// batch stack (solve_batch / query_batch), with a bit-identity cross-check
// and a hard gate on the warmed oracle speedup (DESIGN.md §11 promises
// >= 10x). The summary writes the BENCH_microbench.json artifact via the
// shared bench::Json emitter; CI regenerates and uploads it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <channel/path_batch.hpp>
#include <channel/path_solver.hpp>
#include <channel/ray_tracer.hpp>
#include <core/channel_oracle.hpp>
#include <core/coverage.hpp>
#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <net/transport.hpp>
#include <phy/beam_sweep.hpp>
#include <phy/link.hpp>
#include <rf/codebook.hpp>
#include <sim/rng.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

/// The tentpole workload: one coverage grid's worth of AP->cell endpoint
/// pairs over the paper office (same spacing compute_coverage defaults to).
channel::EndpointBatch coverage_grid_endpoints(const channel::Room& room,
                                               double spacing = 0.25) {
  channel::EndpointBatch grid;
  const geom::Vec2 ap{0.4, 0.4};
  for (double y = 0.4; y <= room.depth() - 0.4 + 1e-9; y += spacing) {
    for (double x = 0.4; x <= room.width() - 0.4 + 1e-9; x += spacing) {
      grid.push(ap, {x, y});
    }
  }
  return grid;
}

net::TransportConfig steady_transport_config() {
  net::TransportConfig config;
  config.source.fps = 90.0;
  config.source.target_mbps = 2000.0;
  config.source.latency_budget = std::chrono::milliseconds{10};
  config.fec.k = 4;
  config.fec.depth = 2;
  return config;
}

core::Scene make_scene() {
  return core::Scene{channel::Room::paper_office(),
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void BM_ArrayGain(benchmark::State& state) {
  rf::PhasedArray array;
  array.steer(deg_to_rad(75.0));
  double angle = 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.gain(angle).value());
    angle += 1e-4;
  }
}
BENCHMARK(BM_ArrayGain);

void BM_ArraySteer(benchmark::State& state) {
  rf::PhasedArray array;
  double angle = deg_to_rad(40.0);
  for (auto _ : state) {
    array.steer(angle);
    angle += 1e-4;
  }
}
BENCHMARK(BM_ArraySteer);

void BM_RayTrace(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::RayTracer tracer{room};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_RayTrace);

// The three tiers of the path-query stack, same endpoints throughout.
// Uncached: build the wall-image tree from scratch every call (what the
// seed's per-cell RayTracer construction paid). Solver: images precomputed
// once, solve per call. Cached: the scene's revisioned oracle memoises the
// whole answer.
void BM_PathQueryUncached(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  for (auto _ : state) {
    const channel::PathSolver solver{room};
    benchmark::DoNotOptimize(solver.solve({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_PathQueryUncached);

void BM_PathQuerySolver(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::PathSolver solver{room};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve({0.4, 0.4}, {3.3, 2.7}));
  }
}
BENCHMARK(BM_PathQuerySolver);

void BM_PathQueryCached(benchmark::State& state) {
  const auto scene = make_scene();
  scene.reset_oracle_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.paths_between({0.4, 0.4}, {3.3, 2.7}));
  }
  state.counters["hit_rate"] = scene.oracle_stats().hit_rate();
}
BENCHMARK(BM_PathQueryCached);

// Batch-vs-scalar: the same coverage grid through each tier of the stack.
// Scalar solver = solve() per pair (AoS result, heap per call); batch
// solver = one solve_batch into recycled SoA storage. Scalar oracle = the
// historical paths_between deep copy per pair on a warm cache; batch
// oracle = query_batch borrowed views under one lock.
void BM_PathQueryScalarGrid(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::PathSolver solver{room};
  const auto grid = coverage_grid_endpoints(room);
  for (auto _ : state) {
    for (std::size_t q = 0; q < grid.size(); ++q) {
      benchmark::DoNotOptimize(solver.solve(grid.a(q), grid.b(q)));
    }
  }
  state.counters["queries"] = static_cast<double>(grid.size());
}
BENCHMARK(BM_PathQueryScalarGrid)->Unit(benchmark::kMillisecond);

void BM_PathQueryBatchGrid(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const channel::PathSolver solver{room};
  const auto grid = coverage_grid_endpoints(room);
  channel::PathBatch batch;
  channel::PathSolver::BatchWorkspace ws;
  for (auto _ : state) {
    solver.solve_batch(grid, batch, ws);
    benchmark::DoNotOptimize(batch.paths());
  }
  state.counters["queries"] = static_cast<double>(grid.size());
}
BENCHMARK(BM_PathQueryBatchGrid)->Unit(benchmark::kMillisecond);

void BM_PathQueryOracleScalarGrid(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const core::ChannelOracle oracle{room};
  const auto grid = coverage_grid_endpoints(room);
  for (std::size_t q = 0; q < grid.size(); ++q) {
    oracle.paths_between(grid.a(q), grid.b(q));  // warm the cache
  }
  for (auto _ : state) {
    for (std::size_t q = 0; q < grid.size(); ++q) {
      benchmark::DoNotOptimize(oracle.paths_between(grid.a(q), grid.b(q)));
    }
  }
  state.counters["queries"] = static_cast<double>(grid.size());
}
BENCHMARK(BM_PathQueryOracleScalarGrid)->Unit(benchmark::kMillisecond);

void BM_PathQueryOracleBatchGrid(benchmark::State& state) {
  const auto room = channel::Room::paper_office();
  const core::ChannelOracle oracle{room};
  const auto grid = coverage_grid_endpoints(room);
  std::vector<core::ChannelOracle::PathsView> views;
  oracle.query_batch(grid, views);  // warm the cache and the scratch
  for (auto _ : state) {
    oracle.query_batch(grid, views);
    benchmark::DoNotOptimize(views.data());
  }
  state.counters["queries"] = static_cast<double>(grid.size());
}
BENCHMARK(BM_PathQueryOracleBatchGrid)->Unit(benchmark::kMillisecond);

// One steady-state 90 Hz transport tick (packetize + FEC + queue + the
// event cascade up to the next tick) under a fixed lossy channel — the
// zero-allocation hot loop.
void BM_TransportSteadyTick(benchmark::State& state) {
  sim::Simulator simulator;
  net::Transport transport{simulator, steady_transport_config()};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  net::ChannelState channel;
  channel.mcs = &phy::mcs_table()[phy::mcs_table().size() / 2];
  channel.packet_loss = 0.12;
  std::int64_t tick = 0;
  for (auto _ : state) {
    simulator.run_until(interval * tick);
    transport.on_frame(channel);
    ++tick;
  }
  state.counters["arena_bytes"] =
      static_cast<double>(transport.arena_bytes());
}
BENCHMARK(BM_TransportSteadyTick);

void BM_CoverageMap(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().set_gain_code(200);
  scene.ap().node().steer_toward(reflector.position());
  double hit_rate = 0.0;
  for (auto _ : state) {
    const auto map = core::compute_coverage(scene, 0.25, 0.5, threads);
    hit_rate = map.oracle.hit_rate();
    benchmark::DoNotOptimize(map.cells.data());
  }
  state.counters["threads"] = threads;
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_CoverageMap)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LinkSnr(benchmark::State& state) {
  auto scene = make_scene();
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.direct_snr().value());
  }
}
BENCHMARK(BM_LinkSnr);

void BM_ViaReflectorSnr(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(200);
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.via_snr(reflector).snr.value());
  }
}
BENCHMARK(BM_ViaReflectorSnr);

void BM_LeakageEval(benchmark::State& state) {
  const hw::LeakageModel model;
  double tx = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.coupling(tx, 1.1).value());
    tx += 1e-4;
  }
}
BENCHMARK(BM_LeakageEval);

void BM_GainControlRamp(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  const rf::DbmPower input = scene.reflector_input(reflector);
  std::mt19937_64 rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GainController::run(reflector.front_end(), input, rng));
  }
}
BENCHMARK(BM_GainControlRamp);

void BM_BeamSweep21x21(benchmark::State& state) {
  auto scene = make_scene();
  const auto codebook = rf::paper_sector_codebook(5.0);
  auto paths = scene.paths_between(scene.ap().node().position(),
                                   scene.headset().node().position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::sweep_best_beams(
        scene.ap().node(), scene.headset().node(), paths,
        scene.config().link, codebook, codebook));
  }
}
BENCHMARK(BM_BeamSweep21x21);

void BM_WidebandPower(benchmark::State& state) {
  std::vector<phy::PathComponent> components;
  for (int i = 0; i < 12; ++i) {
    components.push_back({std::polar(1e-3, 0.3 * i), 3.0 + 0.7 * i});
  }
  const phy::LinkConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phy::wideband_power(components, config, rf::Decibels{11.0}));
  }
}
BENCHMARK(BM_WidebandPower);

void BM_BackscatterMeasurement(benchmark::State& state) {
  auto scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().set_gain_code(170);
  reflector.front_end().set_modulating(true);
  const double both = scene.true_reflector_angle_to_ap(reflector);
  reflector.front_end().steer_rx(both);
  reflector.front_end().steer_tx(both);
  scene.ap().node().steer_toward(reflector.position());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.backscatter_at_ap(reflector).value());
  }
}
BENCHMARK(BM_BackscatterMeasurement);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.after(sim::Duration{(i * 37) % 1000},
                      [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

// ---------------------------------------------------------------------------
// --json summary: batch vs scalar over the coverage grid, measured directly
// (steady-clock passes, not google-benchmark) so the artifact is one small
// self-contained document. Exits nonzero when the batch answers diverge
// from the scalar ones or the warmed oracle speedup falls below 10x.

/// Mean nanoseconds per pass of `pass`, after one warmup pass.
template <typename F>
double ns_per_pass(F&& pass) {
  using clock = std::chrono::steady_clock;
  pass();  // warmup
  int passes = 0;
  const auto start = clock::now();
  double elapsed_s = 0.0;
  do {
    pass();
    ++passes;
    elapsed_s = std::chrono::duration<double>(clock::now() - start).count();
  } while (passes < 3 || elapsed_s < 0.2);
  return elapsed_s * 1e9 / passes;
}

bool batch_matches_scalar(const channel::PathSolver& solver,
                          const channel::EndpointBatch& grid,
                          const channel::PathBatch& batch) {
  for (std::size_t q = 0; q < grid.size(); ++q) {
    const std::vector<channel::Path> scalar =
        solver.solve(grid.a(q), grid.b(q));
    if (scalar.size() != batch.query_paths(q)) {
      return false;
    }
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      const std::size_t p = batch.query_first(q) + i;
      if (scalar[i].loss.value() != batch.loss_db(p) ||
          scalar[i].length_m != batch.length_m(p) ||
          scalar[i].obstruction.value() != batch.obstruction_db(p) ||
          scalar[i].bounces != batch.bounces(p)) {
        return false;
      }
    }
  }
  return true;
}

int batch_speedup_summary(const std::string& json_path) {
  const auto room = channel::Room::paper_office();
  const auto grid = coverage_grid_endpoints(room);
  const std::size_t n = grid.size();

  // Solver tier: the raw SoA kernel vs a scalar solve() loop.
  const channel::PathSolver solver{room};
  channel::PathBatch batch;
  channel::PathSolver::BatchWorkspace ws;
  solver.solve_batch(grid, batch, ws);
  if (!batch_matches_scalar(solver, grid, batch)) {
    std::fprintf(stderr,
                 "microbench: solve_batch diverged from scalar solve()\n");
    return 1;
  }
  const double solver_scalar_ns = ns_per_pass([&] {
    for (std::size_t q = 0; q < n; ++q) {
      benchmark::DoNotOptimize(solver.solve(grid.a(q), grid.b(q)));
    }
  });
  const double solver_batch_ns = ns_per_pass([&] {
    solver.solve_batch(grid, batch, ws);
    benchmark::DoNotOptimize(batch.paths());
  });

  // Oracle tier: warmed query_batch views vs the historical per-cell
  // paths_between deep copy (what compute_coverage paid before the batch
  // refactor).
  const core::ChannelOracle oracle{room};
  std::vector<core::ChannelOracle::PathsView> views;
  oracle.query_batch(grid, views);
  for (std::size_t q = 0; q < n; ++q) {
    const auto scalar = oracle.paths_between(grid.a(q), grid.b(q));
    if (views[q] == nullptr || scalar.size() != views[q]->size()) {
      std::fprintf(stderr,
                   "microbench: query_batch diverged from paths_between\n");
      return 1;
    }
  }
  const double oracle_scalar_ns = ns_per_pass([&] {
    for (std::size_t q = 0; q < n; ++q) {
      benchmark::DoNotOptimize(oracle.paths_between(grid.a(q), grid.b(q)));
    }
  });
  const double oracle_batch_ns = ns_per_pass([&] {
    oracle.query_batch(grid, views);
    benchmark::DoNotOptimize(views.data());
  });
  const auto oracle_stats = oracle.stats();

  // Transport tier: mean steady-state tick cost (no gate — the contract
  // here is zero allocation, enforced by tests/net_alloc_regression_test).
  sim::Simulator simulator;
  net::Transport transport{simulator, steady_transport_config()};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  net::ChannelState channel;
  channel.mcs = &phy::mcs_table()[phy::mcs_table().size() / 2];
  channel.packet_loss = 0.12;
  std::int64_t tick = 0;
  const auto run_ticks = [&](int count) {
    for (int i = 0; i < count; ++i) {
      simulator.run_until(interval * tick);
      transport.on_frame(channel);
      ++tick;
    }
  };
  run_ticks(200);  // warm every pool to steady state
  const double tick_ns = ns_per_pass([&] { run_ticks(100); }) / 100.0;

  const double n_d = static_cast<double>(n);
  const double solver_speedup = solver_scalar_ns / solver_batch_ns;
  const double oracle_speedup = oracle_scalar_ns / oracle_batch_ns;

  bench::print_header("microbench: batched SoA query stack vs scalar");
  std::printf("  coverage grid           : %zu queries (0.25 m spacing)\n",
              n);
  std::printf("  solver  scalar loop     : %8.1f ns/query\n",
              solver_scalar_ns / n_d);
  std::printf("  solver  solve_batch     : %8.1f ns/query   (%.2fx)\n",
              solver_batch_ns / n_d, solver_speedup);
  std::printf("  oracle  paths_between   : %8.1f ns/query (warm)\n",
              oracle_scalar_ns / n_d);
  std::printf("  oracle  query_batch     : %8.1f ns/query (warm, %.2fx)\n",
              oracle_batch_ns / n_d, oracle_speedup);
  std::printf("  transport steady tick   : %8.1f ns/tick (arena %zu B)\n",
              tick_ns, transport.arena_bytes());

  bench::Json doc = bench::Json::object();
  doc.set("bench", "microbench_batch_vs_scalar");
  doc.set("grid", bench::Json::object()
                      .set("queries", static_cast<std::uint64_t>(n))
                      .set("spacing_m", 0.25));
  doc.set("solver",
          bench::Json::object()
              .set("scalar_ns_per_query", solver_scalar_ns / n_d)
              .set("batch_ns_per_query", solver_batch_ns / n_d)
              .set("speedup", solver_speedup));
  doc.set("oracle_warm",
          bench::Json::object()
              .set("scalar_ns_per_query", oracle_scalar_ns / n_d)
              .set("batch_ns_per_query", oracle_batch_ns / n_d)
              .set("speedup", oracle_speedup));
  doc.set("oracle_stats",
          bench::Json::object()
              .set("batch_queries", oracle_stats.batch_queries)
              .set("batch_probes_saved", oracle_stats.batch_probes_saved)
              .set("arena_bytes", oracle_stats.arena_bytes));
  doc.set("transport",
          bench::Json::object()
              .set("steady_tick_ns", tick_ns)
              .set("arena_bytes",
                   static_cast<std::uint64_t>(transport.arena_bytes())));
  if (!bench::emit_json(json_path, doc)) {
    return 1;
  }

  if (oracle_speedup < 10.0) {
    std::fprintf(stderr,
                 "microbench: warmed batched coverage-grid query is only "
                 "%.2fx the scalar loop (contract: >= 10x)\n",
                 oracle_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

// Standard google-benchmark driver, plus `--json PATH` (stripped before
// benchmark::Initialize) to run the batch-vs-scalar summary afterwards.
int main(int argc, char** argv) {
  std::string json_path;
  bool run_summary = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      run_summary = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_summary ? batch_speedup_summary(json_path) : 0;
}
