// Ablation: how many reflectors, and where — versus the multi-AP strawman.
//
// The paper's Section 1 dismisses "deploy multiple mmWave transmitters"
// because of cabling and cost, and proposes cheap wall reflectors instead.
// This bench quantifies both options: probability that a random blockage
// leaves the headset without a VR-grade link, as a function of reflector
// count (wireless, cheap) and AP count (each one a full transceiver plus an
// HDMI run back to the PC).
#include <cstdio>
#include <vector>

#include <baseline/multi_ap.hpp>
#include <phy/mcs.hpp>
#include <sim/rng.hpp>
#include <vr/requirements.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

struct Spot {
  geom::Vec2 pos;
  double orient;
};

}  // namespace

int main() {
  sim::RngRegistry rngs{23};
  const int kTrials = 150;
  const double required_snr =
      phy::mcs_for_rate(vr::kHtcVive.required_mbps())->min_snr.value();

  // Candidate wall mounts, ordered by how a user would deploy them.
  const std::vector<Spot> mounts = {
      {{4.6, 4.6}, deg_to_rad(225.0)},  // opposite corner (paper's choice)
      {{0.4, 4.6}, deg_to_rad(315.0)},  // other far corner
      {{4.6, 0.4}, deg_to_rad(135.0)},  // near-right corner
      {{2.5, 4.8}, deg_to_rad(270.0)},  // mid far wall
  };

  bench::print_header(
      "Ablation — reflector count & placement vs multi-AP (150 blockages)");
  std::printf("%-28s %14s %16s %s\n", "deployment", "outage rate",
              "extra hardware", "cabling");

  for (int count = 0; count <= static_cast<int>(mounts.size()); ++count) {
    int outages = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      auto rng = rngs.stream("placement", static_cast<std::uint64_t>(
                                              count * 1000 + trial));
      auto scene = bench::paper_scene({0.0, 0.0}, false);
      std::vector<core::MovrReflector*> reflectors;
      for (int i = 0; i < count; ++i) {
        reflectors.push_back(
            &scene.add_reflector(mounts[static_cast<std::size_t>(i)].pos,
                                 mounts[static_cast<std::size_t>(i)].orient));
      }
      const geom::Vec2 pos = scene.room().random_interior_point(rng, 0.8);
      scene.headset().node().set_position(pos);
      for (auto* r : reflectors) {
        bench::calibrate_reflector(scene, *r, rng);
      }

      // A random blockage: hand, head, or passer-by.
      const geom::Vec2 ap = scene.ap().node().position();
      std::uniform_int_distribution<int> kind{0, 2};
      switch (kind(rng)) {
        case 0:
          scene.room().add_obstacle(channel::make_hand(pos, ap - pos));
          break;
        case 1:
          scene.room().add_obstacle(channel::make_head(pos, ap - pos));
          break;
        default:
          scene.room().add_obstacle(channel::make_person(
              pos + (ap - pos).normalized() *
                        std::uniform_real_distribution<double>{0.6, 2.0}(rng)));
      }

      // Best available link: direct, or via any reflector.
      bench::steer_direct(scene);
      double best = scene.direct_snr().value();
      for (auto* r : reflectors) {
        scene.ap().node().steer_toward(r->position());
        scene.headset().node().face_toward(r->position());
        r->front_end().steer_tx(scene.true_reflector_angle_to_headset(*r));
        best = std::max(best, scene.via_snr(*r).snr.value());
      }
      outages += best < required_snr;
    }
    std::printf("%d reflector(s)%-14s %10.1f %%  %16s %s\n", count, "",
                100.0 * outages / kTrials,
                count == 0 ? "none" : "passive mirrors", "none");
  }

  // Multi-AP alternative: full transceivers, each wired to the PC.
  for (const int aps : {2, 4}) {
    int outages = 0;
    const auto deployment = baseline::corner_deployment(5.0, 5.0, aps);
    for (int trial = 0; trial < kTrials; ++trial) {
      auto rng = rngs.stream("multiap", static_cast<std::uint64_t>(
                                            aps * 1000 + trial));
      auto scene = bench::paper_scene({0.0, 0.0}, false);
      const geom::Vec2 pos = scene.room().random_interior_point(rng, 0.8);
      scene.headset().node().set_position(pos);
      const geom::Vec2 ap = scene.ap().node().position();
      scene.room().add_obstacle(channel::make_hand(pos, ap - pos));
      outages += deployment.best_snr(scene, pos).value() < required_snr;
    }
    std::printf("%d wired APs%-16s %10.1f %%  %16s %.1f m HDMI\n", aps, "",
                100.0 * outages / kTrials, "full transceivers",
                deployment.cabling_metres({0.4, 0.4}));
  }

  std::printf("\nreading: one well-placed reflector removes almost all "
              "blockage outages at the cost\nof a passive wall unit; matching "
              "that with APs needs several full radios and an HDMI\nrun to "
              "each — the paper's cabling-complexity argument.\n");
  return 0;
}
