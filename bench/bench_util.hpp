// Shared helpers for the reproduction benches: canonical scenes, statistics
// and the table format every bench prints (experiment row + paper target).
#pragma once

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <net/stats.hpp>

namespace movr::bench {

/// The paper's testbed: a 5x5 m office, AP next to the PC in one corner.
inline core::Scene paper_scene(geom::Vec2 headset_pos,
                               bool with_furniture = true) {
  auto room = with_furniture ? channel::Room::paper_office()
                             : channel::Room{5.0, 5.0};
  const geom::Vec2 ap_pos{0.4, 0.4};
  core::ApRadio ap{ap_pos, geom::deg_to_rad(45.0)};
  core::HeadsetRadio headset{headset_pos, 0.0};
  return core::Scene{std::move(room), std::move(ap), std::move(headset)};
}

/// Aligns AP and headset for the direct link.
inline void steer_direct(core::Scene& scene) {
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
}

/// Calibrates a reflector with ground-truth angles + the gain controller
/// (fast path used by benches whose subject is NOT the search protocol;
/// fig8 exercises the real protocol).
inline void calibrate_reflector(core::Scene& scene,
                                core::MovrReflector& reflector,
                                std::mt19937_64& rng) {
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
}

struct Stats {
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double median{0.0};
};

inline Stats stats_of(std::vector<double> v) {
  Stats s;
  if (v.empty()) {
    return s;
  }
  s.mean = std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.median = v[v.size() / 2];
  return s;
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Reconstructs a latency sample set from a transport's histogram: bin
/// centers for completed frames, +infinity for frames that never completed.
inline std::vector<double> latency_samples(
    const net::TransportMetrics& metrics) {
  std::vector<double> samples;
  const double bin = metrics.histogram.bin_ms;
  for (std::size_t i = 0; i < metrics.histogram.bins.size(); ++i) {
    const double center = (static_cast<double>(i) + 0.5) * bin;
    for (std::uint64_t n = 0; n < metrics.histogram.bins[i]; ++n) {
      samples.push_back(center);
    }
  }
  const double past_end =
      bin * static_cast<double>(metrics.histogram.bins.size());
  for (std::uint64_t n = 0; n < metrics.histogram.overflow; ++n) {
    samples.push_back(past_end);
  }
  const std::uint64_t finite = metrics.histogram.total();
  for (std::uint64_t n = finite; n < metrics.frames_emitted; ++n) {
    samples.push_back(std::numeric_limits<double>::infinity());
  }
  return samples;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_cdf(const char* name, std::vector<double> values) {
  std::printf("  CDF  %-10s:", name);
  for (double q = 0.0; q <= 1.0001; q += 0.1) {
    std::printf(" %6.1f", percentile(values, std::min(q, 1.0)));
  }
  std::printf("   (q=0.0..1.0)\n");
}

}  // namespace movr::bench
