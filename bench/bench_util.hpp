// Shared helpers for the reproduction benches: canonical scenes, statistics
// and the table format every bench prints (experiment row + paper target).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <net/stats.hpp>

namespace movr::bench {

/// The paper's testbed: a 5x5 m office, AP next to the PC in one corner.
inline core::Scene paper_scene(geom::Vec2 headset_pos,
                               bool with_furniture = true) {
  auto room = with_furniture ? channel::Room::paper_office()
                             : channel::Room{5.0, 5.0};
  const geom::Vec2 ap_pos{0.4, 0.4};
  core::ApRadio ap{ap_pos, geom::deg_to_rad(45.0)};
  core::HeadsetRadio headset{headset_pos, 0.0};
  return core::Scene{std::move(room), std::move(ap), std::move(headset)};
}

/// Aligns AP and headset for the direct link.
inline void steer_direct(core::Scene& scene) {
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
}

/// Calibrates a reflector with ground-truth angles + the gain controller
/// (fast path used by benches whose subject is NOT the search protocol;
/// fig8 exercises the real protocol).
inline void calibrate_reflector(core::Scene& scene,
                                core::MovrReflector& reflector,
                                std::mt19937_64& rng) {
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
}

struct Stats {
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double median{0.0};
};

inline Stats stats_of(std::vector<double> v) {
  Stats s;
  if (v.empty()) {
    return s;
  }
  s.mean = std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.median = v[v.size() / 2];
  return s;
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Reconstructs a latency sample set from a transport's histogram: bin
/// centers for completed frames, +infinity for frames that never completed.
inline std::vector<double> latency_samples(
    const net::TransportMetrics& metrics) {
  std::vector<double> samples;
  const double bin = metrics.histogram.bin_ms;
  for (std::size_t i = 0; i < metrics.histogram.bins.size(); ++i) {
    const double center = (static_cast<double>(i) + 0.5) * bin;
    for (std::uint64_t n = 0; n < metrics.histogram.bins[i]; ++n) {
      samples.push_back(center);
    }
  }
  const double past_end =
      bin * static_cast<double>(metrics.histogram.bins.size());
  for (std::uint64_t n = 0; n < metrics.histogram.overflow; ++n) {
    samples.push_back(past_end);
  }
  const std::uint64_t finite = metrics.histogram.total();
  for (std::uint64_t n = finite; n < metrics.frames_emitted; ++n) {
    samples.push_back(std::numeric_limits<double>::infinity());
  }
  return samples;
}

/// One step of the chained counter digest the replayable benches use as a
/// run fingerprint (a replayed seed must reproduce the hash exactly).
inline std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Fixed-width 16-hex-digit rendering of a fingerprint, for table columns
/// and replay comparisons.
inline std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

/// The exact single-seed replay command a failing run prints; `extra` is
/// appended verbatim (leading space included) for bench-specific flags.
inline void print_replay(const char* bench, std::uint64_t seed,
                         double duration_s, const std::string& extra = {}) {
  std::printf("  replay: %s --seed %llu --duration %g%s\n", bench,
              static_cast<unsigned long long>(seed), duration_s,
              extra.c_str());
}

/// Minimal ordered JSON value tree for the bench artifacts (BENCH_*.json):
/// enough for objects, arrays, numbers, strings and bools — no parsing, no
/// dependencies. Non-finite numbers serialize as null (JSON has no inf).
class Json {
 public:
  Json() = default;
  Json(bool b) : kind_{Kind::kBool}, bool_{b} {}  // NOLINT(runtime/explicit)
  Json(double v) : kind_{Kind::kNumber}, num_{v} {}
  Json(int v) : Json{static_cast<double>(v)} {}
  Json(long v) : Json{static_cast<double>(v)} {}
  Json(std::uint64_t v) : Json{static_cast<double>(v)} {}
  Json(const char* s) : kind_{Kind::kString}, str_{s} {}
  Json(std::string s) : kind_{Kind::kString}, str_{std::move(s)} {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Object member (insertion order preserved). Returns *this for chaining.
  Json& set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  /// Array element.
  Json& push(Json value) {
    members_.emplace_back(std::string{}, std::move(value));
    return *this;
  }

  std::string dump() const {
    std::string out;
    write(out);
    return out;
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static void escape(const std::string& s, std::string& out) {
    out += '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
  }

  void write(std::string& out) const {
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber: {
        if (!std::isfinite(num_)) {
          out += "null";
          break;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", num_);
        out += buf;
        break;
      }
      case Kind::kString:
        escape(str_, out);
        break;
      case Kind::kArray: {
        out += '[';
        bool first = true;
        for (const auto& [key, value] : members_) {
          if (!first) {
            out += ',';
          }
          first = false;
          value.write(out);
        }
        out += ']';
        break;
      }
      case Kind::kObject: {
        out += '{';
        bool first = true;
        for (const auto& [key, value] : members_) {
          if (!first) {
            out += ',';
          }
          first = false;
          escape(key, out);
          out += ':';
          value.write(out);
        }
        out += '}';
        break;
      }
    }
  }

  Kind kind_{Kind::kNull};
  bool bool_{false};
  double num_{0.0};
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Prints the machine-readable `json:` trend line and, when `path` is
/// non-empty, writes the same document to the file (the committed BENCH_*
/// artifacts and the CI uploads both come from here).
inline bool emit_json(const std::string& path, const Json& value) {
  const std::string text = value.dump();
  std::printf("\njson: %s\n", text.c_str());
  if (path.empty()) {
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "emit_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", text.c_str());
  std::fclose(f);
  return true;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_cdf(const char* name, std::vector<double> values) {
  std::printf("  CDF  %-10s:", name);
  for (double q = 0.0; q <= 1.0001; q += 0.1) {
    std::printf(" %6.1f", percentile(values, std::min(q, 1.0)));
  }
  std::printf("   (q=0.0..1.0)\n");
}

}  // namespace movr::bench
