// Ablation: adaptive current-knee gain control (Section 4.2) vs the two
// fixed-gain alternatives.
//
//  * fixed-safe: a gain low enough to be stable at EVERY beam pair —
//    wastes SNR whenever the leakage allows more;
//  * fixed-max: the amplifier's full gain — saturates/oscillates wherever
//    the isolation dips below it, turning the relay into a jammer;
//  * adaptive: the paper's ramp, which tracks the per-configuration knee.
//
// A leaky front-end build is used so the isolation floor actually crosses
// the amplifier's range (the regime Fig. 7 warns about).
#include <cstdio>
#include <vector>

#include <sim/rng.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  sim::RngRegistry rngs{13};

  // Leaky build: board-level coupling 10 dB worse than the default unit.
  hw::ReflectorFrontEnd::Config leaky;
  leaky.leakage.board_coupling = rf::Decibels{-14.0};

  struct Policy {
    const char* name;
    bool adaptive;
    std::uint32_t fixed_code;
  };
  // fixed-safe: worst-case isolation over the grid minus margin -> ~30 dB.
  // fixed-max: DAC full scale.
  const std::vector<Policy> policies = {
      {"adaptive (paper)", true, 0},
      {"fixed-safe 30 dB", false, 170},
      {"fixed-max 45 dB", false, 255},
  };

  bench::print_header(
      "Ablation — adaptive vs fixed amplifier gain (leaky front end)");
  std::printf("%-20s %12s %12s %14s %12s\n", "policy", "mean SNR",
              "worst SNR", "saturated cfgs", "mean gain");

  for (const Policy& policy : policies) {
    std::vector<double> snrs;
    std::vector<double> gains;
    int saturated = 0;
    int configs = 0;
    for (int run = 0; run < 30; ++run) {
      auto rng = rngs.stream("gain-abl", static_cast<std::uint64_t>(run));
      auto scene = bench::paper_scene({0.0, 0.0}, false);
      auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0),
                                            leaky);
      geom::Vec2 pos;
      double local;
      do {
        pos = scene.room().random_interior_point(rng, 0.8);
        scene.headset().node().set_position(pos);
        local = scene.true_reflector_angle_to_headset(reflector);
      } while (local < deg_to_rad(40.0) || local > deg_to_rad(140.0) ||
               geom::distance(pos, reflector.position()) < 1.2);

      reflector.front_end().steer_rx(
          scene.true_reflector_angle_to_ap(reflector));
      reflector.front_end().steer_tx(local);
      scene.ap().node().steer_toward(reflector.position());
      scene.headset().node().face_toward(reflector.position());

      if (policy.adaptive) {
        core::GainController::run(reflector.front_end(),
                                  scene.reflector_input(reflector), rng);
      } else {
        reflector.front_end().set_gain_code(policy.fixed_code);
      }
      const auto via = scene.via_snr(reflector);
      ++configs;
      saturated += !via.usable;
      snrs.push_back(via.snr.value());
      gains.push_back(reflector.front_end().amplifier_gain().value());
    }
    const auto snr = bench::stats_of(snrs);
    const auto gain = bench::stats_of(gains);
    std::printf("%-20s %9.1f dB %9.1f dB %11d/%d %9.1f dB\n", policy.name,
                snr.mean, snr.min, saturated, configs, gain.mean);
  }

  std::printf("\nreading: fixed-max oscillates in low-isolation geometries "
              "(garbage at the headset);\nfixed-safe gives up SNR everywhere; "
              "the adaptive ramp gets both right.\n");
  return 0;
}
