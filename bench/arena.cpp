// Multi-user arena: shared-spectrum coordination under reflector scarcity.
//
// The acceptance harness for src/arena/ (DESIGN.md §12). Each seed builds
// one shared world: an 8x8 m room with four corner APs and three
// wall-mounted reflectors; N users attach round-robin to the APs, wander
// their own quadrant, raise hands on staggered periods, and share two
// diagonal person-crossings that black out several users' direct paths at
// once — the reflector demand spike the arbitration exists for. The world
// is a pure function of (seed, user index); the two arms differ only in
// the arbiter policy:
//
//   arbitration  priority aging: leases expire, waiters age, aged waiters
//                revoke expired leases (starvation-free time sharing)
//   fcfs         first committer keeps the reflector until it releases
//
// Sweeps 2 -> 32 users, every (users, arm, seed) configuration an
// independent job run clone-per-worker via core::parallel_for — results
// are bit-deterministic regardless of thread count.
//
// Gates (aggregated across seeds):
//   - at 16 users, arbitration beats FCFS on the p95 per-user glitched
//     frame fraction (the unlucky-user tail is what arbitration buys)
//   - a 1-user arena is bit-identical to the standalone vr::Session built
//     from the same seed (arena::qoe_fingerprint equality)
//   - every user's per-20 ms packet-ledger audit passes at every check,
//     at every user count, in both arms
//   - the contention machinery actually engaged at 16+ users (denials and
//     revocations nonzero under arbitration — otherwise the comparison
//     is vacuous)
//
// Usage: arena [--users LIST] [--seeds N] [--seed S] [--duration SECONDS]
//              [--threads N] [--json PATH] [--event-log DIR]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <arena/coordinator.hpp>
#include <core/parallel_for.hpp>
#include <log/recorder.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

enum class Arm { kArbitration, kFcfs };
constexpr const char* kArmNames[] = {"arbitration", "fcfs"};
constexpr int kArms = 2;

constexpr geom::Vec2 kApPositions[4] = {
    {0.4, 0.4}, {7.6, 0.4}, {7.6, 7.6}, {0.4, 7.6}};
constexpr double kApOrientationsDeg[4] = {45.0, 135.0, 225.0, 315.0};
constexpr geom::Vec2 kCenter{4.0, 4.0};

double uniform(std::mt19937_64& g, double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(g);
}

/// The shared room: 8x8 m, empty floor (blockage comes from the scripts),
/// one reflector at each wall midpoint facing into the room — every
/// quadrant has usable via geometry, so a granted lease is actual relief
/// and the arms differ by allocation policy, not by which quadrant got
/// lucky. The AP/headset here are prototypes — the coordinator moves each
/// user's clone's AP to its corner and the motion factory places the
/// headset.
core::Scene arena_scene() {
  channel::Room room{8.0, 8.0};
  core::ApRadio ap{kApPositions[0], deg_to_rad(kApOrientationsDeg[0])};
  core::HeadsetRadio headset{kCenter, 0.0};
  core::Scene scene{std::move(room), std::move(ap), std::move(headset)};
  scene.add_reflector({4.0, 7.7}, deg_to_rad(265.0));
  scene.add_reflector({7.7, 4.0}, deg_to_rad(175.0));
  scene.add_reflector({0.3, 4.0}, deg_to_rad(355.0));
  scene.add_reflector({4.0, 0.3}, deg_to_rad(85.0));
  return scene;
}

arena::Coordinator::Config make_config(std::size_t users, Arm arm,
                                       std::uint64_t seed,
                                       double duration_s) {
  arena::Coordinator::Config config;
  config.users = users;
  config.seed = seed;
  config.ap_positions.assign(std::begin(kApPositions),
                             std::end(kApPositions));
  for (const double deg : kApOrientationsDeg) {
    config.ap_orientations.push_back(deg_to_rad(deg));
  }
  config.arbiter.policy = arm == Arm::kFcfs
                              ? arena::ReflectorArbiter::Policy::kFcfs
                              : arena::ReflectorArbiter::Policy::kPriorityAging;
  // Short terms + fast aging: hand raises block each user for ~0.7 s at a
  // ~29% duty cycle, so reflector demand exceeds supply chronically. A
  // waiter must out-age the holder bonus well inside one raise for the
  // rotation to reach it before its blockage ends.
  config.arbiter.lease_duration = std::chrono::milliseconds{250};
  config.arbiter.aging_per_second = 4.0;
  // Eviction is for persistent burners only: a hand raise collapses a
  // user's PHY rate for ~0.7 s, so give a degraded user 2 s to recover
  // before it can be escalated out of the room (both arms).
  config.admission.evict_grace = std::chrono::seconds{2};
  // Both arms skip via-occluded handover candidates: leasing a reflector
  // whose hop a person is standing in burns the Bluetooth wait AND locks
  // out whoever that reflector could actually serve.
  config.link.skip_occluded_candidates = true;
  config.session.duration = sim::from_seconds(duration_s);
  // Compressed stream sized so four users on one AP (the 16-user cell,
  // airtime share 0.25) still fit one link's shared capacity: glitches at
  // the gate point come from blockage and reflector contention, not
  // raw-bitrate saturation. At 32 users (share 0.125) the load does
  // oversubscribe and admission has to shed — that is the stress cell.
  net::TransportConfig transport;
  transport.source.target_mbps = 300.0;
  config.session.transport = transport;
  return config;
}

/// Each user starts in its own AP's quadrant (seeded jitter) and wanders
/// from there — close enough for a solid direct link, spread enough that
/// the diagonal crossings shadow several users at once.
arena::Coordinator::MotionFactory motion_factory(std::uint64_t seed) {
  return [seed](std::size_t u,
                const core::Scene& scene) -> std::unique_ptr<vr::Motion> {
    const sim::RngRegistry rngs{seed};
    auto rng = rngs.stream("arena.pos", u);
    const geom::Vec2 ap = kApPositions[u % 4];
    const geom::Vec2 toward = (kCenter - ap).normalized();
    const geom::Vec2 perp{-toward.y, toward.x};
    geom::Vec2 start = ap + toward * uniform(rng, 1.8, 3.2) +
                       perp * uniform(rng, -1.1, 1.1);
    start.x = std::clamp(start.x, 0.9, 7.1);
    start.y = std::clamp(start.y, 0.9, 7.1);
    return std::make_unique<vr::PlayerMotion>(
        scene.room(), start, rngs.stream("arena.motion", u)());
  };
}

/// Staggered per-user hand raises plus two shared diagonal crossings per
/// ~5 s — the crossings put many users' direct paths in shadow in the same
/// window, which is exactly when they all want a reflector.
arena::Coordinator::ScriptFactory script_factory(double duration_s) {
  return [duration_s](std::size_t u) {
    const sim::TimePoint end{sim::from_seconds(duration_s)};
    std::vector<vr::BlockageEvent> events =
        vr::periodic_hand_raises(
            sim::TimePoint{sim::from_seconds(
                0.8 + 0.21 * static_cast<double>(u % 7))},
            sim::from_seconds(0.7), sim::from_seconds(2.4), end)
            .events();
    bool flip = false;
    for (double t = 2.0; t + 2.5 < duration_s; t += 5.0) {
      vr::BlockageEvent person;
      person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
      person.start = sim::TimePoint{sim::from_seconds(t)};
      person.duration = sim::from_seconds(2.5);
      person.path_from = flip ? geom::Vec2{7.4, 0.6} : geom::Vec2{0.6, 0.6};
      person.path_to = flip ? geom::Vec2{0.6, 7.4} : geom::Vec2{7.4, 7.4};
      flip = !flip;
      events.push_back(person);
    }
    return vr::BlockageScript{std::move(events)};
  };
}

/// Aggregates of one (users, arm, seed) coordinator run.
struct JobResult {
  std::vector<double> glitch_fractions;  // one per user
  std::uint64_t frames{0};
  std::uint64_t glitched{0};
  std::uint64_t denials{0};
  std::uint64_t grants{0};
  std::uint64_t revocations{0};
  std::uint64_t degrades{0};
  std::uint64_t evictions{0};
  std::uint64_t readmissions{0};
  std::uint64_t interfered_frames{0};
  double max_interference_db{0.0};
  double min_airtime_share{1.0};
  std::uint64_t ledger_checks{0};
  std::uint64_t ledger_violations{0};
};

JobResult run_job(std::size_t users, Arm arm, std::uint64_t seed,
                  double duration_s) {
  const core::Scene prototype = arena_scene();
  sim::Simulator simulator;
  arena::Coordinator coordinator{simulator, prototype,
                                 make_config(users, arm, seed, duration_s),
                                 motion_factory(seed),
                                 script_factory(duration_s)};
  const auto results = coordinator.run();

  JobResult out;
  for (const auto& r : results) {
    out.glitch_fractions.push_back(r.report.glitch_fraction());
    out.frames += r.report.frames;
    out.glitched += r.report.glitched_frames;
    if (r.report.arena.has_value()) {
      const vr::ArenaLinkStats& a = *r.report.arena;
      out.denials += static_cast<std::uint64_t>(a.reflector_denials);
      out.grants += static_cast<std::uint64_t>(a.lease_grants);
      out.revocations += static_cast<std::uint64_t>(a.lease_revocations);
      out.degrades += static_cast<std::uint64_t>(a.admission_degrades);
      out.evictions += static_cast<std::uint64_t>(a.admission_evictions);
      out.readmissions += static_cast<std::uint64_t>(a.admission_readmissions);
      out.interfered_frames += a.interfered_frames;
      out.max_interference_db =
          std::max(out.max_interference_db, a.max_interference_db);
      out.min_airtime_share =
          std::min(out.min_airtime_share, a.min_airtime_share);
      out.ledger_checks += a.ledger_checks;
      out.ledger_violations += a.ledger_violations;
    }
  }
  return out;
}

/// The determinism-contract check: a 1-user arena run and the standalone
/// session standalone_run() builds from the same seed must fingerprint
/// identically (hooks degenerate to exact no-ops; see DESIGN.md §12.4).
struct IdentityResult {
  std::uint64_t arena_fp{0};
  std::uint64_t solo_fp{0};
  std::uint64_t ledger_violations{0};
};

IdentityResult run_identity(std::uint64_t seed, double duration_s) {
  const core::Scene prototype = arena_scene();
  const auto config = make_config(1, Arm::kArbitration, seed, duration_s);
  const auto motion = motion_factory(seed);
  const auto script = script_factory(duration_s);

  IdentityResult out;
  sim::Simulator simulator;
  arena::Coordinator coordinator{simulator, prototype, config, motion,
                                 script};
  const auto results = coordinator.run();
  out.arena_fp = arena::qoe_fingerprint(results[0].report);
  if (results[0].report.arena.has_value()) {
    out.ledger_violations = results[0].report.arena->ledger_violations;
  }
  const vr::QoeReport solo = arena::Coordinator::standalone_run(
      prototype, config, motion, script, 0);
  out.solo_fp = arena::qoe_fingerprint(solo);
  return out;
}

/// Single-cell event-log mode: one arbitration run with every user's
/// session + link manager recording into `dir`/user<N>.log and the
/// coordinator's lease-revocation / admission-transition interleave into
/// `dir`/coordinator.log. The per-user streams carry no params record, so
/// log_verify applies the chain + ledger-closure checks to them.
int run_event_log(std::size_t users, std::uint64_t seed, double duration_s,
                  const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create --event-log dir %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return 2;
  }
  const core::Scene prototype = arena_scene();
  sim::Simulator simulator;
  auto config = make_config(users, Arm::kArbitration, seed, duration_s);
  log::Recorder::Config coordinator_log_config;
  coordinator_log_config.path = dir + "/coordinator.log";
  coordinator_log_config.bench = "arena";
  coordinator_log_config.seed = seed;
  log::Recorder coordinator_log{std::move(coordinator_log_config)};
  coordinator_log.bind_clock(&simulator);
  std::vector<std::unique_ptr<log::Recorder>> user_logs;
  for (std::size_t u = 0; u < users; ++u) {
    log::Recorder::Config user_log_config;
    user_log_config.path = dir + "/user" + std::to_string(u) + ".log";
    user_log_config.bench = "arena";
    user_log_config.seed = seed;
    user_logs.push_back(
        std::make_unique<log::Recorder>(std::move(user_log_config)));
    user_logs.back()->bind_clock(&simulator);
  }
  config.recorder = &coordinator_log;
  config.user_recorder = [&user_logs](std::size_t u) {
    return user_logs[u].get();
  };
  arena::Coordinator coordinator{simulator, prototype, config,
                                 motion_factory(seed),
                                 script_factory(duration_s)};
  const auto results = coordinator.run();
  coordinator_log.close();
  for (const auto& user_log : user_logs) {
    user_log->close();
  }
  std::printf("event logs: %s/coordinator.log (%llu records) + %zu user "
              "streams\n",
              dir.c_str(),
              static_cast<unsigned long long>(coordinator_log.records()),
              user_logs.size());
  for (std::size_t u = 0; u < results.size(); ++u) {
    std::printf("  user%zu: %6.2f%% glitched, %llu records, fingerprint "
                "%s\n",
                u, 100.0 * results[u].report.glitch_fraction(),
                static_cast<unsigned long long>(user_logs[u]->records()),
                bench::fingerprint_hex(
                    arena::qoe_fingerprint(results[u].report))
                    .c_str());
  }
  return 0;
}

/// Per-user diagnostic table for one (users, arm, seed) cell: where the
/// tail user's glitches actually come from (starved handovers, failed
/// commits, degraded dwell, interference).
void dump_users(std::size_t users, Arm arm, std::uint64_t seed,
                double duration_s) {
  const core::Scene prototype = arena_scene();
  sim::Simulator simulator;
  arena::Coordinator coordinator{simulator, prototype,
                                 make_config(users, arm, seed, duration_s),
                                 motion_factory(seed),
                                 script_factory(duration_s)};
  const auto results = coordinator.run();
  std::printf("\n%zu users, %s, seed %llu\n", users,
              kArmNames[static_cast<std::size_t>(arm)],
              static_cast<unsigned long long>(seed));
  std::printf(
      "%4s %7s %6s %6s %6s %6s %6s %6s %6s %8s %8s %8s\n", "user", "glitch",
      "grant", "deny", "revkd", "h.ref", "h.dir", "fail", "degr", "t.ref s",
      "maxI dB", "minShare");
  for (std::size_t u = 0; u < results.size(); ++u) {
    const auto& r = results[u];
    const auto& ls = r.link_stats;
    const vr::ArenaLinkStats* a =
        r.report.arena.has_value() ? &*r.report.arena : nullptr;
    std::printf(
        "%4zu %6.2f%% %6d %6d %6d %6d %6d %6d %6d %8.2f %8.2f %8.3f\n", u,
        100.0 * r.report.glitch_fraction(), a ? a->lease_grants : 0,
        ls.denied_handovers, a ? a->lease_revocations : 0,
        ls.handovers_to_reflector, ls.handovers_to_direct,
        ls.failed_handovers, ls.degraded_entries,
        sim::to_seconds(ls.time_on_reflector),
        a ? a->max_interference_db : 0.0, a ? a->min_airtime_share : 1.0);
  }
}

void print_usage() {
  std::printf(
      "arena — multi-user shared-spectrum coordination: reflector lease\n"
      "arbitration vs FCFS across 2..32 users in one room\n\n"
      "  arena [--users LIST] [--seeds N] [--seed S] [--duration SECONDS]\n"
      "        [--threads N] [--json PATH]\n\n"
      "  --users LIST         comma-separated user counts (default\n"
      "                       2,4,8,16,32)\n"
      "  --seeds N            run seeds 1..N (default 3)\n"
      "  --seed S             run exactly one seed (replay mode)\n"
      "  --duration SECONDS   sim time per configuration (default 10)\n"
      "  --threads N          worker threads (default: hardware)\n"
      "  --json PATH          write a machine-readable summary to PATH\n"
      "  --event-log DIR      single-cell mode: one arbitration run (first\n"
      "                       --users count, --seed or 1) writing per-user\n"
      "                       + coordinator event logs into DIR, then exit\n\n"
      "Exits nonzero when a 1-user arena is not bit-identical to the\n"
      "standalone session, when any user's per-20 ms packet-ledger audit\n"
      "fails, when (at 16 users) arbitration does not beat FCFS on the\n"
      "p95 per-user glitched fraction, or when the contention machinery\n"
      "never engaged at 16+ users.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> user_counts = {2, 4, 8, 16, 32};
  int seeds = 3;
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  double duration_s = 10.0;
  unsigned threads = 0;
  std::string json_path;
  std::string event_log_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      user_counts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* endp = nullptr;
        const unsigned long v = std::strtoul(p, &endp, 10);
        if (endp == p || v == 0) {
          std::fprintf(stderr, "bad --users list\n");
          return 2;
        }
        user_counts.push_back(static_cast<std::size_t>(v));
        p = *endp == ',' ? endp + 1 : endp;
      }
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single_seed = std::strtoull(argv[++i], nullptr, 10);
      have_single_seed = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--dump-users") == 0) {
      // Diagnostic: per-user breakdown of one 16-user cell per arm at the
      // given --seed (default 1), then exit.
      const std::uint64_t s = have_single_seed ? single_seed : 1;
      dump_users(16, Arm::kArbitration, s, duration_s);
      dump_users(16, Arm::kFcfs, s, duration_s);
      return 0;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--event-log") == 0 && i + 1 < argc) {
      event_log_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seed_list;
  if (have_single_seed) {
    seed_list.push_back(single_seed);
  } else {
    for (int s = 1; s <= seeds; ++s) {
      seed_list.push_back(static_cast<std::uint64_t>(s));
    }
  }

  if (!event_log_dir.empty()) {
    const std::size_t users = user_counts.empty() ? 2 : user_counts.front();
    return run_event_log(users, seed_list.front(), duration_s,
                         event_log_dir);
  }

  // Every (users, arm, seed) sweep job plus one identity job per seed, all
  // independent — clone-per-worker via parallel_for; results land in
  // preallocated slots, bit-identical for any thread count.
  struct SweepJob {
    std::size_t users;
    Arm arm;
    std::uint64_t seed;
  };
  std::vector<SweepJob> sweep_jobs;
  for (const std::size_t users : user_counts) {
    for (int a = 0; a < kArms; ++a) {
      for (const std::uint64_t seed : seed_list) {
        sweep_jobs.push_back({users, static_cast<Arm>(a), seed});
      }
    }
  }
  std::vector<JobResult> sweep_results(sweep_jobs.size());
  std::vector<IdentityResult> identity_results(seed_list.size());

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t total_jobs = sweep_jobs.size() + seed_list.size();
  core::parallel_for(total_jobs, threads,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t j = begin; j < end; ++j) {
                         if (j < sweep_jobs.size()) {
                           const SweepJob& job = sweep_jobs[j];
                           sweep_results[j] = run_job(job.users, job.arm,
                                                      job.seed, duration_s);
                         } else {
                           const std::size_t s = j - sweep_jobs.size();
                           identity_results[s] =
                               run_identity(seed_list[s], duration_s);
                         }
                       }
                     });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  int failures = 0;

  // Pool per-user glitch fractions per (users, arm) across seeds.
  struct CellAggregate {
    std::vector<double> glitch_fractions;
    JobResult sums;  // counters summed across seeds
  };
  std::vector<CellAggregate> cells(user_counts.size() * kArms);
  for (std::size_t j = 0; j < sweep_jobs.size(); ++j) {
    const SweepJob& job = sweep_jobs[j];
    const std::size_t u_idx =
        static_cast<std::size_t>(std::find(user_counts.begin(),
                                           user_counts.end(), job.users) -
                                 user_counts.begin());
    CellAggregate& cell =
        cells[u_idx * kArms + static_cast<std::size_t>(job.arm)];
    const JobResult& r = sweep_results[j];
    cell.glitch_fractions.insert(cell.glitch_fractions.end(),
                                 r.glitch_fractions.begin(),
                                 r.glitch_fractions.end());
    cell.sums.frames += r.frames;
    cell.sums.glitched += r.glitched;
    cell.sums.denials += r.denials;
    cell.sums.grants += r.grants;
    cell.sums.revocations += r.revocations;
    cell.sums.degrades += r.degrades;
    cell.sums.evictions += r.evictions;
    cell.sums.readmissions += r.readmissions;
    cell.sums.interfered_frames += r.interfered_frames;
    cell.sums.max_interference_db =
        std::max(cell.sums.max_interference_db, r.max_interference_db);
    cell.sums.min_airtime_share =
        std::min(cell.sums.min_airtime_share, r.min_airtime_share);
    cell.sums.ledger_checks += r.ledger_checks;
    cell.sums.ledger_violations += r.ledger_violations;
  }

  bench::print_header(
      "Arena — reflector arbitration vs FCFS, 2..32 users sharing a room");
  std::printf("%5s %-12s %9s %9s %8s %8s %8s %8s %8s %8s %9s\n", "users",
              "arm", "p95glitch", "glitched", "denied", "grants", "revoked",
              "degrade", "evict", "interf", "maxI(dB)");
  for (std::size_t u = 0; u < user_counts.size(); ++u) {
    for (int a = 0; a < kArms; ++a) {
      const CellAggregate& cell =
          cells[u * kArms + static_cast<std::size_t>(a)];
      std::printf(
          "%5zu %-12s %8.2f%% %9llu %8llu %8llu %8llu %8llu %8llu %8llu "
          "%9.2f\n",
          user_counts[u], kArmNames[a],
          100.0 * bench::percentile(cell.glitch_fractions, 0.95),
          static_cast<unsigned long long>(cell.sums.glitched),
          static_cast<unsigned long long>(cell.sums.denials),
          static_cast<unsigned long long>(cell.sums.grants),
          static_cast<unsigned long long>(cell.sums.revocations),
          static_cast<unsigned long long>(cell.sums.degrades),
          static_cast<unsigned long long>(cell.sums.evictions),
          static_cast<unsigned long long>(cell.sums.interfered_frames),
          cell.sums.max_interference_db);
    }
  }

  // Gate 1: per-20 ms ledger invariants — every user, every count, both
  // arms.
  for (std::size_t u = 0; u < user_counts.size(); ++u) {
    for (int a = 0; a < kArms; ++a) {
      const CellAggregate& cell =
          cells[u * kArms + static_cast<std::size_t>(a)];
      if (cell.sums.ledger_violations > 0 || cell.sums.ledger_checks == 0) {
        std::printf("FAIL: ledger audit at %zu users (%s): %llu of %llu "
                    "checks open\n",
                    user_counts[u], kArmNames[a],
                    static_cast<unsigned long long>(
                        cell.sums.ledger_violations),
                    static_cast<unsigned long long>(cell.sums.ledger_checks));
        ++failures;
      }
    }
  }

  // Gate 2: 1-user bit-identity against the standalone session.
  for (std::size_t s = 0; s < seed_list.size(); ++s) {
    const IdentityResult& id = identity_results[s];
    if (id.arena_fp != id.solo_fp) {
      std::printf("FAIL: 1-user arena fingerprint %s != standalone "
                  "%s (seed %llu)\n",
                  bench::fingerprint_hex(id.arena_fp).c_str(),
                  bench::fingerprint_hex(id.solo_fp).c_str(),
                  static_cast<unsigned long long>(seed_list[s]));
      bench::print_replay("arena", seed_list[s], duration_s, " --users 2");
      ++failures;
    }
    if (id.ledger_violations > 0) {
      std::printf("FAIL: 1-user arena ledger violations (seed %llu)\n",
                  static_cast<unsigned long long>(seed_list[s]));
      ++failures;
    }
  }
  std::printf("\n1-user bit-identity: %zu seed(s) checked, fingerprints "
              "%s\n",
              seed_list.size(), failures == 0 ? "equal" : "see FAILs above");

  // Gates 3+4 bind at the contention point (16 users, or the largest swept
  // count >= 16); smaller-only sweeps are smoke runs for the machinery.
  std::size_t gate_idx = user_counts.size();
  for (std::size_t u = 0; u < user_counts.size(); ++u) {
    if (user_counts[u] == 16) {
      gate_idx = u;
    }
  }
  if (gate_idx == user_counts.size()) {
    for (std::size_t u = 0; u < user_counts.size(); ++u) {
      if (user_counts[u] >= 16) {
        gate_idx = u;
        break;
      }
    }
  }
  if (gate_idx < user_counts.size()) {
    const CellAggregate& arb =
        cells[gate_idx * kArms + static_cast<std::size_t>(Arm::kArbitration)];
    const CellAggregate& fcfs =
        cells[gate_idx * kArms + static_cast<std::size_t>(Arm::kFcfs)];
    const double p95_arb = bench::percentile(arb.glitch_fractions, 0.95);
    const double p95_fcfs = bench::percentile(fcfs.glitch_fractions, 0.95);
    std::printf("gate @ %zu users: p95 glitch fraction arbitration %.3f%% "
                "vs fcfs %.3f%%\n",
                user_counts[gate_idx], 100.0 * p95_arb, 100.0 * p95_fcfs);
    if (!(p95_arb < p95_fcfs)) {
      std::printf("FAIL: arbitration p95 glitch fraction %.4f does not beat "
                  "fcfs %.4f at %zu users\n",
                  p95_arb, p95_fcfs, user_counts[gate_idx]);
      ++failures;
    }
    if (arb.sums.denials == 0 || arb.sums.revocations == 0) {
      std::printf("FAIL: contention never engaged at %zu users (denials "
                  "%llu, revocations %llu)\n",
                  user_counts[gate_idx],
                  static_cast<unsigned long long>(arb.sums.denials),
                  static_cast<unsigned long long>(arb.sums.revocations));
      ++failures;
    }
  }

  if (!json_path.empty()) {
    bench::Json sweep = bench::Json::array();
    for (std::size_t u = 0; u < user_counts.size(); ++u) {
      for (int a = 0; a < kArms; ++a) {
        const CellAggregate& cell =
          cells[u * kArms + static_cast<std::size_t>(a)];
        bench::Json row = bench::Json::object();
        row.set("users", static_cast<std::uint64_t>(user_counts[u]))
            .set("arm", kArmNames[a])
            .set("p95_glitch_fraction",
                 bench::percentile(cell.glitch_fractions, 0.95))
            .set("frames", cell.sums.frames)
            .set("glitched_frames", cell.sums.glitched)
            .set("reflector_denials", cell.sums.denials)
            .set("lease_grants", cell.sums.grants)
            .set("lease_revocations", cell.sums.revocations)
            .set("admission_degrades", cell.sums.degrades)
            .set("admission_evictions", cell.sums.evictions)
            .set("admission_readmissions", cell.sums.readmissions)
            .set("interfered_frames", cell.sums.interfered_frames)
            .set("max_interference_db", cell.sums.max_interference_db)
            .set("min_airtime_share", cell.sums.min_airtime_share)
            .set("ledger_checks", cell.sums.ledger_checks)
            .set("ledger_violations", cell.sums.ledger_violations);
        sweep.push(std::move(row));
      }
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "arena")
        .set("wall_time_s", wall_s)
        .set("duration_s", duration_s)
        .set("seeds", static_cast<std::uint64_t>(seed_list.size()))
        .set("replay", have_single_seed)
        .set("identity_ok",
             std::all_of(identity_results.begin(), identity_results.end(),
                         [](const IdentityResult& id) {
                           return id.arena_fp == id.solo_fp;
                         }))
        .set("pass", failures == 0)
        .set("sweep", std::move(sweep));
    if (!bench::emit_json(json_path, doc)) {
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf("\nOK: %zu user counts x %d arms x %zu seeds, ledgers "
                "closed, 1-user runs bit-identical, arbitration beats FCFS "
                "at the contention point (%.1f s wall)\n",
                user_counts.size(), kArms, seed_list.size(), wall_s);
    return 0;
  }
  std::printf("\nFAIL: %d gate(s) failed\n", failures);
  return 1;
}
