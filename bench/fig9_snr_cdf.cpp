// Reproduces Fig. 9: CDF of SNR improvement relative to LOS for three
// scenarios — LOS, optimal NLOS (exhaustive sweep with the LOS blocked),
// and MoVR bridging the same blockage.
//
// Setup (paper Section 5.2): AP in one corner, reflector in the opposite
// corner, headset at 20 random locations/orientations. For each placement
// the LOS is blocked (player's hand), the best NLOS beams are found by
// sweeping, and MoVR relays via the reflector after running the full
// calibration protocol (angle search + gain control).
#include <cstdio>
#include <memory>
#include <vector>

#include <core/angle_search.hpp>
#include <phy/beam_sweep.hpp>
#include <phy/mcs.hpp>
#include <rf/codebook.hpp>
#include <sim/rng.hpp>
#include <sim/trace.hpp>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace movr;
  using geom::deg_to_rad;

  const int kRuns = 20;
  const sim::RngRegistry rngs{99};

  std::vector<double> nlos_improvement;
  std::vector<double> movr_improvement;
  std::vector<double> movr_with_relay_noise;
  std::vector<double> los_snrs;
  int movr_above_los = 0;
  int movr_loss_runs = 0;
  int movr_loss_rate_ok = 0;

  // Optional CSV dump: fig9_snr_cdf <out.csv>
  std::unique_ptr<sim::TraceWriter> csv;
  if (argc > 1) {
    csv = std::make_unique<sim::TraceWriter>(
        argv[1],
        std::vector<std::string>{"run", "los_db", "optnlos_db", "movr_db"});
  }

  bench::print_header(
      "Fig. 9 — SNR improvement vs LOS: Opt.NLOS / LOS / MoVR (20 runs)");
  std::printf("%-5s %12s %12s %12s | %10s %10s\n", "run", "LOS dB",
              "OptNLOS dB", "MoVR dB", "NLOS-LOS", "MoVR-LOS");

  for (int run = 0; run < kRuns; ++run) {
    auto rng = rngs.stream("fig9-place", static_cast<std::uint64_t>(run));
    auto scene = bench::paper_scene({0.0, 0.0}, /*with_furniture=*/false);
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));

    // Random headset placement, keeping some distance to both corners and
    // inside the reflector's serviceable cone (a deployment mounts the
    // reflector so its steerable sector covers the play area).
    geom::Vec2 pos;
    double local_to_hs;
    double hand_to_feed;
    do {
      pos = scene.room().random_interior_point(rng, 0.8);
      scene.headset().node().set_position(pos);
      local_to_hs = scene.true_reflector_angle_to_headset(reflector);
      // Where the hand will be raised; keep it off the AP->reflector feed
      // (a hand that shadows the reflector's illumination as well as the
      // LOS is a double blockage, outside Fig. 9's single-blockage scope).
      const geom::Vec2 ap_pos = scene.ap().node().position();
      const geom::Vec2 hand =
          pos + (ap_pos - pos).normalized() * 0.25;
      hand_to_feed = geom::distance_to(
          geom::Segment{ap_pos, reflector.position()}, hand);
    } while (geom::distance(pos, scene.ap().node().position()) < 1.2 ||
             geom::distance(pos, reflector.position()) < 1.2 ||
             local_to_hs < deg_to_rad(35.0) ||
             local_to_hs > deg_to_rad(145.0) || hand_to_feed < 0.20);

    // 1. Installation-time calibration of the incidence angle: the paper
    //    measures it "once at installation", with no blockage present.
    sim::Simulator simulator;
    sim::ControlChannel control{
        simulator, {}, rngs.stream("fig9-bt", static_cast<std::uint64_t>(run))};
    control.attach(reflector.control_name(),
                   [&](const sim::ControlMessage& m) { reflector.handle(m); });
    core::IncidenceSearch incidence{
        simulator, control, scene, reflector, core::make_search_config(1.0),
        rngs.stream("fig9-inc", static_cast<std::uint64_t>(run))};
    incidence.start([](const core::IncidenceResult&) {});
    simulator.run();

    // 2. LOS, no blockage.
    bench::steer_direct(scene);
    const double los = scene.direct_snr().value();
    los_snrs.push_back(los);

    // 3. Block the LOS with the player's hand; exhaustive sweep over all
    //    beam directions, LOS excluded (Opt. NLOS).
    const geom::Vec2 ap = scene.ap().node().position();
    scene.room().add_obstacle(channel::make_hand(pos, ap - pos));
    auto paths = scene.paths_between(ap, pos);
    const double ap_mount = scene.ap().node().orientation();
    const auto sweep =
        phy::sweep_all_directions(scene.ap().node(), scene.headset().node(),
                                  paths, scene.config().link,
                                  /*nlos_only=*/true);
    const double nlos = sweep.snr.value();
    // Restore the AP's physical mount for the MoVR phase (the sweep is a
    // what-if for the baseline, not a permanent re-installation).
    scene.ap().node().set_orientation(ap_mount);

    // 4. MoVR bridges the same blockage: AP re-illuminates the reflector,
    //    the reflection angle is searched and the gain adapted, live.
    scene.ap().node().steer_toward(reflector.position());
    scene.headset().node().face_toward(reflector.position());
    // The reflection phase sweeps a wider sector: the headset may sit
    // anywhere in the play area, not only where the AP could be.
    auto reflection_config = core::make_search_config(1.0);
    reflection_config.reflector_codebook = rf::make_codebook(
        deg_to_rad(25.0), deg_to_rad(155.0), deg_to_rad(1.0));
    core::ReflectionSearch reflection{
        simulator, control, scene, reflector, reflection_config,
        rngs.stream("fig9-ref", static_cast<std::uint64_t>(run))};
    reflection.start([](const core::ReflectionResult&) {});
    simulator.run();
    auto gain_rng = rngs.stream("fig9-gain", static_cast<std::uint64_t>(run));
    core::GainController::run(reflector.front_end(),
                              scene.reflector_input(reflector), gain_rng);
    // The paper compares SNRs as the headset measures them against its own
    // noise floor; the relay's re-radiated noise is the physically complete
    // view. Record both.
    scene.set_include_relay_noise(false);
    const double movr = scene.via_snr(reflector).snr.value();
    scene.set_include_relay_noise(true);
    const double movr_noise = scene.via_snr(reflector).snr.value();
    movr_with_relay_noise.push_back(movr_noise - los);

    nlos_improvement.push_back(nlos - los);
    movr_improvement.push_back(movr - los);
    movr_above_los += movr >= los;
    if (movr < los) {
      movr_loss_rate_ok +=
          phy::rate_mbps(rf::Decibels{movr}) >= phy::rate_mbps(rf::Decibels{20.5});
      ++movr_loss_runs;
    }
    std::printf("%-5d %9.1f %12.1f %12.1f | %9.1f %10.1f\n", run, los, nlos,
                movr, nlos - los, movr - los);
    if (csv != nullptr) {
      csv->row({static_cast<double>(run), los, nlos, movr});
    }
    scene.room().remove_obstacles("hand");
  }

  std::printf("\nSNR improvement relative to LOS (dB):\n");
  bench::print_cdf("Opt.NLOS", nlos_improvement);
  bench::print_cdf("MoVR", movr_improvement);
  bench::print_cdf("(+relayN)", movr_with_relay_noise);

  const auto nlos_stats = bench::stats_of(nlos_improvement);
  const auto movr_stats = bench::stats_of(movr_improvement);
  const auto los_stats = bench::stats_of(los_snrs);
  std::printf("\nOpt.NLOS: mean %.1f dB, worst %.1f dB"
              "   (paper: mean -17 dB, worst -27 dB)\n",
              nlos_stats.mean, nlos_stats.min);
  std::printf("MoVR:     mean %+.1f dB, worst %+.1f dB, above LOS in %d/%d"
              " runs\n",
              movr_stats.mean, movr_stats.min, movr_above_los, kRuns);
  std::printf("          (paper: mostly above LOS, never below -3 dB; the "
              "few losses occur\n           at very high LOS SNR where the "
              "rate is unaffected)\n");
  std::printf("          of the %d runs where MoVR trails LOS, %d still "
              "sustain the maximum 802.11ad rate\n",
              movr_loss_runs, movr_loss_rate_ok);
  const auto noisy = bench::stats_of(movr_with_relay_noise);
  std::printf("          with relay-amplified noise modelled (beyond the "
              "paper's comparison): mean %+.1f dB,\n          worst %+.1f dB "
              "— the cascade ceiling bites, but every blocked run stays "
              "VR-grade\n",
              noisy.mean, noisy.min);
  std::printf("LOS SNR across placements: mean %.1f dB, max %.1f dB "
              "(paper: ~25 dB, close-in 30-35 dB)\n",
              los_stats.mean, los_stats.max);
  return 0;
}
