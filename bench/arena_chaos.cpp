// Arena-scale chaos: correlated infrastructure faults against the
// multi-user coordinator, with provable per-user isolation.
//
// Single-user chaos (bench/chaos_soak) answers "does one session survive a
// hostile control plane"; this bench answers the multi-user question the
// arena exists for: when SHARED infrastructure faults — a reflector that N
// users lease reboots or its amplifier sags, an AP browns out over every
// user it admitted — does the coordinator contain the damage to the users
// actually touching the faulted resource? Every (users, scenario, seed)
// cell runs TWICE from the same seed: once with the fault script, once
// fault-free, with identical 20 ms probes of every user's live
// deadline-miss trajectory. The fault run's lease failover, device
// quarantine and fault-aware admission are then judged by four gates:
//
//   ledgers    every user's per-20 ms packet-ledger audit closes at every
//              check (extended ledger, speculative buckets included)
//   liveness   no 20 ms probe ever sees a lease surviving on a quarantined
//              reflector past the revocation grace (the live twin of
//              log_verify's offline invariant F)
//   isolation  users sharing NO faulted resource (never arbitrated for a
//              faulted reflector in either run, not on a browned-out AP)
//              stay within an interference epsilon of their fault-free
//              glitch trajectory at every checkpoint
//   engaged    the machinery actually fired across the sweep (faults
//              applied, devices quarantined AND restored, at least one
//              holder displaced by failover, zero orphaned leases)
//
// With --event-log DIR every cell also records coordinator + per-user
// event streams, each re-verified offline in-process (chain + invariants
// A-G); CI re-runs tools/log_verify on the same files. The
// --disable-failover tripwire inverts the contract: it runs one cell with
// failover OFF, expects the coordinator log to FAIL offline verification
// at a lease-liveness record, and exits nonzero if the verifier does NOT
// catch it.
//
// Usage: arena_chaos [--users LIST] [--seeds N] [--seed S]
//                    [--duration SECONDS] [--threads N] [--json PATH]
//                    [--event-log DIR] [--disable-failover]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <arena/coordinator.hpp>
#include <core/parallel_for.hpp>
#include <log/reader.hpp>
#include <log/recorder.hpp>
#include <log/verify.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

constexpr geom::Vec2 kApPositions[4] = {
    {0.4, 0.4}, {7.6, 0.4}, {7.6, 7.6}, {0.4, 7.6}};
constexpr double kApOrientationsDeg[4] = {45.0, 135.0, 225.0, 315.0};
constexpr geom::Vec2 kCenter{4.0, 4.0};

/// Isolation epsilon: a non-blast user's cumulative deadline misses may
/// exceed its fault-free trajectory by at most abs + frac * frames at any
/// checkpoint. The slack absorbs second-order coupling the arena cannot
/// remove (a displaced holder re-enters OTHER reflectors' wait queues,
/// and mode changes shift interference geometry) while still catching a
/// fault that actually leaks: a browned-out AP or lost reflector costs
/// hundreds of misses, two orders of magnitude past this bound.
constexpr double kIsolationAbs = 12.0;
constexpr double kIsolationFrac = 0.02;

constexpr auto kProbeInterval = std::chrono::milliseconds{20};

double uniform(std::mt19937_64& g, double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(g);
}

/// Same shared room as bench/arena: 8x8 m, four corner APs, one reflector
/// at each wall midpoint — so chaos results are comparable with the
/// fault-free arena sweep.
core::Scene arena_scene() {
  channel::Room room{8.0, 8.0};
  core::ApRadio ap{kApPositions[0], deg_to_rad(kApOrientationsDeg[0])};
  core::HeadsetRadio headset{kCenter, 0.0};
  core::Scene scene{std::move(room), std::move(ap), std::move(headset)};
  scene.add_reflector({4.0, 7.7}, deg_to_rad(265.0));
  scene.add_reflector({7.7, 4.0}, deg_to_rad(175.0));
  scene.add_reflector({0.3, 4.0}, deg_to_rad(355.0));
  scene.add_reflector({4.0, 0.3}, deg_to_rad(85.0));
  return scene;
}

/// One named fault scenario plus the resources it faults (for blast-set
/// classification).
struct Scenario {
  const char* name;
  std::vector<arena::ArenaFault> faults;
  std::vector<std::size_t> faulted_reflectors;
  std::vector<std::size_t> faulted_aps;
};

sim::TimePoint at_s(double s) { return sim::TimePoint{sim::from_seconds(s)}; }

arena::ArenaFault reboot(std::size_t r, double start_s) {
  arena::ArenaFault f;
  f.kind = arena::ArenaFault::Kind::kReflectorReboot;
  f.resource = r;
  f.start = at_s(start_s);
  return f;
}

arena::ArenaFault sag(std::size_t r, double start_s, double dur_s,
                      double db) {
  arena::ArenaFault f;
  f.kind = arena::ArenaFault::Kind::kReflectorGainSag;
  f.resource = r;
  f.start = at_s(start_s);
  f.duration = sim::from_seconds(dur_s);
  f.magnitude_db = db;
  return f;
}

arena::ArenaFault brownout(std::size_t ap, double start_s, double dur_s,
                           double db) {
  arena::ArenaFault f;
  f.kind = arena::ArenaFault::Kind::kApBrownout;
  f.resource = ap;
  f.start = at_s(start_s);
  f.duration = sim::from_seconds(dur_s);
  f.magnitude_db = db;
  return f;
}

/// The fault grid. Timings sit on/around the shared diagonal crossing at
/// t=2.0 s, when reflector demand peaks — faults land while the faulted
/// device is actually leased.
std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"reboot", {reboot(0, 2.5)}, {0}, {}});
  out.push_back(
      {"sag", {sag(0, 2.0, 2.5, 6.0), sag(1, 2.2, 2.5, 6.0)}, {0, 1}, {}});
  out.push_back({"brownout", {brownout(0, 2.0, 2.0, 9.0)}, {}, {0}});
  out.push_back(
      {"combo", {reboot(0, 2.0), brownout(1, 3.5, 1.5, 8.0)}, {0}, {1}});
  return out;
}

arena::Coordinator::Config make_config(std::size_t users, std::uint64_t seed,
                                       double duration_s) {
  arena::Coordinator::Config config;
  config.users = users;
  config.seed = seed;
  config.ap_positions.assign(std::begin(kApPositions),
                             std::end(kApPositions));
  for (const double deg : kApOrientationsDeg) {
    config.ap_orientations.push_back(deg_to_rad(deg));
  }
  // Same contention tuning as bench/arena's arbitration arm.
  config.arbiter.lease_duration = std::chrono::milliseconds{250};
  config.arbiter.aging_per_second = 4.0;
  config.admission.evict_grace = std::chrono::seconds{2};
  config.link.skip_occluded_candidates = true;
  config.session.duration = sim::from_seconds(duration_s);
  net::TransportConfig transport;
  transport.source.target_mbps = 300.0;
  config.session.transport = transport;
  return config;
}

arena::Coordinator::MotionFactory motion_factory(std::uint64_t seed) {
  return [seed](std::size_t u,
                const core::Scene& scene) -> std::unique_ptr<vr::Motion> {
    const sim::RngRegistry rngs{seed};
    auto rng = rngs.stream("arena.pos", u);
    const geom::Vec2 ap = kApPositions[u % 4];
    const geom::Vec2 toward = (kCenter - ap).normalized();
    const geom::Vec2 perp{-toward.y, toward.x};
    geom::Vec2 start = ap + toward * uniform(rng, 1.8, 3.2) +
                       perp * uniform(rng, -1.1, 1.1);
    start.x = std::clamp(start.x, 0.9, 7.1);
    start.y = std::clamp(start.y, 0.9, 7.1);
    return std::make_unique<vr::PlayerMotion>(
        scene.room(), start, rngs.stream("arena.motion", u)());
  };
}

arena::Coordinator::ScriptFactory script_factory(double duration_s) {
  return [duration_s](std::size_t u) {
    const sim::TimePoint end{sim::from_seconds(duration_s)};
    std::vector<vr::BlockageEvent> events =
        vr::periodic_hand_raises(
            sim::TimePoint{sim::from_seconds(
                0.8 + 0.21 * static_cast<double>(u % 7))},
            sim::from_seconds(0.7), sim::from_seconds(2.4), end)
            .events();
    bool flip = false;
    for (double t = 2.0; t + 2.5 < duration_s; t += 5.0) {
      vr::BlockageEvent person;
      person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
      person.start = sim::TimePoint{sim::from_seconds(t)};
      person.duration = sim::from_seconds(2.5);
      person.path_from = flip ? geom::Vec2{7.4, 0.6} : geom::Vec2{0.6, 0.6};
      person.path_to = flip ? geom::Vec2{0.6, 7.4} : geom::Vec2{7.4, 7.4};
      flip = !flip;
      events.push_back(person);
    }
    return vr::BlockageScript{std::move(events)};
  };
}

/// Per-user cumulative (misses, frames) sampled every 20 ms.
struct Trajectory {
  std::vector<std::uint64_t> misses;
  std::vector<std::uint64_t> frames;
};

/// One coordinator run (faulted or reference) with live probes attached.
struct RunOutcome {
  std::vector<Trajectory> trajectories;       // one per user
  /// [user] shares a faulted reflector: fault-degraded at any probe, held
  /// a faulted reflector at/after fault start, first touched one after
  /// fault start, or bounced off a benched device. Deliberately NOT
  /// "touched at any point in the run" — that marks everyone over 6 s of
  /// contention and makes the isolation gate vacuous.
  std::vector<std::uint8_t> blast_signals;
  /// [user] sum of the user's OWN health-monitor counters (quarantines,
  /// reboot detections, divergences). A faulted-vs-reference mismatch
  /// means the user's link machinery reacted to the fault (e.g. an
  /// aborted handover into a rebooted reflector) even if every probe
  /// missed the short holder window — that user is in the blast.
  std::vector<std::uint64_t> health_marks;
  /// [user] sum of the user's admission counters (degrades, evictions,
  /// readmissions, fault spares). A faulted-vs-reference mismatch means
  /// the admission controller treated this user differently BECAUSE of
  /// the fault — e.g. the sparing rule shifting a demotion from the
  /// fault-degraded holder onto a healthy AP-mate. That transfer is the
  /// coordinator's deliberate blast radius, not an isolation leak.
  std::vector<std::uint64_t> admission_marks;
  /// Flattened [probe][reflector] -> holder index (kNoHolder when free).
  /// Diffed against the reference run to find lease-displacement
  /// cascades: a faulted reflector's displaced holder fast-tracks onto a
  /// healthy one, evicting ITS holder in turn — every user whose lease
  /// trajectory was reshuffled by the fault is inside the blast.
  std::vector<std::uint32_t> holder_map;
  std::size_t reflectors{0};
  std::vector<double> glitch_fractions;       // one per user
  std::uint64_t ledger_checks{0};
  std::uint64_t ledger_violations{0};
  std::uint64_t lease_liveness_violations{0};  // live 20 ms probe
  arena::Coordinator::ChaosStats chaos;
  std::uint64_t denials{0};
  std::uint64_t quarantine_denials{0};
  std::uint64_t fast_tracks{0};
  std::uint64_t stale_reservations{0};
  std::uint64_t fingerprint{0};
};

constexpr std::uint32_t kNoHolder = 0xffffffffu;

void fingerprint_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

struct LogSinks {
  std::unique_ptr<log::Recorder> coordinator;
  std::vector<std::unique_ptr<log::Recorder>> users;
  std::string coordinator_path;
  std::vector<std::string> user_paths;
};

LogSinks make_sinks(const std::string& dir, const std::string& stem,
                    std::size_t users, std::uint64_t seed,
                    sim::Simulator& simulator) {
  LogSinks sinks;
  sinks.coordinator_path = dir + "/" + stem + ".coordinator.log";
  log::Recorder::Config coord;
  coord.path = sinks.coordinator_path;
  coord.bench = "arena_chaos";
  coord.seed = seed;
  sinks.coordinator = std::make_unique<log::Recorder>(std::move(coord));
  sinks.coordinator->bind_clock(&simulator);
  for (std::size_t u = 0; u < users; ++u) {
    log::Recorder::Config user;
    sinks.user_paths.push_back(dir + "/" + stem + ".user" +
                               std::to_string(u) + ".log");
    user.path = sinks.user_paths.back();
    user.bench = "arena_chaos";
    user.seed = seed;
    sinks.users.push_back(std::make_unique<log::Recorder>(std::move(user)));
    sinks.users.back()->bind_clock(&simulator);
  }
  return sinks;
}

/// Runs one arena (with or without the scenario's faults) and samples
/// every user's live miss/frame counters — plus the live lease-liveness
/// check — every 20 ms.
RunOutcome run_arena(std::size_t users, const Scenario& scenario,
                     bool faulted, bool failover, std::uint64_t seed,
                     double duration_s, LogSinks* sinks) {
  const core::Scene prototype = arena_scene();
  sim::Simulator simulator;
  auto config = make_config(users, seed, duration_s);
  if (faulted) {
    config.faults = scenario.faults;
    config.lease_failover = failover;
  }
  if (sinks != nullptr) {
    config.recorder = sinks->coordinator.get();
    config.user_recorder = [sinks](std::size_t u) {
      return sinks->users[u].get();
    };
  }
  arena::Coordinator coordinator{simulator, prototype, config,
                                 motion_factory(seed),
                                 script_factory(duration_s)};

  RunOutcome out;
  out.trajectories.resize(users);
  out.blast_signals.assign(users, 0);
  out.reflectors = prototype.reflector_count();
  // Blast membership is decided per fault window, not per run: the flip
  // baseline is each user's touched-bitmap at the last probe before the
  // first fault lands (bit-identical between the faulted and reference
  // runs, since nothing has diverged yet).
  sim::TimePoint first_fault = sim::TimePoint::max();
  for (const arena::ArenaFault& fault : scenario.faults) {
    first_fault = std::min(first_fault, fault.start);
  }
  std::vector<std::uint8_t> pre_fault_touched(
      users * scenario.faulted_reflectors.size(), 0);
  // Live lease-liveness watcher state: how long each reflector has been
  // observed quarantined-with-a-holder.
  std::vector<sim::TimePoint> bad_since(prototype.reflector_count());
  std::vector<std::uint8_t> bad(prototype.reflector_count(), 0);
  const auto probe = [&] {
    const sim::TimePoint now = simulator.now();
    for (std::size_t u = 0; u < users; ++u) {
      const net::Transport* transport = coordinator.user_transport(u);
      out.trajectories[u].misses.push_back(
          transport != nullptr ? transport->live_deadline_misses() : 0);
      out.trajectories[u].frames.push_back(
          transport != nullptr ? transport->live_frames_emitted() : 0);
    }
    for (std::size_t r = 0; r < out.reflectors; ++r) {
      const auto holder = coordinator.arbiter().holder(r);
      out.holder_map.push_back(
          holder ? static_cast<std::uint32_t>(*holder) : kNoHolder);
    }
    if (now < first_fault) {
      // Keep refreshing the pre-fault baseline until the fault lands.
      for (std::size_t i = 0; i < scenario.faulted_reflectors.size(); ++i) {
        const std::size_t r = scenario.faulted_reflectors[i];
        for (std::size_t u = 0; u < users; ++u) {
          pre_fault_touched[u * scenario.faulted_reflectors.size() + i] =
              coordinator.arbiter().touched(u, r) ? 1 : 0;
        }
      }
    } else {
      // Holding a faulted reflector at/after fault start = in the blast,
      // as is carrying the coordinator's fault-degraded mark (displaced
      // holders, browned-out-AP users, sag-window holders).
      for (const std::size_t r : scenario.faulted_reflectors) {
        if (const auto holder = coordinator.arbiter().holder(r)) {
          out.blast_signals[*holder] = 1;
        }
      }
      if (faulted) {
        for (std::size_t u = 0; u < users; ++u) {
          if (coordinator.fault_degraded(u, now)) {
            out.blast_signals[u] = 1;
          }
        }
      }
    }
    if (!faulted || !failover) {
      return;  // the liveness gate binds on the failover-enabled fault run
    }
    for (std::size_t r = 0; r < bad.size(); ++r) {
      const bool held_quarantined =
          coordinator.device_health().quarantined(r) &&
          coordinator.arbiter().holder(r).has_value();
      if (!held_quarantined) {
        bad[r] = 0;
        continue;
      }
      if (bad[r] == 0) {
        bad[r] = 1;
        bad_since[r] = now;
        continue;
      }
      if (now - bad_since[r] > config.revoke_grace) {
        ++out.lease_liveness_violations;
      }
    }
  };
  const sim::TimePoint end{sim::from_seconds(duration_s)};
  for (sim::TimePoint t{kProbeInterval}; t < end; t += kProbeInterval) {
    simulator.at(t, probe);
  }

  const auto results = coordinator.run();
  for (std::size_t u = 0; u < users; ++u) {
    // First touch of a faulted reflector after fault start, or a bounce
    // off the benched device, completes the blast signals.
    for (std::size_t i = 0; i < scenario.faulted_reflectors.size(); ++i) {
      const std::size_t r = scenario.faulted_reflectors[i];
      if (coordinator.arbiter().touched(u, r) &&
          pre_fault_touched[u * scenario.faulted_reflectors.size() + i] ==
              0) {
        out.blast_signals[u] = 1;
      }
    }
    if (faulted &&
        coordinator.arbiter().user_stats(u).quarantine_denials > 0) {
      out.blast_signals[u] = 1;
    }
    const core::HealthMonitor::Stats& own =
        coordinator.user_manager(u).health().stats();
    out.health_marks.push_back(static_cast<std::uint64_t>(
        own.quarantines + own.reboots_detected + own.divergences));
    const arena::AdmissionController::UserCounters& adm =
        coordinator.admission().counters(u);
    out.admission_marks.push_back(static_cast<std::uint64_t>(
        adm.degrades + adm.evictions + adm.readmissions + adm.fault_spares));
    out.glitch_fractions.push_back(results[u].report.glitch_fraction());
    if (results[u].report.arena.has_value()) {
      out.ledger_checks += results[u].report.arena->ledger_checks;
      out.ledger_violations += results[u].report.arena->ledger_violations;
    }
    fingerprint_mix(out.fingerprint,
                    arena::qoe_fingerprint(results[u].report));
  }
  out.chaos = coordinator.chaos();
  out.denials = coordinator.arbiter().stats().denials;
  out.quarantine_denials = coordinator.arbiter().stats().quarantine_denials;
  out.fast_tracks = coordinator.arbiter().stats().fast_tracks;
  out.stale_reservations = coordinator.arbiter().stats().stale_reservations;
  if (sinks != nullptr) {
    sinks->coordinator->close();
    for (auto& user_log : sinks->users) {
      user_log->close();
    }
  }
  return out;
}

/// One (users, scenario, seed) cell: faulted run vs same-seed reference.
struct CellResult {
  RunOutcome faulted;
  RunOutcome reference;
  std::size_t blast_users{0};
  double max_excess{0.0};          // worst non-blast miss excess seen
  double max_allowance{0.0};       // the bound at that checkpoint
  std::uint64_t isolation_violations{0};
  std::string first_violation;
};

CellResult run_cell(std::size_t users, const Scenario& scenario,
                    std::uint64_t seed, double duration_s) {
  // The plain sweep cell runs unlogged; the event-log pass (one logged
  // cell per scenario) is driven separately from main().
  CellResult cell;
  cell.faulted = run_arena(users, scenario, /*faulted=*/true,
                           /*failover=*/true, seed, duration_s, nullptr);
  cell.reference = run_arena(users, scenario, /*faulted=*/false,
                             /*failover=*/true, seed, duration_s, nullptr);

  // Blast set: shared a faulted reflector during its fault window in
  // EITHER run (held it, first touched it after the fault landed, bounced
  // off it, or carried the fault-degraded mark), or attached to a
  // browned-out AP.
  std::vector<std::uint8_t> blast(users, 0);
  for (std::size_t u = 0; u < users; ++u) {
    if (cell.faulted.blast_signals[u] != 0 ||
        cell.reference.blast_signals[u] != 0) {
      blast[u] = 1;
    }
    // The user's own health machinery diverged from the fault-free run:
    // it reacted to the fault (aborted into a rebooted device, struck out
    // on a sagging one) even if every 20 ms probe missed the window.
    if (cell.faulted.health_marks[u] != cell.reference.health_marks[u]) {
      blast[u] = 1;
    }
    // Admission treated the user differently because of the fault: the
    // sparing rule deliberately shifts demotions onto healthy AP-mates
    // of a fault-degraded user. Deliberate transfer = inside the blast.
    if (cell.faulted.admission_marks[u] != cell.reference.admission_marks[u]) {
      blast[u] = 1;
    }
  }
  // Lease-displacement cascade: any checkpoint where a reflector's holder
  // differs from the fault-free run implicates BOTH holders — the user
  // pushed off its lease schedule and the one pushed onto it. (Pre-fault
  // checkpoints are bit-identical, so they contribute nothing.)
  const std::size_t map_len = std::min(cell.faulted.holder_map.size(),
                                       cell.reference.holder_map.size());
  for (std::size_t i = 0; i < map_len; ++i) {
    const std::uint32_t a = cell.faulted.holder_map[i];
    const std::uint32_t b = cell.reference.holder_map[i];
    if (a == b) {
      continue;
    }
    if (a != kNoHolder && a < users) {
      blast[a] = 1;
    }
    if (b != kNoHolder && b < users) {
      blast[b] = 1;
    }
  }
  for (std::size_t u = 0; u < users; ++u) {
    for (const std::size_t ap : scenario.faulted_aps) {
      if (u % 4 == ap) {
        blast[u] = 1;
      }
    }
    cell.blast_users += blast[u];
  }

  // Isolation: non-blast users track their fault-free trajectory.
  for (std::size_t u = 0; u < users; ++u) {
    if (blast[u] != 0) {
      continue;
    }
    const Trajectory& with = cell.faulted.trajectories[u];
    const Trajectory& without = cell.reference.trajectories[u];
    const std::size_t checkpoints =
        std::min(with.misses.size(), without.misses.size());
    for (std::size_t k = 0; k < checkpoints; ++k) {
      const double excess = static_cast<double>(with.misses[k]) -
                            static_cast<double>(without.misses[k]);
      const double allowance =
          kIsolationAbs +
          kIsolationFrac * static_cast<double>(without.frames[k]);
      if (excess > cell.max_excess) {
        cell.max_excess = excess;
        cell.max_allowance = allowance;
      }
      if (excess > allowance) {
        ++cell.isolation_violations;
        if (cell.first_violation.empty()) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "user %zu at t=%.2f s: %+.0f misses vs fault-free "
                        "(allowance %.1f)",
                        u, 0.02 * static_cast<double>(k + 1), excess,
                        allowance);
          cell.first_violation = buf;
        }
      }
    }
  }
  return cell;
}

/// Verifies one recorded log file offline; returns true when clean.
bool verify_file(const std::string& path, int* failures) {
  const log::ParsedLog parsed = log::parse_log_file(path);
  const log::VerifyReport report = log::verify_log(parsed, "");
  if (report.ok()) {
    return true;
  }
  std::printf("FAIL: %s does not verify offline:\n", path.c_str());
  for (const log::Issue& issue :
       report.chain_issues.empty() ? report.invariant_issues
                                   : report.chain_issues) {
    std::printf("  seq %lld t=%lld us: %s\n",
                static_cast<long long>(issue.seq),
                static_cast<long long>(issue.t_us), issue.what.c_str());
  }
  ++*failures;
  return false;
}

/// The --disable-failover tripwire: run one cell with lease failover OFF
/// and a long, mild all-reflector gain sag (links stay usable, so holders
/// keep riding their quarantined devices), then demand that the offline
/// verifier catches the lease-liveness breach from the bytes alone.
int run_tripwire(std::size_t users, std::uint64_t seed, double duration_s,
                 std::string dir) {
  if (dir.empty()) {
    dir = "arena_chaos_tripwire";
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  Scenario scenario;
  scenario.name = "tripwire_sag_all";
  for (std::size_t r = 0; r < 4; ++r) {
    scenario.faults.push_back(sag(r, 1.5, duration_s - 2.0, 2.0));
    scenario.faulted_reflectors.push_back(r);
  }

  const core::Scene prototype = arena_scene();
  sim::Simulator simulator;
  auto config = make_config(users, seed, duration_s);
  config.faults = scenario.faults;
  config.lease_failover = false;
  LogSinks sinks = make_sinks(dir, "tripwire", users, seed, simulator);
  config.recorder = sinks.coordinator.get();
  config.user_recorder = [&sinks](std::size_t u) {
    return sinks.users[u].get();
  };
  arena::Coordinator coordinator{simulator, prototype, config,
                                 motion_factory(seed),
                                 script_factory(duration_s)};
  coordinator.run();
  sinks.coordinator->close();
  for (auto& user_log : sinks.users) {
    user_log->close();
  }

  const log::ParsedLog parsed = log::parse_log_file(sinks.coordinator_path);
  const log::VerifyReport report = log::verify_log(parsed, "");
  if (!report.chain_issues.empty()) {
    std::printf("FAIL: tripwire log has chain issues (expected a clean "
                "chain with an invariant F violation):\n  %s\n",
                report.chain_issues.front().what.c_str());
    return 1;
  }
  if (report.invariant_issues.empty()) {
    std::printf("FAIL: verifier did NOT catch the disabled failover — "
                "%llu lease snapshots re-checked, zero violations\n",
                static_cast<unsigned long long>(report.lease_snapshots));
    return 1;
  }
  const log::Issue& first = report.invariant_issues.front();
  if (first.what.find("invariant F") == std::string::npos) {
    std::printf("FAIL: first invariant issue is not lease liveness: %s\n",
                first.what.c_str());
    return 1;
  }
  std::printf("OK: tripwire caught — verification of %s fails at seq %lld "
              "(t=%lld us):\n  %s\n",
              sinks.coordinator_path.c_str(),
              static_cast<long long>(first.seq),
              static_cast<long long>(first.t_us), first.what.c_str());
  return 0;
}

void print_usage() {
  std::printf(
      "arena_chaos — correlated shared-resource faults against the\n"
      "multi-user arena: lease failover, fault-aware admission, and a\n"
      "blast-radius isolation gate checked every 20 ms\n\n"
      "  arena_chaos [--users LIST] [--seeds N] [--seed S]\n"
      "              [--duration SECONDS] [--threads N] [--json PATH]\n"
      "              [--event-log DIR] [--disable-failover]\n\n"
      "  --users LIST         comma-separated user counts (default 4,8)\n"
      "  --seeds N            run seeds 1..N (default 2)\n"
      "  --seed S             run exactly one seed (replay mode)\n"
      "  --duration SECONDS   sim time per run (default 6)\n"
      "  --threads N          worker threads (default: hardware)\n"
      "  --json PATH          machine-readable summary (BENCH_arena_chaos)\n"
      "  --event-log DIR      record coordinator + per-user event logs for\n"
      "                       one cell per scenario and re-verify offline\n"
      "  --disable-failover   tripwire: run with lease failover OFF and\n"
      "                       exit 0 only if offline verification FAILS at\n"
      "                       the first lease-liveness record\n\n"
      "Exits nonzero when any ledger audit opens, a live 20 ms probe sees\n"
      "a lease outlive its device's quarantine grace, a user sharing no\n"
      "faulted resource leaves its fault-free glitch trajectory by more\n"
      "than the isolation epsilon, a recorded log fails offline\n"
      "verification, or the chaos machinery never engaged.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> user_counts = {4, 8};
  int seeds = 2;
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  double duration_s = 6.0;
  unsigned threads = 0;
  std::string json_path;
  std::string event_log_dir;
  bool disable_failover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      user_counts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* endp = nullptr;
        const unsigned long v = std::strtoul(p, &endp, 10);
        if (endp == p || v == 0) {
          std::fprintf(stderr, "bad --users list\n");
          return 2;
        }
        user_counts.push_back(static_cast<std::size_t>(v));
        p = *endp == ',' ? endp + 1 : endp;
      }
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single_seed = std::strtoull(argv[++i], nullptr, 10);
      have_single_seed = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--event-log") == 0 && i + 1 < argc) {
      event_log_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--disable-failover") == 0) {
      disable_failover = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  if (disable_failover) {
    const std::size_t users = user_counts.empty() ? 8 : user_counts.back();
    return run_tripwire(users, have_single_seed ? single_seed : 1,
                        duration_s, event_log_dir);
  }

  std::vector<std::uint64_t> seed_list;
  if (have_single_seed) {
    seed_list.push_back(single_seed);
  } else {
    for (int s = 1; s <= seeds; ++s) {
      seed_list.push_back(static_cast<std::uint64_t>(s));
    }
  }
  const std::vector<Scenario> grid = scenarios();

  struct SweepJob {
    std::size_t users;
    std::size_t scenario;
    std::uint64_t seed;
  };
  std::vector<SweepJob> jobs;
  for (const std::size_t users : user_counts) {
    for (std::size_t s = 0; s < grid.size(); ++s) {
      for (const std::uint64_t seed : seed_list) {
        jobs.push_back({users, s, seed});
      }
    }
  }
  std::vector<CellResult> results(jobs.size());

  const auto wall_start = std::chrono::steady_clock::now();
  core::parallel_for(jobs.size(), threads,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t j = begin; j < end; ++j) {
                         results[j] = run_cell(jobs[j].users,
                                               grid[jobs[j].scenario],
                                               jobs[j].seed, duration_s);
                       }
                     });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  int failures = 0;

  bench::print_header(
      "Arena chaos — correlated shared-resource faults, failover + "
      "isolation");
  std::printf("%5s %-10s %5s %7s %7s %7s %7s %7s %9s %10s\n", "users",
              "scenario", "seed", "faults", "quarant", "failovr", "restore",
              "blast", "maxExcess", "liveness");
  arena::Coordinator::ChaosStats totals;
  std::uint64_t total_fast_tracks = 0;
  std::uint64_t total_quarantine_denials = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const SweepJob& job = jobs[j];
    const CellResult& cell = results[j];
    const auto& chaos = cell.faulted.chaos;
    totals.faults_applied += chaos.faults_applied;
    totals.failover_revocations += chaos.failover_revocations;
    totals.orphan_leases_reaped += chaos.orphan_leases_reaped;
    totals.device_quarantines += chaos.device_quarantines;
    totals.device_restores += chaos.device_restores;
    totals.fault_degraded_samples += chaos.fault_degraded_samples;
    total_fast_tracks += cell.faulted.fast_tracks;
    total_quarantine_denials += cell.faulted.quarantine_denials;
    std::printf("%5zu %-10s %5llu %7llu %7llu %7llu %7llu %7zu %9.1f %10llu\n",
                job.users, grid[job.scenario].name,
                static_cast<unsigned long long>(job.seed),
                static_cast<unsigned long long>(chaos.faults_applied),
                static_cast<unsigned long long>(chaos.device_quarantines),
                static_cast<unsigned long long>(chaos.failover_revocations),
                static_cast<unsigned long long>(chaos.device_restores),
                cell.blast_users, cell.max_excess,
                static_cast<unsigned long long>(
                    cell.faulted.lease_liveness_violations));
  }

  // Gate 1: every user's extended packet ledger closes at every 20 ms
  // check, in both the faulted and the reference runs.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const CellResult& cell = results[j];
    const bool bad =
        cell.faulted.ledger_violations > 0 || cell.faulted.ledger_checks == 0 ||
        cell.reference.ledger_violations > 0 ||
        cell.reference.ledger_checks == 0;
    if (bad) {
      std::printf("FAIL: ledger audit open (%zu users, %s, seed %llu)\n",
                  jobs[j].users, grid[jobs[j].scenario].name,
                  static_cast<unsigned long long>(jobs[j].seed));
      bench::print_replay("arena_chaos", jobs[j].seed, duration_s, "");
      ++failures;
    }
  }

  // Gate 2: live lease liveness — no 20 ms probe ever saw a quarantined
  // reflector keep its holder past the revocation grace.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (results[j].faulted.lease_liveness_violations > 0) {
      std::printf(
          "FAIL: lease liveness: %llu probes saw a quarantined reflector "
          "still leased (%zu users, %s, seed %llu)\n",
          static_cast<unsigned long long>(
              results[j].faulted.lease_liveness_violations),
          jobs[j].users, grid[jobs[j].scenario].name,
          static_cast<unsigned long long>(jobs[j].seed));
      bench::print_replay("arena_chaos", jobs[j].seed, duration_s, "");
      ++failures;
    }
  }

  // Gate 3: blast-radius isolation — and the gate must actually bind:
  // at least one cell has to leave some users outside the blast, or the
  // trajectory comparison proved nothing.
  std::size_t isolated_user_cells = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    isolated_user_cells += jobs[j].users - results[j].blast_users;
  }
  if (isolated_user_cells == 0) {
    std::printf(
        "FAIL: isolation gate vacuous: every user in every cell was "
        "classified blast\n");
    ++failures;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (results[j].isolation_violations > 0) {
      std::printf(
          "FAIL: isolation: %llu checkpoint(s) outside epsilon (%zu users, "
          "%s, seed %llu): %s\n",
          static_cast<unsigned long long>(results[j].isolation_violations),
          jobs[j].users, grid[jobs[j].scenario].name,
          static_cast<unsigned long long>(jobs[j].seed),
          results[j].first_violation.c_str());
      bench::print_replay("arena_chaos", jobs[j].seed, duration_s, "");
      ++failures;
    }
  }

  // Gate 4: the machinery engaged (otherwise every other gate is vacuous)
  // and nothing leaked: zero orphaned leases across the sweep.
  if (totals.faults_applied == 0 || totals.device_quarantines == 0 ||
      totals.failover_revocations == 0 || totals.device_restores == 0) {
    std::printf("FAIL: chaos machinery never engaged (faults %llu, "
                "quarantines %llu, failovers %llu, restores %llu)\n",
                static_cast<unsigned long long>(totals.faults_applied),
                static_cast<unsigned long long>(totals.device_quarantines),
                static_cast<unsigned long long>(totals.failover_revocations),
                static_cast<unsigned long long>(totals.device_restores));
    ++failures;
  }
  if (totals.orphan_leases_reaped > 0) {
    std::printf("FAIL: %llu orphaned lease(s) reaped — arbiter and managers "
                "desynced\n",
                static_cast<unsigned long long>(totals.orphan_leases_reaped));
    ++failures;
  }

  // Event-log pass: one logged cell per scenario (largest user count,
  // first seed), every stream re-verified offline in-process.
  std::size_t logs_verified = 0;
  if (!event_log_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(event_log_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --event-log dir %s: %s\n",
                   event_log_dir.c_str(), ec.message().c_str());
      return 2;
    }
    const std::size_t users = user_counts.back();
    const std::uint64_t seed = seed_list.front();
    for (const Scenario& scenario : grid) {
      sim::Simulator simulator;
      const core::Scene prototype = arena_scene();
      auto config = make_config(users, seed, duration_s);
      config.faults = scenario.faults;
      const std::string stem = std::string{scenario.name} + "_u" +
                               std::to_string(users) + "_s" +
                               std::to_string(seed);
      LogSinks sinks =
          make_sinks(event_log_dir, stem, users, seed, simulator);
      config.recorder = sinks.coordinator.get();
      config.user_recorder = [&sinks](std::size_t u) {
        return sinks.users[u].get();
      };
      arena::Coordinator coordinator{simulator, prototype, config,
                                     motion_factory(seed),
                                     script_factory(duration_s)};
      coordinator.run();
      sinks.coordinator->close();
      for (auto& user_log : sinks.users) {
        user_log->close();
      }
      if (verify_file(sinks.coordinator_path, &failures)) {
        ++logs_verified;
      }
      for (const std::string& path : sinks.user_paths) {
        if (verify_file(path, &failures)) {
          ++logs_verified;
        }
      }
    }
    std::printf("\nevent logs: %zu stream(s) verified offline in %s\n",
                logs_verified, event_log_dir.c_str());
  }

  if (!json_path.empty()) {
    bench::Json sweep = bench::Json::array();
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const CellResult& cell = results[j];
      bench::Json row = bench::Json::object();
      row.set("users", static_cast<std::uint64_t>(jobs[j].users))
          .set("scenario", grid[jobs[j].scenario].name)
          .set("seed", jobs[j].seed)
          .set("faults_applied", cell.faulted.chaos.faults_applied)
          .set("device_quarantines", cell.faulted.chaos.device_quarantines)
          .set("device_restores", cell.faulted.chaos.device_restores)
          .set("failover_revocations",
               cell.faulted.chaos.failover_revocations)
          .set("orphan_leases_reaped",
               cell.faulted.chaos.orphan_leases_reaped)
          .set("fault_degraded_samples",
               cell.faulted.chaos.fault_degraded_samples)
          .set("fast_tracks", cell.faulted.fast_tracks)
          .set("quarantine_denials", cell.faulted.quarantine_denials)
          .set("stale_reservations", cell.faulted.stale_reservations)
          .set("blast_users", static_cast<std::uint64_t>(cell.blast_users))
          .set("max_isolation_excess", cell.max_excess)
          .set("isolation_violations", cell.isolation_violations)
          .set("lease_liveness_violations",
               cell.faulted.lease_liveness_violations)
          .set("ledger_checks", cell.faulted.ledger_checks)
          .set("ledger_violations", cell.faulted.ledger_violations)
          .set("fingerprint", bench::fingerprint_hex(cell.faulted.fingerprint))
          .set("reference_fingerprint",
               bench::fingerprint_hex(cell.reference.fingerprint));
      sweep.push(std::move(row));
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "arena_chaos")
        .set("wall_time_s", wall_s)
        .set("duration_s", duration_s)
        .set("seeds", static_cast<std::uint64_t>(seed_list.size()))
        .set("replay", have_single_seed)
        .set("isolation_abs", kIsolationAbs)
        .set("isolation_frac", kIsolationFrac)
        .set("total_failover_revocations", totals.failover_revocations)
        .set("total_fast_tracks", total_fast_tracks)
        .set("total_quarantine_denials", total_quarantine_denials)
        .set("logs_verified", static_cast<std::uint64_t>(logs_verified))
        .set("pass", failures == 0)
        .set("sweep", std::move(sweep));
    if (!bench::emit_json(json_path, doc)) {
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf(
        "\nOK: %zu user counts x %zu scenarios x %zu seeds — ledgers "
        "closed, leases live, isolation held (max excess %.1f misses), "
        "%llu failovers / %llu fast-tracks / %llu quarantine denials "
        "(%.1f s wall)\n",
        user_counts.size(), grid.size(), seed_list.size(),
        [&] {
          double m = 0.0;
          for (const CellResult& cell : results) {
            m = std::max(m, cell.max_excess);
          }
          return m;
        }(),
        static_cast<unsigned long long>(totals.failover_revocations),
        static_cast<unsigned long long>(total_fast_tracks),
        static_cast<unsigned long long>(total_quarantine_denials), wall_s);
    return 0;
  }
  std::printf("\nFAIL: %d gate(s) failed\n", failures);
  return 1;
}
