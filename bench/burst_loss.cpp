// ARQ-only vs static FEC vs adaptive hybrid under seeded burst loss.
//
// Each seed builds one world — the paper office, a MoVR strategy riding a
// calibrated reflector, a standing blocker over the middle of the session,
// and a Gilbert–Elliott burst channel whose bad state is forced open by
// seeded fault windows — and runs it three times with identical randomness,
// varying only the data-plane protection:
//
//   arq-only   no parity; every hole costs a retransmit round-trip
//   static-fec always-on FecParams{4,4}; pays parity airtime on clean air
//   adaptive   the RedundancyController: EWMA loss+burstiness with
//              hysteresis, deeper keyframe protection, proactive boost
//              while the link is stressed
//
// The packet-conservation ledger (enqueued == delivered + dropped +
// recovered-as-delivered + in-flight) is checked every 20 ms of sim time
// in every arm. The bench doubles as the acceptance gate for the hybrid:
// aggregated across seeds it must beat ARQ-only on BOTH residual frame
// loss (deadline-miss fraction) and pooled p99 frame latency, and it must
// actually have engaged (frames protected, packets recovered).
//
// Every draw derives from the seed via sim::RngRegistry, so a failing seed
// replays bit-identically; on failure the exact replay command is printed.
// Each arm carries a fingerprint hash so a replay can be compared
// byte-for-byte against the sweep.
//
// Usage: burst_loss [--seeds N] [--seed S] [--duration SECONDS]
//                   [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sim/fault_injector.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;
using namespace std::chrono_literals;

enum class Arm { kArqOnly, kStaticFec, kAdaptive };

constexpr const char* kArmNames[] = {"arq-only", "static-fec", "adaptive"};

struct ArmResult {
  vr::QoeReport report;
  std::uint64_t ledger_checks{0};
  std::uint64_t ledger_violations{0};
  std::uint64_t fingerprint{0};
};

double uniform(std::mt19937_64& g, double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(g);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// A person stands on the AP-headset line for 40% of the session.
vr::BlockageScript standing_blocker(sim::Duration duration) {
  vr::BlockageEvent person;
  person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
  person.start = sim::Duration{duration.count() * 3 / 10};
  person.duration = sim::Duration{duration.count() * 4 / 10};
  person.path_from = {1.7, 1.3};
  person.path_to = {1.7, 1.3};
  return vr::BlockageScript{std::vector<vr::BlockageEvent>{person}};
}

/// One seed, one arm. The world — scene, blocker, fault windows, burst
/// chain, every RNG stream — is a pure function of `seed`, so the three
/// arms differ only in the transport's protection config.
ArmResult run_arm(Arm arm, std::uint64_t seed, double duration_s) {
  const auto duration = sim::from_seconds(duration_s);
  const sim::TimePoint end{duration};
  sim::RngRegistry rngs{seed};
  auto chaos = rngs.stream("chaos");

  auto scene = bench::paper_scene(
      {uniform(chaos, 2.2, 3.2), uniform(chaos, 1.6, 2.6)}, false);
  bench::steer_direct(scene);
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  auto cal_rng = rngs.stream("cal");
  bench::calibrate_reflector(scene, reflector, cal_rng);

  sim::Simulator simulator;
  vr::MovrStrategy strategy{simulator, scene, rngs.stream("mgr")};
  const auto script = standing_blocker(duration);

  // Seeded loss windows: while one is open the session marks the link
  // stressed and forces the burst chain's bad state — the interference
  // spikes the channel model turns into correlated MPDU loss.
  sim::FaultInjector faults{simulator};
  const int windows = std::max(2, static_cast<int>(duration_s / 2.5));
  for (int i = 0; i < windows; ++i) {
    const double slot = duration_s / static_cast<double>(windows);
    const double start = slot * i + uniform(chaos, 0.1 * slot, 0.6 * slot);
    const double len = uniform(chaos, 0.25, 0.6);
    faults.inject("loss-window", sim::TimePoint{sim::from_seconds(start)},
                  sim::from_seconds(len), [] {});
  }

  vr::Session::Config config;
  config.duration = duration;
  config.faults = &faults;
  net::TransportConfig transport;
  // Moderate utilization, realistic loss discovery: at 800 Mbps the air has
  // headroom, and a 500 µs block-ack horizon (vs the 5 µs default used by
  // the unit suites) makes every ARQ repair pay a detection round-trip that
  // an inline parity repair does not — the trade this bench measures. The
  // wider window keeps the pipe full across that horizon in every arm.
  transport.source.target_mbps = 800.0;
  transport.ack_delay = std::chrono::microseconds{500};
  transport.arq.window = 16;
  transport.source.seed = seed * 11 + 1;
  transport.seed = seed * 17 + 3;
  switch (arm) {
    case Arm::kArqOnly:
      break;
    case Arm::kStaticFec:
      transport.fec = net::FecParams{4, 4};
      break;
    case Arm::kAdaptive:
      transport.adaptive_fec = true;
      break;
  }
  config.transport = transport;
  sim::BurstChannel::Config burst;
  burst.seed = rngs.stream("burst")();
  // Severe but survivable: at 25% in-burst MPDU loss a well-spent
  // redundancy budget saves most frames, so the arms separate on policy
  // rather than all drowning together (at the default 40% nothing does).
  burst.loss_bad = 0.25;
  config.burst_loss = burst;

  vr::Session session{simulator, scene, strategy, nullptr, &script, config};

  ArmResult result;
  for (sim::TimePoint t{20ms}; t < end; t += 20ms) {
    simulator.at(t, [&result, &session] {
      ++result.ledger_checks;
      if (!session.transport()->ledger_closes()) {
        ++result.ledger_violations;
      }
    });
  }
  result.report = session.run();

  const net::TransportMetrics& m = *result.report.transport;
  std::uint64_t h = sim::fnv1a("burst_loss");
  h = mix(h, seed);
  h = mix(h, static_cast<std::uint64_t>(arm));
  h = mix(h, m.frames_emitted);
  h = mix(h, m.deadline_misses);
  h = mix(h, m.packets_enqueued);
  h = mix(h, m.packets_delivered);
  h = mix(h, m.packets_dropped);
  h = mix(h, m.packets_recovered);
  h = mix(h, m.packets_recovered_delivered);
  h = mix(h, m.parity_enqueued);
  h = mix(h, m.retransmits);
  if (result.report.burst.has_value()) {
    h = mix(h, result.report.burst->steps_bad);
    h = mix(h, result.report.burst->bursts);
    h = mix(h, result.report.burst->forced_bad);
  }
  result.fingerprint = h;
  return result;
}

void print_usage() {
  std::printf(
      "burst_loss — ARQ-only vs static FEC vs adaptive hybrid under a\n"
      "seeded Gilbert–Elliott burst channel\n\n"
      "  burst_loss [--seeds N] [--seed S] [--duration SECONDS]\n\n"
      "  --seeds N            run seeds 1..N (default 6)\n"
      "  --seed S             run exactly one seed (replay mode)\n"
      "  --duration SECONDS   sim time per seed (default 12)\n"
      "  --json PATH          write a machine-readable summary (wall time,\n"
      "                       per-arm miss fraction and pooled percentiles)\n"
      "                       to PATH\n\n"
      "Exits nonzero when any arm's packet ledger fails a 20 ms check or\n"
      "the adaptive hybrid does not beat ARQ-only on both residual frame\n"
      "loss and pooled p99 latency. On failure the single-seed replay\n"
      "command is printed; fingerprints compare replays bit-for-bit.\n");
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 6;
  std::uint64_t single_seed = 0;
  bool have_single_seed = false;
  double duration_s = 12.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single_seed = std::strtoull(argv[++i], nullptr, 10);
      have_single_seed = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }

  std::vector<std::uint64_t> seed_list;
  if (have_single_seed) {
    seed_list.push_back(single_seed);
  } else {
    for (int s = 1; s <= seeds; ++s) {
      seed_list.push_back(static_cast<std::uint64_t>(s));
    }
  }

  bench::print_header(
      "Burst loss — ARQ-only vs static FEC vs adaptive hybrid FEC/ARQ");
  std::printf("%5s %-11s %10s %8s %8s %8s %8s %8s %8s %18s\n", "seed", "arm",
              "misses", "p99ms", "retx", "parity", "recov", "drops",
              "bursts", "fingerprint");

  int failures = 0;
  // Aggregates across seeds, indexed by arm.
  std::uint64_t misses[3] = {0, 0, 0};
  std::uint64_t frames[3] = {0, 0, 0};
  std::uint64_t retransmits[3] = {0, 0, 0};
  std::uint64_t drops[3] = {0, 0, 0};
  std::uint64_t protected_frames = 0;
  std::uint64_t recovered = 0;
  std::vector<double> pooled[3];

  const auto wall_start = std::chrono::steady_clock::now();
  for (const std::uint64_t seed : seed_list) {
    for (int a = 0; a < 3; ++a) {
      const ArmResult r = run_arm(static_cast<Arm>(a), seed, duration_s);
      const net::TransportMetrics& m = *r.report.transport;
      std::printf("%5llu %-11s %5llu/%-4llu %8.2f %8llu %8llu %8llu %8llu "
                  "%8llu %018llx\n",
                  static_cast<unsigned long long>(seed), kArmNames[a],
                  static_cast<unsigned long long>(m.deadline_misses),
                  static_cast<unsigned long long>(m.frames_emitted), m.p99_ms,
                  static_cast<unsigned long long>(m.retransmits),
                  static_cast<unsigned long long>(m.parity_enqueued),
                  static_cast<unsigned long long>(m.packets_recovered),
                  static_cast<unsigned long long>(m.packets_dropped),
                  static_cast<unsigned long long>(
                      r.report.burst ? r.report.burst->bursts : 0),
                  static_cast<unsigned long long>(r.fingerprint));
      misses[a] += m.deadline_misses;
      frames[a] += m.frames_emitted;
      retransmits[a] += m.retransmits;
      drops[a] += m.packets_dropped;
      if (a == static_cast<int>(Arm::kAdaptive)) {
        protected_frames += m.fec_frames_protected;
        recovered += m.packets_recovered;
      }
      const auto samples = bench::latency_samples(m);
      pooled[a].insert(pooled[a].end(), samples.begin(), samples.end());

      bool arm_failed = false;
      if (r.ledger_violations > 0) {
        std::printf("FAIL: %llu of %llu ledger checks open (seed %llu, %s)\n",
                    static_cast<unsigned long long>(r.ledger_violations),
                    static_cast<unsigned long long>(r.ledger_checks),
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (!m.conserved()) {
        std::printf("FAIL: final packet ledger does not close (seed %llu, "
                    "%s)\n",
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (!r.report.burst.has_value() || r.report.burst->forced_bad == 0) {
        std::printf("FAIL: the fault windows never forced the burst chain "
                    "bad (seed %llu, %s)\n",
                    static_cast<unsigned long long>(seed), kArmNames[a]);
        arm_failed = true;
      }
      if (arm_failed) {
        std::printf("  replay: burst_loss --seed %llu --duration %g\n",
                    static_cast<unsigned long long>(seed), duration_s);
        ++failures;
      }
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const auto miss_fraction = [&](int a) {
    return frames[a] > 0 ? static_cast<double>(misses[a]) /
                               static_cast<double>(frames[a])
                         : 0.0;
  };
  const int arq = static_cast<int>(Arm::kArqOnly);
  const int fec = static_cast<int>(Arm::kStaticFec);
  const int hyb = static_cast<int>(Arm::kAdaptive);
  const double p99[3] = {bench::percentile(pooled[arq], 0.99),
                         bench::percentile(pooled[fec], 0.99),
                         bench::percentile(pooled[hyb], 0.99)};

  // Machine-readable summary; residual loss == aggregate deadline-miss
  // fraction per arm, percentiles pooled across seeds.
  const auto emit_summary = [&](int gate_failures) {
    if (json_path.empty()) {
      return true;
    }
    bench::Json arms = bench::Json::array();
    for (int a = 0; a < 3; ++a) {
      bench::Json arm = bench::Json::object();
      arm.set("name", kArmNames[a])
          .set("p50_ms", bench::percentile(pooled[a], 0.50))
          .set("p95_ms", bench::percentile(pooled[a], 0.95))
          .set("p99_ms", p99[a])
          .set("frames", frames[a])
          .set("deadline_misses", misses[a])
          .set("residual_loss", miss_fraction(a))
          .set("retransmits", retransmits[a])
          .set("packets_dropped", drops[a]);
      arms.push(std::move(arm));
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "burst_loss")
        .set("wall_time_s", wall_s)
        .set("duration_s", duration_s)
        .set("seeds", static_cast<std::uint64_t>(seed_list.size()))
        .set("replay", have_single_seed)
        .set("pass", gate_failures == 0)
        .set("arms", std::move(arms));
    return bench::emit_json(json_path, doc);
  };

  std::printf("\n%-11s %10s %10s\n", "aggregate", "miss-frac", "p99ms");
  for (int a = 0; a < 3; ++a) {
    std::printf("%-11s %9.3f%% %10.2f\n", kArmNames[a],
                100.0 * miss_fraction(a), p99[a]);
  }

  // The hybrid's acceptance gates are statistical aggregates — they bind on
  // the multi-seed sweep. A single-seed replay exists to reproduce a ledger
  // violation or a fingerprint bit-identically, so only the per-arm
  // invariants above apply there.
  if (have_single_seed) {
    if (!emit_summary(failures)) {
      ++failures;
    }
    if (failures == 0) {
      std::printf("\nOK: single-seed replay, ledgers closed (aggregate "
                  "policy gates apply to multi-seed sweeps only)\n");
      return 0;
    }
    std::printf("\nFAIL: %d gate(s) failed\n", failures);
    return 1;
  }
  if (!(miss_fraction(hyb) < miss_fraction(arq))) {
    std::printf("FAIL: adaptive residual loss %.3f%% does not beat ARQ-only "
                "%.3f%%\n",
                100.0 * miss_fraction(hyb), 100.0 * miss_fraction(arq));
    ++failures;
  }
  if (!(p99[hyb] < p99[arq])) {
    std::printf("FAIL: adaptive pooled p99 %.2f ms does not beat ARQ-only "
                "%.2f ms\n",
                p99[hyb], p99[arq]);
    ++failures;
  }
  if (protected_frames == 0 || recovered == 0) {
    std::printf("FAIL: the adaptive layer never engaged (protected %llu, "
                "recovered %llu)\n",
                static_cast<unsigned long long>(protected_frames),
                static_cast<unsigned long long>(recovered));
    ++failures;
  }
  if (misses[arq] == 0) {
    std::printf("FAIL: the burst channel never bit the ARQ-only arm — the "
                "comparison is vacuous\n");
    ++failures;
  }

  if (!emit_summary(failures)) {
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nOK: %zu seeds x %.0f s x 3 arms, ledgers closed, hybrid "
                "beats ARQ-only\n",
                seed_list.size(), duration_s);
    return 0;
  }
  std::printf("\nFAIL: %d gate(s) failed\n", failures);
  return 1;
}
