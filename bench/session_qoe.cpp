// End-to-end VR session quality: MoVR against every baseline, replaying the
// SAME world (motion + blockage script) under each link strategy.
//
// This is the experience-level consequence of Figs. 3 and 9: blocked frames
// are glitches the player sees; a strategy either bridges blockages or it
// does not. Also covers the paper's Section 1 WiFi argument.
#include <cstdio>
#include <cstring>
#include <string>

#include <baseline/dual_antenna.hpp>
#include <baseline/strategies.hpp>
#include <baseline/wifi.hpp>
#include <core/config_epoch.hpp>
#include <sim/burst_channel.hpp>
#include <sim/fault_injector.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

vr::BlockageScript busy_living_room(sim::TimePoint end) {
  // Hands up every 3 s, a head turn at 8 s, a person crossing at 14 s.
  std::vector<vr::BlockageEvent> events =
      vr::periodic_hand_raises(sim::from_seconds(2.0), sim::from_seconds(0.8),
                               sim::from_seconds(3.0), end)
          .events();
  vr::BlockageEvent head;
  head.kind = vr::BlockageEvent::Kind::kHead;
  head.start = sim::from_seconds(8.5);
  head.duration = sim::from_seconds(1.5);
  events.push_back(head);
  vr::BlockageEvent person;
  person.kind = vr::BlockageEvent::Kind::kPersonCrossing;
  person.start = sim::from_seconds(14.0);
  person.duration = sim::from_seconds(4.0);
  person.path_from = {0.5, 2.8};
  person.path_to = {4.5, 1.2};
  events.push_back(person);
  return vr::BlockageScript{std::move(events)};
}

struct Row {
  const char* name;
  vr::QoeReport report;
  double extra{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  bool with_transport = false;
  bool with_control_faults = false;
  bool with_burst_loss = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport") == 0) {
      with_transport = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      // Machine-readable summary (same bench::Json document shape the
      // other benches emit) alongside the human tables.
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--control-faults") == 0) {
      // Runs MoVR's row with the hardened control plane attached and a
      // 1.5 s control partition mid-session, and prints the incident
      // counters (core::ControlPlaneIncidents) under the QoE table.
      with_control_faults = true;
    } else if (std::strcmp(argv[i], "--burst-loss") == 0) {
      // Drives every strategy's transport through a seeded Gilbert-Elliott
      // burst channel with the adaptive FEC/ARQ controller engaged, and
      // prints the recovery and burst counters under the transport table.
      // Implies --transport.
      with_burst_loss = true;
      with_transport = true;
    }
  }

  sim::RngRegistry rngs{3};
  const auto duration = sim::from_seconds(20.0);
  const auto script = busy_living_room(duration);

  vr::Session::Config config;
  config.duration = duration;
  if (with_transport) {
    // Compressed stream whose keyframes fit the frame deadline, so the
    // transport counters reflect blockage, not raw-bitrate saturation.
    net::TransportConfig transport;
    transport.source.target_mbps = 2000.0;
    if (with_burst_loss) {
      transport.adaptive_fec = true;
      sim::BurstChannel::Config burst;
      burst.seed = rngs.stream("burst")();
      config.burst_loss = burst;
    }
    config.transport = transport;
  }

  std::vector<Row> rows;

  // MoVR.
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
    auto rng = rngs.stream("cal");
    bench::calibrate_reflector(scene, reflector, rng);
    sim::Simulator simulator;
    vr::MovrStrategy strategy{simulator, scene, rngs.stream("mgr")};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    sim::ControlChannel control{simulator, {}, rngs.stream("ctrl")};
    core::ReflectorConfigAgent agent{simulator, control, reflector, {},
                                     rngs.stream("agent")};
    core::ControlPlane plane{simulator, control, {}};
    sim::FaultInjector injector{simulator};
    auto movr_config = config;
    if (with_control_faults) {
      agent.start();
      plane.bind_health(&strategy.manager().health());
      plane.manage(0, reflector, &agent);
      plane.start();
      plane.commit(0, {reflector.front_end().rx_array().steering(),
                       reflector.front_end().tx_array().steering(),
                       reflector.front_end().gain_code()});
      injector.inject_control_partition(control, sim::from_seconds(6.0),
                                        sim::from_seconds(1.5));
      movr_config.faults = &injector;
      movr_config.control_plane = &plane;
    }
    vr::Session session{simulator, scene,   strategy,
                        &motion,   &script, movr_config};
    rows.push_back({"MoVR (1 reflector)", session.run()});
  }
  // Direct tracking, no reflector.
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    rows.push_back({"direct (pose-tracked)", session.run()});
  }
  // NLOS beam-switching (current mmWave practice).
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    sim::Simulator simulator;
    baseline::NlosSweepStrategy strategy{simulator, scene};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    rows.push_back({"NLOS beam switching", session.run(),
                    static_cast<double>(strategy.sweeps_performed())});
  }
  // Standard 802.11ad tracking: periodic SLS + refinement, no pose oracle.
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    sim::Simulator simulator;
    baseline::SlsTrackingStrategy strategy{simulator, scene};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    rows.push_back({"802.11ad SLS tracking", session.run(),
                    static_cast<double>(strategy.sweeps_performed())});
  }
  // Dual antenna (Section 3's "second antenna on the back" proposal).
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    sim::Simulator simulator;
    baseline::DualAntennaStrategy strategy{scene};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    rows.push_back({"dual antenna (front+back)", session.run()});
  }
  // Fixed beam (WHDI-class).
  {
    auto scene = bench::paper_scene({3.0, 2.2}, false);
    sim::Simulator simulator;
    baseline::FixedBeamStrategy strategy{scene};
    vr::PlayerMotion motion{scene.room(), {3.0, 2.2}, 11};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    rows.push_back({"fixed beam (WHDI)", session.run()});
  }

  bench::print_header(
      "Session QoE — 20 s play with hands, head turns, and a passer-by");
  std::printf("%-24s %8s %16s %10s %12s %12s\n", "strategy", "frames",
              "glitched", "stalls", "longest", "mean SNR");
  for (const Row& row : rows) {
    std::printf("%-24s %8lu %8lu (%5.1f%%) %10lu %9.0f ms %9.1f dB\n",
                row.name, static_cast<unsigned long>(row.report.frames),
                static_cast<unsigned long>(row.report.glitched_frames),
                100.0 * row.report.glitch_fraction(),
                static_cast<unsigned long>(row.report.stall_events),
                sim::to_milliseconds(row.report.longest_stall),
                row.report.mean_snr_db);
  }

  if (with_transport) {
    std::printf("\n%-24s %10s %10s %10s %10s %8s\n", "transport", "misses",
                "retx", "drops", "p95 ms", "p99 ms");
    for (const Row& row : rows) {
      const net::TransportMetrics& m = *row.report.transport;
      std::printf("%-24s %10lu %10lu %10lu %10.2f %8.2f\n", row.name,
                  static_cast<unsigned long>(m.deadline_misses),
                  static_cast<unsigned long>(m.retransmits),
                  static_cast<unsigned long>(m.packets_dropped), m.p95_ms,
                  m.p99_ms);
    }
  }

  if (with_burst_loss) {
    std::printf("\n%-24s %10s %10s %10s %10s %10s\n", "burst/FEC",
                "protected", "parity", "recovered", "residual", "bursts");
    for (const Row& row : rows) {
      const net::TransportMetrics& m = *row.report.transport;
      std::printf("%-24s %10lu %10lu %10lu %10lu %10lu\n", row.name,
                  static_cast<unsigned long>(m.fec_frames_protected),
                  static_cast<unsigned long>(m.parity_enqueued),
                  static_cast<unsigned long>(m.packets_recovered),
                  static_cast<unsigned long>(m.deadline_misses),
                  static_cast<unsigned long>(
                      row.report.burst ? row.report.burst->bursts : 0));
    }
  }

  for (const Row& row : rows) {
    if (!row.report.control_plane) {
      continue;
    }
    const core::ControlPlaneIncidents& cp = *row.report.control_plane;
    std::printf(
        "\ncontrol plane (%s): partitions %lu entered / %lu healed, "
        "divergences %lu, reconciliations %lu, reboots %lu, "
        "ack timeouts %lu, safe-mode entries %lu, oscillation trips %lu\n",
        row.name, static_cast<unsigned long>(cp.partitions_entered),
        static_cast<unsigned long>(cp.partitions_healed),
        static_cast<unsigned long>(cp.divergences_detected),
        static_cast<unsigned long>(cp.reconciliations),
        static_cast<unsigned long>(cp.reboots_detected),
        static_cast<unsigned long>(cp.ack_timeouts),
        static_cast<unsigned long>(cp.safe_mode_entries),
        static_cast<unsigned long>(cp.oscillation_trips));
  }

  std::printf("\nWiFi check (Section 1): best 802.11ac rate at infinite SNR "
              "= %.0f Mbps < required %.0f Mbps\n",
              baseline::wifi_max_rate_mbps(), vr::kHtcVive.required_mbps());

  if (!json_path.empty()) {
    bench::Json strategies = bench::Json::array();
    for (const Row& row : rows) {
      bench::Json entry = bench::Json::object();
      entry.set("name", row.name)
          .set("frames", row.report.frames)
          .set("glitched_frames", row.report.glitched_frames)
          .set("glitch_fraction", row.report.glitch_fraction())
          .set("stall_events", row.report.stall_events)
          .set("longest_stall_ms", sim::to_milliseconds(row.report.longest_stall))
          .set("mean_snr_db", row.report.mean_snr_db)
          .set("min_snr_db", row.report.min_snr_db)
          .set("mean_rate_mbps", row.report.mean_rate_mbps);
      if (row.report.transport) {
        const net::TransportMetrics& m = *row.report.transport;
        bench::Json transport = bench::Json::object();
        transport.set("deadline_misses", m.deadline_misses)
            .set("retransmits", m.retransmits)
            .set("packets_dropped", m.packets_dropped)
            .set("p50_ms", m.p50_ms)
            .set("p95_ms", m.p95_ms)
            .set("p99_ms", m.p99_ms);
        if (with_burst_loss) {
          transport.set("fec_frames_protected", m.fec_frames_protected)
              .set("parity_enqueued", m.parity_enqueued)
              .set("packets_recovered", m.packets_recovered);
        }
        entry.set("transport", std::move(transport));
      }
      if (row.report.burst) {
        bench::Json burst = bench::Json::object();
        burst.set("steps", row.report.burst->steps)
            .set("steps_bad", row.report.burst->steps_bad)
            .set("bursts", row.report.burst->bursts)
            .set("longest_burst_steps", row.report.burst->longest_burst_steps);
        entry.set("burst", std::move(burst));
      }
      strategies.push(std::move(entry));
    }
    bench::Json doc = bench::Json::object();
    doc.set("bench", "session_qoe")
        .set("duration_s", sim::to_seconds(duration))
        .set("transport", with_transport)
        .set("burst_loss", with_burst_loss)
        .set("control_faults", with_control_faults)
        .set("wifi_max_rate_mbps", baseline::wifi_max_rate_mbps())
        .set("required_mbps", vr::kHtcVive.required_mbps())
        .set("strategies", std::move(strategies));
    if (!bench::emit_json(json_path, doc)) {
      return 1;
    }
  }
  return 0;
}
