// Ablation: phase-shifter resolution.
//
// The prototype uses analog HMC-933 shifters driven by a DAC; commercial
// arrays use 2-6 bit digital shifters. This bench quantifies what that
// choice costs in realised array gain and in end-to-end link SNR.
#include <cstdio>
#include <vector>

#include <geom/angle.hpp>
#include <phy/link.hpp>
#include <rf/phased_array.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  bench::print_header("Ablation — phase-shifter quantisation");

  std::printf("%-12s %16s %18s %14s\n", "resolution", "mean gain loss",
              "worst gain loss", "LOS SNR");

  for (const int bits : {0, 6, 4, 3, 2, 1}) {
    // Array-level loss vs the analog reference, over the steering sector.
    rf::PhasedArray::Config analog_cfg;
    rf::PhasedArray::Config quant_cfg;
    quant_cfg.phase_bits = bits;
    rf::PhasedArray analog{analog_cfg};
    rf::PhasedArray quant{quant_cfg};
    std::vector<double> losses;
    for (double deg = 40.0; deg <= 140.0; deg += 1.0) {
      const double steer = deg_to_rad(deg);
      analog.steer(steer);
      quant.steer(steer);
      losses.push_back(analog.gain(steer).value() - quant.gain(steer).value());
    }
    const auto loss = bench::stats_of(losses);

    // End-to-end: LOS link in the paper room with quantised arrays at both
    // ends.
    auto scene = bench::paper_scene({3.3, 2.4}, false);
    core::ApRadio::Config ap_cfg;
    ap_cfg.array.phase_bits = bits;
    core::HeadsetRadio::Config hs_cfg;
    hs_cfg.array.phase_bits = bits;
    core::Scene qscene{channel::Room{5.0, 5.0},
                       core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0), ap_cfg},
                       core::HeadsetRadio{{3.3, 2.4}, 0.0, hs_cfg}};
    bench::steer_direct(qscene);
    const double snr = qscene.direct_snr().value();

    std::printf("%-12s %13.2f dB %15.2f dB %11.1f dB\n",
                bits == 0 ? "analog" : (std::to_string(bits) + "-bit").c_str(),
                loss.mean, loss.max, snr);
  }

  std::printf("\nreading: 3+ bits cost a fraction of a dB — the analog "
              "shifters are a convenience,\nnot a requirement; 1-2 bit "
              "shifters measurably flatten the beam.\n");
  return 0;
}
