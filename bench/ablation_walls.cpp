// Ablation: wall materials — could better walls make NLOS good enough,
// removing the need for MoVR?
//
// The paper contrasts itself with the data-center trick of covering a
// surface with metal ([34], "Mirror Mirror on the Ceiling") and argues it
// is "unsuitable for home applications". This bench quantifies the gap: the
// best blocked-LOS NLOS SNR as wall reflectivity improves, versus what a
// single MoVR reflector delivers in the same room.
#include <cstdio>
#include <vector>

#include <phy/beam_sweep.hpp>
#include <phy/mcs.hpp>
#include <sim/rng.hpp>
#include <vr/requirements.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  sim::RngRegistry rngs{29};
  const int kRuns = 15;
  const double required_snr =
      phy::mcs_for_rate(vr::kHtcVive.required_mbps())->min_snr.value();

  bench::print_header(
      "Ablation — wall material vs blocked-LOS NLOS quality (15 runs)");
  std::printf("required SNR: %.1f dB\n\n", required_snr);
  std::printf("%-28s %12s %12s %12s\n", "walls", "NLOS mean", "NLOS max",
              "meets VR");

  const std::vector<std::pair<const char*, channel::SurfaceMaterial>>
      materials = {{"drywall (11 dB/bounce)", channel::kDrywall},
                   {"concrete (14 dB/bounce)", channel::kConcrete},
                   {"glass (8 dB/bounce)", channel::kGlass},
                   {"metal (1.5 dB/bounce)", channel::kMetal}};

  for (const auto& [name, material] : materials) {
    std::vector<double> snrs;
    int ok = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto rng = rngs.stream("walls", static_cast<std::uint64_t>(run));
      channel::Room room{5.0, 5.0, material};
      core::Scene scene{std::move(room),
                        core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                        core::HeadsetRadio{{0.0, 0.0}, 0.0}};
      geom::Vec2 pos;
      do {
        pos = scene.room().random_interior_point(rng, 0.8);
      } while (geom::distance(pos, scene.ap().node().position()) < 1.5);
      scene.headset().node().set_position(pos);
      scene.room().add_obstacle(channel::make_hand(
          pos, scene.ap().node().position() - pos));
      auto paths = scene.paths_between(scene.ap().node().position(), pos);
      const auto sweep = phy::sweep_all_directions(
          scene.ap().node(), scene.headset().node(), paths,
          scene.config().link, /*nlos_only=*/true);
      snrs.push_back(sweep.snr.value());
      ok += sweep.snr.value() >= required_snr;
    }
    const auto s = bench::stats_of(snrs);
    std::printf("%-28s %9.1f dB %9.1f dB %9d/%d\n", name, s.mean, s.max, ok,
                kRuns);
  }

  // The MoVR comparison point, same room, drywall walls.
  {
    std::vector<double> snrs;
    int ok = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto rng = rngs.stream("walls-movr", static_cast<std::uint64_t>(run));
      auto scene = bench::paper_scene({0.0, 0.0}, false);
      auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
      geom::Vec2 pos;
      double local;
      do {
        pos = scene.room().random_interior_point(rng, 0.8);
        scene.headset().node().set_position(pos);
        local = scene.true_reflector_angle_to_headset(reflector);
      } while (geom::distance(pos, scene.ap().node().position()) < 1.5 ||
               geom::distance(pos, reflector.position()) < 1.2 ||
               local < deg_to_rad(40.0) || local > deg_to_rad(140.0));
      scene.room().add_obstacle(channel::make_hand(
          pos, scene.ap().node().position() - pos));
      bench::calibrate_reflector(scene, reflector, rng);
      scene.headset().node().face_toward(reflector.position());
      reflector.front_end().steer_tx(local);
      const double snr = scene.via_snr(reflector).snr.value();
      snrs.push_back(snr);
      ok += snr >= required_snr;
    }
    const auto s = bench::stats_of(snrs);
    std::printf("%-28s %9.1f dB %9.1f dB %9d/%d\n",
                "MoVR, drywall room", s.mean, s.max, ok, kRuns);
  }

  std::printf("\nreading: even metal-clad walls leave blocked-LOS NLOS "
              "short of the VR rate in most\nplacements (the path is longer "
              "and the bounce geometry rarely cooperates), and nobody\nclads "
              "a living room in metal — a steerable amplified reflector wins "
              "on both counts.\n");
  return 0;
}
