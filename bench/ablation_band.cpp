// Ablation: deployment band — the prototype's 24 GHz ISM carrier vs the
// 60 GHz 802.11ad band a product would ship on.
//
// Physics that moves: free-space loss grows 8 dB (20 log10(60/24)), oxygen
// absorption appears (negligible at room scale), and — for the same
// physical aperture — a 60 GHz array packs more elements. The bench shows
// both views: same element count (pessimistic) and same aperture size
// (realistic), and verifies the blockage story is band-independent.
#include <cstdio>
#include <vector>

#include <rf/band.hpp>
#include <rf/propagation.hpp>
#include <sim/rng.hpp>

#include "bench_util.hpp"

namespace {

using namespace movr;
using geom::deg_to_rad;

struct BandRun {
  const char* label;
  rf::Band band;
  int elements;
};

}  // namespace

int main() {
  sim::RngRegistry rngs{19};

  bench::print_header("Ablation — 24 GHz prototype band vs 60 GHz 802.11ad");
  std::printf("FSPL delta at 4 m: %.1f dB; oxygen absorption at 60 GHz over "
              "6 m: %.3f dB\n\n",
              rf::free_space_path_loss(4.0, rf::k60GhzWigig.carrier_hz).value() -
                  rf::free_space_path_loss(4.0,
                                           rf::k24GhzPrototype.carrier_hz)
                      .value(),
              rf::atmospheric_absorption(6.0, 60.0e9).value());

  const std::vector<BandRun> runs = {
      {"24 GHz, 10-el arrays", rf::k24GhzPrototype, 10},
      {"60 GHz, 10-el arrays", rf::k60GhzWigig, 10},
      {"60 GHz, 25-el arrays (same aperture)", rf::k60GhzWigig, 25},
  };

  std::printf("%-38s %10s %12s %12s %12s\n", "configuration", "LOS SNR",
              "hand block", "via MoVR", "beamwidth");
  for (const BandRun& run : runs) {
    std::vector<double> los_v;
    std::vector<double> hand_v;
    std::vector<double> movr_v;
    double beamwidth_deg = 0.0;
    for (int trial = 0; trial < 12; ++trial) {
      auto rng = rngs.stream(run.label, static_cast<std::uint64_t>(trial));

      core::Scene::Config scene_config;
      scene_config.link.carrier_hz = run.band.carrier_hz;
      scene_config.link.bandwidth_hz = run.band.bandwidth_hz;
      rf::PhasedArray::Config array;
      array.elements = run.elements;
      core::ApRadio::Config ap_config;
      ap_config.array = array;
      core::HeadsetRadio::Config hs_config;
      hs_config.array = array;
      hw::ReflectorFrontEnd::Config fe_config;
      fe_config.array = array;
      fe_config.leakage.array = array;

      core::Scene scene{channel::Room{5.0, 5.0},
                        core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0), ap_config},
                        core::HeadsetRadio{{0.0, 0.0}, 0.0, hs_config},
                        scene_config};
      auto& reflector =
          scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0), fe_config);
      beamwidth_deg = geom::rad_to_deg(
          scene.ap().node().array().beamwidth_3db());

      geom::Vec2 pos;
      double local;
      do {
        pos = scene.room().random_interior_point(rng, 0.9);
        scene.headset().node().set_position(pos);
        local = scene.true_reflector_angle_to_headset(reflector);
      } while (local < deg_to_rad(40.0) || local > deg_to_rad(140.0) ||
               geom::distance(pos, reflector.position()) < 1.2 ||
               geom::distance(pos, scene.ap().node().position()) < 1.2);

      bench::steer_direct(scene);
      los_v.push_back(scene.direct_snr().value());

      scene.room().add_obstacle(channel::make_hand(
          pos, scene.ap().node().position() - pos));
      hand_v.push_back(scene.direct_snr().value());

      bench::calibrate_reflector(scene, reflector, rng);
      scene.headset().node().face_toward(reflector.position());
      reflector.front_end().steer_tx(local);
      movr_v.push_back(scene.via_snr(reflector).snr.value());
    }
    std::printf("%-38s %7.1f dB %9.1f dB %9.1f dB %9.1f deg\n", run.label,
                bench::stats_of(los_v).mean, bench::stats_of(hand_v).mean,
                bench::stats_of(movr_v).mean, beamwidth_deg);
  }

  std::printf("\nreading: at 60 GHz with the same element count the whole "
              "budget slides ~8 dB down,\nbut the same physical aperture "
              "buys it back with narrower beams; blockage deltas and\nthe "
              "reflector's rescue are unchanged — the paper's design "
              "carries to the product band.\n");
  return 0;
}
