// Reproduces Fig. 8: beam-alignment accuracy of the backscatter angle
// search (Section 5.1).
//
// Protocol: AP fixed next to the PC; the reflector is placed at a random
// location and orientation; the full Section 4.1 protocol runs over the
// simulated Bluetooth channel; the estimated incidence angle is compared
// with ground truth computed from the geometry. 100 runs, as the paper.
// A second table reproduces the Section 5.1 argument that a <=2 degree
// error costs negligible SNR given the ~10 degree beams.
#include <cstdio>
#include <vector>

#include <core/angle_search.hpp>
#include <sim/rng.hpp>

#include "bench_util.hpp"

int main() {
  using namespace movr;
  using geom::deg_to_rad;
  using geom::rad_to_deg;

  const int kRuns = 100;
  const sim::RngRegistry rngs{2016};

  std::vector<double> errors_deg;
  std::vector<double> ap_errors_deg;
  std::vector<double> durations_ms;
  int within_two_degrees = 0;

  bench::print_header(
      "Fig. 8 — Beam alignment accuracy (backscatter angle search, "
      "100 runs)");
  std::printf("%-6s %-22s %10s %10s %8s\n", "run", "reflector pose",
              "actual", "estimated", "error");

  for (int run = 0; run < kRuns; ++run) {
    auto place_rng = rngs.stream("fig8-place", static_cast<std::uint64_t>(run));
    auto scene = bench::paper_scene({2.6, 1.4}, /*with_furniture=*/false);

    // Random wall-mounted pose: pick a far wall segment and an orientation
    // scatter. Installations keep the AP comfortably inside the steerable
    // sector (no installer mounts a reflector looking away from the AP),
    // so poses whose true incidence angle falls near the 40/140-degree
    // sector edge are resampled.
    std::uniform_real_distribution<double> along{1.2, 4.4};
    std::uniform_real_distribution<double> tilt{-0.35, 0.35};
    std::uniform_int_distribution<int> which_wall{0, 1};
    geom::Vec2 pos;
    double orientation;
    double true_local;
    do {
      if (which_wall(place_rng) == 0) {
        pos = {along(place_rng), 4.8};                      // north wall
        orientation = deg_to_rad(270.0) + tilt(place_rng);  // facing south
      } else {
        pos = {4.8, along(place_rng)};                      // east wall
        orientation = deg_to_rad(180.0) + tilt(place_rng);  // facing west
      }
      const geom::Vec2 ap{0.4, 0.4};
      true_local = geom::wrap_two_pi((ap - pos).heading() - orientation +
                                     geom::kPi / 2.0);
    } while (true_local < deg_to_rad(48.0) || true_local > deg_to_rad(132.0));
    auto& reflector = scene.add_reflector(pos, orientation);

    sim::Simulator simulator;
    sim::ControlChannel control{
        simulator, {}, rngs.stream("fig8-bt", static_cast<std::uint64_t>(run))};
    control.attach(reflector.control_name(),
                   [&](const sim::ControlMessage& m) { reflector.handle(m); });

    core::IncidenceResult result;
    core::IncidenceSearch search{
        simulator, control, scene, reflector, core::make_search_config(1.0),
        rngs.stream("fig8-meas", static_cast<std::uint64_t>(run))};
    search.start([&](const core::IncidenceResult& r) { result = r; });
    simulator.run();

    const double truth = scene.true_reflector_angle_to_ap(reflector);
    const double error =
        rad_to_deg(geom::angular_distance(result.reflector_angle, truth));
    const double ap_truth = scene.true_ap_angle_to_reflector(reflector);
    const double ap_error =
        rad_to_deg(geom::angular_distance(result.ap_angle, ap_truth));
    errors_deg.push_back(error);
    ap_errors_deg.push_back(ap_error);
    durations_ms.push_back(sim::to_milliseconds(result.duration));
    within_two_degrees += error <= 2.0;

    if (run % 10 == 0) {
      std::printf("%-6d (%.2f, %.2f) @ %5.1f deg %9.1f %10.1f %7.2f\n", run,
                  pos.x, pos.y, rad_to_deg(orientation), rad_to_deg(truth),
                  rad_to_deg(result.reflector_angle), error);
    }
  }

  const auto err = bench::stats_of(errors_deg);
  const auto ap_err = bench::stats_of(ap_errors_deg);
  const auto dur = bench::stats_of(durations_ms);
  std::printf("\nincidence-angle error: mean %.2f deg, median %.2f, max %.2f"
              " | within 2 deg: %d/%d\n",
              err.mean, err.median, err.max, within_two_degrees, kRuns);
  std::printf("AP-angle error:        mean %.2f deg, max %.2f\n", ap_err.mean,
              ap_err.max);
  std::printf("search duration:       mean %.0f ms (full 101x101 sweep over "
              "Bluetooth)\n",
              dur.mean);
  std::printf("paper: estimates within 2 degrees of ground truth\n");

  // Section 5.1 second claim: a 2 degree error is negligible for a ~10
  // degree beam. Sweep deliberate misalignment on a calibrated link.
  bench::print_header(
      "Sec. 5.1 — SNR cost of alignment error (beamwidth ~10 deg)");
  auto scene = bench::paper_scene({2.6, 1.4}, false);
  auto& reflector = scene.add_reflector({3.2, 4.8}, deg_to_rad(262.0));
  auto rng = rngs.stream("fig8-snrloss");
  bench::calibrate_reflector(scene, reflector, rng);
  scene.headset().node().face_toward(reflector.position());
  const double aligned = scene.via_snr(reflector).snr.value();
  std::printf("%-18s %10s %10s\n", "misalignment", "via SNR", "loss");
  for (const double off : {0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0}) {
    reflector.front_end().steer_rx(
        scene.true_reflector_angle_to_ap(reflector) + deg_to_rad(off));
    const double snr = scene.via_snr(reflector).snr.value();
    std::printf("%10.0f deg     %7.1f dB %7.1f dB%s\n", off, snr,
                aligned - snr, off <= 2.0 ? "   <- negligible" : "");
  }
  return 0;
}
