// log_verify — standalone offline checker for session event logs.
//
//   log_verify [--key K] <log>...      verify chain + invariants per file
//   log_verify [--key K] --diff A B    diff two logs' event streams
//   log_verify [--key K] --tamper F    tripwire self-test: corrupt F three
//                                      ways in memory (flip a byte, drop a
//                                      record, swap adjacent records) and
//                                      require every corruption be caught
//
// Exit status is 0 only when every requested check passed; any violation
// prints the first bad record's seq and timestamp and exits 1. The tool
// links only movr_log — no simulator, no RNG: everything it knows comes
// from the log bytes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <log/reader.hpp>
#include <log/verify.hpp>

namespace {

using movr::log::ParsedLog;
using movr::log::VerifyReport;

bool read_file(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  out.clear();
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    out.append(chunk, got);
  }
  std::fclose(file);
  return true;
}

void print_issues(const char* label, const std::vector<movr::log::Issue>& issues) {
  for (const movr::log::Issue& issue : issues) {
    std::printf("  %s: record seq=%lld t=%lldus: %s\n", label,
                static_cast<long long>(issue.seq),
                static_cast<long long>(issue.t_us), issue.what.c_str());
  }
}

/// Verifies one already-parsed log; prints a one-line summary plus every
/// issue. Returns true when the log is clean.
bool report_one(const std::string& name, const ParsedLog& log,
                std::string_view key) {
  if (!log.ok()) {
    std::printf("%s: FAIL (parse: %s)\n", name.c_str(), log.error.c_str());
    return false;
  }
  const VerifyReport report = movr::log::verify_log(log, key);
  if (report.ok()) {
    std::printf(
        "%s: OK (%zu records, %llu control / %llu reflector / %llu transport "
        "snapshots, %llu searches%s)\n",
        name.c_str(), report.records,
        static_cast<unsigned long long>(report.control_snapshots),
        static_cast<unsigned long long>(report.reflector_snapshots),
        static_cast<unsigned long long>(report.transport_snapshots),
        static_cast<unsigned long long>(report.searches),
        report.has_params ? "" : "; no params record — chain/ledger checks only");
    return true;
  }
  std::printf("%s: FAIL\n", name.c_str());
  print_issues("chain", report.chain_issues);
  print_issues("invariant", report.invariant_issues);
  return false;
}

/// First problem of a tampered parse/verify, or empty when (wrongly) clean.
std::string first_problem(const ParsedLog& log, std::string_view key) {
  if (!log.ok()) {
    return "parse: " + log.error;
  }
  const VerifyReport report = movr::log::verify_log(log, key);
  const std::vector<movr::log::Issue>* issues = nullptr;
  if (!report.chain_issues.empty()) {
    issues = &report.chain_issues;
  } else if (!report.invariant_issues.empty()) {
    issues = &report.invariant_issues;
  }
  if (issues == nullptr) {
    return {};
  }
  const movr::log::Issue& issue = issues->front();
  return "seq=" + std::to_string(issue.seq) + ": " + issue.what;
}

struct Tamper {
  const char* name;
  std::string text;
};

/// Builds the three in-memory corruptions of `text`. Lines are NL-split;
/// the victims sit mid-file so the tamper lands between valid neighbours.
std::vector<Tamper> make_tampers(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  std::vector<Tamper> tampers;
  if (lines.size() < 4) {
    return tampers;
  }
  const std::size_t mid = lines.size() / 2;

  // 1. Flip one payload byte mid-record (before the hash suffix, so the
  //    stored hash no longer matches the canonical text).
  {
    std::vector<std::string> copy = lines;
    std::string& victim = copy[mid];
    const std::size_t hash_at = victim.rfind(" h=");
    const std::size_t pos = hash_at == std::string::npos || hash_at < 2
                                ? victim.size() / 2
                                : hash_at - 1;
    victim[pos] = victim[pos] == '0' ? '1' : '0';
    std::string joined;
    for (const std::string& line : copy) {
      joined += line;
      joined += '\n';
    }
    tampers.push_back({"flip-byte", std::move(joined)});
  }
  // 2. Drop a middle record (the seq chain skips a number).
  {
    std::string joined;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == mid) {
        continue;
      }
      joined += lines[i];
      joined += '\n';
    }
    tampers.push_back({"drop-record", std::move(joined)});
  }
  // 3. Swap two adjacent records (seq runs backwards at the swap).
  {
    std::vector<std::string> copy = lines;
    std::swap(copy[mid], copy[mid + 1]);
    std::string joined;
    for (const std::string& line : copy) {
      joined += line;
      joined += '\n';
    }
    tampers.push_back({"swap-records", std::move(joined)});
  }
  return tampers;
}

int run_tamper(const std::string& path, std::string_view key) {
  std::string text;
  if (!read_file(path, text)) {
    std::printf("%s: cannot read\n", path.c_str());
    return 1;
  }
  // The pristine log must verify before corrupting it means anything.
  if (!report_one(path + " (pristine)", movr::log::parse_log(text), key)) {
    return 1;
  }
  const std::vector<Tamper> tampers = make_tampers(text);
  if (tampers.empty()) {
    std::printf("%s: too short to tamper (< 4 records)\n", path.c_str());
    return 1;
  }
  int failures = 0;
  for (const Tamper& tamper : tampers) {
    const std::string problem =
        first_problem(movr::log::parse_log(tamper.text), key);
    if (problem.empty()) {
      std::printf("  tamper %s: NOT CAUGHT — verifier accepted a corrupted "
                  "log\n",
                  tamper.name);
      ++failures;
    } else {
      std::printf("  tamper %s: caught (%s)\n", tamper.name, problem.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const ParsedLog a = movr::log::parse_log_file(path_a);
  const ParsedLog b = movr::log::parse_log_file(path_b);
  if (!a.ok()) {
    std::printf("%s: parse: %s\n", path_a.c_str(), a.error.c_str());
    return 1;
  }
  if (!b.ok()) {
    std::printf("%s: parse: %s\n", path_b.c_str(), b.error.c_str());
    return 1;
  }
  const std::vector<std::string> diffs = movr::log::diff_logs(a, b);
  if (diffs.empty()) {
    std::printf("event streams identical (%zu vs %zu records)\n",
                a.records.size(), b.records.size());
    return 0;
  }
  for (const std::string& diff : diffs) {
    std::printf("  %s\n", diff.c_str());
  }
  return 1;
}

void usage() {
  std::printf(
      "usage: log_verify [--key K] <log>...\n"
      "       log_verify [--key K] --diff <log-a> <log-b>\n"
      "       log_verify [--key K] --tamper <log>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string key;
  std::vector<std::string> files;
  bool diff = false;
  bool tamper = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--key" && i + 1 < argc) {
      key = argv[++i];
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--tamper") {
      tamper = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::printf("unknown option: %s\n", argv[i]);
      usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }
  if (tamper) {
    if (files.size() != 1) {
      usage();
      return 2;
    }
    return run_tamper(files[0], key);
  }
  if (diff) {
    if (files.size() != 2) {
      usage();
      return 2;
    }
    return run_diff(files[0], files[1]);
  }
  if (files.empty()) {
    usage();
    return 2;
  }
  int failures = 0;
  for (const std::string& file : files) {
    if (!report_one(file, movr::log::parse_log_file(file), key)) {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
