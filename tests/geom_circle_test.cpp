#include <geom/circle.hpp>

#include <cmath>

#include <gtest/gtest.h>

namespace movr::geom {
namespace {

TEST(Circle, Contains) {
  const Circle c{{1.0, 1.0}, 0.5};
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_TRUE(c.contains({1.5, 1.0}));  // boundary
  EXPECT_FALSE(c.contains({1.6, 1.0}));
}

TEST(Circle, ChordThroughCenterIsDiameter) {
  const Circle c{{0.0, 0.0}, 1.0};
  const Segment s{{-5.0, 0.0}, {5.0, 0.0}};
  EXPECT_NEAR(chord_length(c, s), 2.0, 1e-12);
}

TEST(Circle, ChordOffCenter) {
  const Circle c{{0.0, 0.0}, 1.0};
  // Line y = 0.6 cuts a chord of length 2*sqrt(1 - 0.36) = 1.6.
  const Segment s{{-5.0, 0.6}, {5.0, 0.6}};
  EXPECT_NEAR(chord_length(c, s), 1.6, 1e-12);
}

TEST(Circle, MissingSegmentHasZeroChord) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_EQ(chord_length(c, {{-5.0, 2.0}, {5.0, 2.0}}), 0.0);
  EXPECT_FALSE(intersects(c, {{-5.0, 2.0}, {5.0, 2.0}}));
}

TEST(Circle, TangentSegmentHasZeroChord) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_NEAR(chord_length(c, {{-5.0, 1.0}, {5.0, 1.0}}), 0.0, 1e-6);
}

TEST(Circle, EndpointInsideClipsChord) {
  const Circle c{{0.0, 0.0}, 1.0};
  // Starts at the center, exits at (1, 0): half a diameter.
  const Segment s{{0.0, 0.0}, {5.0, 0.0}};
  EXPECT_NEAR(chord_length(c, s), 1.0, 1e-12);
}

TEST(Circle, SegmentEntirelyInside) {
  const Circle c{{0.0, 0.0}, 2.0};
  const Segment s{{-0.5, 0.0}, {0.5, 0.0}};
  EXPECT_NEAR(chord_length(c, s), 1.0, 1e-12);
  EXPECT_TRUE(intersects(c, s));
}

TEST(Circle, SegmentShorterThanReachDoesNotTouch) {
  const Circle c{{10.0, 0.0}, 1.0};
  const Segment s{{0.0, 0.0}, {5.0, 0.0}};  // stops short of the circle
  EXPECT_EQ(chord_length(c, s), 0.0);
  EXPECT_FALSE(intersects(c, s));
}

TEST(Circle, IntersectsWhenEndpointInside) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(intersects(c, {{0.2, 0.2}, {0.3, 0.3}}));
}

TEST(Circle, Clearance) {
  const Circle c{{0.0, 3.0}, 1.0};
  const Segment s{{-5.0, 0.0}, {5.0, 0.0}};
  EXPECT_NEAR(clearance(c, s), 3.0, 1e-12);
}

TEST(Circle, DegenerateSegmentChordIsZero) {
  const Circle c{{0.0, 0.0}, 1.0};
  const Segment point{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_EQ(chord_length(c, point), 0.0);
}

// Property: chord length never exceeds the diameter or the segment length.
class ChordProperty : public ::testing::TestWithParam<double> {};

TEST_P(ChordProperty, Bounds) {
  const double offset = GetParam();
  const Circle c{{0.0, offset}, 0.7};
  const Segment s{{-3.0, 0.0}, {3.0, 0.0}};
  const double chord = chord_length(c, s);
  EXPECT_GE(chord, 0.0);
  EXPECT_LE(chord, 2.0 * c.radius + 1e-12);
  EXPECT_LE(chord, s.length() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, ChordProperty,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.69, 0.7,
                                           0.71, 1.0, 5.0));

}  // namespace
}  // namespace movr::geom
