#include <sim/burst_channel.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace movr::sim {
namespace {

TEST(BurstChannel, StartsGoodWithGoodStateLoss) {
  BurstChannel channel;
  EXPECT_FALSE(channel.bad());
  EXPECT_DOUBLE_EQ(channel.loss(), channel.config().loss_good);
}

TEST(BurstChannel, ForceBadSwitchesLossAndCounts) {
  BurstChannel channel;
  channel.force_bad();
  EXPECT_TRUE(channel.bad());
  EXPECT_DOUBLE_EQ(channel.loss(), channel.config().loss_bad);
  EXPECT_EQ(channel.counters().forced_bad, 1u);
  EXPECT_EQ(channel.counters().bursts, 1u);
  // Idempotent while already bad.
  channel.force_bad();
  EXPECT_EQ(channel.counters().forced_bad, 1u);
  EXPECT_EQ(channel.counters().bursts, 1u);
}

TEST(BurstChannel, SameSeedSameTrajectory) {
  BurstChannel::Config config;
  config.seed = 42;
  BurstChannel a{config};
  BurstChannel b{config};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.step(), b.step());
  }
  EXPECT_EQ(a.counters().steps_bad, b.counters().steps_bad);
  EXPECT_EQ(a.counters().bursts, b.counters().bursts);
}

TEST(BurstChannel, OccupancyTracksStationaryDistribution) {
  // Stationary P(bad) = p_gb / (p_gb + p_bg); check the empirical
  // occupancy over a long run lands in a generous window around it.
  BurstChannel::Config config;
  config.p_good_bad = 0.02;
  config.p_bad_good = 0.2;
  config.seed = 7;
  BurstChannel channel{config};
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    channel.step();
  }
  const double expected =
      config.p_good_bad / (config.p_good_bad + config.p_bad_good);
  const double occupancy =
      static_cast<double>(channel.counters().steps_bad) / steps;
  EXPECT_NEAR(occupancy, expected, 0.25 * expected);
}

TEST(BurstChannel, MeanBurstLengthMatchesGeometry) {
  BurstChannel::Config config;
  config.p_good_bad = 0.05;
  config.p_bad_good = 0.25;
  config.seed = 11;
  BurstChannel channel{config};
  EXPECT_DOUBLE_EQ(channel.mean_burst_steps(), 4.0);
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    channel.step();
  }
  const auto& c = channel.counters();
  ASSERT_GT(c.bursts, 0u);
  const double mean_burst =
      static_cast<double>(c.steps_bad) / static_cast<double>(c.bursts);
  EXPECT_NEAR(mean_burst, channel.mean_burst_steps(),
              0.2 * channel.mean_burst_steps());
  EXPECT_GE(c.longest_burst_steps, static_cast<std::uint64_t>(mean_burst));
}

TEST(BurstChannel, LossIsBadForWholeForcedWindow) {
  // The session's usage pattern: step() then force_bad() while stressed —
  // the loss read afterwards must be the bad-state loss on every stressed
  // tick regardless of what the chain rolled.
  BurstChannel::Config config;
  config.p_bad_good = 0.9;  // chain strongly wants to leave bad
  config.seed = 3;
  BurstChannel channel{config};
  for (int i = 0; i < 50; ++i) {
    channel.step();
    channel.force_bad();
    EXPECT_DOUBLE_EQ(channel.loss(), config.loss_bad);
  }
}

}  // namespace
}  // namespace movr::sim
