#include <channel/obstacle.hpp>

#include <gtest/gtest.h>

#include <channel/material.hpp>

namespace movr::channel {
namespace {

TEST(Obstacle, FullInsertionLossWhenCrossed) {
  const Obstacle hand{geom::Circle{{1.0, 0.0}, 0.05}, kHand, "hand"};
  const geom::Segment through{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(hand.attenuation(through).value(),
                   kHand.insertion_loss.value());
}

TEST(Obstacle, ZeroLossWhenFarAway) {
  const Obstacle hand{geom::Circle{{1.0, 5.0}, 0.05}, kHand, "hand"};
  const geom::Segment leg{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(hand.attenuation(leg).value(), 0.0);
}

TEST(Obstacle, GrazingLossBetweenZeroAndSix) {
  // Leg passes 1 cm from the blocker edge, inside the 3 cm Fresnel margin.
  const Obstacle hand{geom::Circle{{1.0, 0.06}, 0.05}, kHand, "hand"};
  const geom::Segment leg{{0.0, 0.0}, {2.0, 0.0}};
  const double loss = hand.attenuation(leg).value();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 6.0);
}

TEST(Obstacle, GrazingLossDecaysWithClearance) {
  const geom::Segment leg{{0.0, 0.0}, {2.0, 0.0}};
  const Obstacle close{geom::Circle{{1.0, 0.055}, 0.05}, kHand, "h"};
  const Obstacle far{geom::Circle{{1.0, 0.075}, 0.05}, kHand, "h"};
  EXPECT_GT(close.attenuation(leg).value(), far.attenuation(leg).value());
}

TEST(Obstacle, MaterialsOrderedByLoss) {
  // Calibration sanity: hand < head < body < furniture (paper Fig. 3).
  EXPECT_LT(kHand.insertion_loss.value(), kHead.insertion_loss.value());
  EXPECT_LT(kHead.insertion_loss.value(), kBody.insertion_loss.value());
  EXPECT_LT(kBody.insertion_loss.value(), kFurniture.insertion_loss.value());
}

TEST(Obstacle, TotalObstructionSums) {
  std::vector<Obstacle> obstacles{
      {geom::Circle{{0.5, 0.0}, 0.05}, kHand, "hand"},
      {geom::Circle{{1.5, 0.0}, 0.09}, kHead, "head"},
  };
  const geom::Segment leg{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(total_obstruction(obstacles, leg).value(),
                   kHand.insertion_loss.value() + kHead.insertion_loss.value());
}

TEST(Obstacle, MakeHandSitsInFrontOfHeadset) {
  const geom::Vec2 headset{2.0, 2.0};
  const geom::Vec2 ap{0.0, 2.0};
  const Obstacle hand = make_hand(headset, ap - headset);
  // 25 cm toward the AP.
  EXPECT_NEAR(hand.shape.center.x, 1.75, 1e-9);
  EXPECT_NEAR(hand.shape.center.y, 2.0, 1e-9);
  // It blocks the headset->AP leg...
  EXPECT_GT(hand.attenuation({headset, ap}).value(), 10.0);
  // ...but not a leg in the opposite direction.
  EXPECT_DOUBLE_EQ(hand.attenuation({headset, {4.0, 2.0}}).value(), 0.0);
}

TEST(Obstacle, MakeHeadLargerThanHand) {
  const geom::Vec2 headset{2.0, 2.0};
  const geom::Vec2 toward{-1.0, 0.0};
  EXPECT_GT(make_head(headset, toward).shape.radius,
            make_hand(headset, toward).shape.radius);
}

TEST(Obstacle, MakePersonAtPosition) {
  const Obstacle person = make_person({3.0, 1.0});
  EXPECT_EQ(person.label, "person");
  EXPECT_EQ(person.shape.center, geom::Vec2(3.0, 1.0));
  EXPECT_NEAR(person.shape.radius, 0.20, 1e-12);
}

}  // namespace
}  // namespace movr::channel
