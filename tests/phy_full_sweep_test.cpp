#include <gtest/gtest.h>

#include <channel/ray_tracer.hpp>
#include <channel/room.hpp>
#include <geom/angle.hpp>
#include <phy/beam_sweep.hpp>

namespace movr::phy {
namespace {

using geom::Vec2;
using geom::deg_to_rad;

TEST(FullSweep, FindsLosBehindTheMount) {
  // The receiver's single face points AWAY from the transmitter: the
  // sector sweep is blind, the full-azimuth sweep re-faces and finds LOS.
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  RadioNode tx{{1.0, 2.5}, 0.0};
  RadioNode rx{{4.0, 2.5}, 0.0};  // boresight +x: the AP is behind it
  const auto paths = tracer.trace(tx.position(), rx.position());
  const LinkConfig config;
  const auto result = sweep_all_directions(tx, rx, paths, config,
                                           /*nlos_only=*/false);
  EXPECT_GT(result.snr.value(), 20.0);
  // The winning mount points the rx array back toward the tx.
  EXPECT_NEAR(geom::angular_distance(rx.steering_global(), geom::kPi), 0.0,
              deg_to_rad(4.0));
}

TEST(FullSweep, NlosOnlyExcludesLos) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  RadioNode tx{{0.5, 2.5}, 0.0};
  RadioNode rx{{4.5, 2.5}, geom::kPi};
  const auto paths = tracer.trace(tx.position(), rx.position());
  const LinkConfig config;
  RadioNode tx2 = tx;
  RadioNode rx2 = rx;
  const auto all = sweep_all_directions(tx, rx, paths, config, false);
  const auto nlos = sweep_all_directions(tx2, rx2, paths, config, true);
  EXPECT_GT(all.snr.value() - nlos.snr.value(), 8.0);
}

TEST(FullSweep, CorneredApReachesAdjacentWalls) {
  // The regression behind this API: an AP mounted in a corner cannot
  // launch toward its own adjacent walls within one sector; the full sweep
  // must still find a usable wall bounce when the LOS is blocked.
  channel::Room room{5.0, 5.0};
  const Vec2 ap{0.4, 0.4};
  const Vec2 hs{1.37, 1.75};
  room.add_obstacle(channel::make_person(hs + (ap - hs).normalized() * 1.0));
  const channel::RayTracer tracer{room};
  RadioNode tx{ap, deg_to_rad(45.0)};
  RadioNode rx{hs, (ap - hs).heading()};
  const auto paths = tracer.trace(ap, hs);
  const auto result =
      sweep_all_directions(tx, rx, paths, LinkConfig{}, /*nlos_only=*/true);
  // The best wall bounce is ~13 dB below clear LOS (~29 dB): mid-teens.
  EXPECT_GT(result.snr.value(), 10.0);
}

TEST(FullSweep, LeavesRadiosOnWinner) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  RadioNode tx{{1.0, 2.5}, 0.0};
  RadioNode rx{{4.0, 2.5}, 0.0};
  const auto paths = tracer.trace(tx.position(), rx.position());
  const LinkConfig config;
  const auto result = sweep_all_directions(tx, rx, paths, config, false);
  EXPECT_EQ(tx.orientation(), result.tx_orientation);
  EXPECT_EQ(rx.orientation(), result.rx_orientation);
  EXPECT_EQ(tx.array().steering(), result.tx_local_angle);
  EXPECT_EQ(rx.array().steering(), result.rx_local_angle);
  // And the reported SNR is reproducible from that state.
  EXPECT_NEAR(link_snr(tx, rx, paths, config).value(), result.snr.value(),
              1e-9);
}

TEST(FullSweep, CoarseToFineCountsWork) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  RadioNode tx{{1.0, 2.5}, 0.0};
  RadioNode rx{{4.0, 2.5}, geom::kPi};
  const auto paths = tracer.trace(tx.position(), rx.position());
  const auto result = sweep_all_directions(tx, rx, paths, LinkConfig{},
                                           false, 10.0, 2.0, 2);
  // Coarse: 2 faces x 2 faces x 17 x 17; fine: 11 x 11 around the winner.
  EXPECT_EQ(result.combinations_tried, 4 * 17 * 17 + 11 * 11);
}

TEST(FullSweep, FineStepImprovesOrMatchesCoarse) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  RadioNode tx{{1.2, 1.3}, 0.7};
  RadioNode rx{{3.9, 3.6}, 2.0};
  const auto paths = tracer.trace(tx.position(), rx.position());
  RadioNode tx2 = tx;
  RadioNode rx2 = rx;
  const auto coarse_only = sweep_all_directions(tx, rx, paths, LinkConfig{},
                                                false, 6.0, 6.0);
  const auto refined = sweep_all_directions(tx2, rx2, paths, LinkConfig{},
                                            false, 6.0, 1.0);
  EXPECT_GE(refined.snr.value(), coarse_only.snr.value() - 1e-9);
}

}  // namespace
}  // namespace movr::phy
