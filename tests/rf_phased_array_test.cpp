#include <rf/phased_array.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <rf/phase_shifter.hpp>

namespace movr::rf {
namespace {

using movr::geom::deg_to_rad;
using movr::geom::kPi;

TEST(PhaseShifter, AnalogPassesThrough) {
  const PhaseShifter analog{0};
  EXPECT_NEAR(analog.realize(1.234), 1.234, 1e-12);
}

TEST(PhaseShifter, WrapsInput) {
  const PhaseShifter analog{0};
  EXPECT_NEAR(analog.realize(-0.5), movr::geom::kTwoPi - 0.5, 1e-12);
}

TEST(PhaseShifter, QuantizesToLevels) {
  const PhaseShifter two_bit{2};  // steps of pi/2
  EXPECT_NEAR(two_bit.realize(0.1), 0.0, 1e-12);
  EXPECT_NEAR(two_bit.realize(0.8), kPi / 2.0, 1e-12);
}

TEST(PhaseShifter, QuantizationErrorBounded) {
  const PhaseShifter four_bit{4};
  const double step = movr::geom::kTwoPi / 16.0;
  for (double p = 0.0; p < movr::geom::kTwoPi; p += 0.01) {
    const double realized = four_bit.realize(p);
    EXPECT_LE(movr::geom::angular_distance(realized, p), step / 2.0 + 1e-9);
  }
}

TEST(PhasedArray, RejectsBadConfig) {
  PhasedArray::Config zero_elements;
  zero_elements.elements = 0;
  EXPECT_THROW(PhasedArray{zero_elements}, std::invalid_argument);
  PhasedArray::Config bad_spacing;
  bad_spacing.spacing_wavelengths = 0.0;
  EXPECT_THROW(PhasedArray{bad_spacing}, std::invalid_argument);
}

TEST(PhasedArray, PeakGainFormula) {
  PhasedArray array;  // 10 elements, 5.5 dBi each
  EXPECT_NEAR(array.peak_gain().value(), 15.5, 1e-9);
}

TEST(PhasedArray, BeamwidthNearTenDegrees) {
  PhasedArray array;
  EXPECT_NEAR(movr::geom::rad_to_deg(array.beamwidth_3db()), 10.15, 0.2);
}

TEST(PhasedArray, GainAtBoresightEqualsPeak) {
  PhasedArray array;
  array.steer(kPi / 2.0);
  EXPECT_NEAR(array.gain(kPi / 2.0).value(), array.peak_gain().value(), 0.01);
}

// Property: wherever the beam is steered (within the sector), the realised
// gain toward the steering angle is within a fraction of a dB of peak, and
// it is the maximum over all directions.
class SteeringProperty : public ::testing::TestWithParam<double> {};

TEST_P(SteeringProperty, PeakAtSteeringAngle) {
  PhasedArray array;
  const double steer = deg_to_rad(GetParam());
  array.steer(steer);
  const double at_steer = array.gain(steer).value();
  // Element pattern reduces off-boresight peak slightly; allow that.
  EXPECT_GT(at_steer, array.peak_gain().value() - 3.0);
  for (double a = deg_to_rad(5.0); a < deg_to_rad(175.0);
       a += deg_to_rad(1.0)) {
    EXPECT_LE(array.gain(a).value(), at_steer + 0.2)
        << "direction " << movr::geom::rad_to_deg(a);
  }
}

TEST_P(SteeringProperty, HalfPowerAtHalfBeamwidth) {
  PhasedArray array;
  const double steer = deg_to_rad(GetParam());
  array.steer(steer);
  const double bw = array.beamwidth_3db();
  // Beam broadens away from broadside by ~1/sin(steer).
  const double broadening = 1.0 / std::max(std::sin(steer), 0.3);
  const double at_peak = array.gain(steer).value();
  const double at_edge = array.gain(steer + bw / 2.0 * broadening).value();
  EXPECT_NEAR(at_peak - at_edge, 3.0, 1.7);
}

INSTANTIATE_TEST_SUITE_P(Sector, SteeringProperty,
                         ::testing::Values(50.0, 65.0, 80.0, 90.0, 105.0,
                                           120.0, 140.0));

TEST(PhasedArray, BackLobeSuppressed) {
  PhasedArray array;
  array.steer(kPi / 2.0);
  // Directly behind the ground plane.
  const double behind = array.gain(-kPi / 2.0).value();
  EXPECT_LT(behind, array.peak_gain().value() - 20.0);
}

TEST(PhasedArray, SidelobesBelowMainLobe) {
  PhasedArray array;
  array.steer(kPi / 2.0);
  const double peak = array.gain(kPi / 2.0).value();
  // Outside two beamwidths, everything is at least 10 dB down.
  const double bw = array.beamwidth_3db();
  for (double a = deg_to_rad(10.0); a < deg_to_rad(170.0);
       a += deg_to_rad(0.5)) {
    if (std::abs(a - kPi / 2.0) > 2.0 * bw) {
      EXPECT_LT(array.gain(a).value(), peak - 10.0)
          << movr::geom::rad_to_deg(a);
    }
  }
}

TEST(PhasedArray, FieldNormalisedAtSteering) {
  PhasedArray array;
  array.steer(deg_to_rad(70.0));
  EXPECT_NEAR(std::abs(array.field(deg_to_rad(70.0))), 1.0, 1e-6);
}

TEST(PhasedArray, QuantisedShiftersLoseLittleGain) {
  PhasedArray::Config analog_cfg;
  PhasedArray::Config quant_cfg;
  quant_cfg.phase_bits = 4;
  PhasedArray analog{analog_cfg};
  PhasedArray quant{quant_cfg};
  const double steer = deg_to_rad(63.0);
  analog.steer(steer);
  quant.steer(steer);
  const double loss = analog.gain(steer).value() - quant.gain(steer).value();
  EXPECT_GE(loss, -0.1);
  EXPECT_LT(loss, 1.0);  // 4-bit shifters cost well under 1 dB
}

TEST(PhasedArray, CoarseQuantisationCostsMore) {
  PhasedArray::Config coarse_cfg;
  coarse_cfg.phase_bits = 1;
  PhasedArray coarse{coarse_cfg};
  PhasedArray analog;
  // Average loss over several steering angles: 1-bit shifters hurt.
  double total_loss = 0.0;
  int n = 0;
  for (double deg = 45.0; deg <= 135.0; deg += 10.0) {
    const double steer = deg_to_rad(deg);
    coarse.steer(steer);
    analog.steer(steer);
    total_loss += analog.gain(steer).value() - coarse.gain(steer).value();
    ++n;
  }
  EXPECT_GT(total_loss / n, 1.0);
}

TEST(PhasedArray, MoreElementsNarrowerBeam) {
  PhasedArray::Config big_cfg;
  big_cfg.elements = 20;
  PhasedArray small;
  PhasedArray big{big_cfg};
  EXPECT_LT(big.beamwidth_3db(), small.beamwidth_3db());
  EXPECT_GT(big.peak_gain().value(), small.peak_gain().value());
}

}  // namespace
}  // namespace movr::rf
