// The event-log contract: recorder chain round-trips, tampering is caught
// at the first bad record, synthetic invariant violations are re-detected
// offline, and a recorded faulted session is (a) clean under the verifier,
// (b) byte-stable across identical runs, and (c) bit-identical to the
// same session run unrecorded.
#include <log/recorder.hpp>
#include <log/verify.hpp>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <channel/obstacle.hpp>
#include <core/gain_control.hpp>
#include <geom/angle.hpp>
#include <sim/fault_injector.hpp>
#include <vr/session.hpp>

namespace movr::log {
namespace {

using geom::deg_to_rad;
using namespace std::chrono_literals;

/// A small in-memory log with a few records; returns the closed buffer.
std::string small_log(std::string key = {}) {
  Recorder::Config config;
  config.key = std::move(key);
  config.bench = "test";
  config.seed = 7;
  Recorder recorder{config};
  recorder.record_at(sim::TimePoint{20ms}, EventKind::kHandoverBegin,
                     {{"reflector", 0}, {"seq", 1}});
  recorder.record_at(sim::TimePoint{40ms}, EventKind::kHandoverCommit,
                     {{"reflector", 0}});
  recorder.record_at(sim::TimePoint{60ms}, EventKind::kLeaseRelease,
                     {{"reflector", 0}});
  recorder.close();
  return recorder.buffer();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(LogChain, CleanRoundTripVerifies) {
  const std::string text = small_log();
  const ParsedLog parsed = parse_log(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.records.size(), 5u);  // open + 3 events + close
  const VerifyReport report = verify_log(parsed, "");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(parsed.records[1].t_us, 20'000);
  EXPECT_EQ(parsed.records.back().field("records"), 4);
}

TEST(LogChain, WrongKeyBreaksAtSeqZero) {
  const std::string text = small_log("session-key");
  const VerifyReport good = verify_log(parse_log(text), "session-key");
  EXPECT_TRUE(good.ok());
  const VerifyReport bad = verify_log(parse_log(text), "");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.chain_issues.front().seq, 0);
}

TEST(LogChain, FlippedByteNamesTheRecord) {
  std::vector<std::string> lines = split_lines(small_log());
  // Flip a payload byte of seq 2, before its hash suffix.
  std::string& victim = lines[2];
  const std::size_t pos = victim.rfind(" h=") - 1;
  victim[pos] = victim[pos] == '0' ? '1' : '0';
  const VerifyReport report = verify_log(parse_log(join_lines(lines)), "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.chain_issues.front().seq, 2);
  EXPECT_NE(report.chain_issues.front().what.find("chain hash mismatch"),
            std::string::npos);
}

TEST(LogChain, DroppedRecordNamesTheGap) {
  std::vector<std::string> lines = split_lines(small_log());
  lines.erase(lines.begin() + 2);  // drop seq 2
  const VerifyReport report = verify_log(parse_log(join_lines(lines)), "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.chain_issues.front().seq, 3);
  EXPECT_NE(report.chain_issues.front().what.find("sequence break"),
            std::string::npos);
}

TEST(LogChain, SwappedRecordsNameTheFirstOutOfOrder) {
  std::vector<std::string> lines = split_lines(small_log());
  std::swap(lines[2], lines[3]);
  const VerifyReport report = verify_log(parse_log(join_lines(lines)), "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.chain_issues.front().seq, 3);
}

TEST(LogChain, TruncationIsCaught) {
  std::vector<std::string> lines = split_lines(small_log());
  lines.pop_back();  // drop log_close
  const VerifyReport report = verify_log(parse_log(join_lines(lines)), "");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.chain_issues.front().what.find("truncated"),
            std::string::npos);
}

/// Recorder emitting a params record with soak-like bounds, for synthetic
/// invariant streams.
void emit_params(Recorder& recorder) {
  recorder.record(EventKind::kParams, {{"grace_us", 100'000},
                                       {"osc_us", 1'000'000},
                                       {"div_us", 2'500'000},
                                       {"watchdog_us", 2'000'000},
                                       {"slack_us", 500'000},
                                       {"tick_us", 20'000},
                                       {"reflectors", 1}});
}

TEST(LogInvariants, GainAboveFloorDuringOldPartition) {
  Recorder recorder{{}};
  emit_params(recorder);
  recorder.record_at(sim::TimePoint{0ms}, EventKind::kSnapshotControl,
                     {{"sent", 0},
                      {"delivered", 0},
                      {"dropped", 0},
                      {"undeliv", 0},
                      {"in_flight", 0},
                      {"part", 1}});
  // 200 ms into a partition with a 100 ms grace: gain must be at the floor.
  recorder.record_at(sim::TimePoint{200ms}, EventKind::kSnapshotReflector,
                     {{"r", 0},
                      {"gain", 100},
                      {"safe_code", 40},
                      {"safe_mode", 0},
                      {"stable", 1},
                      {"div_age_us", 0},
                      {"plane_part", 1}});
  recorder.close();
  const VerifyReport report = verify_log(parse_log(recorder.buffer()), "");
  ASSERT_EQ(report.invariant_issues.size(), 1u);
  EXPECT_NE(report.invariant_issues.front().what.find("invariant A"),
            std::string::npos);
}

TEST(LogInvariants, OpenLedgersAreCaught) {
  Recorder recorder{{}};
  emit_params(recorder);
  recorder.record_at(sim::TimePoint{20ms}, EventKind::kSnapshotControl,
                     {{"sent", 10},
                      {"delivered", 4},
                      {"dropped", 1},
                      {"undeliv", 0},
                      {"in_flight", 2},
                      {"part", 0}});
  recorder.record_at(sim::TimePoint{20ms}, EventKind::kSnapshotTransport,
                     {{"enqueued", 50},
                      {"delivered", 49},
                      {"dropped", 0},
                      {"recovered", 0},
                      {"spec_dup", 0},
                      {"in_flight", 0},
                      {"final", 0}});
  recorder.close();
  const VerifyReport report = verify_log(parse_log(recorder.buffer()), "");
  ASSERT_EQ(report.invariant_issues.size(), 2u);
  EXPECT_NE(report.invariant_issues[0].what.find("control ledger open"),
            std::string::npos);
  EXPECT_NE(report.invariant_issues[1].what.find("transport ledger open"),
            std::string::npos);
}

TEST(LogInvariants, SearchMustTerminateWithAReason) {
  Recorder recorder{{}};
  emit_params(recorder);
  recorder.record_at(sim::TimePoint{1s}, EventKind::kSearchLaunch,
                     {{"id", 0}});
  recorder.record_at(sim::TimePoint{2s}, EventKind::kSearchLaunch,
                     {{"id", 1}});
  // Search 1 "fails" with no reason; search 0 never reports back at all.
  recorder.record_at(sim::TimePoint{3s}, EventKind::kSearchDone,
                     {{"id", 1},
                      {"completed", 0},
                      {"reason_h", 0},
                      {"took_us", 1'000'000}});
  recorder.close();
  const VerifyReport report = verify_log(parse_log(recorder.buffer()), "");
  ASSERT_EQ(report.invariant_issues.size(), 2u);
  EXPECT_NE(report.invariant_issues[0].what.find("failed without a reason"),
            std::string::npos);
  EXPECT_NE(report.invariant_issues[1].what.find("never terminated"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Round trip: a 10 s faulted session through the real emission hooks.
// ---------------------------------------------------------------------

core::Scene logged_scene() {
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(
      scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  std::mt19937_64 rng{5};
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  return scene;
}

/// Runs the canonical 10 s blocked session; when `recorder` is set the
/// link manager and session record into it.
vr::QoeReport run_faulted_session(Recorder* recorder) {
  core::Scene scene = logged_scene();
  sim::Simulator simulator;
  if (recorder != nullptr) {
    recorder->bind_clock(&simulator);
  }
  core::LinkManager::Config manager_config;
  manager_config.recorder = recorder;
  vr::MovrStrategy strategy{simulator, scene, std::mt19937_64{11},
                            manager_config};
  sim::FaultInjector injector{simulator};
  injector.inject(
      "hand_blockage", sim::TimePoint{2s}, 3s,
      [&scene] {
        scene.room().add_obstacle(channel::make_hand(
            scene.headset().node().position(),
            scene.ap().node().position() -
                scene.headset().node().position()));
      },
      [&scene] { scene.room().remove_obstacles("hand"); });
  vr::Session::Config config;
  config.duration = sim::from_seconds(10.0);
  config.faults = &injector;
  config.transport = net::TransportConfig{};
  config.recorder = recorder;
  vr::Session session{simulator, scene, strategy, nullptr, nullptr, config};
  return session.run();
}

TEST(LogRoundTrip, FaultedSessionVerifiesCleanAndIsByteStable) {
  Recorder::Config config;
  config.key = "round-trip";
  config.bench = "log_verify_test";
  config.seed = 11;
  Recorder first{config};
  const vr::QoeReport report = run_faulted_session(&first);
  first.close();
  EXPECT_GT(report.frames, 0u);

  const ParsedLog parsed = parse_log(first.buffer());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const VerifyReport verified = verify_log(parsed, "round-trip");
  EXPECT_TRUE(verified.ok());
  // The blockage forces real traffic through the hooks: handovers and the
  // per-20 ms transport snapshots must both be present.
  EXPECT_GT(verified.transport_snapshots, 0u);
  std::uint64_t handovers = 0;
  for (const ParsedRecord& record : parsed.records) {
    handovers += record.is(EventKind::kHandoverCommit) ? 1u : 0u;
  }
  EXPECT_GT(handovers, 0u);

  // Byte stability: an identical second run produces the identical log.
  Recorder second{config};
  run_faulted_session(&second);
  second.close();
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(LogRoundTrip, RecordingIsInvisibleToTheSession) {
  Recorder recorder{{}};
  const vr::QoeReport logged = run_faulted_session(&recorder);
  recorder.close();
  const vr::QoeReport unlogged = run_faulted_session(nullptr);
  // Recording consumes no session RNG: every outcome field agrees.
  EXPECT_EQ(logged.frames, unlogged.frames);
  EXPECT_EQ(logged.glitched_frames, unlogged.glitched_frames);
  EXPECT_EQ(logged.stall_events, unlogged.stall_events);
  EXPECT_EQ(logged.longest_stall, unlogged.longest_stall);
  ASSERT_TRUE(logged.transport.has_value());
  ASSERT_TRUE(unlogged.transport.has_value());
  EXPECT_EQ(logged.transport->packets_delivered,
            unlogged.transport->packets_delivered);
  EXPECT_EQ(logged.transport->packets_dropped,
            unlogged.transport->packets_dropped);
  EXPECT_EQ(logged.transport->deadline_misses,
            unlogged.transport->deadline_misses);
}

TEST(LogDiff, IdenticalStreamsAgreeDivergentOnesDoNot) {
  const ParsedLog a = parse_log(small_log());
  EXPECT_TRUE(diff_logs(a, a).empty());
  Recorder other{{}};
  other.record_at(sim::TimePoint{20ms}, EventKind::kHandoverBegin,
                  {{"reflector", 1}, {"seq", 1}});
  other.record_at(sim::TimePoint{40ms}, EventKind::kHandoverAbort,
                  {{"reflector", 1}, {"reason", 2}});
  other.close();
  const std::vector<std::string> diffs =
      diff_logs(a, parse_log(other.buffer()));
  EXPECT_FALSE(diffs.empty());
}

}  // namespace
}  // namespace movr::log
