#include <sim/rng.hpp>

#include <gtest/gtest.h>

namespace movr::sim {
namespace {

TEST(Rng, Fnv1aStable) {
  // Known FNV-1a test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("hello"), 0xa430d84680aabd0bull);
}

TEST(Rng, SameNameSameStream) {
  const RngRegistry r{123};
  auto a = r.stream("blockage");
  auto b = r.stream("blockage");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentNamesDiffer) {
  const RngRegistry r{123};
  auto a = r.stream("blockage");
  auto b = r.stream("measurement");
  int equal = 0;
  for (int i = 0; i < 10; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DifferentSeedsDiffer) {
  const RngRegistry r1{1};
  const RngRegistry r2{2};
  auto a = r1.stream("x");
  auto b = r2.stream("x");
  EXPECT_NE(a(), b());
}

TEST(Rng, IndexedStreamsIndependent) {
  const RngRegistry r{42};
  auto run0 = r.stream("fig8", 0);
  auto run1 = r.stream("fig8", 1);
  EXPECT_NE(run0(), run1());
  // And reproducible.
  auto again = r.stream("fig8", 0);
  auto fresh = r.stream("fig8", 0);
  EXPECT_EQ(again(), fresh());
}

TEST(Rng, MasterSeedAccessor) {
  const RngRegistry r{7};
  EXPECT_EQ(r.master_seed(), 7u);
}

}  // namespace
}  // namespace movr::sim
