#include <geom/angle.hpp>

#include <cmath>

#include <gtest/gtest.h>

namespace movr::geom {
namespace {

TEST(Angle, Conversions) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi), 180.0);
  EXPECT_DOUBLE_EQ(deg_to_rad(rad_to_deg(1.234)), 1.234);
}

TEST(Angle, WrapTwoPiBasics) {
  EXPECT_NEAR(wrap_two_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.1), 0.1, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-5.0 * kTwoPi - 0.25), kTwoPi - 0.25, 1e-9);
}

TEST(Angle, WrapPiBasics) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);       // pi maps to +pi
  EXPECT_NEAR(wrap_pi(-kPi), kPi, 1e-12);      // -pi maps to +pi too
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(3.0 * kPi), kPi, 1e-9);
}

// Property sweep: wrapping is idempotent and stays in range.
class AngleWrapProperty : public ::testing::TestWithParam<double> {};

TEST_P(AngleWrapProperty, TwoPiRangeAndIdempotence) {
  const double a = GetParam();
  const double w = wrap_two_pi(a);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kTwoPi);
  EXPECT_NEAR(wrap_two_pi(w), w, 1e-12);
  // Wrapping preserves the angle modulo 2*pi.
  EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
}

TEST_P(AngleWrapProperty, PiRangeAndIdempotence) {
  const double a = GetParam();
  const double w = wrap_pi(a);
  EXPECT_GT(w, -kPi);
  EXPECT_LE(w, kPi);
  EXPECT_NEAR(wrap_pi(w), w, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AngleWrapProperty,
                         ::testing::Values(-100.0, -7.5, -kTwoPi, -kPi, -1.0,
                                           -1e-9, 0.0, 1e-9, 1.0, kPi, 4.0,
                                           kTwoPi, 7.5, 100.0, 1e6));

TEST(Angle, AngularDistance) {
  EXPECT_NEAR(angular_distance(0.1, 0.2), 0.1, 1e-12);
  EXPECT_NEAR(angular_distance(0.0, kTwoPi), 0.0, 1e-12);
  // Across the wrap point: 359 deg vs 1 deg is 2 deg apart.
  EXPECT_NEAR(angular_distance(deg_to_rad(359.0), deg_to_rad(1.0)),
              deg_to_rad(2.0), 1e-12);
  EXPECT_NEAR(angular_distance(0.0, kPi), kPi, 1e-12);
}

TEST(Angle, AngularDistanceSymmetric) {
  for (double a = 0.0; a < kTwoPi; a += 0.7) {
    for (double b = 0.0; b < kTwoPi; b += 0.9) {
      EXPECT_NEAR(angular_distance(a, b), angular_distance(b, a), 1e-12);
      EXPECT_LE(angular_distance(a, b), kPi + 1e-12);
    }
  }
}

TEST(Angle, AngularDifferenceSign) {
  // Rotating from 10 deg to 20 deg is +10 deg.
  EXPECT_NEAR(angular_difference(deg_to_rad(20.0), deg_to_rad(10.0)),
              deg_to_rad(10.0), 1e-12);
  // From 1 deg back to 359 deg is -2 deg (short way).
  EXPECT_NEAR(angular_difference(deg_to_rad(359.0), deg_to_rad(1.0)),
              deg_to_rad(-2.0), 1e-12);
}

TEST(Angle, AngularLerpEndpoints) {
  const double a = deg_to_rad(350.0);
  const double b = deg_to_rad(10.0);
  EXPECT_NEAR(angular_distance(angular_lerp(a, b, 0.0), a), 0.0, 1e-12);
  EXPECT_NEAR(angular_distance(angular_lerp(a, b, 1.0), b), 0.0, 1e-12);
  // Midpoint across the wrap is 0 deg, not 180.
  EXPECT_NEAR(angular_distance(angular_lerp(a, b, 0.5), 0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace movr::geom
