// Zero-allocation regression tests — the enforcement teeth of DESIGN.md §11.
//
// Strategy: run a full warmup session to grow every pool, ring and scratch
// buffer to its steady-state capacity, then reset() the transport (which
// reseeds the RNG streams, so the second session replays the exact same
// trajectory) and replay with the operator-new counter armed around the
// tick loop. Because the replay is bit-identical, the warmed capacities are
// exactly sufficient — a single allocation is a regression, not noise.
//
// The armed window covers the 90 Hz steady state only: on_frame(), the
// event cascade run_until() drives (air, acks, deadlines, FEC recovery,
// retransmissions), and the batched oracle query path. finalize()/reset()
// are deliberately outside the window — building a metrics histogram
// between sessions may allocate; the per-tick path may not.
#include "net_alloc_hook.hpp"

#include <gtest/gtest.h>

#include <vector>

#include <channel/path_batch.hpp>
#include <channel/path_solver.hpp>
#include <core/channel_oracle.hpp>
#include <net/transport.hpp>
#include <phy/mcs.hpp>
#include <sim/simulator.hpp>

namespace movr::net {
namespace {

using namespace std::chrono_literals;

constexpr int kTicks = 200;

TEST(NetAllocRegression, HookCountsAllocations) {
  // Self-test: the interposer must actually be the binary's operator new
  // (also under ASan, whose malloc sits underneath it) — otherwise every
  // zero-allocation assertion below would pass vacuously.
  // (A paired new/delete in one function may legally be elided by the
  // optimizer; the vector's heap buffer cannot be.)
  testing::alloc_counter_start();
  std::vector<int>* v = new std::vector<int>(64);
  const std::uint64_t allocs = testing::alloc_counter_stop();
  delete v;
  EXPECT_GE(allocs, 1u) << "operator-new hook is not interposing";
}

TransportConfig steady_config() {
  TransportConfig config;
  config.source.fps = 90.0;
  config.source.target_mbps = 2000.0;
  config.source.latency_budget = 10ms;
  config.source.seed = 12;
  config.seed = 34;
  // Static FEC so the parity, recovery and retransmission machinery all run
  // inside the measured window.
  config.fec.k = 4;
  config.fec.depth = 2;
  return config;
}

/// Drives one session of `kTicks` frames under a fixed lossy channel.
/// Deterministic by construction: the channel schedule is constant and the
/// transport's RNG streams are reseeded by reset(), so every session is an
/// exact replay of the first.
void run_session(sim::Simulator& simulator, Transport& transport,
                 sim::TimePoint base) {
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  ChannelState channel;
  channel.mcs = &phy::mcs_table()[phy::mcs_table().size() / 2];
  channel.packet_loss = 0.12;
  for (int t = 0; t < kTicks; ++t) {
    simulator.run_until(base + interval * t);
    transport.on_frame(channel);
  }
}

TEST(NetAllocRegression, SteadyStateTransportTickIsHeapFree) {
  sim::Simulator simulator;
  Transport transport{simulator, steady_config()};

  // Session 1: warm every pool to steady-state capacity, then drain the
  // event queue (reset() requires it) and rewind to a fresh session.
  run_session(simulator, transport, sim::TimePoint{});
  simulator.run();
  ASSERT_EQ(simulator.pending_events(), 0u);
  transport.finalize(simulator.now());
  ASSERT_TRUE(transport.metrics().conserved());
  const std::size_t warmed_arena = transport.arena_bytes();
  transport.reset();

  // Session 2: exact replay with the allocation counter armed. No EXPECTs
  // inside the window — gtest assertions allocate.
  const sim::TimePoint base = simulator.now();
  testing::alloc_counter_start();
  run_session(simulator, transport, base);
  const std::uint64_t allocs = testing::alloc_counter_stop();
  EXPECT_EQ(allocs, 0u)
      << "steady-state transport ticks touched the heap " << allocs
      << " time(s); some pool or scratch buffer lost its capacity";

  // The replay fits the warmed arena exactly — no pool grew.
  simulator.run();
  transport.finalize(simulator.now());
  EXPECT_TRUE(transport.metrics().conserved());
  EXPECT_EQ(transport.arena_bytes(), warmed_arena)
      << "replayed session grew a pool that session 1 should have warmed";
  EXPECT_EQ(transport.metrics().arena_high_water_bytes, warmed_arena);
}

TEST(NetAllocRegression, WarmedOracleQueryBatchIsHeapFree) {
  const channel::Room room = channel::Room::paper_office();
  const core::ChannelOracle oracle{room};

  channel::EndpointBatch batch;
  const geom::Vec2 ap{0.5, 0.5};
  for (double y = 0.4; y < room.depth() - 0.4; y += 0.5) {
    for (double x = 0.4; x < room.width() - 0.4; x += 0.5) {
      batch.push(ap, {x, y});
    }
  }
  ASSERT_GT(batch.size(), 50u);

  // Cold call: fills the cache and sizes every scratch vector.
  std::vector<core::ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  const auto cold = oracle.stats();
  ASSERT_EQ(cold.misses, batch.size());

  // Warm call over the same endpoints: pure cache hits through borrowed
  // views — must not allocate.
  testing::alloc_counter_start();
  oracle.query_batch(batch, views);
  const std::uint64_t allocs = testing::alloc_counter_stop();
  EXPECT_EQ(allocs, 0u) << "warmed query_batch touched the heap " << allocs
                        << " time(s)";
  const auto warm = oracle.stats();
  EXPECT_EQ(warm.hits, cold.hits + batch.size());
  EXPECT_EQ(warm.misses, cold.misses);
}

TEST(NetAllocRegression, WarmedSolveBatchIsHeapFree) {
  // The SoA kernel itself (no cache in front): once the output batch and
  // workspace are warmed, re-solving the same endpoints is allocation-free.
  const channel::Room room = channel::Room::paper_office();
  const channel::PathSolver solver{room};

  channel::EndpointBatch endpoints;
  for (int i = 0; i < 64; ++i) {
    endpoints.push({0.3 + 0.09 * i, 0.6}, {6.5, 4.2});
  }
  channel::PathBatch batch;
  channel::PathSolver::BatchWorkspace ws;
  solver.solve_batch(endpoints, batch, ws);

  testing::alloc_counter_start();
  solver.solve_batch(endpoints, batch, ws);
  const std::uint64_t allocs = testing::alloc_counter_stop();
  EXPECT_EQ(allocs, 0u) << "warmed solve_batch touched the heap " << allocs
                        << " time(s)";
  EXPECT_EQ(batch.queries(), endpoints.size());
}

}  // namespace
}  // namespace movr::net
