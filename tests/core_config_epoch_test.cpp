#include <core/config_epoch.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <core/health.hpp>
#include <geom/angle.hpp>
#include <core/reflector.hpp>
#include <hw/leakage.hpp>
#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>

namespace movr::core {
namespace {

sim::ControlChannel::Config lossless() {
  sim::ControlChannel::Config c;
  c.jitter = sim::Duration{0};
  c.loss_probability = 0.0;
  return c;
}

struct Rig {
  sim::Simulator s;
  sim::ControlChannel channel;
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  ReflectorConfigAgent agent;
  ControlPlane plane;

  explicit Rig(sim::ControlChannel::Config channel_config = lossless(),
               ReflectorConfigAgent::Config agent_config = {},
               ControlPlane::Config plane_config = {})
      : channel{s, channel_config, std::mt19937_64{1}},
        agent{s, channel, reflector, agent_config, std::mt19937_64{2}},
        plane{s, channel, plane_config} {
    reflector.set_control_name("r0");
    agent.start();
    plane.manage(0, reflector, &agent);
  }
};

TEST(ConfigDigest, DeterministicAndSensitiveToEveryField) {
  const std::uint32_t base = config_digest(1.2, 100, 7, 2);
  EXPECT_EQ(base, config_digest(1.2, 100, 7, 2));
  EXPECT_NE(base, config_digest(1.2001, 100, 7, 2));
  EXPECT_NE(base, config_digest(1.2, 101, 7, 2));
  EXPECT_NE(base, config_digest(1.2, 100, 8, 2));
  EXPECT_NE(base, config_digest(1.2, 100, 7, 3));
  // The angle is wrapped before quantisation, matching PhasedArray::steer.
  EXPECT_EQ(base, config_digest(1.2 + 2.0 * geom::kTwoPi, 100, 7, 2));
}

TEST(ConfigEpoch, CommitAppliesAtomicallyAndAcks) {
  Rig rig;
  rig.plane.start();
  const std::uint64_t seq = rig.plane.commit(0, {1.1, 2.2, 90});
  EXPECT_GT(seq, 0u);
  rig.s.run_until(sim::TimePoint{100'000'000});

  EXPECT_NEAR(rig.reflector.front_end().rx_array().steering(), 1.1, 1e-12);
  EXPECT_NEAR(rig.reflector.front_end().tx_array().steering(), 2.2, 1e-12);
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 90u);
  EXPECT_EQ(rig.agent.applied_seq(), seq);
  EXPECT_EQ(rig.agent.stats().epochs_applied, 1u);
  EXPECT_GE(rig.plane.stats().acks_received, 1u);
  // Digest agreement: nothing diverged, nothing to reconcile.
  EXPECT_EQ(rig.plane.stats().divergences_detected, 0u);
  EXPECT_EQ(rig.plane.max_divergence_age(rig.s.now()), sim::Duration{0});
}

TEST(ConfigEpoch, CommitWithoutFieldsDoesNotApply) {
  Rig rig;
  // A commit whose field messages never arrived (reordered behind it or
  // lost) must not apply a half-staged epoch.
  rig.channel.send("r0", {"cfg_gain", 200.0, 0, 9});
  rig.channel.send("r0", {"cfg_commit", 0.0, 0, 9});
  rig.s.run_until(sim::TimePoint{100'000'000});
  EXPECT_EQ(rig.agent.applied_seq(), 0u);
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 0u);
  EXPECT_EQ(rig.agent.stats().incomplete_commits, 1u);
  EXPECT_EQ(rig.agent.stats().epochs_applied, 0u);
}

TEST(ConfigEpoch, StaleCommitIsIgnoredButReAcked) {
  Rig rig;
  rig.plane.commit(0, {1.0, 1.0, 50});
  rig.s.run_until(sim::TimePoint{50'000'000});
  const std::uint64_t applied = rig.agent.applied_seq();
  ASSERT_GT(applied, 0u);

  // An old epoch replayed out of order must not roll registers back.
  rig.channel.send("r0", {"cfg_rx", 0.5, 0, applied});
  rig.channel.send("r0", {"cfg_tx", 0.5, 0, applied});
  rig.channel.send("r0", {"cfg_gain", 10.0, 0, applied});
  rig.channel.send("r0", {"cfg_commit", 0.0, 0, applied});
  rig.s.run_until(rig.s.now() + sim::Duration{100'000'000});
  EXPECT_EQ(rig.agent.stats().stale_commits, 1u);
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 50u);
}

TEST(SafeMode, ControlSilenceRampsGainToProvablyStableFloor) {
  ReflectorConfigAgent::Config agent_config;
  agent_config.silence_timeout = sim::Duration{400'000'000};
  agent_config.watchdog_tick = sim::Duration{100'000'000};
  Rig rig{lossless(), agent_config};

  // The AP sets a hot configuration, then goes silent (no digest loop).
  rig.plane.commit(0, {1.3, 1.8, rig.reflector.front_end().max_gain_code()});
  rig.s.run_until(sim::TimePoint{50'000'000});
  ASSERT_GT(rig.reflector.front_end().gain_code(), rig.agent.safe_gain_code());

  // Within one silence timeout plus one watchdog period the gain must sit
  // at (or below) the floor.
  rig.s.run_until(sim::TimePoint{50'000'000} + agent_config.silence_timeout +
                  2 * agent_config.watchdog_tick);
  EXPECT_TRUE(rig.agent.in_safe_mode());
  EXPECT_LE(rig.reflector.front_end().gain_code(), rig.agent.safe_gain_code());

  // The floor is provably stable: below worst-case isolation over the
  // whole steerable sector, so ANY beam combination keeps the loop stable.
  const hw::LeakageModel leakage{rig.reflector.front_end().config().leakage};
  EXPECT_LE(rig.reflector.front_end().amplifier_gain().value(),
            leakage.worst_case_isolation().value());
  EXPECT_TRUE(rig.reflector.front_end().process(rf::DbmPower{-60.0}).stable);
}

TEST(SafeMode, ExitsOnlyWhenApReassertsRegisters) {
  ReflectorConfigAgent::Config agent_config;
  agent_config.silence_timeout = sim::Duration{200'000'000};
  agent_config.watchdog_tick = sim::Duration{50'000'000};
  Rig rig{lossless(), agent_config};
  rig.plane.commit(0, {1.3, 1.8, 200});
  rig.s.run_until(sim::TimePoint{600'000'000});
  ASSERT_TRUE(rig.agent.in_safe_mode());

  // A fresh epoch commit re-asserts the registers and ends safe mode.
  rig.plane.commit(0, {1.3, 1.8, 200});
  rig.s.run_until(rig.s.now() + sim::Duration{50'000'000});
  EXPECT_FALSE(rig.agent.in_safe_mode());
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 200u);
}

TEST(SafeMode, DisabledWatchdogNeverTrips) {
  ReflectorConfigAgent::Config agent_config;
  agent_config.silence_timeout = sim::Duration{100'000'000};
  agent_config.watchdog_enabled = false;  // the deliberately broken build
  Rig rig{lossless(), agent_config};
  rig.plane.commit(0, {1.3, 1.8, 200});
  rig.s.run_until(sim::TimePoint{2'000'000'000});
  EXPECT_FALSE(rig.agent.in_safe_mode());
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 200u);
  EXPECT_EQ(rig.agent.stats().safe_mode_entries, 0u);
}

TEST(SafeMode, OscillationCurrentGuardTripsWithoutSilence) {
  ReflectorConfigAgent::Config agent_config;
  agent_config.silence_timeout = sim::Duration{3'600'000'000'000};  // never
  agent_config.watchdog_tick = sim::Duration{50'000'000};
  Rig rig{lossless(), agent_config};

  // Steer both beams into the worst-coupling direction and max out the
  // gain: the loop goes unstable and the amplifier rails. The only
  // observable is the supply current — the guard must catch it.
  const auto& leakage_config = rig.reflector.front_end().config().leakage;
  auto& fe = rig.reflector.front_end();
  fe.steer_tx(leakage_config.tx_coupling_angle);
  fe.steer_rx(leakage_config.rx_coupling_angle);
  fe.set_gain_code(fe.max_gain_code());
  ASSERT_FALSE(fe.process(rf::DbmPower{-60.0}).stable);

  rig.s.run_until(rig.s.now() + sim::Duration{500'000'000});
  EXPECT_GE(rig.agent.stats().oscillation_trips, 1u);
  EXPECT_LE(fe.gain_code(), rig.agent.safe_gain_code());
  EXPECT_TRUE(fe.process(rf::DbmPower{-60.0}).stable);
}

TEST(ControlPlane, DigestCatchesSilentRegisterDivergence) {
  Rig rig;
  HealthMonitor health;
  health.track(1);
  rig.plane.bind_health(&health);
  rig.plane.start();
  rig.plane.commit(0, {1.1, 2.2, 90});
  rig.s.run_until(sim::TimePoint{100'000'000});
  ASSERT_EQ(rig.reflector.front_end().gain_code(), 90u);

  // Undetected corruption in a direct register write: the gain register
  // silently holds a value the AP never committed.
  rig.reflector.front_end().set_gain_code(240);
  rig.s.run_until(rig.s.now() + sim::Duration{500'000'000});

  EXPECT_GE(rig.plane.stats().divergences_detected, 1u);
  EXPECT_GE(rig.plane.stats().reconciliations, 1u);
  EXPECT_GE(health.stats().divergences, 1);
  EXPECT_TRUE(health.needs_recalibration(0));
  // The reconciliation replay restored the committed epoch...
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 90u);
  // ...and the divergence closed (age back to zero).
  EXPECT_EQ(rig.plane.max_divergence_age(rig.s.now()), sim::Duration{0});
}

TEST(ControlPlane, PartitionIsDetectedQuarantinedAndHealed) {
  ControlPlane::Config plane_config;
  plane_config.digest_interval = sim::Duration{100'000'000};
  plane_config.reply_timeout = sim::Duration{40'000'000};
  plane_config.missed_replies_to_partition = 3;
  Rig rig{lossless(), {}, plane_config};
  HealthMonitor health;
  health.track(1);
  rig.plane.bind_health(&health);
  rig.plane.start();
  rig.plane.commit(0, {1.1, 2.2, 90});
  rig.s.run_until(sim::TimePoint{200'000'000});
  ASSERT_FALSE(rig.plane.partitioned(0));

  rig.channel.apply_partition(+1);
  rig.s.run_until(rig.s.now() + sim::Duration{600'000'000});
  EXPECT_TRUE(rig.plane.partitioned(0));
  EXPECT_TRUE(health.quarantined(0));
  EXPECT_EQ(rig.plane.stats().partitions_entered, 1u);
  // Partitioned reflectors are excluded from the divergence-age bound
  // (nothing can reach them until the partition heals).
  EXPECT_EQ(rig.plane.max_divergence_age(rig.s.now()), sim::Duration{0});

  rig.channel.apply_partition(-1);
  rig.s.run_until(rig.s.now() + sim::Duration{600'000'000});
  EXPECT_FALSE(rig.plane.partitioned(0));
  EXPECT_EQ(rig.plane.stats().partitions_healed, 1u);
}

TEST(ControlPlane, RebootIsDetectedAndEpochReplayed) {
  Rig rig;
  HealthMonitor health;
  health.track(1);
  rig.plane.bind_health(&health);
  rig.plane.start();
  rig.plane.commit(0, {1.1, 2.2, 90});
  rig.s.run_until(sim::TimePoint{100'000'000});
  ASSERT_EQ(rig.reflector.front_end().gain_code(), 90u);

  rig.reflector.power_cycle();  // registers wiped, boot epoch bumps
  ASSERT_EQ(rig.reflector.front_end().gain_code(), 0u);
  rig.s.run_until(rig.s.now() + sim::Duration{800'000'000});

  EXPECT_GE(rig.plane.stats().reboots_detected, 1u);
  EXPECT_GE(health.stats().reboots_detected, 1);
  // The replay re-applied the committed epoch on the newborn reflector.
  EXPECT_EQ(rig.reflector.front_end().gain_code(), 90u);
  EXPECT_NEAR(rig.reflector.front_end().rx_array().steering(), 1.1, 1e-12);
  EXPECT_EQ(rig.plane.max_divergence_age(rig.s.now()), sim::Duration{0});
}

TEST(ControlPlane, IncidentCountersAggregateAgentSide) {
  ReflectorConfigAgent::Config agent_config;
  agent_config.silence_timeout = sim::Duration{200'000'000};
  agent_config.watchdog_tick = sim::Duration{50'000'000};
  Rig rig{lossless(), agent_config};
  rig.plane.commit(0, {1.3, 1.8, 200});
  rig.s.run_until(sim::TimePoint{600'000'000});  // silence: safe mode trips
  const ControlPlaneIncidents incidents = rig.plane.incidents();
  EXPECT_GE(incidents.safe_mode_entries, 1u);
}

}  // namespace
}  // namespace movr::core
