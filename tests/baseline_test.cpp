#include <gtest/gtest.h>

#include <baseline/multi_ap.hpp>
#include <baseline/strategies.hpp>
#include <baseline/wifi.hpp>
#include <geom/angle.hpp>
#include <vr/requirements.hpp>
#include <vr/session.hpp>

namespace movr::baseline {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;

TEST(Wifi, RatesFollowSnr) {
  EXPECT_EQ(wifi_rate_mbps(rf::Decibels{-5.0}), 0.0);
  EXPECT_GT(wifi_rate_mbps(rf::Decibels{15.0}), 0.0);
  EXPECT_LT(wifi_rate_mbps(rf::Decibels{15.0}),
            wifi_rate_mbps(rf::Decibels{35.0}));
}

TEST(Wifi, EvenMaxRateCannotCarryVr) {
  // The paper's premise: WiFi cannot support VR's multi-Gbps stream.
  EXPECT_LT(wifi_max_rate_mbps(), vr::kHtcVive.required_mbps());
}

TEST(Wifi, ScalesWithWidthAndStreams) {
  const double base = wifi_rate_mbps(rf::Decibels{35.0}, {80.0, 1});
  EXPECT_NEAR(wifi_rate_mbps(rf::Decibels{35.0}, {160.0, 1}), base * 2.0,
              1e-9);
  EXPECT_NEAR(wifi_rate_mbps(rf::Decibels{35.0}, {80.0, 4}), base * 4.0,
              1e-9);
}

core::Scene make_scene() {
  return core::Scene{channel::Room{5.0, 5.0},
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

TEST(FixedBeam, WorksUntilPlayerMoves) {
  core::Scene scene = make_scene();
  FixedBeamStrategy strategy{scene};
  const double at_setup = strategy.on_frame().value();
  EXPECT_GT(at_setup, 18.0);
  // Player strafes 1.5 m: the frozen beams miss.
  scene.headset().node().set_position({3.0, 3.5});
  const double after_move = strategy.on_frame().value();
  EXPECT_LT(after_move, at_setup - 10.0);
}

TEST(DirectTracking, FollowsPlayer) {
  core::Scene scene = make_scene();
  DirectTrackingStrategy strategy{scene};
  const double before = strategy.on_frame().value();
  scene.headset().node().set_position({2.0, 3.5});
  const double after = strategy.on_frame().value();
  EXPECT_GT(before, 18.0);
  EXPECT_GT(after, 18.0);  // tracking keeps the link up while LOS is clear
}

TEST(NlosSweep, InitialAssociationThenSteady) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  NlosSweepStrategy strategy{simulator, scene};
  strategy.on_frame();
  EXPECT_EQ(strategy.sweeps_performed(), 1);
  // Let the initial sweep complete.
  simulator.run();
  const double snr = strategy.on_frame().value();
  EXPECT_GT(snr, 18.0);  // clear LOS: the sweep found the direct path
  EXPECT_EQ(strategy.sweeps_performed(), 1);
}

TEST(NlosSweep, SweepCostIsRealAirtime) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  NlosSweepStrategy strategy{simulator, scene};
  // 161 x 161 combos at 11 us each: ~280 ms of dead air per sweep.
  EXPECT_GT(sim::to_milliseconds(strategy.sweep_cost()), 100.0);
}

TEST(NlosSweep, ReactsToBlockageButLandsOnWeakPath) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  NlosSweepStrategy::Config config;
  config.step_deg = 2.0;  // keep the test fast
  NlosSweepStrategy strategy{simulator, scene, config};
  strategy.on_frame();
  simulator.run();  // initial association
  // Let the post-association cooldown expire before the blockage hits.
  simulator.run_until(simulator.now() + sim::from_seconds(1.0));
  const double clear = strategy.on_frame().value();

  // Hand goes up and STAYS up.
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
  strategy.on_frame();             // detects the drop, starts a sweep
  EXPECT_EQ(strategy.sweeps_performed(), 2);
  simulator.run();                 // sweep completes against blocked world
  const double after = strategy.on_frame().value();
  // The best it can find avoids the hand via a wall, many dB below LOS.
  EXPECT_LT(after, clear - 8.0);
  EXPECT_GT(after, clear - 40.0);
}

TEST(SlsTracking, TracksWithoutPoseOracle) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  SlsTrackingStrategy strategy{simulator, scene};
  EXPECT_GT(strategy.on_frame().value(), 19.0);  // trained on first frame
  EXPECT_EQ(strategy.sweeps_performed(), 1);
  // The player walks; after the next training interval the link is back.
  scene.headset().node().set_position({1.8, 3.4});
  simulator.run_until(simulator.now() + sim::from_seconds(0.2));
  EXPECT_GT(strategy.on_frame().value(), 19.0);
  EXPECT_EQ(strategy.sweeps_performed(), 2);
}

TEST(SlsTracking, TrainingAirtimeTiny) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  SlsTrackingStrategy strategy{simulator, scene};
  EXPECT_LT(sim::to_milliseconds(strategy.training_airtime()), 3.0);
}

TEST(SlsTracking, BlockageStillFatal) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  SlsTrackingStrategy strategy{simulator, scene};
  strategy.on_frame();
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
  simulator.run_until(simulator.now() + sim::from_seconds(0.2));
  // Retrained onto the best available (reflected) sector: below VR grade.
  const double snr = strategy.on_frame().value();
  EXPECT_LT(snr, 19.0);
}

TEST(MultiAp, MoreApsNeverWorse) {
  core::Scene scene = make_scene();
  scene.room().add_obstacle(channel::make_person({1.7, 1.2}));
  const Vec2 headset{3.0, 2.0};
  double prev = -1e9;
  for (int n = 1; n <= 4; ++n) {
    const auto deployment = corner_deployment(5.0, 5.0, n);
    const double snr = deployment.best_snr(scene, headset).value();
    EXPECT_GE(snr, prev - 1e-9) << n << " APs";
    prev = snr;
  }
}

TEST(MultiAp, CablingGrowsWithCount) {
  const Vec2 pc{0.4, 0.4};
  double prev = 0.0;
  for (int n = 1; n <= 6; ++n) {
    const double cable = corner_deployment(5.0, 5.0, n).cabling_metres(pc);
    EXPECT_GT(cable, prev);
    prev = cable;
  }
  // Four corner APs in a 5 x 5 room: already ~15+ metres of HDMI.
  EXPECT_GT(corner_deployment(5.0, 5.0, 4).cabling_metres(pc), 12.0);
}

TEST(MultiAp, CountClamped) {
  EXPECT_EQ(corner_deployment(5.0, 5.0, 100).ap_positions.size(), 8u);
  EXPECT_TRUE(corner_deployment(5.0, 5.0, 0).ap_positions.empty());
}

}  // namespace
}  // namespace movr::baseline
