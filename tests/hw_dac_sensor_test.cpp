#include <gtest/gtest.h>

#include <hw/current_sensor.hpp>
#include <hw/dac.hpp>

namespace movr::hw {
namespace {

TEST(Dac, EightBitRange) {
  const Dac dac;
  EXPECT_EQ(dac.max_code(), 255u);
  EXPECT_DOUBLE_EQ(dac.output(0), 0.0);
  EXPECT_DOUBLE_EQ(dac.output(255), 1.0);
  EXPECT_DOUBLE_EQ(dac.output(9999), 1.0);  // clamps
}

TEST(Dac, MonotoneOutput) {
  const Dac dac;
  double prev = -1.0;
  for (std::uint32_t code = 0; code <= 255; ++code) {
    const double v = dac.output(code);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Dac, CodeForRoundTrip) {
  const Dac dac;
  for (std::uint32_t code = 0; code <= 255; code += 5) {
    EXPECT_EQ(dac.code_for(dac.output(code)), code);
  }
}

TEST(Dac, QuantizeErrorBounded) {
  const Dac dac;
  const double lsb = 1.0 / 255.0;
  for (double v = 0.0; v <= 1.0; v += 0.003) {
    EXPECT_NEAR(dac.quantize(v), v, lsb / 2.0 + 1e-12);
  }
}

TEST(Dac, CodeForClampsOutOfRange) {
  const Dac dac;
  EXPECT_EQ(dac.code_for(-5.0), 0u);
  EXPECT_EQ(dac.code_for(5.0), 255u);
}

TEST(Dac, RejectsBadConfig) {
  EXPECT_THROW(Dac(Dac::Config{0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Dac(Dac::Config{32, 1.0}), std::invalid_argument);
  EXPECT_THROW(Dac(Dac::Config{8, -1.0}), std::invalid_argument);
}

TEST(Dac, CustomFullScale) {
  const Dac dac{Dac::Config{8, 3.3}};
  EXPECT_DOUBLE_EQ(dac.output(255), 3.3);
  EXPECT_NEAR(dac.output(128), 3.3 * 128.0 / 255.0, 1e-12);
}

TEST(CurrentSensor, NoiselessConfigIsExact) {
  CurrentSensor::Config config;
  config.noise_sigma_a = 0.0;
  config.quantization_a = 0.0;
  const CurrentSensor sensor{config};
  std::mt19937_64 rng{1};
  EXPECT_DOUBLE_EQ(sensor.read(0.42, rng), 0.42);
}

TEST(CurrentSensor, QuantizesToLsb) {
  CurrentSensor::Config config;
  config.noise_sigma_a = 0.0;
  config.quantization_a = 0.001;
  const CurrentSensor sensor{config};
  std::mt19937_64 rng{1};
  EXPECT_DOUBLE_EQ(sensor.read(0.35042, rng), 0.350);
  EXPECT_DOUBLE_EQ(sensor.read(0.35062, rng), 0.351);
}

TEST(CurrentSensor, ClampsToFullScale) {
  const CurrentSensor sensor;
  std::mt19937_64 rng{1};
  EXPECT_LE(sensor.read(100.0, rng), sensor.config().full_scale_a);
  EXPECT_GE(sensor.read(-5.0, rng), 0.0);
}

TEST(CurrentSensor, AveragingReducesNoise) {
  const CurrentSensor sensor;
  std::mt19937_64 rng{7};
  double sq1 = 0.0;
  double sq16 = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double e1 = sensor.read(0.4, rng) - 0.4;
    const double e16 = sensor.read_averaged(0.4, 16, rng) - 0.4;
    sq1 += e1 * e1;
    sq16 += e16 * e16;
  }
  EXPECT_GT(sq1 / sq16, 5.0);
}

TEST(CurrentSensor, AverageUnbiased) {
  const CurrentSensor sensor;
  std::mt19937_64 rng{9};
  double sum = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    sum += sensor.read_averaged(0.35, 4, rng);
  }
  EXPECT_NEAR(sum / n, 0.35, 0.001);
}

}  // namespace
}  // namespace movr::hw
