#include <channel/path_solver.hpp>

#include <gtest/gtest.h>

#include <random>

#include <channel/ray_tracer.hpp>

namespace movr::channel {
namespace {

TEST(PathSolver, MatchesRayTracerBitForBit) {
  // The tracer facade delegates to the solver, but the solver must also
  // reproduce the tracer's *historic* numbers: same mirror formulation,
  // same ordering, same trims. Random endpoint pairs over the paper room.
  const Room room = Room::paper_office();
  const PathSolver solver{room};
  const RayTracer tracer{room};
  std::mt19937_64 rng{11};
  for (int i = 0; i < 50; ++i) {
    const geom::Vec2 a = room.random_interior_point(rng, 0.3);
    const geom::Vec2 b = room.random_interior_point(rng, 0.3);
    const auto solved = solver.solve(a, b);
    const auto traced = tracer.trace(a, b);
    ASSERT_EQ(solved.size(), traced.size());
    for (std::size_t p = 0; p < solved.size(); ++p) {
      EXPECT_EQ(solved[p].loss.value(), traced[p].loss.value());
      EXPECT_EQ(solved[p].length_m, traced[p].length_m);
      EXPECT_EQ(solved[p].departure_azimuth, traced[p].departure_azimuth);
      EXPECT_EQ(solved[p].arrival_azimuth, traced[p].arrival_azimuth);
      EXPECT_EQ(solved[p].bounces, traced[p].bounces);
    }
  }
}

TEST(PathSolver, NoObstacleShortCircuitIsExact) {
  // An obstacle tucked in a corner, far off every leg, must attenuate
  // nothing — the empty-room fast path and the validating slow path have
  // to agree exactly.
  Room empty{5.0, 5.0};
  Room with_far_obstacle{5.0, 5.0};
  with_far_obstacle.add_obstacle(
      {geom::Circle{{0.05, 0.05}, 0.01}, kFurniture, "dust"});
  const PathSolver fast{empty};
  const PathSolver slow{with_far_obstacle};
  const auto a = fast.solve({1.0, 2.0}, {4.0, 3.0});
  const auto b = slow.solve({1.0, 2.0}, {4.0, 3.0});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].loss.value(), b[p].loss.value());
    EXPECT_EQ(a[p].obstruction.value(), 0.0);
    EXPECT_EQ(b[p].obstruction.value(), 0.0);
  }
}

TEST(PathSolver, ObstacleValidationUsesCurrentObstacles) {
  Room room{5.0, 5.0};
  const PathSolver solver{room};
  const auto clear = solver.line_of_sight({1.0, 2.5}, {4.0, 2.5});
  EXPECT_EQ(clear.obstruction.value(), 0.0);
  room.add_obstacle({geom::Circle{{2.5, 2.5}, 0.3}, kBody, "person"});
  // No rebuild, no rebind: the cached images validate against the obstacle
  // that was added after construction.
  const auto blocked = solver.line_of_sight({1.0, 2.5}, {4.0, 2.5});
  EXPECT_GT(blocked.obstruction.value(), 10.0);
}

TEST(PathSolver, WallMaterialReadLiveAtSolveTime) {
  Room room{5.0, 5.0};
  const PathSolver solver{room};
  const auto drywall = solver.solve({1.0, 1.0}, {4.0, 1.0});
  room.set_wall_material("south", kMetal);
  const auto metal = solver.solve({1.0, 1.0}, {4.0, 1.0});
  ASSERT_EQ(drywall.size(), metal.size());
  // The south-wall bounce got stronger; find a first-order path whose loss
  // changed (the LOS one must not change).
  bool some_path_changed = false;
  for (std::size_t p = 0; p < drywall.size(); ++p) {
    if (drywall[p].bounces == 0) {
      EXPECT_EQ(drywall[p].loss.value(), metal[p].loss.value());
    } else if (drywall[p].loss.value() != metal[p].loss.value()) {
      some_path_changed = true;
    }
  }
  EXPECT_TRUE(some_path_changed);
}

TEST(PathSolver, RebindToEqualGeometryKeepsAnswers) {
  const Room original = Room::paper_office();
  PathSolver solver{original};
  const auto before = solver.solve({0.5, 0.5}, {4.0, 4.0});
  const Room relocated{original};  // same walls, different address
  solver.rebind(relocated);
  EXPECT_EQ(&solver.room(), &relocated);
  const auto after = solver.solve({0.5, 0.5}, {4.0, 4.0});
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t p = 0; p < before.size(); ++p) {
    EXPECT_EQ(before[p].loss.value(), after[p].loss.value());
  }
}

TEST(PathSolver, RebindToDifferentGeometryRebuildsImages) {
  const Room small{4.0, 4.0};
  const Room large{8.0, 6.0};
  PathSolver solver{small};
  const auto in_small = solver.solve({1.0, 1.0}, {3.0, 3.0});
  solver.rebind(large);
  const auto in_large = solver.solve({1.0, 1.0}, {3.0, 3.0});
  // Same endpoints, different walls: the reflected path set must differ.
  const PathSolver fresh{large};
  const auto expected = fresh.solve({1.0, 1.0}, {3.0, 3.0});
  ASSERT_EQ(in_large.size(), expected.size());
  for (std::size_t p = 0; p < in_large.size(); ++p) {
    EXPECT_EQ(in_large[p].loss.value(), expected[p].loss.value());
  }
  // And they really changed relative to the small room: walls shared by the
  // two rooms (south/west) give identical bounces, but the relocated
  // east/north walls must move their reflected paths.
  std::vector<double> small_losses;
  std::vector<double> large_losses;
  for (const auto& path : in_small) small_losses.push_back(path.loss.value());
  for (const auto& path : in_large) large_losses.push_back(path.loss.value());
  EXPECT_NE(small_losses, large_losses);
}

TEST(PathSolver, MaxBouncesRespected) {
  const Room room{5.0, 5.0};
  const PathSolver los_only{room, {24.0e9, 0, rf::Decibels{200.0}}};
  EXPECT_EQ(los_only.solve({1.0, 1.0}, {4.0, 4.0}).size(), 1u);
  const PathSolver first_order{room, {24.0e9, 1, rf::Decibels{200.0}}};
  for (const auto& path : first_order.solve({1.0, 1.0}, {4.0, 4.0})) {
    EXPECT_LE(path.bounces, 1);
  }
}

}  // namespace
}  // namespace movr::channel
