#include <hw/amplifier.hpp>

#include <gtest/gtest.h>

namespace movr::hw {
namespace {

using rf::DbmPower;
using rf::Decibels;

TEST(Amplifier, RejectsBadConfig) {
  Amplifier::Config inverted;
  inverted.min_gain = Decibels{10.0};
  inverted.max_gain = Decibels{5.0};
  EXPECT_THROW(Amplifier{inverted}, std::invalid_argument);
  Amplifier::Config bad_rapp;
  bad_rapp.rapp_smoothness = 0.0;
  EXPECT_THROW(Amplifier{bad_rapp}, std::invalid_argument);
}

TEST(Amplifier, GainClampsToRange) {
  Amplifier amp;
  amp.set_gain(Decibels{1000.0});
  EXPECT_EQ(amp.gain(), amp.config().max_gain);
  amp.set_gain(Decibels{-1000.0});
  EXPECT_EQ(amp.gain(), amp.config().min_gain);
}

TEST(Amplifier, LinearRegionAppliesGainExactly) {
  Amplifier amp;
  amp.set_gain(Decibels{30.0});
  const auto op = amp.drive(DbmPower{-60.0});
  // -30 dBm out, 50 dB below saturation: negligible compression.
  EXPECT_NEAR(op.output.value(), -30.0, 0.01);
  EXPECT_LT(op.compression_db, 0.01);
  EXPECT_FALSE(op.saturated);
}

TEST(Amplifier, OutputNeverExceedsSaturation) {
  Amplifier amp;
  amp.set_gain(amp.config().max_gain);
  for (double in = -80.0; in <= 10.0; in += 2.0) {
    const auto op = amp.drive(DbmPower{in});
    EXPECT_LE(op.output.value(), amp.config().saturation_power.value() + 0.01)
        << "input " << in;
  }
}

TEST(Amplifier, CompressionGrowsWithDrive) {
  Amplifier amp;
  amp.set_gain(Decibels{50.0});
  double prev = -1.0;
  for (double in = -60.0; in <= -10.0; in += 5.0) {
    const auto op = amp.drive(DbmPower{in});
    EXPECT_GE(op.compression_db, prev);
    prev = op.compression_db;
  }
}

TEST(Amplifier, SaturatedFlagBeyondOneDb) {
  Amplifier amp;
  amp.set_gain(Decibels{50.0});
  // Drive hard: ideal output +40 dBm, 20 above saturation.
  const auto op = amp.drive(DbmPower{-10.0});
  EXPECT_TRUE(op.saturated);
  EXPECT_GT(op.compression_db, 1.0);
}

TEST(Amplifier, QuiescentCurrentAtIdle) {
  Amplifier amp;
  amp.set_gain(Decibels{0.0});
  const auto op = amp.drive(DbmPower{-100.0});
  EXPECT_NEAR(op.supply_current_a, amp.config().quiescent_current_a, 0.005);
}

TEST(Amplifier, CurrentJumpsNearSaturation) {
  Amplifier amp;
  amp.set_gain(Decibels{50.0});
  const auto linear = amp.drive(DbmPower{-60.0});   // -10 dBm out
  const auto compressed = amp.drive(DbmPower{-28.0});  // ~sat
  EXPECT_GT(compressed.supply_current_a,
            linear.supply_current_a + 0.5 * amp.config().compression_current_a);
}

TEST(Amplifier, CurrentMonotoneInDrive) {
  Amplifier amp;
  amp.set_gain(Decibels{45.0});
  double prev = 0.0;
  for (double in = -80.0; in <= 0.0; in += 1.0) {
    const auto op = amp.drive(DbmPower{in});
    EXPECT_GE(op.supply_current_a, prev - 1e-9) << "input " << in;
    prev = op.supply_current_a;
  }
}

// Property: for any gain setting, the knee in supply current happens where
// compression crosses the configured knee depth.
class AmplifierKneeProperty : public ::testing::TestWithParam<double> {};

TEST_P(AmplifierKneeProperty, KneeAlignedWithCompression) {
  Amplifier amp;
  amp.set_gain(Decibels{GetParam()});
  double knee_input = 0.0;
  for (double in = -90.0; in <= 20.0; in += 0.25) {
    const auto op = amp.drive(DbmPower{in});
    if (op.compression_db >= amp.config().knee_compression_db) {
      knee_input = in;
      break;
    }
  }
  // At the knee input, the extra current is about half the compression
  // current (logistic midpoint).
  const auto at_knee = amp.drive(DbmPower{knee_input});
  const auto well_below = amp.drive(DbmPower{knee_input - 20.0});
  const double extra = at_knee.supply_current_a - well_below.supply_current_a;
  EXPECT_GT(extra, 0.3 * amp.config().compression_current_a);
}

INSTANTIATE_TEST_SUITE_P(Gains, AmplifierKneeProperty,
                         ::testing::Values(20.0, 30.0, 40.0, 50.0));

}  // namespace
}  // namespace movr::hw
