#include <net/packetizer.hpp>

#include <gtest/gtest.h>

#include <numeric>

namespace movr::net {
namespace {

const phy::McsEntry& fastest_mcs() { return phy::mcs_table().back(); }
const phy::McsEntry& slowest_mcs() { return phy::mcs_table().front(); }

Frame make_frame(std::uint64_t bytes) {
  Frame frame;
  frame.id = 42;
  frame.capture = sim::from_seconds(1.0);
  frame.deadline = frame.capture + std::chrono::milliseconds{10};
  frame.bytes = bytes;
  return frame;
}

TEST(Packetizer, MpduSizeScalesWithMcsAndClamps) {
  Packetizer packetizer;
  const std::uint32_t fast = packetizer.mpdu_bytes_for(fastest_mcs());
  const std::uint32_t slow = packetizer.mpdu_bytes_for(slowest_mcs());
  EXPECT_GT(fast, slow);
  EXPECT_GE(slow, packetizer.config().min_mpdu_bytes);
  EXPECT_LE(fast, packetizer.config().max_mpdu_bytes);
  // MCS 24 at 6.76 Gbps for 150 us ~ 126 kB on air.
  EXPECT_NEAR(static_cast<double>(fast), 6756.75e6 * 150e-6 / 8.0, 1.0);
}

TEST(Packetizer, SplitConservesBytesExactly) {
  Packetizer packetizer;
  for (const std::uint64_t bytes :
       {std::uint64_t{1}, std::uint64_t{4096}, std::uint64_t{100000},
        std::uint64_t{7776000}}) {
    const auto packets = packetizer.split(make_frame(bytes), fastest_mcs());
    const std::uint64_t total = std::accumulate(
        packets.begin(), packets.end(), std::uint64_t{0},
        [](std::uint64_t sum, const Packet& p) {
          return sum + p.payload_bytes;
        });
    EXPECT_EQ(total, bytes);
  }
}

TEST(Packetizer, PacketsCarryDenseSeqAndFrameFraming) {
  Packetizer packetizer;
  const Frame frame = make_frame(7776000);  // one raw Vive frame
  const auto packets = packetizer.split(frame, fastest_mcs());
  ASSERT_GT(packets.size(), 1u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].seq, i);
    EXPECT_EQ(packets[i].frame_id, frame.id);
    EXPECT_EQ(packets[i].frame_packets, packets.size());
    EXPECT_EQ(packets[i].deadline, frame.deadline);
    EXPECT_EQ(packets[i].capture, frame.capture);
    EXPECT_GT(packets[i].payload_bytes, 0u);
  }
}

TEST(Packetizer, TinyFrameIsOnePacket) {
  Packetizer packetizer;
  const auto packets = packetizer.split(make_frame(100), slowest_mcs());
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload_bytes, 100u);
  EXPECT_EQ(packets[0].frame_packets, 1u);
}

TEST(Packetizer, LowMcsMeansMorePackets) {
  Packetizer packetizer;
  const Frame frame = make_frame(2000000);
  EXPECT_GT(packetizer.split(frame, slowest_mcs()).size(),
            packetizer.split(frame, fastest_mcs()).size());
}

}  // namespace
}  // namespace movr::net
