#include <core/coverage.hpp>

#include <gtest/gtest.h>

#include <core/gain_control.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::deg_to_rad;

Scene make_scene(bool with_reflector) {
  Scene scene{channel::Room{5.0, 5.0},
              ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{2.5, 2.5}, 0.0}};
  if (with_reflector) {
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    reflector.front_end().steer_rx(
        scene.true_reflector_angle_to_ap(reflector));
    scene.ap().node().steer_toward(reflector.position());
    std::mt19937_64 rng{1};
    GainController::run(reflector.front_end(), scene.reflector_input(reflector),
                        rng);
  }
  return scene;
}

TEST(Coverage, GridDimensions) {
  Scene scene = make_scene(false);
  const auto map = compute_coverage(scene, 0.5, 0.5);
  EXPECT_EQ(map.cells_x, 9);
  EXPECT_EQ(map.cells_y, 9);
  EXPECT_EQ(map.cells.size(), 81u);
}

TEST(Coverage, DirectCoversOpenRoom) {
  Scene scene = make_scene(false);
  const auto map = compute_coverage(scene, 0.5);
  EXPECT_GT(map.covered_fraction(rf::Decibels{19.0}), 0.9);
  // No reflectors: the via layer is empty.
  EXPECT_EQ(map.reflector_covered_fraction(rf::Decibels{19.0}), 0.0);
  for (const auto& cell : map.cells) {
    EXPECT_EQ(cell.best_reflector, -1);
  }
}

TEST(Coverage, ReflectorAddsResilientLayer) {
  Scene scene = make_scene(true);
  const auto map = compute_coverage(scene, 0.5);
  // A good chunk of the room is reachable via the reflector alone.
  EXPECT_GT(map.reflector_covered_fraction(rf::Decibels{19.0}), 0.4);
}

TEST(Coverage, RestoresSceneState) {
  Scene scene = make_scene(true);
  const geom::Vec2 pos = scene.headset().node().position();
  const double orient = scene.headset().node().orientation();
  const double steer = scene.ap().node().array().steering();
  compute_coverage(scene, 0.5);
  EXPECT_EQ(scene.headset().node().position(), pos);
  EXPECT_EQ(scene.headset().node().orientation(), orient);
  EXPECT_EQ(scene.ap().node().array().steering(), steer);
}

TEST(Coverage, RenderShape) {
  Scene scene = make_scene(true);
  const auto map = compute_coverage(scene, 0.5);
  const std::string art = render_coverage(map, rf::Decibels{19.0});
  // cells_y lines of cells_x characters.
  std::size_t lines = 0;
  std::size_t line_length = 0;
  for (const char c : art) {
    if (c == '\n') {
      ++lines;
      EXPECT_EQ(line_length, static_cast<std::size_t>(map.cells_x));
      line_length = 0;
    } else {
      EXPECT_TRUE(c == '#' || c == '+' || c == '.') << c;
      ++line_length;
    }
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(map.cells_y));
  // With a far-corner reflector the map contains all three glyphs... at
  // least direct coverage must appear.
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Coverage, ObstaclesCarveHoles) {
  Scene scene = make_scene(false);
  const auto before = compute_coverage(scene, 0.5);
  scene.room().add_obstacle(
      {geom::Circle{{2.5, 2.5}, 0.5}, channel::kFurniture, "pillar"});
  const auto after = compute_coverage(scene, 0.5);
  EXPECT_LT(after.covered_fraction(rf::Decibels{19.0}),
            before.covered_fraction(rf::Decibels{19.0}));
}

}  // namespace
}  // namespace movr::core
