// Integration tests for the predictive link-control tier: forecast-driven
// proactive handover, speculative dual-path reception, and — the point —
// misprediction containment under garbage pose input.
#include <gtest/gtest.h>

#include <algorithm>

#include <core/gain_control.hpp>
#include <geom/angle.hpp>
#include <sim/fault_injector.hpp>
#include <vr/fault_scenarios.hpp>
#include <vr/motion.hpp>
#include <vr/predictive.hpp>
#include <vr/session.hpp>

namespace movr::vr {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;
using namespace std::chrono_literals;

/// Empty office, AP in the corner, a person standing on the shadow line,
/// one calibrated reflector on the far wall.
struct World {
  core::Scene scene;
  core::MovrReflector& reflector;

  explicit World(Vec2 headset_start)
      : scene{channel::Room{5.0, 5.0},
              core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              core::HeadsetRadio{headset_start, 0.0}},
        reflector{scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0))} {
    scene.ap().node().steer_toward(scene.headset().node().position());
    scene.headset().node().face_toward(scene.ap().node().position());
    reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        scene.true_reflector_angle_to_headset(reflector));
    scene.ap().node().steer_toward(reflector.position());
    std::mt19937_64 rng{5};
    core::GainController::run(reflector.front_end(),
                              scene.reflector_input(reflector), rng);
    scene.ap().node().steer_toward(scene.headset().node().position());
  }
};

/// The standing person whose shadow the pacing headset crosses.
BlockageScript standing_person(sim::Duration duration) {
  BlockageEvent person;
  person.kind = BlockageEvent::Kind::kPersonCrossing;
  person.start = sim::TimePoint{};
  person.duration = duration;
  person.path_from = {1.7, 1.3};
  person.path_to = {1.7, 1.3};
  return BlockageScript{std::vector<BlockageEvent>{person}};
}

/// Pacing line perpendicular to the AP->person ray through {3.03, 2.22}.
PacingMotion crossing_motion() {
  const Vec2 a{3.69, 1.28};
  const Vec2 b{2.37, 3.16};
  PacingMotion::Config config;
  config.speed_mps = 1.2;
  config.pause = 200ms;
  return PacingMotion{a, b, config};
}

Session::Config transport_config(sim::Duration duration,
                                 const sim::FaultInjector* faults = nullptr) {
  Session::Config config;
  config.duration = duration;
  config.faults = faults;
  net::TransportConfig transport;
  transport.source.target_mbps = 800.0;
  transport.ack_delay = std::chrono::microseconds{500};
  transport.arq.window = 16;
  transport.adaptive_fec = true;
  config.transport = transport;
  return config;
}

TEST(PredictiveIntegration, ForecastsAndHandsOverBeforeBlockage) {
  World world{{3.69, 1.28}};
  sim::Simulator simulator;
  PredictiveMovrStrategy strategy{simulator, world.scene, std::mt19937_64{3}};
  PacingMotion motion = crossing_motion();
  const auto duration = sim::from_seconds(4.0);
  const auto script = standing_person(duration);
  Session session{simulator,        world.scene, strategy,
                  &motion,          &script,     transport_config(duration)};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.predictive.has_value());
  const PredictiveLinkStats& p = *report.predictive;
  // The pacing trajectory crosses the shadow: windows were forecast, the
  // proactive path acted, and none of it was a false alarm.
  EXPECT_GT(p.risk_windows, 0);
  EXPECT_GT(p.proactive_handovers, 0);
  EXPECT_EQ(p.mispredictions, 0);
  EXPECT_EQ(p.chaos_garbled, 0);
  // Speculation actually flew packets on the alternate beam.
  ASSERT_TRUE(report.transport.has_value());
  EXPECT_GT(report.transport->speculative_enqueued, 0u);
  EXPECT_TRUE(report.transport->conserved());
}

TEST(PredictiveIntegration, PoseBiasDriftIsContained) {
  // The misprediction fault: the tracking system's pose estimate drifts
  // diagonally up to 1.5 m off truth, feeding the forecaster garbage
  // trajectories for most of the session. Containment means (a) the
  // proactive-handover budget holds — bounded thrash, (b) the extended
  // ledger (speculative buckets included) still closes, (c) the session
  // is no worse than a purely reactive one in the same world — garbage
  // predictions must degrade to reactive behavior, never below it.
  const auto duration = sim::from_seconds(4.0);
  const auto script = standing_person(duration);

  // Reactive baseline: same world, motion, blocker, transport seeds — and
  // the same fault *window*. The session stacks fault_extra_loss while any
  // fault is active, so the baseline gets a no-op window with identical
  // timing; the arms then differ only in what the drifting pose does to
  // the predictive tier.
  std::uint64_t reactive_glitched = 0;
  {
    World world{{3.69, 1.28}};
    sim::Simulator simulator;
    MovrStrategy strategy{simulator, world.scene, std::mt19937_64{3}};
    PacingMotion motion = crossing_motion();
    sim::FaultInjector faults{simulator};
    faults.inject("pose_bias_drift_shadow", sim::TimePoint{500ms},
                  sim::from_seconds(3.0), [] {});
    Session session{simulator, world.scene, strategy, &motion, &script,
                    transport_config(duration, &faults)};
    reactive_glitched = session.run().glitched_frames;
  }

  World world{{3.69, 1.28}};
  sim::Simulator simulator;
  PredictiveMovrStrategy strategy{simulator, world.scene, std::mt19937_64{3}};
  PacingMotion motion = crossing_motion();

  sim::FaultInjector faults{simulator};
  add_pose_bias_drift(faults, strategy, sim::TimePoint{500ms},
                      /*duration=*/sim::from_seconds(3.0),
                      /*peak_bias_m=*/1.5, /*tick=*/50ms);

  Session session{simulator, world.scene, strategy, &motion, &script,
                  transport_config(duration, &faults)};

  // The extended ledger must close at every 20 ms check, not just at the
  // end — speculative copies resolve atomically with their primary.
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  for (sim::TimePoint t{20ms}; t < sim::TimePoint{duration}; t += 20ms) {
    simulator.at(t, [&checks, &violations, &session] {
      ++checks;
      if (!session.transport()->ledger_closes()) {
        ++violations;
      }
    });
  }
  const QoeReport report = session.run();

  EXPECT_GT(checks, 0u);
  EXPECT_EQ(violations, 0u);
  ASSERT_TRUE(report.transport.has_value());
  EXPECT_TRUE(report.transport->conserved());

  ASSERT_TRUE(report.predictive.has_value());
  const PredictiveLinkStats& p = *report.predictive;
  // Bounded thrash: overlapping windows merge (budget 1 per contiguous
  // period) and the 300 ms cooldown spaces periods, so a 4 s session
  // cannot see more than ~13 proactive handovers even with the forecaster
  // fed garbage every frame.
  EXPECT_LE(p.proactive_handovers, 13);
  // Containment: drifted forecasts cost at most a small epsilon over the
  // reactive baseline (the same epsilon the acceptance bench enforces).
  EXPECT_LE(report.glitched_frames,
            reactive_glitched + std::max<std::uint64_t>(5, report.frames / 50));
}

TEST(PredictiveIntegration, ChaosForecasterIsContained) {
  // Same containment property under the other garbage source: a forecaster
  // whose every answer is inverted (chaos_rate 1.0).
  World world{{3.69, 1.28}};
  sim::Simulator simulator;
  PredictiveMovrStrategy::Config config;
  config.forecaster.chaos_rate = 1.0;
  PredictiveMovrStrategy strategy{simulator, world.scene, std::mt19937_64{3},
                                  config};
  PacingMotion motion = crossing_motion();
  const auto duration = sim::from_seconds(4.0);
  const auto script = standing_person(duration);
  Session session{simulator,        world.scene, strategy,
                  &motion,          &script,     transport_config(duration)};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.predictive.has_value());
  const PredictiveLinkStats& p = *report.predictive;
  EXPECT_GT(p.chaos_garbled, 0);
  EXPECT_LE(p.proactive_handovers, 13);
  ASSERT_TRUE(report.transport.has_value());
  EXPECT_TRUE(report.transport->conserved());
  EXPECT_LT(report.glitched_frames, report.frames / 10);
}

TEST(PredictiveIntegration, ReactiveStrategyReportsNoPredictiveStats) {
  World world{{3.69, 1.28}};
  sim::Simulator simulator;
  MovrStrategy strategy{simulator, world.scene, std::mt19937_64{3}};
  PacingMotion motion = crossing_motion();
  const auto duration = sim::from_seconds(1.0);
  const auto script = standing_person(duration);
  Session session{simulator,        world.scene, strategy,
                  &motion,          &script,     transport_config(duration)};
  const QoeReport report = session.run();
  EXPECT_FALSE(report.predictive.has_value());
  ASSERT_TRUE(report.transport.has_value());
  // No speculation ever armed: the speculative ledger buckets stay zero.
  EXPECT_EQ(report.transport->speculative_enqueued, 0u);
  EXPECT_EQ(report.transport->speculative_dups, 0u);
}

}  // namespace
}  // namespace movr::vr
