#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include <channel/coherence.hpp>
#include <geom/angle.hpp>
#include <phy/airtime.hpp>
#include <sim/trace.hpp>
#include <vr/requirements.hpp>

namespace movr {
namespace {

TEST(Airtime, GoodputBelowPhyRate) {
  const phy::AirtimeConfig config;
  for (const phy::McsEntry& mcs : phy::mcs_table()) {
    const double goodput = phy::goodput_mbps(mcs, config);
    EXPECT_LT(goodput, mcs.rate_mbps) << "MCS " << mcs.index;
    EXPECT_GT(goodput, 0.0) << "MCS " << mcs.index;
  }
}

TEST(Airtime, AggregationKeepsEfficiencyHigh) {
  // With 128 kB A-MPDUs the top MCS keeps >90% of its PHY rate...
  const phy::AirtimeConfig big;
  const phy::McsEntry& top = phy::mcs_table().back();
  EXPECT_GT(phy::goodput_mbps(top, big) / top.rate_mbps, 0.90);
  // ...while 4 kB PPDUs burn most of the air in preamble + ack at 6.7 Gb/s.
  phy::AirtimeConfig small = big;
  small.ampdu_bytes = 4096.0;
  EXPECT_LT(phy::goodput_mbps(top, small) / top.rate_mbps, 0.60);
}

TEST(Airtime, ViveStreamActuallyFits) {
  // The load-bearing check: the Vive's raw stream fits the top MCS's
  // *goodput*, not just its PHY rate.
  const phy::AirtimeConfig config;
  const phy::McsEntry* needed =
      phy::mcs_for_goodput(vr::kHtcVive.required_mbps(), config);
  ASSERT_NE(needed, nullptr);
  EXPECT_LE(needed->min_snr.value(), 25.0);  // reachable at paper-LOS SNR
}

TEST(Airtime, PerScalesGoodput) {
  phy::AirtimeConfig clean;
  clean.packet_error_rate = 0.0;
  phy::AirtimeConfig lossy = clean;
  lossy.packet_error_rate = 0.1;
  const phy::McsEntry& mcs = phy::mcs_table()[20];
  EXPECT_NEAR(phy::goodput_mbps(mcs, lossy),
              phy::goodput_mbps(mcs, clean) * 0.9, 1.0);
}

TEST(Airtime, PpduAirtimeScalesWithRate) {
  const phy::AirtimeConfig config;
  const auto slow = phy::ppdu_airtime(phy::mcs_table()[1], config);
  const auto fast = phy::ppdu_airtime(phy::mcs_table()[24], config);
  EXPECT_GT(slow, fast);
}

TEST(Coherence, DopplerAtWalkingSpeed) {
  // 1 m/s at 24 GHz: ~80 Hz; at 60 GHz: ~200 Hz.
  EXPECT_NEAR(channel::doppler_shift(1.0, 24.0e9), 80.0, 1.0);
  EXPECT_NEAR(channel::doppler_shift(1.0, 60.0e9), 200.0, 3.0);
}

TEST(Coherence, CoherenceTimeMilliseconds) {
  const double tc = channel::coherence_time(1.0, 24.0e9);
  EXPECT_GT(tc, 1e-3);
  EXPECT_LT(tc, 20e-3);
  EXPECT_GT(channel::coherence_time(0.0, 24.0e9), 1e6);
}

TEST(Coherence, BeamCoherenceDistanceIsGenerous) {
  // A 10-degree beam at 3 m: the player can move ~0.5 m before leaving it —
  // many frames at walking speed, which is what makes per-frame retargeting
  // sufficient.
  const double d = channel::beam_coherence_distance(
      movr::geom::deg_to_rad(10.0), 3.0);
  EXPECT_GT(d, 0.4);
  EXPECT_LT(d, 0.7);
}

TEST(Trace, WritesCsv) {
  const auto path =
      (std::filesystem::temp_directory_path() / "movr_trace_test.csv")
          .string();
  {
    sim::TraceWriter writer{path, {"x", "y"}};
    writer.row({1.0, 2.0});
    writer.row({3.0, 4.5});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4.5");
  std::filesystem::remove(path);
}

TEST(Trace, LabelledRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "movr_trace_test2.csv")
          .string();
  {
    sim::TraceWriter writer{path, {"scenario", "snr"}};
    writer.row("los", {25.0});
  }
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "los,25");
  std::filesystem::remove(path);
}

TEST(Trace, ColumnMismatchThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "movr_trace_test3.csv")
          .string();
  sim::TraceWriter writer{path, {"a", "b"}};
  EXPECT_THROW(writer.row({1.0}), std::invalid_argument);
  EXPECT_THROW(writer.row("x", {1.0, 2.0}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Trace, UnwritablePathThrows) {
  EXPECT_THROW(sim::TraceWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace movr
