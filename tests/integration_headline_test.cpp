// The headline regression: under one identical blocked world, the strategy
// ranking the paper's argument rests on must hold —
//   MoVR < dual-antenna < direct-tracked < fixed-beam   (glitch fraction)
// and the NLOS-sweep baseline must not rescue the VR rate.
#include <gtest/gtest.h>

#include <baseline/dual_antenna.hpp>
#include <baseline/strategies.hpp>
#include <core/gain_control.hpp>
#include <geom/angle.hpp>
#include <vr/vr.hpp>

namespace movr {
namespace {

using geom::deg_to_rad;

core::Scene make_scene(bool with_reflector) {
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.2}, 0.0}};
  if (with_reflector) {
    auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
    reflector.front_end().steer_rx(
        scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        scene.true_reflector_angle_to_headset(reflector));
    scene.ap().node().steer_toward(reflector.position());
    std::mt19937_64 rng{2};
    core::GainController::run(reflector.front_end(),
                              scene.reflector_input(reflector), rng);
  }
  return scene;
}

vr::BlockageScript script() {
  // Hands up half the time, plus one head turn.
  auto events = vr::periodic_hand_raises(sim::from_seconds(0.4),
                                         sim::from_seconds(0.6),
                                         sim::from_seconds(1.2),
                                         sim::from_seconds(4.0))
                    .events();
  vr::BlockageEvent head;
  head.kind = vr::BlockageEvent::Kind::kHead;
  head.start = sim::from_seconds(2.6);
  head.duration = sim::from_seconds(0.5);
  events.push_back(head);
  return vr::BlockageScript{std::move(events)};
}

double run_glitch_fraction(vr::LinkStrategy& strategy, core::Scene& scene,
                           sim::Simulator& simulator) {
  const auto s = script();
  vr::Session::Config config;
  config.duration = sim::from_seconds(4.0);
  vr::Session session{simulator, scene, strategy, nullptr, &s, config};
  return session.run().glitch_fraction();
}

TEST(Headline, StrategyOrderingHolds) {
  double movr = 0.0;
  double dual = 0.0;
  double direct = 0.0;
  double fixed = 0.0;
  {
    auto scene = make_scene(true);
    sim::Simulator simulator;
    vr::MovrStrategy strategy{simulator, scene, std::mt19937_64{3}};
    movr = run_glitch_fraction(strategy, scene, simulator);
  }
  {
    auto scene = make_scene(false);
    sim::Simulator simulator;
    baseline::DualAntennaStrategy strategy{scene};
    dual = run_glitch_fraction(strategy, scene, simulator);
  }
  {
    auto scene = make_scene(false);
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    direct = run_glitch_fraction(strategy, scene, simulator);
  }
  {
    auto scene = make_scene(false);
    sim::Simulator simulator;
    baseline::FixedBeamStrategy strategy{scene};
    // Break the fixed beam by moving the player after setup.
    scene.headset().node().set_position({2.2, 3.4});
    fixed = run_glitch_fraction(strategy, scene, simulator);
  }

  EXPECT_LT(movr, 0.15);
  EXPECT_LT(movr, dual);
  // Dual antennas rescue the head turn but not the hand raises.
  EXPECT_LE(dual, direct + 1e-9);
  EXPECT_GT(direct, 0.3);
  EXPECT_GT(fixed, 0.9);
}

TEST(Headline, NlosSweepCannotRescueVrRate) {
  auto scene = make_scene(false);
  sim::Simulator simulator;
  baseline::NlosSweepStrategy strategy{simulator, scene};
  // Permanent hand blockage.
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
  strategy.on_frame();
  simulator.run();  // let the sweep settle on the best NLOS beam
  const double snr = strategy.on_frame().value();
  EXPECT_LT(phy::rate_mbps(rf::Decibels{snr}), vr::kHtcVive.required_mbps());
}

}  // namespace
}  // namespace movr
