#include <core/reflector.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::core {
namespace {

using movr::geom::deg_to_rad;

TEST(Reflector, LocalGlobalRoundTrip) {
  const MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  for (double local = 0.3; local < 3.0; local += 0.3) {
    EXPECT_NEAR(movr::geom::angular_distance(
                    reflector.to_local(reflector.to_global(local)), local),
                0.0, 1e-9);
  }
}

TEST(Reflector, BoresightMapsToLocal90) {
  const MovrReflector reflector{{1.0, 1.0}, deg_to_rad(30.0)};
  EXPECT_NEAR(reflector.to_local(deg_to_rad(30.0)), deg_to_rad(90.0), 1e-12);
}

TEST(Reflector, HandlesRxAngleMessage) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.handle({"rx_angle", 1.2, 0});
  EXPECT_NEAR(reflector.front_end().rx_array().steering(), 1.2, 1e-12);
}

TEST(Reflector, HandlesTxAngleMessage) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.handle({"tx_angle", 2.1, 0});
  EXPECT_NEAR(reflector.front_end().tx_array().steering(), 2.1, 1e-12);
}

TEST(Reflector, HandlesBothAnglesMessage) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.handle({"both_angles", 1.7, 0});
  EXPECT_NEAR(reflector.front_end().rx_array().steering(), 1.7, 1e-12);
  EXPECT_NEAR(reflector.front_end().tx_array().steering(), 1.7, 1e-12);
}

TEST(Reflector, HandlesGainCodeMessage) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.handle({"gain_code", 128.0, 0});
  EXPECT_EQ(reflector.front_end().gain_code(), 128u);
  // A negative gain is firmware-rejected (a corrupted payload must never
  // wrap into a register write), leaving the register untouched.
  reflector.handle({"gain_code", -5.0, 0});
  EXPECT_EQ(reflector.front_end().gain_code(), 128u);
  EXPECT_EQ(reflector.rejected_messages(), 1u);
  // Overrange clamps to the DAC maximum.
  reflector.handle({"gain_code", 9999.0, 0});
  EXPECT_EQ(reflector.front_end().gain_code(),
            reflector.front_end().max_gain_code());
}

TEST(Reflector, HandlesModulateMessage) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  EXPECT_FALSE(reflector.front_end().modulating());
  reflector.handle({"modulate", 1.0, 0});
  EXPECT_TRUE(reflector.front_end().modulating());
  reflector.handle({"modulate", 0.0, 0});
  EXPECT_FALSE(reflector.front_end().modulating());
}

TEST(Reflector, UnknownTopicsCountedNotFatal) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.handle({"set_flux_capacitor", 88.0, 0});
  reflector.handle({"", 0.0, 0});
  EXPECT_EQ(reflector.unknown_messages(), 2u);
  // State untouched.
  EXPECT_EQ(reflector.front_end().gain_code(), 0u);
}

TEST(Reflector, ControlNameSettable) {
  MovrReflector reflector{{0.0, 0.0}, 0.0};
  reflector.set_control_name("wall-unit-3");
  EXPECT_EQ(reflector.control_name(), "wall-unit-3");
}

}  // namespace
}  // namespace movr::core
