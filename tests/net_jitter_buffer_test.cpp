#include <net/jitter_buffer.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

using namespace std::chrono_literals;

Packet make_packet(std::uint64_t frame_id, std::uint32_t seq,
                   std::uint32_t frame_packets,
                   sim::TimePoint capture = sim::from_seconds(1.0)) {
  Packet p;
  p.frame_id = frame_id;
  p.seq = seq;
  p.frame_packets = frame_packets;
  p.payload_bytes = 1000;
  p.capture = capture;
  p.deadline = capture + std::chrono::milliseconds{10};
  return p;
}

TEST(JitterBuffer, AssemblesOutOfOrderAndReleasesOnTime) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 2, 3, t0), t0 + 1ms));
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 0, 3, t0), t0 + 2ms));
  EXPECT_FALSE(buffer.is_complete(0));
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 1, 3, t0), t0 + 3ms));
  EXPECT_TRUE(buffer.is_complete(0));
  ASSERT_TRUE(buffer.completion_latency(0).has_value());
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{3ms});

  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_EQ(buffer.counters().released_on_time, 1u);
  EXPECT_EQ(buffer.release_log(), (std::vector<std::uint64_t>{0}));
}

TEST(JitterBuffer, DuplicatesAreAbsorbedOnce) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 1ms));
  EXPECT_FALSE(buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 2ms));
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 3ms));
  EXPECT_FALSE(buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 4ms));
  EXPECT_EQ(buffer.counters().duplicates, 2u);
  EXPECT_EQ(buffer.counters().packets_received, 2u);
  EXPECT_TRUE(buffer.is_complete(0));
  // Completion latency dates to the first copy that completed the frame.
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{3ms});
}

TEST(JitterBuffer, IncompleteFrameMissesItsDeadline) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms), JitterBuffer::Deadline::kMiss);
  EXPECT_EQ(buffer.counters().deadline_misses, 1u);
  // The straggler arrives afterwards: a late completion, never released.
  buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 15ms);
  EXPECT_TRUE(buffer.is_complete(0));
  EXPECT_EQ(buffer.counters().late_completions, 1u);
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{15ms});
  EXPECT_TRUE(buffer.release_log().empty());
}

TEST(JitterBuffer, DeadlineResolvesExactlyOnce) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(0, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kAlreadyResolved);
  EXPECT_EQ(buffer.counters().released_on_time, 1u);
}

TEST(JitterBuffer, OutOfOrderReleaseThrows) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(2, 0, 1, t0), t0 + 1ms);
  buffer.on_packet(make_packet(1, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(2, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_THROW(buffer.on_deadline(1, t0 + 11ms), std::logic_error);
}

TEST(JitterBuffer, ReleaseLogIsStrictlyIncreasing) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  for (std::uint64_t id = 0; id < 20; id += 2) {
    buffer.on_packet(make_packet(id, 0, 1, t0 + id * 11ms), t0 + id * 11ms);
    EXPECT_EQ(buffer.on_deadline(id, t0 + id * 11ms + 10ms),
              JitterBuffer::Deadline::kReleasedOnTime);
  }
  const auto& log = buffer.release_log();
  ASSERT_EQ(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1], log[i]);
  }
}

}  // namespace
}  // namespace movr::net
