#include <net/jitter_buffer.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

using namespace std::chrono_literals;

Packet make_packet(std::uint64_t frame_id, std::uint32_t seq,
                   std::uint32_t frame_packets,
                   sim::TimePoint capture = sim::from_seconds(1.0)) {
  Packet p;
  p.frame_id = frame_id;
  p.seq = seq;
  p.frame_packets = frame_packets;
  p.payload_bytes = 1000;
  p.capture = capture;
  p.deadline = capture + std::chrono::milliseconds{10};
  return p;
}

TEST(JitterBuffer, AssemblesOutOfOrderAndReleasesOnTime) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 2, 3, t0), t0 + 1ms).fresh);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 0, 3, t0), t0 + 2ms).fresh);
  EXPECT_FALSE(buffer.is_complete(0));
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 1, 3, t0), t0 + 3ms).fresh);
  EXPECT_TRUE(buffer.is_complete(0));
  ASSERT_TRUE(buffer.completion_latency(0).has_value());
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{3ms});

  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_EQ(buffer.counters().released_on_time, 1u);
  EXPECT_EQ(buffer.release_log(), (std::vector<std::uint64_t>{0}));
}

TEST(JitterBuffer, DuplicatesAreAbsorbedOnce) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 1ms).fresh);
  EXPECT_FALSE(buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 2ms).fresh);
  EXPECT_TRUE(buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 3ms).fresh);
  EXPECT_FALSE(buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 4ms).fresh);
  EXPECT_EQ(buffer.counters().duplicates, 2u);
  EXPECT_EQ(buffer.counters().packets_received, 2u);
  EXPECT_TRUE(buffer.is_complete(0));
  // Completion latency dates to the first copy that completed the frame.
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{3ms});
}

TEST(JitterBuffer, IncompleteFrameMissesItsDeadline) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(0, 0, 2, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms), JitterBuffer::Deadline::kMiss);
  EXPECT_EQ(buffer.counters().deadline_misses, 1u);
  // The straggler arrives afterwards: a late completion, never released.
  buffer.on_packet(make_packet(0, 1, 2, t0), t0 + 15ms);
  EXPECT_TRUE(buffer.is_complete(0));
  EXPECT_EQ(buffer.counters().late_completions, 1u);
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{15ms});
  EXPECT_TRUE(buffer.release_log().empty());
}

TEST(JitterBuffer, DeadlineResolvesExactlyOnce) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(0, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kAlreadyResolved);
  EXPECT_EQ(buffer.counters().released_on_time, 1u);
}

TEST(JitterBuffer, OutOfOrderReleaseThrows) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(2, 0, 1, t0), t0 + 1ms);
  buffer.on_packet(make_packet(1, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(2, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  EXPECT_THROW(buffer.on_deadline(1, t0 + 11ms), std::logic_error);
}

// --- FEC recovery -----------------------------------------------------
// Framing per net/fec.hpp: data seq i is in group i % groups; a parity
// MPDU covers one whole group and rebuilds any single missing member.

Packet make_fec_packet(std::uint64_t frame_id, std::uint32_t seq,
                       std::uint32_t frame_packets, std::uint32_t groups,
                       bool parity = false) {
  Packet p = make_packet(frame_id, seq, frame_packets);
  p.fec_groups = groups;
  p.fec_group = parity ? seq - frame_packets : seq % groups;
  p.parity = parity;
  return p;
}

TEST(JitterBuffer, ParityRecoversSingleMissingGroupMember) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  // 4 data MPDUs in 2 groups: {0, 2} and {1, 3}. Seq 2 never arrives.
  EXPECT_TRUE(buffer.on_packet(make_fec_packet(0, 0, 4, 2), t0 + 1ms).fresh);
  EXPECT_TRUE(buffer.on_packet(make_fec_packet(0, 1, 4, 2), t0 + 2ms).fresh);
  EXPECT_TRUE(buffer.on_packet(make_fec_packet(0, 3, 4, 2), t0 + 3ms).fresh);
  EXPECT_FALSE(buffer.is_complete(0));

  // Parity of group 0 arrives: the lone missing member (seq 2) rebuilds.
  const auto arrival =
      buffer.on_packet(make_fec_packet(0, 4, 4, 2, true), t0 + 4ms);
  EXPECT_TRUE(arrival.fresh);
  ASSERT_TRUE(arrival.recovered.has_value());
  EXPECT_EQ(*arrival.recovered, 2u);
  EXPECT_TRUE(buffer.is_complete(0));
  EXPECT_EQ(buffer.counters().packets_recovered, 1u);
  EXPECT_EQ(buffer.counters().parity_received, 1u);
  EXPECT_EQ(buffer.counters().packets_received, 4u);  // 3 data + 1 parity
  EXPECT_EQ(*buffer.completion_latency(0), sim::Duration{4ms});
}

TEST(JitterBuffer, DataArrivalTriggersRecoveryWhenParityWasFirst) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  // Parity of group 0 (members {0, 2}) arrives before any data.
  EXPECT_FALSE(buffer.on_packet(make_fec_packet(0, 4, 4, 2, true), t0 + 1ms)
                   .recovered.has_value());
  // Seq 0 lands: group 0 is down to one missing member -> seq 2 rebuilds.
  const auto arrival = buffer.on_packet(make_fec_packet(0, 0, 4, 2), t0 + 2ms);
  ASSERT_TRUE(arrival.recovered.has_value());
  EXPECT_EQ(*arrival.recovered, 2u);
  EXPECT_FALSE(buffer.is_complete(0));  // group 1 still empty
}

TEST(JitterBuffer, ParityCannotRecoverTwoMissingMembers) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  // Group 0 of a 6-packet frame has members {0, 2, 4}; two are missing.
  EXPECT_TRUE(buffer.on_packet(make_fec_packet(0, 0, 6, 2), t0 + 1ms).fresh);
  const auto arrival =
      buffer.on_packet(make_fec_packet(0, 6, 6, 2, true), t0 + 2ms);
  EXPECT_TRUE(arrival.fresh);
  EXPECT_FALSE(arrival.recovered.has_value());
  EXPECT_EQ(buffer.counters().packets_recovered, 0u);
}

TEST(JitterBuffer, AirCopyOfRecoveredPacketCountsAsDuplicate) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  // 2 data MPDUs, 1 group; seq 1 rebuilds from parity...
  buffer.on_packet(make_fec_packet(0, 0, 2, 1), t0 + 1ms);
  const auto recovery =
      buffer.on_packet(make_fec_packet(0, 2, 2, 1, true), t0 + 2ms);
  ASSERT_TRUE(recovery.recovered.has_value());
  EXPECT_TRUE(buffer.is_complete(0));
  // ...so its late air copy is absorbed like any other duplicate.
  const auto dup = buffer.on_packet(make_fec_packet(0, 1, 2, 1), t0 + 3ms);
  EXPECT_FALSE(dup.fresh);
  EXPECT_EQ(buffer.counters().duplicates, 1u);
}

TEST(JitterBuffer, DuplicateParityIsAbsorbed) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  EXPECT_TRUE(
      buffer.on_packet(make_fec_packet(0, 2, 2, 1, true), t0 + 1ms).fresh);
  EXPECT_FALSE(
      buffer.on_packet(make_fec_packet(0, 2, 2, 1, true), t0 + 2ms).fresh);
  EXPECT_EQ(buffer.counters().parity_received, 1u);
  EXPECT_EQ(buffer.counters().duplicates, 1u);
}

TEST(JitterBuffer, ResetClearsStateAndReleaseWatermark) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  buffer.on_packet(make_packet(5, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(5, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
  buffer.reset();
  EXPECT_EQ(buffer.counters().packets_received, 0u);
  EXPECT_TRUE(buffer.release_log().empty());
  // Frame ids restart below the old watermark without tripping the
  // release-order invariant.
  buffer.on_packet(make_packet(0, 0, 1, t0), t0 + 1ms);
  EXPECT_EQ(buffer.on_deadline(0, t0 + 10ms),
            JitterBuffer::Deadline::kReleasedOnTime);
}

TEST(JitterBuffer, ReleaseLogIsStrictlyIncreasing) {
  JitterBuffer buffer;
  const auto t0 = sim::from_seconds(1.0);
  for (std::uint64_t id = 0; id < 20; id += 2) {
    buffer.on_packet(make_packet(id, 0, 1, t0 + id * 11ms), t0 + id * 11ms);
    EXPECT_EQ(buffer.on_deadline(id, t0 + id * 11ms + 10ms),
              JitterBuffer::Deadline::kReleasedOnTime);
  }
  const auto& log = buffer.release_log();
  ASSERT_EQ(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1], log[i]);
  }
}

}  // namespace
}  // namespace movr::net
