#include <gtest/gtest.h>

#include <core/ap.hpp>
#include <core/headset.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::deg_to_rad;

TEST(ApRadio, MeasurementFloorIsNarrowband) {
  const ApRadio ap{{0.0, 0.0}, 0.0};
  // 1 MHz + NF 7: -174 + 60 + 7 = -107 dBm.
  EXPECT_NEAR(ap.measurement_floor().value(), -107.0, 0.1);
}

TEST(ApRadio, ResidualLeakageArithmetic) {
  ApRadio::Config config;
  config.tx_power = rf::DbmPower{0.0};
  config.self_isolation = rf::Decibels{30.0};
  config.filter_rejection = rf::Decibels{70.0};
  const ApRadio ap{{0.0, 0.0}, 0.0, config};
  EXPECT_NEAR(ap.residual_leakage().value(), -100.0, 1e-9);
}

TEST(ApRadio, StrongSidebandReadsNearTruth) {
  const ApRadio ap{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{1};
  double sum = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    sum += ap.measure_backscatter(rf::DbmPower{-60.0}, rng).value();
  }
  EXPECT_NEAR(sum / n, -60.0, 0.5);
}

TEST(ApRadio, NoSidebandReadsNearResidual) {
  const ApRadio ap{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{2};
  const double reading =
      ap.measure_backscatter(rf::DbmPower{}, rng).value();
  EXPECT_LT(reading, -95.0);
  EXPECT_GE(reading, -107.5);  // never below the detector floor
}

TEST(ApRadio, WeakSidebandBuriedUnderLeakage) {
  // A sideband 20 dB below the residual leakage is invisible: readings are
  // leakage-dominated and carry no angle information.
  const ApRadio ap{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{3};
  double with_signal = 0.0;
  double without = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    with_signal += ap.measure_backscatter(rf::DbmPower{-120.0}, rng).value();
    without += ap.measure_backscatter(rf::DbmPower{}, rng).value();
  }
  EXPECT_NEAR(with_signal / n, without / n, 0.2);
}

TEST(Headset, EstimateTracksTruth) {
  HeadsetRadio headset{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{4};
  double sum = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    sum += headset.observe(rf::Decibels{22.0}, rng).value();
  }
  EXPECT_NEAR(sum / n, 22.0, 0.2);
}

TEST(Headset, DegradationTriggerFiresOnDrop) {
  HeadsetRadio headset{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{5};
  for (int i = 0; i < 10; ++i) {
    headset.observe(rf::Decibels{25.0}, rng);
  }
  EXPECT_FALSE(headset.degraded());
  // SNR collapses (hand up): within the smoothing window the flag trips.
  for (int i = 0; i < 4; ++i) {
    headset.observe(rf::Decibels{9.0}, rng);
  }
  EXPECT_TRUE(headset.degraded());
}

TEST(Headset, HysteresisHoldsBetweenThresholds) {
  HeadsetRadio headset{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{6};
  for (int i = 0; i < 6; ++i) {
    headset.observe(rf::Decibels{9.0}, rng);
  }
  ASSERT_TRUE(headset.degraded());
  // Recovery to 21 dB: above degrade (20) but below recover (22): the flag
  // must hold (no flapping in the dead band).
  for (int i = 0; i < 20; ++i) {
    headset.observe(rf::Decibels{21.0}, rng);
  }
  EXPECT_TRUE(headset.degraded());
  // Full recovery clears it.
  for (int i = 0; i < 10; ++i) {
    headset.observe(rf::Decibels{26.0}, rng);
  }
  EXPECT_FALSE(headset.degraded());
}

TEST(Headset, SmoothedIsWindowAverage) {
  HeadsetRadio::Config config;
  config.smoothing_window = 3;
  config.estimation_symbols = 100000;  // nearly noiseless
  HeadsetRadio headset{{0.0, 0.0}, 0.0, config};
  std::mt19937_64 rng{7};
  headset.observe(rf::Decibels{10.0}, rng);
  headset.observe(rf::Decibels{20.0}, rng);
  headset.observe(rf::Decibels{30.0}, rng);
  EXPECT_NEAR(headset.smoothed().value(), 20.0, 0.2);
  // Window slides.
  headset.observe(rf::Decibels{30.0}, rng);
  EXPECT_NEAR(headset.smoothed().value(), 26.7, 0.3);
}

TEST(Headset, ResetClearsStateAndHistory) {
  HeadsetRadio headset{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{8};
  for (int i = 0; i < 6; ++i) {
    headset.observe(rf::Decibels{5.0}, rng);
  }
  ASSERT_TRUE(headset.degraded());
  headset.reset();
  EXPECT_FALSE(headset.degraded());
  EXPECT_EQ(headset.smoothed().value(), 0.0);
}

}  // namespace
}  // namespace movr::core
