#include <channel/room.hpp>

#include <random>
#include <string_view>

#include <channel/ray_tracer.hpp>

#include <gtest/gtest.h>

namespace movr::channel {
namespace {

TEST(Room, FourWallsClosedRectangle) {
  const Room room{5.0, 4.0};
  ASSERT_EQ(room.walls().size(), 4u);
  double perimeter = 0.0;
  for (const Wall& wall : room.walls()) {
    perimeter += wall.extent.length();
  }
  EXPECT_DOUBLE_EQ(perimeter, 18.0);
}

TEST(Room, RejectsBadDimensions) {
  EXPECT_THROW(Room(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(Room(5.0, -1.0), std::invalid_argument);
}

TEST(Room, ContainsInterior) {
  const Room room{5.0, 5.0};
  EXPECT_TRUE(room.contains({2.5, 2.5}));
  EXPECT_TRUE(room.contains({0.0, 0.0}));
  EXPECT_FALSE(room.contains({-0.1, 2.0}));
  EXPECT_FALSE(room.contains({5.1, 2.0}));
  EXPECT_FALSE(room.contains({2.0, 2.0}, 2.5));  // margin too big
}

TEST(Room, ObstacleManagement) {
  Room room{5.0, 5.0};
  EXPECT_TRUE(room.obstacles().empty());
  room.add_obstacle(make_person({1.0, 1.0}));
  room.add_obstacle(make_person({2.0, 2.0}));
  room.add_obstacle(make_hand({3.0, 3.0}, {1.0, 0.0}));
  EXPECT_EQ(room.obstacles().size(), 3u);
  room.remove_obstacles("person");
  EXPECT_EQ(room.obstacles().size(), 1u);
  EXPECT_EQ(room.obstacles().front().label, "hand");
  room.clear_obstacles();
  EXPECT_TRUE(room.obstacles().empty());
}

TEST(Room, SetWallMaterial) {
  Room room{5.0, 5.0};
  room.set_wall_material("north", kMetal);
  int metal_walls = 0;
  for (const Wall& wall : room.walls()) {
    if (std::string_view{wall.material.name} == "metal") {
      ++metal_walls;
      EXPECT_EQ(wall.label, "north");
    }
  }
  EXPECT_EQ(metal_walls, 1);
  EXPECT_THROW(room.set_wall_material("ceiling", kMetal),
               std::invalid_argument);
}

TEST(Room, BetterWallImprovesReflection) {
  // A metal north wall makes the north bounce ~9.5 dB stronger.
  Room drywall{5.0, 5.0};
  Room metal{5.0, 5.0};
  metal.set_wall_material("north", kMetal);
  const geom::Vec2 a{1.0, 2.0};
  const geom::Vec2 b{4.0, 2.0};
  const auto north_bounce_loss = [&](const Room& room) {
    const RayTracer tracer{room};
    for (const auto& path : tracer.trace(a, b)) {
      if (path.bounces == 1 && path.vertices[1].y > 4.9) {
        return path.loss.value();
      }
    }
    return -1.0;
  };
  EXPECT_NEAR(north_bounce_loss(drywall) - north_bounce_loss(metal), 9.5,
              1e-6);
}

TEST(Room, PaperOfficeHasFurniture) {
  const Room office = Room::paper_office();
  EXPECT_DOUBLE_EQ(office.width(), 5.0);
  EXPECT_DOUBLE_EQ(office.depth(), 5.0);
  EXPECT_GE(office.obstacles().size(), 2u);
}

TEST(Room, RandomInteriorPointRespectsMargin) {
  const Room room{5.0, 5.0};
  std::mt19937_64 rng{3};
  for (int i = 0; i < 200; ++i) {
    const geom::Vec2 p = room.random_interior_point(rng, 0.5);
    EXPECT_GE(p.x, 0.5);
    EXPECT_LE(p.x, 4.5);
    EXPECT_GE(p.y, 0.5);
    EXPECT_LE(p.y, 4.5);
  }
}

TEST(Room, RandomPointsDeterministicPerSeed) {
  const Room room{5.0, 5.0};
  std::mt19937_64 a{42};
  std::mt19937_64 b{42};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(room.random_interior_point(a), room.random_interior_point(b));
  }
}

}  // namespace
}  // namespace movr::channel
