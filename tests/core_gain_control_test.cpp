#include <core/gain_control.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <hw/stability.hpp>

namespace movr::core {
namespace {

using movr::geom::deg_to_rad;
using rf::DbmPower;

TEST(GainControl, LeavesLoopStable) {
  hw::ReflectorFrontEnd fe;
  fe.steer_rx(deg_to_rad(80.0));
  fe.steer_tx(deg_to_rad(100.0));
  std::mt19937_64 rng{1};
  const auto result = GainController::run(fe, DbmPower{-50.0}, rng);
  const auto state = fe.process(DbmPower{-50.0});
  EXPECT_TRUE(state.stable);
  EXPECT_FALSE(state.saturated);
}

TEST(GainControl, FinalGainBelowIsolation) {
  hw::ReflectorFrontEnd fe;
  fe.steer_rx(deg_to_rad(70.0));
  fe.steer_tx(deg_to_rad(120.0));
  std::mt19937_64 rng{2};
  const auto result = GainController::run(fe, DbmPower{-50.0}, rng);
  const auto state = fe.process(DbmPower{-50.0});
  EXPECT_LT(result.final_gain.value(), state.isolation.value());
}

TEST(GainControl, TraceIsRampUpward) {
  hw::ReflectorFrontEnd fe;
  std::mt19937_64 rng{3};
  const auto result = GainController::run(fe, DbmPower{-50.0}, rng);
  ASSERT_GT(result.trace.size(), 2u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GT(result.trace[i].code, result.trace[i - 1].code);
    EXPECT_GE(result.trace[i].gain_db, result.trace[i - 1].gain_db);
  }
}

TEST(GainControl, DurationAccountsForSteps) {
  hw::ReflectorFrontEnd fe;
  std::mt19937_64 rng{4};
  GainController::Config config;
  const auto result = GainController::run(fe, DbmPower{-50.0}, rng, config);
  const auto per_step =
      config.step_settle + config.sample_time * config.samples_per_step;
  EXPECT_EQ(result.duration,
            per_step * static_cast<std::int64_t>(result.trace.size()));
  // The whole ramp fits in ~100-200 ms (Section 6 latency budget).
  EXPECT_LT(sim::to_milliseconds(result.duration), 300.0);
}

TEST(GainControl, WeakInputReachesMaxGain) {
  // With a very weak input the amplifier cannot compress and high isolation
  // beams keep the loop stable: the ramp should top out.
  hw::ReflectorFrontEnd fe;
  fe.steer_rx(deg_to_rad(90.0));
  fe.steer_tx(deg_to_rad(90.0));
  std::mt19937_64 rng{5};
  const auto result = GainController::run(fe, DbmPower{-90.0}, rng);
  const auto state = fe.process(DbmPower{-90.0});
  if (state.isolation.value() > fe.config().amplifier.max_gain.value() + 2.0) {
    EXPECT_FALSE(result.knee_found);
    EXPECT_EQ(result.final_code, fe.max_gain_code());
  }
}

// Property: across the whole beam grid the controller never leaves the
// front end unstable or compressed — the paper's §4.2 guarantee.
class GainControlGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GainControlGrid, SafeEverywhere) {
  const auto [tx_deg, rx_deg] = GetParam();
  hw::ReflectorFrontEnd fe;
  fe.steer_tx(deg_to_rad(tx_deg));
  fe.steer_rx(deg_to_rad(rx_deg));
  std::mt19937_64 rng{static_cast<std::uint64_t>(tx_deg * 1000.0 + rx_deg)};
  const auto result = GainController::run(fe, DbmPower{-48.0}, rng);
  const auto state = fe.process(DbmPower{-48.0});
  EXPECT_TRUE(state.stable) << "tx " << tx_deg << " rx " << rx_deg;
  EXPECT_FALSE(state.saturated) << "tx " << tx_deg << " rx " << rx_deg;
  EXPECT_GT(result.final_gain.value(), 10.0);  // and it is not uselessly low
}

INSTANTIATE_TEST_SUITE_P(
    BeamGrid, GainControlGrid,
    ::testing::Combine(::testing::Values(45.0, 65.0, 90.0, 115.0, 135.0),
                       ::testing::Values(45.0, 65.0, 90.0, 115.0, 135.0)));

TEST(GainControl, AdaptsToLeakage) {
  // Two beam configurations with different isolation lead to different
  // final gains: the controller actually adapts (Fig. 7's motivation).
  // A leaky build guarantees the isolation floor bites within the
  // amplifier's range at some of these beam pairs.
  hw::ReflectorFrontEnd::Config config;
  config.leakage.board_coupling = rf::Decibels{-14.0};
  std::mt19937_64 rng{7};
  std::vector<double> final_gains;
  for (const auto& [tx, rx] : {std::pair{45.0, 50.0}, std::pair{90.0, 90.0},
                               std::pair{135.0, 60.0}}) {
    hw::ReflectorFrontEnd fe{config};
    fe.steer_tx(deg_to_rad(tx));
    fe.steer_rx(deg_to_rad(rx));
    final_gains.push_back(
        GainController::run(fe, DbmPower{-48.0}, rng).final_gain.value());
  }
  const auto [lo, hi] =
      std::minmax_element(final_gains.begin(), final_gains.end());
  EXPECT_GT(*hi - *lo, 0.5);
}

}  // namespace
}  // namespace movr::core
