// Global operator new/delete replacement for the net test binary — see
// net_alloc_hook.hpp. Counting is off by default, so the hook is inert for
// every other test in the binary; the sanitizers still see every underlying
// malloc/free.
#include "net_alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace movr::testing {
namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_count{0};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_alloc(std::size_t size) {
  note_alloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  return p;
}

void* checked_aligned_alloc(std::size_t size, std::size_t alignment) {
  note_alloc();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  return p;
}

}  // namespace

void alloc_counter_start() {
  g_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
}

std::uint64_t alloc_counter_stop() {
  g_counting.store(false, std::memory_order_relaxed);
  return g_count.load(std::memory_order_relaxed);
}

}  // namespace movr::testing

void* operator new(std::size_t size) { return movr::testing::checked_alloc(size); }
void* operator new[](std::size_t size) {
  return movr::testing::checked_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  movr::testing::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  movr::testing::note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return movr::testing::checked_aligned_alloc(
      size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return movr::testing::checked_aligned_alloc(
      size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
