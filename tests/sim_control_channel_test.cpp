#include <sim/control_channel.hpp>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sim/simulator.hpp>

namespace movr::sim {
namespace {

ControlChannel::Config lossless() {
  ControlChannel::Config c;
  c.latency = Duration{3'000'000};
  c.jitter = Duration{0};
  c.loss_probability = 0.0;
  return c;
}

TEST(ControlChannel, DeliversWithLatency) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  TimePoint delivered_at{};
  std::string topic;
  chan.attach("dev", [&](const ControlMessage& m) {
    delivered_at = s.now();
    topic = m.topic;
  });
  chan.send("dev", {"set_angle", 1.5, 7});
  s.run();
  EXPECT_EQ(delivered_at, TimePoint{3'000'000});
  EXPECT_EQ(topic, "set_angle");
  EXPECT_EQ(chan.stats().delivered, 1u);
}

TEST(ControlChannel, PreservesPayload) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  ControlMessage got;
  chan.attach("dev", [&](const ControlMessage& m) { got = m; });
  chan.send("dev", {"gain_code", 42.0, 99});
  s.run();
  EXPECT_EQ(got.topic, "gain_code");
  EXPECT_EQ(got.value, 42.0);
  EXPECT_EQ(got.tag, 99u);
}

TEST(ControlChannel, UnknownEndpointCounted) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  chan.send("ghost", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(chan.stats().undeliverable, 1u);
  EXPECT_EQ(chan.stats().delivered, 0u);
}

TEST(ControlChannel, InOrderForEqualLatency) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  std::vector<double> values;
  chan.attach("dev", [&](const ControlMessage& m) { values.push_back(m.value); });
  for (int i = 0; i < 5; ++i) {
    chan.send("dev", {"v", static_cast<double>(i), 0});
  }
  s.run();
  EXPECT_EQ(values, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(ControlChannel, LossyLinkRetransmitsAndEventuallyDelivers) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.4;
  config.max_retries = 10;
  ControlChannel chan{s, config, std::mt19937_64{7}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  for (int i = 0; i < 50; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  EXPECT_EQ(received, 50);  // all delivered thanks to retries
  EXPECT_GT(chan.stats().retransmitted, 0u);
  EXPECT_EQ(chan.stats().dropped, 0u);
}

TEST(ControlChannel, AlwaysLossyDropsAfterMaxRetries) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 1.0;
  config.max_retries = 3;
  ControlChannel chan{s, config, std::mt19937_64{7}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(chan.stats().dropped, 1u);
  EXPECT_EQ(chan.stats().retransmitted, 3u);
}

TEST(ControlChannel, RetriesAddLatency) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 1.0;  // will flip to 0 after first attempt...
  config.max_retries = 1;
  // Deterministic: with p = 1 the first attempt is lost, the retry is also
  // "lost" -> dropped. Instead test with p = 0 but verify retry timing via
  // a two-channel comparison: a lossy channel with guaranteed first-loss.
  // Simpler: measure that a retry_timeout elapses before a dropped verdict.
  ControlChannel chan{s, config, std::mt19937_64{7}};
  chan.attach("dev", [](const ControlMessage&) {});
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_GE(s.now(), config.retry_timeout);
}

TEST(ControlChannel, AckLossDuplicatesAreSuppressed) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.5;
  config.ack_loss_fraction = 1.0;  // every "loss" is really a lost ack
  config.max_retries = 10;
  ControlChannel chan{s, config, std::mt19937_64{11}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  for (int i = 0; i < 100; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  // Every send reaches the endpoint exactly once: redundant copies from
  // ack-loss retransmissions are deduplicated by tag.
  EXPECT_EQ(received, 100);
  EXPECT_EQ(chan.stats().delivered, 100u);
  EXPECT_GT(chan.stats().duplicates, 0u);
  EXPECT_GT(chan.stats().retransmitted, 0u);
}

TEST(ControlChannel, StatsInvariantHoldsUnderAckLoss) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.6;
  config.ack_loss_fraction = 0.5;  // mix of data loss and ack loss
  config.max_retries = 2;
  ControlChannel chan{s, config, std::mt19937_64{13}};
  chan.attach("dev", [](const ControlMessage&) {});
  for (int i = 0; i < 200; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  chan.send("ghost", {"x", 0.0, 0});
  s.run();
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
}

TEST(ControlChannel, SendOutcomeReportsFate) {
  Simulator s;
  ControlChannel good{s, lossless(), std::mt19937_64{1}};
  good.attach("dev", [](const ControlMessage&) {});
  bool delivered_outcome = false;
  good.send("dev", {"x", 0.0, 0},
            [&](bool delivered) { delivered_outcome = delivered; });

  auto lossy_config = lossless();
  lossy_config.loss_probability = 1.0;
  lossy_config.max_retries = 2;
  ControlChannel lossy{s, lossy_config, std::mt19937_64{2}};
  lossy.attach("dev", [](const ControlMessage&) {});
  bool dropped_outcome = true;
  lossy.send("dev", {"x", 0.0, 0},
             [&](bool delivered) { dropped_outcome = delivered; });
  s.run();
  EXPECT_TRUE(delivered_outcome);
  EXPECT_FALSE(dropped_outcome);
}

TEST(ControlChannel, FaultStacksAndClamps) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  chan.apply_fault(0.7, Duration{1'000'000});
  chan.apply_fault(0.7, Duration{2'000'000});
  EXPECT_EQ(chan.fault_loss(), 1.4);  // raw stack; clamped at use
  EXPECT_EQ(chan.fault_extra_latency(), Duration{3'000'000});
  chan.attach("dev", [](const ControlMessage&) {});
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(chan.stats().dropped, 1u);  // effective loss clamped to 1.0
  chan.apply_fault(-0.7, Duration{-1'000'000});
  chan.apply_fault(-0.7, Duration{-2'000'000});
  EXPECT_EQ(chan.fault_loss(), 0.0);
  EXPECT_EQ(chan.fault_extra_latency(), Duration::zero());
}

TEST(ControlChannel, JitterStaysBounded) {
  Simulator s;
  auto config = lossless();
  config.jitter = Duration{500'000};
  ControlChannel chan{s, config, std::mt19937_64{3}};
  std::vector<TimePoint> at;
  chan.attach("dev", [&](const ControlMessage&) { at.push_back(s.now()); });
  // Send one at a time so each delivery time is measured from zero offset.
  for (int i = 0; i < 20; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  for (const TimePoint t : at) {
    EXPECT_GE(t, config.latency - config.jitter);
    EXPECT_LE(t, config.latency + config.jitter);
  }
}

}  // namespace
}  // namespace movr::sim
