#include <sim/control_channel.hpp>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sim/simulator.hpp>

namespace movr::sim {
namespace {

ControlChannel::Config lossless() {
  ControlChannel::Config c;
  c.latency = Duration{3'000'000};
  c.jitter = Duration{0};
  c.loss_probability = 0.0;
  return c;
}

TEST(ControlChannel, DeliversWithLatency) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  TimePoint delivered_at{};
  std::string topic;
  chan.attach("dev", [&](const ControlMessage& m) {
    delivered_at = s.now();
    topic = m.topic;
  });
  chan.send("dev", {"set_angle", 1.5, 7});
  s.run();
  EXPECT_EQ(delivered_at, TimePoint{3'000'000});
  EXPECT_EQ(topic, "set_angle");
  EXPECT_EQ(chan.stats().delivered, 1u);
}

TEST(ControlChannel, PreservesPayload) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  ControlMessage got;
  chan.attach("dev", [&](const ControlMessage& m) { got = m; });
  chan.send("dev", {"gain_code", 42.0, 99});
  s.run();
  EXPECT_EQ(got.topic, "gain_code");
  EXPECT_EQ(got.value, 42.0);
  EXPECT_EQ(got.tag, 99u);
}

TEST(ControlChannel, UnknownEndpointCounted) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  chan.send("ghost", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(chan.stats().undeliverable, 1u);
  EXPECT_EQ(chan.stats().delivered, 0u);
}

TEST(ControlChannel, InOrderForEqualLatency) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  std::vector<double> values;
  chan.attach("dev", [&](const ControlMessage& m) { values.push_back(m.value); });
  for (int i = 0; i < 5; ++i) {
    chan.send("dev", {"v", static_cast<double>(i), 0});
  }
  s.run();
  EXPECT_EQ(values, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(ControlChannel, LossyLinkRetransmitsAndEventuallyDelivers) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.4;
  config.max_retries = 10;
  ControlChannel chan{s, config, std::mt19937_64{7}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  for (int i = 0; i < 50; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  EXPECT_EQ(received, 50);  // all delivered thanks to retries
  EXPECT_GT(chan.stats().retransmitted, 0u);
  EXPECT_EQ(chan.stats().dropped, 0u);
}

TEST(ControlChannel, AlwaysLossyDropsAfterMaxRetries) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 1.0;
  config.max_retries = 3;
  ControlChannel chan{s, config, std::mt19937_64{7}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(chan.stats().dropped, 1u);
  EXPECT_EQ(chan.stats().retransmitted, 3u);
}

TEST(ControlChannel, RetriesAddLatency) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 1.0;  // will flip to 0 after first attempt...
  config.max_retries = 1;
  // Deterministic: with p = 1 the first attempt is lost, the retry is also
  // "lost" -> dropped. Instead test with p = 0 but verify retry timing via
  // a two-channel comparison: a lossy channel with guaranteed first-loss.
  // Simpler: measure that a retry_timeout elapses before a dropped verdict.
  ControlChannel chan{s, config, std::mt19937_64{7}};
  chan.attach("dev", [](const ControlMessage&) {});
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_GE(s.now(), config.retry_timeout);
}

TEST(ControlChannel, AckLossDuplicatesAreSuppressed) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.5;
  config.ack_loss_fraction = 1.0;  // every "loss" is really a lost ack
  config.max_retries = 10;
  ControlChannel chan{s, config, std::mt19937_64{11}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  for (int i = 0; i < 100; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  // Every send reaches the endpoint exactly once: redundant copies from
  // ack-loss retransmissions are deduplicated by tag.
  EXPECT_EQ(received, 100);
  EXPECT_EQ(chan.stats().delivered, 100u);
  EXPECT_GT(chan.stats().duplicates, 0u);
  EXPECT_GT(chan.stats().retransmitted, 0u);
}

TEST(ControlChannel, StatsInvariantHoldsUnderAckLoss) {
  Simulator s;
  auto config = lossless();
  config.loss_probability = 0.6;
  config.ack_loss_fraction = 0.5;  // mix of data loss and ack loss
  config.max_retries = 2;
  ControlChannel chan{s, config, std::mt19937_64{13}};
  chan.attach("dev", [](const ControlMessage&) {});
  for (int i = 0; i < 200; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  chan.send("ghost", {"x", 0.0, 0});
  s.run();
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
}

TEST(ControlChannel, SendOutcomeReportsFate) {
  Simulator s;
  ControlChannel good{s, lossless(), std::mt19937_64{1}};
  good.attach("dev", [](const ControlMessage&) {});
  bool delivered_outcome = false;
  good.send("dev", {"x", 0.0, 0},
            [&](bool delivered) { delivered_outcome = delivered; });

  auto lossy_config = lossless();
  lossy_config.loss_probability = 1.0;
  lossy_config.max_retries = 2;
  ControlChannel lossy{s, lossy_config, std::mt19937_64{2}};
  lossy.attach("dev", [](const ControlMessage&) {});
  bool dropped_outcome = true;
  lossy.send("dev", {"x", 0.0, 0},
             [&](bool delivered) { dropped_outcome = delivered; });
  s.run();
  EXPECT_TRUE(delivered_outcome);
  EXPECT_FALSE(dropped_outcome);
}

TEST(ControlChannel, FaultStacksAndClamps) {
  Simulator s;
  ControlChannel chan{s, lossless(), std::mt19937_64{1}};
  chan.apply_fault(0.7, Duration{1'000'000});
  chan.apply_fault(0.7, Duration{2'000'000});
  EXPECT_EQ(chan.fault_loss(), 1.4);  // raw stack; clamped at use
  EXPECT_EQ(chan.fault_extra_latency(), Duration{3'000'000});
  chan.attach("dev", [](const ControlMessage&) {});
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(chan.stats().dropped, 1u);  // effective loss clamped to 1.0
  chan.apply_fault(-0.7, Duration{-1'000'000});
  chan.apply_fault(-0.7, Duration{-2'000'000});
  EXPECT_EQ(chan.fault_loss(), 0.0);
  EXPECT_EQ(chan.fault_extra_latency(), Duration::zero());
}

TEST(ControlChannel, JitterStaysBounded) {
  Simulator s;
  auto config = lossless();
  config.jitter = Duration{500'000};
  ControlChannel chan{s, config, std::mt19937_64{3}};
  std::vector<TimePoint> at;
  chan.attach("dev", [&](const ControlMessage&) { at.push_back(s.now()); });
  // Send one at a time so each delivery time is measured from zero offset.
  for (int i = 0; i < 20; ++i) {
    chan.send("dev", {"x", 0.0, 0});
  }
  s.run();
  for (const TimePoint t : at) {
    EXPECT_GE(t, config.latency - config.jitter);
    EXPECT_LE(t, config.latency + config.jitter);
  }
}

TEST(ControlChannel, DedupEvictionIsLruNotFifo) {
  Simulator s;
  auto config = lossless();
  config.dedup_window = 2;
  ControlChannel chan{s, config, std::mt19937_64{1}};
  std::vector<std::uint64_t> seen_tags;
  chan.attach("dev",
              [&](const ControlMessage& m) { seen_tags.push_back(m.tag); });

  const auto send_tag = [&](std::uint64_t tag) {
    chan.send("dev", {"x", 0.0, tag});
    s.run();
  };

  send_tag(1);  // window: [1]
  send_tag(2);  // window: [1, 2]
  // A retransmission of tag 1 is suppressed AND refreshes its recency.
  send_tag(1);  // window: [2, 1]
  // Tag 3 must evict the LEAST RECENTLY SEEN tag (2) — under the old FIFO
  // eviction it would evict 1, the oldest *inserted*, and the next
  // retransmission of 1 would leak through as a fresh message.
  send_tag(3);  // window: [1, 3]
  send_tag(1);  // still pinned: suppressed
  send_tag(2);  // evicted earlier, so it comes back as fresh

  EXPECT_EQ(seen_tags, (std::vector<std::uint64_t>{1, 2, 3, 2}));
  EXPECT_EQ(chan.stats().duplicates, 2u);
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
}

TEST(ControlChannel, DetectedCorruptionDropsAndRetransmits) {
  Simulator s;
  auto config = lossless();
  config.corruption_probability = 1.0;  // every copy corrupted...
  config.undetected_corruption_fraction = 0.0;  // ...and the CRC sees all
  config.max_retries = 2;
  ControlChannel chan{s, config, std::mt19937_64{5}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });
  chan.send("dev", {"x", 1.5, 0});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(chan.stats().corrupted_dropped, 3u);  // initial + 2 retries
  EXPECT_EQ(chan.stats().retransmitted, 2u);
  EXPECT_EQ(chan.stats().dropped, 1u);
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
}

TEST(ControlChannel, UndetectedCorruptionDeliversGarbledValue) {
  Simulator s;
  auto config = lossless();
  config.corruption_probability = 1.0;
  config.undetected_corruption_fraction = 1.0;  // the CRC misses everything
  ControlChannel chan{s, config, std::mt19937_64{5}};
  std::vector<double> values;
  chan.attach("dev",
              [&](const ControlMessage& m) { values.push_back(m.value); });
  for (int i = 0; i < 20; ++i) {
    chan.send("dev", {"gain", 1.5, 0});
  }
  s.run();
  ASSERT_EQ(values.size(), 20u);
  EXPECT_EQ(chan.stats().corrupted_delivered, 20u);
  for (const double v : values) {
    EXPECT_TRUE(std::isfinite(v));  // a flipped bit, never NaN/inf
    EXPECT_NE(v, 1.5);              // and never the honest payload
  }
  EXPECT_EQ(chan.stats().delivered, 20u);  // delivered, just garbled
}

TEST(ControlChannel, ReorderedDeliveriesAreCounted) {
  Simulator s;
  auto config = lossless();
  config.reorder_probability = 0.3;
  config.reorder_delay = Duration{6'000'000};
  ControlChannel chan{s, config, std::mt19937_64{17}};
  std::vector<double> order;
  chan.attach("dev",
              [&](const ControlMessage& m) { order.push_back(m.value); });
  for (int i = 0; i < 100; ++i) {
    chan.send("dev", {"v", static_cast<double>(i), 0});
  }
  s.run();
  ASSERT_EQ(order.size(), 100u);
  // Every delivery either arrived in send order or is visibly counted:
  // the stat must equal the inversions observable at the endpoint.
  std::uint64_t inversions = 0;
  double max_seen = -1.0;
  for (const double v : order) {
    if (v < max_seen) {
      ++inversions;
    } else {
      max_seen = v;
    }
  }
  EXPECT_GT(inversions, 0u);  // 0.3 over 100 back-to-back sends must hit
  EXPECT_EQ(chan.stats().reordered, inversions);
}

TEST(ControlChannel, JitterOvertakesCountAsReordered) {
  Simulator s;
  auto config = lossless();
  config.jitter = Duration{2'000'000};  // bigger than the send spacing
  ControlChannel chan{s, config, std::mt19937_64{23}};
  std::vector<double> order;
  chan.attach("dev",
              [&](const ControlMessage& m) { order.push_back(m.value); });
  for (int i = 0; i < 50; ++i) {
    chan.send("dev", {"v", static_cast<double>(i), 0});
  }
  s.run();
  std::uint64_t inversions = 0;
  double max_seen = -1.0;
  for (const double v : order) {
    if (v < max_seen) {
      ++inversions;
    } else {
      max_seen = v;
    }
  }
  EXPECT_EQ(chan.stats().reordered, inversions);
}

TEST(ControlChannel, PartitionEatsEverythingBothWays) {
  Simulator s;
  auto config = lossless();
  config.max_retries = 2;
  ControlChannel chan{s, config, std::mt19937_64{1}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });

  chan.apply_partition(+1);
  EXPECT_TRUE(chan.partitioned());
  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(chan.stats().dropped, 1u);
  EXPECT_EQ(chan.stats().partition_losses, 3u);  // initial + 2 retries

  // Overlapping windows stack: one heal does not end the partition.
  chan.apply_partition(+1);
  chan.apply_partition(-1);
  EXPECT_TRUE(chan.partitioned());
  chan.apply_partition(-1);
  EXPECT_FALSE(chan.partitioned());

  chan.send("dev", {"x", 0.0, 0});
  s.run();
  EXPECT_EQ(received, 1);
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
}

TEST(ControlChannel, StatsInvariantHoldsUnderAllFaultAxes) {
  Simulator s;
  auto config = lossless();
  config.jitter = Duration{500'000};
  config.loss_probability = 0.2;
  config.ack_loss_fraction = 0.3;
  config.corruption_probability = 0.2;
  config.undetected_corruption_fraction = 0.3;
  config.reorder_probability = 0.2;
  config.max_retries = 3;
  ControlChannel chan{s, config, std::mt19937_64{29}};
  chan.attach("dev", [](const ControlMessage&) {});
  // A partition window in the middle of the burst.
  s.at(TimePoint{40'000'000}, [&] { chan.apply_partition(+1); });
  s.at(TimePoint{90'000'000}, [&] { chan.apply_partition(-1); });
  for (int i = 0; i < 300; ++i) {
    s.at(TimePoint{i * 500'000}, [&] { chan.send("dev", {"x", 1.0, 0}); });
  }
  chan.send("ghost", {"x", 0.0, 0});
  s.run();
  const auto& st = chan.stats();
  EXPECT_EQ(st.sent, 301u);
  EXPECT_EQ(st.sent, st.delivered + st.dropped + st.undeliverable);
  EXPECT_GT(st.partition_losses, 0u);
}

}  // namespace
}  // namespace movr::sim
