#include <vr/deployment.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::vr {
namespace {

using geom::Vec2;
using geom::deg_to_rad;

core::Scene scene_with_reflector() {
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};
  scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  return scene;
}

TEST(Deployment, CalibratesEveryReflector) {
  Deployment::Config config;
  config.search_step_deg = 2.0;  // keep the test quick
  Deployment deployment{scene_with_reflector(), config};
  const auto report = deployment.calibrate();
  ASSERT_EQ(report.reflectors.size(), 1u);
  EXPECT_TRUE(report.all_usable);
  const auto& cal = report.reflectors.front();
  EXPECT_TRUE(cal.incidence.completed);
  EXPECT_TRUE(cal.reflection.completed);
  EXPECT_GT(cal.gain.final_gain.value(), 20.0);
  EXPECT_GT(sim::to_seconds(report.total), 0.5);

  // The calibrated system relays at VR grade.
  auto& scene = deployment.scene();
  auto& reflector = scene.reflector(0);
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  EXPECT_GT(scene.via_snr(reflector).snr.value(), 17.0);
}

TEST(Deployment, AccurateAngles) {
  Deployment::Config config;
  config.search_step_deg = 1.0;
  Deployment deployment{scene_with_reflector(), config};
  const auto report = deployment.calibrate();
  const auto& scene = deployment.scene();
  const auto& reflector = scene.reflector(0);
  const double inc_err = geom::rad_to_deg(geom::angular_distance(
      report.reflectors[0].incidence.reflector_angle,
      scene.true_reflector_angle_to_ap(reflector)));
  EXPECT_LE(inc_err, 2.0);
}

TEST(Deployment, PlayAfterCalibrateSurvivesBlockage) {
  Deployment::Config config;
  config.search_step_deg = 2.0;
  Deployment deployment{scene_with_reflector(), config};
  deployment.calibrate();
  const auto script = periodic_hand_raises(
      sim::from_seconds(0.3), sim::from_seconds(0.4), sim::from_seconds(1.0),
      sim::from_seconds(2.0));
  Session::Config session_config;
  session_config.duration = sim::from_seconds(2.0);
  const QoeReport report = deployment.play(nullptr, &script, session_config);
  EXPECT_EQ(report.frames, 180u);
  EXPECT_LT(report.glitch_fraction(), 0.15);
}

TEST(Deployment, TwoReflectorsBothCalibrated) {
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};
  scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  scene.add_reflector({4.8, 2.8}, deg_to_rad(180.0));
  Deployment::Config config;
  config.search_step_deg = 3.0;
  Deployment deployment{std::move(scene), config};
  const auto report = deployment.calibrate();
  ASSERT_EQ(report.reflectors.size(), 2u);
  EXPECT_TRUE(report.reflectors[0].incidence.completed);
  EXPECT_TRUE(report.reflectors[1].incidence.completed);
}

TEST(Deployment, LossyBluetoothStillCalibrates) {
  Deployment::Config config;
  config.search_step_deg = 3.0;
  config.bluetooth.loss_probability = 0.2;
  Deployment deployment{scene_with_reflector(), config};
  const auto report = deployment.calibrate();
  EXPECT_TRUE(report.reflectors.front().incidence.completed);
  EXPECT_GT(deployment.bluetooth().stats().retransmitted, 0u);
}

}  // namespace
}  // namespace movr::vr
