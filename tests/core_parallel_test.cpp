// The parallel grid evaluators and their substrate. This file builds into
// its own test binary carrying the `tsan` ctest label: build with
// -DMOVR_SANITIZE=thread (or the `tsan` preset) and run `ctest -L tsan` to
// put every concurrent path under ThreadSanitizer.
#include <core/parallel_for.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <core/coverage.hpp>
#include <core/gain_control.hpp>
#include <core/placement.hpp>
#include <core/scene.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::deg_to_rad;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(touched.size(), 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelFor, HandlesCountSmallerThanThreads) {
  std::atomic<int> sum{0};
  parallel_for(3, 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sum += static_cast<int>(i);
    }
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) {
                       throw std::runtime_error{"boom"};
                     }
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
}

Scene deployed_scene() {
  Scene scene{channel::Room::paper_office(),
              ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{2.5, 2.5}, 0.0}};
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  scene.ap().node().steer_toward(reflector.position());
  std::mt19937_64 rng{1};
  GainController::run(reflector.front_end(), scene.reflector_input(reflector),
                      rng);
  return scene;
}

TEST(ParallelCoverage, IdenticalForEveryThreadCount) {
  const Scene scene = deployed_scene();
  const auto serial = compute_coverage(scene, 0.5, 0.5, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = compute_coverage(scene, 0.5, 0.5, threads);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(parallel.cells[i].direct_snr.value(),
                serial.cells[i].direct_snr.value());
      EXPECT_EQ(parallel.cells[i].via_snr.value(),
                serial.cells[i].via_snr.value());
      EXPECT_EQ(parallel.cells[i].best_reflector,
                serial.cells[i].best_reflector);
    }
    // Same queries overall, just split across workers.
    EXPECT_EQ(parallel.oracle.queries, serial.oracle.queries);
  }
}

TEST(ParallelCoverage, LeavesTheSceneUntouched) {
  const Scene scene = deployed_scene();
  const geom::Vec2 pos = scene.headset().node().position();
  const double ap_steer = scene.ap().node().array().steering();
  const double tx_steer =
      scene.reflector(0).front_end().tx_array().steering();
  const auto before = scene.oracle_stats();
  compute_coverage(scene, 0.5, 0.5, 4);
  EXPECT_EQ(scene.headset().node().position(), pos);
  EXPECT_EQ(scene.ap().node().array().steering(), ap_steer);
  EXPECT_EQ(scene.reflector(0).front_end().tx_array().steering(), tx_steer);
  // Workers query their own clones, never the caller's oracle.
  EXPECT_EQ(scene.oracle_stats().queries, before.queries);
}

TEST(ParallelCoverage, ReportsAggregatedOracleCounters) {
  const Scene scene = deployed_scene();
  const auto map = compute_coverage(scene, 0.5, 0.5, 4);
  EXPECT_GT(map.oracle.queries, 0u);
  // The AP->reflector hop is the same for every cell a worker evaluates:
  // the oracle must be earning real hits on the grid workload.
  EXPECT_GT(map.oracle.hit_rate(), 0.2);
}

TEST(ParallelPlacement, PlanIdenticalForEveryThreadCount) {
  const channel::Room room{5.0, 5.0};
  PlacementPlanner::Config config;
  config.trials = 24;
  config.mount_spacing_m = 1.6;
  config.max_reflectors = 2;

  config.threads = 1;
  const auto serial = PlacementPlanner{config, 9}.plan(room, {0.4, 0.4});
  for (const unsigned threads : {2u, 4u}) {
    config.threads = threads;
    const auto parallel = PlacementPlanner{config, 9}.plan(room, {0.4, 0.4});
    ASSERT_EQ(parallel.chosen.size(), serial.chosen.size());
    for (std::size_t i = 0; i < serial.chosen.size(); ++i) {
      EXPECT_EQ(parallel.chosen[i].position, serial.chosen[i].position);
    }
    ASSERT_EQ(parallel.outage_curve.size(), serial.outage_curve.size());
    for (std::size_t i = 0; i < serial.outage_curve.size(); ++i) {
      EXPECT_EQ(parallel.outage_curve[i], serial.outage_curve[i]);
    }
  }
}

TEST(SharedOracle, ConcurrentConstQueriesAreSafe) {
  // Scene::paths_between is const and internally synchronized: many
  // threads may interrogate one scene as long as nobody mutates it. Under
  // -DMOVR_SANITIZE=thread this is the mutex's proof obligation.
  const Scene scene = deployed_scene();
  const auto expected = scene.direct_snr().value();  // warms the cache
  const auto warm = scene.oracle_stats();
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (scene.direct_snr().value() != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = scene.oracle_stats();
  EXPECT_EQ(stats.queries, warm.queries + 800);  // 4 x 200 reader queries
  EXPECT_EQ(stats.misses, warm.misses);          // all of them cache hits
}

}  // namespace
}  // namespace movr::core
