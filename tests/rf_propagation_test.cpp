#include <rf/propagation.hpp>

#include <gtest/gtest.h>

#include <rf/noise.hpp>

namespace movr::rf {
namespace {

TEST(Propagation, WavelengthAt24GHz) {
  EXPECT_NEAR(wavelength(24.0e9), 0.01249, 1e-4);
}

TEST(Propagation, FsplTextbookValue) {
  // FSPL(1 m, 24 GHz) = 20 log10(4*pi*1/0.012491) ~= 60.05 dB.
  EXPECT_NEAR(free_space_path_loss(1.0, 24.0e9).value(), 60.05, 0.05);
  // Doubling the distance adds 6.02 dB.
  const double d1 = free_space_path_loss(2.0, 24.0e9).value();
  const double d2 = free_space_path_loss(4.0, 24.0e9).value();
  EXPECT_NEAR(d2 - d1, 6.0206, 1e-3);
}

TEST(Propagation, FsplIncreasesWithFrequency) {
  EXPECT_GT(free_space_path_loss(3.0, 60.0e9).value(),
            free_space_path_loss(3.0, 24.0e9).value());
  // 60 GHz vs 24 GHz: 20*log10(60/24) ~= 7.96 dB.
  EXPECT_NEAR(free_space_path_loss(3.0, 60.0e9).value() -
                  free_space_path_loss(3.0, 24.0e9).value(),
              7.96, 0.01);
}

TEST(Propagation, NearFieldClampNeverAmplifies) {
  // Distances below one wavelength clamp: loss stays at the 1-lambda value.
  const Decibels at_zero = free_space_path_loss(0.0, 24.0e9);
  EXPECT_GT(at_zero.value(), 0.0);
  EXPECT_NEAR(at_zero.value(), 21.98, 0.05);  // 20 log10(4*pi)
}

TEST(Propagation, FsplMonotoneInDistance) {
  double prev = 0.0;
  for (double d = 0.5; d < 20.0; d += 0.5) {
    const double loss = free_space_path_loss(d, 24.0e9).value();
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(Propagation, DelayAtLightSpeed) {
  EXPECT_NEAR(propagation_delay(299'792'458.0), 1.0, 1e-12);
  EXPECT_NEAR(propagation_delay(3.0), 1.0007e-8, 1e-11);
}

TEST(Noise, ThermalFloor) {
  // kTB over 1 Hz is -174 dBm.
  EXPECT_NEAR(thermal_noise(1.0).value(), -174.0, 1e-9);
  // 802.11ad channel: -174 + 10 log10(2.16e9) ~= -80.7 dBm.
  EXPECT_NEAR(thermal_noise(2.16e9).value(), -80.65, 0.05);
}

TEST(Noise, NoiseFigureAdds) {
  const DbmPower floor = noise_floor(2.16e9, Decibels{7.0});
  EXPECT_NEAR(floor.value(), -73.65, 0.05);
}

TEST(Noise, WiderBandwidthMoreNoise) {
  EXPECT_GT(thermal_noise(2.16e9).value(), thermal_noise(20.0e6).value());
}

}  // namespace
}  // namespace movr::rf
