#include <net/tx_queue.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

std::vector<Packet> make_frame(std::uint64_t id, std::uint32_t packets,
                               sim::TimePoint deadline,
                               std::uint32_t bytes = 1000) {
  std::vector<Packet> out;
  for (std::uint32_t seq = 0; seq < packets; ++seq) {
    Packet p;
    p.frame_id = id;
    p.seq = seq;
    p.frame_packets = packets;
    p.payload_bytes = bytes;
    p.deadline = deadline;
    out.push_back(p);
  }
  return out;
}

TEST(TxQueue, FifoAcrossFrames) {
  TxQueue queue;
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 2, sim::from_seconds(1.0)), dropped);
  queue.push(make_frame(1, 1, sim::from_seconds(2.0)), dropped);
  EXPECT_TRUE(dropped.empty());
  EXPECT_EQ(queue.depth_frames(), 2u);
  EXPECT_EQ(queue.depth_packets(), 3u);
  EXPECT_EQ(queue.pop().frame_id, 0u);
  EXPECT_EQ(queue.pop().frame_id, 0u);
  EXPECT_EQ(queue.pop().frame_id, 1u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.counters().packets_enqueued, 3u);
  EXPECT_EQ(queue.counters().packets_dequeued, 3u);
}

TEST(TxQueue, DropStaleShedsLateHeadFrames) {
  TxQueue queue;
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 3, sim::from_seconds(1.0)), dropped);
  queue.push(make_frame(1, 2, sim::from_seconds(2.0)), dropped);
  queue.push(make_frame(2, 2, sim::from_seconds(3.0)), dropped);

  queue.drop_stale(sim::from_seconds(2.0), dropped);  // 1.0 and 2.0 are late
  EXPECT_EQ(dropped, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(queue.depth_frames(), 1u);
  ASSERT_NE(queue.front(), nullptr);
  EXPECT_EQ(queue.front()->frame_id, 2u);
  EXPECT_EQ(queue.counters().frames_dropped_stale, 2u);
  EXPECT_EQ(queue.counters().packets_dropped_stale, 5u);
}

TEST(TxQueue, OverflowShedsOldestFrame) {
  TxQueue::Config config;
  config.max_frames = 2;
  TxQueue queue{config};
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 1, sim::from_seconds(1.0)), dropped);
  queue.push(make_frame(1, 1, sim::from_seconds(2.0)), dropped);
  EXPECT_TRUE(dropped.empty());
  queue.push(make_frame(2, 1, sim::from_seconds(3.0)), dropped);
  EXPECT_EQ(dropped, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(queue.depth_frames(), 2u);
  EXPECT_EQ(queue.counters().frames_dropped_full, 1u);
  EXPECT_EQ(queue.counters().packets_dropped_full, 1u);
}

TEST(TxQueue, PurgeFrameRemovesMidQueuePackets) {
  TxQueue queue;
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 2, sim::from_seconds(1.0)), dropped);
  queue.push(make_frame(1, 3, sim::from_seconds(2.0)), dropped);
  queue.push(make_frame(2, 1, sim::from_seconds(3.0)), dropped);
  EXPECT_EQ(queue.purge_frame(1), 3u);
  EXPECT_EQ(queue.depth_packets(), 3u);
  EXPECT_EQ(queue.depth_frames(), 2u);
  EXPECT_EQ(queue.counters().packets_purged, 3u);
  // Remaining order intact.
  EXPECT_EQ(queue.pop().frame_id, 0u);
  EXPECT_EQ(queue.pop().frame_id, 0u);
  EXPECT_EQ(queue.pop().frame_id, 2u);
}

TEST(TxQueue, DepthCountersTrackBytesAndHighWater) {
  TxQueue queue;
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 2, sim::from_seconds(1.0), 500), dropped);
  EXPECT_EQ(queue.depth_bytes(), 1000u);
  queue.push(make_frame(1, 1, sim::from_seconds(2.0), 2000), dropped);
  EXPECT_EQ(queue.depth_bytes(), 3000u);
  queue.pop();
  EXPECT_EQ(queue.depth_bytes(), 2500u);
  EXPECT_EQ(queue.counters().max_depth_bytes, 3000u);
  EXPECT_EQ(queue.counters().max_depth_packets, 3u);
  EXPECT_EQ(queue.counters().max_depth_frames, 2u);
}

TEST(TxQueue, PartiallySentFrameStillStaleDrops) {
  TxQueue queue;
  std::vector<std::uint64_t> dropped;
  queue.push(make_frame(0, 3, sim::from_seconds(1.0)), dropped);
  queue.pop();  // one packet went to the air
  queue.drop_stale(sim::from_seconds(1.5), dropped);
  EXPECT_EQ(dropped, (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.counters().packets_dropped_stale, 2u);
}

}  // namespace
}  // namespace movr::net
