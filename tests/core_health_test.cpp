#include <core/health.hpp>

#include <gtest/gtest.h>

namespace movr::core {
namespace {

using namespace std::chrono_literals;

TEST(HealthMonitor, HealthyUntilRepeatedBadObservations) {
  HealthMonitor health;
  health.track(1);
  const sim::TimePoint now{0};
  health.note_bad(0, now, "weak");
  health.note_bad(0, now, "weak");
  EXPECT_FALSE(health.quarantined(0));
  health.note_bad(0, now, "weak");  // third strike
  EXPECT_TRUE(health.quarantined(0));
  EXPECT_EQ(health.stats().quarantines, 1);
  EXPECT_EQ(health.entry(0).last_reason, "weak");
}

TEST(HealthMonitor, GoodObservationResetsTheStrikeCount) {
  HealthMonitor health;
  health.track(1);
  const sim::TimePoint now{0};
  health.note_bad(0, now, "weak");
  health.note_bad(0, now, "weak");
  health.note_good(0);
  health.note_bad(0, now, "weak");
  health.note_bad(0, now, "weak");
  EXPECT_FALSE(health.quarantined(0));
}

TEST(HealthMonitor, ProbeDueAfterBackoffExpires) {
  HealthMonitor health;
  health.track(1);
  health.quarantine(0, sim::TimePoint{0}, "handover timed out");
  const auto backoff = health.config().backoff_initial;
  EXPECT_FALSE(health.probe_due(0, sim::TimePoint{backoff / 2}));
  EXPECT_FALSE(health.usable(0, sim::TimePoint{backoff / 2}));
  EXPECT_TRUE(health.probe_due(0, sim::TimePoint{backoff}));
  EXPECT_TRUE(health.usable(0, sim::TimePoint{backoff}));
}

TEST(HealthMonitor, ExtendQuarantinePinsTheReprobePastAKnownFaultWindow) {
  HealthMonitor health;
  health.track(1);
  health.quarantine(0, sim::TimePoint{0}, "arena fault");
  const auto backoff = health.config().backoff_initial;
  ASSERT_TRUE(health.probe_due(0, sim::TimePoint{backoff}));

  // The coordinator knows the scripted fault clears at 2 s: the first
  // re-probe must not fire (and fail, doubling the backoff) before then.
  health.extend_quarantine(0, sim::TimePoint{2s});
  EXPECT_FALSE(health.probe_due(0, sim::TimePoint{backoff}));
  EXPECT_FALSE(health.probe_due(0, sim::TimePoint{1999ms}));
  EXPECT_TRUE(health.probe_due(0, sim::TimePoint{2s}));

  // Never shortens an existing window, and is a no-op on healthy entries.
  health.extend_quarantine(0, sim::TimePoint{1s});
  EXPECT_TRUE(health.probe_due(0, sim::TimePoint{2s}));
  health.note_probe_result(0, sim::TimePoint{2s}, true);
  EXPECT_FALSE(health.quarantined(0));
  health.extend_quarantine(0, sim::TimePoint{5s});
  EXPECT_TRUE(health.usable(0, sim::TimePoint{2100ms}));
}

TEST(HealthMonitor, FailedReprobeDoublesBackoffUpToCap) {
  HealthMonitor::Config config;
  config.backoff_initial = 200ms;
  config.backoff_multiplier = 2.0;
  config.backoff_max = 1s;
  HealthMonitor health{config};
  health.track(1);
  health.quarantine(0, sim::TimePoint{0}, "bad");
  EXPECT_EQ(health.entry(0).backoff, sim::Duration{200ms});
  health.note_probe_result(0, sim::TimePoint{200ms}, false);
  EXPECT_EQ(health.entry(0).backoff, sim::Duration{400ms});
  health.note_probe_result(0, sim::TimePoint{600ms}, false);
  EXPECT_EQ(health.entry(0).backoff, sim::Duration{800ms});
  health.note_probe_result(0, sim::TimePoint{1400ms}, false);
  EXPECT_EQ(health.entry(0).backoff, sim::Duration{1s});  // capped
}

TEST(HealthMonitor, SuccessfulReprobeRestores) {
  HealthMonitor health;
  health.track(1);
  health.quarantine(0, sim::TimePoint{0}, "bad");
  health.note_probe_result(0, sim::TimePoint{250ms}, true);
  EXPECT_FALSE(health.quarantined(0));
  EXPECT_TRUE(health.usable(0, sim::TimePoint{250ms}));
  EXPECT_EQ(health.stats().restored, 1);
  // The next quarantine starts from the initial backoff again.
  health.quarantine(0, sim::TimePoint{300ms}, "bad again");
  EXPECT_EQ(health.entry(0).backoff, health.config().backoff_initial);
}

TEST(HealthMonitor, RebootMarksForRecalibration) {
  HealthMonitor health;
  health.track(2);
  health.note_reboot(1, sim::TimePoint{0});
  EXPECT_TRUE(health.quarantined(1));
  EXPECT_TRUE(health.needs_recalibration(1));
  EXPECT_FALSE(health.needs_recalibration(0));
  EXPECT_EQ(health.stats().reboots_detected, 1);
  health.note_recalibrated(1);
  EXPECT_FALSE(health.needs_recalibration(1));
  EXPECT_EQ(health.stats().recalibrations, 1);
}

TEST(HealthMonitor, UntrackedIndicesAreUsable) {
  HealthMonitor health;
  EXPECT_TRUE(health.usable(7, sim::TimePoint{0}));
  EXPECT_FALSE(health.quarantined(7));
}

}  // namespace
}  // namespace movr::core
