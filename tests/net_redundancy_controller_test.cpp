#include <net/redundancy_controller.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

/// Evenly interleaves `losses` among `deliveries` so the EWMA settles near
/// losses / (losses + deliveries) instead of decaying a front-loaded spike.
void feed(RedundancyController& rc, int losses, int deliveries) {
  const int total = losses + deliveries;
  int sent = 0;
  for (int i = 1; i <= total; ++i) {
    const bool lose = (i * losses) / total > sent;
    if (lose) {
      ++sent;
    }
    rc.on_transmission(lose);
  }
}

TEST(RedundancyController, StaysOffOnCleanChannel) {
  RedundancyController rc;
  feed(rc, 0, 500);
  rc.on_tick(false);
  EXPECT_FALSE(rc.plan(false).enabled());
  EXPECT_FALSE(rc.active());
  EXPECT_EQ(rc.retx_budget(false), rc.config().retx_budget_unprotected);
}

TEST(RedundancyController, EnablesAboveThresholdAndHoldsThroughTheBand) {
  RedundancyController rc;
  // Push the loss EWMA well above enable_loss.
  feed(rc, 50, 50);
  rc.on_tick(false);
  EXPECT_TRUE(rc.plan(false).enabled());
  EXPECT_TRUE(rc.active());
  EXPECT_EQ(rc.counters().enables, 1u);
  // At ~50% loss parity cannot cover every hole, so the FEC-for-ARQ budget
  // trade is suspended: the full retransmit budget stays in force.
  EXPECT_EQ(rc.retx_budget(false), rc.config().retx_budget_unprotected);

  // Decay into the hysteresis band (between disable_loss and enable_loss):
  // protection must hold — no thrash — and with loss now light, parity
  // covers the common single losses and buys back retransmit budget.
  while (rc.loss_estimate() > rc.config().enable_loss) {
    rc.on_transmission(false);
  }
  EXPECT_GT(rc.loss_estimate(), rc.config().disable_loss);
  rc.on_tick(false);
  EXPECT_TRUE(rc.plan(false).enabled());
  EXPECT_EQ(rc.counters().disables, 0u);
  EXPECT_EQ(rc.retx_budget(false), rc.config().retx_budget_protected);

  // Decay below disable_loss: now it turns off.
  while (rc.loss_estimate() >= rc.config().disable_loss) {
    rc.on_transmission(false);
  }
  rc.on_tick(false);
  EXPECT_FALSE(rc.plan(false).enabled());
  EXPECT_EQ(rc.counters().disables, 1u);
}

TEST(RedundancyController, HeavierLossMeansSmallerK) {
  RedundancyController light;
  RedundancyController heavy;
  feed(light, 4, 96);   // ~4% loss
  feed(heavy, 30, 70);  // ~30% loss, past heavy_loss
  light.on_tick(false);
  heavy.on_tick(false);
  const FecParams light_plan = light.plan(false);
  const FecParams heavy_plan = heavy.plan(false);
  ASSERT_TRUE(light_plan.enabled());
  ASSERT_TRUE(heavy_plan.enabled());
  EXPECT_GT(light_plan.k, heavy_plan.k);
  EXPECT_EQ(heavy_plan.k, heavy.config().k_min);
}

TEST(RedundancyController, BurstinessDeepensInterleaving) {
  RedundancyController iid;
  RedundancyController bursty;
  // Same marginal loss (~20%), opposite correlation: isolated losses vs
  // losses in runs of four.
  for (int i = 0; i < 100; ++i) {
    iid.on_transmission(i % 5 == 0);
  }
  for (int i = 0; i < 100; ++i) {
    bursty.on_transmission(i % 20 < 4);
  }
  iid.on_tick(false);
  bursty.on_tick(false);
  EXPECT_GT(bursty.loss_after_loss(), iid.loss_after_loss());
  EXPECT_GT(bursty.expected_burst_mpdus(), iid.expected_burst_mpdus());
  const FecParams iid_plan = iid.plan(false);
  const FecParams bursty_plan = bursty.plan(false);
  ASSERT_TRUE(iid_plan.enabled());
  ASSERT_TRUE(bursty_plan.enabled());
  EXPECT_GT(bursty_plan.depth, iid_plan.depth);
}

TEST(RedundancyController, KeyframesGetDeeperProtection) {
  RedundancyController rc;
  feed(rc, 4, 96);  // light loss -> large k for P-frames
  rc.on_tick(false);
  const FecParams p_plan = rc.plan(false);
  const FecParams key_plan = rc.plan(true);
  ASSERT_TRUE(p_plan.enabled());
  ASSERT_TRUE(key_plan.enabled());
  EXPECT_LT(key_plan.k, p_plan.k);
  EXPECT_GE(key_plan.k, rc.config().keyframe_k_min);
}

TEST(RedundancyController, StressBoostsProtectionBeforeLossShowsUp) {
  RedundancyController rc;
  feed(rc, 0, 500);  // spotless history
  rc.on_tick(true);  // handover pending / fault window opened
  const FecParams plan = rc.plan(false);
  ASSERT_TRUE(plan.enabled());
  EXPECT_EQ(plan.k, rc.config().k_min);
  EXPECT_EQ(plan.depth, rc.config().depth_max);
  EXPECT_TRUE(rc.stressed());
}

TEST(RedundancyController, StressHoldOutlivesTheSignal) {
  RedundancyController rc;
  rc.on_tick(true);
  for (int i = 0; i < rc.config().stress_hold_ticks; ++i) {
    rc.on_tick(false);
    EXPECT_TRUE(rc.plan(false).enabled()) << "tick " << i;
  }
  // Hold expired and the loss EWMA is clean: protection drops.
  rc.on_tick(false);
  EXPECT_FALSE(rc.plan(false).enabled());
}

TEST(RedundancyController, ResetRestoresFreshState) {
  RedundancyController rc;
  feed(rc, 50, 50);
  rc.on_tick(true);
  rc.plan(true);
  rc.reset();
  EXPECT_FALSE(rc.active());
  EXPECT_FALSE(rc.stressed());
  EXPECT_DOUBLE_EQ(rc.loss_estimate(), 0.0);
  EXPECT_EQ(rc.counters().enables, 0u);
  rc.on_tick(false);
  EXPECT_FALSE(rc.plan(false).enabled());
}

}  // namespace
}  // namespace movr::net
