// Move-safety regression: the oracle holds a pointer into the Scene's own
// Room, which relocates when the Scene is moved. The seed code dodged the
// problem by materialising a tracer per query; the oracle must instead
// detect the stale binding and rebind (dropping its cache) on the first
// query after a move.
#include <core/scene.hpp>

#include <gtest/gtest.h>

#include <utility>

#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::deg_to_rad;

Scene make_scene() {
  Scene scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}};
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  return scene;
}

TEST(SceneMove, QueriesSurviveMoveConstruction) {
  Scene scene = make_scene();
  const double before = scene.direct_snr().value();
  EXPECT_GT(scene.oracle_stats().queries, 0u);

  Scene moved{std::move(scene)};
  // The first query after the move rebinds the oracle to the relocated
  // room; the answer must not change.
  EXPECT_EQ(moved.direct_snr().value(), before);
  EXPECT_EQ(&moved.oracle().room(), &moved.room());
}

TEST(SceneMove, QueriesSurviveMoveAssignment) {
  Scene scene = make_scene();
  const double before = scene.direct_snr().value();
  Scene other = make_scene();
  other = std::move(scene);
  EXPECT_EQ(other.direct_snr().value(), before);
}

TEST(SceneMove, CacheRebindsNotServesStaleEntries) {
  Scene scene = make_scene();
  scene.direct_snr();
  scene.direct_snr();
  const auto warm = scene.oracle_stats();
  EXPECT_GT(warm.hits, 0u);

  Scene moved{std::move(scene)};
  const auto after_move_query = [&] {
    moved.direct_snr();
    return moved.oracle_stats();
  }();
  // The rebind shows up as an invalidation: the post-move query cannot be
  // served from the pre-move cache.
  EXPECT_GT(after_move_query.invalidations, warm.invalidations);
}

TEST(SceneMove, MutationAfterMoveStillInvalidates) {
  Scene scene = make_scene();
  scene.direct_snr();
  Scene moved{std::move(scene)};
  const double clear = moved.direct_snr().value();
  moved.room().add_obstacle(channel::make_person(
      (moved.ap().node().position() + moved.headset().node().position()) *
      0.5));
  const double blocked = moved.direct_snr().value();
  EXPECT_GT(clear - blocked, 15.0);
  moved.room().remove_obstacles("person");
  EXPECT_EQ(moved.direct_snr().value(), clear);
}

TEST(SceneMove, CloneIsIndependent) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().set_gain_code(150);

  const Scene copy = scene.clone();
  ASSERT_EQ(copy.reflector_count(), 1u);
  EXPECT_EQ(copy.reflector(0).control_name(), reflector.control_name());
  EXPECT_EQ(copy.reflector(0).front_end().gain_code(), 150u);
  EXPECT_EQ(copy.direct_snr().value(), scene.direct_snr().value());

  // Mutating the original must not leak into the clone.
  scene.room().add_obstacle(channel::make_person(
      (scene.ap().node().position() + scene.headset().node().position()) *
      0.5));
  EXPECT_GT(copy.direct_snr().value() - scene.direct_snr().value(), 15.0);
  // And the clone started with a cold cache of its own.
  EXPECT_EQ(&copy.oracle().room(), &copy.room());
}

}  // namespace
}  // namespace movr::core
