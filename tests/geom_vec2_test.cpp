#include <geom/vec2.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::geom {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  constexpr Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  constexpr Vec2 a{1.0, 2.0};
  constexpr Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, DotAndCross) {
  constexpr Vec2 a{1.0, 0.0};
  constexpr Vec2 b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);
  EXPECT_EQ(b.cross(a), -1.0);
  EXPECT_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, v), 5.0);
}

TEST(Vec2, Normalized) {
  const Vec2 v = Vec2{10.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(v.x, 1.0);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
  const Vec2 d = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(d.norm(), 1.0, 1e-12);
}

TEST(Vec2, RotatedQuarterTurn) {
  const Vec2 v = Vec2{1.0, 0.0}.rotated(kPi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.0, -3.0};
  for (double a = -6.0; a <= 6.0; a += 0.37) {
    EXPECT_NEAR(v.rotated(a).norm(), v.norm(), 1e-12) << "angle " << a;
  }
}

TEST(Vec2, PerpIsOrthogonal) {
  constexpr Vec2 v{2.0, 5.0};
  EXPECT_EQ(v.dot(v.perp()), 0.0);
  EXPECT_GT(v.cross(v.perp()), 0.0);  // CCW
}

TEST(Vec2, HeadingRoundTrip) {
  for (double a = -3.0; a <= 3.0; a += 0.173) {
    const Vec2 v = Vec2::from_heading(a);
    EXPECT_NEAR(v.heading(), a, 1e-12) << "angle " << a;
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
}

TEST(Vec2, HeadingOfAxes) {
  EXPECT_NEAR(Vec2(1.0, 0.0).heading(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).heading(), kPi / 2.0, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).heading(), kPi, 1e-12);
  EXPECT_NEAR(Vec2(0.0, -1.0).heading(), -kPi / 2.0, 1e-12);
}

}  // namespace
}  // namespace movr::geom
