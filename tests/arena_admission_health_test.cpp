// Admission x health composition (ISSUE: arena-scale chaos):
//   * a user whose bad airtime economics are fault-induced (reflector
//     quarantined / AP browned out) must not be double-punished as the
//     eviction victim while a non-faulted alternative exists — but when
//     EVERY transmitting user on the AP is fault-degraded, someone still
//     has to shed;
//   * an evicted user whose readmit backoff has expired must stay out
//     while its AP sits inside the hysteresis band (no headroom evidence
//     accumulates there), and once headroom does return, readmission
//     probation composes with the fault window: still fault-degraded =>
//     still out, fault cleared => probation first, full weight after
//     another dwell.
#include <arena/admission.hpp>

#include <gtest/gtest.h>

#include <array>

namespace movr::arena {
namespace {

sim::TimePoint ms(long v) {
  return sim::TimePoint{std::chrono::milliseconds{v}};
}

struct Stepper {
  AdmissionController& admission;
  sim::TimePoint now{ms(0)};

  template <std::size_t N>
  void windows(const std::array<AdmissionController::Sample, N>& samples,
               int n) {
    for (int i = 0; i < n; ++i) {
      now = now + std::chrono::milliseconds{250};
      admission.on_window(samples, now);
    }
  }
};

TEST(ArenaAdmissionHealth, FaultDegradedUserIsSparedAsVictim) {
  AdmissionController admission{2, 1, {}};
  Stepper step{admission};

  // User 0 burns 6.0 airtime ratios — but only because its reflector is
  // benched (fault_degraded). User 1 is healthy at 0.15.
  AdmissionController::Sample faulted{0, 300.0, 50.0, 0.9, true};
  const AdmissionController::Sample healthy{0, 300.0, 2000.0, 0.0, false};
  std::array<AdmissionController::Sample, 2> window{faulted, healthy};

  step.windows(window, 3);
  // The non-faulted alternative sheds, the faulted burner is spared.
  EXPECT_EQ(admission.state(0), AdmissionController::State::kAdmitted);
  EXPECT_EQ(admission.state(1), AdmissionController::State::kDegraded);
  EXPECT_EQ(admission.counters(0).fault_spares, 1);
  EXPECT_EQ(admission.counters(1).degrades, 1);

  // When everyone left transmitting on the AP is fault-degraded, the
  // sparing rule yields: the worst burner sheds unconditionally.
  window[1].fault_degraded = true;
  step.windows(window, 3);
  EXPECT_EQ(admission.state(0), AdmissionController::State::kDegraded);
  EXPECT_EQ(admission.counters(0).degrades, 1);
}

TEST(ArenaAdmissionHealth, HysteresisBandAndFaultWindowBothBlockReadmission) {
  AdmissionController admission{2, 1, {}};
  Stepper step{admission};

  // Drive user 1 out: persistent worst airtime economics, no fault.
  const AdmissionController::Sample healthy{0, 300.0, 2000.0, 0.0, false};
  const AdmissionController::Sample starving{0, 300.0, 50.0, 0.9, false};
  const std::array<AdmissionController::Sample, 2> overload{healthy,
                                                           starving};
  step.windows(overload, 3);
  ASSERT_EQ(admission.state(1), AdmissionController::State::kDegraded);
  step.windows(overload, 3);
  ASSERT_EQ(admission.state(1), AdmissionController::State::kEvicted);
  const sim::TimePoint evicted_at = step.now;

  // The surviving user parks the AP inside the hysteresis band
  // (0.60 < 300/430 = 0.698 < 0.85): no headroom evidence accumulates, so
  // the evictee stays out even long after the 2 s readmit backoff.
  const std::array<AdmissionController::Sample, 2> in_band{
      AdmissionController::Sample{0, 300.0, 430.0, 0.0, false}, starving};
  step.windows(in_band, 12);  // 3 s in the band
  ASSERT_GT(step.now - evicted_at, std::chrono::seconds{2});
  EXPECT_EQ(admission.state(1), AdmissionController::State::kEvicted);
  EXPECT_EQ(admission.counters(1).readmissions, 0);

  // Headroom returns — but the evictee is now quarantine-flagged
  // (fault_degraded): probation composes with the fault window, so the
  // expired backoff alone does not readmit it.
  const AdmissionController::Sample idle{0, 100.0, 2000.0, 0.0, false};
  std::array<AdmissionController::Sample, 2> calm{
      idle, AdmissionController::Sample{0, 0.0, 2000.0, 0.0, true}};
  step.windows(calm, 4);
  EXPECT_EQ(admission.state(1), AdmissionController::State::kEvicted);
  EXPECT_EQ(admission.counters(1).readmissions, 0);

  // Fault clears: the next headroom dwell readmits — through degraded
  // probation first, never straight to full weight.
  calm[1].fault_degraded = false;
  step.windows(calm, 3);
  EXPECT_EQ(admission.state(1), AdmissionController::State::kDegraded);
  EXPECT_EQ(admission.counters(1).readmissions, 1);
  step.windows(calm, 3);
  EXPECT_EQ(admission.state(1), AdmissionController::State::kAdmitted);
  EXPECT_EQ(admission.counters(1).readmissions, 2);
}

}  // namespace
}  // namespace movr::arena
