// Randomised property tests: invariants that must hold for ANY geometry,
// not just the hand-picked fixtures — seeded and deterministic.
#include <gtest/gtest.h>

#include <channel/ray_tracer.hpp>
#include <channel/room.hpp>
#include <geom/angle.hpp>
#include <hw/front_end.hpp>
#include <hw/stability.hpp>
#include <phy/link.hpp>
#include <sim/rng.hpp>

namespace movr {
namespace {

using geom::Vec2;

class RayTracerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RayTracerFuzz, PathInvariantsHold) {
  sim::RngRegistry rngs{GetParam()};
  auto rng = rngs.stream("fuzz");
  std::uniform_real_distribution<double> dim{3.0, 9.0};
  channel::Room room{dim(rng), dim(rng)};
  std::uniform_int_distribution<int> n_obstacles{0, 3};
  const int obstacles = n_obstacles(rng);
  for (int i = 0; i < obstacles; ++i) {
    room.add_obstacle(channel::make_person(room.random_interior_point(rng, 0.4)));
  }
  const channel::RayTracer tracer{room};
  for (int trial = 0; trial < 8; ++trial) {
    const Vec2 a = room.random_interior_point(rng, 0.3);
    const Vec2 b = room.random_interior_point(rng, 0.3);
    if (geom::distance(a, b) < 0.1) {
      continue;
    }
    const auto paths = tracer.trace(a, b);
    ASSERT_FALSE(paths.empty());
    double prev_loss = -1.0;
    for (const auto& p : paths) {
      // Sorted by loss, all losses positive and finite.
      EXPECT_GE(p.loss.value(), prev_loss);
      prev_loss = p.loss.value();
      EXPECT_GT(p.loss.value(), 0.0);
      EXPECT_LT(p.loss.value(), 250.0);
      // Geometric length at least the straight-line distance.
      EXPECT_GE(p.length_m, geom::distance(a, b) - 1e-9);
      // Vertices consistent with the bounce count.
      EXPECT_EQ(p.vertices.size(), static_cast<std::size_t>(p.bounces) + 2);
      EXPECT_EQ(p.vertices.front(), a);
      EXPECT_EQ(p.vertices.back(), b);
      // Length equals the vertex-chain length.
      double chain = 0.0;
      for (std::size_t i = 1; i < p.vertices.size(); ++i) {
        chain += geom::distance(p.vertices[i - 1], p.vertices[i]);
      }
      EXPECT_NEAR(chain, p.length_m, 1e-9);
      // Departure/arrival azimuths match the first/last legs.
      EXPECT_NEAR(geom::angular_distance(
                      p.departure_azimuth,
                      (p.vertices[1] - p.vertices[0]).heading()),
                  0.0, 1e-9);
      EXPECT_NEAR(geom::angular_distance(
                      p.arrival_azimuth,
                      (p.vertices[p.vertices.size() - 2] - p.vertices.back())
                          .heading()),
                  0.0, 1e-9);
      // Obstruction is part of the loss, never negative.
      EXPECT_GE(p.obstruction.value(), 0.0);
      EXPECT_GE(p.loss.value(), p.obstruction.value());
      // Bounce points lie on walls.
      for (std::size_t i = 1; i + 1 < p.vertices.size(); ++i) {
        bool on_wall = false;
        for (const auto& wall : room.walls()) {
          on_wall = on_wall || geom::contains(wall.extent, p.vertices[i], 1e-6);
        }
        EXPECT_TRUE(on_wall) << p.vertices[i];
      }
    }
  }
}

TEST_P(RayTracerFuzz, ReciprocityOfLoss) {
  // Swapping endpoints preserves the loss multiset (antenna-free channel
  // reciprocity).
  sim::RngRegistry rngs{GetParam()};
  auto rng = rngs.stream("recip");
  channel::Room room{5.0, 5.0};
  const Vec2 a = room.random_interior_point(rng, 0.4);
  const Vec2 b = room.random_interior_point(rng, 0.4);
  const channel::RayTracer tracer{room};
  auto forward = tracer.trace(a, b);
  auto backward = tracer.trace(b, a);
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_NEAR(forward[i].loss.value(), backward[i].loss.value(), 1e-6);
    EXPECT_NEAR(forward[i].length_m, backward[i].length_m, 1e-9);
  }
}

TEST_P(RayTracerFuzz, StabilityCriterionMatchesProcess) {
  // For random beam pairs and gain codes, the front end's stable flag must
  // agree exactly with the G < L criterion.
  sim::RngRegistry rngs{GetParam()};
  auto rng = rngs.stream("stab");
  hw::ReflectorFrontEnd::Config config;
  std::uniform_real_distribution<double> coupling{-20.0, -4.0};
  config.leakage.board_coupling = rf::Decibels{coupling(rng)};
  hw::ReflectorFrontEnd fe{config};
  std::uniform_real_distribution<double> angle{geom::deg_to_rad(40.0),
                                               geom::deg_to_rad(140.0)};
  std::uniform_int_distribution<std::uint32_t> code{0, fe.max_gain_code()};
  for (int trial = 0; trial < 20; ++trial) {
    fe.steer_tx(angle(rng));
    fe.steer_rx(angle(rng));
    fe.set_gain_code(code(rng));
    const auto state = fe.process(rf::DbmPower{-50.0});
    EXPECT_EQ(state.stable,
              hw::is_loop_stable(fe.amplifier_gain(), state.isolation));
    if (state.stable) {
      // Output power is finite and consistent with the effective gain.
      EXPECT_NEAR(state.output.value(),
                  -50.0 + state.effective_gain.value(), 1e-9);
    }
  }
}

TEST_P(RayTracerFuzz, LinkSnrFiniteForRandomSteering) {
  sim::RngRegistry rngs{GetParam()};
  auto rng = rngs.stream("link");
  channel::Room room{5.0, 5.0};
  const Vec2 a = room.random_interior_point(rng, 0.4);
  const Vec2 b = room.random_interior_point(rng, 0.4);
  const channel::RayTracer tracer{room};
  const auto paths = tracer.trace(a, b);
  std::uniform_real_distribution<double> az{0.0, geom::kTwoPi};
  phy::RadioNode tx{a, az(rng)};
  phy::RadioNode rx{b, az(rng)};
  const phy::LinkConfig config;
  for (int trial = 0; trial < 10; ++trial) {
    tx.array().steer(az(rng));
    rx.array().steer(az(rng));
    const double snr = phy::link_snr(tx, rx, paths, config).value();
    EXPECT_TRUE(std::isfinite(snr));
    EXPECT_LT(snr, 80.0);   // no free energy
    EXPECT_GT(snr, -300.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RayTracerFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace movr
