// Session-level tests for the opt-in transport data-plane.
#include <vr/session.hpp>

#include <gtest/gtest.h>

#include <baseline/strategies.hpp>
#include <core/gain_control.hpp>
#include <geom/angle.hpp>
#include <sim/fault_injector.hpp>

namespace movr::vr {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;

core::Scene make_scene() {
  return core::Scene{channel::Room{5.0, 5.0},
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void calibrate_reflector(core::Scene& scene, core::MovrReflector& reflector) {
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  std::mt19937_64 rng{5};
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
}

TEST(SessionTransport, DisabledByDefaultAndAbsentFromReport) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(1.0);
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();
  EXPECT_FALSE(report.transport.has_value());
}

TEST(SessionTransport, CleanLosDeliversEveryPFrameOnTime) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  config.transport = net::TransportConfig{};
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.transport.has_value());
  const net::TransportMetrics& metrics = *report.transport;
  EXPECT_EQ(report.frames, 180u);
  EXPECT_EQ(metrics.frames_emitted, report.frames);
  EXPECT_TRUE(metrics.conserved());
  // A raw Vive stream runs MCS 24 at ~83% utilization, so a 2.5x keyframe
  // needs ~22 ms of air and can never make its 10 ms deadline; the
  // deadline-aware queue sheds it there and protects the P-frames. Exactly
  // the 6 keyframes (GOP 30 over 180 frames) miss, everything else lands.
  EXPECT_EQ(metrics.deadline_misses, 6u);
  EXPECT_EQ(metrics.frames_on_time + metrics.frames_unresolved, 174u);
  EXPECT_EQ(report.glitched_frames, 6u);
  EXPECT_GT(metrics.p50_ms, 0.0);
  EXPECT_LT(metrics.p95_ms,
            sim::to_milliseconds(config.display.latency_budget()));
}

TEST(SessionTransport, DeliverableBitrateHasNoMisses) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  net::TransportConfig transport;
  // A compressed stream leaves headroom for keyframes: clean LOS delivers
  // every frame at its deadline.
  transport.source.target_mbps = 2000.0;
  config.transport = transport;
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.transport.has_value());
  const net::TransportMetrics& metrics = *report.transport;
  EXPECT_TRUE(metrics.conserved());
  EXPECT_EQ(metrics.deadline_misses, 0u);
  EXPECT_EQ(metrics.frames_on_time + metrics.frames_unresolved,
            metrics.frames_emitted);
  EXPECT_EQ(report.glitched_frames, 0u);
  EXPECT_LT(metrics.p99_ms,
            sim::to_milliseconds(config.display.latency_budget()));
}

TEST(SessionTransport, BudgetDerivedFromDisplayRequirements) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(1.0);
  config.transport = net::TransportConfig{};  // target_mbps left at 0
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();
  ASSERT_TRUE(report.transport.has_value());
  // ~5.6 Gbps at 90 fps is ~7.8 MB per frame; a second of traffic must
  // have moved roughly required_mbps worth of payload.
  const double delivered_mbit =
      static_cast<double>(report.transport->bytes_delivered) * 8.0 / 1e6;
  EXPECT_GT(delivered_mbit, config.display.required_mbps() * 0.8);
}

TEST(SessionTransport, BlockageCausesDeadlineMissesWithoutMovr) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(2.0));
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  config.transport = net::TransportConfig{};
  Session session{simulator, scene, strategy, nullptr, &script, config};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.transport.has_value());
  const net::TransportMetrics& metrics = *report.transport;
  EXPECT_TRUE(metrics.conserved());
  EXPECT_GT(metrics.deadline_misses, 0u);
  EXPECT_GT(report.glitch_fraction(), 0.3);
  EXPECT_LT(report.glitch_fraction(), 0.7);
}

TEST(SessionTransport, MovrMissesFewerDeadlinesThanDirect) {
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(4.0));
  Session::Config config;
  config.duration = sim::from_seconds(4.0);
  config.transport = net::TransportConfig{};

  QoeReport direct_report;
  {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session session{simulator, scene, strategy, nullptr, &script, config};
    direct_report = session.run();
  }
  QoeReport movr_report;
  {
    core::Scene scene = make_scene();
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    calibrate_reflector(scene, reflector);
    sim::Simulator simulator;
    MovrStrategy strategy{simulator, scene, std::mt19937_64{3}};
    Session session{simulator, scene, strategy, nullptr, &script, config};
    movr_report = session.run();
  }
  ASSERT_TRUE(direct_report.transport.has_value());
  ASSERT_TRUE(movr_report.transport.has_value());
  EXPECT_TRUE(direct_report.transport->conserved());
  EXPECT_TRUE(movr_report.transport->conserved());
  EXPECT_LT(movr_report.transport->deadline_misses,
            direct_report.transport->deadline_misses / 2);
  // The raw Vive stream saturates p99 for both (keyframes can never make
  // their deadline), so compare the p95 tail instead.
  EXPECT_LT(movr_report.transport->p95_ms, direct_report.transport->p95_ms);
}

TEST(SessionTransport, FaultWindowStacksLossAndForcesRetransmits) {
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  config.transport = net::TransportConfig{};

  std::uint64_t clean_retx = 0;
  {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session session{simulator, scene, strategy, nullptr, nullptr, config};
    const QoeReport report = session.run();
    clean_retx = report.transport->retransmits;
  }
  std::uint64_t faulted_retx = 0;
  {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    sim::FaultInjector faults{simulator};
    faults.inject("packet-loss-storm", sim::from_seconds(0.5),
                  sim::from_seconds(1.0), [] {});
    baseline::DirectTrackingStrategy strategy{scene};
    config.faults = &faults;
    Session session{simulator, scene, strategy, nullptr, nullptr, config};
    const QoeReport report = session.run();
    ASSERT_TRUE(report.transport.has_value());
    EXPECT_TRUE(report.transport->conserved());
    faulted_retx = report.transport->retransmits;
  }
  // A 50% loss window over half the session has to retransmit a lot more
  // than the clean run.
  EXPECT_GT(faulted_retx, clean_retx + 100);
}

TEST(SessionTransport, TransportToggleLeavesWorldTrajectoryBitIdentical) {
  // The transport (with burst loss and adaptive FEC) draws from its own
  // dedicated RNG streams, so switching it on must not perturb the world:
  // the MoVR strategy's SNR trajectory — driven by blockage, handover and
  // the link manager's own stream — stays bit-identical frame for frame.
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.4), sim::from_seconds(0.4),
                           sim::from_seconds(0.8), sim::from_seconds(2.0));
  const auto run_once = [&script](bool with_transport) {
    core::Scene scene = make_scene();
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    calibrate_reflector(scene, reflector);
    sim::Simulator simulator;
    MovrStrategy strategy{simulator, scene, std::mt19937_64{3}};
    Session::Config config;
    config.duration = sim::from_seconds(2.0);
    if (with_transport) {
      net::TransportConfig transport;
      transport.source.target_mbps = 2000.0;
      transport.adaptive_fec = true;
      config.transport = transport;
      config.burst_loss = sim::BurstChannel::Config{};
    }
    Session session{simulator, scene, strategy, nullptr, &script, config};
    return session.run();
  };
  const QoeReport legacy = run_once(false);
  const QoeReport transported = run_once(true);
  EXPECT_FALSE(legacy.transport.has_value());
  ASSERT_TRUE(transported.transport.has_value());
  EXPECT_EQ(legacy.frames, transported.frames);
  EXPECT_EQ(legacy.mean_snr_db, transported.mean_snr_db);
  EXPECT_EQ(legacy.min_snr_db, transported.min_snr_db);
}

TEST(SessionTransport, BurstLossSessionClosesLedgerAndReportsCounters) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  sim::FaultInjector faults{simulator};
  faults.inject("blockage-window", sim::from_seconds(0.5),
                sim::from_seconds(0.6), [] {});
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  config.faults = &faults;
  net::TransportConfig transport;
  transport.source.target_mbps = 2000.0;
  transport.adaptive_fec = true;
  config.transport = transport;
  config.burst_loss = sim::BurstChannel::Config{};
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();

  ASSERT_TRUE(report.burst.has_value());
  EXPECT_EQ(report.burst->steps, report.frames);
  // The fault window forced the chain bad at least once and the chain
  // spent time there.
  EXPECT_GE(report.burst->forced_bad, 1u);
  EXPECT_GT(report.burst->steps_bad, 0u);

  ASSERT_TRUE(report.transport.has_value());
  const net::TransportMetrics& metrics = *report.transport;
  EXPECT_TRUE(metrics.conserved());
  // The ~54% bad-state loss inside the forced window drives the adaptive
  // layer on: parity flowed and the controller engaged.
  EXPECT_GT(metrics.fec_frames_protected, 0u);
  EXPECT_GT(metrics.parity_enqueued, 0u);
  EXPECT_LE(metrics.packets_recovered_delivered, metrics.packets_recovered);
}

TEST(SessionTransport, DeterministicAcrossRuns) {
  Session::Config config;
  config.duration = sim::from_seconds(1.0);
  config.transport = net::TransportConfig{};

  const auto run_once = [&config] {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session session{simulator, scene, strategy, nullptr, nullptr, config};
    return session.run();
  };
  const QoeReport a = run_once();
  const QoeReport b = run_once();
  ASSERT_TRUE(a.transport.has_value());
  ASSERT_TRUE(b.transport.has_value());
  EXPECT_EQ(a.transport->packets_enqueued, b.transport->packets_enqueued);
  EXPECT_EQ(a.transport->packets_delivered, b.transport->packets_delivered);
  EXPECT_EQ(a.transport->retransmits, b.transport->retransmits);
  EXPECT_EQ(a.transport->p99_ms, b.transport->p99_ms);
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
}

}  // namespace
}  // namespace movr::vr
