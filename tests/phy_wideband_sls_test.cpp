#include <gtest/gtest.h>

#include <phy/link.hpp>
#include <phy/sls.hpp>
#include <rf/band.hpp>
#include <rf/propagation.hpp>

namespace movr::phy {
namespace {

TEST(Wideband, SinglePathUnaffectedByAveraging) {
  const std::vector<PathComponent> one{{std::complex<double>{1e-3, 0.0}, 4.0}};
  LinkConfig narrow;
  narrow.frequency_samples = 1;
  LinkConfig wide;
  wide.frequency_samples = 16;
  const double a =
      wideband_power(one, narrow, rf::Decibels{0.0}).value();
  const double b = wideband_power(one, wide, rf::Decibels{0.0}).value();
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Wideband, TwoPathFadeSmoothed) {
  // Two equal paths 0.8 m apart: a narrowband tone can land in a null;
  // the wideband average must sit near the incoherent sum (+3 dB over one
  // path), far above the null.
  std::vector<PathComponent> paths{
      {std::complex<double>{1e-3, 0.0}, 4.0},
      {std::complex<double>{1e-3, 0.0}, 4.8},
  };
  LinkConfig wide;
  wide.frequency_samples = 32;
  const double avg = wideband_power(paths, wide, rf::Decibels{0.0}).value();
  const double one_path =
      wideband_power({paths.begin(), paths.begin() + 1}, wide,
                     rf::Decibels{0.0})
          .value();
  EXPECT_NEAR(avg - one_path, 3.0, 1.5);

  // And a narrowband evaluation at the worst frequency dips far below.
  LinkConfig narrow;
  narrow.frequency_samples = 1;
  double deepest = 1e9;
  for (double offset = -1.0e9; offset <= 1.0e9; offset += 1e7) {
    LinkConfig probe = narrow;
    probe.carrier_hz += offset;
    deepest = std::min(
        deepest, wideband_power(paths, probe, rf::Decibels{0.0}).value());
  }
  EXPECT_LT(deepest, avg - 10.0);
}

TEST(Wideband, ExtraLossSubtracts) {
  const std::vector<PathComponent> one{{std::complex<double>{1e-3, 0.0}, 4.0}};
  const LinkConfig config;
  const double base =
      wideband_power(one, config, rf::Decibels{0.0}).value();
  const double lossy =
      wideband_power(one, config, rf::Decibels{7.5}).value();
  EXPECT_NEAR(base - lossy, 7.5, 1e-9);
}

TEST(Wideband, EmptyPathsIsNoSignal) {
  const LinkConfig config;
  EXPECT_LT(wideband_power({}, config, rf::Decibels{0.0}).value(), -250.0);
}

TEST(Band, Presets) {
  EXPECT_NEAR(rf::k24GhzPrototype.carrier_hz, 24.125e9, 1.0);
  EXPECT_NEAR(rf::k60GhzWigig.carrier_hz, 60.48e9, 1.0);
  EXPECT_EQ(rf::k24GhzPrototype.bandwidth_hz, rf::k60GhzWigig.bandwidth_hz);
}

TEST(Band, OxygenAbsorptionPeaksAt60GHz) {
  const double at24 = rf::atmospheric_absorption(1000.0, 24.0e9).value();
  const double at60 = rf::atmospheric_absorption(1000.0, 60.0e9).value();
  const double at73 = rf::atmospheric_absorption(1000.0, 73.0e9).value();
  EXPECT_NEAR(at24, 0.1, 0.05);
  EXPECT_NEAR(at60, 15.0, 1.0);
  EXPECT_LT(at73, 1.0);
  // Room scale: negligible everywhere.
  EXPECT_LT(rf::atmospheric_absorption(10.0, 60.0e9).value(), 0.2);
}

TEST(Band, AbsorptionMonotoneInDistance) {
  EXPECT_GT(rf::atmospheric_absorption(200.0, 60.0e9).value(),
            rf::atmospheric_absorption(100.0, 60.0e9).value());
  EXPECT_EQ(rf::atmospheric_absorption(0.0, 60.0e9).value(), 0.0);
}

TEST(Sls, DurationArithmetic) {
  SlsConfig config;
  config.initiator_sectors = 32;
  config.responder_sectors = 32;
  // 64 sectors x 17 us + 50 us feedback = 1138 us.
  EXPECT_NEAR(sim::to_microseconds(sls_duration(config)), 1138.0, 1.0);
}

TEST(Sls, SectorsForCoverage) {
  EXPECT_EQ(sectors_for_coverage(160.0, 10.0), 16);
  EXPECT_EQ(sectors_for_coverage(160.0, 15.0), 11);
  EXPECT_EQ(sectors_for_coverage(10.0, 15.0), 1);
  EXPECT_EQ(sectors_for_coverage(90.0, 0.0), 1);
}

TEST(Sls, StandardTrainingIsSubMillisecond) {
  // The point of the comparison: the standard's own training is ~1 ms of
  // airtime, while MoVR's reflector search is Bluetooth-paced (~1 s). The
  // reflector simply cannot run SLS — it has no receiver.
  SlsConfig config;
  config.initiator_sectors = sectors_for_coverage(160.0, 10.0);
  config.responder_sectors = config.initiator_sectors;
  EXPECT_LT(sim::to_milliseconds(sls_duration(config)), 2.0);
}

}  // namespace
}  // namespace movr::phy
