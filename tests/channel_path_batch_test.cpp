// Differential suite for the SoA batch kernel: PathSolver::solve_batch must
// be bit-identical to a scalar solve() loop over the same endpoint pairs —
// same surviving paths, same order, every field equal to the last bit. The
// batch path shares the scalar path's candidate helpers by construction;
// these tests are the tripwire for any future divergence (a reordered sum,
// a contracted FMA, a different trim rule).
#include <channel/path_batch.hpp>
#include <channel/path_solver.hpp>

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include <channel/obstacle.hpp>
#include <channel/room.hpp>

namespace movr::channel {
namespace {

void expect_bit_identical(const std::vector<Path>& scalar,
                          const PathBatch& batch, std::size_t q) {
  ASSERT_EQ(scalar.size(), batch.query_paths(q));
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const std::size_t p = batch.query_first(q) + i;
    EXPECT_EQ(scalar[i].departure_azimuth, batch.departure_azimuth(p));
    EXPECT_EQ(scalar[i].arrival_azimuth, batch.arrival_azimuth(p));
    EXPECT_EQ(scalar[i].length_m, batch.length_m(p));
    EXPECT_EQ(scalar[i].loss.value(), batch.loss_db(p));
    EXPECT_EQ(scalar[i].obstruction.value(), batch.obstruction_db(p));
    EXPECT_EQ(scalar[i].bounces, batch.bounces(p));
    ASSERT_EQ(scalar[i].vertices.size(), batch.vertex_count(p));
    for (std::size_t k = 0; k < scalar[i].vertices.size(); ++k) {
      EXPECT_EQ(scalar[i].vertices[k].x, batch.vertex(p, k).x);
      EXPECT_EQ(scalar[i].vertices[k].y, batch.vertex(p, k).y);
    }
    // The AoS bridge rebuilds the exact Path.
    const Path rebuilt = batch.path(p);
    EXPECT_EQ(scalar[i].loss.value(), rebuilt.loss.value());
    EXPECT_EQ(scalar[i].vertices.size(), rebuilt.vertices.size());
  }
}

void run_differential(const Room& room, const EndpointBatch& endpoints) {
  const PathSolver solver{room};
  PathBatch batch;
  PathSolver::BatchWorkspace ws;
  solver.solve_batch(endpoints, batch, ws);
  ASSERT_EQ(batch.queries(), endpoints.size());
  for (std::size_t q = 0; q < endpoints.size(); ++q) {
    const std::vector<Path> scalar =
        solver.solve(endpoints.a(q), endpoints.b(q));
    expect_bit_identical(scalar, batch, q);
  }
}

TEST(PathBatch, EmptyBatchYieldsNoQueries) {
  const Room room{6.0, 5.0};
  const PathSolver solver{room};
  EndpointBatch endpoints;
  PathBatch batch;
  PathSolver::BatchWorkspace ws;
  solver.solve_batch(endpoints, batch, ws);
  EXPECT_EQ(batch.queries(), 0u);
  EXPECT_EQ(batch.paths(), 0u);
}

TEST(PathBatch, CoverageGridMatchesScalarLoop) {
  // The tentpole workload: a coverage grid's worth of AP->cell pairs in an
  // empty office.
  const Room room = Room::paper_office();
  EndpointBatch endpoints;
  const geom::Vec2 ap{0.5, 0.5};
  for (double y = 0.4; y < room.depth() - 0.4; y += 0.45) {
    for (double x = 0.4; x < room.width() - 0.4; x += 0.45) {
      endpoints.push(ap, {x, y});
    }
  }
  ASSERT_GE(endpoints.size(), 100u);
  run_differential(room, endpoints);
}

TEST(PathBatch, ObstructedRoomMatchesScalarLoop) {
  // Obstacles exercise the per-leg obstruction sums — the most floating-
  // point-sensitive part of the candidate math.
  Room room = Room::paper_office();
  std::mt19937_64 rng{7};
  room.add_obstacle(make_person(room.random_interior_point(rng, 0.8)));
  room.add_obstacle(make_head(room.random_interior_point(rng, 0.8),
                              {1.0, 0.3}));
  room.add_obstacle(make_hand(room.random_interior_point(rng, 0.8),
                              {-0.5, 1.0}));

  EndpointBatch endpoints;
  std::uniform_real_distribution<double> ux{0.2, room.width() - 0.2};
  std::uniform_real_distribution<double> uy{0.2, room.depth() - 0.2};
  for (int i = 0; i < 200; ++i) {
    endpoints.push({ux(rng), uy(rng)}, {ux(rng), uy(rng)});
  }
  run_differential(room, endpoints);
}

TEST(PathBatch, RandomizedEndpointsAcrossRoomShapes) {
  std::mt19937_64 rng{99};
  for (const auto& dims : {std::pair{3.0, 3.0}, std::pair{8.0, 4.0},
                           std::pair{12.0, 9.0}}) {
    Room room{dims.first, dims.second};
    std::uniform_real_distribution<double> ux{0.1, dims.first - 0.1};
    std::uniform_real_distribution<double> uy{0.1, dims.second - 0.1};
    EndpointBatch endpoints;
    for (int i = 0; i < 64; ++i) {
      endpoints.push({ux(rng), uy(rng)}, {ux(rng), uy(rng)});
    }
    run_differential(room, endpoints);
  }
}

TEST(PathBatch, DegenerateEndpointsMatchScalar) {
  // Coincident endpoints and points hugging a wall hit the degenerate-leg
  // guards; the batch path must take exactly the same branches.
  const Room room{5.0, 5.0};
  EndpointBatch endpoints;
  endpoints.push({2.5, 2.5}, {2.5, 2.5});        // zero-length LOS
  endpoints.push({0.01, 2.5}, {4.99, 2.5});      // endpoints at walls
  endpoints.push({2.5, 0.01}, {2.5, 0.01});      // coincident at a wall
  endpoints.push({1.0, 1.0}, {1.0, 4.0});        // axis-aligned
  run_differential(room, endpoints);
}

TEST(PathBatch, WorkspaceReuseAcrossBatchesStaysIdentical) {
  // Recycling one workspace and output batch across calls (the oracle's
  // usage) must not leak state between batches.
  Room room = Room::paper_office();
  std::mt19937_64 rng{41};
  room.add_obstacle(make_person(room.random_interior_point(rng, 0.8)));
  const PathSolver solver{room};
  PathBatch batch;
  PathSolver::BatchWorkspace ws;
  std::uniform_real_distribution<double> ux{0.2, room.width() - 0.2};
  std::uniform_real_distribution<double> uy{0.2, room.depth() - 0.2};
  for (int round = 0; round < 5; ++round) {
    EndpointBatch endpoints;
    for (int i = 0; i < 30 + round * 17; ++i) {
      endpoints.push({ux(rng), uy(rng)}, {ux(rng), uy(rng)});
    }
    solver.solve_batch(endpoints, batch, ws);
    ASSERT_EQ(batch.queries(), endpoints.size());
    for (std::size_t q = 0; q < endpoints.size(); ++q) {
      expect_bit_identical(solver.solve(endpoints.a(q), endpoints.b(q)),
                           batch, q);
    }
  }
}

TEST(PathBatch, ClearKeepsCapacity) {
  Room room{5.0, 4.0};
  const PathSolver solver{room};
  EndpointBatch endpoints;
  for (int i = 0; i < 32; ++i) {
    endpoints.push({1.0 + 0.05 * i, 1.0}, {4.0, 3.0 - 0.05 * i});
  }
  PathBatch batch;
  PathSolver::BatchWorkspace ws;
  solver.solve_batch(endpoints, batch, ws);
  const std::size_t arena_after_first = batch.arena_bytes();
  EXPECT_GT(arena_after_first, 0u);
  solver.solve_batch(endpoints, batch, ws);
  EXPECT_EQ(batch.arena_bytes(), arena_after_first)
      << "second identical solve grew the batch arena";
}

}  // namespace
}  // namespace movr::channel
