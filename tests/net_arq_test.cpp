#include <net/arq.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

Packet make_packet(std::uint64_t frame_id, std::uint32_t seq = 0) {
  Packet p;
  p.frame_id = frame_id;
  p.seq = seq;
  p.frame_packets = 8;
  p.payload_bytes = 1000;
  return p;
}

TEST(Arq, WindowGatesOutstandingTransmissions) {
  Arq::Config config;
  config.window = 2;
  Arq arq{config};
  EXPECT_TRUE(arq.can_send());
  arq.start(make_packet(0, 0), false);
  EXPECT_TRUE(arq.can_send());
  arq.start(make_packet(0, 1), false);
  EXPECT_FALSE(arq.can_send());
  EXPECT_EQ(arq.resolve(make_packet(0, 0), false, false),
            Arq::Verdict::kAcked);
  EXPECT_TRUE(arq.can_send());
  EXPECT_EQ(arq.outstanding(), 1);
}

TEST(Arq, DataLossRetransmitsUntilBudgetThenAbandons) {
  Arq::Config config;
  config.max_retx_per_frame = 3;
  Arq arq{config};
  const Packet p = make_packet(7);
  for (int i = 0; i < 3; ++i) {
    arq.start(p, i > 0);
    EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kRetransmit);
  }
  arq.start(p, true);
  EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kAbandonFrame);
  EXPECT_TRUE(arq.is_abandoned(7));
  EXPECT_EQ(arq.counters().retransmits, 3u);
  EXPECT_EQ(arq.counters().frames_abandoned, 1u);
  EXPECT_EQ(arq.counters().data_losses, 4u);
}

TEST(Arq, AbandonedFrameDeniesFurtherRetransmits) {
  Arq arq;
  arq.abandon_frame(9);
  const Packet p = make_packet(9);
  arq.start(p, false);
  EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kAbandonFrame);
  // A delivered-but-unacked straggler of the abandoned frame is done.
  arq.start(p, false);
  EXPECT_EQ(arq.resolve(p, false, true), Arq::Verdict::kAcked);
}

TEST(Arq, LostAckRetransmitsTheDuplicate) {
  Arq arq;
  const Packet p = make_packet(3);
  arq.start(p, false);
  EXPECT_EQ(arq.resolve(p, false, true), Arq::Verdict::kRetransmit);
  EXPECT_EQ(arq.counters().ack_losses, 1u);
}

TEST(Arq, BudgetExhaustedLostAckCountsAsAcked) {
  Arq::Config config;
  config.max_retx_per_frame = 1;
  Arq arq{config};
  const Packet p = make_packet(4);
  arq.start(p, false);
  EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kRetransmit);
  arq.start(p, true);
  // The retransmitted copy makes it, only the ack dies: the receiver has
  // the data, no reason to kill the frame.
  EXPECT_EQ(arq.resolve(p, false, true), Arq::Verdict::kAcked);
  EXPECT_FALSE(arq.is_abandoned(4));
}

TEST(Arq, BudgetIsPerFrame) {
  Arq::Config config;
  config.max_retx_per_frame = 1;
  Arq arq{config};
  const Packet a = make_packet(1);
  const Packet b = make_packet(2);
  arq.start(a, false);
  EXPECT_EQ(arq.resolve(a, true, false), Arq::Verdict::kRetransmit);
  arq.start(b, false);
  EXPECT_EQ(arq.resolve(b, true, false), Arq::Verdict::kRetransmit);
  arq.start(a, true);
  EXPECT_EQ(arq.resolve(a, true, false), Arq::Verdict::kAbandonFrame);
  EXPECT_FALSE(arq.is_abandoned(2));
}

TEST(Arq, ForgetFrameResetsBudget) {
  Arq::Config config;
  config.max_retx_per_frame = 1;
  Arq arq{config};
  const Packet p = make_packet(5);
  arq.start(p, false);
  EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kRetransmit);
  arq.forget_frame(5);
  arq.start(p, true);
  EXPECT_EQ(arq.resolve(p, true, false), Arq::Verdict::kRetransmit);
}

}  // namespace
}  // namespace movr::net
