// Differential + accounting suite for ChannelOracle::query_batch and the
// borrowed-view accessor: batched answers must be bit-identical to the
// scalar paths_between loop under every cache temperature (cold, warm,
// mixed, duplicate-heavy) and across Room::revision() invalidations, and
// the stats must keep queries == hits + misses with the batch counters
// consistent.
#include <core/channel_oracle.hpp>

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include <channel/obstacle.hpp>
#include <channel/path_batch.hpp>

namespace movr::core {
namespace {

using geom::Vec2;

void expect_same_paths(const std::vector<channel::Path>& a,
                       const std::vector<channel::Path>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].loss.value(), b[p].loss.value());
    EXPECT_EQ(a[p].length_m, b[p].length_m);
    EXPECT_EQ(a[p].departure_azimuth, b[p].departure_azimuth);
    EXPECT_EQ(a[p].arrival_azimuth, b[p].arrival_azimuth);
    EXPECT_EQ(a[p].obstruction.value(), b[p].obstruction.value());
    EXPECT_EQ(a[p].bounces, b[p].bounces);
  }
}

/// Batched answers vs a scalar reference oracle over the same room state.
void expect_batch_matches_scalar(const ChannelOracle& oracle,
                                 const channel::EndpointBatch& batch) {
  std::vector<ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  ASSERT_EQ(views.size(), batch.size());
  // Reference: a fresh oracle (its own empty cache) over the same room.
  const ChannelOracle reference{oracle.room(), oracle.config()};
  for (std::size_t q = 0; q < batch.size(); ++q) {
    ASSERT_NE(views[q], nullptr) << "query " << q << " left unfilled";
    expect_same_paths(*views[q],
                      reference.paths_between(batch.a(q), batch.b(q)));
  }
}

TEST(OracleBatch, ColdBatchMatchesScalarLoop) {
  channel::Room room = channel::Room::paper_office();
  std::mt19937_64 rng{3};
  room.add_obstacle(channel::make_person(room.random_interior_point(rng, 0.7)));
  const ChannelOracle oracle{room};

  channel::EndpointBatch batch;
  std::uniform_real_distribution<double> ux{0.2, room.width() - 0.2};
  std::uniform_real_distribution<double> uy{0.2, room.depth() - 0.2};
  for (int i = 0; i < 80; ++i) {
    batch.push({ux(rng), uy(rng)}, {ux(rng), uy(rng)});
  }
  expect_batch_matches_scalar(oracle, batch);

  const auto stats = oracle.stats();
  EXPECT_EQ(stats.batch_queries, 80u);
  EXPECT_EQ(stats.queries, stats.hits + stats.misses);
}

TEST(OracleBatch, WarmBatchIsAllHits) {
  const channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};
  channel::EndpointBatch batch;
  for (int i = 0; i < 20; ++i) {
    batch.push({0.5 + 0.1 * i, 0.5}, {6.0, 4.0});
  }
  std::vector<ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  const auto cold = oracle.stats();
  EXPECT_EQ(cold.misses, 20u);

  oracle.query_batch(batch, views);
  const auto warm = oracle.stats();
  EXPECT_EQ(warm.misses, 20u) << "warm batch re-solved";
  EXPECT_EQ(warm.hits, cold.hits + 20u);
  EXPECT_EQ(warm.queries, warm.hits + warm.misses);
  expect_batch_matches_scalar(oracle, batch);
}

TEST(OracleBatch, MixedHitMissBatchMatchesScalar) {
  const channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};

  // Warm half of the pairs through the scalar API first.
  channel::EndpointBatch batch;
  for (int i = 0; i < 40; ++i) {
    const Vec2 a{0.4 + 0.11 * i, 0.8};
    const Vec2 b{room.width() - 0.5, room.depth() - 0.7};
    batch.push(a, b);
    if (i % 2 == 0) {
      oracle.paths_between(a, b);
    }
  }
  const auto before = oracle.stats();
  expect_batch_matches_scalar(oracle, batch);
  const auto after = oracle.stats();
  EXPECT_EQ(after.hits - before.hits, 20u);
  EXPECT_EQ(after.misses - before.misses, 20u);
  EXPECT_EQ(after.queries, after.hits + after.misses);
}

TEST(OracleBatch, ConsecutiveDuplicatesSkipProbesAndShareAnswers) {
  const channel::Room room{7.0, 5.0};
  const ChannelOracle oracle{room};
  channel::EndpointBatch batch;
  const Vec2 ap{0.5, 0.5};
  // Codebook-sweep shape: the same pair repeated back to back, including a
  // run of duplicates whose first occurrence is itself a miss.
  batch.push(ap, {3.0, 3.0});
  batch.push(ap, {3.0, 3.0});
  batch.push(ap, {3.0, 3.0});
  batch.push(ap, {5.0, 1.0});
  batch.push(ap, {5.0, 1.0});
  // Non-consecutive repeat: probes the cache, which is only filled after
  // the probe pass — so within one cold batch it counts as its own miss
  // (and must still produce the identical answer).
  batch.push(ap, {3.0, 3.0});

  std::vector<ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.batch_queries, 6u);
  EXPECT_EQ(stats.batch_probes_saved, 3u);
  EXPECT_EQ(stats.misses, 3u);  // two distinct keys + the in-batch repeat
  EXPECT_EQ(stats.hits, 3u);    // the three probe-skips
  EXPECT_EQ(stats.queries, stats.hits + stats.misses);

  // Consecutive-duplicate slots alias the same immutable answer; the
  // non-consecutive repeat is a separate solve of the same inputs, so its
  // contents (not its pointer) must match.
  EXPECT_EQ(views[0].get(), views[1].get());
  EXPECT_EQ(views[0].get(), views[2].get());
  EXPECT_EQ(views[3].get(), views[4].get());
  expect_same_paths(*views[0], *views[5]);
  expect_batch_matches_scalar(oracle, batch);
}

TEST(OracleBatch, RevisionBumpBetweenBatchesInvalidatesAndResolves) {
  channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};
  channel::EndpointBatch batch;
  for (int i = 0; i < 24; ++i) {
    batch.push({0.6 + 0.2 * i, 1.0}, {5.5, 3.5});
  }
  std::vector<ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  const ChannelOracle::PathsView before_mutation = views[0];

  // Mutating the room bumps its revision; the very next batch must drop the
  // cache and re-solve against the new geometry. The person stands on the
  // midpoint of query 0's LOS leg.
  const Vec2 mid = (batch.a(0) + batch.b(0)) * 0.5;
  room.add_obstacle(channel::make_person(mid));
  const auto stats_before = oracle.stats();
  oracle.query_batch(batch, views);
  const auto stats_after = oracle.stats();
  EXPECT_EQ(stats_after.invalidations, stats_before.invalidations + 1);
  EXPECT_EQ(stats_after.misses - stats_before.misses, 24u);
  expect_batch_matches_scalar(oracle, batch);

  // The pre-mutation view stays alive and readable (shared ownership) even
  // though the cache dropped it — it is merely stale.
  ASSERT_NE(before_mutation, nullptr);
  ASSERT_FALSE(before_mutation->empty());
  const ChannelOracle fresh{room};
  const auto now = fresh.paths_between(batch.a(0), batch.b(0));
  // The person stands on the LOS leg, so the stale and fresh LOS paths
  // differ in obstruction — proof the second batch really re-solved.
  const auto los_of = [](const std::vector<channel::Path>& paths) {
    for (const channel::Path& p : paths) {
      if (p.bounces == 0) {
        return p.obstruction.value();
      }
    }
    ADD_FAILURE() << "no LOS path in answer";
    return 0.0;
  };
  EXPECT_EQ(los_of(*before_mutation), 0.0);
  EXPECT_GT(los_of(now), 0.0);
}

TEST(OracleBatch, PathsViewAliasesCacheAndMatchesDeepCopy) {
  const channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};
  const Vec2 a{1.0, 1.0};
  const Vec2 b{6.0, 4.0};
  const ChannelOracle::PathsView view = oracle.paths_view(a, b);
  const ChannelOracle::PathsView again = oracle.paths_view(a, b);
  EXPECT_EQ(view.get(), again.get()) << "warm view did not alias the cache";
  expect_same_paths(*view, oracle.paths_between(a, b));
}

TEST(OracleBatch, ArenaHighWaterIsMonotoneAndPositive) {
  const channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};
  channel::EndpointBatch batch;
  for (int i = 0; i < 16; ++i) {
    batch.push({0.5, 0.5 + 0.2 * i}, {6.5, 4.5});
  }
  std::vector<ChannelOracle::PathsView> views;
  oracle.query_batch(batch, views);
  const auto first = oracle.stats().arena_bytes;
  EXPECT_GT(first, 0u);
  oracle.query_batch(batch, views);
  EXPECT_GE(oracle.stats().arena_bytes, first);
  EXPECT_EQ(oracle.stats().arena_bytes, first)
      << "warm identical batch grew the arena";
}

}  // namespace
}  // namespace movr::core
