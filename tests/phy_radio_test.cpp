#include <phy/radio.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::phy {
namespace {

using geom::Vec2;
using geom::deg_to_rad;
using geom::kPi;

TEST(RadioNode, LocalGlobalRoundTrip) {
  const RadioNode node{{1.0, 2.0}, deg_to_rad(30.0)};
  for (double local = 0.2; local < 6.0; local += 0.4) {
    EXPECT_NEAR(geom::angular_distance(node.to_local(node.to_global(local)),
                                       local),
                0.0, 1e-9);
  }
}

TEST(RadioNode, BoresightIsLocalNinety) {
  const RadioNode node{{0.0, 0.0}, deg_to_rad(45.0)};
  EXPECT_NEAR(node.to_local(deg_to_rad(45.0)), kPi / 2.0, 1e-12);
}

TEST(RadioNode, SteerTowardAimsAtTarget) {
  RadioNode node{{1.0, 1.0}, deg_to_rad(45.0)};
  node.steer_toward({4.0, 4.0});  // along the boresight
  EXPECT_NEAR(node.array().steering(), kPi / 2.0, 1e-9);
  EXPECT_NEAR(geom::angular_distance(node.steering_global(), deg_to_rad(45.0)),
              0.0, 1e-9);
}

TEST(RadioNode, FaceTowardSelectsFace) {
  RadioNode node{{2.0, 2.0}, 0.0};
  node.face_toward({2.0, 5.0});  // due north
  EXPECT_NEAR(node.orientation(), kPi / 2.0, 1e-12);
  EXPECT_NEAR(node.array().steering(), kPi / 2.0, 1e-12);
  // Peak gain toward the target, regardless of original mounting.
  EXPECT_NEAR(node.gain_toward(kPi / 2.0).value(),
              node.array().peak_gain().value(), 0.05);
}

TEST(RadioNode, GainDropsOffBoresight) {
  RadioNode node{{0.0, 0.0}, 0.0};
  node.steer_global(0.0);
  const double on = node.gain_toward(0.0).value();
  const double off = node.gain_toward(deg_to_rad(30.0)).value();
  EXPECT_GT(on - off, 10.0);
}

TEST(RadioNode, ResponseMagnitudeMatchesGain) {
  RadioNode node{{0.0, 0.0}, 0.7};
  node.steer_global(0.9);
  for (double az = 0.0; az < 6.2; az += 0.37) {
    const double from_response = 20.0 * std::log10(
        std::abs(node.response_toward(az)));
    EXPECT_NEAR(from_response, node.gain_toward(az).value(), 1e-6)
        << "azimuth " << az;
  }
}

TEST(RadioNode, ArrayResponseFreeFunctionAgrees) {
  rf::PhasedArray array;
  array.steer(deg_to_rad(75.0));
  for (double local = 0.3; local < 3.0; local += 0.3) {
    EXPECT_NEAR(20.0 * std::log10(std::abs(array_response(array, local))),
                array.gain(local).value(), 1e-6);
  }
}

TEST(RadioNode, TxPowerStored) {
  RadioNode node{{0.0, 0.0}, 0.0, {}, rf::DbmPower{7.0}};
  EXPECT_EQ(node.tx_power().value(), 7.0);
  node.set_tx_power(rf::DbmPower{-3.0});
  EXPECT_EQ(node.tx_power().value(), -3.0);
}

}  // namespace
}  // namespace movr::phy
