#include <net/frame_source.hpp>

#include <gtest/gtest.h>

namespace movr::net {
namespace {

FrameSource::Config vive_like() {
  FrameSource::Config config;
  config.fps = 90.0;
  config.target_mbps = 5600.0;
  config.latency_budget = std::chrono::milliseconds{10};
  config.gop_length = 30;
  config.keyframe_ratio = 2.5;
  config.size_jitter = 0.1;
  config.seed = 7;
  return config;
}

TEST(FrameSource, KeyframeCadenceFollowsGop) {
  FrameSource source{vive_like()};
  for (int i = 0; i < 90; ++i) {
    const Frame frame = source.next(sim::from_seconds(i / 90.0));
    EXPECT_EQ(frame.id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(frame.keyframe, i % 30 == 0) << "frame " << i;
  }
}

TEST(FrameSource, DeadlineIsCapturePlusBudget) {
  FrameSource source{vive_like()};
  const sim::TimePoint capture = sim::from_seconds(1.234);
  const Frame frame = source.next(capture);
  EXPECT_EQ(frame.deadline, capture + std::chrono::milliseconds{10});
  EXPECT_EQ(frame.capture, capture);
}

TEST(FrameSource, SizesIntegrateToTargetBitrate) {
  auto config = vive_like();
  FrameSource source{config};
  const int frames = 9000;  // 100 s of video
  double total_bits = 0.0;
  for (int i = 0; i < frames; ++i) {
    total_bits += 8.0 * static_cast<double>(
                            source.next(sim::from_seconds(i / 90.0)).bytes);
  }
  const double seconds = frames / config.fps;
  const double mbps = total_bits / seconds / 1e6;
  // Size jitter is zero-mean; 100 s should land within 2% of target.
  EXPECT_NEAR(mbps, config.target_mbps, 0.02 * config.target_mbps);
}

TEST(FrameSource, KeyframesAreBiggerByRatio) {
  auto config = vive_like();
  config.size_jitter = 0.0;
  FrameSource source{config};
  const Frame key = source.next(sim::TimePoint{});
  const Frame p = source.next(sim::from_seconds(1.0 / 90.0));
  ASSERT_TRUE(key.keyframe);
  ASSERT_FALSE(p.keyframe);
  EXPECT_NEAR(static_cast<double>(key.bytes) / static_cast<double>(p.bytes),
              config.keyframe_ratio, 0.01);
}

TEST(FrameSource, DeterministicAcrossInstances) {
  FrameSource a{vive_like()};
  FrameSource b{vive_like()};
  for (int i = 0; i < 200; ++i) {
    const auto t = sim::from_seconds(i / 90.0);
    EXPECT_EQ(a.next(t).bytes, b.next(t).bytes);
  }
}

TEST(FrameSource, GopOfOneIsAllKeyframes) {
  auto config = vive_like();
  config.gop_length = 1;
  FrameSource source{config};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(source.next(sim::from_seconds(i / 90.0)).keyframe);
  }
}

}  // namespace
}  // namespace movr::net
