#include <vr/motion.hpp>

#include <gtest/gtest.h>

#include <vr/requirements.hpp>

namespace movr::vr {
namespace {

using movr::geom::Vec2;
using namespace std::chrono_literals;

TEST(Requirements, VivePixelRate) {
  // 2160 x 1200 x 24 bit x 90 Hz ~= 5.6 Gb/s.
  EXPECT_NEAR(kHtcVive.required_mbps(), 5598.7, 1.0);
  EXPECT_NEAR(kHtcVive.bits_per_frame(), 62.2e6, 0.1e6);
  EXPECT_NEAR(sim::to_milliseconds(kHtcVive.frame_interval()), 11.11, 0.01);
  EXPECT_EQ(kHtcVive.latency_budget(), sim::Duration{10ms});
}

TEST(PlayerMotion, StaysInsideMargins) {
  const channel::Room room{5.0, 5.0};
  PlayerMotion motion{room, {2.5, 2.5}, 7};
  for (int i = 0; i <= 3000; ++i) {
    const Vec2 p = motion.position_at(sim::from_seconds(i * 0.1));
    EXPECT_GE(p.x, 0.8 - 1e-9);
    EXPECT_LE(p.x, 4.2 + 1e-9);
    EXPECT_GE(p.y, 0.8 - 1e-9);
    EXPECT_LE(p.y, 4.2 + 1e-9);
  }
}

TEST(PlayerMotion, MovesAtWalkingSpeed) {
  const channel::Room room{5.0, 5.0};
  PlayerMotion motion{room, {2.5, 2.5}, 7};
  Vec2 prev = motion.position_at(sim::Duration::zero());
  for (int i = 1; i <= 600; ++i) {
    const Vec2 p = motion.position_at(sim::from_seconds(i * 0.1));
    const double speed = geom::distance(p, prev) / 0.1;
    EXPECT_LE(speed, 0.6 + 1e-6);
    prev = p;
  }
}

TEST(PlayerMotion, DeterministicPerSeed) {
  const channel::Room room{5.0, 5.0};
  PlayerMotion a{room, {2.5, 2.5}, 42};
  PlayerMotion b{room, {2.5, 2.5}, 42};
  for (int i = 0; i < 100; ++i) {
    const auto t = sim::from_seconds(i * 0.5);
    EXPECT_EQ(a.position_at(t), b.position_at(t));
  }
}

TEST(PlayerMotion, DifferentSeedsDiverge) {
  const channel::Room room{5.0, 5.0};
  PlayerMotion a{room, {2.5, 2.5}, 1};
  PlayerMotion b{room, {2.5, 2.5}, 2};
  bool diverged = false;
  for (int i = 0; i < 100 && !diverged; ++i) {
    const auto t = sim::from_seconds(i * 0.5);
    diverged = !(a.position_at(t) == b.position_at(t));
  }
  EXPECT_TRUE(diverged);
}

TEST(BlockageScript, HandAppearsAndDisappears) {
  channel::Room room{5.0, 5.0};
  std::vector<BlockageEvent> events;
  BlockageEvent e;
  e.kind = BlockageEvent::Kind::kHand;
  e.start = sim::from_seconds(1.0);
  e.duration = sim::from_seconds(0.5);
  events.push_back(e);
  const BlockageScript script{events};

  const Vec2 headset{3.0, 3.0};
  const Vec2 ap{0.0, 0.0};
  script.apply(room, sim::from_seconds(0.5), headset, ap);
  EXPECT_TRUE(room.obstacles().empty());
  EXPECT_FALSE(script.active_at(sim::from_seconds(0.5)));

  script.apply(room, sim::from_seconds(1.2), headset, ap);
  ASSERT_EQ(room.obstacles().size(), 1u);
  EXPECT_EQ(room.obstacles().front().label, "hand");
  EXPECT_TRUE(script.active_at(sim::from_seconds(1.2)));

  script.apply(room, sim::from_seconds(1.6), headset, ap);
  EXPECT_TRUE(room.obstacles().empty());
}

TEST(BlockageScript, PersonWalksAlongPath) {
  channel::Room room{5.0, 5.0};
  std::vector<BlockageEvent> events;
  BlockageEvent e;
  e.kind = BlockageEvent::Kind::kPersonCrossing;
  e.start = sim::Duration::zero();
  e.duration = sim::from_seconds(10.0);
  e.path_from = {0.0, 2.0};
  e.path_to = {4.0, 2.0};
  events.push_back(e);
  const BlockageScript script{events};

  script.apply(room, sim::from_seconds(5.0), {9.0, 9.0}, {0.0, 0.0});
  ASSERT_EQ(room.obstacles().size(), 1u);
  EXPECT_NEAR(room.obstacles().front().shape.center.x, 2.0, 1e-9);
  script.apply(room, sim::from_seconds(7.5), {9.0, 9.0}, {0.0, 0.0});
  EXPECT_NEAR(room.obstacles().front().shape.center.x, 3.0, 1e-9);
}

TEST(BlockageScript, DoesNotDisturbForeignObstacles) {
  channel::Room room{5.0, 5.0};
  room.add_obstacle({geom::Circle{{1.0, 1.0}, 0.3}, channel::kFurniture,
                     "desk"});
  const BlockageScript script{{}};
  script.apply(room, sim::Duration::zero(), {3.0, 3.0}, {0.0, 0.0});
  EXPECT_EQ(room.obstacles().size(), 1u);
  EXPECT_EQ(room.obstacles().front().label, "desk");
}

TEST(BlockageScript, PeriodicHandRaises) {
  const auto script =
      periodic_hand_raises(sim::from_seconds(1.0), sim::from_seconds(0.5),
                           sim::from_seconds(2.0), sim::from_seconds(9.0));
  EXPECT_EQ(script.events().size(), 4u);  // at 1, 3, 5, 7
  EXPECT_TRUE(script.active_at(sim::from_seconds(1.2)));
  EXPECT_FALSE(script.active_at(sim::from_seconds(1.8)));
  EXPECT_TRUE(script.active_at(sim::from_seconds(7.4)));
  EXPECT_FALSE(script.active_at(sim::from_seconds(8.2)));
}

}  // namespace
}  // namespace movr::vr
