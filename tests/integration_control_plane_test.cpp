// End-to-end hardened control plane: a scripted control partition while the
// link rides a reflector must (1) trip the reflector's autonomous safe mode
// within one watchdog period, (2) bench the reflector and land the session
// in degraded mode — without flapping back onto a reflector the AP cannot
// command — and (3) reconcile automatically once the partition heals:
// divergence detected by the state digest, epoch replayed, full gain
// restored, link back on the reflector.
#include <gtest/gtest.h>

#include <core/config_epoch.hpp>
#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <sim/fault_injector.hpp>
#include <vr/session.hpp>

namespace movr {
namespace {

using core::ApRadio;
using core::HeadsetRadio;
using core::Scene;
using geom::deg_to_rad;
using namespace std::chrono_literals;

Scene make_scene() {
  return Scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
               HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void calibrate(Scene& scene, core::MovrReflector& r) {
  r.front_end().steer_rx(scene.true_reflector_angle_to_ap(r));
  r.front_end().steer_tx(scene.true_reflector_angle_to_headset(r));
  scene.ap().node().steer_toward(r.position());
  std::mt19937_64 rng{99};
  core::GainController::run(r.front_end(), scene.reflector_input(r), rng);
}

void block_direct(Scene& scene) {
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
}

core::ConfigEpoch epoch_from_registers(const core::MovrReflector& r) {
  return {r.front_end().rx_array().steering(),
          r.front_end().tx_array().steering(), r.front_end().gain_code()};
}

TEST(ControlPlaneIntegration, PartitionSafeModeDegradedThenReconciled) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate(scene, reflector);

  sim::Simulator simulator;
  sim::ControlChannel::Config channel_config;
  channel_config.jitter = sim::Duration{0};
  sim::ControlChannel control{simulator, channel_config, std::mt19937_64{3}};

  // Register writes model BT exchanges: none may cross a partition.
  core::LinkManager::Config manager_config;
  manager_config.reflector_reachable = [&control](std::size_t) {
    return !control.partitioned();
  };
  vr::MovrStrategy strategy{simulator, scene, std::mt19937_64{6},
                            manager_config};

  core::ReflectorConfigAgent agent{simulator, control, reflector, {},
                                   std::mt19937_64{8}};
  agent.start();
  core::ControlPlane plane{simulator, control, {}};
  plane.bind_health(&strategy.manager().health());
  plane.manage(0, reflector, &agent);
  plane.start();
  plane.commit(0, epoch_from_registers(reflector));

  sim::FaultInjector injector{simulator};
  injector.inject_control_partition(control, sim::TimePoint{2s}, 2s);

  const auto frame = [&] {
    strategy.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  };
  const auto run_frames_until = [&](sim::TimePoint t) {
    while (simulator.now() < t) {
      frame();
    }
  };

  // Settle onto the direct path, block it, ride the reflector.
  run_frames_until(sim::TimePoint{200ms});
  block_direct(scene);
  run_frames_until(sim::TimePoint{1s});
  ASSERT_EQ(strategy.manager().mode(),
            core::LinkManager::Mode::kViaReflector);
  const std::uint32_t calibrated_gain = reflector.front_end().gain_code();
  ASSERT_GT(calibrated_gain, agent.safe_gain_code());
  ASSERT_FALSE(agent.in_safe_mode());

  // --- inside the partition -------------------------------------------
  // Safe-mode guarantee: gain at/below the provably-stable floor within
  // silence_timeout + one watchdog period of the partition onset.
  run_frames_until(sim::TimePoint{2s} + sim::Duration{400'000'000} +
                   sim::Duration{200'000'000});
  EXPECT_TRUE(agent.in_safe_mode());
  EXPECT_LE(reflector.front_end().gain_code(), agent.safe_gain_code());

  // Partition detected: the reflector is benched and the session lands in
  // degraded mode (direct is blocked, the only reflector is unreachable) —
  // and STAYS there; no flapping back onto the unreachable reflector.
  run_frames_until(sim::TimePoint{3s});
  EXPECT_TRUE(plane.partitioned(0));
  EXPECT_TRUE(strategy.manager().health().quarantined(0));
  EXPECT_EQ(strategy.manager().mode(), core::LinkManager::Mode::kDegraded);
  bool flapped = false;
  while (simulator.now() < sim::TimePoint{4s}) {
    frame();
    flapped |= strategy.manager().mode() ==
               core::LinkManager::Mode::kViaReflector;
  }
  EXPECT_FALSE(flapped);

  // --- after the heal --------------------------------------------------
  run_frames_until(sim::TimePoint{6s});
  EXPECT_FALSE(plane.partitioned(0));
  EXPECT_FALSE(agent.in_safe_mode());
  EXPECT_EQ(reflector.front_end().gain_code(), calibrated_gain);
  EXPECT_EQ(strategy.manager().mode(),
            core::LinkManager::Mode::kViaReflector);
  EXPECT_EQ(plane.max_divergence_age(simulator.now()), sim::Duration{0});

  const core::ControlPlaneIncidents incidents = plane.incidents();
  EXPECT_GE(incidents.partitions_entered, 1u);
  EXPECT_GE(incidents.partitions_healed, 1u);
  EXPECT_GE(incidents.safe_mode_entries, 1u);
  EXPECT_GE(incidents.divergences_detected, 1u);
  EXPECT_GE(incidents.reconciliations, 1u);
  EXPECT_GE(strategy.manager().health().stats().divergences, 1);
}

TEST(ControlPlaneIntegration, SessionReportCarriesIncidentCounters) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate(scene, reflector);

  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, std::mt19937_64{3}};
  vr::MovrStrategy strategy{simulator, scene, std::mt19937_64{6}};
  core::ReflectorConfigAgent agent{simulator, control, reflector, {},
                                   std::mt19937_64{8}};
  agent.start();
  core::ControlPlane plane{simulator, control, {}};
  plane.bind_health(&strategy.manager().health());
  plane.manage(0, reflector, &agent);
  plane.start();
  plane.commit(0, epoch_from_registers(reflector));

  sim::FaultInjector injector{simulator};
  injector.inject_control_partition(control, sim::TimePoint{1s}, 1s);

  vr::Session::Config config;
  config.duration = 3s;
  config.faults = &injector;
  config.control_plane = &plane;
  vr::Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const auto report = session.run();

  ASSERT_TRUE(report.control_plane.has_value());
  EXPECT_GE(report.control_plane->partitions_entered, 1u);
  EXPECT_GE(report.control_plane->partitions_healed, 1u);
}

}  // namespace
}  // namespace movr
