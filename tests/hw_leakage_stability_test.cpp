#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <hw/front_end.hpp>
#include <hw/leakage.hpp>
#include <hw/stability.hpp>

namespace movr::hw {
namespace {

using movr::geom::deg_to_rad;
using rf::DbmPower;
using rf::Decibels;

TEST(Leakage, WithinCalibratedEnvelope) {
  const LeakageModel model;
  // Fig. 7's envelope: coupling between about -85 and -45 dB over the
  // sector for the two RX angles the paper plots.
  for (const double rx : {50.0, 65.0}) {
    for (double tx = 40.0; tx <= 140.0; tx += 1.0) {
      const double c = model.coupling(deg_to_rad(tx), deg_to_rad(rx)).value();
      EXPECT_LT(c, -40.0) << "tx " << tx << " rx " << rx;
      EXPECT_GT(c, -90.0) << "tx " << tx << " rx " << rx;
    }
  }
}

TEST(Leakage, SwingAtLeastFifteenDb) {
  // The paper: "the leakage variation can be as high as 20 dB".
  const LeakageModel model;
  for (const double rx : {50.0, 65.0}) {
    double lo = 1e9;
    double hi = -1e9;
    for (double tx = 40.0; tx <= 140.0; tx += 1.0) {
      const double c = model.coupling(deg_to_rad(tx), deg_to_rad(rx)).value();
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    EXPECT_GT(hi - lo, 15.0) << "rx " << rx;
  }
}

TEST(Leakage, DependsOnBothAngles) {
  const LeakageModel model;
  const double a = model.coupling(deg_to_rad(60.0), deg_to_rad(50.0)).value();
  const double b = model.coupling(deg_to_rad(120.0), deg_to_rad(50.0)).value();
  const double c = model.coupling(deg_to_rad(60.0), deg_to_rad(110.0)).value();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Leakage, DeterministicAcrossInstances) {
  const LeakageModel m1;
  const LeakageModel m2;
  EXPECT_EQ(m1.coupling(1.0, 1.5).value(), m2.coupling(1.0, 1.5).value());
}

TEST(Leakage, IsolationIsNegatedCoupling) {
  const LeakageModel model;
  EXPECT_EQ(model.isolation(1.0, 1.2).value(),
            -model.coupling(1.0, 1.2).value());
}

TEST(Stability, MarginAndCriterion) {
  EXPECT_TRUE(is_loop_stable(Decibels{40.0}, Decibels{50.0}));
  EXPECT_FALSE(is_loop_stable(Decibels{50.0}, Decibels{50.0}));
  EXPECT_FALSE(is_loop_stable(Decibels{60.0}, Decibels{50.0}));
  EXPECT_EQ(loop_margin(Decibels{40.0}, Decibels{50.0}).value(), 10.0);
}

TEST(Stability, RegenerationVanishesWithMargin) {
  // 30 dB of margin: boost is essentially zero.
  const Decibels boost = regeneration_boost(Decibels{20.0}, Decibels{50.0});
  EXPECT_LT(boost.value(), 0.3);
}

TEST(Stability, RegenerationGrowsNearInstability) {
  const double b10 = regeneration_boost(Decibels{40.0}, Decibels{50.0}).value();
  const double b3 = regeneration_boost(Decibels{47.0}, Decibels{50.0}).value();
  const double b1 = regeneration_boost(Decibels{49.0}, Decibels{50.0}).value();
  EXPECT_LT(b10, b3);
  EXPECT_LT(b3, b1);
  EXPECT_GT(b1, 15.0);  // within 1 dB of instability: >15 dB of regeneration
}

TEST(Stability, UnstableBoostThrows) {
  EXPECT_THROW(regeneration_boost(Decibels{50.0}, Decibels{50.0}),
               std::logic_error);
}

TEST(Stability, ClosedLoopGainExceedsOpenLoop) {
  const Decibels open{40.0};
  const Decibels closed = closed_loop_gain(open, Decibels{45.0});
  EXPECT_GT(closed.value(), open.value());
}

TEST(FrontEnd, GainCodeMapsToGainRange) {
  ReflectorFrontEnd fe;
  fe.set_gain_code(0);
  EXPECT_NEAR(fe.amplifier_gain().value(),
              fe.config().amplifier.min_gain.value(), 1e-9);
  fe.set_gain_code(fe.max_gain_code());
  EXPECT_NEAR(fe.amplifier_gain().value(),
              fe.config().amplifier.max_gain.value(), 1e-9);
}

TEST(FrontEnd, GainCodeMonotone) {
  ReflectorFrontEnd fe;
  double prev = -1.0;
  for (std::uint32_t code = 0; code <= fe.max_gain_code(); code += 16) {
    fe.set_gain_code(code);
    EXPECT_GT(fe.amplifier_gain().value(), prev);
    prev = fe.amplifier_gain().value();
  }
}

TEST(FrontEnd, StableAtLowGain) {
  ReflectorFrontEnd fe;
  fe.steer_rx(deg_to_rad(90.0));
  fe.steer_tx(deg_to_rad(90.0));
  fe.set_gain_code(50);
  const auto state = fe.process(DbmPower{-50.0});
  EXPECT_TRUE(state.stable);
  EXPECT_FALSE(state.saturated);
  EXPECT_GT(state.output.value(), -50.0);  // it amplifies
}

TEST(FrontEnd, EffectiveGainAtLeastCommandedWhenStable) {
  ReflectorFrontEnd fe;
  fe.steer_rx(deg_to_rad(75.0));
  fe.steer_tx(deg_to_rad(110.0));
  fe.set_gain_code(100);
  const auto state = fe.process(DbmPower{-55.0});
  ASSERT_TRUE(state.stable);
  EXPECT_GE(state.effective_gain.value(),
            fe.amplifier_gain().value() - 0.2);
}

TEST(FrontEnd, ModulationProducesSideband) {
  ReflectorFrontEnd fe;
  fe.set_gain_code(100);
  fe.set_modulating(false);
  const auto quiet = fe.process(DbmPower{-50.0});
  EXPECT_LT(quiet.sideband_output.value(), -250.0);  // no sideband
  fe.set_modulating(true);
  const auto modulated = fe.process(DbmPower{-50.0});
  EXPECT_NEAR(modulated.sideband_output.value(),
              modulated.output.value() +
                  fe.config().modulation_sideband_loss.value(),
              1e-9);
}

namespace {
/// A front end whose leakage is deliberately poor: isolation drops below
/// the amplifier's maximum gain at many beam pairs, so instability is
/// reachable — the regime the §4.2 controller exists for.
ReflectorFrontEnd leaky_front_end() {
  ReflectorFrontEnd::Config config;
  config.leakage.board_coupling = rf::Decibels{-10.0};
  return ReflectorFrontEnd{config};
}
}  // namespace

TEST(FrontEnd, InstabilityDetectedSomewhere) {
  auto fe = leaky_front_end();
  fe.set_gain_code(fe.max_gain_code());
  int unstable = 0;
  for (double tx = 40.0; tx <= 140.0; tx += 5.0) {
    for (double rx = 40.0; rx <= 140.0; rx += 5.0) {
      fe.steer_tx(deg_to_rad(tx));
      fe.steer_rx(deg_to_rad(rx));
      const auto state = fe.process(DbmPower{-50.0});
      if (!state.stable) {
        ++unstable;
        EXPECT_TRUE(state.saturated);
      }
    }
  }
  EXPECT_GT(unstable, 0);
}

TEST(FrontEnd, UnstableDrawsMoreCurrentThanIdle) {
  auto fe = leaky_front_end();
  // Find an unstable configuration.
  fe.set_gain_code(fe.max_gain_code());
  bool found = false;
  for (double tx = 40.0; tx <= 140.0 && !found; tx += 2.0) {
    for (double rx = 40.0; rx <= 140.0 && !found; rx += 2.0) {
      fe.steer_tx(deg_to_rad(tx));
      fe.steer_rx(deg_to_rad(rx));
      if (!fe.process(DbmPower{-50.0}).stable) {
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  const auto unstable_state = fe.process(DbmPower{-50.0});
  fe.set_gain_code(0);
  const auto idle_state = fe.process(DbmPower{-50.0});
  EXPECT_GT(unstable_state.supply_current_a,
            idle_state.supply_current_a + 0.05);
}

TEST(FrontEnd, CurrentReadingTracksState) {
  ReflectorFrontEnd fe;
  fe.set_gain_code(60);
  std::mt19937_64 rng{3};
  const double reading = fe.read_current(DbmPower{-50.0}, rng, 16);
  const auto state = fe.process(DbmPower{-50.0});
  EXPECT_NEAR(reading, state.supply_current_a, 0.01);
}

}  // namespace
}  // namespace movr::hw
