// Property/fuzz suite for the transport data-plane.
//
// Across randomized channel schedules (random MCS, random loss, link-down
// windows, fault-injector windows stacking extra loss) the transport must
// uphold its two contracts:
//   1. packet conservation — delivered + dropped + in-flight == enqueued,
//      with every term counted by an *independent* component (jitter
//      buffer, queue+ARQ ledgers, structural occupancy);
//   2. display-stream sanity — a frame id is never released twice and
//      releases are strictly increasing.
#include <net/transport.hpp>

#include <gtest/gtest.h>

#include <random>
#include <set>

#include <sim/fault_injector.hpp>
#include <sim/simulator.hpp>

namespace movr::net {
namespace {

using namespace std::chrono_literals;

TransportConfig small_config(std::uint64_t seed) {
  TransportConfig config;
  config.source.fps = 90.0;
  config.source.target_mbps = 2000.0;
  config.source.latency_budget = 10ms;
  config.source.seed = seed * 11 + 1;
  config.seed = seed * 17 + 3;
  return config;
}

/// Drives `ticks` frames through a transport under a randomized channel,
/// checking conservation after every tick. Returns the transport metrics.
TransportMetrics run_fuzz(std::uint64_t seed, int ticks,
                          bool with_fault_windows) {
  sim::Simulator simulator;
  Transport transport{simulator, small_config(seed)};
  std::mt19937_64 rng{seed};

  // Fault windows: while one is active the session stacks extra loss, the
  // same wiring vr::Session uses.
  sim::FaultInjector faults{simulator};
  if (with_fault_windows) {
    std::uniform_real_distribution<double> at{0.0, ticks / 90.0};
    for (int i = 0; i < 4; ++i) {
      const double start = at(rng);
      faults.inject("loss-window", sim::from_seconds(start),
                    sim::from_seconds(0.05 + 0.1 * i), [] {});
    }
  }

  std::uniform_real_distribution<double> u{0.0, 1.0};
  const auto mcs_count =
      static_cast<std::uint64_t>(phy::mcs_table().size());
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);

  for (int t = 0; t < ticks; ++t) {
    const sim::TimePoint tick_at = interval * t;
    simulator.run_until(tick_at);

    ChannelState channel;
    const double roll = u(rng);
    if (roll < 0.1) {
      channel.mcs = nullptr;  // link down
    } else {
      const auto idx = static_cast<std::size_t>(
          rng() % mcs_count);
      channel.mcs = &phy::mcs_table()[idx];
      // Mostly clean, sometimes brutal.
      channel.packet_loss = roll < 0.3 ? 0.6 * u(rng) : 0.05 * u(rng);
    }
    if (faults.active_count(simulator.now()) > 0) {
      channel.extra_loss = transport.config().fault_extra_loss;
    }
    transport.on_frame(channel);

    const std::uint64_t enqueued = transport.packets_enqueued();
    const std::uint64_t accounted = transport.packets_delivered() +
                                    transport.packets_dropped() +
                                    transport.packets_in_flight();
    EXPECT_EQ(enqueued, accounted)
        << "conservation broke at tick " << t << " (seed " << seed << ")";
    if (enqueued != accounted) {
      break;
    }
  }
  const sim::TimePoint end = interval * ticks;
  simulator.run_until(end);
  transport.finalize(end);

  const TransportMetrics& metrics = transport.metrics();
  EXPECT_TRUE(metrics.conserved()) << "seed " << seed;

  // Frame ledger closes: every emitted frame has exactly one fate.
  EXPECT_EQ(metrics.frames_emitted,
            metrics.frames_on_time + metrics.frames_late +
                metrics.frames_missed + metrics.frames_dropped_queue +
                metrics.frames_dropped_arq + metrics.frames_unresolved)
      << "seed " << seed;

  // Release stream: strictly increasing, no double release.
  const auto& log = transport.jitter().release_log();
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE(seen.insert(log[i]).second) << "double release of " << log[i];
    if (i > 0) {
      EXPECT_LT(log[i - 1], log[i]) << "out-of-order release";
    }
  }
  EXPECT_EQ(log.size(), metrics.frames_on_time);
  return metrics;
}

TEST(TransportProperty, ConservationAcrossRandomLossSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_fuzz(seed, 180, /*with_fault_windows=*/false);
  }
}

TEST(TransportProperty, ConservationAcrossFaultInjectorSchedules) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    run_fuzz(seed, 180, /*with_fault_windows=*/true);
  }
}

TEST(TransportProperty, CleanChannelDeliversEverythingOnTime) {
  sim::Simulator simulator;
  Transport transport{simulator, small_config(5)};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  const int ticks = 90;
  for (int t = 0; t < ticks; ++t) {
    simulator.run_until(interval * t);
    ChannelState channel;
    channel.mcs = &phy::mcs_table().back();
    channel.packet_loss = 0.0;
    transport.on_frame(channel);
  }
  simulator.run_until(interval * ticks);
  transport.finalize(interval * ticks);
  const TransportMetrics& metrics = transport.metrics();
  EXPECT_EQ(metrics.frames_emitted, static_cast<std::uint64_t>(ticks));
  EXPECT_EQ(metrics.frames_on_time, metrics.frames_emitted);
  EXPECT_EQ(metrics.deadline_misses, 0u);
  EXPECT_EQ(metrics.retransmits, 0u);
  EXPECT_TRUE(metrics.conserved());
  EXPECT_EQ(metrics.packets_in_flight, 0u);
  // 2 Gbps at 90 fps moves in a handful of MPDUs well inside 10 ms.
  EXPECT_GT(metrics.p50_ms, 0.0);
  EXPECT_LT(metrics.p99_ms, 10.0);
}

TEST(TransportProperty, TotalLossDropsOrStrandsEverything) {
  sim::Simulator simulator;
  Transport transport{simulator, small_config(6)};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  const int ticks = 45;
  for (int t = 0; t < ticks; ++t) {
    simulator.run_until(interval * t);
    ChannelState channel;
    channel.mcs = &phy::mcs_table().front();
    channel.packet_loss = 1.0;
    transport.on_frame(channel);
  }
  simulator.run_until(interval * ticks);
  transport.finalize(interval * ticks);
  const TransportMetrics& metrics = transport.metrics();
  EXPECT_EQ(metrics.frames_on_time, 0u);
  EXPECT_EQ(metrics.packets_delivered, 0u);
  EXPECT_GT(metrics.retransmits, 0u);
  EXPECT_GT(metrics.deadline_misses, 0u);
  EXPECT_TRUE(metrics.conserved());
}

TEST(TransportProperty, DeterministicGivenSeeds) {
  const TransportMetrics a = run_fuzz(33, 120, true);
  const TransportMetrics b = run_fuzz(33, 120, true);
  EXPECT_EQ(a.frames_on_time, b.frames_on_time);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
}

}  // namespace
}  // namespace movr::net
