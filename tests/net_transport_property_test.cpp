// Property/fuzz suite for the transport data-plane.
//
// Across randomized channel schedules (random MCS, random loss, link-down
// windows, fault-injector windows stacking extra loss, Gilbert–Elliott
// burst loss, static and adaptive FEC) the transport must uphold its two
// contracts:
//   1. packet conservation — delivered + dropped + recovered-as-delivered
//      + in-flight == enqueued, with every term counted by an
//      *independent* component (jitter buffer, queue+ARQ ledgers,
//      structural occupancy, recovery credits);
//   2. display-stream sanity — a frame id is never released twice and
//      releases are strictly increasing.
#include <net/transport.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <sim/burst_channel.hpp>
#include <sim/fault_injector.hpp>
#include <sim/simulator.hpp>

namespace movr::net {
namespace {

using namespace std::chrono_literals;

TransportConfig small_config(std::uint64_t seed) {
  TransportConfig config;
  config.source.fps = 90.0;
  config.source.target_mbps = 2000.0;
  config.source.latency_budget = 10ms;
  config.source.seed = seed * 11 + 1;
  config.seed = seed * 17 + 3;
  return config;
}

struct FuzzOptions {
  bool with_fault_windows{false};
  /// Static FEC protection (k == 0: layer off).
  FecParams fec{};
  /// Adaptive controller instead of static FEC.
  bool adaptive_fec{false};
  /// Gilbert–Elliott chain drives extra loss (forced bad during faults)
  /// instead of the flat fault_extra_loss.
  bool burst_loss{false};
  /// Randomly arm speculative dual-path reception on live-link ticks.
  bool speculative{false};
};

/// Drives `ticks` frames through a transport under a randomized channel,
/// checking the (extended) conservation ledger after every tick. Returns
/// the transport metrics.
TransportMetrics run_fuzz(std::uint64_t seed, int ticks, FuzzOptions opts) {
  sim::Simulator simulator;
  TransportConfig config = small_config(seed);
  config.fec = opts.fec;
  config.adaptive_fec = opts.adaptive_fec;
  Transport transport{simulator, config};
  std::mt19937_64 rng{seed};

  // Fault windows: while one is active the session stacks extra loss, the
  // same wiring vr::Session uses.
  sim::FaultInjector faults{simulator};
  if (opts.with_fault_windows) {
    std::uniform_real_distribution<double> at{0.0, ticks / 90.0};
    for (int i = 0; i < 4; ++i) {
      const double start = at(rng);
      faults.inject("loss-window", sim::from_seconds(start),
                    sim::from_seconds(0.05 + 0.1 * i), [] {});
    }
  }

  sim::BurstChannel::Config burst_config;
  burst_config.seed = seed * 29 + 5;
  sim::BurstChannel burst{burst_config};

  std::uniform_real_distribution<double> u{0.0, 1.0};
  const auto mcs_count =
      static_cast<std::uint64_t>(phy::mcs_table().size());
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);

  for (int t = 0; t < ticks; ++t) {
    const sim::TimePoint tick_at = interval * t;
    simulator.run_until(tick_at);

    ChannelState channel;
    const double roll = u(rng);
    if (roll < 0.1) {
      channel.mcs = nullptr;  // link down
    } else {
      const auto idx = static_cast<std::size_t>(
          rng() % mcs_count);
      channel.mcs = &phy::mcs_table()[idx];
      // Mostly clean, sometimes brutal.
      channel.packet_loss = roll < 0.3 ? 0.6 * u(rng) : 0.05 * u(rng);
    }
    const bool fault_active = faults.active_count(simulator.now()) > 0;
    channel.stressed = fault_active;
    if (opts.speculative && channel.mcs != nullptr && u(rng) < 0.4) {
      // Alternate beam armed with an independent (sometimes terrible)
      // per-MPDU loss; occasionally the controller also thinks stress is
      // imminent. Every spec copy must resolve within this same tick.
      channel.speculative = true;
      channel.alt_loss = u(rng);
      channel.predicted_stress = u(rng) < 0.3;
    }
    if (opts.burst_loss) {
      burst.step();
      if (fault_active) {
        burst.force_bad();
      }
      channel.extra_loss = burst.loss();
    } else if (fault_active) {
      channel.extra_loss = transport.config().fault_extra_loss;
    }
    transport.on_frame(channel);

    EXPECT_TRUE(transport.ledger_closes())
        << "conservation broke at tick " << t << " (seed " << seed
        << "): enqueued " << transport.packets_enqueued() << " != delivered "
        << transport.packets_delivered() << " + dropped "
        << transport.packets_dropped() << " + recovered "
        << transport.packets_recovered_delivered() << " + spec-dup "
        << transport.packets_speculative_dup() << " + in-flight "
        << transport.packets_in_flight();
    if (!transport.ledger_closes()) {
      break;
    }
  }
  const sim::TimePoint end = interval * ticks;
  simulator.run_until(end);
  transport.finalize(end);

  const TransportMetrics& metrics = transport.metrics();
  EXPECT_TRUE(metrics.conserved()) << "seed " << seed;

  // Speculation sub-ledger: every alternate-beam copy resolved in the same
  // on_data_done event as its primary, so the buckets close exactly — and
  // stay zero when speculation was never armed.
  EXPECT_EQ(metrics.speculative_enqueued,
            metrics.speculative_dups + metrics.speculative_drops)
      << "seed " << seed;
  EXPECT_LE(metrics.speculative_saves, metrics.speculative_enqueued)
      << "seed " << seed;
  if (!opts.speculative) {
    EXPECT_EQ(metrics.speculative_enqueued, 0u) << "seed " << seed;
  }

  // Frame ledger closes: every emitted frame has exactly one fate.
  EXPECT_EQ(metrics.frames_emitted,
            metrics.frames_on_time + metrics.frames_late +
                metrics.frames_missed + metrics.frames_dropped_queue +
                metrics.frames_dropped_arq + metrics.frames_unresolved)
      << "seed " << seed;

  // Release stream: strictly increasing, no double release.
  const auto& log = transport.jitter().release_log();
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE(seen.insert(log[i]).second) << "double release of " << log[i];
    if (i > 0) {
      EXPECT_LT(log[i - 1], log[i]) << "out-of-order release";
    }
  }
  EXPECT_EQ(log.size(), metrics.frames_on_time);
  return metrics;
}

TEST(TransportProperty, ConservationAcrossRandomLossSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_fuzz(seed, 180, {});
  }
}

TEST(TransportProperty, ConservationAcrossFaultInjectorSchedules) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    run_fuzz(seed, 180, {.with_fault_windows = true});
  }
}

TEST(TransportProperty, ConservationWithStaticFecUnderBurstLoss) {
  for (std::uint64_t seed = 41; seed <= 46; ++seed) {
    const TransportMetrics metrics =
        run_fuzz(seed, 180, {.with_fault_windows = true,
                             .fec = FecParams{4, 4},
                             .burst_loss = true});
    EXPECT_GT(metrics.parity_enqueued, 0u) << "seed " << seed;
    // Recovery credits never exceed the receiver's recovery count.
    EXPECT_LE(metrics.packets_recovered_delivered, metrics.packets_recovered)
        << "seed " << seed;
  }
}

TEST(TransportProperty, ConservationWithAdaptiveFecUnderBurstLoss) {
  bool any_recovery = false;
  for (std::uint64_t seed = 61; seed <= 68; ++seed) {
    const TransportMetrics metrics =
        run_fuzz(seed, 180, {.with_fault_windows = true,
                             .adaptive_fec = true,
                             .burst_loss = true});
    any_recovery = any_recovery || metrics.packets_recovered > 0;
  }
  // The fuzz channels are lossy enough that the adaptive layer must have
  // recovered something across the seed sweep, or it never engaged.
  EXPECT_TRUE(any_recovery);
}

TEST(TransportProperty, ConservationWithSpeculativeDualPath) {
  // Random speculation arming on top of lossy + fault schedules: the
  // extended ledger must close at every tick (checked inside run_fuzz) and
  // the spec sub-ledger must close at the end. The sweep must actually
  // exercise both outcomes — redundant copies AND saves — or the fuzz is
  // vacuous.
  std::uint64_t dups = 0;
  std::uint64_t saves = 0;
  for (std::uint64_t seed = 121; seed <= 128; ++seed) {
    const TransportMetrics metrics =
        run_fuzz(seed, 180, {.with_fault_windows = true, .speculative = true});
    EXPECT_GT(metrics.speculative_enqueued, 0u) << "seed " << seed;
    dups += metrics.speculative_dups;
    saves += metrics.speculative_saves;
  }
  EXPECT_GT(dups, 0u);
  EXPECT_GT(saves, 0u);
}

TEST(TransportProperty, ConservationWithSpeculationAndAdaptiveFec) {
  // The full stack at once: burst loss, fault windows, adaptive FEC, and
  // speculative dual-path. Each layer keeps its own sub-ledger; run_fuzz
  // asserts they all close.
  for (std::uint64_t seed = 141; seed <= 146; ++seed) {
    run_fuzz(seed, 180, {.with_fault_windows = true,
                         .adaptive_fec = true,
                         .burst_loss = true,
                         .speculative = true});
  }
}

TEST(TransportProperty, DeterministicWithSpeculation) {
  const FuzzOptions opts{.with_fault_windows = true,
                         .adaptive_fec = true,
                         .burst_loss = true,
                         .speculative = true};
  const TransportMetrics a = run_fuzz(37, 120, opts);
  const TransportMetrics b = run_fuzz(37, 120, opts);
  EXPECT_EQ(a.frames_on_time, b.frames_on_time);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.speculative_enqueued, b.speculative_enqueued);
  EXPECT_EQ(a.speculative_dups, b.speculative_dups);
  EXPECT_EQ(a.speculative_drops, b.speculative_drops);
  EXPECT_EQ(a.speculative_saves, b.speculative_saves);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
}

TEST(TransportProperty, FecKZeroIsBitIdenticalToNoFecLayer) {
  // `fec.k == 0` must be a true pass-through: identical metrics to the
  // default config, coin for coin, across lossy + fault schedules.
  for (std::uint64_t seed = 81; seed <= 84; ++seed) {
    const TransportMetrics off =
        run_fuzz(seed, 150, {.with_fault_windows = true});
    const TransportMetrics zero =
        run_fuzz(seed, 150,
                 {.with_fault_windows = true, .fec = FecParams{0, 6}});
    EXPECT_EQ(off.frames_on_time, zero.frames_on_time) << "seed " << seed;
    EXPECT_EQ(off.packets_delivered, zero.packets_delivered);
    EXPECT_EQ(off.packets_dropped, zero.packets_dropped);
    EXPECT_EQ(off.retransmits, zero.retransmits);
    EXPECT_EQ(off.duplicates, zero.duplicates);
    EXPECT_EQ(off.p99_ms, zero.p99_ms);
    EXPECT_EQ(zero.parity_enqueued, 0u);
    EXPECT_EQ(zero.packets_recovered, 0u);
    EXPECT_EQ(zero.packets_recovered_delivered, 0u);
  }
}

TEST(TransportProperty, CleanChannelDeliversEverythingOnTime) {
  sim::Simulator simulator;
  Transport transport{simulator, small_config(5)};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  const int ticks = 90;
  for (int t = 0; t < ticks; ++t) {
    simulator.run_until(interval * t);
    ChannelState channel;
    channel.mcs = &phy::mcs_table().back();
    channel.packet_loss = 0.0;
    transport.on_frame(channel);
  }
  simulator.run_until(interval * ticks);
  transport.finalize(interval * ticks);
  const TransportMetrics& metrics = transport.metrics();
  EXPECT_EQ(metrics.frames_emitted, static_cast<std::uint64_t>(ticks));
  EXPECT_EQ(metrics.frames_on_time, metrics.frames_emitted);
  EXPECT_EQ(metrics.deadline_misses, 0u);
  EXPECT_EQ(metrics.retransmits, 0u);
  EXPECT_TRUE(metrics.conserved());
  EXPECT_EQ(metrics.packets_in_flight, 0u);
  // 2 Gbps at 90 fps moves in a handful of MPDUs well inside 10 ms.
  EXPECT_GT(metrics.p50_ms, 0.0);
  EXPECT_LT(metrics.p99_ms, 10.0);
}

TEST(TransportProperty, TotalLossDropsOrStrandsEverything) {
  sim::Simulator simulator;
  Transport transport{simulator, small_config(6)};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  const int ticks = 45;
  for (int t = 0; t < ticks; ++t) {
    simulator.run_until(interval * t);
    ChannelState channel;
    channel.mcs = &phy::mcs_table().front();
    channel.packet_loss = 1.0;
    transport.on_frame(channel);
  }
  simulator.run_until(interval * ticks);
  transport.finalize(interval * ticks);
  const TransportMetrics& metrics = transport.metrics();
  EXPECT_EQ(metrics.frames_on_time, 0u);
  EXPECT_EQ(metrics.packets_delivered, 0u);
  EXPECT_GT(metrics.retransmits, 0u);
  EXPECT_GT(metrics.deadline_misses, 0u);
  EXPECT_TRUE(metrics.conserved());
}

TEST(TransportProperty, DeterministicGivenSeeds) {
  const TransportMetrics a = run_fuzz(33, 120, {.with_fault_windows = true});
  const TransportMetrics b = run_fuzz(33, 120, {.with_fault_windows = true});
  EXPECT_EQ(a.frames_on_time, b.frames_on_time);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
}

TEST(TransportProperty, DeterministicWithAdaptiveFecAndBurstLoss) {
  const FuzzOptions opts{.with_fault_windows = true,
                         .adaptive_fec = true,
                         .burst_loss = true};
  const TransportMetrics a = run_fuzz(34, 120, opts);
  const TransportMetrics b = run_fuzz(34, 120, opts);
  EXPECT_EQ(a.frames_on_time, b.frames_on_time);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_recovered, b.packets_recovered);
  EXPECT_EQ(a.packets_recovered_delivered, b.packets_recovered_delivered);
  EXPECT_EQ(a.parity_enqueued, b.parity_enqueued);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
}

// --- Session reuse ------------------------------------------------------

/// A deterministic lossy drive for the reset test: the channel schedule
/// depends only on `seed`, so two runs on a clean transport must agree on
/// every counter.
void drive_session(Transport& transport, sim::Simulator& simulator,
                   std::uint64_t seed, int ticks) {
  std::mt19937_64 rng{seed};
  std::uniform_real_distribution<double> u{0.0, 1.0};
  const sim::Duration interval = sim::from_seconds(1.0 / 90.0);
  const sim::TimePoint start = simulator.now();
  for (int t = 0; t < ticks; ++t) {
    simulator.run_until(start + interval * t);
    ChannelState channel;
    channel.mcs = &phy::mcs_table()[rng() % phy::mcs_table().size()];
    channel.packet_loss = 0.4 * u(rng);
    channel.stressed = u(rng) < 0.1;
    transport.on_frame(channel);
  }
  simulator.run_until(start + interval * ticks);
  transport.finalize(start + interval * ticks);
}

TEST(TransportProperty, ResetGivesBitIdenticalBackToBackSessions) {
  sim::Simulator simulator;
  TransportConfig config = small_config(9);
  config.adaptive_fec = true;
  Transport transport{simulator, config};

  drive_session(transport, simulator, 55, 120);
  const TransportMetrics first = transport.metrics();
  EXPECT_TRUE(first.conserved());

  // Same transport, second session: every metric — including the queue
  // high-water marks and RNG-dependent counters — must match the first.
  transport.reset();
  EXPECT_EQ(transport.packets_enqueued(), 0u);
  EXPECT_EQ(transport.outcomes().size(), 0u);
  drive_session(transport, simulator, 55, 120);
  const TransportMetrics second = transport.metrics();

  EXPECT_EQ(first.frames_emitted, second.frames_emitted);
  EXPECT_EQ(first.frames_on_time, second.frames_on_time);
  EXPECT_EQ(first.deadline_misses, second.deadline_misses);
  EXPECT_EQ(first.packets_enqueued, second.packets_enqueued);
  EXPECT_EQ(first.packets_delivered, second.packets_delivered);
  EXPECT_EQ(first.packets_dropped, second.packets_dropped);
  EXPECT_EQ(first.packets_in_flight, second.packets_in_flight);
  EXPECT_EQ(first.packets_recovered, second.packets_recovered);
  EXPECT_EQ(first.packets_recovered_delivered,
            second.packets_recovered_delivered);
  EXPECT_EQ(first.parity_enqueued, second.parity_enqueued);
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.duplicates, second.duplicates);
  EXPECT_EQ(first.queue_max_depth_frames, second.queue_max_depth_frames);
  EXPECT_EQ(first.queue_max_depth_bytes, second.queue_max_depth_bytes);
  EXPECT_EQ(first.p50_ms, second.p50_ms);
  EXPECT_EQ(first.p99_ms, second.p99_ms);
  EXPECT_TRUE(second.conserved());
}

// --- JitterBuffer fuzz --------------------------------------------------

TEST(TransportProperty, JitterBufferFuzzUnderReorderDuplicationBurstLoss) {
  // The buffer alone, fed FEC-framed frames through a hostile pipe:
  // burst-lossy (Gilbert–Elliott per MPDU), reordering, duplicating.
  // Invariants: per-frame data accounting closes, at most one parity per
  // group counted, recovery never exceeds one per group, releases strictly
  // increasing.
  for (std::uint64_t seed = 101; seed <= 110; ++seed) {
    JitterBuffer buffer;
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> u{0.0, 1.0};
    sim::BurstChannel::Config burst_config;
    burst_config.p_good_bad = 0.05;
    burst_config.p_bad_good = 0.3;
    burst_config.loss_bad = 0.6;
    burst_config.seed = seed + 1000;
    sim::BurstChannel burst{burst_config};

    std::uint64_t expected_data = 0;
    const auto t0 = sim::from_seconds(1.0);
    for (std::uint64_t frame_id = 0; frame_id < 60; ++frame_id) {
      const auto n = static_cast<std::uint32_t>(1 + rng() % 24);
      const auto k = static_cast<std::uint32_t>(rng() % 5);  // 0: no FEC
      const auto depth = static_cast<std::uint32_t>(1 + rng() % 6);
      const std::uint32_t groups =
          FecEncoder::group_count(n, {k, depth});
      expected_data += n;

      // Build the frame's MPDUs (data + parity), then push them through
      // the pipe: drop by burst state, duplicate some, reorder a window.
      std::vector<Packet> wire;
      for (std::uint32_t seq = 0; seq < n + groups; ++seq) {
        Packet p;
        p.frame_id = frame_id;
        p.seq = seq;
        p.frame_packets = n;
        p.payload_bytes = 500;
        p.capture = t0 + frame_id * 11ms;
        p.deadline = p.capture + 10ms;
        p.parity = seq >= n;
        p.fec_groups = groups;
        p.fec_group = p.parity ? seq - n : (groups > 0 ? seq % groups : 0);
        burst.step();
        if (u(rng) < burst.loss()) {
          continue;  // lost on air
        }
        wire.push_back(p);
        if (u(rng) < 0.15) {
          wire.push_back(p);  // duplicated (lost-ack retransmit)
        }
      }
      std::shuffle(wire.begin(), wire.end(), rng);

      std::uint64_t fresh_data = 0;
      std::uint64_t recovered = 0;
      for (const Packet& p : wire) {
        const auto arrival = buffer.on_packet(p, p.capture + 5ms);
        if (arrival.fresh && !p.parity) {
          ++fresh_data;
        }
        if (arrival.recovered.has_value()) {
          ++recovered;
        }
      }
      // Per-frame closure: unique data arrivals + recoveries never exceed
      // the frame's data count; recoveries are bounded by parity groups.
      EXPECT_LE(fresh_data + recovered, n) << "seed " << seed;
      EXPECT_LE(recovered, groups) << "seed " << seed;
      if (fresh_data + recovered == n) {
        EXPECT_TRUE(buffer.is_complete(frame_id)) << "seed " << seed;
      }
      buffer.on_deadline(frame_id, t0 + frame_id * 11ms + 10ms);
    }

    // Global accounting: every unique arrival counted once; the release
    // log is strictly increasing with no double release.
    EXPECT_LE(buffer.counters().packets_recovered, expected_data);
    const auto& log = buffer.release_log();
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_LT(log[i - 1], log[i]);
    }
    EXPECT_EQ(log.size(), buffer.counters().released_on_time);
  }
}

}  // namespace
}  // namespace movr::net
