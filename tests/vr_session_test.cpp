#include <vr/session.hpp>

#include <gtest/gtest.h>

#include <baseline/strategies.hpp>
#include <core/gain_control.hpp>
#include <geom/angle.hpp>

namespace movr::vr {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;

core::Scene make_scene() {
  return core::Scene{channel::Room{5.0, 5.0},
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void calibrate_reflector(core::Scene& scene, core::MovrReflector& reflector) {
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  std::mt19937_64 rng{5};
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
}

TEST(Session, CleanLosSessionHasNoGlitches) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();
  EXPECT_EQ(report.frames, 180u);
  EXPECT_EQ(report.glitched_frames, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.mean_snr_db, 20.0);
  EXPECT_NEAR(report.mean_rate_mbps, 6756.75, 1.0);
}

TEST(Session, HandBlockageGlitchesWithoutMovr) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(2.0));
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  Session session{simulator, scene, strategy, nullptr, &script, config};
  const QoeReport report = session.run();
  // Two 0.5 s raises in 2 s: roughly half the frames glitch.
  EXPECT_GT(report.glitch_fraction(), 0.3);
  EXPECT_LT(report.glitch_fraction(), 0.7);
  EXPECT_GE(report.stall_events, 2u);
  EXPECT_GE(report.longest_stall, sim::from_seconds(0.4));
  EXPECT_FALSE(report.clean());
}

TEST(Session, MovrSurvivesHandBlockage) {
  core::Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate_reflector(scene, reflector);
  sim::Simulator simulator;
  MovrStrategy strategy{simulator, scene, std::mt19937_64{3}};
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(2.0));
  Session::Config config;
  config.duration = sim::from_seconds(2.0);
  Session session{simulator, scene, strategy, nullptr, &script, config};
  const QoeReport report = session.run();
  // A handful of frames glitch during each handover; the bulk survive.
  EXPECT_LT(report.glitch_fraction(), 0.15);
  EXPECT_GT(strategy.manager().stats().handovers_to_reflector, 0);
}

TEST(Session, MovrBeatsDirectUnderSameScript) {
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(4.0));
  Session::Config config;
  config.duration = sim::from_seconds(4.0);

  QoeReport direct_report;
  {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session session{simulator, scene, strategy, nullptr, &script, config};
    direct_report = session.run();
  }
  QoeReport movr_report;
  {
    core::Scene scene = make_scene();
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    calibrate_reflector(scene, reflector);
    sim::Simulator simulator;
    MovrStrategy strategy{simulator, scene, std::mt19937_64{3}};
    Session session{simulator, scene, strategy, nullptr, &script, config};
    movr_report = session.run();
  }
  EXPECT_EQ(direct_report.frames, movr_report.frames);
  EXPECT_LT(movr_report.glitch_fraction(),
            direct_report.glitch_fraction() / 2.0);
}

TEST(Session, WalkingPlayerWithMotionModel) {
  core::Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate_reflector(scene, reflector);
  sim::Simulator simulator;
  MovrStrategy strategy{simulator, scene, std::mt19937_64{4}};
  PlayerMotion motion{scene.room(), {3.0, 2.0}, 21};
  Session::Config config;
  config.duration = sim::from_seconds(3.0);
  Session session{simulator, scene, strategy, &motion, nullptr, config};
  const QoeReport report = session.run();
  EXPECT_EQ(report.frames, 270u);
  // Walking around with clear LOS: essentially glitch-free.
  EXPECT_LT(report.glitch_fraction(), 0.05);
}

TEST(Session, ReportStatisticsConsistent) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(1.0);
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();
  EXPECT_LE(report.glitched_frames, report.frames);
  EXPECT_LE(report.min_snr_db, report.mean_snr_db + 1e-9);
  EXPECT_GE(report.mean_rate_mbps, 0.0);
  EXPECT_EQ(report.stall_events, 0u);
  EXPECT_EQ(report.longest_stall, sim::Duration::zero());
}

}  // namespace
}  // namespace movr::vr
