#include <core/link_manager.hpp>

#include <gtest/gtest.h>

#include <core/beam_tracker.hpp>
#include <core/gain_control.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;

struct Fixture {
  Scene scene;
  MovrReflector& reflector;
  sim::Simulator simulator;

  Fixture()
      : scene{channel::Room{5.0, 5.0},
              ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}},
        reflector{scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0))} {
    // Reflector calibrated (as angle search + gain control would leave it).
    calibrate(reflector);
  }

  void calibrate(MovrReflector& r) {
    r.front_end().steer_rx(scene.true_reflector_angle_to_ap(r));
    r.front_end().steer_tx(scene.true_reflector_angle_to_headset(r));
    scene.ap().node().steer_toward(r.position());
    std::mt19937_64 rng{99};
    GainController::run(r.front_end(), scene.reflector_input(r), rng);
  }

  void block_direct() {
    scene.room().add_obstacle(channel::make_hand(
        scene.headset().node().position(),
        scene.ap().node().position() - scene.headset().node().position()));
  }
  void unblock() { scene.room().remove_obstacles("hand"); }

  /// Runs `frames` at 90 Hz through the manager; returns last true SNR.
  rf::Decibels run_frames(LinkManager& manager, int frames) {
    rf::Decibels last{0.0};
    for (int i = 0; i < frames; ++i) {
      last = manager.on_frame();
      simulator.run_until(simulator.now() + sim::Duration{11'111'111});
    }
    return last;
  }
};

TEST(BeamTracker, AimsWithinADegree) {
  Fixture f;
  std::mt19937_64 rng{1};
  f.reflector.front_end().steer_tx(deg_to_rad(40.0));  // badly off
  const auto result = BeamTracker::retarget(f.scene, f.reflector, rng);
  const double truth = f.scene.true_reflector_angle_to_headset(f.reflector);
  EXPECT_LE(movr::geom::rad_to_deg(
                movr::geom::angular_distance(result.reflector_tx_angle, truth)),
            1.0);
  EXPECT_EQ(result.bt_commands, 1);
  EXPECT_LT(sim::to_milliseconds(result.duration), 15.0);
}

TEST(BeamTracker, RefinementNeverWorse) {
  Fixture f;
  f.scene.ap().node().steer_toward(f.reflector.position());
  f.scene.headset().node().face_toward(f.reflector.position());
  std::mt19937_64 rng1{2};
  std::mt19937_64 rng2{2};
  BeamTracker::Config plain;
  BeamTracker::Config refined;
  refined.refine = true;
  const auto p = BeamTracker::retarget(f.scene, f.reflector, rng1, plain);
  const auto r = BeamTracker::retarget(f.scene, f.reflector, rng2, refined);
  EXPECT_GE(r.snr.value(), p.snr.value() - 0.5);
  EXPECT_GT(r.bt_commands, p.bt_commands);
}

TEST(LinkManager, StaysDirectWhenClear) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{3}};
  const rf::Decibels snr = f.run_frames(manager, 30);
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  EXPECT_EQ(manager.stats().handovers_to_reflector, 0);
  EXPECT_GT(snr.value(), 18.0);
}

TEST(LinkManager, HandsOverOnBlockage) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}};
  f.run_frames(manager, 10);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  f.block_direct();
  const rf::Decibels after = f.run_frames(manager, 20);
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
  EXPECT_EQ(manager.stats().handovers_to_reflector, 1);
  // Via the reflector the SNR is back to VR-grade despite the hand.
  EXPECT_GT(after.value(), 18.0);
}

TEST(LinkManager, RecoversToDirect) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{5}};
  f.run_frames(manager, 5);
  f.block_direct();
  f.run_frames(manager, 20);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
  f.unblock();
  f.run_frames(manager, 60);  // probes run at 100 ms cadence
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  EXPECT_EQ(manager.stats().handovers_to_direct, 1);
  EXPECT_GT(manager.stats().time_on_reflector, sim::Duration::zero());
}

TEST(LinkManager, HandoverWithinAFewFrames) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{6}};
  f.run_frames(manager, 5);
  f.block_direct();
  int frames_to_recover = 0;
  for (int i = 0; i < 30; ++i) {
    const rf::Decibels snr = manager.on_frame();
    f.simulator.run_until(f.simulator.now() + sim::Duration{11'111'111});
    ++frames_to_recover;
    if (snr.value() > 18.0) {
      break;
    }
  }
  // Degradation detection (2-3 frames) + one BT exchange (~1 frame).
  EXPECT_LE(frames_to_recover, 8);
}

TEST(LinkManager, RetargetsWhenPlayerWalks) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{7}};
  f.run_frames(manager, 5);
  f.block_direct();
  f.run_frames(manager, 15);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
  // Walk far enough that the reflector's ~10 degree beam misses.
  f.unblock();  // hand stays down while walking...
  f.block_direct();  // ...but re-block relative to the new position below
  f.scene.headset().node().set_position({1.5, 3.5});
  f.run_frames(manager, 10);
  EXPECT_GT(manager.stats().retargets, 0);
}

TEST(LinkManager, NoReflectorMeansNoHandover) {
  Scene scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}};
  sim::Simulator simulator;
  LinkManager manager{simulator, scene, std::mt19937_64{8}};
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
  for (int i = 0; i < 20; ++i) {
    manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  EXPECT_EQ(manager.stats().handovers_to_reflector, 0);
}

TEST(LinkManager, PicksBestOfTwoReflectors) {
  Fixture f;
  // A second reflector much closer to the action.
  auto& near_reflector = f.scene.add_reflector({4.6, 0.4}, deg_to_rad(135.0));
  f.calibrate(near_reflector);

  LinkManager manager{f.simulator, f.scene, std::mt19937_64{9}};
  f.run_frames(manager, 5);
  f.block_direct();
  const rf::Decibels snr = f.run_frames(manager, 20);
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
  EXPECT_GT(snr.value(), 18.0);
}

// --- Proactive (forecast-driven) path ---------------------------------

LinkRiskWindow confident_window(sim::TimePoint now, double confidence = 0.9) {
  LinkRiskWindow window;
  window.t_start = now + std::chrono::milliseconds{20};
  window.t_end = now + std::chrono::milliseconds{60};
  window.confidence = confidence;
  return window;
}

TEST(LinkManager, ProactiveHandoverOnConfidentWindows) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}};
  f.run_frames(manager, 3);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kDirect);

  // Hysteresis: one confident window is not enough...
  manager.on_risk_window(confident_window(f.simulator.now()));
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  // ...the second consecutive one acts, before any SNR has degraded.
  manager.on_risk_window(confident_window(f.simulator.now()));
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kHandoverPending);
  EXPECT_EQ(manager.stats().proactive_handovers, 1);
  EXPECT_EQ(manager.stats().risk_windows, 1);
  EXPECT_TRUE(manager.risk_active());

  // The BT exchange completes and the link rides the reflector.
  f.run_frames(manager, 3);
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
}

TEST(LinkManager, LowConfidenceWindowsIgnored) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}};
  f.run_frames(manager, 3);
  for (int i = 0; i < 10; ++i) {
    manager.on_risk_window(confident_window(f.simulator.now(), 0.3));
  }
  EXPECT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  EXPECT_EQ(manager.stats().risk_windows, 0);
  EXPECT_EQ(manager.stats().proactive_handovers, 0);
  EXPECT_FALSE(manager.risk_active());
}

TEST(LinkManager, ProactiveBudgetBoundsThrash) {
  // A forecaster gone insane emits a confident window every frame, forever.
  // Overlapping windows merge into one contiguous risk period with ONE
  // proactive handover — even after the manager probes its way back to
  // direct mid-period, the spent budget keeps it there.
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}};
  f.run_frames(manager, 3);
  for (int i = 0; i < 90; ++i) {
    manager.on_risk_window(confident_window(f.simulator.now()));
    f.run_frames(manager, 1);
  }
  EXPECT_EQ(manager.stats().risk_windows, 1);
  EXPECT_EQ(manager.stats().proactive_handovers, 1);

  // Let the risk period expire, then open a fresh one: new budget (and the
  // proactive cooldown has long passed), so exactly one more fires.
  f.run_frames(manager, 10);
  ASSERT_FALSE(manager.risk_active());
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  manager.on_risk_window(confident_window(f.simulator.now()));
  manager.on_risk_window(confident_window(f.simulator.now()));
  EXPECT_EQ(manager.stats().risk_windows, 2);
  EXPECT_EQ(manager.stats().proactive_handovers, 2);
}

TEST(LinkManager, ProactiveCooldownSpacesBackToBackWindows) {
  // Fresh windows arriving right after the previous period expired are a
  // new period (new budget), but the cooldown still spaces the handovers.
  LinkManager::Config config;
  config.proactive_cooldown = std::chrono::seconds{3600};  // effectively inf
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}, config};
  f.run_frames(manager, 3);
  manager.on_risk_window(confident_window(f.simulator.now()));
  manager.on_risk_window(confident_window(f.simulator.now()));
  EXPECT_EQ(manager.stats().proactive_handovers, 1);
  // Expire, recover to direct (3 good probes at 100 ms), reopen: budget is
  // fresh but the cooldown blocks the second proactive handover.
  f.run_frames(manager, 40);
  ASSERT_FALSE(manager.risk_active());
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kDirect);
  manager.on_risk_window(confident_window(f.simulator.now()));
  manager.on_risk_window(confident_window(f.simulator.now()));
  EXPECT_EQ(manager.stats().risk_windows, 2);
  EXPECT_EQ(manager.stats().proactive_handovers, 1);
}

TEST(LinkManager, SpeculativeAltSnrLeavesSteeringUntouched) {
  Fixture f;
  LinkManager manager{f.simulator, f.scene, std::mt19937_64{4}};
  f.run_frames(manager, 3);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kDirect);

  // Direct mode: the alternate is the calibrated reflector's relay.
  const double ap_before = f.scene.ap().node().array().steering();
  const double hs_before = f.scene.headset().node().array().steering();
  const auto alt = manager.speculative_alt_snr();
  ASSERT_TRUE(alt.has_value());
  EXPECT_GT(alt->value(), 10.0);  // a usable hot spare, not noise
  EXPECT_EQ(f.scene.ap().node().array().steering(), ap_before);
  EXPECT_EQ(f.scene.headset().node().array().steering(), hs_before);

  // Via-reflector mode: the alternate is the (blocked) direct beam.
  f.block_direct();
  f.run_frames(manager, 20);
  ASSERT_EQ(manager.mode(), LinkManager::Mode::kViaReflector);
  const auto direct_alt = manager.speculative_alt_snr();
  ASSERT_TRUE(direct_alt.has_value());
  EXPECT_LT(direct_alt->value(), alt->value());  // it IS blocked
}

}  // namespace
}  // namespace movr::core
