#include <core/occlusion_forecaster.hpp>

#include <gtest/gtest.h>

#include <channel/obstacle.hpp>
#include <channel/room.hpp>
#include <core/ap.hpp>
#include <core/headset.hpp>
#include <core/scene.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::Vec2;
using geom::deg_to_rad;
using namespace std::chrono_literals;

/// Empty 5x5 office, AP in the corner, headset at `headset_pos`, one
/// person standing at {1.7, 1.3} — on the AP->{3.0, 2.2} line.
Scene blocked_scene(Vec2 headset_pos) {
  channel::Room room{5.0, 5.0};
  room.add_obstacle(channel::make_person({1.7, 1.3}));
  ApRadio ap{{0.4, 0.4}, deg_to_rad(45.0)};
  HeadsetRadio headset{headset_pos, 0.0};
  Scene scene{std::move(room), std::move(ap), std::move(headset)};
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  return scene;
}

OcclusionForecaster::Config noiseless() {
  OcclusionForecaster::Config config;
  config.tracker.tracking_noise_m = 0.0;
  return config;
}

/// Walks the headset toward the shadow at `speed` m/s along -x starting
/// from `from`, feeding poses at 90 Hz, and returns the first window.
std::optional<LinkRiskWindow> drive_toward_shadow(OcclusionForecaster& fc,
                                                  Scene& scene, Vec2 from,
                                                  Vec2 velocity, int frames) {
  for (int i = 0; i < frames; ++i) {
    const auto t = sim::from_seconds(i * 0.0111);
    const Vec2 pos = from + velocity * sim::to_seconds(t);
    scene.headset().node().set_position(pos);
    fc.on_pose(sim::TimePoint{t}, pos);
    const auto window = fc.forecast(scene, sim::TimePoint{t});
    if (window.has_value()) {
      return window;
    }
  }
  return std::nullopt;
}

TEST(OcclusionForecaster, ForecastsApproachingShadow) {
  // The shadow of the person at {1.7, 1.3} covers headset positions near
  // the extended AP ray (through {3.0, 2.2}). Approach it from the side at
  // walking speed: the forecaster must issue a window BEFORE the LOS
  // actually blocks.
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{noiseless()};
  // Perpendicular-ish approach toward the shadow axis.
  const auto window =
      drive_toward_shadow(fc, scene, {3.6, 1.4}, {-1.0, 1.3}, 90);
  ASSERT_TRUE(window.has_value());
  EXPECT_GT(window->confidence, 0.0);
  EXPECT_LT(window->t_start, window->t_end);
  // At forecast time the current LOS is still clear — that is the contract
  // (already-blocked links belong to the reactive tier).
  const Vec2 ap = scene.ap().node().position();
  const Vec2 headset = scene.headset().node().position();
  bool blocked_now = true;
  for (const auto& path : scene.paths_between(ap, headset)) {
    if (path.is_los()) {
      blocked_now = path.is_blocked(3.0);
    }
  }
  EXPECT_FALSE(blocked_now);
}

TEST(OcclusionForecaster, StationaryPlayerNoWindow) {
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{noiseless()};
  const auto window =
      drive_toward_shadow(fc, scene, {3.6, 1.4}, {0.0, 0.0}, 90);
  EXPECT_FALSE(window.has_value());
  EXPECT_GT(fc.counters().forecasts, 0);
  EXPECT_EQ(fc.counters().windows_issued, 0);
}

TEST(OcclusionForecaster, ShortHistoryIsNoPrediction) {
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{noiseless()};
  // Two samples (below min_samples = 3): the forecaster must skip, not
  // forecast from a garbage fit.
  fc.on_pose(sim::TimePoint{0ms}, {3.6, 1.4});
  fc.on_pose(sim::TimePoint{11ms}, {3.59, 1.41});
  EXPECT_FALSE(fc.forecast(scene, sim::TimePoint{11ms}).has_value());
  EXPECT_EQ(fc.counters().no_fit_skips, 1);
}

TEST(OcclusionForecaster, MovingAwayFromShadowNoWindow) {
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{noiseless()};
  // Walking AWAY from the shadow axis: never a risk window.
  const auto window =
      drive_toward_shadow(fc, scene, {3.6, 1.4}, {0.8, -0.5}, 60);
  EXPECT_FALSE(window.has_value());
}

TEST(OcclusionForecaster, ChaosFabricatesInClearAir) {
  // chaos_rate 1.0 flips every forecast: in clear air (walking away from
  // the shadow, honestly no risk) it fabricates a confident spurious
  // window. The suppression direction is covered by
  // ChaosStreamIsIndependent's exact-inversion count.
  auto chaos_cfg = noiseless();
  chaos_cfg.chaos_rate = 1.0;
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{chaos_cfg};
  const auto window =
      drive_toward_shadow(fc, scene, {3.6, 1.4}, {0.8, -0.5}, 60);
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->confidence, 0.9);
  EXPECT_GT(fc.counters().chaos_garbled, 0);
}

TEST(OcclusionForecaster, ChaosStreamIsIndependent) {
  // Enabling chaos must not perturb the honest arm's inputs: the chaos
  // draws come from a dedicated RNG, so two forecasters fed identical
  // poses agree on every honest (pre-chaos) answer. Verified by running
  // chaos at 0.0 vs 1.0 and checking the 1.0 run garbled EVERY forecast
  // the 0.0 run issued (inversion, not divergence).
  auto scene0 = blocked_scene({3.6, 1.4});
  auto scene1 = blocked_scene({3.6, 1.4});
  OcclusionForecaster honest{noiseless()};
  auto chaos_cfg = noiseless();
  chaos_cfg.chaos_rate = 1.0;
  OcclusionForecaster garbled{chaos_cfg};

  int honest_windows = 0;
  int garbled_windows = 0;
  for (int i = 0; i < 90; ++i) {
    const auto t = sim::from_seconds(i * 0.0111);
    const Vec2 pos = Vec2{3.6, 1.4} + Vec2{-1.0, 1.3} * sim::to_seconds(t);
    scene0.headset().node().set_position(pos);
    scene1.headset().node().set_position(pos);
    honest.on_pose(sim::TimePoint{t}, pos);
    garbled.on_pose(sim::TimePoint{t}, pos);
    if (honest.forecast(scene0, sim::TimePoint{t}).has_value()) {
      ++honest_windows;
    }
    if (garbled.forecast(scene1, sim::TimePoint{t}).has_value()) {
      ++garbled_windows;
    }
  }
  EXPECT_GT(honest_windows, 0);
  // Perfect inversion: windows exactly where the honest run had none.
  EXPECT_EQ(garbled_windows + honest_windows, 90 - 2);  // minus no-fit skips
  EXPECT_EQ(garbled.counters().chaos_garbled, 90 - 2);
}

TEST(OcclusionForecaster, ResetClearsEverything) {
  auto scene = blocked_scene({3.6, 1.4});
  OcclusionForecaster fc{noiseless()};
  drive_toward_shadow(fc, scene, {3.6, 1.4}, {-1.0, 1.3}, 90);
  fc.reset();
  EXPECT_EQ(fc.tracker().sample_count(), 0u);
  EXPECT_EQ(fc.counters().forecasts, 0);
  EXPECT_EQ(fc.counters().windows_issued, 0);
}

}  // namespace
}  // namespace movr::core
