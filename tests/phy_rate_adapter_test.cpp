#include <phy/rate_adapter.hpp>

#include <random>

#include <gtest/gtest.h>

#include <rf/measurement.hpp>

namespace movr::phy {
namespace {

using rf::Decibels;

TEST(RateAdapter, StartsUnassociated) {
  RateAdapter adapter;
  EXPECT_EQ(adapter.current(), nullptr);
  EXPECT_EQ(adapter.current_rate_mbps(), 0.0);
}

TEST(RateAdapter, AssociatesOnFirstEstimate) {
  RateAdapter adapter;
  const McsEntry* mcs = adapter.on_estimate(Decibels{25.0});
  ASSERT_NE(mcs, nullptr);
  // Margin-backed: selected for 24 dB, which still yields MCS24.
  EXPECT_EQ(mcs->index, 24);
}

TEST(RateAdapter, NoLinkAtVeryLowSnr) {
  RateAdapter adapter;
  EXPECT_EQ(adapter.on_estimate(Decibels{-20.0}), nullptr);
}

TEST(RateAdapter, DowngradesImmediately) {
  RateAdapter adapter;
  adapter.on_estimate(Decibels{25.0});
  const McsEntry* after_drop = adapter.on_estimate(Decibels{10.0});
  ASSERT_NE(after_drop, nullptr);
  EXPECT_LT(after_drop->rate_mbps, 6756.0);
  EXPECT_EQ(adapter.stats().downgrades, 1u);
}

TEST(RateAdapter, UpgradeNeedsStability) {
  RateAdapter::Config config;
  config.stable_before_upgrade = 8;
  RateAdapter adapter{config};
  adapter.on_estimate(Decibels{10.0});
  const double low_rate = adapter.current_rate_mbps();
  // SNR recovers; the adapter must not jump on the first good estimate.
  adapter.on_estimate(Decibels{25.0});
  EXPECT_EQ(adapter.current_rate_mbps(), low_rate);
  for (int i = 0; i < 10; ++i) {
    adapter.on_estimate(Decibels{25.0});
  }
  EXPECT_GT(adapter.current_rate_mbps(), low_rate);
  EXPECT_GE(adapter.stats().upgrades, 1u);
}

TEST(RateAdapter, InterruptedStreakDoesNotUpgrade) {
  RateAdapter::Config config;
  config.stable_before_upgrade = 8;
  RateAdapter adapter{config};
  adapter.on_estimate(Decibels{10.0});
  const double low_rate = adapter.current_rate_mbps();
  for (int i = 0; i < 50; ++i) {
    // Alternating good/bad estimates never build a streak.
    adapter.on_estimate(Decibels{i % 2 == 0 ? 25.0 : 10.0});
  }
  EXPECT_EQ(adapter.current_rate_mbps(), low_rate);
}

TEST(RateAdapter, NoFlappingUnderNoise) {
  // A steady channel with estimator noise: the adapter should settle, not
  // oscillate every frame.
  RateAdapter adapter;
  std::mt19937_64 rng{3};
  for (int i = 0; i < 50; ++i) {  // warm-up
    adapter.on_estimate(rf::estimate_snr(Decibels{22.0}, 16, rng));
  }
  const auto before = adapter.stats();
  for (int i = 0; i < 500; ++i) {
    adapter.on_estimate(rf::estimate_snr(Decibels{22.0}, 16, rng));
  }
  const auto after = adapter.stats();
  const auto churn = (after.upgrades - before.upgrades) +
                     (after.downgrades - before.downgrades);
  EXPECT_LT(churn, 25u);  // < 5% of frames change rate
}

TEST(RateAdapter, SelectionIsSafeAgainstTruth) {
  // Property: with a 1 dB margin and unbiased estimates, the selected MCS's
  // threshold should rarely exceed the true SNR.
  RateAdapter adapter;
  std::mt19937_64 rng{5};
  int unsafe = 0;
  int total = 0;
  for (double truth = 5.0; truth <= 25.0; truth += 2.5) {
    adapter.reset();
    for (int i = 0; i < 200; ++i) {
      const McsEntry* mcs =
          adapter.on_estimate(rf::estimate_snr(Decibels{truth}, 16, rng));
      if (mcs != nullptr) {
        ++total;
        unsafe += mcs->min_snr.value() > truth;
      }
    }
  }
  EXPECT_LT(static_cast<double>(unsafe) / total, 0.10);
}

TEST(RateAdapter, ResetClearsState) {
  RateAdapter adapter;
  adapter.on_estimate(Decibels{20.0});
  adapter.reset();
  EXPECT_EQ(adapter.current(), nullptr);
  EXPECT_EQ(adapter.stats().estimates, 0u);
}

}  // namespace
}  // namespace movr::phy
