#include <net/fec.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace movr::net {
namespace {

std::vector<Packet> make_frame(std::uint64_t frame_id, std::uint32_t n,
                               std::uint32_t bytes = 1000) {
  std::vector<Packet> packets;
  for (std::uint32_t seq = 0; seq < n; ++seq) {
    Packet p;
    p.frame_id = frame_id;
    p.seq = seq;
    p.frame_packets = n;
    p.payload_bytes = bytes;
    p.keyframe = true;
    packets.push_back(p);
  }
  return packets;
}

TEST(FecEncoder, KZeroIsBitIdenticalPassThrough) {
  FecEncoder fec;
  std::vector<Packet> packets = make_frame(0, 5);
  const std::vector<Packet> before = packets;
  fec.protect(packets, FecParams{});
  ASSERT_EQ(packets.size(), before.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].seq, before[i].seq);
    EXPECT_EQ(packets[i].fec_groups, 0u);
    EXPECT_FALSE(packets[i].parity);
  }
  EXPECT_EQ(fec.counters().frames_protected, 0u);
  EXPECT_EQ(fec.counters().parity_packets, 0u);
}

TEST(FecEncoder, GroupCountCombinesRateAndDepth) {
  // Rate bound: ceil(n/k). Depth raises it; n caps it.
  EXPECT_EQ(FecEncoder::group_count(8, {4, 1}), 2u);
  EXPECT_EQ(FecEncoder::group_count(8, {4, 3}), 3u);
  EXPECT_EQ(FecEncoder::group_count(8, {2, 1}), 4u);
  EXPECT_EQ(FecEncoder::group_count(3, {2, 8}), 3u);  // capped at n
  EXPECT_EQ(FecEncoder::group_count(0, {4, 2}), 0u);
  EXPECT_EQ(FecEncoder::group_count(8, {0, 4}), 0u);  // disabled
}

TEST(FecEncoder, AppendsOneParityPerGroupWithRoundRobinFraming) {
  FecEncoder fec;
  std::vector<Packet> packets = make_frame(7, 8);
  fec.protect(packets, {4, 1});  // 2 groups
  ASSERT_EQ(packets.size(), 10u);
  for (std::uint32_t seq = 0; seq < 8; ++seq) {
    EXPECT_FALSE(packets[seq].parity);
    EXPECT_EQ(packets[seq].fec_groups, 2u);
    EXPECT_EQ(packets[seq].fec_group, seq % 2);
    EXPECT_EQ(packets[seq].frame_packets, 8u);  // data count unchanged
  }
  for (std::uint32_t g = 0; g < 2; ++g) {
    const Packet& parity = packets[8 + g];
    EXPECT_TRUE(parity.parity);
    EXPECT_EQ(parity.seq, 8 + g);
    EXPECT_EQ(parity.fec_group, g);
    EXPECT_EQ(parity.fec_groups, 2u);
    EXPECT_EQ(parity.frame_id, 7u);
    EXPECT_TRUE(parity.keyframe);
    EXPECT_EQ(parity.payload_bytes, 1000u);  // as long as its largest member
  }
  EXPECT_EQ(fec.counters().frames_protected, 1u);
  EXPECT_EQ(fec.counters().parity_packets, 2u);
  EXPECT_EQ(fec.counters().parity_bytes, 2000u);
}

TEST(FecEncoder, GroupSizesPartitionTheFrame) {
  for (std::uint32_t n = 1; n <= 40; ++n) {
    for (std::uint32_t groups = 1; groups <= n; ++groups) {
      std::uint32_t total = 0;
      for (std::uint32_t g = 0; g < groups; ++g) {
        total += FecEncoder::group_size(n, groups, g);
      }
      EXPECT_EQ(total, n) << "n=" << n << " groups=" << groups;
    }
  }
}

TEST(FecEncoder, InterleavingSpreadsConsecutiveLossAcrossGroups) {
  // The burst-proofing claim: `groups` consecutive seqs land in `groups`
  // distinct groups, so a burst that long costs each group one member.
  FecEncoder fec;
  std::vector<Packet> packets = make_frame(0, 22);
  fec.protect(packets, {8, 6});  // depth dominates: 6 groups
  const std::uint32_t groups = packets[0].fec_groups;
  ASSERT_EQ(groups, 6u);
  for (std::uint32_t start = 0; start + groups <= 22; ++start) {
    std::vector<bool> seen(groups, false);
    for (std::uint32_t seq = start; seq < start + groups; ++seq) {
      EXPECT_FALSE(seen[packets[seq].fec_group]);
      seen[packets[seq].fec_group] = true;
    }
  }
}

}  // namespace
}  // namespace movr::net
