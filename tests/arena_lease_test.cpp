// Lease-protocol edge cases (ISSUE: arena arbitration):
//   * revocation landing while the victim's handover is still in flight
//     (kHandoverPending) must cancel the pending commit, not program a
//     reflector the victim no longer owns;
//   * simultaneous equal-priority waiters must resolve deterministically
//     (lower user id wins, independent of registration order);
//   * admission evicting a user whose LinkManager is already in its safe
//     fallback mode (kDegraded) must leave every piece of shared state
//     consistent — no lease leaks, revoke on a non-holder is a no-op, and
//     the user readmits cleanly after backoff;
//   * a waiter whose wait_ttl expires the very tick its reservation is
//     granted must not leave a dangling reservation;
//   * device quarantine bounces acquires without registering wait entries,
//     and failover's strip + fast-track primitives behave (one-shot
//     backdated priority for the displaced holder).
#include <arena/admission.hpp>
#include <arena/lease.hpp>

#include <gtest/gtest.h>

#include <array>

#include <core/gain_control.hpp>
#include <core/link_manager.hpp>
#include <geom/angle.hpp>

namespace movr::arena {
namespace {

using core::LinkManager;
using movr::geom::deg_to_rad;

sim::TimePoint ms(long v) { return sim::TimePoint{std::chrono::milliseconds{v}}; }

/// One user's world: own scene clone (as the coordinator builds), own
/// manager, lease hooks wired to a shared arbiter — the unit-scale version
/// of what arena::Coordinator assembles.
struct UserRig {
  core::Scene scene;
  LinkManager manager;

  UserRig(sim::Simulator& simulator, const core::Scene& prototype,
          ReflectorArbiter& arbiter, std::size_t user, std::uint64_t seed,
          LinkManager::Config config = {})
      : scene{prototype.clone()},
        manager{simulator, scene, std::mt19937_64{seed},
                wire(config, arbiter, user, simulator)} {}

  static LinkManager::Config wire(LinkManager::Config config,
                                  ReflectorArbiter& arbiter, std::size_t user,
                                  sim::Simulator& simulator) {
    config.reflector_acquire = [&arbiter, user, &simulator](std::size_t r) {
      return arbiter.acquire(user, r, simulator.now());
    };
    config.reflector_release = [&arbiter, user, &simulator](std::size_t r) {
      arbiter.release(user, r, simulator.now());
    };
    return config;
  }

  void block_direct() {
    scene.room().add_obstacle(channel::make_hand(
        scene.headset().node().position(),
        scene.ap().node().position() - scene.headset().node().position()));
  }
};

core::Scene make_prototype() {
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  std::mt19937_64 rng{99};
  core::GainController::run(reflector.front_end(),
                            scene.reflector_input(reflector), rng);
  scene.ap().node().steer_toward(scene.headset().node().position());
  return scene;
}

// --- edge 1: lease expiry while the handover is still in flight ---------

TEST(ArenaLease, RevocationDuringPendingHandoverCancelsCommit) {
  ReflectorArbiter::Config cfg;
  cfg.lease_duration = std::chrono::milliseconds{100};
  cfg.wait_ttl = std::chrono::milliseconds{1000};
  cfg.aging_per_second = 4.0;  // bonus 0.25 out-aged after 62.5 ms waiting
  ReflectorArbiter arbiter{1, 2, cfg};

  sim::Simulator simulator;
  const auto prototype = make_prototype();
  LinkManager::Config slow;
  slow.bt_wait = std::chrono::milliseconds{300};  // long in-flight window
  slow.handover_timeout = std::chrono::milliseconds{600};
  UserRig a{simulator, prototype, arbiter, 0, 11, slow};

  a.block_direct();
  for (int i = 0; i < 5 &&
       a.manager.mode() != LinkManager::Mode::kHandoverPending; ++i) {
    a.manager.on_frame();
    simulator.run_until(simulator.now() + std::chrono::milliseconds{2});
  }
  ASSERT_EQ(a.manager.mode(), LinkManager::Mode::kHandoverPending);
  ASSERT_EQ(arbiter.holder(0), std::optional<std::size_t>{0});

  // User 1 wants the same reflector and starts aging against the holder.
  EXPECT_FALSE(arbiter.acquire(1, 0, simulator.now()));

  // Past the lease term AND past the waiter's aging threshold — but well
  // before the 300 ms commit lands: the renew must revoke mid-flight.
  simulator.run_until(ms(150));
  EXPECT_FALSE(arbiter.renew(0, 0, simulator.now()));
  a.manager.revoke_reflector(0);
  EXPECT_EQ(a.manager.mode(), LinkManager::Mode::kDirect);
  EXPECT_EQ(a.manager.stats().lease_revocations, 1);
  EXPECT_EQ(arbiter.reserved_for(0), std::optional<std::size_t>{1});

  // The cancelled commit must never fire: driving the simulator past the
  // original bt_wait leaves the victim in kDirect (its next frame would
  // re-run target selection from scratch).
  simulator.run_until(ms(500));
  EXPECT_EQ(a.manager.mode(), LinkManager::Mode::kDirect);

  // ...and the aged-out waiter claims the reservation deterministically.
  EXPECT_TRUE(arbiter.acquire(1, 0, simulator.now()));
  EXPECT_EQ(arbiter.holder(0), std::optional<std::size_t>{1});
}

// --- edge 2: simultaneous equal-priority requests -----------------------

TEST(ArenaLease, EqualPriorityTieBreaksToLowerUserId) {
  for (const bool high_id_first : {true, false}) {
    ReflectorArbiter arbiter{1, 3, {}};
    ASSERT_TRUE(arbiter.acquire(0, 0, ms(0)));

    // Two waiters register at the SAME instant: identical priority from
    // then on. Registration order must not matter.
    if (high_id_first) {
      EXPECT_FALSE(arbiter.acquire(2, 0, ms(10)));
      EXPECT_FALSE(arbiter.acquire(1, 0, ms(10)));
    } else {
      EXPECT_FALSE(arbiter.acquire(1, 0, ms(10)));
      EXPECT_FALSE(arbiter.acquire(2, 0, ms(10)));
    }

    arbiter.release(0, 0, ms(100));
    EXPECT_EQ(arbiter.reserved_for(0), std::optional<std::size_t>{1})
        << "registration order " << (high_id_first ? "2,1" : "1,2");

    // The reservation actually excludes the losing waiter...
    EXPECT_FALSE(arbiter.acquire(2, 0, ms(110)));
    // ...and admits the winner.
    EXPECT_TRUE(arbiter.acquire(1, 0, ms(110)));
    EXPECT_EQ(arbiter.holder(0), std::optional<std::size_t>{1});
  }
}

// --- edge 3: eviction while the victim sits in safe mode ----------------

TEST(ArenaLease, EvictionWhileVictimDegradedStaysConsistent) {
  ReflectorArbiter arbiter{1, 2, {}};
  sim::Simulator simulator;
  const auto prototype = make_prototype();

  // The victim's manager: direct link blocked AND the only reflector
  // quarantined -> candidate list empty -> kDegraded, the manager's safe
  // fallback mode (low-MCS direct, re-probing).
  UserRig b{simulator, prototype, arbiter, 1, 22};
  b.block_direct();
  b.manager.health().track(1);
  b.manager.health().quarantine(0, simulator.now(), "test");
  b.manager.on_frame();
  ASSERT_EQ(b.manager.mode(), LinkManager::Mode::kDegraded);
  ASSERT_FALSE(b.manager.leased_reflector().has_value());

  // Admission: both users on one AP, utilization pinned above capacity by
  // the victim's collapsed PHY rate. Dwell runs out -> degrade, then the
  // still-overloaded AP evicts the (already safe-mode) victim.
  AdmissionController admission{2, 1, {}};
  const AdmissionController::Sample healthy{0, 300.0, 2000.0, 0.0};
  const AdmissionController::Sample starving{0, 300.0, 50.0, 0.9};
  const std::array<AdmissionController::Sample, 2> window{healthy, starving};
  sim::TimePoint now = ms(0);
  auto step_windows = [&](int n) {
    for (int i = 0; i < n; ++i) {
      now = now + std::chrono::milliseconds{250};
      admission.on_window(window, now);
    }
  };
  step_windows(3);
  ASSERT_EQ(admission.state(1), AdmissionController::State::kDegraded);
  step_windows(3);
  ASSERT_EQ(admission.state(1), AdmissionController::State::kEvicted);
  EXPECT_FALSE(admission.transmitting(1));
  EXPECT_EQ(admission.mcs_cap(1), -1);
  EXPECT_EQ(admission.weight(1), 0.0);

  // The coordinator's eviction sweep revokes any lease the victim holds —
  // here it holds none (safe mode), so the revoke must be a clean no-op.
  arbiter.release(1, 0, now);
  b.manager.revoke_reflector(0);
  EXPECT_EQ(b.manager.mode(), LinkManager::Mode::kDegraded);
  EXPECT_EQ(b.manager.stats().lease_revocations, 0);
  EXPECT_FALSE(arbiter.holder(0).has_value());

  // Load drains (victim muted => below headroom), the backoff expires, and
  // the victim readmits -- through degraded first, never straight to full
  // weight.
  const std::array<AdmissionController::Sample, 2> calm{
      healthy, AdmissionController::Sample{0, 0.0, 2000.0, 0.0}};
  auto step_calm = [&](int n) {
    for (int i = 0; i < n; ++i) {
      now = now + std::chrono::milliseconds{250};
      admission.on_window(calm, now);
    }
  };
  step_calm(12);  // > dwell and > 2 s readmit backoff
  EXPECT_TRUE(admission.transmitting(1));
  EXPECT_EQ(admission.counters(1).evictions, 1);
  EXPECT_GE(admission.counters(1).readmissions, 1);

  // Back in the room, the ex-victim can lease the reflector again once the
  // quarantine backoff expires (the degraded re-probe doubles as the
  // handover attempt, and the arbiter has a free table).
  simulator.run_until(simulator.now() + std::chrono::milliseconds{250});
  b.manager.on_frame();
  EXPECT_TRUE(b.manager.leased_reflector().has_value());
}

// --- edge 4: wait_ttl expiring the tick the reservation lands -----------

// A waiter whose wait_ttl runs out in the very tick its reservation is
// granted (it stopped retrying — its blockage cleared) must not leave a
// dangling reservation that blocks everyone else for the full
// reserve_ttl.
TEST(ArenaLease, StaleReservationLapsesWhenReservedWaiterGaveUp) {
  ReflectorArbiter::Config cfg;
  cfg.lease_duration = std::chrono::milliseconds{100};
  cfg.wait_ttl = std::chrono::milliseconds{250};
  cfg.aging_per_second = 4.0;
  ReflectorArbiter arbiter{1, 3, cfg};

  ASSERT_TRUE(arbiter.acquire(0, 0, ms(0)));
  // User 1 asks once at 10 ms and never again (its blockage clears).
  EXPECT_FALSE(arbiter.acquire(1, 0, ms(10)));

  // At 260 ms user 1 is still inside wait_ttl by the strict-> comparison
  // (250 ms exactly), has out-aged the holder bonus (4.0/s * 250 ms = 1.0
  // > 0.25), and the lease term (100 ms) has long expired: the renew
  // revokes and reserves for user 1 — in the same tick its TTL lapses.
  EXPECT_FALSE(arbiter.renew(0, 0, ms(260)));
  ASSERT_EQ(arbiter.reserved_for(0), std::optional<std::size_t>{1});

  // One tick later the reserved waiter is stale. A third user's acquire
  // must be granted through the lapsed reservation, not bounced until
  // reserve_expiry.
  EXPECT_TRUE(arbiter.acquire(2, 0, ms(261)));
  EXPECT_EQ(arbiter.holder(0), std::optional<std::size_t>{2});
  EXPECT_FALSE(arbiter.reserved_for(0).has_value());
  EXPECT_EQ(arbiter.stats().stale_reservations, 1u);
}

// --- edge 5: device quarantine bounces acquires without aging -----------

TEST(ArenaLease, QuarantinedDeviceBouncesAcquiresWithoutWaitEntry) {
  ReflectorArbiter arbiter{1, 2, {}};
  ASSERT_TRUE(arbiter.acquire(0, 0, ms(0)));

  arbiter.set_device_quarantined(0, true);
  EXPECT_TRUE(arbiter.device_quarantined(0));

  // A non-holder bounces off the benched device...
  EXPECT_FALSE(arbiter.acquire(1, 0, ms(10)));
  EXPECT_EQ(arbiter.stats().quarantine_denials, 1u);
  EXPECT_EQ(arbiter.user_stats(1).quarantine_denials, 1u);
  // ...while the surviving holder may still refresh (enforcement is the
  // coordinator's failover strip, so a disabled failover is observable).
  EXPECT_TRUE(arbiter.renew(0, 0, ms(20)));

  // Failover strips the holder; the device stays un-leasable until the
  // re-probe succeeds and clears the flag.
  EXPECT_EQ(arbiter.strip_holder(0), std::optional<std::size_t>{0});
  EXPECT_FALSE(arbiter.holder(0).has_value());
  EXPECT_EQ(arbiter.user_stats(0).revocations, 1u);
  EXPECT_FALSE(arbiter.acquire(1, 0, ms(30)));

  arbiter.set_device_quarantined(0, false);
  EXPECT_TRUE(arbiter.acquire(1, 0, ms(40)));
  EXPECT_EQ(arbiter.holder(0), std::optional<std::size_t>{1});

  // The bounce at 10 ms must not have registered a wait entry: no aged
  // priority, so a release with no other live waiter reserves nothing.
  arbiter.release(1, 0, ms(50));
  EXPECT_FALSE(arbiter.reserved_for(0).has_value());
}

// --- edge 6: a displaced holder re-queues with its head start -----------

TEST(ArenaLease, FastTrackBackdatesTheDisplacedHoldersWait) {
  ReflectorArbiter::Config cfg;
  cfg.lease_duration = std::chrono::milliseconds{100};
  cfg.wait_ttl = std::chrono::milliseconds{1000};
  cfg.aging_per_second = 4.0;
  ReflectorArbiter arbiter{2, 3, cfg};

  // User 0 holds both reflectors; user 2 has been waiting on both since
  // 10 ms; user 1 (a failover-displaced holder, 150 ms credit) joins both
  // queues at 20 ms.
  ASSERT_TRUE(arbiter.acquire(0, 0, ms(0)));
  ASSERT_TRUE(arbiter.acquire(0, 1, ms(0)));
  EXPECT_FALSE(arbiter.acquire(2, 0, ms(10)));
  EXPECT_FALSE(arbiter.acquire(2, 1, ms(10)));
  arbiter.fast_track(1, std::chrono::milliseconds{150});
  EXPECT_FALSE(arbiter.acquire(1, 0, ms(20)));  // consumes the credit here
  EXPECT_FALSE(arbiter.acquire(1, 1, ms(30)));  // credit already spent
  EXPECT_EQ(arbiter.stats().fast_tracks, 1u);

  // Reflector 0 at 120 ms: priorities are 4.0/s * 250 ms = 1.0 (user 1,
  // backdated to -130 ms) vs 4.0/s * 110 ms = 0.44 (user 2) — the
  // displaced holder wins the revocation despite registering later.
  EXPECT_FALSE(arbiter.renew(0, 0, ms(120)));
  EXPECT_EQ(arbiter.reserved_for(0), std::optional<std::size_t>{1});

  // Reflector 1: the credit was one-shot, so user 1 ages from its real
  // registration (30 ms) and the longer-waiting user 2 wins this queue.
  EXPECT_FALSE(arbiter.renew(0, 1, ms(200)));
  EXPECT_EQ(arbiter.reserved_for(1), std::optional<std::size_t>{2});
}

}  // namespace
}  // namespace movr::arena
