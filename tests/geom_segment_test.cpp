#include <geom/segment.hpp>

#include <gtest/gtest.h>

namespace movr::geom {
namespace {

TEST(Segment, BasicProperties) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.length(), 4.0);
  EXPECT_EQ(s.midpoint(), Vec2(2.0, 0.0));
  EXPECT_EQ(s.at(0.25), Vec2(1.0, 0.0));
}

TEST(Segment, CrossingIntersection) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
}

TEST(Segment, NonCrossingReturnsNullopt) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Segment, ParallelReturnsNullopt) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{1.0, 0.0}, {3.0, 2.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Segment, TouchingAtEndpointCounts) {
  const Segment a{{0.0, 0.0}, {1.0, 1.0}};
  const Segment b{{1.0, 1.0}, {2.0, 0.0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-9);
}

TEST(Segment, NearMissOutsideRange) {
  // The infinite lines cross at (3, 0), beyond segment a's extent.
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{3.0, -1.0}, {3.0, 1.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(Segment, DistanceToInteriorAndEndpoints) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(distance_to(s, {2.0, 3.0}), 3.0);   // above interior
  EXPECT_DOUBLE_EQ(distance_to(s, {-3.0, 4.0}), 5.0);  // beyond endpoint a
  EXPECT_DOUBLE_EQ(distance_to(s, {7.0, 4.0}), 5.0);   // beyond endpoint b
  EXPECT_DOUBLE_EQ(distance_to(s, {1.0, 0.0}), 0.0);   // on the segment
}

TEST(Segment, DistanceToDegenerateSegment) {
  const Segment point{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(distance_to(point, {4.0, 5.0}), 5.0);
}

TEST(Segment, MirrorAcrossHorizontalLine) {
  const Segment wall{{0.0, 2.0}, {10.0, 2.0}};
  const Vec2 image = mirror_across(wall, {3.0, 0.0});
  EXPECT_NEAR(image.x, 3.0, 1e-12);
  EXPECT_NEAR(image.y, 4.0, 1e-12);
}

TEST(Segment, MirrorIsInvolution) {
  const Segment wall{{0.0, 0.0}, {3.0, 5.0}};
  const Vec2 p{2.0, -1.0};
  const Vec2 twice = mirror_across(wall, mirror_across(wall, p));
  EXPECT_NEAR(twice.x, p.x, 1e-12);
  EXPECT_NEAR(twice.y, p.y, 1e-12);
}

TEST(Segment, MirrorFixesPointsOnLine) {
  const Segment wall{{0.0, 0.0}, {4.0, 4.0}};
  const Vec2 on_line{2.0, 2.0};
  const Vec2 image = mirror_across(wall, on_line);
  EXPECT_NEAR(image.x, 2.0, 1e-12);
  EXPECT_NEAR(image.y, 2.0, 1e-12);
}

TEST(Segment, Contains) {
  const Segment s{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_TRUE(contains(s, {1.0, 0.0}));
  EXPECT_TRUE(contains(s, {0.0, 0.0}));
  EXPECT_FALSE(contains(s, {1.0, 0.1}));
  EXPECT_TRUE(contains(s, {1.0, 0.05}, 0.1));
}

}  // namespace
}  // namespace movr::geom
