#include <core/channel_oracle.hpp>

#include <gtest/gtest.h>

#include <random>

#include <core/scene.hpp>
#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::Vec2;
using geom::deg_to_rad;

void expect_same_paths(const std::vector<channel::Path>& a,
                       const std::vector<channel::Path>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].loss.value(), b[p].loss.value());
    EXPECT_EQ(a[p].length_m, b[p].length_m);
    EXPECT_EQ(a[p].departure_azimuth, b[p].departure_azimuth);
    EXPECT_EQ(a[p].arrival_azimuth, b[p].arrival_azimuth);
    EXPECT_EQ(a[p].obstruction.value(), b[p].obstruction.value());
  }
}

TEST(ChannelOracle, CountsQueriesHitsAndMisses) {
  const channel::Room room{5.0, 5.0};
  const ChannelOracle oracle{room};
  for (int i = 0; i < 5; ++i) {
    oracle.paths_between({1.0, 1.0}, {4.0, 4.0});
  }
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.8);
  oracle.reset_stats();
  EXPECT_EQ(oracle.stats().queries, 0u);
}

TEST(ChannelOracle, CachedAnswersBitMatchDirectSolverCalls) {
  // The acceptance bar: across a scripted session with moving obstacles,
  // every memoised answer must match what a direct PathSolver call (no
  // cache anywhere) produces for the same room state.
  channel::Room room = channel::Room::paper_office();
  const ChannelOracle oracle{room};
  std::mt19937_64 rng{23};
  for (int step = 0; step < 40; ++step) {
    switch (step % 4) {
      case 0:
        room.add_obstacle(channel::make_person(
            room.random_interior_point(rng, 0.6)));
        break;
      case 1:  // "move" the person: remove + re-add elsewhere
        room.remove_obstacles("person");
        room.add_obstacle(channel::make_person(
            room.random_interior_point(rng, 0.6)));
        break;
      case 2:
        break;  // no mutation: this step must produce cache hits below
      default:
        room.remove_obstacles("person");
        break;
    }
    const Vec2 a = room.random_interior_point(rng, 0.4);
    const Vec2 b = room.random_interior_point(rng, 0.4);
    // Query twice (second one a guaranteed hit), then compare to a solver
    // built fresh on the current room — the cache-free reference.
    const auto first = oracle.paths_between(a, b);
    const auto second = oracle.paths_between(a, b);
    const channel::PathSolver reference{room};
    expect_same_paths(first, reference.solve(a, b));
    expect_same_paths(second, first);
  }
  const auto stats = oracle.stats();
  EXPECT_EQ(stats.queries, 80u);
  EXPECT_GE(stats.hits, 40u);  // every repeat query hit
}

TEST(ChannelOracle, RoomMutationInvalidatesExactlyLikeNoCache) {
  channel::Room room{5.0, 5.0};
  const ChannelOracle oracle{room};
  const Vec2 a{1.0, 2.5};
  const Vec2 b{4.0, 2.5};

  // Paths come back sorted by loss, so locate the LOS entry by bounce count
  // (after the blocker lands on it, it is no longer the cheapest path).
  const auto los_of = [](const std::vector<channel::Path>& paths) {
    for (const auto& path : paths) {
      if (path.bounces == 0) return path;
    }
    ADD_FAILURE() << "no line-of-sight path";
    return paths.front();
  };

  const auto clear = oracle.paths_between(a, b);
  EXPECT_EQ(los_of(clear).obstruction.value(), 0.0);

  room.add_obstacle({geom::Circle{{2.5, 2.5}, 0.25}, channel::kBody, "p"});
  const auto blocked = oracle.paths_between(a, b);
  EXPECT_GT(los_of(blocked).obstruction.value(), 10.0);
  expect_same_paths(blocked, channel::PathSolver{room}.solve(a, b));

  room.remove_obstacles("p");
  const auto clear_again = oracle.paths_between(a, b);
  expect_same_paths(clear_again, clear);

  const auto stats = oracle.stats();
  EXPECT_EQ(stats.misses, 3u);  // every mutation forced a re-solve
  EXPECT_EQ(stats.invalidations, 2u);
}

TEST(ChannelOracle, WallRematerialInvalidates) {
  channel::Room room{5.0, 5.0};
  const ChannelOracle oracle{room};
  const auto drywall = oracle.paths_between({1.0, 1.0}, {4.0, 1.0});
  room.set_wall_material("south", channel::kMetal);
  const auto metal = oracle.paths_between({1.0, 1.0}, {4.0, 1.0});
  ASSERT_EQ(drywall.size(), metal.size());
  expect_same_paths(metal, channel::PathSolver{room}.solve({1.0, 1.0},
                                                           {4.0, 1.0}));
  EXPECT_EQ(oracle.stats().invalidations, 1u);
}

TEST(ChannelOracle, QuantisationSeparatesDistinctPoints) {
  const channel::Room room{5.0, 5.0};
  const ChannelOracle oracle{room};
  oracle.paths_between({1.0, 1.0}, {4.0, 4.0});
  oracle.paths_between({1.001, 1.0}, {4.0, 4.0});  // 1 mm away: its own key
  EXPECT_EQ(oracle.stats().misses, 2u);
  EXPECT_EQ(oracle.stats().hits, 0u);
}

TEST(ChannelOracle, SizeCapEvictsButStaysCorrect) {
  const channel::Room room{5.0, 5.0};
  ChannelOracle::Config config;
  config.max_entries = 8;
  const ChannelOracle oracle{room, config};
  std::mt19937_64 rng{5};
  for (int i = 0; i < 64; ++i) {
    const Vec2 a = room.random_interior_point(rng, 0.4);
    const Vec2 b = room.random_interior_point(rng, 0.4);
    expect_same_paths(oracle.paths_between(a, b),
                      channel::PathSolver{room}.solve(a, b));
  }
  EXPECT_GT(oracle.stats().invalidations, 0u);  // the cap fired
}

TEST(ChannelOracle, SceneDifferentialAgainstFreshScenes) {
  // Scene-level differential: a long-lived (caching) scene must produce
  // the same SNRs as a freshly cloned scene (empty cache) at every step of
  // a scripted session with a moving blocker.
  Scene scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}};
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(200);
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());

  for (int step = 0; step < 10; ++step) {
    scene.room().remove_obstacles("person");
    const double x = 1.0 + 0.3 * step;
    scene.room().add_obstacle(channel::make_person({x, 1.5}));

    const Scene fresh = scene.clone();  // identical state, empty cache
    EXPECT_EQ(scene.direct_snr().value(), fresh.direct_snr().value());
    EXPECT_EQ(scene.via_snr(reflector).snr.value(),
              fresh.via_snr(fresh.reflector(0)).snr.value());
    // Ask twice: the second answer is served from cache and must not move.
    EXPECT_EQ(scene.direct_snr().value(), scene.direct_snr().value());
  }
  EXPECT_GT(scene.oracle_stats().hits, 0u);
  // One invalidation per step: the remove+add revision bumps are observed
  // together at the step's first query.
  EXPECT_EQ(scene.oracle_stats().invalidations, 10u);
}

}  // namespace
}  // namespace movr::core
