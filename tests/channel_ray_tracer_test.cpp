#include <channel/ray_tracer.hpp>

#include <cmath>

#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <rf/propagation.hpp>

namespace movr::channel {
namespace {

using movr::geom::Vec2;

RayTracer::Config cfg(int bounces) {
  RayTracer::Config c;
  c.max_bounces = bounces;
  c.dynamic_range = rf::Decibels{200.0};  // keep everything for inspection
  return c;
}

TEST(RayTracer, LosGeometry) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(0)};
  const Path los = tracer.line_of_sight({1.0, 1.0}, {4.0, 1.0});
  EXPECT_EQ(los.bounces, 0);
  EXPECT_DOUBLE_EQ(los.length_m, 3.0);
  EXPECT_NEAR(los.departure_azimuth, 0.0, 1e-12);
  EXPECT_NEAR(std::abs(los.arrival_azimuth), movr::geom::kPi, 1e-12);
  EXPECT_DOUBLE_EQ(los.obstruction.value(), 0.0);
  EXPECT_TRUE(los.is_los());
  EXPECT_FALSE(los.is_blocked());
}

TEST(RayTracer, LosLossIsFspl) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(0)};
  const Path los = tracer.line_of_sight({1.0, 2.0}, {4.0, 2.0});
  EXPECT_NEAR(los.loss.value(),
              // (plus ~1e-4 dB of atmospheric absorption at 24 GHz)
              rf::free_space_path_loss(3.0, 24.0e9).value(), 0.01);
}

TEST(RayTracer, BlockedLosCarriesObstruction) {
  Room room{5.0, 5.0};
  room.add_obstacle(make_person({2.5, 1.0}));
  const RayTracer tracer{room, cfg(0)};
  const Path los = tracer.line_of_sight({1.0, 1.0}, {4.0, 1.0});
  EXPECT_TRUE(los.is_blocked());
  EXPECT_NEAR(los.obstruction.value(), kBody.insertion_loss.value(), 1e-9);
}

TEST(RayTracer, FirstOrderReflectionObeysSpecularLaw) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(1)};
  const auto paths = tracer.trace({1.0, 1.0}, {4.0, 1.0});
  // Find the bounce off the south wall (y = 0).
  const Path* south = nullptr;
  for (const Path& p : paths) {
    if (p.bounces == 1 && p.vertices.size() == 3 &&
        std::abs(p.vertices[1].y) < 1e-9) {
      south = &p;
    }
  }
  ASSERT_NE(south, nullptr);
  // Symmetric geometry: bounce point at x = 2.5.
  EXPECT_NEAR(south->vertices[1].x, 2.5, 1e-9);
  // Angle of incidence equals angle of reflection (measured from wall).
  const Vec2 in = south->vertices[1] - south->vertices[0];
  const Vec2 out = south->vertices[2] - south->vertices[1];
  EXPECT_NEAR(std::abs(in.heading()), std::abs(out.heading()), 1e-9);
  // Unfolded length: image at (1, -1) to (4, 1): sqrt(9 + 4).
  EXPECT_NEAR(south->length_m, std::sqrt(13.0), 1e-9);
}

TEST(RayTracer, ReflectionLossesCharged) {
  const Room room{5.0, 5.0};  // drywall: 11 dB per bounce
  const RayTracer tracer{room, cfg(2)};
  const auto paths = tracer.trace({1.0, 2.0}, {4.0, 2.5});
  for (const Path& p : paths) {
    const double fspl =
        rf::free_space_path_loss(p.length_m, 24.0e9).value();
    const double extra = p.loss.value() - fspl - p.obstruction.value();
    EXPECT_NEAR(extra, 11.0 * p.bounces, 0.01) << "bounces " << p.bounces;
  }
}

TEST(RayTracer, PathCountsForRectangle) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(2)};
  const auto paths = tracer.trace({1.3, 2.1}, {3.9, 3.2});
  int los = 0;
  int first = 0;
  int second = 0;
  for (const Path& p : paths) {
    los += p.bounces == 0;
    first += p.bounces == 1;
    second += p.bounces == 2;
  }
  EXPECT_EQ(los, 1);
  EXPECT_EQ(first, 4);  // one per wall for interior endpoints
  EXPECT_GE(second, 4);  // wall pairs with valid unfoldings
}

TEST(RayTracer, PathsSortedStrongestFirst) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(2)};
  const auto paths = tracer.trace({1.0, 1.0}, {4.0, 3.0});
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].loss.value(), paths[i].loss.value());
  }
  EXPECT_TRUE(paths.front().is_los());
}

TEST(RayTracer, DynamicRangeTrimsWeakPaths) {
  const Room room{5.0, 5.0};
  RayTracer::Config tight = cfg(2);
  tight.dynamic_range = rf::Decibels{10.0};
  const RayTracer tracer{room, tight};
  const auto paths = tracer.trace({1.0, 1.0}, {4.0, 3.0});
  const double best = paths.front().loss.value();
  for (const Path& p : paths) {
    EXPECT_LE(p.loss.value(), best + 10.0 + 1e-9);
  }
}

TEST(RayTracer, ObstacleShadowsReflectedLeg) {
  Room room{5.0, 5.0};
  // Blocker between the south-wall bounce point (2.5, 0) and the receiver.
  room.add_obstacle(make_person({3.25, 0.5}));
  const RayTracer tracer{room, cfg(1)};
  const auto paths = tracer.trace({1.0, 1.0}, {4.0, 1.0});
  const Path* south = nullptr;
  for (const Path& p : paths) {
    if (p.bounces == 1 && std::abs(p.vertices[1].y) < 1e-9) {
      south = &p;
    }
  }
  ASSERT_NE(south, nullptr);
  EXPECT_GT(south->obstruction.value(), 20.0);
}

TEST(RayTracer, ArrivalAzimuthPointsBackAlongRay) {
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(1)};
  const auto paths = tracer.trace({1.0, 1.0}, {4.0, 1.0});
  for (const Path& p : paths) {
    const Vec2 last_leg = p.vertices[p.vertices.size() - 2] - p.vertices.back();
    EXPECT_NEAR(movr::geom::angular_distance(p.arrival_azimuth,
                                             last_leg.heading()),
                0.0, 1e-9);
  }
}

TEST(RayTracer, NlosBestPathRoughly16DbBelowLos) {
  // The paper's headline NLOS number: best wall reflection lands ~16 dB
  // below LOS (FSPL growth + reflection loss).
  const Room room{5.0, 5.0};
  const RayTracer tracer{room, cfg(2)};
  const auto paths = tracer.trace({0.5, 2.5}, {4.0, 2.5});
  const double los_loss = paths.front().loss.value();
  double best_nlos = 1e9;
  for (const Path& p : paths) {
    if (p.bounces > 0) {
      best_nlos = std::min(best_nlos, p.loss.value());
    }
  }
  EXPECT_GT(best_nlos - los_loss, 10.0);
  EXPECT_LT(best_nlos - los_loss, 22.0);
}

}  // namespace
}  // namespace movr::channel
