#include <sim/event_queue.hpp>

#include <vector>

#include <gtest/gtest.h>

namespace movr::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.run_next();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{5}, [&] { order.push_back(1); });
  q.schedule(TimePoint{5}, [&] { order.push_back(2); });
  q.schedule(TimePoint{5}, [&] { order.push_back(3); });
  while (!q.empty()) {
    q.run_next();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimePoint{42}, [] {});
  EXPECT_EQ(q.next_time(), TimePoint{42});
  EXPECT_EQ(q.run_next(), TimePoint{42});
}

TEST(EventQueue, HandlerMayScheduleMore) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{1}, [&] {
    order.push_back(1);
    q.schedule(TimePoint{2}, [&] { order.push_back(2); });
  });
  while (!q.empty()) {
    q.run_next();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(TimePoint{1}, [&] { fired = true; });
  q.schedule(TimePoint{2}, [] {});
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  while (!q.empty()) {
    q.run_next();
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(TimePoint{1}, [] {});
  q.cancel(9999);
  q.cancel(0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const auto id = q.schedule(TimePoint{1}, [] {});
  q.schedule(TimePoint{2}, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EmptyAfterCancellingEverything) {
  EventQueue q;
  const auto a = q.schedule(TimePoint{1}, [] {});
  const auto b = q.schedule(TimePoint{2}, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunNextOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto id = q.schedule(TimePoint{1}, [] {});
  q.schedule(TimePoint{7}, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), TimePoint{7});
}

}  // namespace
}  // namespace movr::sim
