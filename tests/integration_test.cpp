// End-to-end integration: the full MoVR lifecycle as a deployment would run
// it — install, calibrate over the real control channel, then play — plus
// cross-module consistency checks that individual unit suites cannot see.
#include <gtest/gtest.h>

#include <baseline/strategies.hpp>
#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

namespace movr {
namespace {

using core::ApRadio;
using core::HeadsetRadio;
using core::MovrReflector;
using core::Scene;
using geom::Vec2;
using geom::deg_to_rad;

TEST(Integration, FullLifecycle) {
  // 1. Install: AP in a corner, reflector on the far wall, player mid-room.
  sim::RngRegistry rngs{2024};
  Scene scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{2.8, 1.8}, 0.0}};
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));

  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, rngs.stream("bt")};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });

  // 2. Calibrate phase 1: incidence angle via backscatter.
  core::IncidenceResult incidence;
  core::IncidenceSearch incidence_search{
      simulator, control, scene, reflector, core::make_search_config(1.0),
      rngs.stream("incidence")};
  incidence_search.start([&](const core::IncidenceResult& r) { incidence = r; });
  simulator.run();
  ASSERT_TRUE(incidence.completed);
  EXPECT_LE(geom::rad_to_deg(geom::angular_distance(
                incidence.reflector_angle,
                scene.true_reflector_angle_to_ap(reflector))),
            2.0);

  // 3. Calibrate phase 2: reflection angle via headset reports.
  scene.headset().node().face_toward(reflector.position());
  core::ReflectionResult reflection;
  core::ReflectionSearch reflection_search{
      simulator, control, scene, reflector, core::make_search_config(1.0),
      rngs.stream("reflection")};
  reflection_search.start(
      [&](const core::ReflectionResult& r) { reflection = r; });
  simulator.run();
  ASSERT_TRUE(reflection.completed);

  // 4. Gain control on the calibrated beams.
  auto gain_rng = rngs.stream("gain");
  const auto gain = core::GainController::run(
      reflector.front_end(), scene.reflector_input(reflector), gain_rng);
  EXPECT_GT(gain.final_gain.value(), 30.0);
  EXPECT_TRUE(scene.via_snr(reflector).usable);

  // 5. Play: hands go up every second; the session must stay essentially
  // glitch-free because every blockage is bridged by the reflector.
  vr::MovrStrategy strategy{simulator, scene, rngs.stream("manager")};
  const auto script = vr::periodic_hand_raises(
      sim::from_seconds(0.5), sim::from_seconds(0.4), sim::from_seconds(1.0),
      sim::from_seconds(4.0));
  vr::Session::Config config;
  config.duration = sim::from_seconds(4.0);
  vr::Session session{simulator, scene, strategy, nullptr, &script, config};
  const vr::QoeReport report = session.run();

  EXPECT_EQ(report.frames, 360u);
  EXPECT_LT(report.glitch_fraction(), 0.1);
  EXPECT_GT(strategy.manager().stats().handovers_to_reflector, 0);
}

TEST(Integration, CalibrationTimesMatchPaperScale) {
  // Section 6: full beam alignment is the slowest step (about a second);
  // steering itself is electronic. Verify the simulated costs land on the
  // scales the paper reasons about.
  sim::RngRegistry rngs{77};
  Scene scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}};
  auto& reflector = scene.add_reflector({3.6, 4.8}, deg_to_rad(265.0));
  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, rngs.stream("bt")};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });

  core::IncidenceResult incidence;
  core::IncidenceSearch search{simulator, control, scene, reflector,
                               core::make_search_config(1.0),
                               rngs.stream("meas")};
  search.start([&](const core::IncidenceResult& r) { incidence = r; });
  simulator.run();
  const double search_ms = sim::to_milliseconds(incidence.duration);
  EXPECT_GT(search_ms, 200.0);  // way beyond a frame: must not run mid-game

  auto gain_rng = rngs.stream("gain");
  scene.ap().node().steer_toward(reflector.position());
  const auto gain = core::GainController::run(
      reflector.front_end(), scene.reflector_input(reflector), gain_rng);
  const double gain_ms = sim::to_milliseconds(gain.duration);
  EXPECT_LT(gain_ms, 300.0);

  // Pose-aided retargeting fits within a frame or two — the Section 6
  // argument for why tracking beats re-searching.
  auto tracker_rng = rngs.stream("tracker");
  const auto retarget =
      core::BeamTracker::retarget(scene, reflector, tracker_rng);
  EXPECT_LE(sim::to_milliseconds(retarget.duration), 22.3);
  EXPECT_LT(retarget.duration, incidence.duration / 10);
}

TEST(Integration, ReflectorBridgesAllPaperBlockageKinds) {
  // Hand, head, and a passing person (Fig. 2 / Fig. 3 scenarios): in every
  // case the direct link collapses below the VR threshold and the reflector
  // path restores it.
  sim::RngRegistry rngs{31};
  for (const auto kind :
       {vr::BlockageEvent::Kind::kHand, vr::BlockageEvent::Kind::kHead,
        vr::BlockageEvent::Kind::kPersonCrossing}) {
    Scene scene{channel::Room{5.0, 5.0},
                ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                HeadsetRadio{{3.0, 2.0}, 0.0}};
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    reflector.front_end().steer_rx(
        scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        scene.true_reflector_angle_to_headset(reflector));
    scene.ap().node().steer_toward(reflector.position());
    auto gain_rng = rngs.stream("gain");
    core::GainController::run(reflector.front_end(),
                              scene.reflector_input(reflector), gain_rng);

    // Apply the blockage.
    const Vec2 headset = scene.headset().node().position();
    const Vec2 ap = scene.ap().node().position();
    switch (kind) {
      case vr::BlockageEvent::Kind::kHand:
        scene.room().add_obstacle(channel::make_hand(headset, ap - headset));
        break;
      case vr::BlockageEvent::Kind::kHead:
        scene.room().add_obstacle(channel::make_head(headset, ap - headset));
        break;
      case vr::BlockageEvent::Kind::kPersonCrossing:
        scene.room().add_obstacle(
            channel::make_person((headset + ap) * 0.5));
        break;
    }

    // Direct path: dead for VR purposes.
    core::Scene& s = scene;
    s.ap().node().steer_toward(headset);
    s.headset().node().face_toward(ap);
    EXPECT_LT(s.direct_snr().value(), 17.5);

    // Via the reflector: alive.
    s.ap().node().steer_toward(reflector.position());
    s.headset().node().face_toward(reflector.position());
    EXPECT_GT(s.via_snr(reflector).snr.value(), 17.5);
  }
}

TEST(Integration, DeterministicGivenSeeds) {
  const auto run = [](std::uint64_t seed) {
    sim::RngRegistry rngs{seed};
    Scene scene{channel::Room{5.0, 5.0},
                ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                HeadsetRadio{{3.0, 2.0}, 0.0}};
    auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    reflector.front_end().steer_rx(
        scene.true_reflector_angle_to_ap(reflector));
    reflector.front_end().steer_tx(
        scene.true_reflector_angle_to_headset(reflector));
    scene.ap().node().steer_toward(reflector.position());
    auto gain_rng = rngs.stream("gain");
    core::GainController::run(reflector.front_end(),
                              scene.reflector_input(reflector), gain_rng);
    sim::Simulator simulator;
    vr::MovrStrategy strategy{simulator, scene, rngs.stream("manager")};
    const auto script = vr::periodic_hand_raises(
        sim::from_seconds(0.3), sim::from_seconds(0.3), sim::from_seconds(1.0),
        sim::from_seconds(2.0));
    vr::Session::Config config;
    config.duration = sim::from_seconds(2.0);
    vr::Session session{simulator, scene, strategy, nullptr, &script, config};
    return session.run();
  };
  const auto a = run(5);
  const auto b = run(5);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.glitched_frames, b.glitched_frames);
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
  const auto c = run(6);
  // A different seed wiggles the noise but not the story.
  EXPECT_EQ(a.frames, c.frames);
}

}  // namespace
}  // namespace movr
