#include <phy/mcs.hpp>

#include <gtest/gtest.h>

namespace movr::phy {
namespace {

using rf::Decibels;

TEST(Mcs, TableShape) {
  const auto table = mcs_table();
  ASSERT_EQ(table.size(), 25u);
  EXPECT_EQ(table.front().index, 0);
  EXPECT_EQ(table.back().index, 24);
  EXPECT_EQ(table.front().phy, PhyKind::kControl);
  EXPECT_EQ(table.back().phy, PhyKind::kOfdm);
}

TEST(Mcs, TopRateIsStandardMaximum) {
  EXPECT_NEAR(mcs_table().back().rate_mbps, 6756.75, 1e-6);
}

TEST(Mcs, MonotoneWithinEachPhy) {
  const auto table = mcs_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    if (table[i].phy == table[i - 1].phy) {
      EXPECT_GT(table[i].rate_mbps, table[i - 1].rate_mbps) << "MCS " << i;
      EXPECT_GT(table[i].min_snr.value(), table[i - 1].min_snr.value())
          << "MCS " << i;
    }
  }
}

TEST(Mcs, NoLinkBelowControlThreshold) {
  EXPECT_EQ(best_mcs(Decibels{-20.0}), nullptr);
  EXPECT_EQ(rate_mbps(Decibels{-20.0}), 0.0);
}

TEST(Mcs, ControlPhyOnlyAtVeryLowSnr) {
  const McsEntry* mcs = best_mcs(Decibels{-5.0});
  ASSERT_NE(mcs, nullptr);
  EXPECT_EQ(mcs->index, 0);
  EXPECT_NEAR(rate_mbps(Decibels{-5.0}), 27.5, 1e-9);
}

TEST(Mcs, FullRateAtPaperLosSnr) {
  // ~25 dB LOS -> "almost 7 Gb/s" (paper Section 3).
  EXPECT_NEAR(rate_mbps(Decibels{25.0}), 6756.75, 1e-6);
}

TEST(Mcs, TwentyDbGivesMaxRate) {
  // "the 20 dB needed for the maximum data rate" (paper Section 5.2).
  EXPECT_NEAR(rate_mbps(Decibels{20.5}), 6756.75, 1e-6);
  EXPECT_LT(rate_mbps(Decibels{19.9}), 6756.75);
}

TEST(Mcs, HandBlockageDropsBelowVrRate) {
  // 25 dB LOS minus ~15 dB hand loss: ~10 dB -> around 2 Gb/s, far below
  // the Vive's ~5.6 Gb/s requirement (paper Fig. 3).
  const double rate = rate_mbps(Decibels{10.0});
  EXPECT_GT(rate, 1000.0);
  EXPECT_LT(rate, 5600.0);
}

TEST(Mcs, McsForRateFindsCheapestSufficient) {
  const McsEntry* mcs = mcs_for_rate(5600.0);
  ASSERT_NE(mcs, nullptr);
  EXPECT_GE(mcs->rate_mbps, 5600.0);
  // Everything faster must not have a lower threshold.
  for (const McsEntry& e : mcs_table()) {
    if (e.rate_mbps >= 5600.0) {
      EXPECT_GE(e.min_snr.value(), mcs->min_snr.value());
    }
  }
}

TEST(Mcs, McsForImpossibleRate) {
  EXPECT_EQ(mcs_for_rate(10'000.0), nullptr);
}

// Property: rate_mbps is a non-decreasing step function of SNR.
class RateMonotone : public ::testing::TestWithParam<double> {};

TEST_P(RateMonotone, NonDecreasing) {
  const double snr = GetParam();
  EXPECT_LE(rate_mbps(Decibels{snr}), rate_mbps(Decibels{snr + 0.5}));
  EXPECT_LE(rate_mbps(Decibels{snr}), rate_mbps(Decibels{snr + 5.0}));
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, RateMonotone,
                         ::testing::Range(-15.0, 30.0, 1.0));

TEST(Mcs, PerWaterfall) {
  const McsEntry& mcs = mcs_table()[20];
  // 1% at threshold.
  EXPECT_NEAR(packet_error_rate(mcs, mcs.min_snr), 0.01, 1e-9);
  // A decade per dB above.
  EXPECT_NEAR(packet_error_rate(mcs, mcs.min_snr + rf::Decibels{1.0}), 0.001,
              1e-9);
  // Saturates at 1 far below.
  EXPECT_DOUBLE_EQ(
      packet_error_rate(mcs, mcs.min_snr - rf::Decibels{10.0}), 1.0);
}

TEST(Mcs, PerMonotoneInSnr) {
  const McsEntry& mcs = mcs_table()[15];
  double prev = 1.1;
  for (double snr = -5.0; snr < 25.0; snr += 0.5) {
    const double per = packet_error_rate(mcs, Decibels{snr});
    EXPECT_LE(per, prev);
    prev = per;
  }
}

}  // namespace
}  // namespace movr::phy
