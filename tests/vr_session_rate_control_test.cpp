// Sessions under closed-loop rate control (noisy estimates + PER) versus
// the oracle mapping: the realistic mode must cost a little, not change the
// story.
#include <gtest/gtest.h>

#include <baseline/strategies.hpp>
#include <core/battery.hpp>
#include <geom/angle.hpp>
#include <vr/session.hpp>

namespace movr::vr {
namespace {

using geom::deg_to_rad;

core::Scene make_scene() {
  return core::Scene{channel::Room{5.0, 5.0},
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

TEST(SessionRateControl, CleanChannelStaysClean) {
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(3.0);
  config.realistic_rate_control = true;
  Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const QoeReport report = session.run();
  // Adapter association + occasional conservative frames: a few percent at
  // most, nowhere near a broken link.
  EXPECT_LT(report.glitch_fraction(), 0.05);
}

TEST(SessionRateControl, RealismCostsAtMostALittle) {
  const auto run = [](bool realistic) {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session::Config config;
    config.duration = sim::from_seconds(3.0);
    config.realistic_rate_control = realistic;
    Session session{simulator, scene, strategy, nullptr, nullptr, config};
    return session.run();
  };
  const QoeReport oracle = run(false);
  const QoeReport realistic = run(true);
  EXPECT_EQ(oracle.glitched_frames, 0u);
  EXPECT_GE(realistic.glitched_frames, oracle.glitched_frames);
  EXPECT_LE(realistic.mean_rate_mbps, oracle.mean_rate_mbps + 1e-9);
}

TEST(SessionRateControl, BlockageStillDominates) {
  const auto script =
      periodic_hand_raises(sim::from_seconds(0.5), sim::from_seconds(0.5),
                           sim::from_seconds(1.0), sim::from_seconds(3.0));
  core::Scene scene = make_scene();
  sim::Simulator simulator;
  baseline::DirectTrackingStrategy strategy{scene};
  Session::Config config;
  config.duration = sim::from_seconds(3.0);
  config.realistic_rate_control = true;
  Session session{simulator, scene, strategy, nullptr, &script, config};
  const QoeReport report = session.run();
  EXPECT_GT(report.glitch_fraction(), 0.3);
}

TEST(SessionRateControl, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    core::Scene scene = make_scene();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    Session::Config config;
    config.duration = sim::from_seconds(2.0);
    config.realistic_rate_control = true;
    config.rate_control_seed = seed;
    Session session{simulator, scene, strategy, nullptr, nullptr, config};
    return session.run().glitched_frames;
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(Battery, PaperArithmetic) {
  const core::BatteryModel battery{};
  EXPECT_GE(battery.runtime_hours(), 4.0);
  EXPECT_LE(battery.runtime_hours(), 5.0);
  EXPECT_GT(battery.worst_case_hours(), 2.5);
  EXPECT_LT(battery.worst_case_hours(), battery.runtime_hours());
}

}  // namespace
}  // namespace movr::vr
