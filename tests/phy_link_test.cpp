#include <phy/link.hpp>

#include <gtest/gtest.h>

#include <channel/ray_tracer.hpp>
#include <channel/room.hpp>
#include <geom/angle.hpp>
#include <phy/beam_sweep.hpp>
#include <rf/codebook.hpp>
#include <rf/propagation.hpp>

namespace movr::phy {
namespace {

using movr::geom::Vec2;

TEST(Link, NoiseFloorValue) {
  const LinkConfig config;
  EXPECT_NEAR(link_noise_floor(config).value(), -73.65, 0.05);
}

TEST(Link, SingleLosPathMatchesHandBudget) {
  // One path, both beams aligned: Pr = Pt + Gt + Gr - FSPL - impl.
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{1.0, 2.0};
  const Vec2 b{4.0, 2.0};
  RadioNode tx{a, 0.0};
  RadioNode rx{b, movr::geom::kPi};
  tx.steer_toward(b);
  rx.steer_toward(a);
  const auto los = tracer.line_of_sight(a, b);
  const std::vector<channel::Path> paths{los};
  const LinkConfig config;
  const double expected = 0.0 + 15.5 + 15.5 -
                          rf::free_space_path_loss(3.0, 24.0e9).value() -
                          LinkConfig{}.implementation_loss.value();
  EXPECT_NEAR(received_power(tx, rx, paths, config).value(), expected, 0.05);
}

TEST(Link, SnrIsPowerOverFloor) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{1.0, 2.0};
  const Vec2 b{4.0, 2.0};
  RadioNode tx{a, 0.0};
  RadioNode rx{b, movr::geom::kPi};
  tx.steer_toward(b);
  rx.steer_toward(a);
  const auto paths = tracer.trace(a, b);
  const LinkConfig config;
  EXPECT_NEAR(link_snr(tx, rx, paths, config).value(),
              received_power(tx, rx, paths, config).value() -
                  link_noise_floor(config).value(),
              1e-9);
}

TEST(Link, SnrFallsWithDistance) {
  const channel::Room room{20.0, 5.0};
  const channel::RayTracer tracer{room};
  const LinkConfig config;
  double prev = 1e9;
  for (double d = 2.0; d <= 18.0; d += 4.0) {
    const Vec2 a{0.5, 2.5};
    const Vec2 b{0.5 + d, 2.5};
    RadioNode tx{a, 0.0};
    RadioNode rx{b, movr::geom::kPi};
    tx.steer_toward(b);
    rx.steer_toward(a);
    const auto los = tracer.line_of_sight(a, b);
    const std::vector<channel::Path> paths{los};
    const double snr = link_snr(tx, rx, paths, config).value();
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(Link, MisalignedBeamLosesTensOfDb) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{1.0, 2.0};
  const Vec2 b{4.0, 2.0};
  RadioNode tx{a, 0.0};
  RadioNode rx{b, movr::geom::kPi};
  tx.steer_toward(b);
  rx.steer_toward(a);
  const auto los = tracer.line_of_sight(a, b);
  const std::vector<channel::Path> paths{los};
  const LinkConfig config;
  const double aligned = link_snr(tx, rx, paths, config).value();
  tx.steer_global((b - a).heading() + movr::geom::deg_to_rad(40.0));
  const double misaligned = link_snr(tx, rx, paths, config).value();
  EXPECT_GT(aligned - misaligned, 10.0);
}

TEST(Link, LosCalibrationInPaperRoom) {
  // DESIGN.md Section 5: LOS SNR around 25 dB at mid-room distances.
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{0.4, 2.5};
  const Vec2 b{4.0, 2.5};
  RadioNode tx{a, 0.0};
  RadioNode rx{b, movr::geom::kPi};
  tx.steer_toward(b);
  rx.steer_toward(a);
  const auto paths = tracer.trace(a, b);
  const double snr = link_snr(tx, rx, paths, LinkConfig{}).value();
  EXPECT_GT(snr, 20.0);
  EXPECT_LT(snr, 32.0);
}

TEST(BeamSweep, FindsLosAlignment) {
  const channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{1.0, 1.0};
  const Vec2 b{4.0, 3.0};
  RadioNode tx{a, (b - a).heading()};
  RadioNode rx{b, (a - b).heading()};
  const auto paths = tracer.trace(a, b);
  const auto codebook = rf::paper_sector_codebook(2.0);
  const LinkConfig config;
  const auto result =
      sweep_best_beams(tx, rx, paths, config, codebook, codebook);
  // Both ends should land on boresight (the LOS direction) within a step.
  EXPECT_NEAR(movr::geom::rad_to_deg(result.tx_local_angle), 90.0, 2.5);
  EXPECT_NEAR(movr::geom::rad_to_deg(result.rx_local_angle), 90.0, 2.5);
  EXPECT_EQ(result.combinations_tried, 51 * 51);
  // And the steering sticks.
  EXPECT_EQ(tx.array().steering(), result.tx_local_angle);
}

TEST(BeamSweep, NlosVariantIgnoresLos) {
  channel::Room room{5.0, 5.0};
  const channel::RayTracer tracer{room};
  const Vec2 a{0.5, 2.5};
  const Vec2 b{4.5, 2.5};
  RadioNode tx{a, (b - a).heading()};
  RadioNode rx{b, (a - b).heading()};
  const auto paths = tracer.trace(a, b);
  const auto codebook = rf::paper_sector_codebook(2.0);
  const LinkConfig config;
  RadioNode tx2 = tx;
  RadioNode rx2 = rx;
  const auto all = sweep_best_beams(tx, rx, paths, config, codebook, codebook);
  const auto nlos =
      sweep_best_beams_nlos(tx2, rx2, paths, config, codebook, codebook);
  // NLOS-only must be strictly worse than having the LOS available...
  EXPECT_LT(nlos.snr.value(), all.snr.value());
  // ...by roughly the paper's ~16 dB wall-reflection penalty.
  EXPECT_GT(all.snr.value() - nlos.snr.value(), 8.0);
}

}  // namespace
}  // namespace movr::phy
