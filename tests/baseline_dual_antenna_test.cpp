#include <baseline/dual_antenna.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::baseline {
namespace {

using geom::Vec2;
using geom::deg_to_rad;

core::Scene make_scene() {
  return core::Scene{channel::Room{5.0, 5.0},
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{3.0, 2.0}, 0.0}};
}

TEST(DualAntenna, ClearLosPrefersFront) {
  auto scene = make_scene();
  DualAntennaStrategy strategy{scene};
  const double snr = strategy.on_frame().value();
  EXPECT_GT(snr, 18.0);
  EXPECT_GE(strategy.front_selected(), 1);
}

TEST(DualAntenna, RescuesSelfHeadBlockage) {
  // The player turns away: her head sits between the (front) receiver and
  // the AP. The back aperture is on the AP side of the head — exactly the
  // case a second antenna CAN fix.
  auto scene = make_scene();
  DualAntennaStrategy strategy{scene};
  const Vec2 pos = scene.headset().node().position();
  const Vec2 ap = scene.ap().node().position();
  scene.room().add_obstacle(channel::make_head(pos, ap - pos));
  const double snr = strategy.on_frame().value();
  EXPECT_GT(snr, 18.0);  // back antenna sees over the head
  EXPECT_GE(strategy.back_selected(), 1);
}

TEST(DualAntenna, HandBlocksBothApertures) {
  // The paper's counterargument: a raised hand shadows both antennas. The
  // hand sits 25 cm out with the apertures 24 cm apart — both rays to the
  // AP pass through or right next to it.
  auto scene = make_scene();
  DualAntennaStrategy strategy{scene};
  const Vec2 pos = scene.headset().node().position();
  const Vec2 ap = scene.ap().node().position();
  scene.room().add_obstacle(channel::make_hand(pos, ap - pos));
  const double snr = strategy.on_frame().value();
  EXPECT_LT(snr, 19.0);  // below the VR threshold: the link is dead
}

TEST(DualAntenna, PersonBlocksBothApertures) {
  auto scene = make_scene();
  DualAntennaStrategy strategy{scene};
  const Vec2 pos = scene.headset().node().position();
  const Vec2 ap = scene.ap().node().position();
  scene.room().add_obstacle(
      channel::make_person(pos + (ap - pos).normalized() * 1.2));
  const double snr = strategy.on_frame().value();
  EXPECT_LT(snr, 19.0);
}

TEST(DualAntenna, RestoresTrackedPose) {
  auto scene = make_scene();
  DualAntennaStrategy strategy{scene};
  const Vec2 before = scene.headset().node().position();
  strategy.on_frame();
  EXPECT_EQ(scene.headset().node().position(), before);
}

}  // namespace
}  // namespace movr::baseline
