#include <core/angle_search.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <sim/rng.hpp>

namespace movr::core {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;
using movr::geom::rad_to_deg;

struct Fixture {
  Scene scene;
  MovrReflector& reflector;
  sim::Simulator simulator;
  sim::ControlChannel control;

  explicit Fixture(std::uint64_t seed, Vec2 reflector_pos = {3.4, 4.8},
                   double reflector_orient = deg_to_rad(262.0),
                   sim::ControlChannel::Config bt = {})
      : scene{channel::Room{5.0, 5.0},
              ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
              HeadsetRadio{{3.0, 2.0}, 0.0}},
        reflector{scene.add_reflector(reflector_pos, reflector_orient)},
        control{simulator, bt, std::mt19937_64{seed}} {
    control.attach(reflector.control_name(),
                   [this](const sim::ControlMessage& m) { reflector.handle(m); });
  }
};

TEST(IncidenceSearch, FindsAnglesWithinTwoDegrees) {
  Fixture f{1};
  IncidenceSearch search{f.simulator, f.control, f.scene, f.reflector,
                         make_search_config(1.0), std::mt19937_64{11}};
  IncidenceResult result;
  search.start([&](const IncidenceResult& r) { result = r; });
  f.simulator.run();
  ASSERT_TRUE(result.completed);
  const double truth = f.scene.true_reflector_angle_to_ap(f.reflector);
  EXPECT_LE(rad_to_deg(movr::geom::angular_distance(result.reflector_angle,
                                                    truth)),
            2.0);
  const double ap_truth = f.scene.true_ap_angle_to_reflector(f.reflector);
  EXPECT_LE(
      rad_to_deg(movr::geom::angular_distance(result.ap_angle, ap_truth)),
      3.0);
}

TEST(IncidenceSearch, SweepsFullGrid) {
  Fixture f{2};
  const auto config = make_search_config(5.0);  // 21 x 21 coarse grid
  IncidenceSearch search{f.simulator, f.control, f.scene, f.reflector, config,
                         std::mt19937_64{3}};
  IncidenceResult result;
  search.start([&](const IncidenceResult& r) { result = r; });
  f.simulator.run();
  EXPECT_EQ(result.measurements, 21 * 21);
  // 2 arm + 21 per-angle + 3 finish commands.
  EXPECT_EQ(result.bt_commands, 2 + 21 + 3);
}

TEST(IncidenceSearch, DurationDominatedByBluetooth) {
  Fixture f{3};
  auto config = make_search_config(1.0);
  IncidenceSearch search{f.simulator, f.control, f.scene, f.reflector, config,
                         std::mt19937_64{5}};
  IncidenceResult result;
  search.start([&](const IncidenceResult& r) { result = r; });
  f.simulator.run();
  // 101 reflector repositionings x 10 ms command wait, plus sweeps:
  // around a second (the paper: "the most time consuming process").
  EXPECT_GT(sim::to_milliseconds(result.duration), 500.0);
  EXPECT_LT(sim::to_milliseconds(result.duration), 3000.0);
}

TEST(IncidenceSearch, LeavesReflectorDisarmed) {
  Fixture f{4};
  f.reflector.front_end().set_gain_code(33);  // pre-search setting
  IncidenceSearch search{f.simulator, f.control, f.scene, f.reflector,
                         make_search_config(5.0), std::mt19937_64{7}};
  IncidenceResult result;
  search.start([&](const IncidenceResult& r) { result = r; });
  f.simulator.run();
  EXPECT_FALSE(f.reflector.front_end().modulating());
  EXPECT_EQ(f.reflector.front_end().gain_code(), 33u);
  // RX beam parked on the winning angle.
  EXPECT_NEAR(f.reflector.front_end().rx_array().steering(),
              result.reflector_angle, 1e-9);
}

TEST(IncidenceSearch, SurvivesLossyBluetooth) {
  sim::ControlChannel::Config lossy;
  lossy.loss_probability = 0.15;
  Fixture f{5, {3.4, 4.8}, deg_to_rad(262.0), lossy};
  IncidenceSearch search{f.simulator, f.control, f.scene, f.reflector,
                         make_search_config(2.0), std::mt19937_64{13}};
  IncidenceResult result;
  search.start([&](const IncidenceResult& r) { result = r; });
  f.simulator.run();
  ASSERT_TRUE(result.completed);
  const double truth = f.scene.true_reflector_angle_to_ap(f.reflector);
  // Retries make commands late but the argmax still lands close.
  EXPECT_LE(rad_to_deg(movr::geom::angular_distance(result.reflector_angle,
                                                    truth)),
            6.0);
}

TEST(ReflectionSearch, PointsTxBeamAtHeadset) {
  Fixture f{6};
  // Pre-align the incidence side (as the protocol sequence would).
  f.reflector.front_end().steer_rx(
      f.scene.true_reflector_angle_to_ap(f.reflector));
  f.scene.ap().node().steer_toward(f.reflector.position());
  f.scene.headset().node().face_toward(f.reflector.position());
  f.reflector.front_end().set_gain_code(220);

  ReflectionSearch search{f.simulator, f.control, f.scene, f.reflector,
                          make_search_config(1.0), std::mt19937_64{17}};
  ReflectionResult result;
  search.start([&](const ReflectionResult& r) { result = r; });
  f.simulator.run();
  ASSERT_TRUE(result.completed);
  const double truth = f.scene.true_reflector_angle_to_headset(f.reflector);
  EXPECT_LE(rad_to_deg(movr::geom::angular_distance(result.reflector_tx_angle,
                                                    truth)),
            3.0);
  // Measured at the conservative search gain, not the final operating gain.
  EXPECT_GT(result.best_snr.value(), 8.0);
  // TX beam left at the winner.
  EXPECT_NEAR(f.reflector.front_end().tx_array().steering(),
              result.reflector_tx_angle, 1e-9);
}

TEST(ReflectionSearch, CountsWork) {
  Fixture f{7};
  f.reflector.front_end().steer_rx(
      f.scene.true_reflector_angle_to_ap(f.reflector));
  f.scene.ap().node().steer_toward(f.reflector.position());
  f.scene.headset().node().face_toward(f.reflector.position());
  f.reflector.front_end().set_gain_code(170);
  ReflectionSearch search{f.simulator, f.control, f.scene, f.reflector,
                          make_search_config(5.0), std::mt19937_64{19}};
  ReflectionResult result;
  search.start([&](const ReflectionResult& r) { result = r; });
  f.simulator.run();
  EXPECT_EQ(result.measurements, 21);
  // 1 arm-gain + 21 sweeps + 1 final set + 1 restore-gain.
  EXPECT_EQ(result.bt_commands, 24);
}

TEST(SearchConfig, DefaultsMatchPaperSector) {
  const auto config = make_search_config(1.0);
  EXPECT_EQ(config.reflector_codebook.size(), 101u);
  EXPECT_EQ(config.ap_codebook.size(), 101u);
  EXPECT_NEAR(config.reflector_codebook.front(), deg_to_rad(40.0), 1e-12);
  EXPECT_NEAR(config.reflector_codebook.back(), deg_to_rad(140.0), 1e-9);
}

}  // namespace
}  // namespace movr::core
