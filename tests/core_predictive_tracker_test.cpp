#include <core/predictive_tracker.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::core {
namespace {

using geom::Vec2;
using geom::deg_to_rad;

PredictiveTracker::Config noiseless() {
  PredictiveTracker::Config config;
  config.tracking_noise_m = 0.0;
  return config;
}

TEST(PredictiveTracker, VelocityFromLinearMotion) {
  PredictiveTracker tracker{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  std::mt19937_64 rng{1};
  for (int i = 0; i < 6; ++i) {
    const auto t = sim::from_seconds(i * 0.0111);
    tracker.on_pose(t, Vec2{1.0 + 0.5 * sim::to_seconds(t), 2.0}, reflector,
                    rng);
  }
  const Vec2 v = tracker.velocity();
  EXPECT_NEAR(v.x, 0.5, 1e-6);
  EXPECT_NEAR(v.y, 0.0, 1e-6);
}

TEST(PredictiveTracker, PredictExtrapolates) {
  PredictiveTracker tracker{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  std::mt19937_64 rng{1};
  for (int i = 0; i < 6; ++i) {
    tracker.on_pose(sim::from_seconds(i * 0.01), Vec2{1.0 + i * 0.01, 2.0},
                    reflector, rng);
  }
  // 1 m/s along x; 100 ms ahead is +0.1 m.
  const Vec2 predicted = tracker.predict(sim::from_seconds(0.1));
  EXPECT_NEAR(predicted.x, 1.05 + 0.1, 1e-6);
  EXPECT_NEAR(predicted.y, 2.0, 1e-6);
}

TEST(PredictiveTracker, StationaryPlayerNoCommands) {
  PredictiveTracker tracker{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  // Beam already on target.
  reflector.front_end().steer_tx(
      reflector.to_local((Vec2{2.0, 2.0} - reflector.position()).heading()));
  std::mt19937_64 rng{1};
  int commands = 0;
  for (int i = 0; i < 90; ++i) {
    if (tracker.on_pose(sim::from_seconds(i * 0.0111), {2.0, 2.0}, reflector,
                        rng)) {
      ++commands;
    }
  }
  EXPECT_EQ(commands, 0);
}

TEST(PredictiveTracker, CommandsWhenBeamDrifts) {
  PredictiveTracker tracker{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  reflector.front_end().steer_tx(
      reflector.to_local((Vec2{2.0, 2.0} - reflector.position()).heading()));
  std::mt19937_64 rng{1};
  bool commanded = false;
  for (int i = 0; i < 180 && !commanded; ++i) {
    const double t = i * 0.0111;
    const auto cmd = tracker.on_pose(sim::from_seconds(t),
                                     Vec2{2.0 + t * 1.0, 2.0}, reflector, rng);
    if (cmd) {
      commanded = true;
      // The command leads the current position toward the motion.
      reflector.front_end().steer_tx(cmd->tx_local_angle);
    }
  }
  EXPECT_TRUE(commanded);
}

TEST(PredictiveTracker, LeadsAMovingTarget) {
  // With a fast player, the predictive command lands closer to where the
  // player is at actuation time than a command aimed at the current pose.
  PredictiveTracker::Config config = noiseless();
  config.actuation_delay = sim::from_seconds(0.05);
  PredictiveTracker tracker{config};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  reflector.front_end().steer_tx(deg_to_rad(40.0));  // badly off
  std::mt19937_64 rng{1};
  const double speed = 2.0;  // fast strafe
  // Apply every command; judge the LAST one, issued with a warm velocity
  // fit (the first command fires before any velocity is known).
  std::optional<PredictiveTracker::Command> cmd;
  int commands = 0;
  double t = 0.0;
  double cmd_time = 0.0;
  for (int i = 0; i < 40; ++i) {
    t = i * 0.0111;
    const auto c = tracker.on_pose(sim::from_seconds(t),
                                   Vec2{1.0 + speed * t, 2.0}, reflector, rng);
    if (c) {
      ++commands;
      cmd = c;
      cmd_time = t;
      reflector.front_end().steer_tx(c->tx_local_angle);
    }
  }
  ASSERT_TRUE(cmd.has_value());
  ASSERT_GE(commands, 2);
  t = cmd_time;
  const Vec2 at_actuation{1.0 + speed * (t + 0.05), 2.0};
  const double ideal =
      reflector.to_local((at_actuation - reflector.position()).heading());
  const double naive =
      reflector.to_local((Vec2{1.0 + speed * t, 2.0} - reflector.position())
                             .heading());
  EXPECT_LT(geom::angular_distance(cmd->tx_local_angle, ideal),
            geom::angular_distance(naive, ideal));
}

TEST(PredictiveTracker, NoisyTrackingStillConverges) {
  PredictiveTracker tracker;  // default 5 mm noise
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  std::mt19937_64 rng{7};
  for (int i = 0; i < 20; ++i) {
    tracker.on_pose(sim::from_seconds(i * 0.0111),
                    Vec2{1.0 + 0.6 * i * 0.0111, 2.0}, reflector, rng);
  }
  const Vec2 v = tracker.velocity();
  // 5 mm tracking jitter over a ~60 ms window is a lot of velocity noise;
  // the fit only needs to get the direction and magnitude roughly right.
  EXPECT_NEAR(v.x, 0.6, 0.4);
  EXPECT_NEAR(v.y, 0.0, 0.4);
}

// --- Pinned short-history behavior -----------------------------------
//
// The occlusion forecaster treats !has_velocity_fit() as "no prediction",
// never as "predicted stationary"; these tests pin the exact behavior that
// contract depends on.

TEST(PredictiveTracker, EmptyHistoryPinned) {
  PredictiveTracker tracker{noiseless()};
  EXPECT_EQ(tracker.sample_count(), 0u);
  EXPECT_FALSE(tracker.has_velocity_fit());
  EXPECT_EQ(tracker.velocity(), Vec2(0.0, 0.0));
  // predict() on an empty history is pinned to the origin — a sentinel, not
  // a position estimate.
  EXPECT_EQ(tracker.predict(sim::from_seconds(0.1)), Vec2(0.0, 0.0));
}

TEST(PredictiveTracker, OneSamplePinned) {
  PredictiveTracker tracker{noiseless()};
  tracker.add_sample(sim::from_seconds(0.5), Vec2{1.5, 2.5});
  EXPECT_EQ(tracker.sample_count(), 1u);
  EXPECT_FALSE(tracker.has_velocity_fit());
  EXPECT_EQ(tracker.velocity(), Vec2(0.0, 0.0));
  // One sample extrapolates nowhere: predict() returns it at any horizon.
  EXPECT_EQ(tracker.predict(sim::from_seconds(0.0)), Vec2(1.5, 2.5));
  EXPECT_EQ(tracker.predict(sim::from_seconds(1.0)), Vec2(1.5, 2.5));
}

TEST(PredictiveTracker, CoincidentTimestampsFitNothing) {
  PredictiveTracker tracker{noiseless()};
  // Two samples at the same instant: a slope over a zero time base is not
  // a velocity fit.
  tracker.add_sample(sim::from_seconds(0.2), Vec2{1.0, 1.0});
  tracker.add_sample(sim::from_seconds(0.2), Vec2{2.0, 2.0});
  EXPECT_EQ(tracker.sample_count(), 2u);
  EXPECT_FALSE(tracker.has_velocity_fit());
  EXPECT_EQ(tracker.velocity(), Vec2(0.0, 0.0));
}

TEST(PredictiveTracker, AddSampleFeedsTheSameFitAsOnPose) {
  // add_sample is the noise-free ingestion path (the forecaster's feed);
  // with tracking noise disabled on_pose must produce the identical fit.
  PredictiveTracker direct{noiseless()};
  PredictiveTracker via_pose{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  std::mt19937_64 rng{1};
  for (int i = 0; i < 6; ++i) {
    const auto t = sim::from_seconds(i * 0.0111);
    const Vec2 pos{1.0 + 0.4 * sim::to_seconds(t), 2.0};
    direct.add_sample(t, pos);
    via_pose.on_pose(t, pos, reflector, rng);
  }
  EXPECT_TRUE(direct.has_velocity_fit());
  EXPECT_NEAR(direct.velocity().x, via_pose.velocity().x, 1e-9);
  EXPECT_NEAR(direct.velocity().y, via_pose.velocity().y, 1e-9);
}

TEST(PredictiveTracker, HistoryCapEvictsOldest) {
  PredictiveTracker::Config config = noiseless();
  config.history = 4;
  PredictiveTracker tracker{config};
  for (int i = 0; i < 10; ++i) {
    tracker.add_sample(sim::from_seconds(i * 0.01),
                       Vec2{static_cast<double>(i), 0.0});
  }
  EXPECT_EQ(tracker.sample_count(), 4u);
  // The fit sees only the newest 4 samples (still the same line here, so
  // the velocity is exact).
  EXPECT_NEAR(tracker.velocity().x, 100.0, 1e-6);
}

TEST(PredictiveTracker, ResetForgetsHistory) {
  PredictiveTracker tracker{noiseless()};
  MovrReflector reflector{{4.6, 4.6}, deg_to_rad(225.0)};
  std::mt19937_64 rng{1};
  for (int i = 0; i < 6; ++i) {
    tracker.on_pose(sim::from_seconds(i * 0.01), Vec2{1.0 + i * 0.05, 2.0},
                    reflector, rng);
  }
  tracker.reset();
  EXPECT_EQ(tracker.velocity(), Vec2(0.0, 0.0));
}

}  // namespace
}  // namespace movr::core
