#include <cmath>

#include <gtest/gtest.h>

#include <geom/angle.hpp>
#include <rf/codebook.hpp>
#include <rf/measurement.hpp>

namespace movr::rf {
namespace {

using movr::geom::deg_to_rad;

TEST(Codebook, UniformSpacing) {
  const auto angles = make_codebook(0.0, 1.0, 0.25);
  ASSERT_EQ(angles.size(), 5u);
  EXPECT_DOUBLE_EQ(angles.front(), 0.0);
  EXPECT_DOUBLE_EQ(angles.back(), 1.0);
  for (std::size_t i = 1; i < angles.size(); ++i) {
    EXPECT_NEAR(angles[i] - angles[i - 1], 0.25, 1e-12);
  }
}

TEST(Codebook, PaperSectorHas101EntriesAtOneDegree) {
  const auto angles = paper_sector_codebook(1.0);
  EXPECT_EQ(angles.size(), 101u);  // 40..140 inclusive
  EXPECT_NEAR(angles.front(), deg_to_rad(40.0), 1e-12);
  EXPECT_NEAR(angles.back(), deg_to_rad(140.0), 1e-9);
}

TEST(Codebook, CoarserStepFewerEntries) {
  EXPECT_EQ(paper_sector_codebook(5.0).size(), 21u);
  EXPECT_EQ(paper_sector_codebook(10.0).size(), 11u);
}

TEST(Codebook, RejectsBadArguments) {
  EXPECT_THROW(make_codebook(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(make_codebook(0.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(make_codebook(1.0, 0.0, 0.1), std::invalid_argument);
}

TEST(Codebook, SinglePointRange) {
  const auto angles = make_codebook(0.5, 0.5, 0.1);
  ASSERT_EQ(angles.size(), 1u);
  EXPECT_DOUBLE_EQ(angles.front(), 0.5);
}

TEST(Measurement, SnrEstimateUnbiasedAndConcentrating) {
  std::mt19937_64 rng{11};
  const Decibels truth{20.0};
  double sum1 = 0.0;
  double sum64 = 0.0;
  double sq1 = 0.0;
  double sq64 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double e1 = estimate_snr(truth, 1, rng).value() - truth.value();
    const double e64 = estimate_snr(truth, 64, rng).value() - truth.value();
    sum1 += e1;
    sum64 += e64;
    sq1 += e1 * e1;
    sq64 += e64 * e64;
  }
  EXPECT_NEAR(sum1 / n, 0.0, 0.15);
  EXPECT_NEAR(sum64 / n, 0.0, 0.05);
  // More symbols -> smaller spread, by about sqrt(64).
  const double std1 = std::sqrt(sq1 / n);
  const double std64 = std::sqrt(sq64 / n);
  EXPECT_GT(std1 / std64, 4.0);
}

TEST(Measurement, LowSnrEstimatesNoisier) {
  std::mt19937_64 rng{13};
  double sq_high = 0.0;
  double sq_low = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double eh = estimate_snr(Decibels{25.0}, 4, rng).value() - 25.0;
    const double el = estimate_snr(Decibels{-10.0}, 4, rng).value() + 10.0;
    sq_high += eh * eh;
    sq_low += el * el;
  }
  EXPECT_GT(sq_low, sq_high * 1.5);
}

TEST(Measurement, PowerReadingFlooredAtSensitivity) {
  std::mt19937_64 rng{5};
  const DbmPower reading = measure_power(DbmPower{-150.0}, 0.5,
                                         DbmPower{-107.0}, rng);
  EXPECT_GE(reading.value(), -107.0);
}

TEST(Measurement, PowerReadingTracksTruth) {
  std::mt19937_64 rng{5};
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum += measure_power(DbmPower{-60.0}, 0.5, DbmPower{-107.0}, rng).value();
  }
  EXPECT_NEAR(sum / n, -60.0, 0.1);
}

}  // namespace
}  // namespace movr::rf
