// Allocation-counting hook for the net test binary.
//
// tests/net_alloc_hook.cpp replaces the global operator new/delete for the
// binary it is linked into and counts allocations while armed. The
// zero-allocation regression tests (net_alloc_regression_test.cpp) arm the
// counter around a warmed steady-state window and assert it stays at zero —
// the enforcement teeth behind the "no heap in the 90 Hz tick path"
// contract (DESIGN.md §11).
#pragma once

#include <cstdint>

namespace movr::testing {

/// Zeroes the counter and starts counting operator-new calls.
void alloc_counter_start();

/// Stops counting and returns the number of allocations observed since
/// alloc_counter_start().
std::uint64_t alloc_counter_stop();

/// RAII armer: counts allocations over a scope.
class AllocCounterScope {
 public:
  AllocCounterScope() { alloc_counter_start(); }
  ~AllocCounterScope() { alloc_counter_stop(); }
  AllocCounterScope(const AllocCounterScope&) = delete;
  AllocCounterScope& operator=(const AllocCounterScope&) = delete;

  /// Allocations observed so far (also stops counting).
  std::uint64_t stop() { return alloc_counter_stop(); }
};

}  // namespace movr::testing
