// End-to-end robustness: scripted faults must leave the control plane
// responsive (watchdogs), bench bad reflectors (quarantine + backoff),
// replay calibration after reboots, and show up in the session's per-fault
// recovery report.
#include <gtest/gtest.h>

#include <string>

#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <sim/fault_injector.hpp>
#include <vr/fault_scenarios.hpp>
#include <vr/session.hpp>

namespace movr {
namespace {

using core::ApRadio;
using core::HeadsetRadio;
using core::Scene;
using geom::deg_to_rad;
using namespace std::chrono_literals;

Scene make_scene() {
  return Scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
               HeadsetRadio{{3.0, 2.0}, 0.0}};
}

void calibrate(Scene& scene, core::MovrReflector& r) {
  r.front_end().steer_rx(scene.true_reflector_angle_to_ap(r));
  r.front_end().steer_tx(scene.true_reflector_angle_to_headset(r));
  scene.ap().node().steer_toward(r.position());
  std::mt19937_64 rng{99};
  core::GainController::run(r.front_end(), scene.reflector_input(r), rng);
}

void block_direct(Scene& scene) {
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
}

TEST(FaultRecovery, TotalBrownoutAbortsIncidenceSearchEarly) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, std::mt19937_64{3}};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });

  // Scripted 100%-loss brownout covering the whole attempt.
  sim::FaultInjector injector{simulator};
  injector.inject_control_brownout(control, sim::TimePoint{0}, 10s,
                                   /*extra_loss=*/1.0,
                                   /*extra_latency=*/sim::Duration::zero());

  auto config = core::make_search_config(2.0);
  config.watchdog = 500ms;
  config.abort_after_failed_commands = 5;
  core::IncidenceResult result;
  core::IncidenceSearch search{simulator, control, scene, reflector, config,
                               std::mt19937_64{5}};
  search.start([&](const core::IncidenceResult& r) { result = r; });
  simulator.run();

  // The search ALWAYS completes — unsuccessfully, with a reason, and well
  // inside the watchdog deadline (the consecutive-failure abort fires much
  // earlier than the 500 ms backstop).
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure_reason.find("control channel"), std::string::npos);
  EXPECT_LE(result.duration, config.watchdog);
  EXPECT_EQ(control.stats().sent, control.stats().delivered +
                                      control.stats().dropped +
                                      control.stats().undeliverable);
}

TEST(FaultRecovery, WatchdogBoundsReflectionSearch) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, std::mt19937_64{7}};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });

  sim::FaultInjector injector{simulator};
  injector.inject_control_brownout(control, sim::TimePoint{0}, 10s,
                                   /*extra_loss=*/1.0,
                                   /*extra_latency=*/sim::Duration::zero());

  auto config = core::make_search_config(1.0);
  config.watchdog = 150ms;
  config.abort_after_failed_commands = 1 << 30;  // watchdog path only
  core::ReflectionResult result;
  bool fired = false;
  core::ReflectionSearch search{simulator, control, scene, reflector, config,
                                std::mt19937_64{9}};
  search.start([&](const core::ReflectionResult& r) {
    result = r;
    fired = true;
  });
  simulator.run();

  ASSERT_TRUE(fired);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure_reason.find("watchdog"), std::string::npos);
  EXPECT_EQ(result.duration, config.watchdog);
}

TEST(FaultRecovery, HandoverTimeoutQuarantinesTargetAndDegrades) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate(scene, reflector);
  sim::Simulator simulator;

  core::LinkManager::Config config;
  // Timeout shorter than the Bluetooth exchange: every commit loses the
  // race, deterministically exercising the timeout path.
  config.handover_timeout = 5ms;
  ASSERT_LT(config.handover_timeout, config.bt_wait);
  core::LinkManager manager{simulator, scene, std::mt19937_64{4}, config};

  for (int i = 0; i < 10; ++i) {
    manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }
  ASSERT_EQ(manager.mode(), core::LinkManager::Mode::kDirect);
  block_direct(scene);
  for (int i = 0; i < 40; ++i) {
    manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }

  // Never made it onto the reflector; the target was benched and, with the
  // direct path blocked and nothing usable, the link entered degraded mode.
  EXPECT_EQ(manager.stats().handovers_to_reflector, 0);
  EXPECT_GE(manager.stats().failed_handovers, 1);
  EXPECT_GE(manager.health().stats().quarantines, 1);
  EXPECT_GE(manager.stats().degraded_entries, 1);
  EXPECT_NE(manager.mode(), core::LinkManager::Mode::kViaReflector);
}

TEST(FaultRecovery, RebootQuarantineRecalibrateRestore) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate(scene, reflector);
  sim::Simulator simulator;
  core::LinkManager manager{simulator, scene, std::mt19937_64{5}};

  // Get onto the reflector first.
  for (int i = 0; i < 5; ++i) {
    manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }
  block_direct(scene);
  for (int i = 0; i < 20; ++i) {
    manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }
  ASSERT_EQ(manager.mode(), core::LinkManager::Mode::kViaReflector);

  // Power loss: registers wiped, boot epoch bumped, calibration gone.
  reflector.power_cycle();
  EXPECT_EQ(reflector.front_end().gain_code(), 0u);

  // Supervised recovery: bad via-SNR -> quarantine -> backoff re-probe
  // detects the reboot (epoch mismatch) -> stored calibration replayed ->
  // restored onto the reflector. Two 200 ms backoff rounds + frames.
  rf::Decibels last{-300.0};
  bool restored = false;
  for (int i = 0; i < 120 && !restored; ++i) {
    last = manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
    restored = manager.mode() == core::LinkManager::Mode::kViaReflector &&
               manager.health().stats().recalibrations > 0;
  }

  EXPECT_TRUE(restored);
  EXPECT_EQ(manager.health().stats().reboots_detected, 1);
  EXPECT_EQ(manager.health().stats().recalibrations, 1);
  EXPECT_GE(manager.health().stats().restored, 1);
  EXPECT_GE(manager.stats().degraded_entries, 1);
  // The replayed calibration brings the via-link back to VR-grade SNR.
  for (int i = 0; i < 5; ++i) {
    last = manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
  }
  EXPECT_EQ(manager.mode(), core::LinkManager::Mode::kViaReflector);
  EXPECT_GT(last.value(), 18.0);
}

TEST(FaultRecovery, SessionReportsPerFaultRecovery) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  calibrate(scene, reflector);
  sim::Simulator simulator;
  sim::FaultInjector injector{simulator};

  // Fault 1: the player's hand blocks LOS for 1.5 s starting at t = 1 s.
  injector.inject(
      "hand_blockage", sim::TimePoint{1s}, 1500ms,
      [&scene] { block_direct(scene); },
      [&scene] { scene.room().remove_obstacles("hand"); });
  // Fault 2: the reflector reboots mid-blockage, while the link rides it.
  vr::add_reflector_reboot(injector, reflector, sim::TimePoint{1500ms});

  vr::MovrStrategy strategy{simulator, scene, std::mt19937_64{6}};
  vr::Session::Config config;
  config.duration = 4s;
  config.faults = &injector;
  vr::Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const auto report = session.run();

  ASSERT_EQ(report.fault_recovery.size(), 2u);
  const auto& blockage = report.fault_recovery[0];
  EXPECT_EQ(blockage.fault, "hand_blockage");
  EXPECT_GT(blockage.glitched_frames, 0u);  // handover isn't instant
  EXPECT_TRUE(blockage.recovered);
  EXPECT_LE(blockage.time_to_recover, 500ms);  // one handover, a few frames

  const auto& reboot = report.fault_recovery[1];
  EXPECT_TRUE(reboot.recovered);
  // Quarantine + two backoff rounds + recalibration replay, well inside
  // the remaining blockage window.
  EXPECT_LE(reboot.time_to_recover, 1200ms);
  EXPECT_GE(strategy.manager().health().stats().recalibrations, 1);
}

}  // namespace
}  // namespace movr
