#include <rf/units.hpp>

#include <gtest/gtest.h>

namespace movr::rf {
namespace {

using namespace movr::rf::literals;

TEST(Units, DecibelLinearRoundTrip) {
  EXPECT_NEAR(Decibels{10.0}.linear(), 10.0, 1e-12);
  EXPECT_NEAR(Decibels{3.0}.linear(), 1.9952623, 1e-6);
  EXPECT_NEAR(Decibels::from_linear(100.0).value(), 20.0, 1e-12);
  EXPECT_NEAR(Decibels::from_linear(Decibels{7.3}.linear()).value(), 7.3,
              1e-12);
}

TEST(Units, AmplitudeIsHalfPowerInDb) {
  EXPECT_NEAR(Decibels{20.0}.amplitude(), 10.0, 1e-12);
  EXPECT_NEAR(Decibels{6.0}.amplitude() * Decibels{6.0}.amplitude(),
              Decibels{6.0}.linear(), 1e-12);
}

TEST(Units, DecibelArithmetic) {
  EXPECT_EQ((Decibels{3.0} + Decibels{4.0}).value(), 7.0);
  EXPECT_EQ((Decibels{3.0} - Decibels{4.0}).value(), -1.0);
  EXPECT_EQ((-Decibels{3.0}).value(), -3.0);
  EXPECT_EQ((Decibels{3.0} * 2.0).value(), 6.0);
  Decibels d{1.0};
  d += Decibels{2.0};
  d -= Decibels{0.5};
  EXPECT_EQ(d.value(), 2.5);
}

TEST(Units, DbmPowerConversions) {
  EXPECT_NEAR(DbmPower{0.0}.milliwatts(), 1.0, 1e-12);
  EXPECT_NEAR(DbmPower{30.0}.watts(), 1.0, 1e-12);
  EXPECT_NEAR(DbmPower::from_milliwatts(100.0).value(), 20.0, 1e-12);
  EXPECT_NEAR(DbmPower::from_watts(0.001).value(), 0.0, 1e-12);
}

TEST(Units, GainAppliesToPower) {
  const DbmPower p = DbmPower{-40.0} + Decibels{15.0};
  EXPECT_EQ(p.value(), -25.0);
  const DbmPower q = p - Decibels{5.0};
  EXPECT_EQ(q.value(), -30.0);
}

TEST(Units, PowerDifferenceIsGain) {
  const Decibels snr = DbmPower{-50.0} - DbmPower{-74.0};
  EXPECT_EQ(snr.value(), 24.0);
}

TEST(Units, PowerSum) {
  // Two equal powers add 3 dB.
  const DbmPower sum = power_sum(DbmPower{-30.0}, DbmPower{-30.0});
  EXPECT_NEAR(sum.value(), -26.9897, 1e-3);
  // A much weaker contribution changes nothing measurable.
  const DbmPower dominated = power_sum(DbmPower{-30.0}, DbmPower{-90.0});
  EXPECT_NEAR(dominated.value(), -30.0, 1e-4);
}

TEST(Units, DefaultDbmIsNoSignal) {
  const DbmPower none{};
  EXPECT_LT(none.value(), -250.0);
  // Summing "no signal" is an identity.
  EXPECT_NEAR(power_sum(DbmPower{-40.0}, none).value(), -40.0, 1e-9);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Decibels{1.0}, Decibels{2.0});
  EXPECT_GT(DbmPower{-30.0}, DbmPower{-40.0});
  EXPECT_EQ(Decibels{1.0}, Decibels{1.0});
}

TEST(Units, Literals) {
  EXPECT_EQ((3.5_dB).value(), 3.5);
  EXPECT_EQ((20_dB).value(), 20.0);
  EXPECT_EQ(DbmPower{-12.5}.value(), -12.5);
  EXPECT_EQ((0_dBm).value(), 0.0);
}

}  // namespace
}  // namespace movr::rf
