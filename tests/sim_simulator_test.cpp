#include <sim/simulator.hpp>

#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace movr::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint{0});
}

TEST(Simulator, AfterAdvancesClock) {
  Simulator s;
  TimePoint seen{};
  s.after(Duration{100}, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, TimePoint{100});
  EXPECT_EQ(s.now(), TimePoint{100});
}

TEST(Simulator, NestedSchedulingAccumulates) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.after(Duration{10}, [&] {
    times.push_back(s.now().count());
    s.after(Duration{5}, [&] { times.push_back(s.now().count()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 15}));
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.after(Duration{-1}, [] {}), std::invalid_argument);
}

TEST(Simulator, AtInThePastThrows) {
  Simulator s;
  s.after(Duration{10}, [] {});
  s.run();
  EXPECT_THROW(s.at(TimePoint{5}, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.after(Duration{10}, [&] { ++fired; });
  s.after(Duration{20}, [&] { ++fired; });
  s.after(Duration{30}, [&] { ++fired; });
  s.run_until(TimePoint{20});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), TimePoint{20});
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator s;
  s.run_until(TimePoint{1000});
  EXPECT_EQ(s.now(), TimePoint{1000});
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator s;
  int fired = 0;
  s.after(Duration{1}, [&] { ++fired; });
  s.after(Duration{2}, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPending) {
  Simulator s;
  bool fired = false;
  const auto id = s.after(Duration{5}, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SafetyValveTripsOnEventCount) {
  Simulator s;
  s.set_safety_valve({.max_events = 100, .max_time = Duration::zero()});
  // A self-rescheduling event: without the valve this never drains.
  std::function<void()> reschedule = [&] { s.after(Duration{1}, reschedule); };
  s.after(Duration{1}, reschedule);
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_EQ(s.events_executed(), 100u);
}

TEST(Simulator, SafetyValveTripsOnSimulatedTime) {
  Simulator s;
  s.set_safety_valve({.max_events = 0, .max_time = Duration{1'000}});
  std::function<void()> reschedule = [&] { s.after(Duration{100}, reschedule); };
  s.after(Duration{100}, reschedule);
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_LE(s.now(), TimePoint{1'000});
}

TEST(Simulator, SafetyValveOffByDefault) {
  Simulator s;
  EXPECT_EQ(s.safety_valve().max_events, 0u);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    s.after(Duration{i}, [&] { ++fired; });
  }
  s.run();
  EXPECT_EQ(fired, 1000);
}

TEST(Simulator, DeterministicReplay) {
  // The same schedule produces the same execution trace, twice.
  const auto trace = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      s.after(Duration{(i * 7) % 13}, [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace movr::sim
