#include <core/placement.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::core {
namespace {

PlacementPlanner::Config fast_config() {
  PlacementPlanner::Config config;
  config.trials = 30;
  config.mount_spacing_m = 1.6;
  config.max_reflectors = 2;
  return config;
}

TEST(Placement, CandidatesLineTheWalls) {
  const PlacementPlanner planner{fast_config(), 1};
  const channel::Room room{5.0, 5.0};
  const auto candidates = planner.candidates(room, {0.4, 0.4});
  EXPECT_GT(candidates.size(), 4u);
  for (const auto& c : candidates) {
    // On (just off) a wall...
    const bool near_wall = c.position.x < 0.3 || c.position.x > 4.7 ||
                           c.position.y < 0.3 || c.position.y > 4.7;
    EXPECT_TRUE(near_wall) << c.position;
    // ...and not on top of the AP.
    EXPECT_GT(geom::distance(c.position, {0.4, 0.4}), 1.0);
  }
}

TEST(Placement, CandidatesAvoidFurniture) {
  const PlacementPlanner planner{fast_config(), 1};
  const auto room = channel::Room::paper_office();
  const auto candidates = planner.candidates(room, {0.4, 0.4});
  for (const auto& c : candidates) {
    for (const auto& obstacle : room.obstacles()) {
      EXPECT_GT(geom::distance(c.position, obstacle.shape.center),
                obstacle.shape.radius);
    }
  }
}

TEST(Placement, OutageCurveDecreases) {
  const PlacementPlanner planner{fast_config(), 7};
  const channel::Room room{5.0, 5.0};
  const auto plan = planner.plan(room, {0.4, 0.4});
  ASSERT_GE(plan.outage_curve.size(), 2u);
  // Blockage with no reflectors is near-certain outage...
  EXPECT_GT(plan.outage_curve.front(), 0.5);
  // ...and each greedy addition strictly improved coverage.
  for (std::size_t i = 1; i < plan.outage_curve.size(); ++i) {
    EXPECT_LT(plan.outage_curve[i], plan.outage_curve[i - 1]);
  }
  EXPECT_EQ(plan.chosen.size() + 1, plan.outage_curve.size());
}

TEST(Placement, FirstReflectorDoesTheHeavyLifting) {
  const PlacementPlanner planner{fast_config(), 7};
  const channel::Room room{5.0, 5.0};
  const auto plan = planner.plan(room, {0.4, 0.4});
  ASSERT_GE(plan.outage_curve.size(), 2u);
  EXPECT_LT(plan.outage_curve[1], 0.35);
}

TEST(Placement, DeterministicPerSeed) {
  const channel::Room room{5.0, 5.0};
  const auto a = PlacementPlanner{fast_config(), 9}.plan(room, {0.4, 0.4});
  const auto b = PlacementPlanner{fast_config(), 9}.plan(room, {0.4, 0.4});
  ASSERT_EQ(a.chosen.size(), b.chosen.size());
  for (std::size_t i = 0; i < a.chosen.size(); ++i) {
    EXPECT_EQ(a.chosen[i].position, b.chosen[i].position);
  }
}

}  // namespace
}  // namespace movr::core
