// Failure injection: the protocols must degrade, not break, when the world
// misbehaves — lossy control links, noisy sensors, oscillating relays,
// blockage striking mid-calibration.
#include <gtest/gtest.h>

#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

namespace movr {
namespace {

using core::ApRadio;
using core::HeadsetRadio;
using core::Scene;
using geom::deg_to_rad;
using geom::rad_to_deg;

Scene make_scene() {
  return Scene{channel::Room{5.0, 5.0}, ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
               HeadsetRadio{{3.0, 2.0}, 0.0}};
}

TEST(FailureInjection, IncidenceSearchSurvivesTerribleBluetooth) {
  // 30% loss AND 2 ms jitter: commands arrive late or repeated, never
  // corrupted. The search must complete and stay in the right neighbourhood.
  sim::ControlChannel::Config awful;
  awful.loss_probability = 0.3;
  awful.jitter = sim::Duration{std::chrono::milliseconds{2}};
  awful.max_retries = 4;

  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  sim::Simulator simulator;
  sim::ControlChannel control{simulator, awful, std::mt19937_64{3}};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });

  core::IncidenceResult result;
  core::IncidenceSearch search{simulator, control, scene, reflector,
                               core::make_search_config(2.0),
                               std::mt19937_64{5}};
  search.start([&](const core::IncidenceResult& r) { result = r; });
  simulator.run();
  ASSERT_TRUE(result.completed);
  const double error = rad_to_deg(geom::angular_distance(
      result.reflector_angle, scene.true_reflector_angle_to_ap(reflector)));
  EXPECT_LE(error, 8.0);
  EXPECT_EQ(control.stats().dropped + control.stats().delivered +
                control.stats().undeliverable,
            control.stats().sent);
}

TEST(FailureInjection, GainControlWithNoisySensorStaysSafe) {
  // A sensor 5x noisier than spec: the controller may stop early (false
  // knee) but must never leave the loop unstable or compressed.
  hw::ReflectorFrontEnd::Config config;
  config.sensor.noise_sigma_a = 0.010;
  config.leakage.board_coupling = rf::Decibels{-14.0};  // leaky build
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    hw::ReflectorFrontEnd fe{config};
    fe.steer_rx(deg_to_rad(70.0));
    fe.steer_tx(deg_to_rad(50.0));
    std::mt19937_64 rng{seed};
    core::GainController::Config gc;
    gc.knee_threshold_a = 0.030;  // raised to clear the noisier floor
    core::GainController::run(fe, rf::DbmPower{-48.0}, rng, gc);
    const auto state = fe.process(rf::DbmPower{-48.0});
    EXPECT_TRUE(state.stable) << "seed " << seed;
    EXPECT_FALSE(state.saturated) << "seed " << seed;
  }
}

TEST(FailureInjection, OscillatingRelayIsWorseThanNothing) {
  // Force the loop unstable (leaky build, max gain): the relay's garbage
  // raises the floor at the headset, so via_snr must drop BELOW what the
  // direct (blocked) path alone would give. The system must know it.
  hw::ReflectorFrontEnd::Config leaky;
  leaky.leakage.board_coupling = rf::Decibels{-4.0};
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0), leaky);
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(reflector.front_end().max_gain_code());
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());

  const auto via = scene.via_snr(reflector);
  ASSERT_FALSE(via.front_end.stable);
  EXPECT_FALSE(via.usable);
  const rf::Decibels direct_only = scene.direct_snr();
  EXPECT_LT(via.snr.value(), direct_only.value());
}

TEST(FailureInjection, BlockageDuringReflectionSearchRecoverable) {
  // A person wanders through mid-search. The search may pick a slightly
  // worse angle; a single pose-aided retarget afterwards must restore it.
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  scene.room().add_obstacle(channel::make_person({2.8, 3.2}));

  sim::Simulator simulator;
  sim::ControlChannel control{simulator, {}, std::mt19937_64{7}};
  control.attach(reflector.control_name(),
                 [&](const sim::ControlMessage& m) { reflector.handle(m); });
  core::ReflectionResult result;
  core::ReflectionSearch search{simulator, control, scene, reflector,
                                core::make_search_config(1.0),
                                std::mt19937_64{9}};
  search.start([&](const core::ReflectionResult& r) { result = r; });
  simulator.run();
  ASSERT_TRUE(result.completed);

  scene.room().remove_obstacles("person");
  std::mt19937_64 rng{11};
  reflector.front_end().set_gain_code(200);
  const auto retarget = core::BeamTracker::retarget(scene, reflector, rng);
  EXPECT_GT(retarget.snr.value(), 15.0);
}

TEST(FailureInjection, HeadsetTriggerDoesNotFlapOnNoise) {
  // SNR hovering 1 dB above the degrade threshold with estimator noise:
  // the smoothed trigger must not oscillate every frame.
  core::HeadsetRadio headset{{0.0, 0.0}, 0.0};
  std::mt19937_64 rng{13};
  int transitions = 0;
  bool last = headset.degraded();
  for (int i = 0; i < 2000; ++i) {
    headset.observe(rf::Decibels{21.0}, rng);
    if (headset.degraded() != last) {
      ++transitions;
      last = headset.degraded();
    }
  }
  EXPECT_LT(transitions, 40);  // < 2% of frames
}

TEST(FailureInjection, LinkManagerSurvivesAllReflectorsBlocked) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(220);

  // Wall the reflector in AND block the direct path: nothing works.
  scene.room().add_obstacle(
      {geom::Circle{{4.2, 4.2}, 0.3}, channel::kFurniture, "crate"});
  scene.room().add_obstacle(channel::make_person({1.7, 1.2}));

  sim::Simulator simulator;
  core::LinkManager manager{simulator, scene, std::mt19937_64{17}};
  for (int i = 0; i < 40; ++i) {
    const rf::Decibels snr = manager.on_frame();
    simulator.run_until(simulator.now() + sim::Duration{11'111'111});
    EXPECT_GT(snr.value(), -100.0);  // sane numbers, no NaN/crash
  }
  // It tried the reflector (and found it bad) or stayed direct — either
  // way the session kept running.
  SUCCEED();
}

TEST(FailureInjection, SessionWithDeadLinkCountsAllGlitches) {
  struct DeadStrategy final : vr::LinkStrategy {
    rf::Decibels on_frame() override { return rf::Decibels{-300.0}; }
    std::string_view name() const override { return "dead"; }
  };
  Scene scene = make_scene();
  sim::Simulator simulator;
  DeadStrategy strategy;
  vr::Session::Config config;
  config.duration = sim::from_seconds(1.0);
  vr::Session session{simulator, scene, strategy, nullptr, nullptr, config};
  const auto report = session.run();
  EXPECT_EQ(report.glitched_frames, report.frames);
  EXPECT_EQ(report.stall_events, 1u);
}

}  // namespace
}  // namespace movr
