#include <core/scene.hpp>

#include <gtest/gtest.h>

#include <geom/angle.hpp>

namespace movr::core {
namespace {

using movr::geom::Vec2;
using movr::geom::deg_to_rad;

Scene make_scene() {
  auto room = channel::Room{5.0, 5.0};  // empty: no furniture surprises
  const Vec2 ap_pos{0.4, 0.4};
  ApRadio ap{ap_pos, deg_to_rad(45.0)};
  HeadsetRadio headset{{3.0, 2.0}, 0.0};
  return Scene{std::move(room), std::move(ap), std::move(headset)};
}

TEST(Scene, DirectSnrWithAlignedBeams) {
  Scene scene = make_scene();
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  const double snr = scene.direct_snr().value();
  EXPECT_GT(snr, 18.0);
  EXPECT_LT(snr, 35.0);
}

TEST(Scene, ReflectorRegistry) {
  Scene scene = make_scene();
  EXPECT_EQ(scene.reflector_count(), 0u);
  auto& r0 = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  auto& r1 = scene.add_reflector({0.4, 4.6}, deg_to_rad(315.0));
  EXPECT_EQ(scene.reflector_count(), 2u);
  EXPECT_EQ(r0.control_name(), "reflector0");
  EXPECT_EQ(r1.control_name(), "reflector1");
  EXPECT_EQ(&scene.reflector(0), &r0);
  EXPECT_EQ(&scene.reflector(1), &r1);
}

TEST(Scene, TrueAngleHelpersConsistent) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  // The AP lies along the reflector's boresight diagonal: local angle 90.
  EXPECT_NEAR(movr::geom::rad_to_deg(scene.true_reflector_angle_to_ap(reflector)),
              90.0, 1.0);
  // to_local/to_global round trip.
  const double local = scene.true_reflector_angle_to_headset(reflector);
  const double global = reflector.to_global(local);
  EXPECT_NEAR(movr::geom::angular_distance(
                  global, (scene.headset().node().position() -
                           reflector.position())
                              .heading()),
              0.0, 1e-9);
}

TEST(Scene, ReflectorInputStrongWhenAligned) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  scene.ap().node().steer_toward(reflector.position());
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  const double aligned = scene.reflector_input(reflector).value();
  reflector.front_end().steer_rx(
      scene.true_reflector_angle_to_ap(reflector) + deg_to_rad(30.0));
  const double misaligned = scene.reflector_input(reflector).value();
  EXPECT_GT(aligned, -60.0);
  EXPECT_GT(aligned - misaligned, 10.0);
}

TEST(Scene, ViaSnrUsableAndStrong) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(255);
  const auto via = scene.via_snr(reflector);
  EXPECT_TRUE(via.usable);
  EXPECT_TRUE(via.front_end.stable);
  EXPECT_GT(via.snr.value(), 18.0);
}

TEST(Scene, ViaSnrZeroGainStillRelaysWeakly) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  reflector.front_end().set_gain_code(180);
  const double amplified = scene.via_snr(reflector).snr.value();
  reflector.front_end().set_gain_code(0);
  const double passive = scene.via_snr(reflector).snr.value();
  EXPECT_GT(amplified, passive + 20.0);
}

TEST(Scene, BackscatterRequiresModulation) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  scene.ap().node().steer_toward(reflector.position());
  const double both = scene.true_reflector_angle_to_ap(reflector);
  reflector.front_end().steer_rx(both);
  reflector.front_end().steer_tx(both);
  reflector.front_end().set_gain_code(170);
  reflector.front_end().set_modulating(false);
  EXPECT_LT(scene.backscatter_at_ap(reflector).value(), -250.0);
  reflector.front_end().set_modulating(true);
  const double sideband = scene.backscatter_at_ap(reflector).value();
  EXPECT_GT(sideband, -90.0);  // comfortably above the AP's -100 dBm residual
  EXPECT_LT(sideband, -40.0);
}

TEST(Scene, BackscatterPeaksAtTrueAngles) {
  Scene scene = make_scene();
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  reflector.front_end().set_gain_code(170);
  reflector.front_end().set_modulating(true);
  const double truth_r = scene.true_reflector_angle_to_ap(reflector);
  const double truth_a = scene.true_ap_angle_to_reflector(reflector);
  reflector.front_end().steer_rx(truth_r);
  reflector.front_end().steer_tx(truth_r);
  scene.ap().node().array().steer(truth_a);
  const double peak = scene.backscatter_at_ap(reflector).value();
  // Detune either side by 20 degrees: reading collapses.
  reflector.front_end().steer_rx(truth_r + deg_to_rad(20.0));
  reflector.front_end().steer_tx(truth_r + deg_to_rad(20.0));
  EXPECT_GT(peak - scene.backscatter_at_ap(reflector).value(), 15.0);
  reflector.front_end().steer_rx(truth_r);
  reflector.front_end().steer_tx(truth_r);
  scene.ap().node().array().steer(truth_a + deg_to_rad(20.0));
  EXPECT_GT(peak - scene.backscatter_at_ap(reflector).value(), 10.0);
}

TEST(Scene, ApMeasurementChain) {
  Scene scene = make_scene();
  std::mt19937_64 rng{3};
  // Strong sideband reads near truth; nothing reads near the residual floor.
  const auto strong = scene.ap().measure_backscatter(rf::DbmPower{-60.0}, rng);
  EXPECT_NEAR(strong.value(), -60.0, 2.5);
  const auto nothing = scene.ap().measure_backscatter(rf::DbmPower{}, rng);
  EXPECT_LT(nothing.value(), -95.0);
}

TEST(Scene, MutatingRoomAffectsPhysicsImmediately) {
  Scene scene = make_scene();
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  const double clear = scene.direct_snr().value();
  scene.room().add_obstacle(channel::make_person(
      (scene.ap().node().position() + scene.headset().node().position()) *
      0.5));
  const double blocked = scene.direct_snr().value();
  EXPECT_GT(clear - blocked, 15.0);
  scene.room().remove_obstacles("person");
  EXPECT_NEAR(scene.direct_snr().value(), clear, 1e-9);
}

}  // namespace
}  // namespace movr::core
