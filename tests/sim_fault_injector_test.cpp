#include <sim/fault_injector.hpp>

#include <vector>

#include <gtest/gtest.h>

#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>

namespace movr::sim {
namespace {

TEST(FaultInjector, WindowAppliesAndClears) {
  Simulator s;
  FaultInjector injector{s};
  bool active = false;
  injector.inject("outage", TimePoint{100}, Duration{50},
                  [&] { active = true; }, [&] { active = false; });

  ASSERT_EQ(injector.timeline().size(), 1u);
  EXPECT_FALSE(injector.timeline()[0].applied);

  s.run_until(TimePoint{120});
  EXPECT_TRUE(active);
  EXPECT_TRUE(injector.timeline()[0].applied);
  EXPECT_FALSE(injector.timeline()[0].cleared);
  EXPECT_EQ(injector.active_count(TimePoint{120}), 1u);

  s.run();
  EXPECT_FALSE(active);
  EXPECT_TRUE(injector.timeline()[0].cleared);
  EXPECT_EQ(injector.timeline()[0].start, TimePoint{100});
  EXPECT_EQ(injector.timeline()[0].end, TimePoint{150});
}

TEST(FaultInjector, PulseFiresOnce) {
  Simulator s;
  FaultInjector injector{s};
  int fired = 0;
  injector.inject_pulse("reboot", TimePoint{42}, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(injector.timeline()[0].applied);
  EXPECT_TRUE(injector.timeline()[0].cleared);
  EXPECT_EQ(injector.timeline()[0].end, injector.timeline()[0].start);
}

TEST(FaultInjector, SweepProgressRunsZeroToOne) {
  Simulator s;
  FaultInjector injector{s};
  std::vector<double> progress;
  bool cleared = false;
  injector.inject_sweep("drift", TimePoint{0}, Duration{100}, Duration{25},
                        [&](double p) { progress.push_back(p); },
                        [&] { cleared = true; });
  s.run();
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.front(), 0.0);
  EXPECT_EQ(progress.back(), 1.0);
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GE(progress[i], progress[i - 1]);
    EXPECT_LE(progress[i], 1.0);
  }
  EXPECT_TRUE(cleared);
}

TEST(FaultInjector, ControlBrownoutIsScopedToWindow) {
  Simulator s;
  ControlChannel::Config config;
  config.jitter = Duration::zero();
  config.loss_probability = 0.0;
  ControlChannel chan{s, config, std::mt19937_64{5}};
  chan.attach("dev", [](const ControlMessage&) {});

  FaultInjector injector{s};
  injector.inject_control_brownout(chan, TimePoint{10'000'000},
                                   Duration{20'000'000},
                                   /*extra_loss=*/1.0,
                                   /*extra_latency=*/Duration{1'000'000});
  s.run_until(TimePoint{15'000'000});
  EXPECT_EQ(chan.fault_loss(), 1.0);
  EXPECT_EQ(chan.fault_extra_latency(), Duration{1'000'000});
  s.run();
  // Window closed: the channel is back to its configured behaviour.
  EXPECT_EQ(chan.fault_loss(), 0.0);
  EXPECT_EQ(chan.fault_extra_latency(), Duration::zero());
}

TEST(FaultInjector, ControlPartitionIsScopedToWindow) {
  Simulator s;
  ControlChannel::Config config;
  config.jitter = Duration::zero();
  ControlChannel chan{s, config, std::mt19937_64{5}};
  int received = 0;
  chan.attach("dev", [&](const ControlMessage&) { ++received; });

  FaultInjector injector{s};
  injector.inject_control_partition(chan, TimePoint{10'000'000},
                                    Duration{50'000'000});
  // Before, inside, and after the window.
  s.at(TimePoint{1'000'000}, [&] { chan.send("dev", {"x", 0.0, 0}); });
  s.at(TimePoint{30'000'000}, [&] { chan.send("dev", {"x", 0.0, 0}); });
  s.at(TimePoint{70'000'000}, [&] { chan.send("dev", {"x", 0.0, 0}); });

  s.run_until(TimePoint{30'000'000});
  EXPECT_TRUE(chan.partitioned());
  s.run();
  EXPECT_FALSE(chan.partitioned());
  EXPECT_EQ(received, 2);  // the mid-window send never crossed
  EXPECT_EQ(chan.stats().dropped, 1u);
  EXPECT_GT(chan.stats().partition_losses, 0u);
}

TEST(FaultInjector, OverlappingFaultsCompose) {
  Simulator s;
  FaultInjector injector{s};
  injector.inject("a", TimePoint{0}, Duration{100}, [] {});
  injector.inject("b", TimePoint{50}, Duration{100}, [] {});
  injector.inject_pulse("p", TimePoint{75}, [] {});
  EXPECT_EQ(injector.active_count(TimePoint{60}), 2u);
  EXPECT_EQ(injector.active_count(TimePoint{75}), 3u);
  EXPECT_EQ(injector.active_count(TimePoint{120}), 1u);
  EXPECT_EQ(injector.active_count(TimePoint{200}), 0u);
}

}  // namespace
}  // namespace movr::sim
