// A realistic living-room play session: the player walks the room while
// family members wander through, hands go up for gameplay, the head turns.
// The session replays identically under MoVR and under a no-reflector
// baseline so the QoE difference is attributable to the system alone.
//
//   $ ./example_living_room_session
#include <cstdio>

#include <baseline/strategies.hpp>
#include <core/movr.hpp>
#include <sim/rng.hpp>
#include <vr/session.hpp>

namespace {

using namespace movr;
using geom::deg_to_rad;

core::Scene make_living_room() {
  channel::Room room{5.0, 5.0};
  // Sofa along the south wall and a TV stand next to the AP corner.
  room.add_obstacle({geom::Circle{{2.5, 0.35}, 0.4}, channel::kFurniture,
                     "sofa"});
  room.add_obstacle({geom::Circle{{1.1, 0.3}, 0.25}, channel::kFurniture,
                     "tv-stand"});
  return core::Scene{std::move(room),
                     core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                     core::HeadsetRadio{{2.8, 2.6}, 0.0}};
}

vr::BlockageScript family_evening(sim::TimePoint end) {
  auto script = vr::periodic_hand_raises(sim::from_seconds(1.5),
                                         sim::from_seconds(0.7),
                                         sim::from_seconds(4.0), end);
  std::vector<vr::BlockageEvent> events = script.events();
  for (double t = 10.0; t + 5.0 < sim::to_seconds(end); t += 15.0) {
    vr::BlockageEvent crossing;
    crossing.kind = vr::BlockageEvent::Kind::kPersonCrossing;
    crossing.start = sim::from_seconds(t);
    crossing.duration = sim::from_seconds(5.0);
    crossing.path_from = {0.6, 3.8};
    crossing.path_to = {4.4, 0.9};
    events.push_back(crossing);
    vr::BlockageEvent head;
    head.kind = vr::BlockageEvent::Kind::kHead;
    head.start = sim::from_seconds(t + 7.0);
    head.duration = sim::from_seconds(1.2);
    events.push_back(head);
  }
  return vr::BlockageScript{std::move(events)};
}

void print_report(const char* label, const vr::QoeReport& report) {
  std::printf("%-22s %6lu frames, %5lu glitched (%.2f%%), %3lu stalls, "
              "longest %4.0f ms, mean SNR %.1f dB\n",
              label, static_cast<unsigned long>(report.frames),
              static_cast<unsigned long>(report.glitched_frames),
              100.0 * report.glitch_fraction(),
              static_cast<unsigned long>(report.stall_events),
              sim::to_milliseconds(report.longest_stall),
              report.mean_snr_db);
}

}  // namespace

int main() {
  sim::RngRegistry rngs{88};
  const auto duration = sim::from_seconds(60.0);
  const auto script = family_evening(duration);
  vr::Session::Config config;
  config.duration = duration;

  std::printf("60 s living-room session: walking player, hand raises every "
              "4 s,\na person crossing every 15 s, occasional head turns.\n\n");

  // --- MoVR: two reflectors covering the play space --------------------
  {
    auto scene = make_living_room();
    auto& far_corner = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
    auto& side_wall = scene.add_reflector({0.4, 4.6}, deg_to_rad(315.0));
    std::mt19937_64 cal_rng{9};
    for (auto* r : {&far_corner, &side_wall}) {
      r->front_end().steer_rx(scene.true_reflector_angle_to_ap(*r));
      r->front_end().steer_tx(scene.true_reflector_angle_to_headset(*r));
      scene.ap().node().steer_toward(r->position());
      core::GainController::run(r->front_end(), scene.reflector_input(*r),
                                cal_rng);
    }
    sim::Simulator simulator;
    vr::MovrStrategy strategy{simulator, scene, rngs.stream("movr")};
    vr::PlayerMotion motion{scene.room(), {2.8, 2.6}, 42};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    const auto report = session.run();
    print_report("MoVR (2 reflectors):", report);
    const auto& stats = strategy.manager().stats();
    std::printf("%-22s %d handovers to reflectors, %d back to direct, "
                "%d beam retargets\n",
                "", stats.handovers_to_reflector, stats.handovers_to_direct,
                stats.retargets);
  }

  // --- Baseline: perfectly tracked direct link, no reflectors ----------
  {
    auto scene = make_living_room();
    sim::Simulator simulator;
    baseline::DirectTrackingStrategy strategy{scene};
    vr::PlayerMotion motion{scene.room(), {2.8, 2.6}, 42};
    vr::Session session{simulator, scene, strategy, &motion, &script, config};
    print_report("direct only:", session.run());
  }

  std::printf("\nSame world, same motion, same blockages: the reflectors "
              "absorb what the\ndirect link cannot.\n");
  return 0;
}
