// Link-budget explorer: prints how each term of the mmWave budget moves as
// the player walks away from the AP, and where the 802.11ad MCS ladder
// steps down — a working tour of the rf/, channel/ and phy/ substrates.
//
//   $ ./example_link_budget_explorer
#include <cstdio>

#include <channel/ray_tracer.hpp>
#include <channel/room.hpp>
#include <geom/angle.hpp>
#include <phy/link.hpp>
#include <phy/mcs.hpp>
#include <rf/noise.hpp>
#include <rf/propagation.hpp>
#include <vr/requirements.hpp>

int main() {
  using namespace movr;

  const phy::LinkConfig link{};
  const channel::Room room{8.0, 5.0};
  const channel::RayTracer tracer{room,
                                  {link.carrier_hz, 2, rf::Decibels{60.0}}};

  std::printf("carrier %.0f GHz, bandwidth %.2f GHz, noise floor %.1f dBm, "
              "arrays %.1f dBi\n\n",
              link.carrier_hz / 1e9, link.bandwidth_hz / 1e9,
              phy::link_noise_floor(link).value(),
              rf::PhasedArray{}.peak_gain().value());

  std::printf("%-6s %10s %10s %10s %8s %12s %s\n", "d (m)", "FSPL", "Prx",
              "SNR", "MCS", "rate", "VR?");
  const double required = vr::kHtcVive.required_mbps();
  const geom::Vec2 ap{0.4, 2.5};
  phy::RadioNode tx{ap, 0.0};
  for (double d = 1.0; d <= 7.0; d += 0.5) {
    const geom::Vec2 pos{0.4 + d, 2.5};
    phy::RadioNode rx{pos, geom::kPi};
    tx.steer_toward(pos);
    rx.steer_toward(ap);
    const auto los = tracer.line_of_sight(ap, pos);
    const std::vector<channel::Path> paths{los};
    const rf::DbmPower prx = phy::received_power(tx, rx, paths, link);
    const rf::Decibels snr = prx - phy::link_noise_floor(link);
    const phy::McsEntry* mcs = phy::best_mcs(snr);
    std::printf("%-6.1f %7.1f dB %7.1f dBm %7.1f dB %8s %9.0f Mbps %s\n", d,
                rf::free_space_path_loss(d, link.carrier_hz).value(),
                prx.value(), snr.value(),
                mcs != nullptr ? std::to_string(mcs->index).c_str() : "-",
                mcs != nullptr ? mcs->rate_mbps : 0.0,
                (mcs != nullptr && mcs->rate_mbps >= required) ? "yes" : "NO");
  }

  std::printf("\nblockage budget at 3 m (one leg, calibrated losses):\n");
  for (const auto& [name, material] :
       {std::pair{"hand", channel::kHand}, std::pair{"head", channel::kHead},
        std::pair{"body", channel::kBody}}) {
    std::printf("  %-6s insertion loss %4.0f dB\n", name,
                material.insertion_loss.value());
  }
  std::printf("  wall bounce (drywall) %4.0f dB + longer path\n",
              channel::kDrywall.reflection_loss.value());
  return 0;
}
