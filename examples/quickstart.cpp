// Quickstart: build a room, drop in an AP, a headset and one MoVR
// reflector, block the line of sight, and watch the reflector bridge it.
//
//   $ ./example_quickstart
//
// This is the smallest end-to-end use of the library's public API.
#include <cstdio>

#include <core/movr.hpp>
#include <phy/mcs.hpp>
#include <sim/rng.hpp>
#include <vr/requirements.hpp>

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  // A 5 x 5 m office; the game PC's mmWave AP sits in a corner, the player
  // stands mid-room.
  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};

  // Stick one MoVR reflector to the far corner wall.
  auto& reflector = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));

  // Calibrate it: point its RX beam at the AP, its TX beam at the headset
  // (here from known geometry; examples/deploy_and_calibrate.cpp runs the
  // paper's actual search protocol), then let the gain controller ramp the
  // amplifier to just below the leakage limit.
  reflector.front_end().steer_rx(scene.true_reflector_angle_to_ap(reflector));
  reflector.front_end().steer_tx(
      scene.true_reflector_angle_to_headset(reflector));
  scene.ap().node().steer_toward(reflector.position());
  std::mt19937_64 rng{1};
  const auto gain = core::GainController::run(
      reflector.front_end(), scene.reflector_input(reflector), rng);
  std::printf("reflector calibrated: amplifier gain %.1f dB (%s)\n",
              gain.final_gain.value(),
              gain.knee_found ? "leakage-limited" : "hardware-limited");

  const double required = vr::kHtcVive.required_mbps();
  const auto report = [&](const char* label, rf::Decibels snr) {
    const double rate = phy::rate_mbps(snr);
    std::printf("%-28s SNR %6.1f dB -> %7.0f Mbps  %s\n", label, snr.value(),
                rate, rate >= required ? "VR OK" : "GLITCH");
  };

  // 1. Clear line of sight.
  scene.ap().node().steer_toward(scene.headset().node().position());
  scene.headset().node().face_toward(scene.ap().node().position());
  report("clear LOS:", scene.direct_snr());

  // 2. The player raises a hand in front of the headset.
  scene.room().add_obstacle(channel::make_hand(
      scene.headset().node().position(),
      scene.ap().node().position() - scene.headset().node().position()));
  report("hand up, direct link:", scene.direct_snr());

  // 3. Same blockage, but the AP beams to the reflector instead.
  scene.ap().node().steer_toward(reflector.position());
  scene.headset().node().face_toward(reflector.position());
  report("hand up, via MoVR:", scene.via_snr(reflector).snr);

  std::printf("\nrequired for the HTC Vive's raw stream: %.0f Mbps\n",
              required);
  return 0;
}
