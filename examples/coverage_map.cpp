// ASCII coverage map of a deployed room: where does the direct beam reach,
// where does only a reflector save you, and where are you out of luck?
//
//   $ ./example_coverage_map [--threads N] [--seed S]
//
//   '#' direct LOS covers the cell      '+' only a reflector covers it
//   '.' below the VR threshold either way
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <core/coverage.hpp>
#include <core/gain_control.hpp>
#include <core/movr.hpp>
#include <geom/angle.hpp>
#include <phy/mcs.hpp>
#include <vr/requirements.hpp>

int main(int argc, char** argv) {
  using namespace movr;
  using geom::deg_to_rad;

  unsigned threads = 0;  // 0 = one worker per hardware thread
  std::uint64_t seed = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  core::Scene scene{channel::Room::paper_office(),
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{2.5, 2.5}, 0.0}};
  auto& far_corner = scene.add_reflector({4.6, 4.6}, deg_to_rad(225.0));
  auto& side_wall = scene.add_reflector({0.4, 4.6}, deg_to_rad(315.0));

  std::mt19937_64 rng{seed};
  for (auto* reflector : {&far_corner, &side_wall}) {
    reflector->front_end().steer_rx(
        scene.true_reflector_angle_to_ap(*reflector));
    scene.ap().node().steer_toward(reflector->position());
    core::GainController::run(reflector->front_end(),
                              scene.reflector_input(*reflector), rng);
  }

  const rf::Decibels threshold =
      phy::mcs_for_rate(vr::kHtcVive.required_mbps())->min_snr;
  std::printf("5 x 5 m office, AP at (0.4, 0.4), reflectors at (4.6, 4.6) "
              "and (0.4, 4.6)\nthreshold: %.1f dB (the Vive's %.0f Mbps "
              "stream)\n\n",
              threshold.value(), vr::kHtcVive.required_mbps());

  // The grid evaluator's result is identical for any thread count.
  const auto map = core::compute_coverage(scene, 0.25, 0.5, threads);
  std::printf("%s\n", core::render_coverage(map, threshold).c_str());
  std::printf("legend: '#' direct beam, '+' reflector-only, '.' uncovered\n");
  std::printf("covered: %.0f%% of the room; blockage-resilient (reflector "
              "path alone): %.0f%%\n",
              100.0 * map.covered_fraction(threshold),
              100.0 * map.reflector_covered_fraction(threshold));
  std::printf("path oracle: %llu queries, %.0f%% served from cache\n",
              static_cast<unsigned long long>(map.oracle.queries),
              100.0 * map.oracle.hit_rate());
  return 0;
}
