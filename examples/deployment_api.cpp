// The ten-line version: Deployment owns the simulator, the Bluetooth
// channel and the scene, runs the paper's full calibration sequence, and
// plays a session — the API an integrator starts from.
//
//   $ ./example_deployment_api
#include <cstdio>

#include <geom/angle.hpp>
#include <vr/deployment.hpp>

int main() {
  using namespace movr;
  using geom::deg_to_rad;

  core::Scene scene{channel::Room{5.0, 5.0},
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{3.0, 2.0}, 0.0}};
  scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));

  vr::Deployment deployment{std::move(scene)};
  const auto calibration = deployment.calibrate();
  std::printf("calibrated %zu reflector(s) in %.1f s (usable: %s)\n",
              calibration.reflectors.size(),
              sim::to_seconds(calibration.total),
              calibration.all_usable ? "yes" : "NO");

  const auto script = vr::periodic_hand_raises(
      sim::from_seconds(0.5), sim::from_seconds(0.5), sim::from_seconds(1.5),
      sim::from_seconds(10.0));
  vr::Session::Config session;
  session.duration = sim::from_seconds(10.0);
  const auto report = deployment.play(nullptr, &script, session);

  std::printf("10 s with a hand raised every 1.5 s: %lu/%lu frames glitched "
              "(%.1f%%), mean SNR %.1f dB\n",
              static_cast<unsigned long>(report.glitched_frames),
              static_cast<unsigned long>(report.frames),
              100.0 * report.glitch_fraction(), report.mean_snr_db);
  return 0;
}
