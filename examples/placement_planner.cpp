// Placement planner: where should the reflectors go in YOUR room?
//
// Runs the greedy coverage planner on a furnished room and prints the
// recommended wall mounts with the outage improvement each one buys.
//
//   $ ./example_placement_planner [--threads N] [--seed S]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <core/placement.hpp>
#include <geom/angle.hpp>

int main(int argc, char** argv) {
  using namespace movr;

  unsigned threads = 0;  // 0 = one worker per hardware thread
  std::uint64_t seed = 2016;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  // A furnished 6 x 4.5 m den: sofa, bookcase, the AP next to the TV.
  channel::Room room{6.0, 4.5};
  room.add_obstacle({geom::Circle{{3.0, 0.4}, 0.45}, channel::kFurniture,
                     "sofa"});
  room.add_obstacle({geom::Circle{{5.6, 3.5}, 0.3}, channel::kFurniture,
                     "bookcase"});
  const geom::Vec2 ap{0.4, 2.2};

  core::PlacementPlanner::Config config;
  config.trials = 80;
  config.mount_spacing_m = 0.8;
  config.max_reflectors = 3;
  config.threads = threads;
  const core::PlacementPlanner planner{config, seed};

  std::printf("room 6.0 x 4.5 m, AP at (%.1f, %.1f); evaluating %zu candidate"
              " wall mounts...\n\n",
              ap.x, ap.y, planner.candidates(room, ap).size());

  const auto plan = planner.plan(room, ap);

  std::printf("blockage outage with no reflectors: %.0f%%\n\n",
              100.0 * plan.outage_curve.front());
  for (std::size_t i = 0; i < plan.chosen.size(); ++i) {
    const auto& mount = plan.chosen[i];
    std::printf("reflector %zu: stick at (%.1f, %.1f), facing %.0f deg"
                "  ->  outage %.0f%% -> %.0f%%\n",
                i + 1, mount.position.x, mount.position.y,
                geom::rad_to_deg(mount.orientation),
                100.0 * plan.outage_curve[i],
                100.0 * plan.outage_curve[i + 1]);
  }
  if (plan.chosen.empty()) {
    std::printf("no mount improved coverage — check the AP position.\n");
  } else {
    std::printf("\nfinal outage: %.1f%% with %zu passive reflector(s) and "
                "zero new cables.\n",
                100.0 * plan.outage_curve.back(), plan.chosen.size());
  }
  return 0;
}
