// Deployment walkthrough: runs the paper's two calibration protocols end to
// end over the simulated Bluetooth control channel, narrating every step —
// the backscatter incidence search (Section 4.1), the reflection search,
// and the current-knee gain ramp (Section 4.2).
//
//   $ ./example_deploy_and_calibrate
#include <cstdio>

#include <core/movr.hpp>
#include <sim/rng.hpp>

int main() {
  using namespace movr;
  using geom::deg_to_rad;
  using geom::rad_to_deg;

  sim::RngRegistry rngs{314};

  core::Scene scene{channel::Room::paper_office(),
                    core::ApRadio{{0.4, 0.4}, deg_to_rad(45.0)},
                    core::HeadsetRadio{{2.8, 1.6}, 0.0}};
  auto& reflector = scene.add_reflector({3.4, 4.8}, deg_to_rad(262.0));

  sim::Simulator simulator;
  sim::ControlChannel bluetooth{simulator, {}, rngs.stream("bt")};
  bluetooth.attach(reflector.control_name(),
                   [&](const sim::ControlMessage& m) { reflector.handle(m); });

  std::printf("== install: reflector stuck to the north wall at (3.4, 4.8),"
              " facing into the room ==\n\n");

  // ---- Phase 1: incidence angle, measured by the AP via backscatter ----
  std::printf("phase 1: the AP transmits a tone at f1; the reflector sets "
              "both beams to each\ncandidate angle and on-off-modulates at "
              "f2; the AP reads the f1+f2 sideband.\n");
  core::IncidenceResult incidence;
  core::IncidenceSearch incidence_search{simulator, bluetooth, scene,
                                         reflector,
                                         core::make_search_config(1.0),
                                         rngs.stream("incidence")};
  incidence_search.start([&](const core::IncidenceResult& r) { incidence = r; });
  simulator.run();
  std::printf("  -> reflector RX angle %.1f deg (truth %.1f), AP angle %.1f "
              "deg\n",
              rad_to_deg(incidence.reflector_angle),
              rad_to_deg(scene.true_reflector_angle_to_ap(reflector)),
              rad_to_deg(incidence.ap_angle));
  std::printf("  -> %d backscatter measurements, %d Bluetooth commands, "
              "%.0f ms\n\n",
              incidence.measurements, incidence.bt_commands,
              sim::to_milliseconds(incidence.duration));

  // ---- Phase 2: reflection angle, via headset SNR reports --------------
  std::printf("phase 2: the reflector sweeps its TX beam; the headset "
              "reports SNR estimates.\n");
  scene.headset().node().face_toward(reflector.position());
  core::ReflectionResult reflection;
  core::ReflectionSearch reflection_search{simulator, bluetooth, scene,
                                           reflector,
                                           core::make_search_config(1.0),
                                           rngs.stream("reflection")};
  reflection_search.start(
      [&](const core::ReflectionResult& r) { reflection = r; });
  simulator.run();
  std::printf("  -> reflector TX angle %.1f deg (truth %.1f), best estimate "
              "%.1f dB, %.0f ms\n\n",
              rad_to_deg(reflection.reflector_tx_angle),
              rad_to_deg(scene.true_reflector_angle_to_headset(reflector)),
              reflection.best_snr.value(),
              sim::to_milliseconds(reflection.duration));

  // ---- Phase 3: gain ramp against the current knee ---------------------
  std::printf("phase 3: ramp the amplifier gain, watching the supply "
              "current for the\nsaturation knee (the reflector's only "
              "observable).\n");
  auto gain_rng = rngs.stream("gain");
  const auto gain = core::GainController::run(
      reflector.front_end(), scene.reflector_input(reflector), gain_rng);
  std::printf("  gain ramp trace (code, gain dB, current mA):\n");
  for (std::size_t i = 0; i < gain.trace.size();
       i += std::max<std::size_t>(gain.trace.size() / 8, 1)) {
    const auto& step = gain.trace[i];
    std::printf("    %4u  %5.1f dB  %6.1f mA\n", step.code, step.gain_db,
                step.current_a * 1e3);
  }
  if (!gain.trace.empty()) {
    const auto& last = gain.trace.back();
    std::printf("    %4u  %5.1f dB  %6.1f mA   <- %s\n", last.code,
                last.gain_db, last.current_a * 1e3,
                gain.knee_found ? "knee detected, backing off"
                                : "top of range, no knee");
  }
  std::printf("  -> final gain %.1f dB in %.0f ms\n\n",
              gain.final_gain.value(), sim::to_milliseconds(gain.duration));

  // ---- Result -----------------------------------------------------------
  scene.ap().node().steer_toward(reflector.position());
  const auto via = scene.via_snr(reflector);
  std::printf("calibrated relay: %.1f dB SNR at the headset via the "
              "reflector (stable: %s)\n",
              via.snr.value(), via.front_end.stable ? "yes" : "NO");
  std::printf("total calibration time: %.1f s — done once at install, never "
              "during play\n",
              sim::to_seconds(simulator.now()));
  return 0;
}
