#include <core/scene.hpp>

#include <cmath>
#include <complex>
#include <numbers>

#include <rf/noise.hpp>
#include <rf/propagation.hpp>

namespace movr::core {

namespace {

/// Frequency-averaged power over paths with arbitrary endpoint responses.
/// `tx_response` and `rx_response` map a global azimuth to a complex
/// far-field factor.
template <typename FTx, typename FRx>
rf::DbmPower hop_power(rf::DbmPower tx_power,
                       std::span<const channel::Path> paths, FTx&& tx_response,
                       FRx&& rx_response, const phy::LinkConfig& link,
                       rf::Decibels extra_loss) {
  std::vector<phy::PathComponent> components;
  components.reserve(paths.size());
  for (const channel::Path& path : paths) {
    const rf::DbmPower path_power = tx_power - path.loss;
    const double amplitude = std::sqrt(path_power.milliwatts());
    components.push_back({amplitude * tx_response(path.departure_azimuth) *
                              rx_response(path.arrival_azimuth),
                          path.length_m});
  }
  return phy::wideband_power(components, link, extra_loss);
}

}  // namespace

namespace {

ChannelOracle::Config oracle_config(const Scene::Config& config) {
  ChannelOracle::Config oracle;
  oracle.solver = {config.link.carrier_hz, 2, rf::Decibels{60.0}};
  return oracle;
}

}  // namespace

Scene::Scene(channel::Room room, ApRadio ap, HeadsetRadio headset,
             Config config)
    : room_{std::move(room)},
      oracle_{std::make_unique<ChannelOracle>(room_, oracle_config(config))},
      ap_{std::move(ap)},
      headset_{std::move(headset)},
      config_{config} {}

const ChannelOracle& Scene::oracle() const {
  if (&oracle_->room() != &room_) {
    oracle_->rebind(room_);  // the scene was moved; drop the stale binding
  }
  return *oracle_;
}

Scene Scene::clone() const {
  Scene copy{channel::Room{room_}, ApRadio{ap_}, HeadsetRadio{headset_},
             config_};
  copy.reflectors_.reserve(reflectors_.size());
  for (const auto& reflector : reflectors_) {
    copy.reflectors_.push_back(std::make_unique<MovrReflector>(*reflector));
  }
  return copy;
}

MovrReflector& Scene::add_reflector(geom::Vec2 position,
                                    double orientation_rad,
                                    hw::ReflectorFrontEnd::Config front_end) {
  reflectors_.push_back(
      std::make_unique<MovrReflector>(position, orientation_rad, front_end));
  reflectors_.back()->set_control_name("reflector" +
                                       std::to_string(reflectors_.size() - 1));
  return *reflectors_.back();
}

std::vector<channel::Path> Scene::paths_between(geom::Vec2 a,
                                                geom::Vec2 b) const {
  return oracle().paths_between(a, b);
}

ChannelOracle::PathsView Scene::paths_view(geom::Vec2 a, geom::Vec2 b) const {
  return oracle().paths_view(a, b);
}

void Scene::prefetch_paths(const channel::EndpointBatch& batch) const {
  oracle().query_batch(batch, prefetch_scratch_);
  prefetch_scratch_.clear();  // drop the references, keep capacity
}

rf::DbmPower Scene::direct_power() const {
  const auto paths =
      paths_view(ap_.node().position(), headset_.node().position());
  return phy::received_power(ap_.node(), headset_.node(), *paths,
                             config_.link);
}

rf::Decibels Scene::direct_snr() const {
  return direct_power() - phy::link_noise_floor(config_.link);
}

phy::LinkConfig Scene::hop_config(rf::Decibels loss) const {
  phy::LinkConfig hop = config_.link;
  hop.implementation_loss = loss;
  return hop;
}

rf::DbmPower Scene::reflector_input(const MovrReflector& reflector) const {
  const auto paths =
      paths_view(ap_.node().position(), reflector.position());
  const auto& rx_array = reflector.front_end().rx_array();
  return hop_power(
      ap_.node().tx_power(), *paths,
      [&](double az) { return ap_.node().response_toward(az); },
      [&](double az) {
        return phy::array_response(rx_array, reflector.to_local(az));
      },
      config_.link, config_.tx_side_loss);
}

Scene::ViaResult Scene::via_snr(const MovrReflector& reflector) const {
  ViaResult result;
  const rf::DbmPower input = reflector_input(reflector);
  result.front_end = reflector.front_end().process(input);
  result.usable = result.front_end.stable && !result.front_end.saturated;

  const auto paths =
      paths_view(reflector.position(), headset_.node().position());
  const auto& tx_array = reflector.front_end().tx_array();
  const rf::DbmPower relayed = hop_power(
      result.front_end.output, *paths,
      [&](double az) {
        return phy::array_response(tx_array, reflector.to_local(az));
      },
      [&](double az) { return headset_.node().response_toward(az); },
      config_.link, config_.rx_side_loss);
  result.at_headset = relayed;

  const rf::DbmPower direct = direct_power();
  const rf::DbmPower floor = phy::link_noise_floor(config_.link);

  // The relay amplifies its own input noise (kTB + amplifier NF + closed-
  // loop gain) and re-radiates it toward the headset with the same
  // second-hop gain as the signal.
  const rf::Decibels second_hop_gain = relayed - result.front_end.output;
  const rf::DbmPower relayed_noise =
      config_.include_relay_noise
          ? rf::noise_floor(
                config_.link.bandwidth_hz,
                reflector.front_end().config().amplifier.noise_figure) +
                result.front_end.effective_gain + second_hop_gain
          : rf::DbmPower{};

  if (result.usable) {
    result.snr = rf::power_sum(direct, relayed) -
                 rf::power_sum(floor, relayed_noise);
  } else {
    // Oscillating/compressed front end: the relayed energy arrives as
    // garbage and acts as interference on top of the noise floor.
    result.snr = direct - rf::power_sum(floor, relayed);
  }
  return result;
}

rf::DbmPower Scene::backscatter_at_ap(const MovrReflector& reflector) const {
  const rf::DbmPower input = reflector_input(reflector);
  const auto state = reflector.front_end().process(input);
  if (!reflector.front_end().modulating() || !state.stable) {
    return rf::DbmPower{};  // nothing at f1+f2
  }
  const auto paths =
      paths_view(reflector.position(), ap_.node().position());
  const auto& tx_array = reflector.front_end().tx_array();
  return hop_power(
      state.sideband_output, *paths,
      [&](double az) {
        return phy::array_response(tx_array, reflector.to_local(az));
      },
      [&](double az) { return ap_.node().response_toward(az); },
      config_.link, config_.rx_side_loss);
}

double Scene::true_reflector_angle_to_ap(const MovrReflector& r) const {
  return r.to_local((ap_.node().position() - r.position()).heading());
}

double Scene::true_ap_angle_to_reflector(const MovrReflector& r) const {
  return ap_.node().to_local((r.position() - ap_.node().position()).heading());
}

double Scene::true_reflector_angle_to_headset(const MovrReflector& r) const {
  return r.to_local((headset_.node().position() - r.position()).heading());
}

}  // namespace movr::core
