// Scene: the deployed system in a room — AP, headset, reflectors — and the
// RF physics queries every protocol and experiment is built from.
//
// The scene is the "world" side of the simulation: protocols (angle search,
// gain control, link management) may only interact with it through the same
// observables the real system has (received powers, SNR estimates, current
// readings); the scene itself computes ground truth.
#pragma once

#include <memory>
#include <vector>

#include <channel/room.hpp>
#include <core/ap.hpp>
#include <core/channel_oracle.hpp>
#include <core/headset.hpp>
#include <core/reflector.hpp>
#include <hw/front_end.hpp>
#include <phy/link.hpp>
#include <rf/units.hpp>

namespace movr::core {

class Scene {
 public:
  struct Config {
    phy::LinkConfig link{};
    /// The single-link implementation loss splits between the TX side and
    /// the RX side; a via-reflector path pays tx_side on the first hop and
    /// rx_side on the second (the reflector itself is pure analog, its
    /// losses live inside the front-end model).
    rf::Decibels tx_side_loss{5.5};
    rf::Decibels rx_side_loss{5.5};
    /// Model the noise the relay amplifies and re-radiates (kTB + amplifier
    /// NF + closed-loop gain, re-launched toward the headset). Physically
    /// real and non-negligible at high gain; the paper's SNR comparison
    /// does not account for it, so benches report both views.
    bool include_relay_noise{true};
  };

  Scene(channel::Room room, ApRadio ap, HeadsetRadio headset)
      : Scene{std::move(room), std::move(ap), std::move(headset), Config{}} {}
  Scene(channel::Room room, ApRadio ap, HeadsetRadio headset, Config config);

  // --- world state ----------------------------------------------------
  channel::Room& room() { return room_; }
  const channel::Room& room() const { return room_; }
  ApRadio& ap() { return ap_; }
  const ApRadio& ap() const { return ap_; }
  HeadsetRadio& headset() { return headset_; }
  const HeadsetRadio& headset() const { return headset_; }
  const Config& config() const { return config_; }
  /// Toggles relay-noise modelling (benches report both views).
  void set_include_relay_noise(bool on) { config_.include_relay_noise = on; }

  MovrReflector& add_reflector(geom::Vec2 position, double orientation_rad,
                               hw::ReflectorFrontEnd::Config front_end = {});
  std::size_t reflector_count() const { return reflectors_.size(); }
  MovrReflector& reflector(std::size_t i) { return *reflectors_.at(i); }
  const MovrReflector& reflector(std::size_t i) const {
    return *reflectors_.at(i);
  }

  // --- physics queries (ground truth) ----------------------------------
  /// Paths between two points with the current room state. Served by the
  /// memoising ChannelOracle: repeated queries against unchanged geometry
  /// are cache hits, while any Room mutation bumps the room's revision and
  /// invalidates the cache — so moving a blocker still takes effect
  /// immediately.
  std::vector<channel::Path> paths_between(geom::Vec2 a, geom::Vec2 b) const;

  /// Borrowed view of the same answer — no path copying on a warm cache
  /// hit. All of the scene's own physics queries go through this.
  ChannelOracle::PathsView paths_view(geom::Vec2 a, geom::Vec2 b) const;

  /// Warms the oracle for a whole sweep of endpoint pairs in one batched
  /// query (single lock acquisition, one batched solve for the misses).
  /// Callers that are about to evaluate a grid row or a codebook sweep
  /// prefetch first, then every per-cell physics query is a warm hit.
  void prefetch_paths(const channel::EndpointBatch& batch) const;

  /// The oracle serving paths_between (rebinding it to this scene's room
  /// first if the scene was moved since the last query). Exposes the
  /// precomputed PathSolver and the query/hit/invalidation counters.
  const ChannelOracle& oracle() const;
  ChannelOracle::Stats oracle_stats() const { return oracle().stats(); }
  void reset_oracle_stats() const { oracle().reset_stats(); }

  /// Deep copy: independent room, radios, reflectors (same control names
  /// and calibration state) and a fresh, empty oracle. The parallel grid
  /// evaluators (coverage, placement) give each worker its own clone so
  /// per-cell steering never races.
  Scene clone() const;

  /// Direct AP -> headset received power / SNR with current steerings.
  rf::DbmPower direct_power() const;
  rf::Decibels direct_snr() const;

  /// Power arriving at a reflector's RX-array connector from the AP
  /// (first hop of the relay path), with current steerings.
  rf::DbmPower reflector_input(const MovrReflector& reflector) const;

  struct ViaResult {
    rf::Decibels snr{-300.0};
    rf::DbmPower at_headset{};       // power of the relayed signal alone
    hw::ReflectorFrontEnd::State front_end{};
    /// True when the relayed signal is clean (stable, not compressed).
    bool usable{false};
  };
  /// AP -> reflector -> headset with current steerings and gain. The direct
  /// (possibly blocked) AP->headset energy is power-summed in: the headset
  /// hears both.
  ViaResult via_snr(const MovrReflector& reflector) const;

  /// Sideband power (f1 + f2) arriving back at the AP's RX connector when
  /// `reflector` modulates and reflects the AP's tone — the observable of
  /// the angle-search protocol. No measurement noise here; ApRadio adds it.
  rf::DbmPower backscatter_at_ap(const MovrReflector& reflector) const;

  // --- ground-truth geometry (for evaluation only, not for protocols) --
  /// Array-local angle at which the AP appears from the reflector.
  double true_reflector_angle_to_ap(const MovrReflector& reflector) const;
  /// Array-local angle at which the reflector appears from the AP.
  double true_ap_angle_to_reflector(const MovrReflector& reflector) const;
  /// Array-local angle at which the headset appears from the reflector.
  double true_reflector_angle_to_headset(const MovrReflector& reflector) const;

 private:
  channel::Room room_;
  // The oracle holds a pointer to room_, which relocates when the Scene is
  // moved. oracle() compares the bound room's address against &room_ on
  // every access and rebinds (dropping the cache) after a move, so a moved
  // Scene keeps answering queries correctly.
  std::unique_ptr<ChannelOracle> oracle_;
  ApRadio ap_;
  HeadsetRadio headset_;
  Config config_;
  std::vector<std::unique_ptr<MovrReflector>> reflectors_;
  /// Scratch for prefetch_paths. A Scene is single-threaded by contract
  /// (parallel evaluators clone one per worker); the oracle underneath is
  /// the synchronized layer.
  mutable std::vector<ChannelOracle::PathsView> prefetch_scratch_;

  phy::LinkConfig hop_config(rf::Decibels loss) const;
};

}  // namespace movr::core
