#include <core/placement.hpp>

#include <algorithm>
#include <atomic>

#include <channel/path_batch.hpp>
#include <core/gain_control.hpp>
#include <core/parallel_for.hpp>
#include <geom/angle.hpp>
#include <sim/rng.hpp>

namespace movr::core {

std::vector<PlacementCandidate> PlacementPlanner::candidates(
    const channel::Room& room, geom::Vec2 ap_position) const {
  std::vector<PlacementCandidate> result;
  const double w = room.width();
  const double d = room.depth();
  const double margin = config_.corner_margin_m;
  const double step = config_.mount_spacing_m;
  const double inset = 0.2;  // mounts sit just off the wall surface

  const auto add_wall = [&](geom::Vec2 from, geom::Vec2 to, double facing) {
    const double len = geom::distance(from, to);
    for (double s = margin; s <= len - margin; s += step) {
      const geom::Vec2 pos = from + (to - from).normalized() * s;
      // Skip mounts that sit on top of the AP or inside furniture.
      if (geom::distance(pos, ap_position) < 1.0) {
        continue;
      }
      const bool clear = std::none_of(
          room.obstacles().begin(), room.obstacles().end(),
          [&](const channel::Obstacle& o) {
            return geom::distance(pos, o.shape.center) <
                   o.shape.radius + 0.25;
          });
      if (clear) {
        result.push_back({pos, facing});
      }
    }
  };

  add_wall({inset, inset}, {w - inset, inset}, geom::deg_to_rad(90.0));
  add_wall({w - inset, inset}, {w - inset, d - inset}, geom::deg_to_rad(180.0));
  add_wall({w - inset, d - inset}, {inset, d - inset}, geom::deg_to_rad(270.0));
  add_wall({inset, d - inset}, {inset, inset}, geom::deg_to_rad(0.0));
  return result;
}

double PlacementPlanner::evaluate(
    const channel::Room& room, geom::Vec2 ap_position,
    const std::vector<PlacementCandidate>& mounts) const {
  // Every trial draws from its own (seed, trial) RNG stream: trials are
  // independent, so the evaluation parallelises over trials and the outage
  // estimate is identical for every thread count.
  const sim::RngRegistry rngs{seed_};
  std::atomic<int> outages{0};
  parallel_for(
      static_cast<std::size_t>(config_.trials), config_.threads,
      [&](std::size_t begin, std::size_t end) {
        int local_outages = 0;
        // Prefetch batches, reused (capacity kept) across this worker's
        // trials.
        channel::EndpointBatch calibration_batch;
        channel::EndpointBatch read_batch;
        for (std::size_t trial = begin; trial < end; ++trial) {
          std::mt19937_64 rng = rngs.stream("placement-trial", trial);
          Scene scene{channel::Room{room}, ApRadio{ap_position, 0.0},
                      HeadsetRadio{{room.width() / 2.0, room.depth() / 2.0},
                                   0.0}};
          std::vector<MovrReflector*> reflectors;
          for (const PlacementCandidate& mount : mounts) {
            reflectors.push_back(
                &scene.add_reflector(mount.position, mount.orientation));
          }
          const geom::Vec2 pos = scene.room().random_interior_point(rng, 0.8);
          scene.headset().node().set_position(pos);
          scene.ap().node().set_orientation((pos - ap_position).heading());

          // One batched solve covers every calibration read below: the
          // gain controller re-reads reflector_input per step, but the
          // AP->reflector pairs are fixed until the obstacle lands.
          calibration_batch.clear();
          for (const auto* r : reflectors) {
            calibration_batch.push(ap_position, r->position());
          }
          scene.prefetch_paths(calibration_batch);
          for (auto* r : reflectors) {
            r->front_end().steer_rx(scene.true_reflector_angle_to_ap(*r));
            r->front_end().steer_tx(
                scene.true_reflector_angle_to_headset(*r));
            scene.ap().node().steer_toward(r->position());
            GainController::run(r->front_end(), scene.reflector_input(*r),
                                rng);
          }

          const geom::Vec2 ap = scene.ap().node().position();
          std::uniform_int_distribution<int> kind{0, 2};
          switch (kind(rng)) {
            case 0:
              scene.room().add_obstacle(channel::make_hand(pos, ap - pos));
              break;
            case 1:
              scene.room().add_obstacle(channel::make_head(pos, ap - pos));
              break;
            default:
              scene.room().add_obstacle(channel::make_person(
                  pos +
                  (ap - pos).normalized() *
                      std::uniform_real_distribution<double>{0.6, 2.0}(rng)));
          }

          // The obstacle bumped the room revision and emptied the cache;
          // one batched solve repopulates it for every SNR read below.
          read_batch.clear();
          read_batch.push(ap, pos);
          for (const auto* r : reflectors) {
            read_batch.push(ap, r->position());
            read_batch.push(r->position(), pos);
          }
          scene.prefetch_paths(read_batch);

          scene.ap().node().steer_toward(pos);
          scene.headset().node().face_toward(ap);
          double best = scene.direct_snr().value();
          for (auto* r : reflectors) {
            scene.ap().node().steer_toward(r->position());
            scene.headset().node().face_toward(r->position());
            r->front_end().steer_tx(
                scene.true_reflector_angle_to_headset(*r));
            best = std::max(best, scene.via_snr(*r).snr.value());
          }
          local_outages += best < config_.required_snr.value();
        }
        outages += local_outages;
      });
  return static_cast<double>(outages.load()) / config_.trials;
}

PlacementPlan PlacementPlanner::plan(const channel::Room& room,
                                     geom::Vec2 ap_position) const {
  PlacementPlan result;
  const auto all = candidates(room, ap_position);
  result.outage_curve.push_back(evaluate(room, ap_position, {}));

  std::vector<PlacementCandidate> chosen;
  while (static_cast<int>(chosen.size()) < config_.max_reflectors &&
         result.outage_curve.back() > config_.target_outage) {
    double best_outage = result.outage_curve.back();
    const PlacementCandidate* best_candidate = nullptr;
    for (const PlacementCandidate& candidate : all) {
      const bool already = std::any_of(
          chosen.begin(), chosen.end(), [&](const PlacementCandidate& c) {
            return geom::distance(c.position, candidate.position) < 1e-6;
          });
      if (already) {
        continue;
      }
      auto trial_set = chosen;
      trial_set.push_back(candidate);
      const double outage = evaluate(room, ap_position, trial_set);
      if (outage < best_outage) {
        best_outage = outage;
        best_candidate = &candidate;
      }
    }
    if (best_candidate == nullptr) {
      break;  // no candidate improves coverage
    }
    chosen.push_back(*best_candidate);
    result.outage_curve.push_back(best_outage);
  }
  result.chosen = std::move(chosen);
  return result;
}

}  // namespace movr::core
