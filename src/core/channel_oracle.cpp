#include <core/channel_oracle.hpp>

#include <cmath>
#include <utility>

namespace movr::core {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash step.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Nearest integer, ties away from zero, branchless. std::llround compiles
/// to a libm call (x86 converts with ties-to-even), which dominated the
/// warm probe loop's key computation; adding a signed half and truncating
/// matches it everywhere but ulp-edge ties, and key consistency only needs
/// every caller to quantise the same way — they all go through make_key.
std::int64_t round_away(double v) {
  return static_cast<std::int64_t>(v + std::copysign(0.5, v));
}

}  // namespace

ChannelOracle::ChannelOracle(const channel::Room& room, Config config)
    : solver_{room, config.solver},
      config_{config},
      inv_quantum_{1.0 / config.quantum_m},
      seen_revision_{room.revision()} {}

std::uint64_t ChannelOracle::hash_key(const Key& k) {
  // Four independent multiplies (ILP) folded by one splitmix round: enough
  // mixing for a power-of-two linear-probing table.
  return mix(static_cast<std::uint64_t>(k.ax) * 0x9e3779b97f4a7c15ULL ^
             static_cast<std::uint64_t>(k.ay) * 0xc2b2ae3d27d4eb4fULL ^
             static_cast<std::uint64_t>(k.bx) * 0x165667b19e3779f9ULL ^
             static_cast<std::uint64_t>(k.by) * 0x27d4eb2f165667c5ULL);
}

ChannelOracle::Key ChannelOracle::make_key(geom::Vec2 a, geom::Vec2 b) const {
  const double s = inv_quantum_;
  return Key{round_away(a.x * s), round_away(a.y * s), round_away(b.x * s),
             round_away(b.y * s)};
}

bool ChannelOracle::PathCache::place(const Key& key, std::uint64_t hash,
                                     PathsView view) {
  std::size_t i = static_cast<std::size_t>(hash) & mask_;
  while (slots_[i].view != nullptr) {
    if (slots_[i].key == key) {
      return false;  // existing entry wins
    }
    i = (i + 1) & mask_;
  }
  slots_[i].key = key;
  slots_[i].view = std::move(view);
  return true;
}

void ChannelOracle::PathCache::insert(const Key& key, std::uint64_t hash,
                                      PathsView view) {
  if (slots_.empty()) {
    slots_.resize(1024);
    mask_ = slots_.size() - 1;
  } else if ((size_ + 1) * 4 > slots_.size() * 3) {  // max load factor 3/4
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.view != nullptr) {
        place(s.key, hash_key(s.key), std::move(s.view));
      }
    }
  }
  if (place(key, hash, std::move(view))) {
    ++size_;
  }
}

void ChannelOracle::PathCache::clear() {
  for (Slot& s : slots_) {
    s.view = nullptr;
  }
  size_ = 0;
}

void ChannelOracle::drop_cache_locked() const {
  cache_.clear();
  ++stats_.invalidations;
}

void ChannelOracle::check_revision_locked() const {
  const std::uint64_t revision = solver_.room().revision();
  if (revision != seen_revision_) {
    drop_cache_locked();
    seen_revision_ = revision;
  }
}

ChannelOracle::PathsView ChannelOracle::view_locked(geom::Vec2 a,
                                                    geom::Vec2 b) const {
  ++stats_.queries;
  check_revision_locked();
  const Key key = make_key(a, b);
  const std::uint64_t hash = hash_key(key);
  if (const PathsView* hit = cache_.find(key, hash)) {
    ++stats_.hits;
    return *hit;
  }
  ++stats_.misses;
  if (cache_.size() >= config_.max_entries) {
    drop_cache_locked();
  }
  PathsView view =
      std::make_shared<const std::vector<channel::Path>>(solver_.solve(a, b));
  cache_.insert(key, hash, view);
  return view;
}

std::vector<channel::Path> ChannelOracle::paths_between(geom::Vec2 a,
                                                        geom::Vec2 b) const {
  const std::scoped_lock lock{mutex_};
  return *view_locked(a, b);
}

ChannelOracle::PathsView ChannelOracle::paths_view(geom::Vec2 a,
                                                   geom::Vec2 b) const {
  const std::scoped_lock lock{mutex_};
  return view_locked(a, b);
}

void ChannelOracle::query_batch(const channel::EndpointBatch& batch,
                                std::vector<PathsView>& out) const {
  out.clear();
  const std::size_t n = batch.size();
  const std::scoped_lock lock{mutex_};
  stats_.queries += n;
  stats_.batch_queries += n;
  if (n == 0) {
    return;
  }
  check_revision_locked();

  out.reserve(n);
  miss_batch_.clear();
  miss_query_.clear();
  miss_slot_.clear();
  miss_keys_.clear();

  // Probe pass. Grid rows and codebook sweeps repeat an endpoint pair back
  // to back; a key equal to its predecessor reuses the predecessor's answer
  // (or pending miss slot) without touching the hash table.
  Key prev_key{};
  bool have_prev = false;
  bool prev_was_miss = false;
  for (std::size_t q = 0; q < n; ++q) {
    const geom::Vec2 a = batch.a(q);
    const geom::Vec2 b = batch.b(q);
    const Key key = make_key(a, b);
    if (have_prev && key == prev_key) {
      ++stats_.batch_probes_saved;
      ++stats_.hits;  // served without a solve of its own
      if (prev_was_miss) {
        miss_query_.push_back(q);
        miss_slot_.push_back(miss_batch_.size() - 1);
        out.push_back(nullptr);
      } else {
        out.push_back(out.back());
      }
      continue;
    }
    prev_key = key;
    have_prev = true;
    if (const PathsView* hit = cache_.find(key, hash_key(key))) {
      ++stats_.hits;
      prev_was_miss = false;
      out.push_back(*hit);
      continue;
    }
    ++stats_.misses;
    prev_was_miss = true;
    miss_query_.push_back(q);
    miss_slot_.push_back(miss_batch_.size());
    miss_keys_.push_back(key);
    miss_batch_.push(a, b);
    out.push_back(nullptr);
  }

  if (miss_batch_.empty()) {
    note_arena_locked();
    return;
  }

  // One batched solve for every distinct miss, then fill the cache and the
  // placeholder slots. Misses allocate (the cache takes ownership of fresh
  // vectors); the zero-allocation guarantee is for fully-warmed batches.
  solver_.solve_batch(miss_batch_, miss_paths_, batch_ws_);
  slot_views_.clear();
  slot_views_.resize(miss_batch_.size());
  for (std::size_t s = 0; s < miss_batch_.size(); ++s) {
    auto paths = std::make_shared<std::vector<channel::Path>>();
    paths->reserve(miss_paths_.query_paths(s));
    const std::size_t last = miss_paths_.query_last(s);
    for (std::size_t p = miss_paths_.query_first(s); p < last; ++p) {
      paths->push_back(miss_paths_.path(p));
    }
    if (cache_.size() >= config_.max_entries) {
      drop_cache_locked();
    }
    PathsView view = std::move(paths);
    cache_.insert(miss_keys_[s], hash_key(miss_keys_[s]), view);
    slot_views_[s] = std::move(view);
  }
  for (std::size_t k = 0; k < miss_query_.size(); ++k) {
    out[miss_query_[k]] = slot_views_[miss_slot_[k]];
  }
  slot_views_.clear();  // drop scratch references, keep capacity
  note_arena_locked();
}

void ChannelOracle::note_arena_locked() const {
  const std::size_t bytes =
      miss_batch_.arena_bytes() + miss_paths_.arena_bytes() +
      batch_ws_.arena_bytes() +
      (miss_query_.capacity() + miss_slot_.capacity()) * sizeof(std::size_t) +
      miss_keys_.capacity() * sizeof(Key) +
      slot_views_.capacity() * sizeof(PathsView);
  if (bytes > stats_.arena_bytes) {
    stats_.arena_bytes = bytes;
  }
}

void ChannelOracle::rebind(const channel::Room& room) {
  const std::scoped_lock lock{mutex_};
  solver_.rebind(room);
  drop_cache_locked();
  seen_revision_ = room.revision();
}

void ChannelOracle::invalidate() const {
  const std::scoped_lock lock{mutex_};
  drop_cache_locked();
}

ChannelOracle::Stats ChannelOracle::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

void ChannelOracle::reset_stats() const {
  const std::scoped_lock lock{mutex_};
  stats_ = Stats{};
}

}  // namespace movr::core
