#include <core/channel_oracle.hpp>

#include <cmath>

namespace movr::core {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash step.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ChannelOracle::ChannelOracle(const channel::Room& room, Config config)
    : solver_{room, config.solver},
      config_{config},
      seen_revision_{room.revision()} {}

std::size_t ChannelOracle::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix(static_cast<std::uint64_t>(k.ax));
  h = mix(h ^ static_cast<std::uint64_t>(k.ay));
  h = mix(h ^ static_cast<std::uint64_t>(k.bx));
  h = mix(h ^ static_cast<std::uint64_t>(k.by));
  return static_cast<std::size_t>(h);
}

ChannelOracle::Key ChannelOracle::make_key(geom::Vec2 a, geom::Vec2 b) const {
  const double q = config_.quantum_m;
  return Key{std::llround(a.x / q), std::llround(a.y / q),
             std::llround(b.x / q), std::llround(b.y / q)};
}

void ChannelOracle::drop_cache_locked() const {
  cache_.clear();
  ++stats_.invalidations;
}

std::vector<channel::Path> ChannelOracle::paths_between(geom::Vec2 a,
                                                        geom::Vec2 b) const {
  const std::scoped_lock lock{mutex_};
  ++stats_.queries;
  const std::uint64_t revision = solver_.room().revision();
  if (revision != seen_revision_) {
    drop_cache_locked();
    seen_revision_ = revision;
  }
  const Key key = make_key(a, b);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  if (cache_.size() >= config_.max_entries) {
    drop_cache_locked();
  }
  auto paths = solver_.solve(a, b);
  cache_.emplace(key, paths);
  return paths;
}

void ChannelOracle::rebind(const channel::Room& room) {
  const std::scoped_lock lock{mutex_};
  solver_.rebind(room);
  drop_cache_locked();
  seen_revision_ = room.revision();
}

void ChannelOracle::invalidate() const {
  const std::scoped_lock lock{mutex_};
  drop_cache_locked();
}

ChannelOracle::Stats ChannelOracle::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

void ChannelOracle::reset_stats() const {
  const std::scoped_lock lock{mutex_};
  stats_ = Stats{};
}

}  // namespace movr::core
