// Backscatter beam-alignment protocol (paper Section 4.1).
//
// The reflector can neither transmit nor receive, so the AP measures for
// it. Incidence phase: the reflector sets BOTH beams to a candidate angle
// theta1 and on-off-modulates its amplifier at f2; the AP transmits a tone
// at f1, sweeps its own beam theta2, and measures the power coming back at
// f1 + f2 (separable from its self-leakage, which stays at f1). The
// (theta1, theta2) argmax aligns AP and reflector. Reflection phase: with
// the incidence side locked, the reflector sweeps its TX beam while the
// headset reports SNR estimates; the argmax points the reflector at the
// headset.
//
// Both phases run event-driven over the simulator: every reflector
// reconfiguration is a Bluetooth exchange (milliseconds), every AP-side
// re-steer is electronic (sub-microsecond), so the protocol's running time
// — the quantity Section 6 worries about — falls out of the simulation.
#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include <core/scene.hpp>
#include <rf/units.hpp>
#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>

namespace movr::core {

struct AngleSearchConfig {
  /// Candidate reflector angles (array-local radians). Default: the paper's
  /// 40..140 degree sector at 1 degree steps.
  std::vector<double> reflector_codebook;
  /// Candidate AP angles for the incidence phase.
  std::vector<double> ap_codebook;
  /// Conservative gain code used while searching: ~40 dB on the default
  /// front end, ~10 dB below the worst-case isolation of the leakage model,
  /// so the loop is stable at every beam combination while the backscatter
  /// sideband stays well above the AP's residual self-leakage. The gain
  /// controller re-optimises the gain after alignment.
  std::uint32_t search_gain_code{170};
  /// Wait after each Bluetooth command before trusting the new state
  /// (covers latency + jitter + link-layer retries).
  sim::Duration command_wait{std::chrono::milliseconds{10}};
  /// AP-side electronic re-steer settle time.
  sim::Duration steer_settle{std::chrono::microseconds{1}};
  /// Tone dwell per backscatter power measurement.
  sim::Duration tone_dwell{std::chrono::microseconds{10}};
  /// Dwell + report latency per headset SNR estimate (reflection phase).
  sim::Duration snr_report_time{std::chrono::milliseconds{1}};
  /// Hard deadline: the search ALWAYS completes by now + watchdog, with
  /// completed=false and a reason if it had to give up. Keeps a wedged
  /// control plane from leaving the simulator idle forever.
  sim::Duration watchdog{std::chrono::seconds{30}};
  /// Consecutive unacked Bluetooth commands before the search concludes
  /// the control channel is down and aborts early (completed=false).
  int abort_after_failed_commands{5};
};

struct IncidenceResult {
  double reflector_angle{0.0};  // theta1*, array-local radians
  double ap_angle{0.0};         // theta2*, array-local radians
  rf::DbmPower best_power{};
  sim::Duration duration{0};
  int bt_commands{0};
  int measurements{0};
  bool completed{false};
  /// Why the search gave up, when completed == false.
  std::string failure_reason;
};

struct ReflectionResult {
  double reflector_tx_angle{0.0};  // array-local radians
  rf::Decibels best_snr{-300.0};
  sim::Duration duration{0};
  int bt_commands{0};
  int measurements{0};
  bool completed{false};
  /// Why the search gave up, when completed == false.
  std::string failure_reason;
};

/// Phase 1: finds the AP<->reflector alignment. Leaves the reflector's RX
/// beam and the AP's beam at the winning angles, modulation off, and the
/// gain restored to its pre-search code.
class IncidenceSearch {
 public:
  using Callback = std::function<void(const IncidenceResult&)>;

  IncidenceSearch(sim::Simulator& simulator, sim::ControlChannel& control,
                  Scene& scene, MovrReflector& reflector,
                  AngleSearchConfig config, std::mt19937_64 rng);

  /// Begins the search; `done` fires (via the simulator) on completion.
  void start(Callback done);

 private:
  void step(std::size_t reflector_index);
  void finish();
  void fail(const std::string& reason);
  void send_command(sim::ControlMessage message);
  void complete();

  sim::Simulator& simulator_;
  sim::ControlChannel& control_;
  Scene& scene_;
  MovrReflector& reflector_;
  AngleSearchConfig config_;
  std::mt19937_64 rng_;
  Callback done_;
  IncidenceResult result_;
  std::uint32_t restore_gain_code_{0};
  sim::TimePoint started_{};
  sim::EventQueue::EventId watchdog_id_{0};
  int consecutive_failed_commands_{0};
  bool done_fired_{false};
};

/// Phase 2: points the reflector's TX beam at the headset. Precondition:
/// incidence alignment done (AP illuminating the reflector).
class ReflectionSearch {
 public:
  using Callback = std::function<void(const ReflectionResult&)>;

  ReflectionSearch(sim::Simulator& simulator, sim::ControlChannel& control,
                   Scene& scene, MovrReflector& reflector,
                   AngleSearchConfig config, std::mt19937_64 rng);

  void start(Callback done);

 private:
  void step(std::size_t index);
  void finish();
  void fail(const std::string& reason);
  void send_command(sim::ControlMessage message);
  void complete();

  sim::Simulator& simulator_;
  sim::ControlChannel& control_;
  Scene& scene_;
  MovrReflector& reflector_;
  AngleSearchConfig config_;
  std::mt19937_64 rng_;
  Callback done_;
  ReflectionResult result_;
  std::uint32_t restore_gain_code_{0};
  sim::TimePoint started_{};
  sim::EventQueue::EventId watchdog_id_{0};
  int consecutive_failed_commands_{0};
  bool done_fired_{false};
};

/// Default codebooks: the paper's sector sweep at `step_deg` resolution.
AngleSearchConfig make_search_config(double step_deg = 1.0);

}  // namespace movr::core
