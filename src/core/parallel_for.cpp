#include <core/parallel_for.hpp>

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace movr::core {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& chunk) {
  if (count == 0) {
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(resolve_threads(threads), count);
  if (workers <= 1) {
    chunk(0, count);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    try {
      chunk(begin, end);
    } catch (...) {
      const std::scoped_lock lock{error_mutex};
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  };

  // Worker w owns [w*count/workers, (w+1)*count/workers).
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back(run_range, w * count / workers,
                      (w + 1) * count / workers);
  }
  run_range(0, count / workers);
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace movr::core
