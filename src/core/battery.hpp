// Battery sizing for the untethered headset (paper Section 6).
//
// Cutting the HDMI cable still leaves the USB power cable; the paper argues
// a pocket battery replaces it: the HTC Vive draws at most 1500 mA, so a
// 5200 mAh pack runs it for 4-5 h. This model reproduces that arithmetic
// and lets the latency-budget bench include the reflector's own power draw.
#pragma once

namespace movr::core {

struct BatteryModel {
  double capacity_mah{5200.0};   // Anker Astro class pack
  double peak_load_ma{1500.0};   // HTC Vive maximum draw
  /// Sustained draw during play: the display peaks at 1.5 A but averages
  /// well below it — this is what the paper's "4-5 hours" arithmetic uses.
  double average_load_ma{1100.0};
  /// Usable fraction of rated capacity (conversion + cutoff losses).
  double efficiency{0.9};

  double runtime_hours() const {
    return capacity_mah * efficiency / average_load_ma;
  }

  /// Worst-case runtime at the peak draw.
  double worst_case_hours() const {
    return capacity_mah * efficiency / peak_load_ma;
  }
};

}  // namespace movr::core
