// Runtime link management: direct beam vs via-reflector, and back.
//
// This is the control loop that turns MoVR's pieces into an unbroken VR
// link (paper Fig. 5): the headset tracks its SNR; when it degrades (a hand
// went up, the head turned), the AP steers its beam to a reflector and the
// reflector's TX beam is pose-aimed at the headset; when probing shows the
// direct path healthy again, the link switches back. Handover latency is
// dominated by one Bluetooth exchange — inside a frame budget or two.
#pragma once

#include <random>

#include <core/beam_tracker.hpp>
#include <core/scene.hpp>
#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>

namespace movr::core {

class LinkManager {
 public:
  enum class Mode { kDirect, kViaReflector };

  struct Config {
    BeamTracker::Config tracker{};
    /// While on a reflector, the direct path is probed at this cadence
    /// (one beam-training slot, negligible airtime).
    sim::Duration probe_interval{std::chrono::milliseconds{100}};
    /// Probed direct SNR must exceed the headset's recovery threshold this
    /// many times in a row before switching back.
    int probes_to_recover{3};
    /// Reflector TX beam is re-aimed when the tracked headset drifts more
    /// than this off the current beam (radians). ~ beamwidth / 4.
    double retarget_threshold{0.04};
    /// One Bluetooth exchange: the handover's dominant cost.
    sim::Duration bt_wait{std::chrono::milliseconds{10}};
  };

  LinkManager(sim::Simulator& simulator, Scene& scene, std::mt19937_64 rng)
      : LinkManager{simulator, scene, rng, Config{}} {}
  LinkManager(sim::Simulator& simulator, Scene& scene, std::mt19937_64 rng,
              Config config);

  /// Per-frame tick: maintains steering for the current mode, feeds the
  /// headset's SNR tracker, and drives handovers. Returns the true SNR the
  /// headset experienced this frame (before estimation noise).
  rf::Decibels on_frame();

  Mode mode() const { return mode_; }
  bool handover_in_progress() const { return handover_in_progress_; }

  struct Stats {
    int handovers_to_reflector{0};
    int handovers_to_direct{0};
    int retargets{0};
    sim::Duration time_on_reflector{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  void steer_for_direct();
  rf::Decibels current_true_snr();
  void begin_handover_to_reflector();
  void probe_direct_path();
  std::size_t best_reflector() const;

  sim::Simulator& simulator_;
  Scene& scene_;
  std::mt19937_64 rng_;
  Config config_;
  Mode mode_{Mode::kDirect};
  bool handover_in_progress_{false};
  std::size_t active_reflector_{0};
  int good_probes_{0};
  sim::TimePoint last_probe_{};
  sim::TimePoint reflector_since_{};
  Stats stats_;
};

}  // namespace movr::core
