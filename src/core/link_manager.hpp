// Runtime link management: direct beam vs via-reflector, and back.
//
// This is the control loop that turns MoVR's pieces into an unbroken VR
// link (paper Fig. 5): the headset tracks its SNR; when it degrades (a hand
// went up, the head turned), the AP steers its beam to a reflector and the
// reflector's TX beam is pose-aimed at the headset; when probing shows the
// direct path healthy again, the link switches back. Handover latency is
// dominated by one Bluetooth exchange — inside a frame budget or two.
//
// The manager is an explicit state machine:
//
//   kDirect --headset degraded, usable reflector--> kHandoverPending
//   kHandoverPending --commit lands--> kViaReflector
//   kHandoverPending --timeout / bad via-SNR--> kDirect (+ quarantine)
//   kViaReflector --direct probes recover--> kDirect
//   kViaReflector --reflector goes bad--> next reflector, or kDegraded
//   kDirect/kViaReflector --degraded, nothing usable--> kDegraded
//   kDegraded --direct recovers--> kDirect;  --reflector probe due-->
//   kHandoverPending
//
// kDegraded means: reflectors exist but none is currently usable and the
// direct path is below par. The link stays up best-effort on the direct
// beam; rate control is expected to pin the lowest MCS (see
// LinkStrategy::pin_lowest_rate). A scene with zero reflectors never
// enters kDegraded — there is nothing to fall back FROM.
//
// Reflector supervision (quarantine, backoff re-probes, reboot detection
// via boot-epoch mismatch, calibration replay) lives in core::HealthMonitor;
// the manager holds the per-reflector calibration records it replays.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <vector>

#include <core/beam_tracker.hpp>
#include <core/health.hpp>
#include <core/occlusion_forecaster.hpp>
#include <core/scene.hpp>
#include <log/recorder.hpp>
#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>

namespace movr::core {

class LinkManager {
 public:
  enum class Mode { kDirect, kHandoverPending, kViaReflector, kDegraded };

  struct Config {
    BeamTracker::Config tracker{};
    /// While on a reflector (or degraded), the direct path is probed at
    /// this cadence (one beam-training slot, negligible airtime).
    sim::Duration probe_interval{std::chrono::milliseconds{100}};
    /// Probed direct SNR must exceed the headset's recovery threshold this
    /// many times in a row before switching back.
    int probes_to_recover{3};
    /// Reflector TX beam is re-aimed when the tracked headset drifts more
    /// than this off the current beam (radians). ~ beamwidth / 4.
    double retarget_threshold{0.04};
    /// One Bluetooth exchange: the handover's dominant cost.
    sim::Duration bt_wait{std::chrono::milliseconds{10}};
    /// A pending handover that has not committed by now + handover_timeout
    /// is abandoned: back to kDirect, target quarantined.
    sim::Duration handover_timeout{std::chrono::milliseconds{40}};
    /// A committed or in-service via-link below this SNR counts as a bad
    /// observation against the reflector.
    rf::Decibels min_usable_snr{10.0};
    /// Models Bluetooth reachability of a reflector. Every register write
    /// the manager performs stands for a control-link exchange; when this
    /// hook is set and returns false, those writes fail like dropped BT
    /// frames instead of mutating reflector state: handover commits abort
    /// (and bench the target), in-service retargets are skipped. Wire it
    /// to the control channel's partition state so the manager cannot
    /// command a reflector across a partition. Unset = always reachable.
    std::function<bool(std::size_t)> reflector_reachable;
    /// Multi-user arbitration (arena::Coordinator): a reflector is a shared
    /// physical resource, so before a handover targets one the manager asks
    /// for a lease. A denial is an ordinary, transient outcome — the
    /// manager tries the next-best usable reflector, and if every usable
    /// candidate is leased elsewhere it stays in its current mode and asks
    /// again next frame (the retry IS the aging signal the arbiter uses).
    /// A denial never quarantines: the reflector is healthy, just busy.
    /// Unset = single-user room, every reflector is always ours.
    std::function<bool(std::size_t)> reflector_acquire;
    /// Releases a held lease: called when the manager leaves a reflector
    /// for any reason except an external revocation (recovered to direct,
    /// handover failed, reflector quarantined or rebooted mid-service).
    std::function<void(std::size_t)> reflector_release;
    /// Skip handover candidates whose via path is physically occluded:
    /// when every oracle path on either hop (AP->reflector or
    /// reflector->headset) is obstructed by more than occlusion_skip_db,
    /// no retargeting can make the commit succeed, so attempting it only
    /// burns bt_wait — and, in a multi-user room, holds a lease another
    /// user could have used. Off by default: a single-user manager's
    /// failed attempt is harmless and the probe result feeds health.
    bool skip_occluded_candidates{false};
    rf::Decibels occlusion_skip_db{12.0};
    HealthMonitor::Config health{};
    // --- proactive (forecast-driven) handover -------------------------
    /// Risk windows below this confidence are ignored outright.
    double proactive_confidence{0.6};
    /// Consecutive in-window ticks before the manager acts — hysteresis
    /// against one-tick forecast blips.
    int proactive_ticks_to_act{2};
    /// Proactive handovers allowed per risk window. Flapping forecasts
    /// re-delivering the same window cannot thrash past this budget.
    int proactive_budget_per_window{1};
    /// Minimum spacing between proactive handovers, across windows. A
    /// chaos forecaster fabricating a fresh window every tick is rate
    /// limited to one handover per cooldown.
    sim::Duration proactive_cooldown{std::chrono::milliseconds{300}};
    /// Session event-log sink. Every state transition the manager makes
    /// (handover begin/commit/abort, lease traffic, degraded entry) is
    /// recorded when set; unset costs one branch per site and no RNG.
    log::Recorder* recorder{nullptr};
  };

  LinkManager(sim::Simulator& simulator, Scene& scene, std::mt19937_64 rng)
      : LinkManager{simulator, scene, rng, Config{}} {}
  LinkManager(sim::Simulator& simulator, Scene& scene, std::mt19937_64 rng,
              Config config);

  /// Per-frame tick: maintains steering for the current mode, feeds the
  /// headset's SNR tracker, and drives handovers. Returns the true SNR the
  /// headset experienced this frame (before estimation noise).
  rf::Decibels on_frame();

  /// Feeds one forecast risk window (call before on_frame each tick). The
  /// manager merges overlapping windows, applies confidence + hysteresis
  /// gates, and — from kDirect, within the per-window budget and global
  /// cooldown — starts a handover *before* the SNR collapses. A window is
  /// a belief: acting on it costs one ordinary handover, never more.
  void on_risk_window(const LinkRiskWindow& window);

  /// True while inside a (merged) accepted risk window. The session uses
  /// this to arm speculative dual-path reception.
  bool risk_active() const { return simulator_.now() < risk_until_; }

  /// True SNR of the path the link is NOT currently riding — the direct
  /// beam while on a reflector, the best usable reflector's relay while
  /// direct. Evaluated without disturbing live steering (save/restore,
  /// like probe_direct_path); the reflector's TX beam is taken as-is (a
  /// hot spare keeps its last aim — no Bluetooth is spent on a belief).
  /// nullopt when there is no usable alternate.
  std::optional<rf::Decibels> speculative_alt_snr();

  Mode mode() const { return mode_; }
  bool handover_in_progress() const { return mode_ == Mode::kHandoverPending; }
  bool degraded() const { return mode_ == Mode::kDegraded; }
  std::size_t active_reflector() const { return active_reflector_; }

  /// The reflector this manager currently holds a lease on (pending or in
  /// service), nullopt when no acquire hook is wired or no lease is held.
  /// The coordinator renews this lease with the arbiter each control tick.
  std::optional<std::size_t> leased_reflector() const {
    return holds_lease_ ? std::optional<std::size_t>{active_reflector_}
                        : std::nullopt;
  }

  /// External lease revocation (the arbiter handed the reflector to an
  /// aged-out waiter). Effective immediately: a pending handover to it is
  /// cancelled, an in-service link drops back to kDirect — the next frame
  /// re-runs ordinary target selection (another reflector, or degraded).
  /// The reflector is NOT quarantined: it is healthy, just no longer ours.
  /// No-op unless the manager is actually on (or moving to) `index`.
  void revoke_reflector(std::size_t index);

  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

  struct Stats {
    int handovers_to_reflector{0};
    int handovers_to_direct{0};
    int retargets{0};
    int failed_handovers{0};
    int degraded_entries{0};
    sim::Duration time_on_reflector{0};
    /// Accepted (confidence-passing) risk windows, after merging.
    int risk_windows{0};
    /// Handovers started by a forecast rather than an SNR collapse.
    int proactive_handovers{0};
    /// Handover attempts where every usable reflector's lease was denied
    /// (multi-user contention; zero without an acquire hook).
    int denied_handovers{0};
    /// Leases the arbiter revoked out from under us mid-pending/service.
    int lease_revocations{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  /// The AP-side memory of how a reflector was calibrated. Replayed over
  /// Bluetooth when the reflector reboots (its own registers are wiped;
  /// ours are not).
  struct CalibrationRecord {
    double rx_angle{0.0};
    std::uint32_t gain_code{0};
    std::uint32_t boot_epoch{0};
    bool captured{false};
  };

  void steer_for_direct();
  bool reachable(std::size_t index) const;
  bool via_occluded(const MovrReflector& reflector) const;
  bool acquire_lease(std::size_t index);
  void release_lease();
  rf::Decibels current_true_snr();
  void begin_handover_to_reflector();
  void commit_handover(std::size_t target, std::uint64_t seq);
  void abandon_handover(std::size_t target, std::uint64_t seq);
  void handover_failed(std::size_t target, const std::string& reason,
                       std::int64_t reason_code);
  void leave_reflector();
  void probe_direct_path();
  void degraded_tick();
  /// Emit the risk-window close (and spec disarm) records once the merged
  /// window has run out; recording only, never behavioral.
  void note_risk_transitions();
  std::optional<rf::Decibels> speculative_alt_snr_impl();
  void enter_degraded();
  void recalibrate(std::size_t index);
  void capture_calibration(std::size_t index);
  void ensure_records();
  std::optional<std::size_t> best_usable_reflector();

  sim::Simulator& simulator_;
  Scene& scene_;
  std::mt19937_64 rng_;
  Config config_;
  Mode mode_{Mode::kDirect};
  std::size_t active_reflector_{0};
  /// True while a lease acquired through Config::reflector_acquire on
  /// `active_reflector_` is outstanding (pending handover or in service).
  bool holds_lease_{false};
  int good_probes_{0};
  sim::TimePoint last_probe_{};
  sim::TimePoint reflector_since_{};
  HealthMonitor health_;
  std::vector<CalibrationRecord> records_;
  /// Handover target candidates (-via_snr, index), reused per attempt so
  /// selection never allocates once warmed.
  std::vector<std::pair<double, std::size_t>> candidate_scratch_;
  /// Monotonic handover sequence number: bumping it invalidates any
  /// commit/timeout events still in flight for an older attempt.
  std::uint64_t pending_seq_{0};
  sim::EventQueue::EventId commit_event_{0};
  sim::EventQueue::EventId timeout_event_{0};
  /// End of the current merged risk window; in the past = no risk.
  sim::TimePoint risk_until_{};
  int risky_ticks_{0};
  int proactive_used_{0};
  /// Event-log mirrors of the predictive tier (records only; unlogged
  /// runs never read them, keeping logged/unlogged runs bit-identical).
  bool risk_logged_open_{false};
  bool spec_logged_armed_{false};
  bool proactive_fired_{false};
  sim::TimePoint last_proactive_{};
  Stats stats_;
};

}  // namespace movr::core
