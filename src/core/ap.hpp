// The mmWave access point attached to the game PC.
//
// Besides streaming VR frames, the AP is the measuring instrument of the
// angle-search protocol (Section 4.1): it transmits a tone at f1 while
// *simultaneously* listening for the reflector's modulated backscatter at
// f1 + f2. Its own TX leaks into its RX (it is not full-duplex), so the
// receive path runs the arriving signal through a bandpass filter centred
// on f1 + f2: the reflected sideband passes, the self-leakage at f1 is
// rejected by the filter's stopband attenuation.
#pragma once

#include <random>

#include <phy/radio.hpp>
#include <rf/units.hpp>

namespace movr::core {

class ApRadio {
 public:
  struct Config {
    rf::PhasedArray::Config array{};
    rf::DbmPower tx_power{0.0};
    /// TX->RX antenna isolation at the AP (it transmits and receives at
    /// the same time during backscatter measurement).
    rf::Decibels self_isolation{30.0};
    /// Stopband rejection of the f1+f2 measurement filter at f1. The
    /// offset f2 can be chosen megahertz away from f1, so a narrowband
    /// measurement filter achieves deep rejection.
    rf::Decibels filter_rejection{70.0};
    /// Measurement bandwidth around f1+f2 (narrow: the backscatter tone).
    double measurement_bandwidth_hz{1.0e6};
    rf::Decibels measurement_noise_figure{7.0};
    /// rms error of one power reading, dB.
    double measurement_sigma_db{0.5};
  };

  ApRadio(geom::Vec2 position, double orientation_rad)
      : ApRadio{position, orientation_rad, Config{}} {}
  ApRadio(geom::Vec2 position, double orientation_rad, Config config);

  phy::RadioNode& node() { return node_; }
  const phy::RadioNode& node() const { return node_; }
  const Config& config() const { return config_; }

  /// Noise floor of the narrowband backscatter measurement.
  rf::DbmPower measurement_floor() const;

  /// Residual self-leakage power that survives the f1+f2 filter.
  rf::DbmPower residual_leakage() const;

  /// One reading of the backscatter detector given the true sideband power
  /// arriving at the RX connector: sideband + residual leakage + noise,
  /// with measurement error.
  rf::DbmPower measure_backscatter(rf::DbmPower sideband_at_rx,
                                   std::mt19937_64& rng) const;

 private:
  phy::RadioNode node_;
  Config config_;
};

}  // namespace movr::core
