#include <core/health.hpp>

#include <algorithm>

namespace movr::core {

void HealthMonitor::track(std::size_t n) {
  if (entries_.size() < n) {
    entries_.resize(n);
  }
}

void HealthMonitor::note_good(std::size_t i) {
  track(i + 1);
  Entry& e = entries_[i];
  if (e.state == State::kHealthy) {
    e.consecutive_bad = 0;
  }
}

void HealthMonitor::enter_quarantine(std::size_t i, sim::TimePoint now,
                                     const std::string& reason,
                                     bool extend_backoff) {
  Entry& e = entries_[i];
  if (e.state == State::kHealthy && recorder_ != nullptr) {
    recorder_->record_at(now, log::EventKind::kHealthQuarantine,
                         {{"reflector", static_cast<std::int64_t>(i)}});
  }
  if (e.state == State::kQuarantined && extend_backoff) {
    const auto grown = std::chrono::duration_cast<sim::Duration>(
        e.backoff * config_.backoff_multiplier);
    e.backoff = std::min(grown, config_.backoff_max);
  } else if (e.state == State::kHealthy || e.backoff == sim::Duration::zero()) {
    e.backoff = config_.backoff_initial;
    ++stats_.quarantines;
  }
  e.state = State::kQuarantined;
  e.quarantined_until = now + e.backoff;
  e.consecutive_bad = 0;
  e.last_reason = reason;
}

void HealthMonitor::note_bad(std::size_t i, sim::TimePoint now,
                             const std::string& reason) {
  track(i + 1);
  Entry& e = entries_[i];
  if (e.state == State::kQuarantined) {
    return;  // already benched; re-probe outcomes go via note_probe_result
  }
  ++e.consecutive_bad;
  if (e.consecutive_bad >= config_.bad_to_quarantine) {
    enter_quarantine(i, now, reason, /*extend_backoff=*/false);
  }
}

void HealthMonitor::quarantine(std::size_t i, sim::TimePoint now,
                               const std::string& reason) {
  track(i + 1);
  enter_quarantine(i, now, reason, /*extend_backoff=*/false);
}

void HealthMonitor::extend_quarantine(std::size_t i, sim::TimePoint until) {
  track(i + 1);
  Entry& e = entries_[i];
  if (e.state == State::kQuarantined) {
    e.quarantined_until = std::max(e.quarantined_until, until);
  }
}

bool HealthMonitor::quarantined(std::size_t i) const {
  return i < entries_.size() && entries_[i].state == State::kQuarantined;
}

bool HealthMonitor::probe_due(std::size_t i, sim::TimePoint now) const {
  return quarantined(i) && now >= entries_[i].quarantined_until;
}

bool HealthMonitor::usable(std::size_t i, sim::TimePoint now) const {
  if (i >= entries_.size()) {
    return true;  // untracked: assume healthy
  }
  return entries_[i].state == State::kHealthy || probe_due(i, now);
}

void HealthMonitor::note_probe_result(std::size_t i, sim::TimePoint now,
                                      bool good) {
  track(i + 1);
  Entry& e = entries_[i];
  ++stats_.reprobes;
  if (good) {
    e.state = State::kHealthy;
    e.consecutive_bad = 0;
    e.backoff = sim::Duration::zero();
    e.last_reason.clear();
    ++stats_.restored;
    if (recorder_ != nullptr) {
      recorder_->record_at(now, log::EventKind::kHealthRestore,
                           {{"reflector", static_cast<std::int64_t>(i)}});
    }
    return;
  }
  if (recorder_ != nullptr) {
    recorder_->record_at(now, log::EventKind::kHealthReprobe,
                         {{"reflector", static_cast<std::int64_t>(i)},
                          {"good", 0}});
  }
  enter_quarantine(i, now, e.last_reason.empty() ? "re-probe failed"
                                                 : e.last_reason,
                   /*extend_backoff=*/true);
}

void HealthMonitor::note_reboot(std::size_t i, sim::TimePoint now) {
  track(i + 1);
  ++stats_.reboots_detected;
  entries_[i].needs_recalibration = true;
  enter_quarantine(i, now, "reboot detected (epoch mismatch)",
                   /*extend_backoff=*/false);
}

void HealthMonitor::note_divergence(std::size_t i, sim::TimePoint now,
                                    const std::string& reason) {
  track(i + 1);
  ++stats_.divergences;
  entries_[i].needs_recalibration = true;
  enter_quarantine(i, now, reason, /*extend_backoff=*/false);
}

bool HealthMonitor::needs_recalibration(std::size_t i) const {
  return i < entries_.size() && entries_[i].needs_recalibration;
}

void HealthMonitor::note_recalibrated(std::size_t i) {
  track(i + 1);
  entries_[i].needs_recalibration = false;
  ++stats_.recalibrations;
}

}  // namespace movr::core
