// The MoVR reflector device: the paper's contribution, as deployable unit.
//
// A reflector is an analog front end (two phased arrays joined by a VGA)
// stuck to a wall, plus an Arduino-class controller reachable over the
// Bluetooth control channel. It has NO transmit or receive chains: the
// control surface is exactly {rx beam angle, tx beam angle, gain DAC code,
// modulation on/off} and the only sensor is the amplifier's supply-current
// monitor. Everything the reflector "knows" about RF it must learn through
// the protocols in angle_search.hpp and gain_control.hpp.
#pragma once

#include <geom/angle.hpp>
#include <geom/vec2.hpp>
#include <hw/front_end.hpp>
#include <sim/control_channel.hpp>

namespace movr::core {

class MovrReflector {
 public:
  MovrReflector(geom::Vec2 position, double orientation_rad,
                hw::ReflectorFrontEnd::Config front_end_config = {});

  geom::Vec2 position() const { return position_; }
  /// Global azimuth of the arrays' boresight (pointing into the room).
  double orientation() const { return orientation_; }

  /// Global azimuth -> array-local angle (boresight = pi/2), and back.
  double to_local(double global_azimuth) const {
    return geom::wrap_two_pi(global_azimuth - orientation_ + geom::kPi / 2.0);
  }
  double to_global(double local_angle) const {
    return geom::wrap_pi(local_angle + orientation_ - geom::kPi / 2.0);
  }

  hw::ReflectorFrontEnd& front_end() { return front_end_; }
  const hw::ReflectorFrontEnd& front_end() const { return front_end_; }

  /// Control-plane dispatch: the message vocabulary the Arduino accepts.
  /// Topics: "rx_angle" (local radians), "tx_angle" (local radians),
  /// "both_angles" (sets rx == tx, used during angle search),
  /// "gain_code", "modulate" (value != 0 -> on).
  /// Unknown topics are counted and ignored (robustness to version skew).
  void handle(const sim::ControlMessage& message);

  /// Name under which the reflector attaches to the control channel.
  const std::string& control_name() const { return control_name_; }
  void set_control_name(std::string name) { control_name_ = std::move(name); }

  std::uint64_t unknown_messages() const { return unknown_messages_; }
  /// Payloads rejected by firmware validation (non-finite or wildly
  /// out-of-range values, e.g. an undetectably corrupted gain command).
  std::uint64_t rejected_messages() const { return rejected_messages_; }

  /// True when `value` is acceptable as an angle command payload.
  static bool valid_angle(double value);

  /// Power loss + reboot: front-end registers wiped (beams, gain,
  /// modulation), calibration gone. The boot epoch increments so the AP
  /// side can detect the reboot as an epoch mismatch and schedule
  /// recalibration (see core::HealthMonitor).
  void power_cycle();
  std::uint32_t boot_epoch() const { return boot_epoch_; }

 private:
  geom::Vec2 position_;
  double orientation_;
  hw::ReflectorFrontEnd front_end_;
  std::string control_name_{"reflector"};
  std::uint64_t unknown_messages_{0};
  std::uint64_t rejected_messages_{0};
  std::uint32_t boot_epoch_{0};
};

}  // namespace movr::core
