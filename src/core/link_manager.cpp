#include <core/link_manager.hpp>

#include <algorithm>

#include <geom/angle.hpp>

namespace movr::core {

LinkManager::LinkManager(sim::Simulator& simulator, Scene& scene,
                         std::mt19937_64 rng, Config config)
    : simulator_{simulator},
      scene_{scene},
      rng_{rng},
      config_{config},
      health_{config.health} {
  ensure_records();
}

void LinkManager::ensure_records() {
  const std::size_t n = scene_.reflector_count();
  if (records_.size() < n) {
    records_.resize(n);
  }
  health_.track(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!records_[i].captured) {
      capture_calibration(i);
    }
  }
}

void LinkManager::capture_calibration(std::size_t index) {
  const auto& fe = scene_.reflector(index).front_end();
  CalibrationRecord& record = records_[index];
  record.rx_angle = fe.rx_array().steering();
  record.gain_code = fe.gain_code();
  record.boot_epoch = scene_.reflector(index).boot_epoch();
  record.captured = true;
}

void LinkManager::recalibrate(std::size_t index) {
  // Replay the stored calibration over the control plane. The RX beam and
  // gain code come from the AP's record; the TX beam is re-derived from the
  // tracked headset pose at commit time (BeamTracker), so only the parts
  // the reflector cannot rediscover on its own are replayed here.
  auto& reflector = scene_.reflector(index);
  const CalibrationRecord& record = records_[index];
  reflector.front_end().steer_rx(record.rx_angle);
  reflector.front_end().set_gain_code(record.gain_code);
  records_[index].boot_epoch = reflector.boot_epoch();
  health_.note_recalibrated(index);
}

bool LinkManager::reachable(std::size_t index) const {
  return !config_.reflector_reachable || config_.reflector_reachable(index);
}

bool LinkManager::via_occluded(const MovrReflector& reflector) const {
  const auto hop_occluded = [&](geom::Vec2 a, geom::Vec2 b) {
    const auto paths = scene_.paths_view(a, b);
    for (const channel::Path& path : *paths) {
      if (path.obstruction.value() <= config_.occlusion_skip_db.value()) {
        return false;
      }
    }
    return true;  // no path on this hop clears the obstruction threshold
  };
  return hop_occluded(scene_.ap().node().position(), reflector.position()) ||
         hop_occluded(reflector.position(),
                      scene_.headset().node().position());
}

bool LinkManager::acquire_lease(std::size_t index) {
  if (!config_.reflector_acquire) {
    return true;  // single-user room: every reflector is always ours
  }
  if (holds_lease_ && active_reflector_ == index) {
    return true;  // already ours
  }
  release_lease();  // at most one lease per user at a time
  if (!config_.reflector_acquire(index)) {
    if (config_.recorder) {
      config_.recorder->record(
          log::EventKind::kLeaseDeny,
          {{"reflector", static_cast<std::int64_t>(index)}});
    }
    return false;
  }
  holds_lease_ = true;
  if (config_.recorder) {
    config_.recorder->record(
        log::EventKind::kLeaseAcquire,
        {{"reflector", static_cast<std::int64_t>(index)}});
  }
  return true;
}

void LinkManager::release_lease() {
  if (!holds_lease_) {
    return;
  }
  holds_lease_ = false;
  if (config_.reflector_release) {
    config_.reflector_release(active_reflector_);
  }
  if (config_.recorder) {
    config_.recorder->record(
        log::EventKind::kLeaseRelease,
        {{"reflector", static_cast<std::int64_t>(active_reflector_)}});
  }
}

void LinkManager::revoke_reflector(std::size_t index) {
  if (mode_ == Mode::kHandoverPending && active_reflector_ == index) {
    // The target was handed to an aged-out waiter mid-flight: the commit
    // would program a reflector that is no longer ours. Cancel the attempt;
    // next frame re-runs ordinary target selection.
    simulator_.cancel(commit_event_);
    simulator_.cancel(timeout_event_);
    ++pending_seq_;
    holds_lease_ = false;
    mode_ = Mode::kDirect;
    ++stats_.lease_revocations;
    if (config_.recorder) {
      config_.recorder->record(
          log::EventKind::kLeaseRevoke,
          {{"reflector", static_cast<std::int64_t>(index)}, {"pending", 1}});
    }
    return;
  }
  if (mode_ == Mode::kViaReflector && active_reflector_ == index) {
    leave_reflector();
    holds_lease_ = false;
    mode_ = Mode::kDirect;
    good_probes_ = 0;
    ++stats_.lease_revocations;
    if (config_.recorder) {
      config_.recorder->record(
          log::EventKind::kLeaseRevoke,
          {{"reflector", static_cast<std::int64_t>(index)}, {"pending", 0}});
    }
  }
}

void LinkManager::steer_for_direct() {
  scene_.ap().node().steer_toward(scene_.headset().node().position());
  scene_.headset().node().face_toward(scene_.ap().node().position());
}

std::optional<std::size_t> LinkManager::best_usable_reflector() {
  ensure_records();
  // Strongest illumination among reflectors the health monitor will let us
  // touch (healthy, or quarantined with the backoff expired = probe due).
  std::optional<std::size_t> best;
  double best_snr = -1e9;
  for (std::size_t i = 0; i < scene_.reflector_count(); ++i) {
    if (!health_.usable(i, simulator_.now())) {
      continue;
    }
    const double snr = scene_.via_snr(scene_.reflector(i)).snr.value();
    if (snr > best_snr) {
      best_snr = snr;
      best = i;
    }
  }
  return best;
}

rf::Decibels LinkManager::current_true_snr() {
  if (mode_ != Mode::kViaReflector) {
    // kDirect, kDegraded, and kHandoverPending all ride the direct beam:
    // a pending handover has not moved any hardware yet, and degraded mode
    // is best-effort on whatever the direct path still carries.
    steer_for_direct();
    return scene_.direct_snr();
  }
  auto& reflector = scene_.reflector(active_reflector_);
  // AP illuminates the reflector; headset listens toward it.
  scene_.ap().node().steer_toward(reflector.position());
  scene_.headset().node().face_toward(reflector.position());
  // Re-aim the reflector's TX beam if the player walked out of it — a BT
  // exchange, so only when the reflector is reachable (the beam goes stale
  // across a partition; the SNR decay is the honest consequence).
  const double tracked = scene_.true_reflector_angle_to_headset(reflector);
  const double current = reflector.front_end().tx_array().steering();
  if (reachable(active_reflector_) &&
      geom::angular_distance(tracked, current) > config_.retarget_threshold) {
    const auto retarget =
        BeamTracker::retarget(scene_, reflector, rng_, config_.tracker);
    ++stats_.retargets;
    (void)retarget;  // steering applied; cost is one BT exchange in flight
  }
  return scene_.via_snr(reflector).snr;
}

void LinkManager::enter_degraded() {
  if (mode_ == Mode::kDegraded) {
    return;
  }
  mode_ = Mode::kDegraded;
  ++stats_.degraded_entries;
  good_probes_ = 0;
  if (config_.recorder) {
    config_.recorder->record(log::EventKind::kDegradedEnter, {});
  }
}

void LinkManager::handover_failed(std::size_t target,
                                  const std::string& reason,
                                  std::int64_t reason_code) {
  ++stats_.failed_handovers;
  if (config_.recorder) {
    config_.recorder->record(
        log::EventKind::kHandoverAbort,
        {{"reflector", static_cast<std::int64_t>(target)},
         {"reason", reason_code}});
  }
  release_lease();
  if (health_.quarantined(target)) {
    // This attempt WAS the re-probe; its failure doubles the backoff.
    health_.note_probe_result(target, simulator_.now(), /*good=*/false);
  } else {
    health_.quarantine(target, simulator_.now(), reason);
  }
  // Back to the direct path; the next frame decides whether another
  // reflector is worth trying or the link is plain degraded.
  mode_ = Mode::kDirect;
}

void LinkManager::begin_handover_to_reflector() {
  if (scene_.reflector_count() == 0) {
    return;  // nothing to fall back to — and nothing to be degraded FROM
  }
  ensure_records();
  // Usable candidates, strongest illumination first (ties: lower index).
  // A leased-out target is an explicit denial, not a fault: skip to the
  // next-best reflector, and when every usable one is taken stay in the
  // current mode and retry next frame — the arbiter ages waiting users in
  // the meantime, so starvation resolves deterministically.
  candidate_scratch_.clear();
  for (std::size_t i = 0; i < scene_.reflector_count(); ++i) {
    if (!health_.usable(i, simulator_.now())) {
      continue;
    }
    if (config_.skip_occluded_candidates &&
        via_occluded(scene_.reflector(i))) {
      continue;  // no steering routes around a body in the hop
    }
    candidate_scratch_.emplace_back(
        -scene_.via_snr(scene_.reflector(i)).snr.value(), i);
  }
  if (candidate_scratch_.empty()) {
    enter_degraded();
    return;
  }
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end());
  for (const auto& [neg_snr, index] : candidate_scratch_) {
    if (!acquire_lease(index)) {
      continue;
    }
    mode_ = Mode::kHandoverPending;
    active_reflector_ = index;
    const std::uint64_t seq = ++pending_seq_;
    if (config_.recorder) {
      config_.recorder->record(
          log::EventKind::kHandoverBegin,
          {{"reflector", static_cast<std::int64_t>(index)},
           {"seq", static_cast<std::int64_t>(seq)}});
    }
    commit_event_ = simulator_.after(
        config_.bt_wait, [this, t = index, seq] { commit_handover(t, seq); });
    timeout_event_ =
        simulator_.after(config_.handover_timeout,
                         [this, t = index, seq] { abandon_handover(t, seq); });
    return;
  }
  ++stats_.denied_handovers;
}

void LinkManager::commit_handover(std::size_t target, std::uint64_t seq) {
  if (seq != pending_seq_ || mode_ != Mode::kHandoverPending) {
    return;  // stale: a newer attempt superseded this one
  }
  simulator_.cancel(timeout_event_);
  ++pending_seq_;

  if (!reachable(target)) {
    // The commit exchange never crossed the control link: no reflector
    // register moved. Fail the handover so the target is benched instead
    // of being retried every frame.
    handover_failed(target, "control link unreachable at commit",
                    log::kAbortUnreachable);
    return;
  }

  auto& reflector = scene_.reflector(target);
  if (health_.needs_recalibration(target)) {
    recalibrate(target);
  } else if (reflector.boot_epoch() != records_[target].boot_epoch) {
    // The reflector answered, but as a newborn: its registers are wiped.
    // Quarantine + schedule recalibration; the post-backoff re-probe
    // replays the stored calibration and tries again.
    health_.note_reboot(target, simulator_.now());
    ++stats_.failed_handovers;
    if (config_.recorder) {
      config_.recorder->record(
          log::EventKind::kHandoverAbort,
          {{"reflector", static_cast<std::int64_t>(target)},
           {"reason", log::kAbortReboot}});
    }
    release_lease();
    mode_ = Mode::kDirect;
    return;
  }

  scene_.ap().node().steer_toward(reflector.position());
  BeamTracker::retarget(scene_, reflector, rng_, config_.tracker);
  scene_.headset().node().face_toward(reflector.position());

  const auto via = scene_.via_snr(reflector);
  if (!via.usable || via.snr < config_.min_usable_snr) {
    handover_failed(target, "via-link below usable SNR at commit",
                    log::kAbortLowSnr);
    return;
  }
  if (health_.quarantined(target)) {
    health_.note_probe_result(target, simulator_.now(), /*good=*/true);
  } else {
    health_.note_good(target);
  }
  active_reflector_ = target;
  mode_ = Mode::kViaReflector;
  good_probes_ = 0;
  reflector_since_ = simulator_.now();
  ++stats_.handovers_to_reflector;
  if (config_.recorder) {
    config_.recorder->record(
        log::EventKind::kHandoverCommit,
        {{"reflector", static_cast<std::int64_t>(target)}});
  }
}

void LinkManager::abandon_handover(std::size_t target, std::uint64_t seq) {
  if (seq != pending_seq_ || mode_ != Mode::kHandoverPending) {
    return;
  }
  simulator_.cancel(commit_event_);
  ++pending_seq_;
  handover_failed(target, "handover commit timed out", log::kAbortTimeout);
}

void LinkManager::leave_reflector() {
  stats_.time_on_reflector += simulator_.now() - reflector_since_;
}

void LinkManager::probe_direct_path() {
  // Hypothetical direct-link quality if both ends steered at each other.
  // Evaluated without disturbing the live steering: save and restore.
  const double ap_steer = scene_.ap().node().array().steering();
  const double hs_steer = scene_.headset().node().array().steering();
  steer_for_direct();
  const rf::Decibels direct = scene_.direct_snr();
  scene_.ap().node().array().steer(ap_steer);
  scene_.headset().node().array().steer(hs_steer);

  if (direct >= scene_.headset().config().recover_threshold) {
    ++good_probes_;
  } else {
    good_probes_ = 0;
  }
  if (good_probes_ >= config_.probes_to_recover) {
    // Switching back is all-electronic: AP and headset re-steer in
    // microseconds; the reflector can stay configured as a hot spare —
    // but in a shared room the lease goes back to the pool.
    if (mode_ == Mode::kViaReflector) {
      leave_reflector();
      ++stats_.handovers_to_direct;
      if (config_.recorder) {
        config_.recorder->record(
            log::EventKind::kRecoverDirect,
            {{"reflector", static_cast<std::int64_t>(active_reflector_)}});
      }
    }
    release_lease();
    mode_ = Mode::kDirect;
    good_probes_ = 0;
  }
}

void LinkManager::degraded_tick() {
  if (simulator_.now() - last_probe_ < config_.probe_interval) {
    return;
  }
  last_probe_ = simulator_.now();
  probe_direct_path();  // may promote straight back to kDirect
  if (mode_ != Mode::kDegraded) {
    return;
  }
  if (best_usable_reflector()) {
    // A quarantine backoff expired (or a new reflector appeared): the
    // handover attempt doubles as the re-probe.
    begin_handover_to_reflector();
  }
}

void LinkManager::note_risk_transitions() {
  // Audit-trail bookkeeping only (no behavioral state): when the merged
  // window has run out, the close record lands before anything else this
  // tick — and an armed speculation disarms first, so the offline pairing
  // invariant holds record-by-record.
  if (config_.recorder == nullptr || !risk_logged_open_) {
    return;
  }
  if (simulator_.now() < risk_until_) {
    return;
  }
  if (spec_logged_armed_) {
    config_.recorder->record(log::EventKind::kSpecDisarm, {});
    spec_logged_armed_ = false;
  }
  config_.recorder->record(log::EventKind::kRiskWindowClose, {});
  risk_logged_open_ = false;
}

void LinkManager::on_risk_window(const LinkRiskWindow& window) {
  note_risk_transitions();
  if (window.confidence < config_.proactive_confidence) {
    return;
  }
  const sim::TimePoint now = simulator_.now();
  if (now >= risk_until_) {
    // A fresh window (no overlap with the current one): new hysteresis
    // count, new proactive budget.
    ++stats_.risk_windows;
    risky_ticks_ = 0;
    proactive_used_ = 0;
  }
  risk_until_ = std::max(risk_until_, window.t_end);
  ++risky_ticks_;
  if (config_.recorder && !risk_logged_open_) {
    config_.recorder->record(
        log::EventKind::kRiskWindowOpen,
        {{"end_us", std::chrono::duration_cast<std::chrono::microseconds>(
                        window.t_end)
                        .count()},
         {"conf_m", static_cast<std::int64_t>(window.confidence * 1000.0)}});
    risk_logged_open_ = true;
  }

  if (mode_ != Mode::kDirect) {
    return;  // already on (or moving to) an alternate path
  }
  if (risky_ticks_ < config_.proactive_ticks_to_act ||
      proactive_used_ >= config_.proactive_budget_per_window) {
    return;
  }
  if (proactive_fired_ &&
      now - last_proactive_ < config_.proactive_cooldown) {
    return;
  }
  ++proactive_used_;
  proactive_fired_ = true;
  last_proactive_ = now;
  ++stats_.proactive_handovers;
  begin_handover_to_reflector();
}

std::optional<rf::Decibels> LinkManager::speculative_alt_snr() {
  const auto alt = speculative_alt_snr_impl();
  if (config_.recorder) {
    if (alt.has_value() && !spec_logged_armed_ && risk_logged_open_) {
      config_.recorder->record(
          log::EventKind::kSpecArm,
          {{"alt_mdb", static_cast<std::int64_t>(alt->value() * 1000.0)}});
      spec_logged_armed_ = true;
    } else if (!alt.has_value() && spec_logged_armed_) {
      config_.recorder->record(log::EventKind::kSpecDisarm, {});
      spec_logged_armed_ = false;
    }
  }
  return alt;
}

std::optional<rf::Decibels> LinkManager::speculative_alt_snr_impl() {
  if (mode_ == Mode::kViaReflector) {
    // Alternate = the direct beam. All-electronic save/restore probe.
    const double ap_steer = scene_.ap().node().array().steering();
    const double hs_steer = scene_.headset().node().array().steering();
    steer_for_direct();
    const rf::Decibels direct = scene_.direct_snr();
    scene_.ap().node().array().steer(ap_steer);
    scene_.headset().node().array().steer(hs_steer);
    return direct;
  }
  if (mode_ != Mode::kDirect && mode_ != Mode::kHandoverPending) {
    return std::nullopt;  // degraded: nothing usable to speculate on
  }
  // Alternate = the best usable reflector's relay, with its TX beam as
  // last aimed (hot spare) — only AP and headset steering is borrowed.
  const auto target = best_usable_reflector();
  if (!target) {
    return std::nullopt;
  }
  auto& reflector = scene_.reflector(*target);
  const double ap_steer = scene_.ap().node().array().steering();
  const double hs_steer = scene_.headset().node().array().steering();
  scene_.ap().node().steer_toward(reflector.position());
  scene_.headset().node().face_toward(reflector.position());
  const auto via = scene_.via_snr(reflector);
  scene_.ap().node().array().steer(ap_steer);
  scene_.headset().node().array().steer(hs_steer);
  if (!via.usable) {
    return std::nullopt;
  }
  return via.snr;
}

rf::Decibels LinkManager::on_frame() {
  ensure_records();
  note_risk_transitions();
  const rf::Decibels true_snr = current_true_snr();
  scene_.headset().observe(true_snr, rng_);

  switch (mode_) {
    case Mode::kDirect:
      if (scene_.headset().degraded()) {
        begin_handover_to_reflector();
      }
      break;
    case Mode::kHandoverPending:
      break;  // waiting on the commit or timeout event
    case Mode::kViaReflector: {
      if (health_.quarantined(active_reflector_)) {
        // Benched from outside mid-service (control-plane partition,
        // config divergence): evict immediately rather than waiting for
        // the SNR to degrade through the in-service counters.
        leave_reflector();
        release_lease();
        mode_ = Mode::kDirect;
        begin_handover_to_reflector();  // next reflector, or kDegraded
        break;
      }
      if (true_snr < config_.min_usable_snr) {
        health_.note_bad(active_reflector_, simulator_.now(),
                         "in-service via-SNR below usable");
        if (health_.quarantined(active_reflector_)) {
          leave_reflector();
          release_lease();
          mode_ = Mode::kDirect;
          begin_handover_to_reflector();  // next reflector, or kDegraded
          break;
        }
      } else {
        health_.note_good(active_reflector_);
      }
      if (simulator_.now() - last_probe_ >= config_.probe_interval) {
        last_probe_ = simulator_.now();
        probe_direct_path();
        if (mode_ == Mode::kDirect) {
          break;
        }
      }
      break;
    }
    case Mode::kDegraded:
      degraded_tick();
      break;
  }
  return true_snr;
}

}  // namespace movr::core
