#include <core/link_manager.hpp>

#include <geom/angle.hpp>

namespace movr::core {

LinkManager::LinkManager(sim::Simulator& simulator, Scene& scene,
                         std::mt19937_64 rng, Config config)
    : simulator_{simulator}, scene_{scene}, rng_{rng}, config_{config} {}

void LinkManager::steer_for_direct() {
  scene_.ap().node().steer_toward(scene_.headset().node().position());
  scene_.headset().node().face_toward(scene_.ap().node().position());
}

std::size_t LinkManager::best_reflector() const {
  // Pick the reflector with the strongest illumination from the AP's
  // perspective; with one reflector this is trivially reflector 0.
  std::size_t best = 0;
  double best_snr = -1e9;
  for (std::size_t i = 0; i < scene_.reflector_count(); ++i) {
    const double snr = scene_.via_snr(scene_.reflector(i)).snr.value();
    if (snr > best_snr) {
      best_snr = snr;
      best = i;
    }
  }
  return best;
}

rf::Decibels LinkManager::current_true_snr() {
  if (mode_ == Mode::kDirect) {
    steer_for_direct();
    return scene_.direct_snr();
  }
  auto& reflector = scene_.reflector(active_reflector_);
  // AP illuminates the reflector; headset listens toward it.
  scene_.ap().node().steer_toward(reflector.position());
  scene_.headset().node().face_toward(reflector.position());
  // Re-aim the reflector's TX beam if the player walked out of it.
  const double tracked = scene_.true_reflector_angle_to_headset(reflector);
  const double current = reflector.front_end().tx_array().steering();
  if (geom::angular_distance(tracked, current) > config_.retarget_threshold &&
      !handover_in_progress_) {
    const auto retarget =
        BeamTracker::retarget(scene_, reflector, rng_, config_.tracker);
    ++stats_.retargets;
    (void)retarget;  // steering applied; cost is one BT exchange in flight
  }
  return scene_.via_snr(reflector).snr;
}

void LinkManager::begin_handover_to_reflector() {
  if (scene_.reflector_count() == 0) {
    return;
  }
  handover_in_progress_ = true;
  const std::size_t target = best_reflector();
  simulator_.after(config_.bt_wait, [this, target] {
    active_reflector_ = target;
    auto& reflector = scene_.reflector(active_reflector_);
    scene_.ap().node().steer_toward(reflector.position());
    BeamTracker::retarget(scene_, reflector, rng_, config_.tracker);
    scene_.headset().node().face_toward(reflector.position());
    mode_ = Mode::kViaReflector;
    handover_in_progress_ = false;
    good_probes_ = 0;
    reflector_since_ = simulator_.now();
    ++stats_.handovers_to_reflector;
  });
}

void LinkManager::probe_direct_path() {
  // Hypothetical direct-link quality if both ends steered at each other.
  // Evaluated without disturbing the live steering: save and restore.
  const double ap_steer = scene_.ap().node().array().steering();
  const double hs_steer = scene_.headset().node().array().steering();
  steer_for_direct();
  const rf::Decibels direct = scene_.direct_snr();
  scene_.ap().node().array().steer(ap_steer);
  scene_.headset().node().array().steer(hs_steer);

  if (direct >= scene_.headset().config().recover_threshold) {
    ++good_probes_;
  } else {
    good_probes_ = 0;
  }
  if (good_probes_ >= config_.probes_to_recover) {
    // Switching back is all-electronic: AP and headset re-steer in
    // microseconds; the reflector can stay configured as a hot spare.
    mode_ = Mode::kDirect;
    stats_.time_on_reflector += simulator_.now() - reflector_since_;
    ++stats_.handovers_to_direct;
    good_probes_ = 0;
  }
}

rf::Decibels LinkManager::on_frame() {
  const rf::Decibels true_snr = current_true_snr();
  scene_.headset().observe(true_snr, rng_);

  if (mode_ == Mode::kDirect && scene_.headset().degraded() &&
      !handover_in_progress_) {
    begin_handover_to_reflector();
  } else if (mode_ == Mode::kViaReflector &&
             simulator_.now() - last_probe_ >= config_.probe_interval) {
    last_probe_ = simulator_.now();
    probe_direct_path();
  }
  return true_snr;
}

}  // namespace movr::core
