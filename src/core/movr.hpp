// Umbrella header: the full MoVR public API.
//
//   #include <core/movr.hpp>
//
// pulls in the scene (world model), the reflector device, both calibration
// protocols (angle search, gain control), the pose-aided beam tracker and
// the runtime link manager — plus the substrate headers they expose.
#pragma once

#include <core/angle_search.hpp>
#include <core/ap.hpp>
#include <core/battery.hpp>
#include <core/beam_tracker.hpp>
#include <core/channel_oracle.hpp>
#include <core/gain_control.hpp>
#include <core/headset.hpp>
#include <core/health.hpp>
#include <core/link_manager.hpp>
#include <core/occlusion_forecaster.hpp>
#include <core/parallel_for.hpp>
#include <core/predictive_tracker.hpp>
#include <core/reflector.hpp>
#include <core/scene.hpp>
