#include <core/ap.hpp>

#include <rf/measurement.hpp>
#include <rf/noise.hpp>

namespace movr::core {

ApRadio::ApRadio(geom::Vec2 position, double orientation_rad, Config config)
    : node_{position, orientation_rad, config.array, config.tx_power},
      config_{config} {}

rf::DbmPower ApRadio::measurement_floor() const {
  return rf::noise_floor(config_.measurement_bandwidth_hz,
                         config_.measurement_noise_figure);
}

rf::DbmPower ApRadio::residual_leakage() const {
  return config_.tx_power - config_.self_isolation - config_.filter_rejection;
}

rf::DbmPower ApRadio::measure_backscatter(rf::DbmPower sideband_at_rx,
                                          std::mt19937_64& rng) const {
  const rf::DbmPower composite = rf::power_sum(
      rf::power_sum(sideband_at_rx, residual_leakage()), measurement_floor());
  return rf::measure_power(composite, config_.measurement_sigma_db,
                           measurement_floor(), rng);
}

}  // namespace movr::core
