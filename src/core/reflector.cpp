#include <core/reflector.hpp>

#include <cmath>

namespace movr::core {

MovrReflector::MovrReflector(geom::Vec2 position, double orientation_rad,
                             hw::ReflectorFrontEnd::Config front_end_config)
    : position_{position},
      orientation_{orientation_rad},
      front_end_{front_end_config} {}

void MovrReflector::power_cycle() {
  front_end_.power_cycle();
  ++boot_epoch_;
}

bool MovrReflector::valid_angle(double value) {
  // An angle command must be a finite number of radians. The bound is
  // deliberately loose (steering wraps), but a corrupted payload blown out
  // to e.g. 1e30 is firmware-rejected rather than wrapped into a beam the
  // AP never asked for.
  return std::isfinite(value) && std::abs(value) < 64.0;
}

void MovrReflector::handle(const sim::ControlMessage& message) {
  // Every payload is validated before it touches a register: the control
  // link can deliver undetectably corrupted values (see
  // sim::ControlChannel), and a garbled command must degrade into a
  // counted reject, never UB or a wild register write.
  if (message.topic == "rx_angle") {
    if (!valid_angle(message.value)) {
      ++rejected_messages_;
      return;
    }
    front_end_.steer_rx(message.value);
  } else if (message.topic == "tx_angle") {
    if (!valid_angle(message.value)) {
      ++rejected_messages_;
      return;
    }
    front_end_.steer_tx(message.value);
  } else if (message.topic == "both_angles") {
    if (!valid_angle(message.value)) {
      ++rejected_messages_;
      return;
    }
    front_end_.steer_rx(message.value);
    front_end_.steer_tx(message.value);
  } else if (message.topic == "gain_code") {
    if (!std::isfinite(message.value) || message.value < 0.0 ||
        message.value > 1e9) {
      ++rejected_messages_;
      return;
    }
    front_end_.set_gain_code(
        static_cast<std::uint32_t>(std::round(message.value)));
  } else if (message.topic == "modulate") {
    front_end_.set_modulating(message.value != 0.0);
  } else {
    ++unknown_messages_;
  }
}

}  // namespace movr::core
