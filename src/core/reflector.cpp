#include <core/reflector.hpp>

#include <cmath>

namespace movr::core {

MovrReflector::MovrReflector(geom::Vec2 position, double orientation_rad,
                             hw::ReflectorFrontEnd::Config front_end_config)
    : position_{position},
      orientation_{orientation_rad},
      front_end_{front_end_config} {}

void MovrReflector::power_cycle() {
  front_end_.power_cycle();
  ++boot_epoch_;
}

void MovrReflector::handle(const sim::ControlMessage& message) {
  if (message.topic == "rx_angle") {
    front_end_.steer_rx(message.value);
  } else if (message.topic == "tx_angle") {
    front_end_.steer_tx(message.value);
  } else if (message.topic == "both_angles") {
    front_end_.steer_rx(message.value);
    front_end_.steer_tx(message.value);
  } else if (message.topic == "gain_code") {
    front_end_.set_gain_code(static_cast<std::uint32_t>(
        std::max(0.0, std::round(message.value))));
  } else if (message.topic == "modulate") {
    front_end_.set_modulating(message.value != 0.0);
  } else {
    ++unknown_messages_;
  }
}

}  // namespace movr::core
