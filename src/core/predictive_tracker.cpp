#include <core/predictive_tracker.hpp>

#include <geom/angle.hpp>

namespace movr::core {

void PredictiveTracker::add_sample(sim::TimePoint now, geom::Vec2 position) {
  samples_.push_back(Sample{now, position});
  while (samples_.size() > config_.history) {
    samples_.pop_front();
  }
}

bool PredictiveTracker::has_velocity_fit() const {
  if (samples_.size() < 2) {
    return false;
  }
  // Degenerate time window (all samples at one instant) fits no slope.
  return sim::to_seconds(samples_.back().when - samples_.front().when) > 1e-9;
}

geom::Vec2 PredictiveTracker::velocity() const {
  if (samples_.size() < 2) {
    return {0.0, 0.0};
  }
  // Least-squares slope of position vs time over the window: robust to the
  // per-sample tracking jitter, unlike a first/last difference.
  const double n = static_cast<double>(samples_.size());
  double t_mean = 0.0;
  geom::Vec2 p_mean{};
  for (const Sample& s : samples_) {
    t_mean += sim::to_seconds(s.when);
    p_mean += s.position;
  }
  t_mean /= n;
  p_mean = p_mean / n;
  double tt = 0.0;
  geom::Vec2 tp{};
  for (const Sample& s : samples_) {
    const double dt = sim::to_seconds(s.when) - t_mean;
    tt += dt * dt;
    tp += (s.position - p_mean) * dt;
  }
  if (tt < 1e-12) {
    return {0.0, 0.0};
  }
  return tp / tt;
}

geom::Vec2 PredictiveTracker::predict(sim::Duration horizon) const {
  if (samples_.empty()) {
    return {0.0, 0.0};
  }
  return samples_.back().position + velocity() * sim::to_seconds(horizon);
}

std::optional<PredictiveTracker::Command> PredictiveTracker::on_pose(
    sim::TimePoint now, geom::Vec2 position, const MovrReflector& reflector,
    std::mt19937_64& rng) {
  std::normal_distribution<double> jitter{0.0, config_.tracking_noise_m};
  add_sample(now, position + geom::Vec2{jitter(rng), jitter(rng)});

  const geom::Vec2 at_actuation = predict(config_.actuation_delay);
  const double predicted_angle =
      reflector.to_local((at_actuation - reflector.position()).heading());
  const double current = reflector.front_end().tx_array().steering();
  if (geom::angular_distance(predicted_angle, current) <
      config_.retarget_threshold_rad) {
    return std::nullopt;
  }
  return Command{predicted_angle, at_actuation};
}

}  // namespace movr::core
