// Revisioned, memoising front door to the channel solver.
//
// Path sets depend only on (source, destination, room state). The oracle
// caches solved path sets keyed by the quantised endpoint pair, and stamps
// the whole cache with the Room's revision counter: any obstacle or
// wall-material mutation bumps the revision (see channel::Room::revision),
// so the next query drops every stale entry before answering. Steering and
// gain state live *above* the paths (in the SNR assembly) and never enter
// the cache, which is why Scene can keep re-steering between queries at
// zero cache cost.
//
// Query shapes, cheapest first:
//  - paths_view(a, b): borrowed view of the cached path set. A warm hit
//    costs one lock + one probe + one shared_ptr copy — no path copying.
//    The view stays valid even if the cache is invalidated afterwards
//    (shared ownership keeps the vector alive), it just goes stale the way
//    any already-read answer would.
//  - query_batch(batch, out): many endpoint pairs under ONE lock acquisition
//    and one revision check; misses are gathered and solved in a single
//    PathSolver::solve_batch call. Consecutive duplicate keys skip the cache
//    probe entirely (Stats::batch_probes_saved). A fully-warmed batch
//    performs zero heap allocations.
//  - paths_between(a, b): the historical deep-copy API, kept for callers
//    that mutate or outlive their result.
//
// Thread-safety: all query paths are const and internally synchronized (one
// mutex around the cache); any number of threads may query one oracle
// concurrently as long as nobody mutates the bound Room at the same time.
// Room mutation requires the same external exclusion the Room itself needs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include <channel/path_batch.hpp>
#include <channel/path_solver.hpp>
#include <channel/room.hpp>
#include <geom/vec2.hpp>

namespace movr::core {

class ChannelOracle {
 public:
  struct Config {
    channel::PathSolver::Config solver{};
    /// Endpoints are quantised to this grid (metres) to form cache keys.
    /// 1 µm: far below any physical significance, far above double noise.
    double quantum_m{1e-6};
    /// The cache is dropped wholesale when it reaches this many entries
    /// (bounds memory on unbounded query streams, e.g. Monte Carlo runs).
    std::size_t max_entries{1u << 16};
  };

  /// Shared-ownership view of a cached path set. Copying is allocation-free;
  /// the pointee is immutable and outlives any cache invalidation.
  using PathsView = std::shared_ptr<const std::vector<channel::Path>>;

  explicit ChannelOracle(const channel::Room& room)
      : ChannelOracle{room, Config{}} {}
  ChannelOracle(const channel::Room& room, Config config);

  const channel::Room& room() const { return solver_.room(); }
  const channel::PathSolver& solver() const { return solver_; }
  const Config& config() const { return config_; }

  /// Memoised equivalent of PathSolver::solve (deep copy).
  std::vector<channel::Path> paths_between(geom::Vec2 a, geom::Vec2 b) const;

  /// Borrowed-view equivalent: no path copying on a warm hit.
  PathsView paths_view(geom::Vec2 a, geom::Vec2 b) const;

  /// Answers every pair in `batch` under one lock acquisition: one probe
  /// pass, one batched solve for the misses. `out` is cleared and filled
  /// with one view per query, in batch order; its capacity (like all
  /// internal scratch) is reused across calls.
  void query_batch(const channel::EndpointBatch& batch,
                   std::vector<PathsView>& out) const;

  /// Rebinds to `room` (e.g. after the owning Scene moved) and drops the
  /// cache — a different Room object shares no revision history.
  void rebind(const channel::Room& room);

  /// Drops every cached entry (counted in Stats::invalidations).
  void invalidate() const;

  struct Stats {
    std::uint64_t queries{0};
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    /// Cache drops: revision bumps observed, rebinds, manual invalidations
    /// and size-cap evictions.
    std::uint64_t invalidations{0};
    /// Queries answered through query_batch (subset of `queries`).
    std::uint64_t batch_queries{0};
    /// Batch queries whose cache probe was skipped because the preceding
    /// query in the same batch had the same quantised key (grid sweeps and
    /// codebook scans repeat endpoints back to back).
    std::uint64_t batch_probes_saved{0};
    /// High-water mark of the batch scratch arena (endpoint batch, SoA
    /// result batch, solver workspace, slot maps), bytes. Monotone: the
    /// scratch keeps its capacity across calls and invalidations.
    std::uint64_t arena_bytes{0};

    double hit_rate() const {
      return queries == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(queries);
    }
    Stats& operator+=(const Stats& o) {
      queries += o.queries;
      hits += o.hits;
      misses += o.misses;
      invalidations += o.invalidations;
      batch_queries += o.batch_queries;
      batch_probes_saved += o.batch_probes_saved;
      // A high-water mark, not a flow: aggregating workers takes the max.
      arena_bytes = arena_bytes > o.arena_bytes ? arena_bytes : o.arena_bytes;
      return *this;
    }
  };
  Stats stats() const;
  void reset_stats() const;

 private:
  struct Key {
    std::int64_t ax, ay, bx, by;
    bool operator==(const Key&) const = default;
  };

  /// Insert-only open-addressing table Key -> PathsView. The oracle never
  /// erases individual entries — invalidation drops the whole table — so
  /// linear probing needs no tombstones and a warm probe is one contiguous
  /// scan, measurably faster than unordered_map's bucket chains in the
  /// query_batch hot loop. clear() nulls the views but keeps the slot
  /// array, so a re-warmed cache re-fills without rehashing.
  class PathCache {
   public:
    /// The stored view, or nullptr when absent. The pointer is invalidated
    /// by insert() and clear().
    const PathsView* find(const Key& key, std::uint64_t hash) const {
      if (slots_.empty()) {
        return nullptr;
      }
      std::size_t i = static_cast<std::size_t>(hash) & mask_;
      while (slots_[i].view != nullptr) {
        if (slots_[i].key == key) {
          return &slots_[i].view;
        }
        i = (i + 1) & mask_;
      }
      return nullptr;
    }
    /// Inserts unless the key is already present (the existing entry wins,
    /// like unordered_map::emplace).
    void insert(const Key& key, std::uint64_t hash, PathsView view);
    std::size_t size() const { return size_; }
    void clear();

   private:
    struct Slot {
      Key key{};
      PathsView view{};  // nullptr marks an empty slot
    };

    bool place(const Key& key, std::uint64_t hash, PathsView view);

    std::vector<Slot> slots_;
    std::size_t mask_{0};
    std::size_t size_{0};
  };

  static std::uint64_t hash_key(const Key& k);
  Key make_key(geom::Vec2 a, geom::Vec2 b) const;
  void drop_cache_locked() const;
  void check_revision_locked() const;
  PathsView view_locked(geom::Vec2 a, geom::Vec2 b) const;
  void note_arena_locked() const;

  channel::PathSolver solver_;
  Config config_;
  /// 1 / config_.quantum_m, precomputed: the key quantisation multiplies
  /// instead of dividing in the per-query probe loop.
  double inv_quantum_;
  mutable std::mutex mutex_;
  mutable PathCache cache_;
  mutable std::uint64_t seen_revision_;
  mutable Stats stats_;

  // Batch scratch, guarded by mutex_; capacity persists across calls so a
  // warmed query_batch allocates nothing.
  mutable channel::EndpointBatch miss_batch_;
  mutable channel::PathBatch miss_paths_;
  mutable channel::PathSolver::BatchWorkspace batch_ws_;
  mutable std::vector<std::size_t> miss_query_;
  mutable std::vector<std::size_t> miss_slot_;
  mutable std::vector<Key> miss_keys_;
  mutable std::vector<PathsView> slot_views_;
};

}  // namespace movr::core
