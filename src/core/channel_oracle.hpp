// Revisioned, memoising front door to the channel solver.
//
// Path sets depend only on (source, destination, room state). The oracle
// caches solved path sets keyed by the quantised endpoint pair, and stamps
// the whole cache with the Room's revision counter: any obstacle or
// wall-material mutation bumps the revision (see channel::Room::revision),
// so the next query drops every stale entry before answering. Steering and
// gain state live *above* the paths (in the SNR assembly) and never enter
// the cache, which is why Scene can keep re-steering between queries at
// zero cache cost.
//
// Thread-safety: paths_between() is const and internally synchronized (one
// mutex around the cache); any number of threads may query one oracle
// concurrently as long as nobody mutates the bound Room at the same time.
// Room mutation requires the same external exclusion the Room itself needs.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <channel/path_solver.hpp>
#include <channel/room.hpp>
#include <geom/vec2.hpp>

namespace movr::core {

class ChannelOracle {
 public:
  struct Config {
    channel::PathSolver::Config solver{};
    /// Endpoints are quantised to this grid (metres) to form cache keys.
    /// 1 µm: far below any physical significance, far above double noise.
    double quantum_m{1e-6};
    /// The cache is dropped wholesale when it reaches this many entries
    /// (bounds memory on unbounded query streams, e.g. Monte Carlo runs).
    std::size_t max_entries{1u << 16};
  };

  explicit ChannelOracle(const channel::Room& room)
      : ChannelOracle{room, Config{}} {}
  ChannelOracle(const channel::Room& room, Config config);

  const channel::Room& room() const { return solver_.room(); }
  const channel::PathSolver& solver() const { return solver_; }
  const Config& config() const { return config_; }

  /// Memoised equivalent of PathSolver::solve.
  std::vector<channel::Path> paths_between(geom::Vec2 a, geom::Vec2 b) const;

  /// Rebinds to `room` (e.g. after the owning Scene moved) and drops the
  /// cache — a different Room object shares no revision history.
  void rebind(const channel::Room& room);

  /// Drops every cached entry (counted in Stats::invalidations).
  void invalidate() const;

  struct Stats {
    std::uint64_t queries{0};
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    /// Cache drops: revision bumps observed, rebinds, manual invalidations
    /// and size-cap evictions.
    std::uint64_t invalidations{0};

    double hit_rate() const {
      return queries == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(queries);
    }
    Stats& operator+=(const Stats& o) {
      queries += o.queries;
      hits += o.hits;
      misses += o.misses;
      invalidations += o.invalidations;
      return *this;
    }
  };
  Stats stats() const;
  void reset_stats() const;

 private:
  struct Key {
    std::int64_t ax, ay, bx, by;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  Key make_key(geom::Vec2 a, geom::Vec2 b) const;
  void drop_cache_locked() const;

  channel::PathSolver solver_;
  Config config_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<Key, std::vector<channel::Path>, KeyHash> cache_;
  mutable std::uint64_t seen_revision_;
  mutable Stats stats_;
};

}  // namespace movr::core
