// Predictive pose-aided beam tracking — the paper's Section 6 future work,
// taken one step further than BeamTracker.
//
// BeamTracker aims at where the headset *is*; by the time the Bluetooth
// command reaches the reflector the player has moved on. This tracker fits
// a velocity to the recent pose history and aims at where the headset
// *will be* when the command lands, and it fires proactively: it compares
// the beam against the predicted angle rather than the current one, so a
// fast-moving player never quite reaches the beam edge.
#pragma once

#include <deque>
#include <optional>
#include <random>

#include <core/reflector.hpp>
#include <geom/vec2.hpp>
#include <sim/time.hpp>

namespace movr::core {

class PredictiveTracker {
 public:
  struct Config {
    /// Pose samples kept for the velocity fit.
    std::size_t history{6};
    /// Command latency to compensate (one Bluetooth exchange).
    sim::Duration actuation_delay{std::chrono::milliseconds{10}};
    /// rms positional error of the VR tracking system, metres per axis.
    double tracking_noise_m{0.005};
    /// Re-aim when the predicted angle drifts this far off the beam.
    double retarget_threshold_rad{0.03};
  };

  PredictiveTracker() : PredictiveTracker{Config{}} {}
  explicit PredictiveTracker(Config config) : config_{config} {}

  const Config& config() const { return config_; }

  struct Command {
    double tx_local_angle{0.0};
    geom::Vec2 predicted_position{};
  };

  /// Feeds one tracked pose sample (the VR runtime's ~90 Hz updates).
  /// Returns a steering command when the reflector should be re-aimed;
  /// the caller sends it (and pays the Bluetooth cost).
  std::optional<Command> on_pose(sim::TimePoint now, geom::Vec2 position,
                                 const MovrReflector& reflector,
                                 std::mt19937_64& rng);

  /// Feeds one pose sample as-measured (no tracking noise added) — the
  /// path consumers like OcclusionForecaster use when the caller already
  /// models its own sensor error.
  void add_sample(sim::TimePoint now, geom::Vec2 position);

  /// True once the history supports a velocity fit: at least two samples
  /// spanning a non-degenerate time window. While false, velocity() is
  /// pinned to zero and predict() to the newest sample (or the origin on an
  /// empty history) — consumers that need a *real* forecast (the occlusion
  /// forecaster) must treat !has_velocity_fit() as "no prediction", never
  /// as "predicted stationary".
  bool has_velocity_fit() const;

  std::size_t sample_count() const { return samples_.size(); }

  /// Predicted headset position `horizon` ahead of the newest sample, from
  /// the fitted velocity. Pinned behavior on short history (see
  /// has_velocity_fit): empty -> origin, one sample / degenerate time
  /// window -> that sample, unmoved.
  geom::Vec2 predict(sim::Duration horizon) const;

  /// Fitted velocity, m/s. Pinned to exactly zero until has_velocity_fit().
  geom::Vec2 velocity() const;

  void reset() { samples_.clear(); }

 private:
  struct Sample {
    sim::TimePoint when;
    geom::Vec2 position;
  };

  Config config_;
  std::deque<Sample> samples_;
};

}  // namespace movr::core
