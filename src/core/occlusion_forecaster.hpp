// Occlusion forecasting: predict LOS blockage before it lands.
//
// The reactive tier (LinkManager + HealthMonitor) only moves after the SNR
// has already collapsed; the paper's future-work section argues pose
// knowledge should drive the link instead. This forecaster extrapolates the
// headset trajectory (PredictiveTracker's velocity fit over the recent pose
// history) and walks the predicted positions against the room's obstacle
// geometry via the Scene's memoised ChannelOracle: if the direct AP beam is
// clear *now* but a predicted position a few tens of ms ahead has its LOS
// obstructed, it emits a LinkRiskWindow — consumed by LinkManager (proactive
// handover), RedundancyController (pre-armed FEC) and the transport
// (speculative dual-path reception).
//
// Contract (see DESIGN.md §10): a risk window is a *belief*, never physics.
// Consumers may spend resources on it (handover early, deepen parity,
// buffer a second beam) but must never let a wrong window make the link
// worse than the reactive baseline — containment is tested by the chaos
// knob below, which garbles forecasts at a configurable rate up to 100%.
#pragma once

#include <cstdint>
#include <optional>
#include <random>

#include <core/predictive_tracker.hpp>
#include <core/scene.hpp>
#include <geom/vec2.hpp>
#include <sim/time.hpp>

namespace movr::core {

/// A forecast interval during which the direct LOS is expected to be
/// obstructed. Absolute sim times; confidence in [0, 1].
struct LinkRiskWindow {
  sim::TimePoint t_start{};
  sim::TimePoint t_end{};
  double confidence{0.0};

  bool contains(sim::TimePoint t) const { return t >= t_start && t < t_end; }
};

class OcclusionForecaster {
 public:
  struct Config {
    /// Pose-history / velocity-fit parameters (history length is what
    /// matters here; the steering fields are unused by the forecaster).
    PredictiveTracker::Config tracker{};
    /// How far ahead the trajectory is extrapolated.
    sim::Duration horizon{std::chrono::milliseconds{60}};
    /// Granularity of the extrapolation walk.
    sim::Duration step{std::chrono::milliseconds{10}};
    /// Below this fitted speed the player counts as stationary: whatever
    /// blockage may come is not motion-induced, so no forecast is made.
    double min_speed_mps{0.05};
    /// LOS obstruction above this many dB counts as blocked (matches
    /// channel::Path::is_blocked's default).
    double blocked_threshold_db{3.0};
    /// Minimum pose history before any forecast is attempted. Combined
    /// with PredictiveTracker::has_velocity_fit this is the "no
    /// prediction, not zero-velocity prediction" rule.
    std::size_t min_samples{3};
    /// Forced-misprediction knob for containment testing: with this
    /// probability per forecast the honest answer is inverted — a real
    /// risk window is suppressed, a clear horizon grows a spurious
    /// high-confidence window. 1.0 = every forecast wrong. Draws come
    /// from a dedicated RNG stream so enabling chaos never perturbs any
    /// other seeded trajectory.
    double chaos_rate{0.0};
    std::uint64_t chaos_seed{0x9e3779b97f4a7c15ull};
  };

  OcclusionForecaster() : OcclusionForecaster{Config{}} {}
  explicit OcclusionForecaster(Config config)
      : config_{config},
        tracker_{config.tracker},
        chaos_rng_{config.chaos_seed} {}

  const Config& config() const { return config_; }

  /// Feeds one pose sample as the consumer measured it (bias and noise
  /// included — garbage in, garbage forecasts out; containment is the
  /// consumer's job).
  void on_pose(sim::TimePoint now, geom::Vec2 position) {
    tracker_.add_sample(now, position);
  }

  /// Forecast from the current pose history against the scene's current
  /// obstacle geometry. Returns a window only when the *current* position
  /// is clear but an extrapolated one inside the horizon is blocked —
  /// already-degraded links belong to the reactive tier.
  std::optional<LinkRiskWindow> forecast(const Scene& scene,
                                         sim::TimePoint now);

  const PredictiveTracker& tracker() const { return tracker_; }

  struct Counters {
    long forecasts{0};       ///< forecast() calls
    long windows_issued{0};  ///< non-nullopt results (post-chaos)
    long no_fit_skips{0};    ///< skipped: history too short / degenerate
    long chaos_garbled{0};   ///< forecasts inverted by the chaos knob
  };
  const Counters& counters() const { return counters_; }

  void reset() {
    tracker_.reset();
    chaos_rng_.seed(config_.chaos_seed);
    counters_ = Counters{};
  }

 private:
  bool los_blocked(const Scene& scene, geom::Vec2 headset) const;

  Config config_;
  PredictiveTracker tracker_;
  std::mt19937_64 chaos_rng_;
  Counters counters_;
};

}  // namespace movr::core
