// Transactional config epochs + reflector safe-mode: the hardened control
// plane between the AP and its reflectors.
//
// The gain loop is only stable while G_dB < L_dB (paper Section 4.2), so a
// stale or corrupted gain command is not cosmetic — it can push the
// amplifier into oscillation. The raw control link (sim::ControlChannel)
// loses, duplicates, reorders, corrupts and partitions; this layer turns
// the reflector's control surface into something the AP can reason about:
//
//  - *Config epochs* (AP -> reflector): the AP stages (θrx, θtx, gain) as a
//    numbered epoch — three staged field messages plus a commit, all
//    carrying the epoch's sequence number. The reflector applies the epoch
//    ATOMICALLY: a commit whose stage is incomplete (fields lost or
//    reordered behind it — per-message jitter shuffles arrival order) is
//    held pending and applies the moment the link layer's retries deliver
//    the stragglers; stragglers from superseded attempts never clobber the
//    live stage. Every commit is acked with (applied_seq, boot_epoch), so
//    an ack carrying an old applied_seq tells the AP the epoch has not
//    landed yet.
//  - *State digests* (AP <- reflector): the AP periodically queries a
//    digest of the reflector's safety-critical applied state (θrx quantised,
//    gain code, applied_seq, boot_epoch). A mismatch against what the AP
//    believes it committed — undetected corruption, a missed commit, a
//    reboot, an autonomous safe-mode gain change — is a *divergence*: the
//    AP replays the epoch and routes the reflector through the existing
//    core::HealthMonitor quarantine/recalibration path. θtx is excluded
//    from the digest by design: pose retargeting legitimately moves it
//    between epochs, and its safety contribution is covered by the
//    worst-case floor below.
//  - *Safe mode* (reflector-side): a control-silence watchdog. After
//    `silence_timeout` without any AP message the reflector autonomously
//    ramps its gain to a provably-stable floor: worst-case isolation over
//    the entire steerable sector (hw::LeakageModel::worst_case_isolation)
//    minus a margin — stable at every beam combination, so the reflector
//    needs no RX chain and no idea where its beams point to be safe. A
//    current-sensor guard (the reflector's only observable, Section 4.2)
//    also trips to the floor if the amplifier draws oscillation-level
//    current. Safe mode exits only when the AP re-asserts the registers
//    (an epoch commit or a direct register write) — reconnecting alone
//    does not restore gain; the digest divergence the safe-mode entry
//    caused drives the AP's reconciliation replay.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <core/health.hpp>
#include <core/reflector.hpp>
#include <log/recorder.hpp>
#include <rf/units.hpp>
#include <sim/control_channel.hpp>
#include <sim/simulator.hpp>
#include <sim/time.hpp>

namespace movr::core {

/// One transactional reflector configuration.
struct ConfigEpoch {
  double rx_angle{0.0};  // array-local radians
  double tx_angle{0.0};  // array-local radians
  std::uint32_t gain_code{0};
};

/// Digest of the safety-critical applied state. Both sides compute it the
/// same way: the reflector over its registers, the AP over what it
/// committed. The angle is wrapped and quantised to a microradian so the
/// phased array's wrap-on-steer cannot cause false mismatches.
std::uint32_t config_digest(double rx_angle, std::uint32_t gain_code,
                            std::uint64_t applied_seq,
                            std::uint32_t boot_epoch);

/// Control-plane incident counters surfaced into vr::QoeReport alongside
/// the transport metrics: how often the control plane itself was the story.
struct ControlPlaneIncidents {
  std::uint64_t partitions_entered{0};
  std::uint64_t partitions_healed{0};
  std::uint64_t divergences_detected{0};  // digest caught drifted state
  std::uint64_t reconciliations{0};       // epoch replays issued
  std::uint64_t reboots_detected{0};      // boot-epoch mismatches in acks
  std::uint64_t ack_timeouts{0};
  std::uint64_t safe_mode_entries{0};     // watchdog silence trips
  std::uint64_t oscillation_trips{0};     // current-guard trips
};

/// Reflector-side firmware agent: owns the config-epoch receive protocol
/// and the safe-mode watchdog for ONE reflector. Attached to the control
/// channel under the reflector's control name; legacy topics (rx_angle,
/// gain_code, ... — the angle-search vocabulary) are forwarded to
/// MovrReflector::handle unchanged.
class ReflectorConfigAgent {
 public:
  struct Config {
    /// Control silence that trips safe mode.
    sim::Duration silence_timeout{std::chrono::milliseconds{400}};
    /// Watchdog evaluation cadence (an Arduino timer interrupt).
    sim::Duration watchdog_tick{std::chrono::milliseconds{100}};
    /// Safe floor = worst-case isolation - this margin.
    rf::Decibels safe_margin{3.0};
    /// Supply current above this for `oscillation_strikes` consecutive
    /// ticks trips the guard. 0 = derive from the amplifier model
    /// (quiescent + half the saturation-level signal + knee current).
    double oscillation_current_a{0.0};
    int oscillation_strikes{2};
    /// When false the watchdog loop never arms — the deliberately broken
    /// build the chaos soak's gain-<=-floor invariant must catch.
    bool watchdog_enabled{true};
  };

  /// RF drive present at the RX connector, feeding the current sensor
  /// (physics, supplied by the scene; defaults to a quiet -90 dBm). An
  /// oscillating loop rails regardless of drive, so the guard works even
  /// with the default.
  using InputProbe = std::function<rf::DbmPower()>;

  ReflectorConfigAgent(sim::Simulator& simulator,
                       sim::ControlChannel& control, MovrReflector& reflector,
                       Config config, std::mt19937_64 rng);

  /// Attaches handle() under the reflector's control name and starts the
  /// watchdog loop (when enabled).
  void start();
  void stop() { running_ = false; }

  void set_input_probe(InputProbe probe) { input_probe_ = std::move(probe); }

  /// Session event-log sink for safe-mode transitions; `index` identifies
  /// this reflector in the log's payloads.
  void set_recorder(log::Recorder* recorder, std::int64_t index) {
    recorder_ = recorder;
    log_index_ = index;
  }

  void handle(const sim::ControlMessage& message);

  /// Endpoint the agent's acks and digest replies go to.
  std::string reply_endpoint() const;

  bool in_safe_mode() const { return safe_mode_; }
  std::uint64_t applied_seq() const { return applied_seq_; }
  /// The provably-stable gain floor and the DAC code realising it.
  rf::Decibels safe_gain_floor() const { return safe_floor_; }
  std::uint32_t safe_gain_code() const { return safe_code_; }
  std::uint32_t digest() const;

  struct Stats {
    std::uint64_t epochs_applied{0};
    std::uint64_t stale_commits{0};       // seq <= already-applied
    std::uint64_t incomplete_commits{0};  // commit before its fields
    std::uint64_t digest_replies{0};
    std::uint64_t acks_sent{0};
    std::uint64_t safe_mode_entries{0};
    std::uint64_t oscillation_trips{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Staged {
    std::uint64_t seq{0};
    std::optional<double> rx;
    std::optional<double> tx;
    std::optional<double> gain;
    /// The commit overtook some of its fields (independent per-message
    /// jitter shuffles arrival order): hold it, and apply the moment the
    /// link layer's retries deliver the stragglers.
    bool commit_pending{false};

    bool complete() const { return rx && tx && gain; }
  };

  void watchdog_tick();
  void enter_safe_mode(bool oscillation);
  void check_reboot();
  void apply_commit(const sim::ControlMessage& message);
  void apply_staged();
  void send_ack();
  void compute_safe_code();

  sim::Simulator& simulator_;
  sim::ControlChannel& control_;
  MovrReflector& reflector_;
  Config config_;
  std::mt19937_64 rng_;
  InputProbe input_probe_;
  log::Recorder* recorder_{nullptr};
  std::int64_t log_index_{0};
  Staged staged_;
  std::uint64_t applied_seq_{0};
  std::uint32_t last_boot_epoch_{0};
  sim::TimePoint last_heard_{};
  bool safe_mode_{false};
  bool running_{false};
  int oscillation_strikes_{0};
  rf::Decibels safe_floor_{0.0};
  std::uint32_t safe_code_{0};
  double oscillation_threshold_a_{0.0};
  Stats stats_;
};

/// AP-side control plane: commits config epochs, consumes acks, runs the
/// periodic digest query loop, detects partitions and divergences, and
/// drives reconciliation through a bound core::HealthMonitor.
class ControlPlane {
 public:
  struct Config {
    /// Per-reflector digest query cadence.
    sim::Duration digest_interval{std::chrono::milliseconds{200}};
    /// A commit ack / digest reply not seen by then counts as missed
    /// (covers BLE latency + link-layer retries with slack).
    sim::Duration reply_timeout{std::chrono::milliseconds{60}};
    /// Consecutive missed digest replies before the reflector counts as
    /// partitioned (and is quarantined).
    int missed_replies_to_partition{3};
    /// Minimum spacing between reconciliation replays per reflector.
    sim::Duration reconcile_backoff{std::chrono::milliseconds{100}};
  };

  ControlPlane(sim::Simulator& simulator, sim::ControlChannel& control,
               Config config);

  /// Reconciliation and partition detection feed this monitor (typically
  /// the LinkManager's, so quarantine/recalibration compose).
  void bind_health(HealthMonitor* health) { health_ = health; }

  /// Session event-log sink for epoch/partition/divergence transitions.
  void set_recorder(log::Recorder* recorder) { recorder_ = recorder; }

  /// Registers reflector `index`. `agent` is optional and used ONLY for
  /// incident reporting (safe-mode counters) — never for control
  /// decisions; the AP's view of the reflector is the message stream.
  void manage(std::size_t index, const MovrReflector& reflector,
              const ReflectorConfigAgent* agent = nullptr);

  /// Stages and commits `epoch` to reflector `index` under a fresh
  /// sequence number. Asynchronous; the ack (or its absence) is handled
  /// internally. Returns the epoch's sequence number.
  std::uint64_t commit(std::size_t index, const ConfigEpoch& epoch);

  /// Starts the periodic digest loop over all managed reflectors.
  void start();
  void stop() { running_ = false; }

  bool partitioned(std::size_t index) const;
  /// Oldest unreconciled divergence age across reachable (unpartitioned)
  /// reflectors — the chaos soak's reconciliation-bound invariant input.
  sim::Duration max_divergence_age(sim::TimePoint now) const;
  /// Age of reflector `index`'s open divergence episode (zero when its
  /// digest matches), regardless of partition state.
  sim::Duration divergence_age(std::size_t index, sim::TimePoint now) const;

  struct Stats {
    std::uint64_t epochs_committed{0};
    std::uint64_t acks_received{0};
    std::uint64_t ack_timeouts{0};
    std::uint64_t digest_queries{0};
    std::uint64_t digest_replies{0};
    std::uint64_t divergences_detected{0};
    std::uint64_t reconciliations{0};
    std::uint64_t partitions_entered{0};
    std::uint64_t partitions_healed{0};
    std::uint64_t reboots_detected{0};
  };
  const Stats& stats() const { return stats_; }

  /// Stats + (when agents were registered) reflector-side safe-mode
  /// counters, packaged for vr::QoeReport.
  ControlPlaneIncidents incidents() const;

 private:
  struct Managed {
    std::size_t index{0};
    std::string endpoint;        // reflector's control endpoint
    std::string reply_endpoint;  // where its acks/digests arrive
    const ReflectorConfigAgent* agent{nullptr};  // reporting only
    ConfigEpoch last_epoch{};
    std::uint32_t max_gain_code{0};
    std::uint64_t expected_seq{0};
    std::uint32_t expected_digest{0};
    std::uint32_t boot_epoch{0};
    bool awaiting_ack{false};
    bool divergent{false};
    sim::TimePoint divergent_since{};
    bool partitioned{false};
    int missed_replies{0};
    bool awaiting_digest{false};
    std::uint64_t digest_query_seq{0};
    sim::TimePoint last_reconcile{sim::Duration{-1'000'000'000}};
  };

  void on_reply(std::size_t slot, const sim::ControlMessage& message);
  void on_ack(std::size_t slot, const sim::ControlMessage& message);
  void on_digest(std::size_t slot, const sim::ControlMessage& message);
  void digest_tick(std::size_t slot);
  void note_unreachable(Managed& m);
  void note_reachable(Managed& m);
  void mark_divergent(Managed& m, const std::string& reason);
  void reconcile(std::size_t slot);
  std::uint64_t send_epoch(std::size_t slot);
  void refresh_expected(Managed& m);
  std::size_t slot_for(std::size_t index) const;

  sim::Simulator& simulator_;
  sim::ControlChannel& control_;
  Config config_;
  HealthMonitor* health_{nullptr};
  log::Recorder* recorder_{nullptr};
  std::vector<Managed> managed_;
  std::uint64_t next_seq_{0};
  bool running_{false};
  Stats stats_;
};

}  // namespace movr::core
