// Per-reflector health supervision: quarantine, backoff re-probes, and
// reboot-triggered recalibration.
//
// The paper treats reflectors as passive infrastructure that is simply
// there; a deployed system cannot. A reflector can relay garbage (unstable
// loop, blocked relay path), vanish (power loss), or come back amnesiac (a
// reboot wipes its beam/gain registers). Without supervision the link
// manager will re-pick a known-bad reflector forever. This monitor keeps a
// tiny state machine per reflector:
//
//   Healthy --repeated bad probes--> Quarantined --backoff expires--> probe
//      ^                                  |  ^
//      +------- probe succeeds ----------+  +--- probe fails (backoff x2)
//
// Reboots are detected as a calibration-epoch mismatch (the AP remembers
// the boot epoch it calibrated against; the reflector reports its current
// epoch over Bluetooth). A rebooted reflector is quarantined AND marked for
// recalibration — its stored calibration must be replayed before the next
// probe can succeed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <log/recorder.hpp>
#include <sim/time.hpp>

namespace movr::core {

class HealthMonitor {
 public:
  struct Config {
    /// Consecutive bad in-service observations before quarantine.
    int bad_to_quarantine{3};
    /// First quarantine window; doubles per failed re-probe.
    sim::Duration backoff_initial{std::chrono::milliseconds{200}};
    double backoff_multiplier{2.0};
    sim::Duration backoff_max{std::chrono::seconds{5}};
  };

  enum class State { kHealthy, kQuarantined };

  struct Entry {
    State state{State::kHealthy};
    int consecutive_bad{0};
    sim::Duration backoff{};
    sim::TimePoint quarantined_until{};
    bool needs_recalibration{false};
    std::string last_reason;
  };

  struct Stats {
    int quarantines{0};
    int reprobes{0};
    int restored{0};
    int reboots_detected{0};
    int recalibrations{0};
    int divergences{0};
  };

  HealthMonitor() : HealthMonitor{Config{}} {}
  explicit HealthMonitor(Config config) : config_{config} {}

  const Config& config() const { return config_; }

  /// Session event-log sink. The monitor is sim-free, so quarantine /
  /// re-probe / restore records are stamped with the caller's `now`.
  void set_recorder(log::Recorder* recorder) { recorder_ = recorder; }

  /// Ensures entries exist for reflector indices [0, n).
  void track(std::size_t n);
  std::size_t tracked() const { return entries_.size(); }

  // --- in-service observations ----------------------------------------
  void note_good(std::size_t i);
  /// A bad observation while in service; quarantines after
  /// `bad_to_quarantine` consecutive ones.
  void note_bad(std::size_t i, sim::TimePoint now, const std::string& reason);
  /// Immediate quarantine (handover timeout, detected reboot).
  void quarantine(std::size_t i, sim::TimePoint now,
                  const std::string& reason);
  /// Push a quarantined entry's re-probe out to at least `until` — used by
  /// the arena coordinator when a scripted fault window's end is known, so
  /// the first re-probe lands just after the fault clears instead of
  /// burning failed probes (and doubled backoff) against a fault that
  /// cannot have healed yet. No-op when healthy or already later.
  void extend_quarantine(std::size_t i, sim::TimePoint until);

  // --- quarantine lifecycle -------------------------------------------
  bool quarantined(std::size_t i) const;
  /// The quarantine backoff has expired: one probe attempt is allowed.
  bool probe_due(std::size_t i, sim::TimePoint now) const;
  /// Healthy, or quarantined with the backoff expired (probe allowed).
  bool usable(std::size_t i, sim::TimePoint now) const;
  /// Result of a re-probe: success restores Healthy and resets the
  /// backoff; failure doubles the backoff and re-quarantines.
  void note_probe_result(std::size_t i, sim::TimePoint now, bool good);

  // --- reboot / recalibration -----------------------------------------
  /// A calibration-epoch mismatch was observed: quarantine + mark for
  /// recalibration.
  void note_reboot(std::size_t i, sim::TimePoint now);
  /// The reflector's applied config diverged from what the AP committed
  /// (state-digest mismatch: undetected corruption, missed commit, or an
  /// autonomous safe-mode gain change). Quarantine + mark for
  /// recalibration, same replay path as a reboot.
  void note_divergence(std::size_t i, sim::TimePoint now,
                       const std::string& reason);
  bool needs_recalibration(std::size_t i) const;
  void note_recalibrated(std::size_t i);

  const Entry& entry(std::size_t i) const { return entries_.at(i); }
  const Stats& stats() const { return stats_; }

 private:
  void enter_quarantine(std::size_t i, sim::TimePoint now,
                        const std::string& reason, bool extend_backoff);

  Config config_;
  std::vector<Entry> entries_;
  log::Recorder* recorder_{nullptr};
  Stats stats_;
};

}  // namespace movr::core
