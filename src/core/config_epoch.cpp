#include <core/config_epoch.hpp>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <geom/angle.hpp>
#include <hw/dac.hpp>
#include <hw/leakage.hpp>

namespace movr::core {

namespace {

// Payload validation shared by the config vocabulary: a gain code rides a
// double over a corruptible link, so it must be range-checked before the
// cast (same discipline as MovrReflector::handle).
bool valid_gain_payload(double value) {
  return std::isfinite(value) && value >= 0.0 && value <= 1e9;
}

bool valid_epoch_payload(double value) {
  return std::isfinite(value) && value >= 0.0 && value <= 4.0e9;
}

// MOVR_CP_DEBUG=1 traces every commit decision and digest comparison to
// stderr — the tool that caught the commit/field reorder livelock the
// pending-commit stage now prevents.
bool trace_enabled() {
  static const bool enabled = std::getenv("MOVR_CP_DEBUG") != nullptr;
  return enabled;
}

}  // namespace

std::uint32_t config_digest(double rx_angle, std::uint32_t gain_code,
                            std::uint64_t applied_seq,
                            std::uint32_t boot_epoch) {
  // FNV-1a over the quantised fields, folded to 32 bits so the digest
  // round-trips losslessly through a double control payload. The angle is
  // wrapped exactly the way rf::PhasedArray::steer wraps it, then quantised
  // to a microradian: both sides of the protocol feed the same commanded
  // double through the same pipeline, so an honest reflector always matches
  // and a single flipped mantissa bit virtually never does.
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(
      std::llround(geom::wrap_two_pi(rx_angle) * 1e6)));
  mix(gain_code);
  mix(applied_seq);
  mix(boot_epoch);
  return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

// --- ReflectorConfigAgent -----------------------------------------------

ReflectorConfigAgent::ReflectorConfigAgent(sim::Simulator& simulator,
                                           sim::ControlChannel& control,
                                           MovrReflector& reflector,
                                           Config config, std::mt19937_64 rng)
    : simulator_{simulator},
      control_{control},
      reflector_{reflector},
      config_{config},
      rng_{rng} {
  compute_safe_code();
}

void ReflectorConfigAgent::compute_safe_code() {
  const auto& fe = reflector_.front_end().config();

  // The floor is a design-time property of the hardware build: worst-case
  // isolation over the whole steerable sector minus a margin. Any gain at
  // or below it is stable at EVERY beam combination, which is the only
  // kind of guarantee a device with no RX chain can honour.
  const hw::LeakageModel leakage{fe.leakage};
  const double min_gain = fe.amplifier.min_gain.value();
  const double span = fe.amplifier.max_gain.value() - min_gain;
  const double floor_db =
      std::max(leakage.worst_case_isolation().value() -
                   config_.safe_margin.value(),
               min_gain);
  safe_floor_ = rf::Decibels{floor_db};

  const hw::Dac dac{fe.gain_dac};
  std::uint32_t code = 0;
  if (span > 0.0 && fe.gain_dac.full_scale > 0.0) {
    const auto realised = [&](std::uint32_t c) {
      return min_gain + span * dac.output(c) / fe.gain_dac.full_scale;
    };
    code = dac.code_for((floor_db - min_gain) / span * fe.gain_dac.full_scale);
    // code_for rounds to nearest; the safety direction is DOWN.
    while (code > 0 && realised(code) > floor_db + 1e-9) {
      --code;
    }
  }
  safe_code_ = code;

  oscillation_threshold_a_ = config_.oscillation_current_a;
  if (oscillation_threshold_a_ <= 0.0) {
    // An unstable loop rails the amplifier at saturation, drawing the
    // full class-AB signal current plus the compression knee on top of
    // quiescent. Half-way between quiescent and railed clears both the
    // sensor noise and normal high-drive operation.
    const auto& amp = fe.amplifier;
    const double sat_watts =
        std::pow(10.0, (amp.saturation_power.value() - 30.0) / 10.0);
    oscillation_threshold_a_ =
        amp.quiescent_current_a +
        0.5 * (amp.current_per_watt * sat_watts + amp.compression_current_a);
  }
}

void ReflectorConfigAgent::start() {
  running_ = true;
  last_heard_ = simulator_.now();
  last_boot_epoch_ = reflector_.boot_epoch();
  control_.attach(reflector_.control_name(),
                  [this](const sim::ControlMessage& message) {
                    handle(message);
                  });
  if (config_.watchdog_enabled) {
    simulator_.after(config_.watchdog_tick, [this] { watchdog_tick(); });
  }
}

std::string ReflectorConfigAgent::reply_endpoint() const {
  return "ap/" + reflector_.control_name();
}

std::uint32_t ReflectorConfigAgent::digest() const {
  return config_digest(reflector_.front_end().rx_array().steering(),
                       reflector_.front_end().gain_code(), applied_seq_,
                       reflector_.boot_epoch());
}

void ReflectorConfigAgent::check_reboot() {
  const std::uint32_t epoch = reflector_.boot_epoch();
  if (epoch == last_boot_epoch_) {
    return;
  }
  // Fresh boot: registers are wiped (gain code 0 — already below the
  // floor), the staged epoch is gone, and applied_seq restarts. The AP
  // learns about it from the boot_epoch in the next ack / digest mismatch.
  last_boot_epoch_ = epoch;
  staged_ = Staged{};
  applied_seq_ = 0;
  if (safe_mode_ && recorder_ != nullptr) {
    recorder_->record(log::EventKind::kSafeModeExit,
                      {{"reflector", log_index_}, {"reboot", 1}});
  }
  safe_mode_ = false;
  oscillation_strikes_ = 0;
  last_heard_ = simulator_.now();
}

void ReflectorConfigAgent::watchdog_tick() {
  if (!running_) {
    return;
  }
  check_reboot();
  const sim::TimePoint now = simulator_.now();

  // Level-triggered, not edge-triggered: while the control link is silent
  // the gain is re-clamped to the floor whenever it sits above it, even if
  // the safe-mode flag is already set — the AP's direct recalibration path
  // can restore gain without this agent hearing about it, and a stale flag
  // must not disarm the watchdog for the next partition.
  if (now - last_heard_ >= config_.silence_timeout &&
      (!safe_mode_ || reflector_.front_end().gain_code() > safe_code_)) {
    enter_safe_mode(/*oscillation=*/false);
  }

  // Oscillation guard: the supply current is the reflector's only
  // observable. A railed reading for `oscillation_strikes` consecutive
  // ticks (debounce against sensor noise) trips the floor immediately,
  // silence or not.
  const rf::DbmPower drive =
      input_probe_ ? input_probe_() : rf::DbmPower{-90.0};
  const double amps = reflector_.front_end().read_current(drive, rng_);
  if (amps >= oscillation_threshold_a_ &&
      reflector_.front_end().gain_code() > safe_code_) {
    if (++oscillation_strikes_ >= config_.oscillation_strikes) {
      enter_safe_mode(/*oscillation=*/true);
      oscillation_strikes_ = 0;
    }
  } else {
    oscillation_strikes_ = 0;
  }

  simulator_.after(config_.watchdog_tick, [this] { watchdog_tick(); });
}

void ReflectorConfigAgent::enter_safe_mode(bool oscillation) {
  if (oscillation) {
    ++stats_.oscillation_trips;
  }
  if (!safe_mode_) {
    ++stats_.safe_mode_entries;
    if (recorder_ != nullptr) {
      recorder_->record(log::EventKind::kSafeModeEnter,
                        {{"reflector", log_index_},
                         {"oscillation", oscillation ? 1 : 0}});
    }
  }
  safe_mode_ = true;
  if (reflector_.front_end().gain_code() > safe_code_) {
    reflector_.front_end().set_gain_code(safe_code_);
  }
}

void ReflectorConfigAgent::apply_commit(const sim::ControlMessage& message) {
  if (trace_enabled()) {
    std::fprintf(
        stderr,
        "[%9.4f] %s commit seq=%llu applied=%llu staged(seq=%llu rx=%d tx=%d "
        "gain=%d)\n",
        sim::to_seconds(simulator_.now()), reflector_.control_name().c_str(),
        static_cast<unsigned long long>(message.seq),
        static_cast<unsigned long long>(applied_seq_),
        static_cast<unsigned long long>(staged_.seq),
        staged_.rx.has_value(), staged_.tx.has_value(),
        staged_.gain.has_value());
  }
  if (message.seq <= applied_seq_ || message.seq < staged_.seq) {
    // A reordered or replayed commit from an attempt that is already
    // applied or already superseded; re-ack so the AP's retry logic
    // converges on the truth instead of timing out, and leave the live
    // stage alone.
    ++stats_.stale_commits;
    send_ack();
    return;
  }
  if (message.seq == staged_.seq && staged_.complete()) {
    apply_staged();
    return;
  }
  // The commit overtook some (or all) of its field messages. Nothing is
  // applied yet — atomicity means all-or-nothing — but the commit is held
  // on the stage: the link layer's retries will deliver the stragglers and
  // the epoch applies then (see handle()). The interim ack carries the OLD
  // applied_seq, telling the AP the epoch has not landed yet.
  ++stats_.incomplete_commits;
  if (staged_.seq != message.seq) {
    staged_ = Staged{};
    staged_.seq = message.seq;
  }
  staged_.commit_pending = true;
  send_ack();
}

void ReflectorConfigAgent::apply_staged() {
  auto& fe = reflector_.front_end();
  fe.steer_rx(*staged_.rx);
  fe.steer_tx(*staged_.tx);
  fe.set_gain_code(static_cast<std::uint32_t>(std::round(*staged_.gain)));
  applied_seq_ = staged_.seq;
  staged_ = Staged{};
  if (safe_mode_ && recorder_ != nullptr) {
    recorder_->record(log::EventKind::kSafeModeExit,
                      {{"reflector", log_index_}, {"reboot", 0}});
  }
  safe_mode_ = false;  // the AP has re-asserted the registers
  ++stats_.epochs_applied;
  send_ack();
}

void ReflectorConfigAgent::send_ack() {
  control_.send(reply_endpoint(),
                sim::ControlMessage{"cfg_ack",
                                    static_cast<double>(reflector_.boot_epoch()),
                                    0, applied_seq_});
  ++stats_.acks_sent;
}

void ReflectorConfigAgent::handle(const sim::ControlMessage& message) {
  last_heard_ = simulator_.now();
  check_reboot();

  if (message.topic == "cfg_rx" || message.topic == "cfg_tx") {
    if (!MovrReflector::valid_angle(message.value) || message.seq == 0 ||
        message.seq <= applied_seq_ || message.seq < staged_.seq) {
      // Firmware-rejected payload, or a straggler from an attempt that is
      // already applied or superseded — it must not clobber the live stage.
      return;
    }
    if (staged_.seq != message.seq) {
      staged_ = Staged{};
      staged_.seq = message.seq;
    }
    (message.topic == "cfg_rx" ? staged_.rx : staged_.tx) = message.value;
    if (staged_.commit_pending && staged_.complete()) {
      apply_staged();
    }
  } else if (message.topic == "cfg_gain") {
    if (!valid_gain_payload(message.value) || message.seq == 0 ||
        message.seq <= applied_seq_ || message.seq < staged_.seq) {
      return;
    }
    if (staged_.seq != message.seq) {
      staged_ = Staged{};
      staged_.seq = message.seq;
    }
    staged_.gain = message.value;
    if (staged_.commit_pending && staged_.complete()) {
      apply_staged();
    }
  } else if (message.topic == "cfg_commit") {
    apply_commit(message);
  } else if (message.topic == "cfg_digest_query") {
    control_.send(reply_endpoint(),
                  sim::ControlMessage{"cfg_digest",
                                      static_cast<double>(digest()), 0,
                                      message.seq});
    ++stats_.digest_replies;
  } else {
    // Legacy angle-search / gain-control vocabulary: forward to the
    // firmware dispatcher unchanged. A (valid) direct gain write is the AP
    // re-asserting the gain register, which ends safe mode.
    if (message.topic == "gain_code" && valid_gain_payload(message.value)) {
      if (safe_mode_ && recorder_ != nullptr) {
        recorder_->record(log::EventKind::kSafeModeExit,
                          {{"reflector", log_index_}, {"reboot", 0}});
      }
      safe_mode_ = false;
    }
    reflector_.handle(message);
  }
}

// --- ControlPlane --------------------------------------------------------

ControlPlane::ControlPlane(sim::Simulator& simulator,
                           sim::ControlChannel& control, Config config)
    : simulator_{simulator}, control_{control}, config_{config} {}

std::size_t ControlPlane::slot_for(std::size_t index) const {
  for (std::size_t slot = 0; slot < managed_.size(); ++slot) {
    if (managed_[slot].index == index) {
      return slot;
    }
  }
  return managed_.size();
}

void ControlPlane::manage(std::size_t index, const MovrReflector& reflector,
                          const ReflectorConfigAgent* agent) {
  Managed m;
  m.index = index;
  m.endpoint = reflector.control_name();
  m.reply_endpoint = "ap/" + reflector.control_name();
  m.agent = agent;
  m.max_gain_code = reflector.front_end().max_gain_code();
  m.boot_epoch = reflector.boot_epoch();
  const std::size_t slot = managed_.size();
  managed_.push_back(std::move(m));
  control_.attach(managed_[slot].reply_endpoint,
                  [this, slot](const sim::ControlMessage& message) {
                    on_reply(slot, message);
                  });
  if (health_ != nullptr) {
    health_->track(index + 1);
  }
}

void ControlPlane::refresh_expected(Managed& m) {
  m.expected_digest =
      config_digest(m.last_epoch.rx_angle, m.last_epoch.gain_code,
                    m.expected_seq, m.boot_epoch);
}

std::uint64_t ControlPlane::send_epoch(std::size_t slot) {
  Managed& m = managed_[slot];
  const std::uint64_t seq = ++next_seq_;
  m.expected_seq = seq;
  m.awaiting_ack = true;
  refresh_expected(m);
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kEpochStage,
                      {{"reflector", static_cast<std::int64_t>(m.index)},
                       {"seq", static_cast<std::int64_t>(seq)}});
  }
  const auto& epoch = m.last_epoch;
  control_.send(m.endpoint,
                sim::ControlMessage{"cfg_rx", epoch.rx_angle, 0, seq});
  control_.send(m.endpoint,
                sim::ControlMessage{"cfg_tx", epoch.tx_angle, 0, seq});
  control_.send(m.endpoint,
                sim::ControlMessage{"cfg_gain",
                                    static_cast<double>(epoch.gain_code), 0,
                                    seq});
  control_.send(m.endpoint, sim::ControlMessage{"cfg_commit", 0.0, 0, seq});
  simulator_.after(config_.reply_timeout, [this, slot, seq] {
    Managed& inner = managed_[slot];
    if (inner.awaiting_ack && inner.expected_seq == seq) {
      inner.awaiting_ack = false;
      ++stats_.ack_timeouts;
      if (!inner.partitioned) {
        reconcile(slot);
      }
    }
  });
  return seq;
}

std::uint64_t ControlPlane::commit(std::size_t index,
                                   const ConfigEpoch& epoch) {
  const std::size_t slot = slot_for(index);
  if (slot == managed_.size()) {
    return 0;
  }
  Managed& m = managed_[slot];
  m.last_epoch = epoch;
  m.last_epoch.gain_code = std::min(epoch.gain_code, m.max_gain_code);
  ++stats_.epochs_committed;
  const std::uint64_t seq = send_epoch(slot);
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kEpochCommit,
                      {{"reflector", static_cast<std::int64_t>(index)},
                       {"seq", static_cast<std::int64_t>(seq)}});
  }
  return seq;
}

void ControlPlane::start() {
  running_ = true;
  for (std::size_t slot = 0; slot < managed_.size(); ++slot) {
    // Stagger the per-reflector loops so queries don't burst in lockstep.
    const auto offset = sim::Duration{static_cast<long long>(slot) * 1'000'000};
    simulator_.after(config_.digest_interval + offset,
                     [this, slot] { digest_tick(slot); });
  }
}

void ControlPlane::digest_tick(std::size_t slot) {
  if (!running_) {
    return;
  }
  Managed& m = managed_[slot];
  const std::uint64_t qseq = ++next_seq_;
  m.awaiting_digest = true;
  m.digest_query_seq = qseq;
  control_.send(m.endpoint,
                sim::ControlMessage{"cfg_digest_query", 0.0, 0, qseq});
  ++stats_.digest_queries;
  simulator_.after(config_.reply_timeout, [this, slot, qseq] {
    Managed& inner = managed_[slot];
    if (inner.awaiting_digest && inner.digest_query_seq == qseq) {
      inner.awaiting_digest = false;
      ++inner.missed_replies;
      if (!inner.partitioned &&
          inner.missed_replies >= config_.missed_replies_to_partition) {
        note_unreachable(inner);
      } else if (inner.partitioned && health_ != nullptr) {
        // Keep the reflector benched for as long as the partition lasts:
        // every missed reply refreshes the quarantine window, so the link
        // manager cannot flap back onto a reflector it cannot command.
        health_->quarantine(inner.index, simulator_.now(),
                            "control partition");
      }
    }
  });
  simulator_.after(config_.digest_interval,
                   [this, slot] { digest_tick(slot); });
}

void ControlPlane::note_unreachable(Managed& m) {
  m.partitioned = true;
  ++stats_.partitions_entered;
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kPartitionEnter,
                      {{"reflector", static_cast<std::int64_t>(m.index)}});
  }
  if (health_ != nullptr) {
    health_->quarantine(m.index, simulator_.now(), "control partition");
  }
}

void ControlPlane::note_reachable(Managed& m) {
  if (m.partitioned) {
    m.partitioned = false;
    ++stats_.partitions_healed;
    if (recorder_ != nullptr) {
      recorder_->record(log::EventKind::kPartitionHeal,
                        {{"reflector", static_cast<std::int64_t>(m.index)}});
    }
  }
  m.missed_replies = 0;
}

void ControlPlane::mark_divergent(Managed& m, const std::string& reason) {
  if (m.divergent) {
    return;
  }
  m.divergent = true;
  m.divergent_since = simulator_.now();
  ++stats_.divergences_detected;
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kDivergence,
                      {{"reflector", static_cast<std::int64_t>(m.index)}});
  }
  if (health_ != nullptr) {
    health_->note_divergence(m.index, simulator_.now(), reason);
  }
}

void ControlPlane::reconcile(std::size_t slot) {
  Managed& m = managed_[slot];
  const sim::TimePoint now = simulator_.now();
  if (m.partitioned || now - m.last_reconcile < config_.reconcile_backoff) {
    return;
  }
  m.last_reconcile = now;
  ++stats_.reconciliations;
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kReconcile,
                      {{"reflector", static_cast<std::int64_t>(m.index)}});
  }
  send_epoch(slot);
}

void ControlPlane::on_reply(std::size_t slot, const sim::ControlMessage& message) {
  note_reachable(managed_[slot]);
  if (message.topic == "cfg_ack") {
    on_ack(slot, message);
  } else if (message.topic == "cfg_digest") {
    on_digest(slot, message);
  }
}

void ControlPlane::on_ack(std::size_t slot, const sim::ControlMessage& message) {
  Managed& m = managed_[slot];
  ++stats_.acks_received;
  if (recorder_ != nullptr) {
    recorder_->record(log::EventKind::kEpochAck,
                      {{"reflector", static_cast<std::int64_t>(m.index)},
                       {"seq", static_cast<std::int64_t>(message.seq)}});
  }
  if (message.seq == m.expected_seq) {
    m.awaiting_ack = false;
  }
  if (valid_epoch_payload(message.value)) {
    const auto boot = static_cast<std::uint32_t>(std::llround(message.value));
    if (boot > m.boot_epoch) {
      // The reflector rebooted since we last looked: its registers are
      // wiped and everything we committed is gone. Re-baseline, route it
      // through the recalibration path, and replay the epoch.
      m.boot_epoch = boot;
      ++stats_.reboots_detected;
      if (health_ != nullptr) {
        health_->note_reboot(m.index, simulator_.now());
      }
      refresh_expected(m);
      reconcile(slot);
      return;
    }
  }
  if (m.awaiting_ack && message.seq < m.expected_seq) {
    // The commit reached the reflector but did not apply (fields lost or
    // reordered behind it): replay the whole epoch under a fresh seq.
    m.awaiting_ack = false;
    reconcile(slot);
  }
}

void ControlPlane::on_digest(std::size_t slot,
                             const sim::ControlMessage& message) {
  Managed& m = managed_[slot];
  ++stats_.digest_replies;
  m.awaiting_digest = false;
  const bool matches =
      std::isfinite(message.value) && message.value >= 0.0 &&
      message.value <= 4.0e9 &&
      static_cast<std::uint32_t>(std::llround(message.value)) ==
          m.expected_digest;
  if (trace_enabled()) {
    std::fprintf(stderr,
                 "[%9.4f] %s digest %s got=%.0f want=%u (rx=%.6f gain=%u "
                 "seq=%llu boot=%u) awaiting_ack=%d\n",
                 sim::to_seconds(simulator_.now()), m.endpoint.c_str(),
                 matches ? "match" : "MISMATCH", message.value,
                 m.expected_digest, m.last_epoch.rx_angle,
                 m.last_epoch.gain_code,
                 static_cast<unsigned long long>(m.expected_seq), m.boot_epoch,
                 m.awaiting_ack);
  }
  if (matches) {
    m.divergent = false;
    return;
  }
  if (m.awaiting_ack) {
    return;  // commit in flight: the reflector is legitimately behind
  }
  if (!m.divergent && health_ != nullptr &&
      health_->needs_recalibration(m.index)) {
    // A recalibration sweep is moving the registers on purpose; mismatches
    // are expected and replaying an epoch now would fight the search.
    return;
  }
  reconcile(slot);
  mark_divergent(m, "config digest divergence");
}

bool ControlPlane::partitioned(std::size_t index) const {
  const std::size_t slot = slot_for(index);
  return slot < managed_.size() && managed_[slot].partitioned;
}

sim::Duration ControlPlane::divergence_age(std::size_t index,
                                           sim::TimePoint now) const {
  const std::size_t slot = slot_for(index);
  if (slot >= managed_.size() || !managed_[slot].divergent) {
    return sim::Duration{0};
  }
  return now - managed_[slot].divergent_since;
}

sim::Duration ControlPlane::max_divergence_age(sim::TimePoint now) const {
  sim::Duration worst{0};
  for (const auto& m : managed_) {
    if (m.divergent && !m.partitioned) {
      worst = std::max(worst, now - m.divergent_since);
    }
  }
  return worst;
}

ControlPlaneIncidents ControlPlane::incidents() const {
  ControlPlaneIncidents out;
  out.partitions_entered = stats_.partitions_entered;
  out.partitions_healed = stats_.partitions_healed;
  out.divergences_detected = stats_.divergences_detected;
  out.reconciliations = stats_.reconciliations;
  out.reboots_detected = stats_.reboots_detected;
  out.ack_timeouts = stats_.ack_timeouts;
  for (const auto& m : managed_) {
    if (m.agent != nullptr) {
      out.safe_mode_entries += m.agent->stats().safe_mode_entries;
      out.oscillation_trips += m.agent->stats().oscillation_trips;
    }
  }
  return out;
}

}  // namespace movr::core
