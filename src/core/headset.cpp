#include <core/headset.hpp>

#include <numeric>

#include <rf/measurement.hpp>

namespace movr::core {

HeadsetRadio::HeadsetRadio(geom::Vec2 position, double orientation_rad,
                           Config config)
    : node_{position, orientation_rad, config.array}, config_{config} {}

rf::Decibels HeadsetRadio::observe(rf::Decibels true_snr,
                                   std::mt19937_64& rng) {
  const rf::Decibels estimate =
      rf::estimate_snr(true_snr, config_.estimation_symbols, rng);
  history_.push_back(estimate.value());
  while (history_.size() > static_cast<std::size_t>(config_.smoothing_window)) {
    history_.pop_front();
  }
  const rf::Decibels smooth = smoothed();
  if (degraded_) {
    if (smooth >= config_.recover_threshold) {
      degraded_ = false;
    }
  } else if (smooth < config_.degrade_threshold) {
    degraded_ = true;
  }
  return estimate;
}

rf::Decibels HeadsetRadio::smoothed() const {
  if (history_.empty()) {
    return rf::Decibels{0.0};
  }
  const double sum = std::accumulate(history_.begin(), history_.end(), 0.0);
  return rf::Decibels{sum / static_cast<double>(history_.size())};
}

void HeadsetRadio::reset() {
  history_.clear();
  degraded_ = false;
}

}  // namespace movr::core
