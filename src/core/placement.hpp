// Reflector placement planning.
//
// The paper installs reflectors "by sticking them to the walls" and leaves
// placement to the user. This planner makes that step principled: it
// enumerates wall mounts, Monte-Carlo-samples player positions and blockage
// events, and greedily picks the mounts that minimise the fraction of
// events left without a VR-grade link. Used by the placement ablation and
// the examples/placement_planner tool.
#pragma once

#include <random>
#include <vector>

#include <core/scene.hpp>
#include <geom/vec2.hpp>
#include <rf/units.hpp>

namespace movr::core {

struct PlacementCandidate {
  geom::Vec2 position;
  double orientation;  // boresight, global radians (into the room)
};

struct PlacementPlan {
  std::vector<PlacementCandidate> chosen;
  /// Outage fraction after each greedy addition: [no reflectors, +1, +2...].
  std::vector<double> outage_curve;
};

class PlacementPlanner {
 public:
  struct Config {
    /// Candidate mounts are spaced this far apart along each wall.
    double mount_spacing_m{1.0};
    /// Clearance from room corners for candidate mounts.
    double corner_margin_m{0.6};
    /// Monte-Carlo blockage events evaluated per candidate set.
    int trials{120};
    /// Stop adding reflectors when outage falls below this, or when
    /// `max_reflectors` are placed.
    double target_outage{0.02};
    int max_reflectors{3};
    /// SNR a link must reach to count as covered.
    rf::Decibels required_snr{19.0};
    /// Worker threads for the Monte-Carlo evaluation (0 = one per hardware
    /// thread). Every trial draws from its own RNG stream, so plans are
    /// identical for every thread count.
    unsigned threads{0};
  };

  PlacementPlanner(const Config& config, std::uint64_t seed)
      : config_{config}, seed_{seed} {}

  /// Candidate mounts along the walls of `room` (excluding the AP's wall
  /// neighbourhood — a reflector next to the AP adds nothing).
  std::vector<PlacementCandidate> candidates(const channel::Room& room,
                                             geom::Vec2 ap_position) const;

  /// Greedy plan for a room with the AP at `ap_position`.
  PlacementPlan plan(const channel::Room& room, geom::Vec2 ap_position) const;

 private:
  Config config_;
  std::uint64_t seed_;

  /// Outage fraction for a given set of mounts.
  double evaluate(const channel::Room& room, geom::Vec2 ap_position,
                  const std::vector<PlacementCandidate>& mounts) const;
};

}  // namespace movr::core
