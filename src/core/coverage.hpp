// Coverage maps: link quality over a grid of headset positions.
//
// The deployment-facing view of the whole system: for every point the
// player could stand, what SNR does the direct beam deliver, what does the
// best reflector deliver, and does the room meet the VR requirement when
// blockage strikes? Feeds the placement planner's intuition, the ASCII
// coverage example, and the placement tests.
#pragma once

#include <vector>

#include <core/channel_oracle.hpp>
#include <core/scene.hpp>
#include <rf/units.hpp>

namespace movr::core {

struct CoverageCell {
  geom::Vec2 position;
  rf::Decibels direct_snr{-300.0};
  /// Best via-reflector SNR over all deployed reflectors (reflectors are
  /// re-aimed at the cell, as the live system would).
  rf::Decibels via_snr{-300.0};
  int best_reflector{-1};  // -1 = none deployed / none usable
};

struct CoverageMap {
  int cells_x{0};
  int cells_y{0};
  std::vector<CoverageCell> cells;  // row-major, y outer
  /// Oracle counters summed over every worker clone that evaluated cells —
  /// the benches report the hit rate the grid workload achieved.
  ChannelOracle::Stats oracle;

  const CoverageCell& at(int ix, int iy) const {
    return cells[static_cast<std::size_t>(iy) * static_cast<std::size_t>(cells_x) +
                 static_cast<std::size_t>(ix)];
  }

  /// Fraction of cells where max(direct, via) >= threshold.
  double covered_fraction(rf::Decibels threshold) const;

  /// Fraction of cells where the *reflector* path alone meets the
  /// threshold — the blockage-resilient share of the room.
  double reflector_covered_fraction(rf::Decibels threshold) const;
};

/// Evaluates the scene over a grid with `resolution_m` spacing, a margin
/// from the walls. Cells are evaluated on per-worker Scene clones — the
/// passed scene itself is never touched — split across `threads` workers
/// (0 = one per hardware thread). Results are identical for every thread
/// count: each cell's evaluation is independent and order-free.
CoverageMap compute_coverage(const Scene& scene, double resolution_m = 0.25,
                             double wall_margin_m = 0.5,
                             unsigned threads = 0);

/// Renders `map` as ASCII art: '#' covered by direct, '+' covered only via
/// a reflector, '.' below threshold. One row per grid line, north up.
std::string render_coverage(const CoverageMap& map, rf::Decibels threshold);

}  // namespace movr::core
