// Minimal fork-join parallelism for the grid evaluators.
//
// The coverage and placement workloads are embarrassingly parallel: many
// independent cells/trials, each a few hundred microseconds of channel
// evaluation. A static partition into one contiguous chunk per worker is
// enough — chunk costs are uniform, and static chunks keep results
// bit-deterministic regardless of thread count (each index always computes
// the same value; only the interleaving changes). Threads are spawned per
// call: at grid-evaluation granularity the spawn cost is noise, and no idle
// pool outlives the call.
#pragma once

#include <cstddef>
#include <functional>

namespace movr::core {

/// Resolves a requested worker count: 0 means "one per hardware thread"
/// (at least 1). Nonzero values are returned unchanged.
unsigned resolve_threads(unsigned requested);

/// Partitions [0, count) into one contiguous chunk per worker and runs
/// chunk(begin, end) on each concurrently (the caller's thread works too).
/// Blocks until every chunk finishes; the first exception thrown by any
/// chunk is rethrown after the join. `threads` follows resolve_threads
/// semantics and is clamped to `count`. chunk must be safe to run
/// concurrently on disjoint ranges.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, std::size_t)>& chunk);

}  // namespace movr::core
