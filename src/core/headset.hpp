// The headset-mounted mmWave receiver.
//
// The headset estimates SNR from received OFDM symbols (Section 5.2) and —
// per Section 4.1 — "tracks the SNR and can trigger a new measurement if
// the SNR begins to degrade". The degradation detector here is that
// trigger: a short moving average crossing a threshold, with hysteresis so
// a single noisy estimate cannot flap the link.
#pragma once

#include <deque>
#include <random>

#include <phy/radio.hpp>
#include <rf/units.hpp>

namespace movr::core {

class HeadsetRadio {
 public:
  struct Config {
    rf::PhasedArray::Config array{};
    /// Symbols averaged per SNR estimate.
    int estimation_symbols{16};
    /// SNR below which the headset reports degradation. Sits just above
    /// the SNR needed to sustain the Vive's raw rate (MCS 23, ~19 dB), so
    /// the trigger fires before frames start glitching.
    rf::Decibels degrade_threshold{20.0};
    /// SNR above which it reports recovery (hysteresis gap).
    rf::Decibels recover_threshold{22.0};
    /// Estimates averaged by the degradation detector.
    int smoothing_window{3};
  };

  HeadsetRadio(geom::Vec2 position, double orientation_rad)
      : HeadsetRadio{position, orientation_rad, Config{}} {}
  HeadsetRadio(geom::Vec2 position, double orientation_rad, Config config);

  phy::RadioNode& node() { return node_; }
  const phy::RadioNode& node() const { return node_; }
  const Config& config() const { return config_; }

  /// Feeds one true SNR observation; returns the headset's noisy estimate
  /// and updates the degradation state.
  rf::Decibels observe(rf::Decibels true_snr, std::mt19937_64& rng);

  /// Smoothed SNR over the last `smoothing_window` estimates.
  rf::Decibels smoothed() const;

  /// True while the smoothed SNR sits below the degrade threshold and has
  /// not yet recovered above the recover threshold.
  bool degraded() const { return degraded_; }

  /// Forgets history (used across teleports/scene changes in tests).
  void reset();

 private:
  phy::RadioNode node_;
  Config config_;
  std::deque<double> history_;
  bool degraded_{false};
};

}  // namespace movr::core
