#include <core/occlusion_forecaster.hpp>

#include <algorithm>
#include <cmath>

#include <channel/path.hpp>

namespace movr::core {

bool OcclusionForecaster::los_blocked(const Scene& scene,
                                      geom::Vec2 headset) const {
  const geom::Vec2 ap = scene.ap().node().position();
  for (const channel::Path& path : scene.paths_between(ap, headset)) {
    if (path.is_los()) {
      return path.is_blocked(config_.blocked_threshold_db);
    }
  }
  // No LOS path at all (fully absorbed / outside the solver's loss cap):
  // that is as blocked as it gets.
  return true;
}

std::optional<LinkRiskWindow> OcclusionForecaster::forecast(
    const Scene& scene, sim::TimePoint now) {
  ++counters_.forecasts;
  if (tracker_.sample_count() < config_.min_samples ||
      !tracker_.has_velocity_fit()) {
    // Short or degenerate history pins predict() to "unmoved" — that is a
    // non-prediction, not a forecast of a stationary player. Skip.
    ++counters_.no_fit_skips;
    return std::nullopt;
  }

  std::optional<LinkRiskWindow> honest;
  const double speed = tracker_.velocity().norm();
  if (speed >= config_.min_speed_mps &&
      !los_blocked(scene, tracker_.predict(sim::Duration{0}))) {
    // Walk the extrapolated trajectory; a window spans the first
    // contiguous run of blocked steps.
    const long steps = std::max<long>(1, config_.horizon / config_.step);
    long first = -1;
    long last = -1;
    for (long k = 1; k <= steps; ++k) {
      const sim::Duration ahead = config_.step * k;
      const bool risky = los_blocked(scene, tracker_.predict(ahead));
      if (risky && first < 0) {
        first = k;
        last = k;
      } else if (risky && last == k - 1) {
        last = k;
      } else if (!risky && first >= 0) {
        break;  // window closed; later re-blockage is next tick's problem
      }
    }
    if (first >= 0) {
      // Confidence: a fuller history fits a better velocity, and a longer
      // contiguous blocked run is harder to explain away as fit noise.
      const double sample_factor =
          std::min(1.0, static_cast<double>(tracker_.sample_count()) /
                            static_cast<double>(config_.tracker.history));
      const double run_factor =
          0.6 + 0.4 * static_cast<double>(last - first + 1) /
                    static_cast<double>(steps);
      LinkRiskWindow window;
      window.t_start = now + config_.step * first;
      window.t_end = now + config_.step * (last + 1);
      window.confidence = std::min(1.0, sample_factor * run_factor);
      honest = window;
    }
  }

  if (config_.chaos_rate > 0.0) {
    std::uniform_real_distribution<double> coin{0.0, 1.0};
    if (coin(chaos_rng_) < config_.chaos_rate) {
      // Invert the honest answer: suppress a real window, or fabricate a
      // confident one out of clear air. At chaos_rate 1.0 every forecast
      // is wrong — the containment gates must still hold.
      ++counters_.chaos_garbled;
      if (honest.has_value()) {
        honest.reset();
      } else {
        LinkRiskWindow spurious;
        spurious.t_start = now + std::chrono::milliseconds{20};
        spurious.t_end = now + std::chrono::milliseconds{40};
        spurious.confidence = 0.9;
        honest = spurious;
      }
    }
  }

  if (honest.has_value()) {
    ++counters_.windows_issued;
  }
  return honest;
}

}  // namespace movr::core
