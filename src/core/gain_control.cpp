#include <core/gain_control.hpp>

#include <algorithm>

namespace movr::core {

GainController::Result GainController::run(hw::ReflectorFrontEnd& front_end,
                                           rf::DbmPower input,
                                           std::mt19937_64& rng,
                                           const Config& config) {
  Result result;
  const std::uint32_t max_code = front_end.max_gain_code();
  const auto step_cost =
      config.step_settle + config.sample_time * config.samples_per_step;

  front_end.set_gain_code(0);
  double previous_current =
      front_end.read_current(input, rng, config.samples_per_step);
  result.duration += step_cost;
  result.trace.push_back(
      {0, front_end.amplifier_gain().value(), previous_current});

  std::uint32_t code = 0;
  while (code < max_code) {
    code = std::min(code + config.code_step, max_code);
    front_end.set_gain_code(code);
    const double current =
        front_end.read_current(input, rng, config.samples_per_step);
    result.duration += step_cost;
    result.trace.push_back(
        {code, front_end.amplifier_gain().value(), current});

    if (current - previous_current > config.knee_threshold_a) {
      // The knee: saturation (or outright oscillation) sets in within this
      // step. Keep the gain just below it.
      result.knee_found = true;
      const std::uint32_t knee_code = code;
      const std::uint32_t safe_code =
          knee_code > config.backoff_codes ? knee_code - config.backoff_codes
                                           : 0;
      front_end.set_gain_code(safe_code);
      result.final_code = safe_code;
      result.final_gain = front_end.amplifier_gain();
      return result;
    }
    previous_current = current;
  }

  // No knee up to the top of the range: the full gain is safe (leakage is
  // high enough, or the input is too weak to compress the amplifier).
  result.final_code = max_code;
  result.final_gain = front_end.amplifier_gain();
  return result;
}

}  // namespace movr::core
