// Adaptive amplifier-gain control (paper Section 4.2).
//
// The reflector must run its amplifier as hot as possible (SNR) but below
// the TX->RX leakage (stability) — and the leakage moves by ~20 dB with the
// beam angles (Fig. 7). Lacking any receive chain, the controller exploits
// the one observable it has: an amplifier near saturation draws markedly
// more supply current. The algorithm ramps the gain DAC code step by step,
// watching the averaged current-sensor reading, stops at the first
// disproportionate jump (the knee), and backs off just below it.
#pragma once

#include <random>
#include <vector>

#include <hw/front_end.hpp>
#include <rf/units.hpp>
#include <sim/time.hpp>

namespace movr::core {

class GainController {
 public:
  struct Config {
    /// DAC codes advanced per ramp step.
    std::uint32_t code_step{2};
    /// Current-sensor conversions averaged per step.
    int samples_per_step{8};
    /// Per-step current jump that signals the saturation knee, amps.
    /// Must clear the sensor noise (sigma/sqrt(samples)) by a wide margin
    /// but sit well below the amplifier's compression current.
    double knee_threshold_a{0.020};
    /// Codes backed off below the detected knee.
    std::uint32_t backoff_codes{8};
    /// Settling time after a gain change before sampling.
    sim::Duration step_settle{std::chrono::microseconds{100}};
    /// Time per current-sensor conversion.
    sim::Duration sample_time{std::chrono::microseconds{100}};
  };

  struct StepTrace {
    std::uint32_t code{0};
    double gain_db{0.0};
    double current_a{0.0};
  };

  struct Result {
    std::uint32_t final_code{0};
    rf::Decibels final_gain{0.0};
    bool knee_found{false};
    /// Wall-clock cost of the ramp (for the Section 6 latency budget).
    sim::Duration duration{0};
    std::vector<StepTrace> trace;
  };

  /// Runs the ramp on `front_end` while the AP drives it with `input` at
  /// the RX connector. Leaves the front end configured at the chosen code.
  static Result run(hw::ReflectorFrontEnd& front_end, rf::DbmPower input,
                    std::mt19937_64& rng, const Config& config);

  static Result run(hw::ReflectorFrontEnd& front_end, rf::DbmPower input,
                    std::mt19937_64& rng) {
    return run(front_end, input, rng, Config{});
  }
};

}  // namespace movr::core
