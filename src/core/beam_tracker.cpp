#include <core/beam_tracker.hpp>

#include <geom/angle.hpp>

namespace movr::core {

BeamTracker::Result BeamTracker::retarget(Scene& scene,
                                          MovrReflector& reflector,
                                          std::mt19937_64& rng,
                                          const Config& config) {
  Result result;

  // Tracked (noisy) headset position, as the VR runtime reports it.
  std::normal_distribution<double> jitter{0.0, config.tracking_noise_m};
  const geom::Vec2 tracked = scene.headset().node().position() +
                             geom::Vec2{jitter(rng), jitter(rng)};
  const double geometric =
      reflector.to_local((tracked - reflector.position()).heading());

  reflector.front_end().steer_tx(geometric);
  result.reflector_tx_angle = geometric;
  result.snr = scene.via_snr(reflector).snr;
  result.duration += config.command_wait;
  result.bt_commands += 1;

  if (config.refine) {
    const double span = geom::deg_to_rad(config.refine_span_deg);
    const double step = geom::deg_to_rad(config.refine_step_deg);
    for (double candidate = geometric - span; candidate <= geometric + span;
         candidate += step) {
      reflector.front_end().steer_tx(candidate);
      const rf::Decibels snr = scene.via_snr(reflector).snr;
      result.duration += config.command_wait + config.snr_report_time;
      result.bt_commands += 1;
      if (snr > result.snr) {
        result.snr = snr;
        result.reflector_tx_angle = candidate;
      }
    }
    reflector.front_end().steer_tx(result.reflector_tx_angle);
    result.duration += config.command_wait;
    result.bt_commands += 1;
  }
  return result;
}

}  // namespace movr::core
