#include <core/coverage.hpp>

#include <algorithm>
#include <string>

namespace movr::core {

double CoverageMap::covered_fraction(rf::Decibels threshold) const {
  if (cells.empty()) {
    return 0.0;
  }
  const auto covered = std::count_if(
      cells.begin(), cells.end(), [threshold](const CoverageCell& c) {
        return std::max(c.direct_snr, c.via_snr) >= threshold;
      });
  return static_cast<double>(covered) / static_cast<double>(cells.size());
}

double CoverageMap::reflector_covered_fraction(rf::Decibels threshold) const {
  if (cells.empty()) {
    return 0.0;
  }
  const auto covered = std::count_if(
      cells.begin(), cells.end(),
      [threshold](const CoverageCell& c) { return c.via_snr >= threshold; });
  return static_cast<double>(covered) / static_cast<double>(cells.size());
}

CoverageMap compute_coverage(Scene& scene, double resolution_m,
                             double wall_margin_m) {
  CoverageMap map;
  const double w = scene.room().width();
  const double d = scene.room().depth();
  const geom::Vec2 saved_pos = scene.headset().node().position();
  const double saved_orient = scene.headset().node().orientation();
  const double saved_ap_steer = scene.ap().node().array().steering();

  map.cells_x = static_cast<int>((w - 2.0 * wall_margin_m) / resolution_m) + 1;
  map.cells_y = static_cast<int>((d - 2.0 * wall_margin_m) / resolution_m) + 1;
  map.cells.reserve(static_cast<std::size_t>(map.cells_x) *
                    static_cast<std::size_t>(map.cells_y));

  for (int iy = 0; iy < map.cells_y; ++iy) {
    for (int ix = 0; ix < map.cells_x; ++ix) {
      CoverageCell cell;
      cell.position = {wall_margin_m + ix * resolution_m,
                       wall_margin_m + iy * resolution_m};
      scene.headset().node().set_position(cell.position);

      // Direct link, both ends aimed.
      scene.ap().node().steer_toward(cell.position);
      scene.headset().node().face_toward(scene.ap().node().position());
      cell.direct_snr = scene.direct_snr();

      // Best reflector, re-aimed at the cell.
      for (std::size_t r = 0; r < scene.reflector_count(); ++r) {
        auto& reflector = scene.reflector(r);
        scene.ap().node().steer_toward(reflector.position());
        scene.headset().node().face_toward(reflector.position());
        reflector.front_end().steer_tx(
            scene.true_reflector_angle_to_headset(reflector));
        const auto via = scene.via_snr(reflector);
        if (via.usable && via.snr > cell.via_snr) {
          cell.via_snr = via.snr;
          cell.best_reflector = static_cast<int>(r);
        }
      }
      map.cells.push_back(cell);
    }
  }

  scene.headset().node().set_position(saved_pos);
  scene.headset().node().set_orientation(saved_orient);
  scene.ap().node().array().steer(saved_ap_steer);
  return map;
}

std::string render_coverage(const CoverageMap& map, rf::Decibels threshold) {
  std::string out;
  out.reserve(static_cast<std::size_t>(map.cells_y) *
              (static_cast<std::size_t>(map.cells_x) + 1));
  for (int iy = map.cells_y - 1; iy >= 0; --iy) {  // north up
    for (int ix = 0; ix < map.cells_x; ++ix) {
      const CoverageCell& cell = map.at(ix, iy);
      if (cell.direct_snr >= threshold) {
        out += '#';
      } else if (cell.via_snr >= threshold) {
        out += '+';
      } else {
        out += '.';
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace movr::core
