#include <core/coverage.hpp>

#include <algorithm>
#include <mutex>
#include <string>

#include <channel/path_batch.hpp>
#include <core/parallel_for.hpp>

namespace movr::core {

namespace {

/// One cell against one (worker-local) scene: aim both ends at the cell,
/// read the direct SNR, then try every reflector re-aimed at the cell.
CoverageCell evaluate_cell(Scene& scene, geom::Vec2 position) {
  CoverageCell cell;
  cell.position = position;
  scene.headset().node().set_position(position);

  // Direct link, both ends aimed.
  scene.ap().node().steer_toward(position);
  scene.headset().node().face_toward(scene.ap().node().position());
  cell.direct_snr = scene.direct_snr();

  // Best reflector, re-aimed at the cell.
  for (std::size_t r = 0; r < scene.reflector_count(); ++r) {
    auto& reflector = scene.reflector(r);
    scene.ap().node().steer_toward(reflector.position());
    scene.headset().node().face_toward(reflector.position());
    reflector.front_end().steer_tx(
        scene.true_reflector_angle_to_headset(reflector));
    const auto via = scene.via_snr(reflector);
    if (via.usable && via.snr > cell.via_snr) {
      cell.via_snr = via.snr;
      cell.best_reflector = static_cast<int>(r);
    }
  }
  return cell;
}

}  // namespace

double CoverageMap::covered_fraction(rf::Decibels threshold) const {
  if (cells.empty()) {
    return 0.0;
  }
  const auto covered = std::count_if(
      cells.begin(), cells.end(), [threshold](const CoverageCell& c) {
        return std::max(c.direct_snr, c.via_snr) >= threshold;
      });
  return static_cast<double>(covered) / static_cast<double>(cells.size());
}

double CoverageMap::reflector_covered_fraction(rf::Decibels threshold) const {
  if (cells.empty()) {
    return 0.0;
  }
  const auto covered = std::count_if(
      cells.begin(), cells.end(),
      [threshold](const CoverageCell& c) { return c.via_snr >= threshold; });
  return static_cast<double>(covered) / static_cast<double>(cells.size());
}

CoverageMap compute_coverage(const Scene& scene, double resolution_m,
                             double wall_margin_m, unsigned threads) {
  CoverageMap map;
  const double w = scene.room().width();
  const double d = scene.room().depth();
  map.cells_x = static_cast<int>((w - 2.0 * wall_margin_m) / resolution_m) + 1;
  map.cells_y = static_cast<int>((d - 2.0 * wall_margin_m) / resolution_m) + 1;
  const std::size_t total = static_cast<std::size_t>(map.cells_x) *
                            static_cast<std::size_t>(map.cells_y);
  map.cells.resize(total);

  const auto cell_position = [&](std::size_t i) -> geom::Vec2 {
    const int ix = static_cast<int>(i % static_cast<std::size_t>(map.cells_x));
    const int iy = static_cast<int>(i / static_cast<std::size_t>(map.cells_x));
    return {wall_margin_m + ix * resolution_m,
            wall_margin_m + iy * resolution_m};
  };

  std::mutex stats_mutex;
  parallel_for(total, threads, [&](std::size_t begin, std::size_t end) {
    // Each worker steers its own clone; cells are disjoint vector slots.
    Scene local = scene.clone();
    // Batch-prefetch every endpoint pair this chunk will ask about — the
    // AP->cell direct legs and each reflector->cell second hops — so the
    // per-cell evaluation below runs entirely on warm cache hits.
    // (Constant pairs like AP->reflector are left to miss once per worker
    // during evaluation, exactly as before — keeping the aggregate query
    // count identical for every thread count.)
    channel::EndpointBatch prefetch;
    const std::size_t nreflectors = local.reflector_count();
    prefetch.reserve((end - begin) * (1 + nreflectors));
    const geom::Vec2 ap_pos = local.ap().node().position();
    for (std::size_t i = begin; i < end; ++i) {
      const geom::Vec2 pos = cell_position(i);
      prefetch.push(ap_pos, pos);
      for (std::size_t r = 0; r < nreflectors; ++r) {
        prefetch.push(local.reflector(r).position(), pos);
      }
    }
    local.prefetch_paths(prefetch);
    for (std::size_t i = begin; i < end; ++i) {
      map.cells[i] = evaluate_cell(local, cell_position(i));
    }
    const auto stats = local.oracle_stats();
    const std::scoped_lock lock{stats_mutex};
    map.oracle += stats;
  });
  return map;
}

std::string render_coverage(const CoverageMap& map, rf::Decibels threshold) {
  std::string out;
  out.reserve(static_cast<std::size_t>(map.cells_y) *
              (static_cast<std::size_t>(map.cells_x) + 1));
  for (int iy = map.cells_y - 1; iy >= 0; --iy) {  // north up
    for (int ix = 0; ix < map.cells_x; ++ix) {
      const CoverageCell& cell = map.at(ix, iy);
      if (cell.direct_snr >= threshold) {
        out += '#';
      } else if (cell.via_snr >= threshold) {
        out += '+';
      } else {
        out += '.';
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace movr::core
