// Pose-aided fast beam tracking (paper Section 6).
//
// A full angle sweep costs on the order of a second — far beyond the 10 ms
// frame budget. But "the VR system constantly tracks the headset's
// position" (Section 4.1), so once the reflector's pose is calibrated, the
// TX angle toward the headset is just geometry: one Bluetooth command
// instead of a sweep. Tracking noise (millimetres) maps to a fraction of a
// degree at room scale — negligible against a ~10 degree beam.
#pragma once

#include <random>

#include <core/scene.hpp>
#include <rf/units.hpp>
#include <sim/time.hpp>

namespace movr::core {

class BeamTracker {
 public:
  struct Config {
    /// rms positional error of the VR tracking system, metres per axis.
    double tracking_noise_m{0.005};
    /// Optional local refinement: try +/- span around the geometric angle
    /// using headset SNR reports (costs extra Bluetooth rounds).
    bool refine{false};
    double refine_span_deg{2.0};
    double refine_step_deg{1.0};
    /// Cost of one reflector command over Bluetooth.
    sim::Duration command_wait{std::chrono::milliseconds{10}};
    /// Cost of one headset SNR report (refinement only).
    sim::Duration snr_report_time{std::chrono::milliseconds{1}};
  };

  struct Result {
    double reflector_tx_angle{0.0};  // array-local radians, as commanded
    rf::Decibels snr{-300.0};        // via-reflector SNR after retargeting
    sim::Duration duration{0};
    int bt_commands{0};
  };

  /// Re-aims `reflector`'s TX beam at the headset's *tracked* position.
  /// Steers the front end directly and charges the Bluetooth cost to the
  /// returned duration (callers running on a simulator schedule around it).
  static Result retarget(Scene& scene, MovrReflector& reflector,
                         std::mt19937_64& rng, const Config& config);

  static Result retarget(Scene& scene, MovrReflector& reflector,
                         std::mt19937_64& rng) {
    return retarget(scene, reflector, rng, Config{});
  }
};

}  // namespace movr::core
