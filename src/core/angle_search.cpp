#include <core/angle_search.hpp>

#include <utility>

#include <rf/codebook.hpp>

namespace movr::core {

AngleSearchConfig make_search_config(double step_deg) {
  AngleSearchConfig config;
  config.reflector_codebook = rf::paper_sector_codebook(step_deg);
  config.ap_codebook = rf::paper_sector_codebook(step_deg);
  return config;
}

// ---------------------------------------------------------------------
// IncidenceSearch
// ---------------------------------------------------------------------

IncidenceSearch::IncidenceSearch(sim::Simulator& simulator,
                                 sim::ControlChannel& control, Scene& scene,
                                 MovrReflector& reflector,
                                 AngleSearchConfig config,
                                 std::mt19937_64 rng)
    : simulator_{simulator},
      control_{control},
      scene_{scene},
      reflector_{reflector},
      config_{std::move(config)},
      rng_{rng} {}

void IncidenceSearch::start(Callback done) {
  done_ = std::move(done);
  started_ = simulator_.now();
  restore_gain_code_ = reflector_.front_end().gain_code();

  // Arm the reflector: conservative gain, modulation on.
  control_.send(reflector_.control_name(),
                {"gain_code", static_cast<double>(config_.search_gain_code), 0});
  control_.send(reflector_.control_name(), {"modulate", 1.0, 0});
  result_.bt_commands += 2;
  simulator_.after(config_.command_wait, [this] { step(0); });
}

void IncidenceSearch::step(std::size_t reflector_index) {
  if (reflector_index >= config_.reflector_codebook.size()) {
    finish();
    return;
  }
  const double theta1 = config_.reflector_codebook[reflector_index];
  control_.send(reflector_.control_name(), {"both_angles", theta1, 0});
  ++result_.bt_commands;

  // After the command settles, the AP sweeps its own beam electronically
  // and measures the f1+f2 backscatter at each angle. The sweep is fast
  // (microseconds per angle); its full cost is charged before moving on.
  simulator_.after(config_.command_wait, [this, reflector_index, theta1] {
    for (const double theta2 : config_.ap_codebook) {
      scene_.ap().node().array().steer(theta2);
      const rf::DbmPower reading = scene_.ap().measure_backscatter(
          scene_.backscatter_at_ap(reflector_), rng_);
      ++result_.measurements;
      if (reading > result_.best_power) {
        result_.best_power = reading;
        // Record what the protocol *commanded*, not the (possibly stale)
        // state of the reflector: a dropped Bluetooth message degrades the
        // measurement, exactly as it would in hardware.
        result_.reflector_angle = theta1;
        result_.ap_angle = theta2;
      }
    }
    const auto sweep_cost =
        (config_.steer_settle + config_.tone_dwell) *
        static_cast<std::int64_t>(config_.ap_codebook.size());
    simulator_.after(sweep_cost,
                     [this, reflector_index] { step(reflector_index + 1); });
  });
}

void IncidenceSearch::finish() {
  // Disarm and lock in the winners.
  control_.send(reflector_.control_name(), {"modulate", 0.0, 0});
  control_.send(reflector_.control_name(),
                {"gain_code", static_cast<double>(restore_gain_code_), 0});
  control_.send(reflector_.control_name(),
                {"rx_angle", result_.reflector_angle, 0});
  result_.bt_commands += 3;
  scene_.ap().node().array().steer(result_.ap_angle);

  simulator_.after(config_.command_wait, [this] {
    result_.duration = simulator_.now() - started_;
    result_.completed = true;
    if (done_) {
      done_(result_);
    }
  });
}

// ---------------------------------------------------------------------
// ReflectionSearch
// ---------------------------------------------------------------------

ReflectionSearch::ReflectionSearch(sim::Simulator& simulator,
                                   sim::ControlChannel& control, Scene& scene,
                                   MovrReflector& reflector,
                                   AngleSearchConfig config,
                                   std::mt19937_64 rng)
    : simulator_{simulator},
      control_{control},
      scene_{scene},
      reflector_{reflector},
      config_{std::move(config)},
      rng_{rng} {}

void ReflectionSearch::start(Callback done) {
  done_ = std::move(done);
  started_ = simulator_.now();
  // Arm a conservative, always-stable gain so the relayed signal is audible
  // at the headset for every candidate angle; the gain controller
  // re-optimises once the beam is locked.
  restore_gain_code_ = reflector_.front_end().gain_code();
  control_.send(reflector_.control_name(),
                {"gain_code", static_cast<double>(config_.search_gain_code), 0});
  ++result_.bt_commands;
  simulator_.after(config_.command_wait, [this] { step(0); });
}

void ReflectionSearch::step(std::size_t index) {
  if (index >= config_.reflector_codebook.size()) {
    finish();
    return;
  }
  const double theta = config_.reflector_codebook[index];
  control_.send(reflector_.control_name(), {"tx_angle", theta, 0});
  ++result_.bt_commands;

  simulator_.after(config_.command_wait + config_.snr_report_time,
                   [this, index, theta] {
                     const auto via = scene_.via_snr(reflector_);
                     const rf::Decibels estimate =
                         scene_.headset().observe(via.snr, rng_);
                     ++result_.measurements;
                     if (estimate > result_.best_snr) {
                       result_.best_snr = estimate;
                       result_.reflector_tx_angle = theta;
                     }
                     step(index + 1);
                   });
}

void ReflectionSearch::finish() {
  control_.send(reflector_.control_name(),
                {"tx_angle", result_.reflector_tx_angle, 0});
  control_.send(reflector_.control_name(),
                {"gain_code", static_cast<double>(restore_gain_code_), 0});
  result_.bt_commands += 2;
  simulator_.after(config_.command_wait, [this] {
    result_.duration = simulator_.now() - started_;
    result_.completed = true;
    if (done_) {
      done_(result_);
    }
  });
}

}  // namespace movr::core
