#include <core/angle_search.hpp>

#include <utility>

#include <channel/path_batch.hpp>
#include <rf/codebook.hpp>

namespace movr::core {

AngleSearchConfig make_search_config(double step_deg) {
  AngleSearchConfig config;
  config.reflector_codebook = rf::paper_sector_codebook(step_deg);
  config.ap_codebook = rf::paper_sector_codebook(step_deg);
  return config;
}

// ---------------------------------------------------------------------
// IncidenceSearch
// ---------------------------------------------------------------------

IncidenceSearch::IncidenceSearch(sim::Simulator& simulator,
                                 sim::ControlChannel& control, Scene& scene,
                                 MovrReflector& reflector,
                                 AngleSearchConfig config,
                                 std::mt19937_64 rng)
    : simulator_{simulator},
      control_{control},
      scene_{scene},
      reflector_{reflector},
      config_{std::move(config)},
      rng_{rng} {}

void IncidenceSearch::send_command(sim::ControlMessage message) {
  ++result_.bt_commands;
  control_.send(reflector_.control_name(), std::move(message),
                [this](bool delivered) {
                  if (delivered) {
                    consecutive_failed_commands_ = 0;
                  } else {
                    ++consecutive_failed_commands_;
                  }
                });
}

void IncidenceSearch::complete() {
  if (done_fired_) {
    return;
  }
  done_fired_ = true;
  simulator_.cancel(watchdog_id_);
  result_.duration = simulator_.now() - started_;
  if (done_) {
    done_(result_);
  }
}

void IncidenceSearch::fail(const std::string& reason) {
  if (done_fired_) {
    return;
  }
  result_.completed = false;
  result_.failure_reason = reason;
  complete();
}

void IncidenceSearch::start(Callback done) {
  done_ = std::move(done);
  started_ = simulator_.now();
  restore_gain_code_ = reflector_.front_end().gain_code();
  // Hard deadline: whatever happens to the control plane, the caller gets
  // its callback, so the simulator is never left idle mid-protocol.
  watchdog_id_ = simulator_.after(config_.watchdog, [this] {
    fail("watchdog deadline expired before the sweep finished");
  });

  // Warm the oracle for the whole sweep in one batched query: every
  // measurement below re-steers beams, but the endpoint pairs never change,
  // so the full (theta1, theta2) scan runs on cache hits.
  channel::EndpointBatch prefetch;
  prefetch.reserve(2);
  prefetch.push(scene_.ap().node().position(), reflector_.position());
  prefetch.push(reflector_.position(), scene_.ap().node().position());
  scene_.prefetch_paths(prefetch);

  // Arm the reflector: conservative gain, modulation on.
  send_command(
      {"gain_code", static_cast<double>(config_.search_gain_code), 0});
  send_command({"modulate", 1.0, 0});
  simulator_.after(config_.command_wait, [this] { step(0); });
}

void IncidenceSearch::step(std::size_t reflector_index) {
  if (done_fired_) {
    return;
  }
  if (consecutive_failed_commands_ >= config_.abort_after_failed_commands) {
    fail("control channel down: " +
         std::to_string(consecutive_failed_commands_) +
         " consecutive commands unacked");
    return;
  }
  if (reflector_index >= config_.reflector_codebook.size()) {
    finish();
    return;
  }
  const double theta1 = config_.reflector_codebook[reflector_index];
  send_command({"both_angles", theta1, 0});

  // After the command settles, the AP sweeps its own beam electronically
  // and measures the f1+f2 backscatter at each angle. The sweep is fast
  // (microseconds per angle); its full cost is charged before moving on.
  simulator_.after(config_.command_wait, [this, reflector_index, theta1] {
    if (done_fired_) {
      return;
    }
    for (const double theta2 : config_.ap_codebook) {
      scene_.ap().node().array().steer(theta2);
      const rf::DbmPower reading = scene_.ap().measure_backscatter(
          scene_.backscatter_at_ap(reflector_), rng_);
      ++result_.measurements;
      if (reading > result_.best_power) {
        result_.best_power = reading;
        // Record what the protocol *commanded*, not the (possibly stale)
        // state of the reflector: a dropped Bluetooth message degrades the
        // measurement, exactly as it would in hardware.
        result_.reflector_angle = theta1;
        result_.ap_angle = theta2;
      }
    }
    const auto sweep_cost =
        (config_.steer_settle + config_.tone_dwell) *
        static_cast<std::int64_t>(config_.ap_codebook.size());
    simulator_.after(sweep_cost,
                     [this, reflector_index] { step(reflector_index + 1); });
  });
}

void IncidenceSearch::finish() {
  // Disarm and lock in the winners.
  send_command({"modulate", 0.0, 0});
  send_command({"gain_code", static_cast<double>(restore_gain_code_), 0});
  send_command({"rx_angle", result_.reflector_angle, 0});
  scene_.ap().node().array().steer(result_.ap_angle);

  simulator_.after(config_.command_wait, [this] {
    result_.completed = true;
    complete();
  });
}

// ---------------------------------------------------------------------
// ReflectionSearch
// ---------------------------------------------------------------------

ReflectionSearch::ReflectionSearch(sim::Simulator& simulator,
                                   sim::ControlChannel& control, Scene& scene,
                                   MovrReflector& reflector,
                                   AngleSearchConfig config,
                                   std::mt19937_64 rng)
    : simulator_{simulator},
      control_{control},
      scene_{scene},
      reflector_{reflector},
      config_{std::move(config)},
      rng_{rng} {}

void ReflectionSearch::send_command(sim::ControlMessage message) {
  ++result_.bt_commands;
  control_.send(reflector_.control_name(), std::move(message),
                [this](bool delivered) {
                  if (delivered) {
                    consecutive_failed_commands_ = 0;
                  } else {
                    ++consecutive_failed_commands_;
                  }
                });
}

void ReflectionSearch::complete() {
  if (done_fired_) {
    return;
  }
  done_fired_ = true;
  simulator_.cancel(watchdog_id_);
  result_.duration = simulator_.now() - started_;
  if (done_) {
    done_(result_);
  }
}

void ReflectionSearch::fail(const std::string& reason) {
  if (done_fired_) {
    return;
  }
  result_.completed = false;
  result_.failure_reason = reason;
  complete();
}

void ReflectionSearch::start(Callback done) {
  done_ = std::move(done);
  started_ = simulator_.now();
  watchdog_id_ = simulator_.after(config_.watchdog, [this] {
    fail("watchdog deadline expired before the sweep finished");
  });
  // One batched warm-up for the three endpoint pairs the per-angle SNR
  // reads will ask about (AP->reflector, reflector->headset, AP->headset).
  channel::EndpointBatch prefetch;
  prefetch.reserve(3);
  const geom::Vec2 ap = scene_.ap().node().position();
  const geom::Vec2 headset = scene_.headset().node().position();
  prefetch.push(ap, reflector_.position());
  prefetch.push(reflector_.position(), headset);
  prefetch.push(ap, headset);
  scene_.prefetch_paths(prefetch);

  // Arm a conservative, always-stable gain so the relayed signal is audible
  // at the headset for every candidate angle; the gain controller
  // re-optimises once the beam is locked.
  restore_gain_code_ = reflector_.front_end().gain_code();
  send_command(
      {"gain_code", static_cast<double>(config_.search_gain_code), 0});
  simulator_.after(config_.command_wait, [this] { step(0); });
}

void ReflectionSearch::step(std::size_t index) {
  if (done_fired_) {
    return;
  }
  if (consecutive_failed_commands_ >= config_.abort_after_failed_commands) {
    fail("control channel down: " +
         std::to_string(consecutive_failed_commands_) +
         " consecutive commands unacked");
    return;
  }
  if (index >= config_.reflector_codebook.size()) {
    finish();
    return;
  }
  const double theta = config_.reflector_codebook[index];
  send_command({"tx_angle", theta, 0});

  simulator_.after(config_.command_wait + config_.snr_report_time,
                   [this, index, theta] {
                     if (done_fired_) {
                       return;
                     }
                     const auto via = scene_.via_snr(reflector_);
                     const rf::Decibels estimate =
                         scene_.headset().observe(via.snr, rng_);
                     ++result_.measurements;
                     if (estimate > result_.best_snr) {
                       result_.best_snr = estimate;
                       result_.reflector_tx_angle = theta;
                     }
                     step(index + 1);
                   });
}

void ReflectionSearch::finish() {
  send_command({"tx_angle", result_.reflector_tx_angle, 0});
  send_command({"gain_code", static_cast<double>(restore_gain_code_), 0});
  simulator_.after(config_.command_wait, [this] {
    result_.completed = true;
    complete();
  });
}

}  // namespace movr::core
