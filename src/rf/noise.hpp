// Receiver noise model: thermal floor plus noise figure.
//
// The SNRs in Figs. 3 and 9 are received power over this floor. At 802.11ad's
// 2.16 GHz bandwidth the thermal floor alone is about -80.6 dBm; with a
// consumer-grade front end (NF around 7 dB) the effective floor sits near
// -74 dBm, which is what calibrates our link budget to the paper's 25 dB
// LOS SNR in a 5x5 m room.
#pragma once

#include <rf/units.hpp>

namespace movr::rf {

/// Thermal noise power kTB at T = 290 K over `bandwidth_hz`, i.e.
/// -174 dBm/Hz + 10*log10(B).
DbmPower thermal_noise(double bandwidth_hz);

/// Effective receiver noise floor: thermal noise degraded by the noise
/// figure of the receive chain.
DbmPower noise_floor(double bandwidth_hz, Decibels noise_figure);

}  // namespace movr::rf
