// Strong types and conversions for RF power arithmetic.
//
// Link budgets mix three unit systems — absolute power (dBm), gains/losses
// (dB), and linear ratios/watts. Mixing them up is the classic RF-simulator
// bug, so absolute power and relative gain get distinct vocabulary types:
// you can add a Decibels to a DbmPower (apply a gain) but not add two
// DbmPowers (meaningless).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace movr::rf {

/// A relative gain or loss, in dB. Positive = gain, negative = loss.
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double db) : db_{db} {}

  constexpr double value() const { return db_; }
  double linear() const { return std::pow(10.0, db_ / 10.0); }

  /// Amplitude (voltage) ratio; power ratio is amplitude squared.
  double amplitude() const { return std::pow(10.0, db_ / 20.0); }

  static Decibels from_linear(double power_ratio) {
    return Decibels{10.0 * std::log10(power_ratio)};
  }

  constexpr Decibels operator+(Decibels o) const { return Decibels{db_ + o.db_}; }
  constexpr Decibels operator-(Decibels o) const { return Decibels{db_ - o.db_}; }
  constexpr Decibels operator-() const { return Decibels{-db_}; }
  constexpr Decibels operator*(double s) const { return Decibels{db_ * s}; }
  constexpr Decibels& operator+=(Decibels o) {
    db_ += o.db_;
    return *this;
  }
  constexpr Decibels& operator-=(Decibels o) {
    db_ -= o.db_;
    return *this;
  }
  friend constexpr auto operator<=>(Decibels, Decibels) = default;

 private:
  double db_{0.0};
};

/// An absolute power level referenced to 1 mW, in dBm.
class DbmPower {
 public:
  constexpr DbmPower() = default;
  constexpr explicit DbmPower(double dbm) : dbm_{dbm} {}

  constexpr double value() const { return dbm_; }
  double milliwatts() const { return std::pow(10.0, dbm_ / 10.0); }
  double watts() const { return milliwatts() * 1e-3; }

  static DbmPower from_milliwatts(double mw) {
    return DbmPower{10.0 * std::log10(mw)};
  }
  static DbmPower from_watts(double w) { return from_milliwatts(w * 1e3); }

  /// Applying a gain/loss to an absolute power yields an absolute power.
  constexpr DbmPower operator+(Decibels g) const { return DbmPower{dbm_ + g.value()}; }
  constexpr DbmPower operator-(Decibels g) const { return DbmPower{dbm_ - g.value()}; }
  constexpr DbmPower& operator+=(Decibels g) {
    dbm_ += g.value();
    return *this;
  }

  /// The ratio of two absolute powers is a relative gain — this is how an
  /// SNR (signal dBm minus noise dBm) is formed.
  constexpr Decibels operator-(DbmPower o) const { return Decibels{dbm_ - o.dbm_}; }

  friend constexpr auto operator<=>(DbmPower, DbmPower) = default;

 private:
  double dbm_{-300.0};  // "no signal": 1e-30 mW, far below any noise floor
};

/// Sum of two absolute powers (e.g. combining incoherent multipath energy).
inline DbmPower power_sum(DbmPower a, DbmPower b) {
  return DbmPower::from_milliwatts(a.milliwatts() + b.milliwatts());
}

inline std::ostream& operator<<(std::ostream& os, Decibels d) {
  return os << d.value() << " dB";
}
inline std::ostream& operator<<(std::ostream& os, DbmPower p) {
  return os << p.value() << " dBm";
}

namespace literals {
constexpr Decibels operator""_dB(long double v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Decibels operator""_dB(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
constexpr DbmPower operator""_dBm(long double v) {
  return DbmPower{static_cast<double>(v)};
}
constexpr DbmPower operator""_dBm(unsigned long long v) {
  return DbmPower{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace movr::rf
