// Beam codebooks: the discrete steering angles a radio sweeps during
// alignment. The paper sweeps "every combination of beam angle ... with
// 1 degree increments" (Section 3) over the array's steerable sector.
#pragma once

#include <vector>

namespace movr::rf {

/// Uniformly spaced steering angles over [start, stop] inclusive (radians).
std::vector<double> make_codebook(double start_rad, double stop_rad,
                                  double step_rad);

/// The paper's sector: 40..140 degrees in `step_deg` increments, in radians.
std::vector<double> paper_sector_codebook(double step_deg = 1.0);

}  // namespace movr::rf
