#include <rf/propagation.hpp>

#include <algorithm>
#include <cmath>
#include <numbers>

namespace movr::rf {

Decibels free_space_path_loss(double distance_m, double carrier_hz) {
  const double lambda = wavelength(carrier_hz);
  const double d = std::max(distance_m, lambda);
  const double ratio = 4.0 * std::numbers::pi * d / lambda;
  return Decibels{20.0 * std::log10(ratio)};
}

Decibels atmospheric_absorption(double distance_m, double carrier_hz) {
  // Piecewise-linear fit to ITU-R P.676 sea-level specific attenuation
  // (dB/km) around the bands this library cares about.
  struct Point {
    double ghz;
    double db_per_km;
  };
  static constexpr Point kCurve[] = {
      {10.0, 0.01}, {24.0, 0.10}, {38.0, 0.12}, {50.0, 0.40},
      {55.0, 4.0},  {58.0, 12.0}, {60.0, 15.0}, {62.0, 12.0},
      {66.0, 2.0},  {73.0, 0.40}, {90.0, 0.35},
  };
  const double ghz = carrier_hz / 1e9;
  double db_per_km = kCurve[0].db_per_km;
  if (ghz >= kCurve[std::size(kCurve) - 1].ghz) {
    db_per_km = kCurve[std::size(kCurve) - 1].db_per_km;
  } else {
    for (std::size_t i = 1; i < std::size(kCurve); ++i) {
      if (ghz < kCurve[i].ghz) {
        const double f = (ghz - kCurve[i - 1].ghz) /
                         (kCurve[i].ghz - kCurve[i - 1].ghz);
        db_per_km = kCurve[i - 1].db_per_km +
                    f * (kCurve[i].db_per_km - kCurve[i - 1].db_per_km);
        break;
      }
    }
  }
  return Decibels{db_per_km * std::max(distance_m, 0.0) / 1000.0};
}

}  // namespace movr::rf
