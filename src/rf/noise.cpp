#include <rf/noise.hpp>

#include <cmath>

namespace movr::rf {

DbmPower thermal_noise(double bandwidth_hz) {
  // kT at 290 K is -173.98 dBm/Hz; keep the textbook -174 figure.
  return DbmPower{-174.0 + 10.0 * std::log10(bandwidth_hz)};
}

DbmPower noise_floor(double bandwidth_hz, Decibels noise_figure) {
  return thermal_noise(bandwidth_hz) + noise_figure;
}

}  // namespace movr::rf
