// Per-element phase control.
//
// MoVR's prototype uses Hittite HMC-933 *analog* phase shifters driven by a
// DAC, so the achievable phase is continuous but the control word is not.
// We model both regimes: bits == 0 means ideal/analog control, bits == n
// quantises the commanded phase to 2^n levels over [0, 2*pi). The
// quantisation ablation bench sweeps this knob.
#pragma once

namespace movr::rf {

class PhaseShifter {
 public:
  /// `bits` == 0 -> analog (no quantisation). Otherwise n-bit control.
  constexpr explicit PhaseShifter(int bits = 0) : bits_{bits} {}

  constexpr int bits() const { return bits_; }

  /// Maps a commanded phase (radians) to the phase the hardware realises.
  double realize(double commanded_radians) const;

 private:
  int bits_{0};
};

}  // namespace movr::rf
