// Frequency-band presets.
//
// The paper's prototype works "at the 24 GHz ISM band" while its rate
// arithmetic is 802.11ad's (60 GHz, 2.16 GHz channels). Both deployments
// are first-class here: the whole simulator is parameterised by carrier and
// bandwidth, so every experiment can be re-run at the band a product would
// actually ship on (see bench/ablation_band).
#pragma once

#include <string_view>

namespace movr::rf {

struct Band {
  std::string_view name;
  double carrier_hz;
  double bandwidth_hz;
};

/// The prototype's band: 24 GHz ISM carrier, evaluated with an
/// 802.11ad-width channel as the paper's rate tables assume.
inline constexpr Band k24GhzPrototype{"24 GHz ISM (prototype)", 24.125e9,
                                      2.16e9};

/// 802.11ad / WiGig channel 2 (the usual indoor default).
inline constexpr Band k60GhzWigig{"60 GHz 802.11ad ch2", 60.48e9, 2.16e9};

/// 5 GHz WiFi for the Section 1 comparison.
inline constexpr Band k5GhzWifi{"5 GHz 802.11ac", 5.5e9, 160.0e6};

}  // namespace movr::rf
