// Measurement models: nothing in a real radio reads a true SNR or a true
// power; it estimates them from finite observations. These helpers produce
// the noisy observables the protocols in movr::core actually consume.
#pragma once

#include <random>

#include <rf/units.hpp>

namespace movr::rf {

/// Estimates SNR from `symbols` received OFDM symbols, as the headset does
/// in the paper's Section 5.2. The estimator error shrinks with the number
/// of symbols and grows at low SNR (noise-on-noise). Returns the estimate.
Decibels estimate_snr(Decibels true_snr, int symbols, std::mt19937_64& rng);

/// Power-detector reading of an absolute power: the true value plus
/// log-normal measurement error of `sigma_db`, floored at the detector's
/// sensitivity. Models the AP's reflected-power measurement in Section 4.1.
DbmPower measure_power(DbmPower true_power, double sigma_db,
                       DbmPower sensitivity, std::mt19937_64& rng);

}  // namespace movr::rf
