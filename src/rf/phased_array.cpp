#include <rf/phased_array.hpp>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <geom/angle.hpp>

namespace movr::rf {

namespace {
constexpr double kTwoPi = movr::geom::kTwoPi;
}

PhasedArray::PhasedArray(const Config& config)
    : config_{config}, shifter_{config.phase_bits} {
  if (config_.elements < 1) {
    throw std::invalid_argument{"PhasedArray: need at least one element"};
  }
  if (config_.spacing_wavelengths <= 0.0) {
    throw std::invalid_argument{"PhasedArray: spacing must be positive"};
  }
  element_phases_.resize(static_cast<std::size_t>(config_.elements));
  steer(steering_);
}

void PhasedArray::steer(double local_angle_rad) {
  steering_ = movr::geom::wrap_two_pi(local_angle_rad);
  // Progressive phase: element i is advanced so that contributions add in
  // phase toward the steering angle. k*d in radians per element:
  const double kd = kTwoPi * config_.spacing_wavelengths;
  const double progressive = -kd * std::cos(steering_);
  for (std::size_t i = 0; i < element_phases_.size(); ++i) {
    element_phases_[i] = shifter_.realize(progressive * static_cast<double>(i));
  }
}

std::complex<double> PhasedArray::field(double local_angle_rad) const {
  const double kd = kTwoPi * config_.spacing_wavelengths;
  const double psi = kd * std::cos(local_angle_rad);
  std::complex<double> sum{0.0, 0.0};
  for (std::size_t i = 0; i < element_phases_.size(); ++i) {
    const double phase = psi * static_cast<double>(i) + element_phases_[i];
    sum += std::polar(1.0, phase);
  }
  return sum / static_cast<double>(config_.elements);
}

double PhasedArray::element_pattern_db(double local_angle_rad) const {
  const double a = movr::geom::wrap_two_pi(local_angle_rad);
  const double s = std::sin(a);
  if (s <= 0.0) {
    // Behind the ground plane: flat back lobe.
    return config_.element_gain.value() - config_.front_to_back.value();
  }
  // Angle from broadside has cosine == sin(local angle).
  const double pattern_db = 10.0 * config_.element_exponent * std::log10(s);
  // A single patch never nulls perfectly toward the endfire directions.
  const double floored =
      std::max(pattern_db, config_.scattering_floor.value());
  return config_.element_gain.value() + floored;
}

Decibels PhasedArray::gain(double local_angle_rad) const {
  const double af_power = std::norm(field(local_angle_rad));
  const double af_db =
      10.0 * std::log10(std::max(af_power, 1e-12));
  const double af_floored = std::max(af_db, config_.scattering_floor.value());
  const double array_db =
      10.0 * std::log10(static_cast<double>(config_.elements));
  return Decibels{array_db + af_floored + element_pattern_db(local_angle_rad)};
}

Decibels PhasedArray::peak_gain() const {
  const double array_db =
      10.0 * std::log10(static_cast<double>(config_.elements));
  return Decibels{array_db + config_.element_gain.value()};
}

double PhasedArray::beamwidth_3db() const {
  return 0.886 / (static_cast<double>(config_.elements) *
                  config_.spacing_wavelengths);
}

}  // namespace movr::rf
