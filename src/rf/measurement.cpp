#include <rf/measurement.hpp>

#include <algorithm>
#include <cmath>

namespace movr::rf {

Decibels estimate_snr(Decibels true_snr, int symbols, std::mt19937_64& rng) {
  const int n = std::max(symbols, 1);
  // Error std: ~2 dB for a single symbol at moderate SNR, shrinking with
  // sqrt(n); below 0 dB SNR the estimator degrades roughly linearly.
  const double low_snr_penalty =
      true_snr.value() < 0.0 ? (1.0 - true_snr.value() * 0.1) : 1.0;
  const double sigma = 2.0 * low_snr_penalty / std::sqrt(static_cast<double>(n));
  std::normal_distribution<double> err{0.0, sigma};
  return Decibels{true_snr.value() + err(rng)};
}

DbmPower measure_power(DbmPower true_power, double sigma_db,
                       DbmPower sensitivity, std::mt19937_64& rng) {
  std::normal_distribution<double> err{0.0, sigma_db};
  const double reading = true_power.value() + err(rng);
  return DbmPower{std::max(reading, sensitivity.value())};
}

}  // namespace movr::rf
