// Uniform linear phased array (ULA) of patch elements.
//
// This is the antenna on the AP, the headset, and both faces of the MoVR
// reflector. The paper's arrays are PCB patch arrays with ~10 degree beams
// steerable electronically in sub-microseconds; a 10-element half-wavelength
// ULA of 5.5 dBi patches reproduces that beamwidth and a ~15.5 dBi peak.
//
// Local angle convention: the array lies along its local x axis, elements at
// x_i = i * spacing. Angles are measured CCW from that axis, so boresight is
// 90 degrees and the steerable sector is (0, 180) — matching the 40..140
// degree axes of the paper's Figs. 7 and 8. Angles in (180, 360) are behind
// the ground plane.
#pragma once

#include <complex>
#include <vector>

#include <rf/phase_shifter.hpp>
#include <rf/units.hpp>

namespace movr::rf {

class PhasedArray {
 public:
  struct Config {
    int elements{10};
    double spacing_wavelengths{0.5};
    /// Peak gain of one patch element, toward its broadside.
    Decibels element_gain{5.5};
    /// Element power-pattern exponent: pattern ~ cos^exponent(angle from
    /// broadside). 1.2 approximates a microstrip patch.
    double element_exponent{1.2};
    /// Attenuation of radiation behind the ground plane.
    Decibels front_to_back{30.0};
    /// Residual scattering floor relative to peak: even a deep pattern null
    /// leaks this much (enclosure reflections, element mismatch).
    Decibels scattering_floor{-35.0};
    /// Phase-shifter resolution; 0 = analog (the HMC-933 prototype).
    int phase_bits{0};
  };

  PhasedArray() : PhasedArray(Config{}) {}
  explicit PhasedArray(const Config& config);

  const Config& config() const { return config_; }

  /// Points the main beam at `local_angle_rad` (radians, boresight = pi/2).
  /// Models electronic steering: per-element phase commands through the
  /// phase shifters. Sub-microsecond in hardware; the simulator charges
  /// Config-independent fixed time for it at the protocol layer.
  void steer(double local_angle_rad);

  double steering() const { return steering_; }

  /// Realised power gain (dBi) toward `local_angle_rad` with the current
  /// steering, including element pattern, array factor, quantisation error
  /// and the scattering floor.
  Decibels gain(double local_angle_rad) const;

  /// Gain at the steering angle with ideal phases: element gain + 10 log N.
  Decibels peak_gain() const;

  /// Half-power beamwidth (radians) at broadside: 0.886 * lambda / (N * d).
  double beamwidth_3db() const;

  /// Complex far-field amplitude (normalised to peak = 1) toward the angle —
  /// exposed so the channel can sum multipath coherently.
  std::complex<double> field(double local_angle_rad) const;

 private:
  Config config_;
  PhaseShifter shifter_;
  double steering_{1.5707963267948966};  // boresight
  std::vector<double> element_phases_;   // realised phases, radians

  double element_pattern_db(double local_angle_rad) const;
};

}  // namespace movr::rf
