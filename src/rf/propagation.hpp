// Free-space propagation at mmWave frequencies.
#pragma once

#include <rf/units.hpp>

namespace movr::rf {

inline constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

/// Carrier wavelength in metres.
constexpr double wavelength(double carrier_hz) {
  return kSpeedOfLight / carrier_hz;
}

/// Friis free-space path loss between isotropic antennas, as a positive dB
/// loss. Valid for d >= wavelength (far field); shorter distances are
/// clamped to one wavelength so degenerate geometry cannot produce gain.
Decibels free_space_path_loss(double distance_m, double carrier_hz);

/// Propagation delay over a straight leg, in seconds.
constexpr double propagation_delay(double distance_m) {
  return distance_m / kSpeedOfLight;
}

/// Atmospheric (oxygen) absorption over a leg, as a positive dB loss.
/// Negligible away from the 60 GHz O2 resonance (~0.1 dB/km) but ~15 dB/km
/// on it — microscopic at room scale, yet it belongs in a budget that
/// claims to model the 802.11ad band.
Decibels atmospheric_absorption(double distance_m, double carrier_hz);

}  // namespace movr::rf
