#include <rf/codebook.hpp>

#include <cmath>
#include <stdexcept>

#include <geom/angle.hpp>

namespace movr::rf {

std::vector<double> make_codebook(double start_rad, double stop_rad,
                                  double step_rad) {
  if (step_rad <= 0.0) {
    throw std::invalid_argument{"make_codebook: step must be positive"};
  }
  if (stop_rad < start_rad) {
    throw std::invalid_argument{"make_codebook: stop before start"};
  }
  std::vector<double> angles;
  const auto count =
      static_cast<std::size_t>(std::floor((stop_rad - start_rad) / step_rad + 1e-9)) + 1;
  angles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    angles.push_back(start_rad + static_cast<double>(i) * step_rad);
  }
  return angles;
}

std::vector<double> paper_sector_codebook(double step_deg) {
  using movr::geom::deg_to_rad;
  return make_codebook(deg_to_rad(40.0), deg_to_rad(140.0),
                       deg_to_rad(step_deg));
}

}  // namespace movr::rf
