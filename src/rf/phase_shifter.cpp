#include <rf/phase_shifter.hpp>

#include <cmath>

#include <geom/angle.hpp>

namespace movr::rf {

double PhaseShifter::realize(double commanded_radians) const {
  const double wrapped = movr::geom::wrap_two_pi(commanded_radians);
  if (bits_ <= 0) {
    return wrapped;
  }
  const double levels = std::pow(2.0, bits_);
  const double step = movr::geom::kTwoPi / levels;
  const double idx = std::round(wrapped / step);
  return movr::geom::wrap_two_pi(idx * step);
}

}  // namespace movr::rf
