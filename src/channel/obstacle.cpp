#include <channel/obstacle.hpp>

#include <algorithm>

namespace movr::channel {

rf::Decibels Obstacle::attenuation(const geom::Segment& leg,
                                   double fresnel_margin_m) const {
  const double chord = geom::chord_length(shape, leg);
  if (chord > 0.0) {
    return material.insertion_loss;
  }
  const double gap = geom::clearance(shape, leg) - shape.radius;
  if (gap < fresnel_margin_m) {
    // Grazing: linear ramp from ~6 dB shadowing at touch to 0 at the margin.
    const double fraction = 1.0 - std::max(gap, 0.0) / fresnel_margin_m;
    return rf::Decibels{6.0 * fraction};
  }
  return rf::Decibels{0.0};
}

rf::Decibels total_obstruction(const std::vector<Obstacle>& obstacles,
                               const geom::Segment& leg) {
  rf::Decibels total{0.0};
  for (const Obstacle& obstacle : obstacles) {
    total += obstacle.attenuation(leg);
  }
  return total;
}

Obstacle make_hand(geom::Vec2 headset_position, geom::Vec2 toward_ap) {
  const geom::Vec2 dir = toward_ap.normalized();
  // A hand held ~25 cm in front of the face, ~9 cm effective diameter.
  return Obstacle{geom::Circle{headset_position + dir * 0.25, 0.045}, kHand,
                  "hand"};
}

Obstacle make_head(geom::Vec2 headset_position, geom::Vec2 toward_ap) {
  const geom::Vec2 dir = toward_ap.normalized();
  // Player turned away: her head (radius ~9 cm) sits between the headset
  // receiver and the AP.
  return Obstacle{geom::Circle{headset_position + dir * 0.12, 0.09}, kHead,
                  "head"};
}

Obstacle make_person(geom::Vec2 position) {
  // Torso seen from above: ~40 cm wide.
  return Obstacle{geom::Circle{position, 0.20}, kBody, "person"};
}

}  // namespace movr::channel
