// Image-method specular ray tracer — per-call facade over PathSolver.
//
// mmWave propagation indoors is quasi-optical: the energy that matters
// arrives over the LOS ray and a handful of specular wall bounces; diffuse
// scattering is tens of dB down. The tracer enumerates the LOS path and all
// first- and second-order wall images, validates each bounce point against
// the wall extents, and charges free-space loss over the unfolded length,
// reflection loss per bounce and obstruction loss per leg.
//
// The physics lives in channel::PathSolver, which precomputes the wall-image
// tree once per geometry; this class materialises a solver per call for
// callers that hold only a Room reference. Repeated queries against the same
// geometry should use a PathSolver (or core::ChannelOracle) directly.
#pragma once

#include <vector>

#include <channel/path.hpp>
#include <channel/room.hpp>
#include <rf/units.hpp>

namespace movr::channel {

class RayTracer {
 public:
  struct Config {
    double carrier_hz{24.0e9};
    int max_bounces{2};
    /// Paths weaker than (strongest - dynamic_range) are dropped.
    rf::Decibels dynamic_range{60.0};
  };

  explicit RayTracer(const Room& room) : RayTracer{room, Config{}} {}
  RayTracer(const Room& room, Config config);

  const Config& config() const { return config_; }
  const Room& room() const { return room_; }

  /// All propagation paths from `source` to `destination`, strongest first.
  std::vector<Path> trace(geom::Vec2 source, geom::Vec2 destination) const;

  /// Just the LOS path (present even when obstructed — its `obstruction`
  /// field says by how much).
  Path line_of_sight(geom::Vec2 source, geom::Vec2 destination) const;

 private:
  const Room& room_;
  Config config_;
};

}  // namespace movr::channel
