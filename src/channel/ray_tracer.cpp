#include <channel/ray_tracer.hpp>

#include <channel/path_solver.hpp>

namespace movr::channel {

namespace {

PathSolver::Config solver_config(const RayTracer::Config& config) {
  return {config.carrier_hz, config.max_bounces, config.dynamic_range};
}

}  // namespace

RayTracer::RayTracer(const Room& room, Config config)
    : room_{room}, config_{config} {}

Path RayTracer::line_of_sight(geom::Vec2 source,
                              geom::Vec2 destination) const {
  return PathSolver{room_, solver_config(config_)}.line_of_sight(source,
                                                                 destination);
}

std::vector<Path> RayTracer::trace(geom::Vec2 source,
                                   geom::Vec2 destination) const {
  return PathSolver{room_, solver_config(config_)}.solve(source, destination);
}

}  // namespace movr::channel
