// Surface and blocker materials at 24-60 GHz.
//
// The loss figures are the calibration constants of the whole reproduction:
// they are chosen so the simulated room reproduces the paper's measured
// deltas (Section 3 / Fig. 3): hand blockage >= 14 dB, head ~20 dB, best
// wall reflection ~16 dB below LOS. Sources: the paper's own measurements
// plus published mmWave penetration studies.
#pragma once

#include <rf/units.hpp>

namespace movr::channel {

/// A reflecting surface (wall, whiteboard, window...).
struct SurfaceMaterial {
  /// Power lost at one specular bounce, dB (positive).
  rf::Decibels reflection_loss{11.0};
  const char* name{"drywall"};
};

inline constexpr SurfaceMaterial kDrywall{rf::Decibels{11.0}, "drywall"};
inline constexpr SurfaceMaterial kConcrete{rf::Decibels{14.0}, "concrete"};
inline constexpr SurfaceMaterial kGlass{rf::Decibels{8.0}, "glass"};
inline constexpr SurfaceMaterial kMetal{rf::Decibels{1.5}, "metal"};

/// A volumetric blocker (body part, furniture) a beam may pass through.
struct BlockerMaterial {
  /// Power lost when the beam passes through the blocker, dB (positive).
  rf::Decibels insertion_loss{15.0};
  const char* name{"blocker"};
};

// Calibrated to the paper's measured SNR drops (Fig. 3).
inline constexpr BlockerMaterial kHand{rf::Decibels{15.0}, "hand"};
inline constexpr BlockerMaterial kHead{rf::Decibels{22.0}, "head"};
inline constexpr BlockerMaterial kBody{rf::Decibels{25.0}, "body"};
inline constexpr BlockerMaterial kFurniture{rf::Decibels{30.0}, "furniture"};

}  // namespace movr::channel
