// Blockers in the room: hands, heads, bodies, furniture — convex
// obstructions modelled as circles in the plane.
#pragma once

#include <string>
#include <vector>

#include <channel/material.hpp>
#include <geom/circle.hpp>
#include <geom/segment.hpp>
#include <rf/units.hpp>

namespace movr::channel {

struct Obstacle {
  geom::Circle shape;
  BlockerMaterial material{kBody};
  std::string label;

  /// Attenuation this obstacle applies to a propagation leg.
  ///
  /// Through-blocker legs pay the full insertion loss. Legs that miss but
  /// graze within a Fresnel-zone margin pay a partial shadowing loss that
  /// ramps to zero with clearance — at mmWave a beam that misses a torso by
  /// a centimetre is still partially shadowed.
  rf::Decibels attenuation(const geom::Segment& leg,
                           double fresnel_margin_m = 0.03) const;
};

/// Sum of attenuations from all obstacles crossing (or grazing) a leg.
rf::Decibels total_obstruction(const std::vector<Obstacle>& obstacles,
                               const geom::Segment& leg);

// ---- canonical blockers used by the experiment scenarios ----

/// A hand raised in front of the headset: ~9 cm disc just off the headset.
Obstacle make_hand(geom::Vec2 headset_position, geom::Vec2 toward_ap);

/// The player's own head between AP and receiver (player turned around).
Obstacle make_head(geom::Vec2 headset_position, geom::Vec2 toward_ap);

/// Another person standing between AP and headset.
Obstacle make_person(geom::Vec2 position);

}  // namespace movr::channel
