// Precomputed image-method path solver.
//
// The specular image tree (one mirror image per wall, one composed image per
// ordered wall pair) depends only on the wall geometry, which is fixed at
// Room construction. The solver builds that tree once and answers
// solve(src, dst) by unfolding the cached images against the *current*
// obstacle set and wall materials — so moving a blocker or re-materialling a
// wall takes effect on the very next call, with no rebuild. When the room
// has no obstacles the per-leg obstruction checks are skipped entirely.
//
// Thread-safety: solve() and line_of_sight() are const and touch no mutable
// state; any number of threads may query one solver concurrently as long as
// nobody mutates the bound Room at the same time.
#pragma once

#include <cstddef>
#include <vector>

#include <channel/path.hpp>
#include <channel/room.hpp>
#include <geom/segment.hpp>
#include <rf/units.hpp>

namespace movr::channel {

class PathSolver {
 public:
  struct Config {
    double carrier_hz{24.0e9};
    int max_bounces{2};
    /// Paths weaker than (strongest - dynamic_range) are dropped.
    rf::Decibels dynamic_range{60.0};
  };

  explicit PathSolver(const Room& room) : PathSolver{room, Config{}} {}
  PathSolver(const Room& room, Config config);

  const Room& room() const { return *room_; }
  const Config& config() const { return config_; }

  /// Rebinds the solver to `room` (e.g. after the owning object moved).
  /// The image tree is rebuilt only when the wall geometry differs.
  void rebind(const Room& room);

  /// All propagation paths from `source` to `destination`, strongest first.
  std::vector<Path> solve(geom::Vec2 source, geom::Vec2 destination) const;

  /// Just the LOS path (present even when obstructed — its `obstruction`
  /// field says by how much).
  Path line_of_sight(geom::Vec2 source, geom::Vec2 destination) const;

 private:
  /// Precomputed mirror line of one wall: anchor + unit direction, so the
  /// image-source transform costs one dot product instead of a norm.
  /// reflect() matches geom::mirror_across bit-for-bit.
  struct Mirror {
    geom::Vec2 anchor;
    geom::Vec2 direction;  // unit vector along the wall

    geom::Vec2 reflect(geom::Vec2 p) const {
      const geom::Vec2 rel = p - anchor;
      const geom::Vec2 proj = direction * rel.dot(direction);
      const geom::Vec2 perp = rel - proj;
      return p - perp * 2.0;
    }
  };

  const Room* room_;
  Config config_;
  std::vector<Mirror> mirrors_;  // one per wall, same indexing as walls()
  /// Wall extents the mirrors were built from. rebind() compares against
  /// this snapshot — never against *room_, which may already be dangling
  /// when the rebind is cleaning up after a move of the room's owner.
  std::vector<geom::Segment> wall_snapshot_;

  void build_images();
  void add_first_order(std::vector<Path>& out, geom::Vec2 source,
                       geom::Vec2 destination, bool no_obstacles) const;
  void add_second_order(std::vector<Path>& out, geom::Vec2 source,
                        geom::Vec2 destination, bool no_obstacles) const;
};

}  // namespace movr::channel
