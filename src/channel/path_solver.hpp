// Precomputed image-method path solver.
//
// The specular image tree (one mirror image per wall, one composed image per
// ordered wall pair) depends only on the wall geometry, which is fixed at
// Room construction. The solver builds that tree once and answers
// solve(src, dst) by unfolding the cached images against the *current*
// obstacle set and wall materials — so moving a blocker or re-materialling a
// wall takes effect on the very next call, with no rebuild. When the room
// has no obstacles the per-leg obstruction checks are skipped entirely.
//
// Two query shapes share one evaluation core:
//  - solve(src, dst): the scalar API, returns an AoS std::vector<Path>.
//  - solve_batch(batch, out, ws): many endpoint pairs at once. Mirror
//    unfolding runs as a prepass over the batch's contiguous coordinate
//    arrays (one image per wall x query, one per ordered wall pair x query),
//    then per-query candidate assembly reuses the *same* helper functions as
//    the scalar path — which is what makes the batch results bit-identical
//    to a scalar loop (the differential tests assert this).
//
// Thread-safety: solve(), solve_batch() and line_of_sight() are const and
// touch no mutable solver state; any number of threads may query one solver
// concurrently as long as nobody mutates the bound Room at the same time and
// each thread brings its own BatchWorkspace.
#pragma once

#include <cstddef>
#include <vector>

#include <channel/path.hpp>
#include <channel/path_batch.hpp>
#include <channel/room.hpp>
#include <geom/segment.hpp>
#include <rf/units.hpp>

namespace movr::channel {

class PathSolver {
 public:
  struct Config {
    double carrier_hz{24.0e9};
    int max_bounces{2};
    /// Paths weaker than (strongest - dynamic_range) are dropped.
    rf::Decibels dynamic_range{60.0};
  };

  /// One path candidate before sort/trim. Fixed-size vertex storage (LOS=2,
  /// first order=3, second order=4) keeps candidate evaluation heap-free.
  struct Candidate {
    double departure{0.0};
    double arrival{0.0};
    double length_m{0.0};
    double loss_db{0.0};
    double obstruction_db{0.0};
    int bounces{0};
    int vertex_count{0};
    geom::Vec2 vertices[4];
  };

  /// Reusable scratch for solve_batch. Owned by the caller — one per worker
  /// thread — and recycled across calls: capacity is kept, so a warmed batch
  /// solve performs zero heap allocations of its own.
  struct BatchWorkspace {
    std::vector<Candidate> candidates;
    std::vector<geom::Vec2> first_images;   // [wall][query], row-major
    std::vector<geom::Vec2> second_images;  // [wall i][wall j][query]

    /// Bytes of backing storage currently owned (capacity, not size).
    std::size_t arena_bytes() const {
      return candidates.capacity() * sizeof(Candidate) +
             (first_images.capacity() + second_images.capacity()) *
                 sizeof(geom::Vec2);
    }
  };

  explicit PathSolver(const Room& room) : PathSolver{room, Config{}} {}
  PathSolver(const Room& room, Config config);

  const Room& room() const { return *room_; }
  const Config& config() const { return config_; }

  /// Rebinds the solver to `room` (e.g. after the owning object moved).
  /// The image tree is rebuilt only when the wall geometry differs.
  void rebind(const Room& room);

  /// All propagation paths from `source` to `destination`, strongest first.
  std::vector<Path> solve(geom::Vec2 source, geom::Vec2 destination) const;

  /// Batched solve: appends every query's surviving paths to `out` (which is
  /// cleared first), strongest first within each query. Bit-identical to
  /// calling solve() per endpoint pair.
  void solve_batch(const EndpointBatch& batch, PathBatch& out,
                   BatchWorkspace& ws) const;

  /// Just the LOS path (present even when obstructed — its `obstruction`
  /// field says by how much).
  Path line_of_sight(geom::Vec2 source, geom::Vec2 destination) const;

  /// Upper bound on candidates per query (LOS + per-wall + per-wall-pair),
  /// for sizing caller-side reserves.
  std::size_t max_candidates() const;

 private:
  /// Precomputed mirror line of one wall: anchor + unit direction, so the
  /// image-source transform costs one dot product instead of a norm.
  /// reflect() matches geom::mirror_across bit-for-bit.
  struct Mirror {
    geom::Vec2 anchor;
    geom::Vec2 direction;  // unit vector along the wall

    geom::Vec2 reflect(geom::Vec2 p) const {
      const geom::Vec2 rel = p - anchor;
      const geom::Vec2 proj = direction * rel.dot(direction);
      const geom::Vec2 perp = rel - proj;
      return p - perp * 2.0;
    }
  };

  const Room* room_;
  Config config_;
  std::vector<Mirror> mirrors_;  // one per wall, same indexing as walls()
  /// Wall extents the mirrors were built from. rebind() compares against
  /// this snapshot — never against *room_, which may already be dangling
  /// when the rebind is cleaning up after a move of the room's owner.
  std::vector<geom::Segment> wall_snapshot_;

  void build_images();

  // Shared candidate evaluation — the single source of truth for path math.
  // Both solve() and solve_batch() call these, so their results cannot
  // diverge. The image points are passed in (computed inline by the scalar
  // path, by the SoA prepass in the batch path) from the same reflect().
  Candidate los_candidate(geom::Vec2 source, geom::Vec2 destination) const;
  bool first_order_candidate(std::size_t wall, geom::Vec2 image,
                             geom::Vec2 source, geom::Vec2 destination,
                             bool no_obstacles, Candidate& out) const;
  bool second_order_candidate(std::size_t wall_i, std::size_t wall_j,
                              geom::Vec2 image1, geom::Vec2 image2,
                              geom::Vec2 source, geom::Vec2 destination,
                              bool no_obstacles, Candidate& out) const;
  void collect_candidates(geom::Vec2 source, geom::Vec2 destination,
                          std::vector<Candidate>& out) const;
  /// Sort strongest-first, then drop candidates outside the dynamic range of
  /// the strongest. Same comparator and cutoff as the historical Path sort,
  /// so the surviving order is the exact permutation solve() always produced.
  void order_and_trim(std::vector<Candidate>& candidates) const;
  static Path materialize(const Candidate& c);
};

}  // namespace movr::channel
