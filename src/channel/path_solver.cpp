#include <channel/path_solver.hpp>

#include <algorithm>
#include <cmath>

#include <geom/segment.hpp>
#include <rf/propagation.hpp>

namespace movr::channel {

namespace {

/// Accumulated obstruction over one straight leg.
rf::Decibels leg_obstruction(const Room& room, geom::Vec2 a, geom::Vec2 b) {
  return total_obstruction(room.obstacles(), geom::Segment{a, b});
}

bool same_walls(const std::vector<geom::Segment>& snapshot,
                const std::vector<Wall>& walls) {
  if (snapshot.size() != walls.size()) {
    return false;
  }
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot[i].a != walls[i].extent.a ||
        snapshot[i].b != walls[i].extent.b) {
      return false;
    }
  }
  return true;
}

}  // namespace

PathSolver::PathSolver(const Room& room, Config config)
    : room_{&room}, config_{config} {
  build_images();
}

void PathSolver::build_images() {
  mirrors_.clear();
  wall_snapshot_.clear();
  mirrors_.reserve(room_->walls().size());
  wall_snapshot_.reserve(room_->walls().size());
  for (const Wall& wall : room_->walls()) {
    mirrors_.push_back(
        Mirror{wall.extent.a, wall.extent.direction().normalized()});
    wall_snapshot_.push_back(wall.extent);
  }
}

void PathSolver::rebind(const Room& room) {
  // Compare against the snapshot, not *room_: a rebind typically happens
  // precisely because the previously bound room no longer exists.
  const bool geometry_unchanged = same_walls(wall_snapshot_, room.walls());
  room_ = &room;
  if (!geometry_unchanged) {
    build_images();
  }
}

std::size_t PathSolver::max_candidates() const {
  const std::size_t w = mirrors_.size();
  std::size_t n = 1;  // LOS
  if (config_.max_bounces >= 1) {
    n += w;
  }
  if (config_.max_bounces >= 2 && w > 1) {
    n += w * (w - 1);
  }
  return n;
}

PathSolver::Candidate PathSolver::los_candidate(geom::Vec2 source,
                                                geom::Vec2 destination) const {
  Candidate c;
  c.bounces = 0;
  c.vertex_count = 2;
  c.vertices[0] = source;
  c.vertices[1] = destination;
  const geom::Vec2 d = destination - source;
  c.length_m = d.norm();
  c.departure = d.heading();
  c.arrival = (-d).heading();
  const rf::Decibels obstruction =
      room_->obstacles().empty() ? rf::Decibels{0.0}
                                 : leg_obstruction(*room_, source, destination);
  const rf::Decibels loss =
      rf::free_space_path_loss(c.length_m, config_.carrier_hz) +
      rf::atmospheric_absorption(c.length_m, config_.carrier_hz) + obstruction;
  c.obstruction_db = obstruction.value();
  c.loss_db = loss.value();
  return c;
}

bool PathSolver::first_order_candidate(std::size_t wall, geom::Vec2 image,
                                       geom::Vec2 source,
                                       geom::Vec2 destination,
                                       bool no_obstacles,
                                       Candidate& out) const {
  const auto& walls = room_->walls();
  const auto hit =
      geom::intersect(geom::Segment{image, destination}, walls[wall].extent);
  if (!hit) {
    return false;
  }
  const geom::Vec2 p = *hit;
  out.bounces = 1;
  out.vertex_count = 3;
  out.vertices[0] = source;
  out.vertices[1] = p;
  out.vertices[2] = destination;
  out.length_m = geom::distance(source, p) + geom::distance(p, destination);
  out.departure = (p - source).heading();
  out.arrival = (p - destination).heading();
  const rf::Decibels obstruction =
      no_obstacles ? rf::Decibels{0.0}
                   : leg_obstruction(*room_, source, p) +
                         leg_obstruction(*room_, p, destination);
  const rf::Decibels loss =
      rf::free_space_path_loss(out.length_m, config_.carrier_hz) +
      rf::atmospheric_absorption(out.length_m, config_.carrier_hz) +
      walls[wall].material.reflection_loss + obstruction;
  out.obstruction_db = obstruction.value();
  out.loss_db = loss.value();
  return true;
}

bool PathSolver::second_order_candidate(std::size_t wall_i, std::size_t wall_j,
                                        geom::Vec2 image1, geom::Vec2 image2,
                                        geom::Vec2 source,
                                        geom::Vec2 destination,
                                        bool no_obstacles,
                                        Candidate& out) const {
  const auto& walls = room_->walls();
  // Unfold back-to-front: last bounce on wall j.
  const auto hit2 =
      geom::intersect(geom::Segment{image2, destination}, walls[wall_j].extent);
  if (!hit2) {
    return false;
  }
  const geom::Vec2 p2 = *hit2;
  const auto hit1 =
      geom::intersect(geom::Segment{image1, p2}, walls[wall_i].extent);
  if (!hit1) {
    return false;
  }
  const geom::Vec2 p1 = *hit1;
  // Degenerate unfoldings (bounce point in a corner) produce zero-length
  // legs; skip them.
  if (geom::distance(p1, p2) < 1e-6 || geom::distance(source, p1) < 1e-6 ||
      geom::distance(p2, destination) < 1e-6) {
    return false;
  }
  out.bounces = 2;
  out.vertex_count = 4;
  out.vertices[0] = source;
  out.vertices[1] = p1;
  out.vertices[2] = p2;
  out.vertices[3] = destination;
  out.length_m = geom::distance(source, p1) + geom::distance(p1, p2) +
                 geom::distance(p2, destination);
  out.departure = (p1 - source).heading();
  out.arrival = (p2 - destination).heading();
  const rf::Decibels obstruction =
      no_obstacles ? rf::Decibels{0.0}
                   : leg_obstruction(*room_, source, p1) +
                         leg_obstruction(*room_, p1, p2) +
                         leg_obstruction(*room_, p2, destination);
  const rf::Decibels loss =
      rf::free_space_path_loss(out.length_m, config_.carrier_hz) +
      rf::atmospheric_absorption(out.length_m, config_.carrier_hz) +
      walls[wall_i].material.reflection_loss +
      walls[wall_j].material.reflection_loss + obstruction;
  out.obstruction_db = obstruction.value();
  out.loss_db = loss.value();
  return true;
}

void PathSolver::collect_candidates(geom::Vec2 source, geom::Vec2 destination,
                                    std::vector<Candidate>& out) const {
  const bool no_obstacles = room_->obstacles().empty();
  const std::size_t nwalls = room_->walls().size();
  out.push_back(los_candidate(source, destination));
  if (config_.max_bounces >= 1) {
    for (std::size_t i = 0; i < nwalls; ++i) {
      Candidate c;
      if (first_order_candidate(i, mirrors_[i].reflect(source), source,
                                destination, no_obstacles, c)) {
        out.push_back(c);
      }
    }
  }
  if (config_.max_bounces >= 2) {
    for (std::size_t i = 0; i < nwalls; ++i) {
      const geom::Vec2 image1 = mirrors_[i].reflect(source);
      for (std::size_t j = 0; j < nwalls; ++j) {
        if (i == j) {
          continue;
        }
        Candidate c;
        if (second_order_candidate(i, j, image1, mirrors_[j].reflect(image1),
                                   source, destination, no_obstacles, c)) {
          out.push_back(c);
        }
      }
    }
  }
}

void PathSolver::order_and_trim(std::vector<Candidate>& candidates) const {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.loss_db < b.loss_db;
            });
  // Trim everything outside the dynamic range of the strongest path.
  const double cutoff = candidates.front().loss_db +
                        config_.dynamic_range.value();
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [cutoff](const Candidate& c) {
                                    return c.loss_db > cutoff;
                                  }),
                   candidates.end());
}

Path PathSolver::materialize(const Candidate& c) {
  Path path;
  path.departure_azimuth = c.departure;
  path.arrival_azimuth = c.arrival;
  path.length_m = c.length_m;
  path.loss = rf::Decibels{c.loss_db};
  path.bounces = c.bounces;
  path.obstruction = rf::Decibels{c.obstruction_db};
  path.vertices.assign(c.vertices,
                       c.vertices + static_cast<std::size_t>(c.vertex_count));
  return path;
}

Path PathSolver::line_of_sight(geom::Vec2 source,
                               geom::Vec2 destination) const {
  return materialize(los_candidate(source, destination));
}

std::vector<Path> PathSolver::solve(geom::Vec2 source,
                                    geom::Vec2 destination) const {
  std::vector<Candidate> candidates;
  candidates.reserve(max_candidates());
  collect_candidates(source, destination, candidates);
  order_and_trim(candidates);
  std::vector<Path> paths;
  paths.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    paths.push_back(materialize(c));
  }
  return paths;
}

void PathSolver::solve_batch(const EndpointBatch& batch, PathBatch& out,
                             BatchWorkspace& ws) const {
  out.clear();
  const std::size_t n = batch.size();
  if (n == 0) {
    return;
  }
  const std::size_t nwalls = room_->walls().size();
  const bool no_obstacles = room_->obstacles().empty();
  const bool first_order = config_.max_bounces >= 1 && nwalls > 0;
  const bool second_order = config_.max_bounces >= 2 && nwalls > 1;

  // Mirror-unfolding prepass over the batch's contiguous coordinate arrays:
  // one image per (wall, query), one composed image per (ordered wall pair,
  // query). Each image is the output of the same Mirror::reflect the scalar
  // path calls, so downstream candidate math sees identical inputs.
  if (first_order) {
    ws.first_images.resize(nwalls * n);
    const double* ax = batch.ax();
    const double* ay = batch.ay();
    for (std::size_t w = 0; w < nwalls; ++w) {
      const Mirror mirror = mirrors_[w];
      geom::Vec2* row = ws.first_images.data() + w * n;
      for (std::size_t q = 0; q < n; ++q) {
        row[q] = mirror.reflect({ax[q], ay[q]});
      }
    }
  }
  if (second_order) {
    ws.second_images.resize(nwalls * nwalls * n);
    for (std::size_t i = 0; i < nwalls; ++i) {
      const geom::Vec2* image1_row = ws.first_images.data() + i * n;
      for (std::size_t j = 0; j < nwalls; ++j) {
        if (i == j) {
          continue;
        }
        const Mirror mirror = mirrors_[j];
        geom::Vec2* row = ws.second_images.data() + (i * nwalls + j) * n;
        for (std::size_t q = 0; q < n; ++q) {
          row[q] = mirror.reflect(image1_row[q]);
        }
      }
    }
  }

  ws.candidates.reserve(max_candidates());
  for (std::size_t q = 0; q < n; ++q) {
    const geom::Vec2 source = batch.a(q);
    const geom::Vec2 destination = batch.b(q);
    ws.candidates.clear();
    ws.candidates.push_back(los_candidate(source, destination));
    if (first_order) {
      for (std::size_t i = 0; i < nwalls; ++i) {
        Candidate c;
        if (first_order_candidate(i, ws.first_images[i * n + q], source,
                                  destination, no_obstacles, c)) {
          ws.candidates.push_back(c);
        }
      }
    }
    if (second_order) {
      for (std::size_t i = 0; i < nwalls; ++i) {
        const geom::Vec2 image1 = ws.first_images[i * n + q];
        for (std::size_t j = 0; j < nwalls; ++j) {
          if (i == j) {
            continue;
          }
          Candidate c;
          if (second_order_candidate(i, j, image1,
                                     ws.second_images[(i * nwalls + j) * n + q],
                                     source, destination, no_obstacles, c)) {
            ws.candidates.push_back(c);
          }
        }
      }
    }
    order_and_trim(ws.candidates);
    for (const Candidate& c : ws.candidates) {
      out.append_path(c.departure, c.arrival, c.length_m, c.loss_db,
                      c.obstruction_db, c.bounces, c.vertices,
                      static_cast<std::size_t>(c.vertex_count));
    }
    out.end_query();
  }
}

}  // namespace movr::channel
