#include <channel/path_solver.hpp>

#include <algorithm>
#include <cmath>

#include <geom/segment.hpp>
#include <rf/propagation.hpp>

namespace movr::channel {

namespace {

/// Accumulated obstruction over one straight leg.
rf::Decibels leg_obstruction(const Room& room, geom::Vec2 a, geom::Vec2 b) {
  return total_obstruction(room.obstacles(), geom::Segment{a, b});
}

bool same_walls(const std::vector<geom::Segment>& snapshot,
                const std::vector<Wall>& walls) {
  if (snapshot.size() != walls.size()) {
    return false;
  }
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot[i].a != walls[i].extent.a ||
        snapshot[i].b != walls[i].extent.b) {
      return false;
    }
  }
  return true;
}

}  // namespace

PathSolver::PathSolver(const Room& room, Config config)
    : room_{&room}, config_{config} {
  build_images();
}

void PathSolver::build_images() {
  mirrors_.clear();
  wall_snapshot_.clear();
  mirrors_.reserve(room_->walls().size());
  wall_snapshot_.reserve(room_->walls().size());
  for (const Wall& wall : room_->walls()) {
    mirrors_.push_back(
        Mirror{wall.extent.a, wall.extent.direction().normalized()});
    wall_snapshot_.push_back(wall.extent);
  }
}

void PathSolver::rebind(const Room& room) {
  // Compare against the snapshot, not *room_: a rebind typically happens
  // precisely because the previously bound room no longer exists.
  const bool geometry_unchanged = same_walls(wall_snapshot_, room.walls());
  room_ = &room;
  if (!geometry_unchanged) {
    build_images();
  }
}

Path PathSolver::line_of_sight(geom::Vec2 source,
                               geom::Vec2 destination) const {
  Path path;
  path.bounces = 0;
  path.vertices = {source, destination};
  const geom::Vec2 d = destination - source;
  path.length_m = d.norm();
  path.departure_azimuth = d.heading();
  path.arrival_azimuth = (-d).heading();
  path.obstruction = room_->obstacles().empty()
                         ? rf::Decibels{0.0}
                         : leg_obstruction(*room_, source, destination);
  path.loss = rf::free_space_path_loss(path.length_m, config_.carrier_hz) +
              rf::atmospheric_absorption(path.length_m, config_.carrier_hz) +
              path.obstruction;
  return path;
}

void PathSolver::add_first_order(std::vector<Path>& out, geom::Vec2 source,
                                 geom::Vec2 destination,
                                 bool no_obstacles) const {
  const auto& walls = room_->walls();
  for (std::size_t i = 0; i < walls.size(); ++i) {
    const geom::Vec2 image = mirrors_[i].reflect(source);
    const auto hit =
        geom::intersect(geom::Segment{image, destination}, walls[i].extent);
    if (!hit) {
      continue;
    }
    const geom::Vec2 p = *hit;
    Path path;
    path.bounces = 1;
    path.vertices = {source, p, destination};
    path.length_m = geom::distance(source, p) + geom::distance(p, destination);
    path.departure_azimuth = (p - source).heading();
    path.arrival_azimuth = (p - destination).heading();
    path.obstruction = no_obstacles
                           ? rf::Decibels{0.0}
                           : leg_obstruction(*room_, source, p) +
                                 leg_obstruction(*room_, p, destination);
    path.loss = rf::free_space_path_loss(path.length_m, config_.carrier_hz) +
                rf::atmospheric_absorption(path.length_m, config_.carrier_hz) +
                walls[i].material.reflection_loss + path.obstruction;
    out.push_back(std::move(path));
  }
}

void PathSolver::add_second_order(std::vector<Path>& out, geom::Vec2 source,
                                  geom::Vec2 destination,
                                  bool no_obstacles) const {
  const auto& walls = room_->walls();
  for (std::size_t i = 0; i < walls.size(); ++i) {
    const geom::Vec2 image1 = mirrors_[i].reflect(source);
    for (std::size_t j = 0; j < walls.size(); ++j) {
      if (i == j) {
        continue;
      }
      const geom::Vec2 image2 = mirrors_[j].reflect(image1);
      // Unfold back-to-front: last bounce on wall j.
      const auto hit2 =
          geom::intersect(geom::Segment{image2, destination}, walls[j].extent);
      if (!hit2) {
        continue;
      }
      const geom::Vec2 p2 = *hit2;
      const auto hit1 =
          geom::intersect(geom::Segment{image1, p2}, walls[i].extent);
      if (!hit1) {
        continue;
      }
      const geom::Vec2 p1 = *hit1;
      // Degenerate unfoldings (bounce point in a corner) produce zero-length
      // legs; skip them.
      if (geom::distance(p1, p2) < 1e-6 ||
          geom::distance(source, p1) < 1e-6 ||
          geom::distance(p2, destination) < 1e-6) {
        continue;
      }
      Path path;
      path.bounces = 2;
      path.vertices = {source, p1, p2, destination};
      path.length_m = geom::distance(source, p1) + geom::distance(p1, p2) +
                      geom::distance(p2, destination);
      path.departure_azimuth = (p1 - source).heading();
      path.arrival_azimuth = (p2 - destination).heading();
      path.obstruction = no_obstacles
                             ? rf::Decibels{0.0}
                             : leg_obstruction(*room_, source, p1) +
                                   leg_obstruction(*room_, p1, p2) +
                                   leg_obstruction(*room_, p2, destination);
      path.loss =
          rf::free_space_path_loss(path.length_m, config_.carrier_hz) +
          rf::atmospheric_absorption(path.length_m, config_.carrier_hz) +
          walls[i].material.reflection_loss +
          walls[j].material.reflection_loss + path.obstruction;
      out.push_back(std::move(path));
    }
  }
}

std::vector<Path> PathSolver::solve(geom::Vec2 source,
                                    geom::Vec2 destination) const {
  const bool no_obstacles = room_->obstacles().empty();
  std::vector<Path> paths;
  paths.push_back(line_of_sight(source, destination));
  if (config_.max_bounces >= 1) {
    add_first_order(paths, source, destination, no_obstacles);
  }
  if (config_.max_bounces >= 2) {
    add_second_order(paths, source, destination, no_obstacles);
  }
  std::sort(paths.begin(), paths.end(), [](const Path& a, const Path& b) {
    return a.loss.value() < b.loss.value();
  });
  // Trim everything outside the dynamic range of the strongest path.
  const double cutoff =
      paths.front().loss.value() + config_.dynamic_range.value();
  paths.erase(std::remove_if(paths.begin(), paths.end(),
                             [cutoff](const Path& p) {
                               return p.loss.value() > cutoff;
                             }),
              paths.end());
  return paths;
}

}  // namespace movr::channel
