// Structure-of-arrays containers for batched path queries.
//
// The scalar API answers one endpoint pair at a time and returns a fresh
// std::vector<Path> — fine for a handful of queries, hostile to a coverage
// grid or a codebook sweep that asks thousands of questions per pose update.
// These containers keep every field of every query/path in its own
// contiguous array so the solver's inner loops touch flat memory (and the
// compiler can vectorise them), and so a warmed batch round-trips with zero
// heap allocations: clear() keeps capacity.
//
// Layout contract (documented in DESIGN.md §11):
//  - EndpointBatch: query i is (a(i), b(i)); ax/ay/bx/by are parallel arrays.
//  - PathBatch: paths of query q occupy the index range
//    [query_begin[q], query_begin[q + 1]); path p's bounce vertices occupy
//    [vertex_begin[p], vertex_begin[p + 1]) in `vertices`. Within a query,
//    paths are ordered strongest-first — exactly the order PathSolver::solve
//    returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <channel/path.hpp>
#include <geom/vec2.hpp>
#include <rf/units.hpp>

namespace movr::channel {

/// A flat batch of (source, destination) endpoint pairs.
class EndpointBatch {
 public:
  void clear() {
    ax_.clear();
    ay_.clear();
    bx_.clear();
    by_.clear();
  }

  void reserve(std::size_t n) {
    ax_.reserve(n);
    ay_.reserve(n);
    bx_.reserve(n);
    by_.reserve(n);
  }

  void push(geom::Vec2 a, geom::Vec2 b) {
    ax_.push_back(a.x);
    ay_.push_back(a.y);
    bx_.push_back(b.x);
    by_.push_back(b.y);
  }

  std::size_t size() const { return ax_.size(); }
  bool empty() const { return ax_.empty(); }

  geom::Vec2 a(std::size_t i) const { return {ax_[i], ay_[i]}; }
  geom::Vec2 b(std::size_t i) const { return {bx_[i], by_[i]}; }

  const double* ax() const { return ax_.data(); }
  const double* ay() const { return ay_.data(); }
  const double* bx() const { return bx_.data(); }
  const double* by() const { return by_.data(); }

  /// Bytes of backing storage currently owned (capacity, not size).
  std::size_t arena_bytes() const {
    return (ax_.capacity() + ay_.capacity() + bx_.capacity() +
            by_.capacity()) *
           sizeof(double);
  }

 private:
  std::vector<double> ax_, ay_, bx_, by_;
};

/// SoA results of a batched solve: one entry per surviving path, grouped by
/// query. Appended to by PathSolver::solve_batch; clear() keeps capacity.
class PathBatch {
 public:
  void clear() {
    query_begin_.clear();
    query_begin_.push_back(0);
    departure_azimuth_.clear();
    arrival_azimuth_.clear();
    length_m_.clear();
    loss_db_.clear();
    obstruction_db_.clear();
    bounces_.clear();
    vertex_begin_.clear();
    vertex_begin_.push_back(0);
    vertices_.clear();
  }

  PathBatch() { clear(); }

  std::size_t queries() const { return query_begin_.size() - 1; }
  std::size_t paths() const { return loss_db_.size(); }

  /// Index range [first, last) of query q's paths, strongest first.
  std::size_t query_first(std::size_t q) const { return query_begin_[q]; }
  std::size_t query_last(std::size_t q) const { return query_begin_[q + 1]; }
  std::size_t query_paths(std::size_t q) const {
    return query_begin_[q + 1] - query_begin_[q];
  }

  double departure_azimuth(std::size_t p) const {
    return departure_azimuth_[p];
  }
  double arrival_azimuth(std::size_t p) const { return arrival_azimuth_[p]; }
  double length_m(std::size_t p) const { return length_m_[p]; }
  double loss_db(std::size_t p) const { return loss_db_[p]; }
  double obstruction_db(std::size_t p) const { return obstruction_db_[p]; }
  int bounces(std::size_t p) const { return bounces_[p]; }

  std::size_t vertex_count(std::size_t p) const {
    return vertex_begin_[p + 1] - vertex_begin_[p];
  }
  geom::Vec2 vertex(std::size_t p, std::size_t k) const {
    return vertices_[vertex_begin_[p] + k];
  }

  /// Reconstructs the AoS Path for path index p — the bridge back to the
  /// scalar world (cache fills, tests). Field-for-field identical to what
  /// PathSolver::solve would have produced.
  Path path(std::size_t p) const {
    Path out;
    out.departure_azimuth = departure_azimuth_[p];
    out.arrival_azimuth = arrival_azimuth_[p];
    out.length_m = length_m_[p];
    out.loss = rf::Decibels{loss_db_[p]};
    out.bounces = bounces_[p];
    out.obstruction = rf::Decibels{obstruction_db_[p]};
    out.vertices.assign(vertices_.begin() + static_cast<std::ptrdiff_t>(
                                                vertex_begin_[p]),
                        vertices_.begin() + static_cast<std::ptrdiff_t>(
                                                vertex_begin_[p + 1]));
    return out;
  }

  // Appending interface, used by the solver.
  void begin_query() {}
  void end_query() { query_begin_.push_back(paths()); }
  void append_path(double departure, double arrival, double length,
                   double loss_db, double obstruction_db, int bounces,
                   const geom::Vec2* verts, std::size_t nverts) {
    departure_azimuth_.push_back(departure);
    arrival_azimuth_.push_back(arrival);
    length_m_.push_back(length);
    loss_db_.push_back(loss_db);
    obstruction_db_.push_back(obstruction_db);
    bounces_.push_back(bounces);
    vertices_.insert(vertices_.end(), verts, verts + nverts);
    vertex_begin_.push_back(vertices_.size());
  }

  /// Bytes of backing storage currently owned (capacity, not size).
  std::size_t arena_bytes() const {
    return (query_begin_.capacity() + vertex_begin_.capacity()) *
               sizeof(std::size_t) +
           (departure_azimuth_.capacity() + arrival_azimuth_.capacity() +
            length_m_.capacity() + loss_db_.capacity() +
            obstruction_db_.capacity()) *
               sizeof(double) +
           bounces_.capacity() * sizeof(int) +
           vertices_.capacity() * sizeof(geom::Vec2);
  }

  void reserve(std::size_t nqueries, std::size_t paths_per_query) {
    const std::size_t npaths = nqueries * paths_per_query;
    query_begin_.reserve(nqueries + 1);
    departure_azimuth_.reserve(npaths);
    arrival_azimuth_.reserve(npaths);
    length_m_.reserve(npaths);
    loss_db_.reserve(npaths);
    obstruction_db_.reserve(npaths);
    bounces_.reserve(npaths);
    vertex_begin_.reserve(npaths + 1);
    vertices_.reserve(npaths * 4);
  }

 private:
  std::vector<std::size_t> query_begin_;
  std::vector<double> departure_azimuth_;
  std::vector<double> arrival_azimuth_;
  std::vector<double> length_m_;
  std::vector<double> loss_db_;
  std::vector<double> obstruction_db_;
  std::vector<int> bounces_;
  std::vector<std::size_t> vertex_begin_;
  std::vector<geom::Vec2> vertices_;
};

}  // namespace movr::channel
