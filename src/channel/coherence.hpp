// Channel coherence at mmWave under player motion.
//
// The simulator evaluates the channel once per frame (block fading). That
// is only valid if the channel holds still across a frame interval; these
// helpers quantify it. At 24-60 GHz, head motion of ~1 m/s gives Doppler
// spreads of 80-200 Hz — coherence times of a few milliseconds, shorter
// than the 11.1 ms frame. The saving grace (and why per-frame evaluation is
// the right granularity here) is that the links are LOS/specular and
// beam-limited: what changes within a frame is the *phase*, not the path
// inventory or the beam alignment, and the wideband receiver is insensitive
// to absolute phase. The tests pin these numbers so the modelling
// assumption is explicit.
#pragma once

namespace movr::channel {

/// Maximum Doppler shift (Hz) for a scatterer/terminal moving at `speed_mps`.
double doppler_shift(double speed_mps, double carrier_hz);

/// Coherence time (seconds), Clarke's rule of thumb 0.423 / f_d.
double coherence_time(double speed_mps, double carrier_hz);

/// Distance over which the beam alignment decays: the player must move
/// `beamwidth * range` laterally to leave a beam pointed at them.
double beam_coherence_distance(double beamwidth_rad, double range_m);

}  // namespace movr::channel
