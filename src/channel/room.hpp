// The experiment room: a rectangle of reflecting walls plus a mutable set
// of obstacles. The paper's testbed is a 5x5 m office with standard
// furniture; Room::paper_office() reproduces it.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <channel/material.hpp>
#include <channel/obstacle.hpp>
#include <geom/segment.hpp>
#include <geom/vec2.hpp>

namespace movr::channel {

struct Wall {
  geom::Segment extent;
  SurfaceMaterial material{kDrywall};
  std::string label;
};

class Room {
 public:
  /// An empty rectangular room with corners (0,0) and (width, depth).
  Room(double width_m, double depth_m, SurfaceMaterial walls = kDrywall);

  /// The paper's 5x5 m office, with a couple of furniture blockers along
  /// the walls ("standard furniture", Section 5).
  static Room paper_office();

  double width() const { return width_; }
  double depth() const { return depth_; }

  const std::vector<Wall>& walls() const { return walls_; }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  /// Monotonic mutation counter: every obstacle or wall-material change
  /// bumps it. Path caches (core::ChannelOracle) key their entries on this
  /// revision, so a stale cache can never survive a room edit.
  std::uint64_t revision() const { return revision_; }

  /// Re-materials one wall ("south", "east", "north", "west") — e.g. a
  /// whiteboard or metal panel on one wall changes the NLOS story (cf. the
  /// data-center "mirror on the ceiling" the paper contrasts itself with).
  void set_wall_material(const std::string& wall_label,
                         SurfaceMaterial material);

  void add_obstacle(Obstacle obstacle);
  void clear_obstacles();
  /// Removes obstacles whose label matches (e.g. drop the "hand" blocker
  /// when the player lowers her arm).
  void remove_obstacles(const std::string& label);

  bool contains(geom::Vec2 p, double margin = 0.0) const;

  /// Uniformly random interior point at least `margin` from every wall.
  template <typename Rng>
  geom::Vec2 random_interior_point(Rng& rng, double margin = 0.5) const {
    std::uniform_real_distribution<double> ux{margin, width_ - margin};
    std::uniform_real_distribution<double> uy{margin, depth_ - margin};
    return {ux(rng), uy(rng)};
  }

 private:
  double width_;
  double depth_;
  std::vector<Wall> walls_;
  std::vector<Obstacle> obstacles_;
  std::uint64_t revision_{0};
};

}  // namespace movr::channel
