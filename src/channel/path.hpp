// A resolved propagation path between two points in the room.
#pragma once

#include <string>
#include <vector>

#include <geom/vec2.hpp>
#include <rf/units.hpp>

namespace movr::channel {

struct Path {
  /// Azimuth (global frame, radians) at which the path leaves the source.
  double departure_azimuth{0.0};
  /// Azimuth (global frame, radians) at which the path arrives — pointing
  /// *back along* the incoming ray, i.e. the direction the receiver should
  /// steer toward.
  double arrival_azimuth{0.0};
  /// Total geometric length, metres.
  double length_m{0.0};
  /// Total loss: free-space + reflection losses + obstruction losses (dB,
  /// positive).
  rf::Decibels loss{0.0};
  /// Number of specular bounces (0 = LOS).
  int bounces{0};
  /// Obstruction component of `loss` — lets experiments ask "was the LOS
  /// actually blocked?".
  rf::Decibels obstruction{0.0};
  /// Vertices: source, bounce points..., destination.
  std::vector<geom::Vec2> vertices;

  bool is_los() const { return bounces == 0; }
  bool is_blocked(double threshold_db = 3.0) const {
    return obstruction.value() > threshold_db;
  }
};

}  // namespace movr::channel
