#include <channel/room.hpp>

#include <algorithm>
#include <stdexcept>

namespace movr::channel {

Room::Room(double width_m, double depth_m, SurfaceMaterial wall_material)
    : width_{width_m}, depth_{depth_m} {
  if (width_m <= 0.0 || depth_m <= 0.0) {
    throw std::invalid_argument{"Room: dimensions must be positive"};
  }
  const geom::Vec2 sw{0.0, 0.0};
  const geom::Vec2 se{width_m, 0.0};
  const geom::Vec2 ne{width_m, depth_m};
  const geom::Vec2 nw{0.0, depth_m};
  walls_ = {
      Wall{{sw, se}, wall_material, "south"},
      Wall{{se, ne}, wall_material, "east"},
      Wall{{ne, nw}, wall_material, "north"},
      Wall{{nw, sw}, wall_material, "west"},
  };
}

Room Room::paper_office() {
  Room room{5.0, 5.0, kDrywall};
  // "Standard furniture": a desk against the east wall and a cabinet near
  // the north wall. They shadow some wall-reflection geometries, like real
  // furniture does in the paper's NLOS sweeps.
  room.add_obstacle(
      Obstacle{geom::Circle{{4.6, 2.2}, 0.35}, kFurniture, "desk"});
  room.add_obstacle(
      Obstacle{geom::Circle{{1.8, 4.65}, 0.3}, kFurniture, "cabinet"});
  return room;
}

void Room::set_wall_material(const std::string& wall_label,
                             SurfaceMaterial material) {
  for (Wall& wall : walls_) {
    if (wall.label == wall_label) {
      wall.material = material;
      ++revision_;
      return;
    }
  }
  throw std::invalid_argument{"Room: no wall named " + wall_label};
}

void Room::add_obstacle(Obstacle obstacle) {
  obstacles_.push_back(std::move(obstacle));
  ++revision_;
}

void Room::clear_obstacles() {
  if (!obstacles_.empty()) {
    obstacles_.clear();
    ++revision_;
  }
}

void Room::remove_obstacles(const std::string& label) {
  const auto removed = std::remove_if(
      obstacles_.begin(), obstacles_.end(),
      [&](const Obstacle& o) { return o.label == label; });
  if (removed != obstacles_.end()) {
    obstacles_.erase(removed, obstacles_.end());
    ++revision_;
  }
}

bool Room::contains(geom::Vec2 p, double margin) const {
  return p.x >= margin && p.x <= width_ - margin && p.y >= margin &&
         p.y <= depth_ - margin;
}

}  // namespace movr::channel
