#include <channel/coherence.hpp>

#include <rf/propagation.hpp>

namespace movr::channel {

double doppler_shift(double speed_mps, double carrier_hz) {
  return speed_mps / rf::wavelength(carrier_hz);
}

double coherence_time(double speed_mps, double carrier_hz) {
  const double fd = doppler_shift(speed_mps, carrier_hz);
  if (fd <= 0.0) {
    return 1e9;  // static: effectively infinite
  }
  return 0.423 / fd;
}

double beam_coherence_distance(double beamwidth_rad, double range_m) {
  return beamwidth_rad * range_m;
}

}  // namespace movr::channel
