// The simulator: an event queue plus a clock, with convenience scheduling.
#pragma once

#include <functional>

#include <sim/event_queue.hpp>
#include <sim/time.hpp>

namespace movr::sim {

class Simulator {
 public:
  TimePoint now() const { return now_; }

  /// Schedules `handler` to run `delay` from now.
  EventQueue::EventId after(Duration delay, EventQueue::Handler handler);

  /// Schedules `handler` at absolute time `when` (must not be in the past).
  EventQueue::EventId at(TimePoint when, EventQueue::Handler handler);

  void cancel(EventQueue::EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains.
  void run();

  /// Runs events with timestamps <= `deadline`, then sets the clock to
  /// `deadline`. Events scheduled beyond the deadline stay pending.
  void run_until(TimePoint deadline);

  /// Runs exactly one event if any is pending; returns false when drained.
  bool step();

  std::size_t pending_events() const { return queue_.pending(); }

 private:
  EventQueue queue_;
  TimePoint now_{Duration::zero()};
};

}  // namespace movr::sim
