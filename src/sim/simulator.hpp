// The simulator: an event queue plus a clock, with convenience scheduling.
#pragma once

#include <functional>

#include <sim/event_queue.hpp>
#include <sim/time.hpp>

namespace movr::sim {

class Simulator {
 public:
  /// Optional safety valve: a buggy protocol that schedules events forever
  /// (or an injected fault timeline that never drains) trips the valve and
  /// throws, instead of hanging run() until ctest times out. Zero = off.
  struct SafetyValve {
    std::uint64_t max_events{0};          // total events executed
    Duration max_time{Duration::zero()};  // absolute simulated-clock bound
  };

  TimePoint now() const { return now_; }

  /// Schedules `handler` to run `delay` from now.
  EventQueue::EventId after(Duration delay, EventQueue::Handler handler);

  /// Schedules `handler` at absolute time `when` (must not be in the past).
  EventQueue::EventId at(TimePoint when, EventQueue::Handler handler);

  void cancel(EventQueue::EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains.
  void run();

  /// Runs events with timestamps <= `deadline`, then sets the clock to
  /// `deadline`. Events scheduled beyond the deadline stay pending.
  void run_until(TimePoint deadline);

  /// Runs exactly one event if any is pending; returns false when drained.
  /// Throws std::runtime_error if the safety valve limits are exceeded.
  bool step();

  std::size_t pending_events() const { return queue_.pending(); }

  void set_safety_valve(SafetyValve valve) { valve_ = valve; }
  const SafetyValve& safety_valve() const { return valve_; }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  TimePoint now_{Duration::zero()};
  SafetyValve valve_{};
  std::uint64_t events_executed_{0};
};

}  // namespace movr::sim
