// Gilbert–Elliott burst-loss channel.
//
// mmWave links fail in *bursts*: a hand or head blocks the beam for tens of
// milliseconds, and the handover window itself is a correlated-loss event.
// Resolving every MPDU with an independent Bernoulli coin hides exactly the
// failure mode that kills retransmission-only recovery, so the transport's
// extra loss is generated here instead: a two-state Markov chain (good/bad)
// stepped once per frame tick, with a per-state loss probability fed to
// net::ChannelState.
//
// The transitions are not purely stochastic — the session pushes the
// channel into the bad state when the world says so (a fault window opens,
// the LinkManager enters kHandoverPending/kDegraded), so blockage events
// become correlated loss instead of i.i.d. extra loss. The chain draws from
// its own dedicated RNG, so the burst trajectory for a seed is identical no
// matter what the transport, FEC layer or rate control do with their coins.
#pragma once

#include <cstdint>
#include <random>

namespace movr::sim {

class BurstChannel {
 public:
  struct Config {
    /// Per-step (per frame tick) transition probabilities.
    double p_good_bad{0.015};
    double p_bad_good{0.15};  // mean natural burst ~1/0.15 ≈ 7 ticks
    /// Per-MPDU loss probability in each state.
    double loss_good{0.003};
    double loss_bad{0.4};
    std::uint64_t seed{0xB1257};
  };

  struct Counters {
    std::uint64_t steps{0};
    std::uint64_t steps_bad{0};
    /// Entries into the bad state: spontaneous (chain) + forced (events).
    std::uint64_t bursts{0};
    std::uint64_t forced_bad{0};
    std::uint64_t longest_burst_steps{0};
  };

  enum class State : std::uint8_t { kGood, kBad };

  BurstChannel() : BurstChannel{Config{}} {}
  explicit BurstChannel(Config config) : config_{config}, rng_{config.seed} {}

  /// Advances the chain one tick and returns the new state.
  State step();

  /// Event-driven push into the bad state (blockage window opened, handover
  /// pending, link degraded). Idempotent while already bad.
  void force_bad();

  State state() const { return state_; }
  bool bad() const { return state_ == State::kBad; }

  /// Per-MPDU loss probability of the *current* state.
  double loss() const {
    return state_ == State::kBad ? config_.loss_bad : config_.loss_good;
  }

  /// Mean natural burst length, in steps — what the FEC interleaving depth
  /// should span.
  double mean_burst_steps() const {
    return config_.p_bad_good > 0.0 ? 1.0 / config_.p_bad_good : 1.0;
  }

  const Config& config() const { return config_; }
  const Counters& counters() const { return counters_; }

 private:
  void enter_bad();
  void close_burst();

  Config config_;
  Counters counters_;
  State state_{State::kGood};
  std::uint64_t current_burst_{0};
  std::mt19937_64 rng_;
};

}  // namespace movr::sim
